//===-- tests/test_properties.cpp - Property-based invariant sweeps -------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized sweeps over seeds asserting the invariants every part of
/// the scheduling pipeline must uphold regardless of configuration:
/// distributions are precedence-valid and overlap-free, deadlines are
/// honoured, costs are non-negative, and committed state is consistent.
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "flow/VirtualOrganization.h"
#include "job/Coarsen.h"
#include "job/Generator.h"
#include "lang/Parser.h"
#include "metrics/Experiment.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

struct Scenario {
  uint64_t Seed;
  StrategyKind Kind;
};

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> S;
  for (uint64_t Seed : {1u, 2u, 3u, 5u, 8u, 13u})
    for (StrategyKind Kind : {StrategyKind::S1, StrategyKind::S2,
                              StrategyKind::S3, StrategyKind::MS1})
      S.push_back({Seed, Kind});
  return S;
}

} // namespace

class StrategySweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(StrategySweep, VariantsUpholdAllInvariants) {
  auto [Seed, Kind] = GetParam();
  JobGenerator Gen(WorkloadConfig{}, Seed);
  Prng Rng(Seed ^ 0xabcdef);
  Network Net;
  for (int Round = 0; Round < 8; ++Round) {
    Job J = Gen.next(0);
    Grid Env = Grid::makeRandom(GridConfig{}, Rng);
    preloadGrid(Env, J.deadline(), 0.2, 0.5, 2, 8, Rng);
    StrategyConfig Config;
    Config.Kind = Kind;
    Strategy S = Strategy::build(J, Env, Net, Config, 42);
    const Job &Scheduled = S.scheduledJob();
    EXPECT_EQ(Scheduled.deadline(), J.deadline());
    for (const auto &V : S.variants()) {
      if (!V.feasible()) {
        // Infeasible variants must not be silently complete.
        EXPECT_FALSE(V.Result.Dist.covers(Scheduled) &&
                     V.Result.Dist.makespan() <= Scheduled.deadline());
        continue;
      }
      expectValidDistribution(Scheduled, V.Result.Dist);
      EXPECT_LE(V.Result.Dist.makespan(), Scheduled.deadline());
      EXPECT_GE(V.Result.Dist.startTime(), 0);
      EXPECT_GT(V.Result.Dist.economicCost(), 0.0);
      EXPECT_GT(V.Result.Dist.costFunction(Scheduled), 0);
      // Variants were built against the load: they must fit it.
      EXPECT_TRUE(V.Result.Dist.fitsGrid(Env));
      // Transfers from placed predecessors leave non-negative slack.
      for (const auto &E : Scheduled.edges()) {
        const Placement *Src = V.Result.Dist.find(E.Src);
        const Placement *Dst = V.Result.Dist.find(E.Dst);
        if (Src->NodeId == Dst->NodeId)
          EXPECT_GE(Dst->Start, Src->End);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, StrategySweep,
                         ::testing::ValuesIn(allScenarios()));

class CoarsenSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoarsenSweep, CoarseningPreservesSemantics) {
  JobGenerator Gen(WorkloadConfig{}, GetParam());
  for (int Round = 0; Round < 15; ++Round) {
    Job J = Gen.next(0);
    for (unsigned Rounds : {0u, 1u, 2u}) {
      CoarsenConfig Config;
      Config.SiblingRounds = Rounds;
      CoarseJob C = coarsenJob(J, Config);
      EXPECT_TRUE(C.Coarse.isAcyclic());
      EXPECT_EQ(C.Coarse.totalRefTicks(), J.totalRefTicks());
      EXPECT_LE(C.Coarse.taskCount(), J.taskCount());
      EXPECT_GE(C.Coarse.taskCount(), 1u);
      // Edges never grow.
      EXPECT_LE(C.Coarse.edgeCount(), J.edgeCount());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarsenSweep,
                         ::testing::Values(101u, 102u, 103u, 104u));

class VoSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(VoSweep, RunInvariants) {
  auto [Seed, Kind] = GetParam();
  VoConfig Config = makeFig4VoConfig();
  Config.JobCount = 30;
  VoRunResult R = runVirtualOrganization(Config, Kind, Seed);
  ASSERT_EQ(R.Jobs.size(), 30u);
  for (const auto &St : R.Jobs) {
    // Category logic.
    if (St.Committed) {
      EXPECT_TRUE(St.Admissible);
      EXPECT_FALSE(St.Rejected);
      EXPECT_GE(St.ActualStart, St.Arrival);
      EXPECT_GT(St.Completion, St.ActualStart);
      EXPECT_LE(St.Completion, St.Deadline);
      EXPECT_GT(St.Cost, 0.0);
      EXPECT_GT(St.Cf, 0);
    }
    if (St.Rejected)
      EXPECT_FALSE(St.Committed);
    if (!St.Admissible) {
      EXPECT_FALSE(St.Committed);
      EXPECT_TRUE(St.TtlClosed);
      EXPECT_EQ(St.Ttl, 0);
    }
    if (St.TtlClosed && St.Admissible && St.Committed)
      EXPECT_LE(St.Ttl, St.Completion - St.Arrival);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, VoSweep,
                         ::testing::ValuesIn(std::vector<Scenario>{
                             {21, StrategyKind::S1},
                             {22, StrategyKind::S2},
                             {23, StrategyKind::S3},
                             {24, StrategyKind::MS1},
                         }));

class SchedulerStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerStress, RepairNeverProducesInvalidSchedules) {
  JobGenerator Gen(WorkloadConfig{}, GetParam());
  Prng Rng(GetParam() * 31 + 7);
  Network Net;
  for (int Round = 0; Round < 15; ++Round) {
    Job J = Gen.next(0);
    Grid Env = Grid::makeRandom(GridConfig{}, Rng);
    preloadGrid(Env, J.deadline(), 0.3, 0.7, 2, 8, Rng);
    for (OptimizationBias Bias :
         {OptimizationBias::Cost, OptimizationBias::Time}) {
      SchedulerConfig Config;
      Config.Alloc.Bias = Bias;
      ScheduleResult R = scheduleJob(J, Env, Net, Config, 42);
      if (!R.Feasible)
        continue;
      expectValidDistribution(J, R.Dist);
      EXPECT_LE(R.Dist.makespan(), J.deadline());
      // Placements never overlap the pre-existing background load.
      for (const auto &P : R.Dist.placements())
        EXPECT_TRUE(
            Env.node(P.NodeId).timeline().isFree(P.Start, P.End));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress,
                         ::testing::Values(301u, 302u, 303u, 304u, 305u,
                                           306u));

class LangFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LangFuzz, ParserNeverCrashesOnGarbage) {
  Prng Rng(GetParam());
  const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t\n\"#->._-+;,@$";
  for (int Round = 0; Round < 50; ++Round) {
    std::string Text;
    size_t Len = Rng.index(200);
    for (size_t I = 0; I < Len; ++I)
      Text += Alphabet[Rng.index(sizeof(Alphabet) - 1)];
    ParseResult R = parseJobDescription(Text);
    // Whatever came out must be internally consistent.
    if (R.ok())
      EXPECT_TRUE(R.TheJob.isAcyclic());
    for (const auto &D : R.Errors) {
      EXPECT_GE(D.Line, 1u);
      EXPECT_GE(D.Col, 1u);
      EXPECT_FALSE(D.Message.empty());
    }
  }
}

TEST_P(LangFuzz, KeywordSoupParses) {
  // Statement keywords in random order with random attributes: the
  // parser must terminate and report sane diagnostics.
  Prng Rng(GetParam() * 31);
  const char *Words[] = {"job",  "task", "edge",     "node", "ref",
                         "vol",  "perf", "transfer", "->",   "deadline",
                         "t1",   "t2",   "7",        "0.5",  "-3"};
  for (int Round = 0; Round < 50; ++Round) {
    std::string Text;
    size_t Len = Rng.index(60);
    for (size_t I = 0; I < Len; ++I) {
      Text += Words[Rng.index(std::size(Words))];
      Text += Rng.bernoulli(0.2) ? "\n" : " ";
    }
    ParseResult R = parseJobDescription(Text);
    if (R.ok())
      EXPECT_TRUE(R.TheJob.isAcyclic());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u));
