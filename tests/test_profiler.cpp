//===-- tests/test_profiler.cpp - Phase profiler tests --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
//
// The hierarchical phase profiler: nesting and self-time accounting,
// deterministic cross-thread merge, the disabled fast path, cross-
// thread work attachment, the JSON round trip, metric publication, the
// Chrome-trace fragment, and shard/thread invariance of the counts and
// work counters a profiled VO run accumulates.
//
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

class ProfilerTest : public ::testing::Test {
protected:
  void SetUp() override { Profiler::global().reset(); }
  void TearDown() override { Profiler::global().reset(); }
};

/// Spins until at least \p Us microseconds of wall time passed, so
/// phase durations are reliably nonzero without sleeping.
void burn(int64_t Us) {
  auto Start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
             .count() < Us)
    ;
}

const PhaseStats *find(const std::vector<PhaseStats> &Phases,
                       const std::string &Name) {
  for (const PhaseStats &P : Phases)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

TEST_F(ProfilerTest, NestingAndSelfTime) {
  Profiler &P = Profiler::global();
  P.enable();
  for (int I = 0; I < 3; ++I) {
    CWS_PHASE("outer");
    burn(200);
    {
      CWS_PHASE("inner");
      burn(200);
    }
  }
  P.disable();

  std::vector<PhaseStats> S = P.snapshot();
  ASSERT_EQ(S.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(S[0].Name, "inner");
  EXPECT_EQ(S[1].Name, "outer");
  const PhaseStats *Outer = find(S, "outer");
  const PhaseStats *Inner = find(S, "inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Count, 3u);
  EXPECT_EQ(Inner->Count, 3u);
  // The outer total contains the inner total; its self time does not.
  EXPECT_GE(Outer->TotalUs, Inner->TotalUs);
  EXPECT_GE(Outer->SelfUs, 0.0);
  EXPECT_LE(Outer->SelfUs, Outer->TotalUs - Inner->TotalUs + 1.0);
  // The inner phase has no children: self == total.
  EXPECT_DOUBLE_EQ(Inner->SelfUs, Inner->TotalUs);
  EXPECT_GT(Outer->P50Us, 0.0);
  EXPECT_GE(Outer->P99Us, Outer->P50Us);
}

TEST_F(ProfilerTest, OpenScopesAreNotCounted) {
  Profiler &P = Profiler::global();
  P.enable();
  {
    CWS_PHASE("closed");
  }
  PhaseScope Open("still.open");
  std::vector<PhaseStats> S = P.snapshot();
  const PhaseStats *Closed = find(S, "closed");
  ASSERT_NE(Closed, nullptr);
  EXPECT_EQ(Closed->Count, 1u);
  const PhaseStats *StillOpen = find(S, "still.open");
  if (StillOpen != nullptr)
    EXPECT_EQ(StillOpen->Count, 0u);
}

TEST_F(ProfilerTest, DisabledPathRecordsNothing) {
  Profiler &P = Profiler::global();
  ASSERT_FALSE(P.enabled());
  for (int I = 0; I < 1000; ++I) {
    CWS_PHASE("ghost");
    PhaseScope S("ghost.child");
    S.work("units", 5);
    P.addWork("ghost", "units", 7);
  }
  EXPECT_TRUE(P.snapshot().empty());
  EXPECT_EQ(P.chromeTraceEvents(), "");
}

TEST_F(ProfilerTest, CrossThreadMergeIsDeterministic) {
  Profiler &P = Profiler::global();
  P.enable();
  constexpr int Threads = 4;
  constexpr int Reps = 25;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&P] {
      for (int I = 0; I < Reps; ++I) {
        CWS_PHASE("worker.lane");
        PhaseScope S("worker.lane.child");
        S.work("units", 2);
        P.addWork("worker.lane", "attached", 3);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  P.disable();

  std::vector<PhaseStats> S = P.snapshot();
  const PhaseStats *Lane = find(S, "worker.lane");
  ASSERT_NE(Lane, nullptr);
  EXPECT_EQ(Lane->Count, uint64_t(Threads * Reps));
  const uint64_t *Attached = Lane->work("attached");
  ASSERT_NE(Attached, nullptr);
  EXPECT_EQ(*Attached, uint64_t(3 * Threads * Reps));
  const PhaseStats *Child = find(S, "worker.lane.child");
  ASSERT_NE(Child, nullptr);
  EXPECT_EQ(Child->Count, uint64_t(Threads * Reps));
  const uint64_t *Units = Child->work("units");
  ASSERT_NE(Units, nullptr);
  EXPECT_EQ(*Units, uint64_t(2 * Threads * Reps));
}

TEST_F(ProfilerTest, AddWorkWithoutOpenScopeLandsInMergedPhase) {
  Profiler &P = Profiler::global();
  P.enable();
  {
    CWS_PHASE("caller.side");
  }
  // A worker lane attaches work to a phase it never opened.
  std::thread([&P] { P.addWork("caller.side", "fanout", 11); }).join();
  P.disable();

  std::vector<PhaseStats> S = P.snapshot();
  const PhaseStats *Phase = find(S, "caller.side");
  ASSERT_NE(Phase, nullptr);
  EXPECT_EQ(Phase->Count, 1u);
  const uint64_t *Fanout = Phase->work("fanout");
  ASSERT_NE(Fanout, nullptr);
  EXPECT_EQ(*Fanout, 11u);
}

TEST_F(ProfilerTest, JsonRoundTrip) {
  Profiler &P = Profiler::global();
  RunProvenance Prov;
  Prov.Stamped = true;
  Prov.Seed = 42;
  Prov.ConfigHash = "0x00000000deadbeef";
  Prov.ScenarioId = "test:profile";
  Prov.Shards = 2;
  Prov.Cli = "test_profiler";
  P.setProvenance(Prov);
  P.enable();
  {
    CWS_PHASE("round.trip");
    PhaseScope S("round.trip.child");
    S.work("labels", 123);
  }
  P.disable();

  std::string Json = P.json();
  ParsedProfile Parsed;
  std::string Error;
  ASSERT_TRUE(parseProfileJson(Json, Parsed, Error)) << Error;
  EXPECT_TRUE(Parsed.Prov.Stamped);
  EXPECT_EQ(Parsed.Prov.Seed, 42u);
  EXPECT_EQ(Parsed.Prov.ConfigHash, "0x00000000deadbeef");
  EXPECT_EQ(Parsed.Prov.ScenarioId, "test:profile");
  EXPECT_EQ(Parsed.Prov.Shards, 2u);
  ASSERT_EQ(Parsed.Phases.size(), 2u);
  EXPECT_EQ(Parsed.Phases[0].Name, "round.trip");
  EXPECT_EQ(Parsed.Phases[1].Name, "round.trip.child");
  const uint64_t *Labels = Parsed.Phases[1].work("labels");
  ASSERT_NE(Labels, nullptr);
  EXPECT_EQ(*Labels, 123u);
  EXPECT_EQ(Parsed.Phases[0].Count, 1u);
  EXPECT_GE(Parsed.Phases[0].TotalUs, 0.0);

  // Malformed input and schema mismatches are rejected.
  EXPECT_FALSE(parseProfileJson("not json", Parsed, Error));
  EXPECT_FALSE(parseProfileJson("{\"schema\":\"nope\",\"phases\":[]}",
                                Parsed, Error));
}

TEST_F(ProfilerTest, PublishesPhaseMetrics) {
  Profiler &P = Profiler::global();
  P.enable();
  {
    CWS_PHASE("pub.phase");
    PhaseScope S("pub.phase");
    S.work("units", 4);
  }
  P.disable();

  Registry R;
  publishProfilerStats(P, R);
  std::string Prom = R.prometheusText();
  EXPECT_NE(Prom.find("cws_phase_count"), std::string::npos);
  EXPECT_NE(Prom.find("cws_phase_total_us"), std::string::npos);
  EXPECT_NE(Prom.find("cws_phase_self_us"), std::string::npos);
  EXPECT_NE(Prom.find("cws_phase_work"), std::string::npos);
  EXPECT_NE(Prom.find("pub.phase"), std::string::npos);
}

TEST_F(ProfilerTest, ChromeTraceFragment) {
  Profiler &P = Profiler::global();
  EXPECT_EQ(P.chromeTraceEvents(), "");
  P.enable();
  {
    CWS_PHASE("trace.me");
  }
  P.disable();
  std::string Fragment = P.chromeTraceEvents();
  ASSERT_FALSE(Fragment.empty());
  // A complete-event slice naming the phase; fragments are spliced into
  // a JSON array, so no enclosing brackets.
  EXPECT_NE(Fragment.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Fragment.find("trace.me"), std::string::npos);
  EXPECT_EQ(Fragment.front(), '{');
  EXPECT_EQ(Fragment.back(), '}');
}

/// Counts and work counters of a profiled VO run, wall time stripped.
std::map<std::string, std::pair<uint64_t, std::vector<std::pair<
                                              std::string, uint64_t>>>>
profiledVoWork(size_t Shards, size_t BuildThreads) {
  Profiler &P = Profiler::global();
  P.reset();
  P.enable();
  VoConfig Config;
  Config.JobCount = 24;
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 4;
  Config.Shards = Shards;
  Config.Strategy.BuildThreads = BuildThreads;
  runVirtualOrganization(Config, StrategyKind::S1, /*Seed=*/5);
  P.disable();
  std::map<std::string,
           std::pair<uint64_t, std::vector<std::pair<std::string, uint64_t>>>>
      Out;
  for (const PhaseStats &S : P.snapshot())
    Out[S.Name] = {S.Count, S.Work};
  P.reset();
  return Out;
}

TEST_F(ProfilerTest, VoRunCountsAreShardAndThreadInvariant) {
  auto Reference = profiledVoWork(/*Shards=*/1, /*BuildThreads=*/1);
  ASSERT_FALSE(Reference.empty());
  EXPECT_TRUE(Reference.count("sim.tick"));
  EXPECT_TRUE(Reference.count("chain.dp"));
  EXPECT_TRUE(Reference.count("strategy.build"));
  for (size_t Shards : {size_t(1), size_t(4)})
    for (size_t BuildThreads : {size_t(1), size_t(4)}) {
      if (Shards == 1 && BuildThreads == 1)
        continue;
      auto Got = profiledVoWork(Shards, BuildThreads);
      EXPECT_EQ(Got, Reference)
          << "profile diverged at shards=" << Shards
          << " build_threads=" << BuildThreads;
    }
}

} // namespace
