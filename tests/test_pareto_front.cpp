//===-- tests/test_pareto_front.cpp - Pareto front maintenance tests ------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/ParetoFront.h"
#include "support/Prng.h"
#include "support/SmallVector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace cws;

namespace {

/// The (Finish, Cost) shape of the chain DP's labels.
struct L {
  int64_t Finish;
  double Cost;
};

bool operator==(const L &A, const L &B) {
  return A.Finish == B.Finish && A.Cost == B.Cost;
}

/// The reference semantics `paretoInsert` must reproduce: a full linear
/// scan (as the allocator did before the fast path) over an unordered
/// membership view of the front.
template <typename FrontT>
bool referenceInsert(FrontT &Front, const L &New, size_t MaxFrontSize) {
  for (const L &E : Front)
    if (E.Finish <= New.Finish && costLeq(E.Cost, New.Cost))
      return false; // Dominated by an incumbent (ties keep it).
  for (auto It = Front.begin(); It != Front.end();)
    if (It->Finish >= New.Finish && costLeq(New.Cost, It->Cost))
      It = Front.erase(It);
    else
      ++It;
  auto Pos = Front.begin();
  while (Pos != Front.end() && Pos->Finish < New.Finish)
    ++Pos;
  Front.insert(Pos, New);
  if (Front.size() > MaxFrontSize)
    Front.erase(Front.begin() + static_cast<ptrdiff_t>(Front.size() / 2));
  return true;
}

TEST(CostLeq, ToleratesTheEpsilonBothWays) {
  EXPECT_TRUE(costLeq(1.0, 1.0));
  EXPECT_TRUE(costLeq(1.0 + CostEpsilon / 2, 1.0));
  EXPECT_TRUE(costLeq(1.0, 1.0 + CostEpsilon / 2));
  EXPECT_FALSE(costLeq(1.0 + 2 * CostEpsilon, 1.0));
  EXPECT_TRUE(costLeq(0.5, 1.0));
  EXPECT_FALSE(costLeq(1.0, 0.5));
}

TEST(ParetoInsert, FirstLabelAlwaysEnters) {
  std::vector<L> F;
  ParetoInsertOutcome O = paretoInsert(F, L{10, 5.0}, 8);
  EXPECT_TRUE(O.Inserted);
  EXPECT_FALSE(O.EvictedForCap);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], (L{10, 5.0}));
}

TEST(ParetoInsert, DominatedByEarlierCheaperLabelIsRejected) {
  std::vector<L> F;
  EXPECT_TRUE(paretoInsert(F, L{10, 5.0}, 8).Inserted);
  // Later finish, same cost: strictly worse.
  EXPECT_FALSE(paretoInsert(F, L{12, 5.0}, 8).Inserted);
  // Later finish, more expensive: strictly worse.
  EXPECT_FALSE(paretoInsert(F, L{12, 7.0}, 8).Inserted);
  EXPECT_EQ(F.size(), 1u);
}

TEST(ParetoInsert, EqualFinishTieKeepsTheIncumbent) {
  std::vector<L> F;
  EXPECT_TRUE(paretoInsert(F, L{10, 5.0}, 8).Inserted);
  // Same (Finish, Cost): the incumbent survives, the copy is dropped.
  EXPECT_FALSE(paretoInsert(F, L{10, 5.0}, 8).Inserted);
  // Equal within the epsilon counts as a tie, not an improvement.
  EXPECT_FALSE(paretoInsert(F, L{10, 5.0 + CostEpsilon / 2}, 8).Inserted);
  EXPECT_EQ(F.size(), 1u);
}

TEST(ParetoInsert, EqualFinishCheaperLabelReplaces) {
  std::vector<L> F;
  EXPECT_TRUE(paretoInsert(F, L{10, 5.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{10, 3.0}, 8).Inserted);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], (L{10, 3.0}));
}

TEST(ParetoInsert, EqualCostEarlierFinishReplaces) {
  std::vector<L> F;
  EXPECT_TRUE(paretoInsert(F, L{10, 5.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{8, 5.0}, 8).Inserted);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], (L{8, 5.0}));
}

TEST(ParetoInsert, DominatedSuffixIsErasedInOneRange) {
  std::vector<L> F;
  // A clean front: Finish ascending, Cost strictly descending.
  EXPECT_TRUE(paretoInsert(F, L{4, 9.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{6, 7.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{8, 5.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{10, 3.0}, 8).Inserted);
  // Finishes before 6 and is cheaper than everything from there on:
  // evicts {6,7}, {8,5}, {10,3} in one contiguous erase.
  EXPECT_TRUE(paretoInsert(F, L{5, 2.0}, 8).Inserted);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F[0], (L{4, 9.0}));
  EXPECT_EQ(F[1], (L{5, 2.0}));
}

TEST(ParetoInsert, CapEvictionDropsTheMiddleAndKeepsBothExtremes) {
  std::vector<L> F;
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(
        paretoInsert(F, L{10 + I, 10.0 - I}, /*MaxFrontSize=*/3).Inserted);
  // The 4th insert overflows the cap; the middle label goes, the
  // fastest and the cheapest stay.
  ASSERT_EQ(F.size(), 3u);
  EXPECT_EQ(F.front().Finish, 10);
  EXPECT_EQ(F.back().Finish, 13);
  EXPECT_DOUBLE_EQ(F.front().Cost, 10.0);
  EXPECT_DOUBLE_EQ(F.back().Cost, 7.0);
}

TEST(ParetoInsert, CapEvictionIsReported) {
  std::vector<L> F;
  EXPECT_FALSE(paretoInsert(F, L{1, 3.0}, 2).EvictedForCap);
  EXPECT_FALSE(paretoInsert(F, L{2, 2.0}, 2).EvictedForCap);
  ParetoInsertOutcome O = paretoInsert(F, L{3, 1.0}, 2);
  EXPECT_TRUE(O.Inserted);
  EXPECT_TRUE(O.EvictedForCap);
  EXPECT_EQ(F.size(), 2u);
}

TEST(ParetoInsert, FrontInvariantHoldsUnderRandomInserts) {
  Prng Rng(7);
  for (int Round = 0; Round < 50; ++Round) {
    std::vector<L> F;
    for (int I = 0; I < 200; ++I) {
      L New{static_cast<int64_t>(Rng.uniformInt(0, 30)),
            static_cast<double>(Rng.uniformInt(0, 30))};
      paretoInsert(F, New, 8);
      ASSERT_LE(F.size(), 8u);
      for (size_t K = 1; K < F.size(); ++K) {
        // Sorted by Finish ascending, Cost strictly descending: no
        // label dominates another.
        ASSERT_LT(F[K - 1].Finish, F[K].Finish);
        ASSERT_GT(F[K - 1].Cost, F[K].Cost);
      }
    }
  }
}

TEST(ParetoInsert, MatchesTheLinearReferenceExactly) {
  // The fast path (binary search + neighbor dominance + suffix erase)
  // must keep the exact label sets of the full linear scan it replaced
  // — the tier-1 tests pin schedules built on these fronts.
  Prng Rng(42);
  for (int Round = 0; Round < 100; ++Round) {
    std::vector<L> Fast;
    std::vector<L> Ref;
    size_t Cap = 1 + static_cast<size_t>(Rng.uniformInt(0, 7));
    for (int I = 0; I < 120; ++I) {
      L New{static_cast<int64_t>(Rng.uniformInt(0, 20)),
            static_cast<double>(Rng.uniformInt(0, 20)) / 2.0};
      bool InsertedFast = paretoInsert(Fast, New, Cap).Inserted;
      bool InsertedRef = referenceInsert(Ref, New, Cap);
      ASSERT_EQ(InsertedFast, InsertedRef)
          << "label (" << New.Finish << ", " << New.Cost << ")";
      ASSERT_EQ(Fast.size(), Ref.size());
      for (size_t K = 0; K < Fast.size(); ++K)
        ASSERT_EQ(Fast[K], Ref[K]);
    }
  }
}

TEST(ParetoInsert, WorksOnSmallVectorFronts) {
  // The allocator's front type: inline storage, raw-pointer iterators.
  SmallVector<L, 4> F;
  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(paretoInsert(F, L{10 + I, 10.0 - I}, 8).Inserted);
  EXPECT_EQ(F.size(), 6u);
  EXPECT_FALSE(F.inlined()); // Grew past the inline capacity.
  EXPECT_FALSE(paretoInsert(F, L{20, 10.0}, 8).Inserted);
  EXPECT_TRUE(paretoInsert(F, L{9, 0.5}, 8).Inserted);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], (L{9, 0.5}));
}

TEST(SmallVector, InlineThenHeapGrowthPreservesContents) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  EXPECT_TRUE(V.inlined());
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_TRUE(V.inlined());
  V.push_back(4); // Spills to the heap.
  EXPECT_FALSE(V.inlined());
  ASSERT_EQ(V.size(), 5u);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(SmallVector, InsertAndEraseShiftLikeVector) {
  SmallVector<int, 8> V;
  for (int I : {1, 2, 4, 5})
    V.push_back(I);
  V.insert(V.begin() + 2, 3);
  ASSERT_EQ(V.size(), 5u);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I + 1);
  V.erase(V.begin() + 1, V.begin() + 3); // Drops 2, 3.
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 4);
  EXPECT_EQ(V[2], 5);
  V.erase(V.begin());
  ASSERT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0], 4);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(SmallVector, CopyIsIndependent) {
  SmallVector<int, 2> A;
  for (int I = 0; I < 5; ++I)
    A.push_back(I);
  SmallVector<int, 2> B(A);
  B.push_back(5);
  EXPECT_EQ(A.size(), 5u);
  EXPECT_EQ(B.size(), 6u);
  A = B;
  ASSERT_EQ(A.size(), 6u);
  EXPECT_EQ(A[5], 5);
}

} // namespace
