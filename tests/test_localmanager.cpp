//===-- tests/test_localmanager.cpp - Local manager tests -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/BackgroundLoad.h"
#include "flow/LocalManager.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

struct LocalFixture {
  Grid Env = makeSmallGrid(); // perfs 1.0, 0.8, 0.4, 0.33
  Domain D{"all", {0, 1, 2, 3}};
};

} // namespace

TEST(LocalManager, PolicyNames) {
  EXPECT_STREQ(localQueuePolicyName(LocalQueuePolicy::Immediate),
               "immediate");
  EXPECT_STREQ(localQueuePolicyName(LocalQueuePolicy::StrictFcfs),
               "strict-fcfs");
}

TEST(LocalManager, AdvanceReservationWithinDomain) {
  LocalFixture F;
  LocalManager M(F.Env, F.D, LocalQueuePolicy::Immediate);
  EXPECT_TRUE(M.reserveAdvance(1, 10, 20, 42));
  EXPECT_FALSE(F.Env.node(1).timeline().isFree(10, 20));
  // Conflicting reservation fails.
  EXPECT_FALSE(M.reserveAdvance(1, 15, 25, 43));
}

TEST(LocalManager, AdvanceReservationOutsideDomainIsRefused) {
  LocalFixture F;
  Domain Partial{"fast", {0, 1}};
  LocalManager M(F.Env, Partial, LocalQueuePolicy::Immediate);
  EXPECT_FALSE(M.reserveAdvance(3, 0, 5, 42));
  EXPECT_TRUE(F.Env.node(3).timeline().isFree(0, 5));
}

TEST(LocalManager, LocalJobPicksEarliestNode) {
  LocalFixture F;
  // Nodes 0..2 busy early; node 3 free.
  for (unsigned NodeId : {0u, 1u, 2u})
    F.Env.node(NodeId).timeline().reserve(0, 50, 9);
  LocalManager M(F.Env, F.D, LocalQueuePolicy::Immediate);
  auto P = M.submitLocal(0, 10, BackgroundOwner);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->NodeId, 3u);
  EXPECT_EQ(P->Start, 0);
}

TEST(LocalManager, ImmediateFillsEarlierGaps) {
  LocalFixture F;
  Domain One{"one", {0}};
  F.Env.node(0).timeline().reserve(10, 100, 9);
  LocalManager M(F.Env, One, LocalQueuePolicy::Immediate);
  // First job jumps way ahead (gap at 100+), second fits at 0.
  auto Big = M.submitLocal(0, 50, BackgroundOwner);
  ASSERT_TRUE(Big.has_value());
  EXPECT_EQ(Big->Start, 100);
  auto Small = M.submitLocal(0, 10, BackgroundOwner);
  ASSERT_TRUE(Small.has_value());
  EXPECT_EQ(Small->Start, 0);
}

TEST(LocalManager, StrictFcfsNeverJumpsTheQueue) {
  LocalFixture F;
  Domain One{"one", {0}};
  F.Env.node(0).timeline().reserve(10, 100, 9);
  LocalManager M(F.Env, One, LocalQueuePolicy::StrictFcfs);
  auto Big = M.submitLocal(0, 50, BackgroundOwner);
  ASSERT_TRUE(Big.has_value());
  EXPECT_EQ(Big->Start, 100);
  // The gap at [0, 10) is left unused by strict FCFS.
  auto Small = M.submitLocal(0, 10, BackgroundOwner);
  ASSERT_TRUE(Small.has_value());
  EXPECT_GE(Small->Start, 100);
  EXPECT_TRUE(F.Env.node(0).timeline().isFree(0, 10));
}

TEST(LocalManager, LookaheadRejectsFarBookings) {
  LocalFixture F;
  Domain One{"one", {0}};
  F.Env.node(0).timeline().reserve(0, 500, 9);
  LocalManager M(F.Env, One, LocalQueuePolicy::Immediate,
                 /*MaxLookahead=*/100);
  EXPECT_FALSE(M.submitLocal(0, 10, BackgroundOwner).has_value());
  EXPECT_EQ(M.rejected(), 1u);
  EXPECT_EQ(M.placed(), 0u);
}

TEST(LocalManager, StatsTrackWaits) {
  LocalFixture F;
  Domain One{"one", {0}};
  F.Env.node(0).timeline().reserve(0, 20, 9);
  LocalManager M(F.Env, One, LocalQueuePolicy::Immediate);
  M.submitLocal(0, 5, BackgroundOwner);  // waits 20
  M.submitLocal(25, 5, BackgroundOwner); // waits 0
  EXPECT_EQ(M.placed(), 2u);
  EXPECT_DOUBLE_EQ(M.meanLocalWait(), 10.0);
}

TEST(LocalManager, ReservationsAndLocalJobsCoexist) {
  LocalFixture F;
  LocalManager M(F.Env, F.D, LocalQueuePolicy::Immediate);
  ASSERT_TRUE(M.reserveAdvance(0, 0, 1000, 42));
  ASSERT_TRUE(M.reserveAdvance(1, 0, 1000, 42));
  ASSERT_TRUE(M.reserveAdvance(2, 0, 1000, 42));
  auto P = M.submitLocal(5, 10, BackgroundOwner);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->NodeId, 3u); // Only node left.
}
