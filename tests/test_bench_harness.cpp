//===-- tests/test_bench_harness.cpp - Bench harness tests ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
//
// The structured benchmark harness: registration, the warmup /
// repetition discipline, work-counter stability enforcement, the
// BENCH_*.json round trip with its provenance stamp, and the
// compareBench verdict taxonomy (Identical / Compatible / Regressed /
// Refused) that backs the CI ratchet.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cws;
using namespace cws::bench;

namespace {

// Registration happens via static initializers, so these fixture
// benches live at namespace scope and record into globals the tests
// inspect. Only runBench invocations below execute them.
int FixtureCalls = 0;
int FixtureMeasuredCalls = 0;

CWS_BENCH(harness_fixture, "test fixture: one metric, stable work",
          /*Reps=*/3, /*Warmup=*/2, /*Profile=*/true) {
  ++FixtureCalls;
  if (Ctx.measured())
    ++FixtureMeasuredCalls;
  Ctx.setSeed(7);
  Ctx.setExecSeed(11);
  Ctx.setInvalidation("scan");
  Ctx.setConfig("jobs=5\n");
  Ctx.setWork("units", 40);
  Ctx.addMetric("latency_us", 100.0 + 10.0 * Ctx.rep());
  Ctx.check("always holds", true);
  CWS_PHASE("fixture.phase");
}

CWS_BENCH(harness_unstable_fixture, "test fixture: rep-varying work",
          /*Reps=*/2, /*Warmup=*/0, /*Profile=*/false) {
  Ctx.setSeed(1);
  Ctx.setWork("drifting", 10 + Ctx.rep());
}

const BenchInfo *findBench(const std::string &Name) {
  for (const BenchInfo *B : BenchRegistry::global().all())
    if (Name == B->Name)
      return B;
  return nullptr;
}

const uint64_t *findWork(const std::vector<std::pair<std::string, uint64_t>> &W,
                         const std::string &Counter) {
  for (const auto &[Name, Value] : W)
    if (Name == Counter)
      return &Value;
  return nullptr;
}

TEST(BenchRegistryTest, MacroRegistersSortedByName) {
  std::vector<const BenchInfo *> All = BenchRegistry::global().all();
  ASSERT_GE(All.size(), 2u);
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(std::string(All[I - 1]->Name), std::string(All[I]->Name));
  const BenchInfo *Fixture = findBench("harness_fixture");
  ASSERT_NE(Fixture, nullptr);
  EXPECT_EQ(Fixture->DefaultReps, 3);
  EXPECT_EQ(Fixture->DefaultWarmup, 2);
  EXPECT_TRUE(Fixture->Profile);
}

TEST(BenchRunTest, WarmupRepsAndProvenanceStamp) {
  const BenchInfo *Fixture = findBench("harness_fixture");
  ASSERT_NE(Fixture, nullptr);
  FixtureCalls = 0;
  FixtureMeasuredCalls = 0;
  BenchRun Run = runBench(*Fixture, /*Reps=*/0, /*Warmup=*/-1,
                          "cws-bench harness_fixture");
  // Defaults apply: 2 warmup + 3 measured bodies.
  EXPECT_EQ(FixtureCalls, 5);
  EXPECT_EQ(FixtureMeasuredCalls, 3);
  EXPECT_EQ(Run.Reps, 3);
  EXPECT_EQ(Run.Warmup, 2);
  EXPECT_TRUE(Run.passed());

  // Provenance carries what the body stamped.
  EXPECT_TRUE(Run.Prov.Stamped);
  EXPECT_EQ(Run.Prov.Seed, 7u);
  EXPECT_EQ(Run.ExecSeed, 11u);
  EXPECT_EQ(Run.Invalidation, "scan");
  EXPECT_EQ(Run.Prov.ScenarioId, "bench:harness_fixture");
  EXPECT_FALSE(Run.Prov.ConfigHash.empty());
  EXPECT_EQ(Run.Prov.Cli, "cws-bench harness_fixture");

  // Work recorded once per rep, stable, so it survives as one counter.
  const uint64_t *Units = findWork(Run.Work, "units");
  ASSERT_NE(Units, nullptr);
  EXPECT_EQ(*Units, 40u);

  // The metric pooled all three measured samples: 100, 110, 120.
  ASSERT_TRUE(Run.Metrics.count("latency_us"));
  const obs::SweepIndicatorStats &Lat = Run.Metrics.at("latency_us");
  EXPECT_EQ(Lat.N, 3u);
  EXPECT_DOUBLE_EQ(Lat.Mean, 110.0);
  EXPECT_DOUBLE_EQ(Lat.Min, 100.0);
  EXPECT_DOUBLE_EQ(Lat.Max, 120.0);

  // wall_us is recorded automatically for every measured rep.
  ASSERT_TRUE(Run.Metrics.count("wall_us"));
  EXPECT_EQ(Run.Metrics.at("wall_us").N, 3u);

  // Profile=true benches get the merged phase profile attached.
  bool SawPhase = false;
  for (const obs::PhaseStats &P : Run.Profile)
    SawPhase = SawPhase || P.Name == "fixture.phase";
  EXPECT_TRUE(SawPhase);
}

TEST(BenchRunTest, UnstableWorkFailsTheRun) {
  const BenchInfo *Unstable = findBench("harness_unstable_fixture");
  ASSERT_NE(Unstable, nullptr);
  BenchRun Run = runBench(*Unstable, 0, -1, "test");
  EXPECT_FALSE(Run.passed());
  bool SawStability = false;
  for (const CheckOutcome &C : Run.Checks)
    if (C.What.find("work_stable") != std::string::npos) {
      SawStability = true;
      EXPECT_FALSE(C.Pass);
    }
  EXPECT_TRUE(SawStability);
}

TEST(BenchJsonTest, RoundTrip) {
  const BenchInfo *Fixture = findBench("harness_fixture");
  ASSERT_NE(Fixture, nullptr);
  BenchRun Run = runBench(*Fixture, 0, -1, "cws-bench");
  std::string Json = Run.json();

  ParsedBench P;
  std::string Error;
  ASSERT_TRUE(parseBenchJson(Json, P, Error)) << Error;
  EXPECT_EQ(P.Name, "harness_fixture");
  EXPECT_EQ(P.Seed, 7u);
  EXPECT_EQ(P.ExecSeed, 11u);
  EXPECT_EQ(P.Invalidation, "scan");
  EXPECT_EQ(P.ConfigHash, Run.Prov.ConfigHash);
  EXPECT_EQ(P.Scenario, "bench:harness_fixture");
  EXPECT_EQ(P.Reps, 3);
  EXPECT_EQ(P.Warmup, 2);
  const uint64_t *Units = findWork(P.Work, "units");
  ASSERT_NE(Units, nullptr);
  EXPECT_EQ(*Units, 40u);
  ASSERT_TRUE(P.Metrics.count("latency_us"));
  EXPECT_DOUBLE_EQ(P.Metrics.at("latency_us").Mean, 110.0);
  EXPECT_GT(P.ProfilePhases, 0u);

  EXPECT_FALSE(parseBenchJson("not json", P, Error));
  EXPECT_FALSE(parseBenchJson("{\"schema\":\"nope\"}", P, Error));
}

/// A baseline ParsedBench the verdict tests perturb.
ParsedBench baselineBench() {
  ParsedBench B;
  B.Name = "fixture";
  B.Seed = 7;
  B.ExecSeed = 7;
  B.ConfigHash = "0x00000000000000aa";
  B.Scenario = "bench:fixture";
  B.Invalidation = "index";
  B.Cli = "cws-bench fixture";
  B.Shards = 1;
  B.Reps = 3;
  B.Work = {{"labels", 1000}, {"placements", 50}};
  B.Checks = {{"oracle agrees", true}};
  obs::SweepIndicatorStats S;
  S.N = 3;
  S.Mean = 100;
  S.Ci95 = 5;
  S.P50 = 100;
  S.P90 = 104;
  S.P99 = 105;
  S.Min = 95;
  S.Max = 105;
  B.Metrics["wall_us"] = S;
  return B;
}

TEST(BenchCompareTest, IdenticalRuns) {
  ParsedBench Base = baselineBench();
  BenchCompareResult R = compareBench(Base, Base);
  EXPECT_EQ(R.Verdict, BenchVerdict::Identical);
  EXPECT_TRUE(R.Gated.empty());
  EXPECT_TRUE(R.Advisory.empty());
}

TEST(BenchCompareTest, MetricWobbleIsAdvisoryOnly) {
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  // 5x wall time: far outside CI overlap and quantile tolerance, but
  // metrics never gate.
  obs::SweepIndicatorStats &S = New.Metrics["wall_us"];
  S.Mean *= 5;
  S.P50 *= 5;
  S.P90 *= 5;
  S.P99 *= 5;
  S.Min *= 5;
  S.Max *= 5;
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Compatible);
  EXPECT_TRUE(R.Gated.empty());
  EXPECT_FALSE(R.Advisory.empty());
}

TEST(BenchCompareTest, SmallWobbleInsideCiIsCompatibleWithoutFindings) {
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  // Inside CI overlap (|103-100| <= 5+5) and the 10% quantile band:
  // metrics moved, but no advisory finding.
  obs::SweepIndicatorStats &S = New.Metrics["wall_us"];
  S.Mean = 103;
  S.P50 = 102;
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Compatible);
  EXPECT_TRUE(R.Gated.empty());
  EXPECT_TRUE(R.Advisory.empty());
}

TEST(BenchCompareTest, WorkCounterChangeRegresses) {
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  New.Work = {{"labels", 1001}, {"placements", 50}};
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Regressed);
  ASSERT_FALSE(R.Gated.empty());
  EXPECT_NE(R.Gated[0].find("labels"), std::string::npos);
}

TEST(BenchCompareTest, DroppedAndAppearedWorkCountersRegress) {
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  New.Work = {{"labels", 1000}, {"new_counter", 1}};
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Regressed);
  // Both the dropped baseline counter and the appeared one are named.
  std::string AllGated;
  for (const std::string &G : R.Gated)
    AllGated += G + "\n";
  EXPECT_NE(AllGated.find("placements"), std::string::npos);
  EXPECT_NE(AllGated.find("new_counter"), std::string::npos);
}

TEST(BenchCompareTest, FailedCheckRegresses) {
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  New.Checks = {{"oracle agrees", false}};
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Regressed);
}

TEST(BenchCompareTest, IdentityMismatchRefuses) {
  ParsedBench Base = baselineBench();
  struct Perturb {
    const char *Field;
    void (*Apply)(ParsedBench &);
  };
  const Perturb Cases[] = {
      {"name", [](ParsedBench &B) { B.Name = "other"; }},
      {"config_hash",
       [](ParsedBench &B) { B.ConfigHash = "0x00000000000000bb"; }},
      {"scenario", [](ParsedBench &B) { B.Scenario = "bench:other"; }},
      {"seed", [](ParsedBench &B) { B.Seed = 8; }},
      {"exec_seed", [](ParsedBench &B) { B.ExecSeed = 8; }},
      {"invalidation", [](ParsedBench &B) { B.Invalidation = "scan"; }},
  };
  for (const Perturb &C : Cases) {
    ParsedBench New = baselineBench();
    C.Apply(New);
    BenchCompareResult R = compareBench(Base, New);
    EXPECT_EQ(R.Verdict, BenchVerdict::Refused) << C.Field;
    std::string All;
    for (const std::string &M : R.Mismatched)
      All += M + "\n";
    EXPECT_NE(All.find(C.Field), std::string::npos) << All;
  }
}

TEST(BenchCompareTest, ShardsAndCliMayDiffer) {
  // The shard-invariance contract: the same work from a differently
  // parallel run is the same result.
  ParsedBench Base = baselineBench();
  ParsedBench New = Base;
  New.Shards = 4;
  New.Cli = "cws-bench fixture --reps 9";
  New.Reps = 9;
  BenchCompareResult R = compareBench(Base, New);
  EXPECT_EQ(R.Verdict, BenchVerdict::Identical);
}

TEST(BenchCompareTest, VerdictNames) {
  EXPECT_STREQ(benchVerdictName(BenchVerdict::Identical), "identical");
  EXPECT_STREQ(benchVerdictName(BenchVerdict::Compatible), "compatible");
  EXPECT_STREQ(benchVerdictName(BenchVerdict::Regressed), "REGRESSED");
  EXPECT_STREQ(benchVerdictName(BenchVerdict::Refused), "refused");
}

} // namespace
