//===-- tests/test_chain_allocator.cpp - DP chain allocator tests ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/ChainAllocator.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

struct AllocFixture {
  Grid G = makeSmallGrid(); // perfs 1.0, 0.8, 0.4, 0.33
  Network Net;
  DataPolicy Policy{DataPolicyKind::RemoteAccess, Net};
  CostModel Cost{G};
  AllocatorPolicy Params;
  Distribution Dist;
  std::vector<CollisionRecord> Collisions;

  AllocFixture() {
    for (const auto &N : G.nodes())
      Params.CandidateNodes.push_back(N.id());
  }

  bool allocate(const Job &J, const CriticalWork &W, Tick Release,
                Tick Deadline) {
    ChainAllocator A(J, G, Policy, Cost, Params);
    return A.allocate(W, Dist, Release, Deadline, /*Owner=*/42, Collisions);
  }
};

CriticalWork wholeChain(const Job &J) {
  CriticalWork W;
  for (unsigned T : J.topoOrder())
    W.TaskIds.push_back(T);
  W.RefLength = J.criticalPathRefTicks();
  return W;
}

} // namespace

TEST(ChainAllocator, SingleTaskCostBiasPicksCheapestNode) {
  AllocFixture F;
  Job J;
  J.addTask("t", 4, 40);
  J.setDeadline(100);
  CriticalWork W{{0}, 4};
  ASSERT_TRUE(F.allocate(J, W, 0, 100));
  const Placement *P = F.Dist.find(0);
  ASSERT_NE(P, nullptr);
  // Cheapest total = min over nodes of price * execTicks; with price
  // 10 * perf^2 that is the slowest node (id 3, perf 0.33).
  EXPECT_EQ(P->NodeId, 3u);
  EXPECT_EQ(P->Start, 0);
  EXPECT_EQ(P->End, 13); // ceil(4 / 0.33)
}

TEST(ChainAllocator, SingleTaskTimeBiasPicksFastestNode) {
  AllocFixture F;
  F.Params.Bias = OptimizationBias::Time;
  Job J;
  J.addTask("t", 4, 40);
  J.setDeadline(100);
  CriticalWork W{{0}, 4};
  ASSERT_TRUE(F.allocate(J, W, 0, 100));
  EXPECT_EQ(F.Dist.find(0)->NodeId, 0u);
  EXPECT_EQ(F.Dist.find(0)->End, 4);
}

TEST(ChainAllocator, DeadlineForcesFasterNode) {
  AllocFixture F;
  Job J;
  J.addTask("t", 4, 40);
  J.setDeadline(5);
  CriticalWork W{{0}, 4};
  ASSERT_TRUE(F.allocate(J, W, 0, 5));
  // Only nodes finishing by 5: node 0 (4 ticks) or node 1 (5 ticks);
  // cost bias picks the cheaper node 1.
  EXPECT_EQ(F.Dist.find(0)->NodeId, 1u);
}

TEST(ChainAllocator, InfeasibleDeadlineFails) {
  AllocFixture F;
  Job J;
  J.addTask("t", 4, 40);
  J.setDeadline(3);
  CriticalWork W{{0}, 4};
  EXPECT_FALSE(F.allocate(J, W, 0, 3));
  EXPECT_TRUE(F.Dist.empty());
}

TEST(ChainAllocator, ReleaseIsRespected) {
  AllocFixture F;
  Job J;
  J.addTask("t", 2, 20);
  J.setDeadline(100);
  CriticalWork W{{0}, 2};
  ASSERT_TRUE(F.allocate(J, W, 10, 100));
  EXPECT_GE(F.Dist.find(0)->Start, 10);
}

TEST(ChainAllocator, ChainRespectsTransfers) {
  AllocFixture F;
  Job J = makeChainJob(100);
  ASSERT_TRUE(F.allocate(J, wholeChain(J), 0, 100));
  expectValidDistribution(J, F.Dist);
  // Cross-node steps must leave at least the transfer gap.
  for (const auto &E : J.edges()) {
    const Placement *Src = F.Dist.find(E.Src);
    const Placement *Dst = F.Dist.find(E.Dst);
    if (Src->NodeId != Dst->NodeId)
      EXPECT_GE(Dst->Start, Src->End + E.BaseTransfer);
  }
}

TEST(ChainAllocator, OccupiedSlotShiftsTaskAndRecordsCollision) {
  AllocFixture F;
  // Restrict to one node so the task must shift.
  F.Params.CandidateNodes = {0};
  F.G.node(0).timeline().reserve(0, 6, 7);
  Job J;
  J.addTask("t", 2, 20);
  J.setDeadline(100);
  CriticalWork W{{0}, 2};
  ASSERT_TRUE(F.allocate(J, W, 0, 100));
  EXPECT_EQ(F.Dist.find(0)->Start, 6);
  ASSERT_EQ(F.Collisions.size(), 1u);
  EXPECT_EQ(F.Collisions[0].Resolution, CollisionResolution::Shifted);
  EXPECT_EQ(F.Collisions[0].BlockingOwner, 7u);
  EXPECT_EQ(F.Collisions[0].NodeId, 0u);
  EXPECT_EQ(F.Collisions[0].WantedStart, 0);
  EXPECT_EQ(F.Collisions[0].ActualStart, 6);
}

TEST(ChainAllocator, ContendedCheaperNodeRecordsMovedCollision) {
  AllocFixture F;
  // Slow, cheapest node 3 busy for a long while: the task moves.
  F.G.node(3).timeline().reserve(0, 200, 9);
  Job J;
  J.addTask("t", 4, 40);
  J.setDeadline(100);
  CriticalWork W{{0}, 4};
  ASSERT_TRUE(F.allocate(J, W, 0, 100));
  EXPECT_NE(F.Dist.find(0)->NodeId, 3u);
  bool FoundMoved = false;
  for (const auto &C : F.Collisions)
    if (C.Resolution == CollisionResolution::Moved && C.NodeId == 3)
      FoundMoved = true;
  EXPECT_TRUE(FoundMoved);
}

TEST(ChainAllocator, LatestFinishFromPlacedSuccessor) {
  AllocFixture F;
  Job J = makeChainJob(100);
  // Place task C (id 2) first, as an earlier critical work would have.
  F.Dist.add({2, 0, 20, 22, 0.0});
  ASSERT_TRUE(F.G.node(0).timeline().reserve(20, 22, 42));
  CriticalWork W{{0, 1}, 7};
  ASSERT_TRUE(F.allocate(J, W, 0, 100));
  const Placement *B = F.Dist.find(1);
  ASSERT_NE(B, nullptr);
  // B must deliver to C by 20: same node means End <= 20, cross node
  // End + transfer <= 20.
  Tick Gap = B->NodeId == 0 ? 0 : 1;
  EXPECT_LE(B->End + Gap, 20);
}

TEST(ChainAllocator, WindowTooTightFails) {
  AllocFixture F;
  Job J = makeChainJob(100);
  // C placed so early that A and B cannot possibly fit before it.
  F.Dist.add({2, 0, 3, 5, 0.0});
  ASSERT_TRUE(F.G.node(0).timeline().reserve(3, 5, 42));
  CriticalWork W{{0, 1}, 7};
  EXPECT_FALSE(F.allocate(J, W, 0, 100));
}

TEST(ChainAllocator, SwitchPenaltyGluesChain) {
  AllocFixture F;
  F.Params.NodeSwitchPenalty = 1e6;
  Job J = makeChainJob(100);
  ASSERT_TRUE(F.allocate(J, wholeChain(J), 0, 100));
  unsigned Node = F.Dist.find(0)->NodeId;
  EXPECT_EQ(F.Dist.find(1)->NodeId, Node);
  EXPECT_EQ(F.Dist.find(2)->NodeId, Node);
}

TEST(ChainAllocator, PlacementsAreReservedForOwner) {
  AllocFixture F;
  Job J = makeChainJob(100);
  ASSERT_TRUE(F.allocate(J, wholeChain(J), 0, 100));
  for (const auto &P : F.Dist.placements()) {
    const Interval *I =
        F.G.node(P.NodeId).timeline().firstOverlap(P.Start, P.End);
    ASSERT_NE(I, nullptr);
    EXPECT_EQ(I->Owner, 42u);
  }
}

TEST(ChainAllocator, EconomicCostIsPositive) {
  AllocFixture F;
  Job J = makeChainJob(100);
  ASSERT_TRUE(F.allocate(J, wholeChain(J), 0, 100));
  for (const auto &P : F.Dist.placements())
    EXPECT_GT(P.EconomicCost, 0.0);
}
