//===-- tests/test_cluster.cpp - Local batch cluster tests ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

BatchJob makeJob(unsigned Id, Tick Arrival, unsigned Nodes, Tick Est,
                 Tick Actual) {
  return {Id, Arrival, Nodes, Est, Actual};
}

} // namespace

TEST(QueuePolicy, FcfsOrdersByArrival) {
  std::vector<BatchJob> Jobs{makeJob(0, 10, 1, 5, 5), makeJob(1, 5, 1, 5, 5)};
  std::vector<size_t> Q{0, 1};
  orderQueue(Q, Jobs, QueueOrder::FCFS);
  EXPECT_EQ(Q, (std::vector<size_t>{1, 0}));
}

TEST(QueuePolicy, LwfOrdersByWork) {
  std::vector<BatchJob> Jobs{makeJob(0, 0, 4, 10, 10),  // work 40
                             makeJob(1, 5, 1, 5, 5),    // work 5
                             makeJob(2, 1, 2, 10, 10)}; // work 20
  std::vector<size_t> Q{0, 1, 2};
  orderQueue(Q, Jobs, QueueOrder::LWF);
  EXPECT_EQ(Q, (std::vector<size_t>{1, 2, 0}));
}

TEST(QueuePolicy, PriorityOrdersHighestFirst) {
  std::vector<BatchJob> Jobs{{0, 0, 1, 5, 5, 1},
                             {1, 1, 1, 5, 5, 3},
                             {2, 2, 1, 5, 5, 3}};
  std::vector<size_t> Q{0, 1, 2};
  orderQueue(Q, Jobs, QueueOrder::Priority);
  EXPECT_EQ(Q, (std::vector<size_t>{1, 2, 0})); // Ties broken FCFS.
}

TEST(Cluster, PriorityJobsWaitLess) {
  BatchWorkloadConfig W;
  W.JobCount = 400;
  W.NodesHi = 8;
  W.PriorityLevels = 3;
  auto Jobs = makeBatchTrace(W, 77);
  ClusterConfig Config;
  Config.NodeCount = 8;
  Config.Order = QueueOrder::Priority;
  auto Out = runCluster(Config, Jobs);
  double Wait[3] = {0, 0, 0};
  size_t Count[3] = {0, 0, 0};
  for (size_t I = 0; I < Jobs.size(); ++I) {
    Wait[Jobs[I].Priority] += static_cast<double>(Out[I].wait());
    ++Count[Jobs[I].Priority];
  }
  for (int P = 0; P < 3; ++P) {
    ASSERT_GT(Count[P], 0u);
    Wait[P] /= static_cast<double>(Count[P]);
  }
  // Paying more buys shorter waits.
  EXPECT_LT(Wait[2], Wait[1]);
  EXPECT_LT(Wait[1], Wait[0]);
}

TEST(Cluster, TracePrioritiesRespectLevels) {
  BatchWorkloadConfig W;
  W.JobCount = 200;
  W.PriorityLevels = 4;
  bool SawNonZero = false;
  for (const auto &J : makeBatchTrace(W, 5)) {
    EXPECT_GE(J.Priority, 0);
    EXPECT_LT(J.Priority, 4);
    SawNonZero |= J.Priority > 0;
  }
  EXPECT_TRUE(SawNonZero);
}

TEST(Cluster, SingleJobStartsImmediately) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  auto Out = runCluster(Config, {makeJob(0, 3, 2, 10, 8)});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0].Started);
  EXPECT_EQ(Out[0].Start, 3);
  EXPECT_EQ(Out[0].Finish, 11);
  EXPECT_EQ(Out[0].wait(), 0);
  EXPECT_EQ(Out[0].ForecastStart, 3);
}

TEST(Cluster, SerializesWhenNodesExhausted) {
  ClusterConfig Config;
  Config.NodeCount = 2;
  auto Out = runCluster(Config, {makeJob(0, 0, 2, 10, 10),
                                 makeJob(1, 0, 2, 10, 10)});
  EXPECT_EQ(Out[0].Start, 0);
  EXPECT_EQ(Out[1].Start, 10);
  EXPECT_EQ(Out[1].wait(), 10);
}

TEST(Cluster, EarlyCompletionFreesCapacity) {
  ClusterConfig Config;
  Config.NodeCount = 2;
  // First job estimates 20 but actually runs 5: the second job starts
  // at 5, not at 20.
  auto Out = runCluster(Config, {makeJob(0, 0, 2, 20, 5),
                                 makeJob(1, 0, 2, 10, 10)});
  EXPECT_EQ(Out[1].Start, 5);
  // The forecast was estimate-based, so it erred by 15.
  EXPECT_EQ(Out[1].ForecastStart, 20);
  EXPECT_EQ(Out[1].forecastError(), 15);
}

TEST(Cluster, FcfsHeadBlocksWithoutBackfill) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  Config.Backfill = BackfillMode::None;
  // Job 0 takes all nodes; job 1 (big) blocks; job 2 (small) could run
  // but must not jump ahead under strict FCFS.
  auto Out = runCluster(Config, {makeJob(0, 0, 3, 10, 10),
                                 makeJob(1, 1, 4, 10, 10),
                                 makeJob(2, 2, 1, 2, 2)});
  EXPECT_EQ(Out[0].Start, 0);
  EXPECT_EQ(Out[1].Start, 10);
  EXPECT_GE(Out[2].Start, 10);
}

TEST(Cluster, EasyBackfillLetsSmallJobThrough) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  Config.Backfill = BackfillMode::Easy;
  auto Out = runCluster(Config, {makeJob(0, 0, 3, 10, 10),
                                 makeJob(1, 1, 4, 10, 10),
                                 makeJob(2, 2, 1, 2, 2)});
  // Job 2 fits beside job 0 and finishes by 4 < 10, not delaying job 1.
  EXPECT_EQ(Out[2].Start, 2);
  EXPECT_EQ(Out[1].Start, 10);
}

TEST(Cluster, EasyBackfillNeverDelaysHead) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  Config.Backfill = BackfillMode::Easy;
  // The backfill candidate would overrun into the head's slot: it must
  // not start (it needs the head's nodes).
  auto Out = runCluster(Config, {makeJob(0, 0, 3, 10, 10),
                                 makeJob(1, 1, 4, 10, 10),
                                 makeJob(2, 2, 2, 30, 30)});
  EXPECT_EQ(Out[1].Start, 10);
  EXPECT_GE(Out[2].Start, 10);
}

TEST(Cluster, ConservativeBackfillsIntoHoles) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  Config.Backfill = BackfillMode::Conservative;
  auto Out = runCluster(Config, {makeJob(0, 0, 3, 10, 10),
                                 makeJob(1, 1, 4, 10, 10),
                                 makeJob(2, 2, 1, 2, 2)});
  EXPECT_EQ(Out[2].Start, 2);
  EXPECT_EQ(Out[1].Start, 10);
}

TEST(Cluster, AdvanceReservationBlocksCapacity) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  // All four nodes reserved during [0, 20): the job waits.
  std::vector<AdvanceReservation> Resv{{0, 20, 4}};
  auto Out = runCluster(Config, {makeJob(0, 0, 1, 5, 5)}, Resv);
  EXPECT_EQ(Out[0].Start, 20);
}

TEST(Cluster, PartialReservationLeavesRoom) {
  ClusterConfig Config;
  Config.NodeCount = 4;
  std::vector<AdvanceReservation> Resv{{0, 20, 2}};
  auto Out = runCluster(Config, {makeJob(0, 0, 2, 5, 5),
                                 makeJob(1, 0, 3, 5, 5)});
  // Without reservations both could overlap; now check with them:
  Out = runCluster(Config, {makeJob(0, 0, 2, 5, 5), makeJob(1, 0, 3, 5, 5)},
                   Resv);
  EXPECT_EQ(Out[0].Start, 0);  // 2 free nodes remain.
  EXPECT_EQ(Out[1].Start, 20); // 3 nodes only after the reservation.
}

TEST(Cluster, ReservationsIncreaseWaitingTime) {
  // The Section-5 claim: advance reservations nearly always increase
  // queue waiting time.
  BatchWorkloadConfig W;
  W.JobCount = 200;
  W.NodesHi = 4;
  std::vector<BatchJob> Jobs = makeBatchTrace(W, 5);
  ClusterConfig Config;
  Config.NodeCount = 8;
  auto Plain = summarizeCluster(Jobs, runCluster(Config, Jobs), 8);
  std::vector<AdvanceReservation> Resv;
  for (Tick T = 50; T < 2000; T += 200)
    Resv.push_back({T, T + 60, 4});
  auto Loaded = summarizeCluster(Jobs, runCluster(Config, Jobs, Resv), 8);
  EXPECT_GT(Loaded.MeanWait, Plain.MeanWait);
}

TEST(Cluster, BackfillReducesWaitOnMixedLoad) {
  BatchWorkloadConfig W;
  W.JobCount = 300;
  W.NodesHi = 8;
  std::vector<BatchJob> Jobs = makeBatchTrace(W, 9);
  ClusterConfig None;
  None.NodeCount = 8;
  ClusterConfig Easy = None;
  Easy.Backfill = BackfillMode::Easy;
  auto MNone = summarizeCluster(Jobs, runCluster(None, Jobs), 8);
  auto MEasy = summarizeCluster(Jobs, runCluster(Easy, Jobs), 8);
  EXPECT_LE(MEasy.MeanWait, MNone.MeanWait);
}

TEST(Cluster, MetricsAreConsistent) {
  BatchWorkloadConfig W;
  W.JobCount = 100;
  W.NodesHi = 4;
  std::vector<BatchJob> Jobs = makeBatchTrace(W, 3);
  ClusterConfig Config;
  Config.NodeCount = 8;
  auto Out = runCluster(Config, Jobs);
  auto M = summarizeCluster(Jobs, Out, 8);
  EXPECT_GE(M.MeanWait, 0.0);
  EXPECT_GE(M.MaxWait, M.MeanWait);
  EXPECT_GE(M.MeanSlowdown, 1.0);
  EXPECT_GT(M.Utilization, 0.0);
  EXPECT_LE(M.Utilization, 1.0);
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_TRUE(Out[I].Started);
    EXPECT_GE(Out[I].Start, Jobs[I].Arrival);
    EXPECT_EQ(Out[I].Finish, Out[I].Start + Jobs[I].ActualTicks);
  }
}

TEST(Cluster, TraceGeneratorHonoursConfig) {
  BatchWorkloadConfig W;
  W.JobCount = 500;
  auto Jobs = makeBatchTrace(W, 11);
  ASSERT_EQ(Jobs.size(), 500u);
  Tick Prev = 0;
  for (const auto &J : Jobs) {
    EXPECT_GE(J.Arrival, Prev);
    Prev = J.Arrival;
    EXPECT_GE(J.Nodes, W.NodesLo);
    EXPECT_LE(J.Nodes, W.NodesHi);
    EXPECT_GE(J.EstTicks, W.EstLo);
    EXPECT_LE(J.EstTicks, W.EstHi);
    EXPECT_GE(J.ActualTicks, 1);
    EXPECT_LE(J.ActualTicks, J.EstTicks);
  }
}

TEST(Cluster, TraceIsDeterministic) {
  BatchWorkloadConfig W;
  W.JobCount = 50;
  auto A = makeBatchTrace(W, 42);
  auto B = makeBatchTrace(W, 42);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Arrival, B[I].Arrival);
    EXPECT_EQ(A[I].EstTicks, B[I].EstTicks);
    EXPECT_EQ(A[I].ActualTicks, B[I].ActualTicks);
  }
}

TEST(Cluster, BackfillModeNames) {
  EXPECT_STREQ(backfillModeName(BackfillMode::None), "none");
  EXPECT_STREQ(backfillModeName(BackfillMode::Easy), "easy");
  EXPECT_STREQ(backfillModeName(BackfillMode::Conservative), "conservative");
  EXPECT_STREQ(queueOrderName(QueueOrder::FCFS), "fcfs");
  EXPECT_STREQ(queueOrderName(QueueOrder::LWF), "lwf");
}

/// All scheduler configurations must complete every job of random
/// traces with basic sanity (starts after arrival, no lost jobs).
class ClusterSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(ClusterSweep, CompletesAllJobs) {
  auto [OrderIdx, BackfillIdx, Seed] = GetParam();
  BatchWorkloadConfig W;
  W.JobCount = 150;
  W.NodesHi = 6;
  auto Jobs = makeBatchTrace(W, Seed);
  ClusterConfig Config;
  Config.NodeCount = 8;
  Config.Order = static_cast<QueueOrder>(OrderIdx);
  Config.Backfill = static_cast<BackfillMode>(BackfillIdx);
  auto Out = runCluster(Config, Jobs);
  ASSERT_EQ(Out.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_TRUE(Out[I].Started);
    EXPECT_GE(Out[I].Start, Jobs[I].Arrival);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 7u, 13u)));
