#!/bin/sh
#===-- tests/bench_smoke.sh - End-to-end cws-bench smoke test ------------===#
#
# Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
# Scheduling" (PaCT 2009). Distributed without any warranty.
#
# Usage: bench_smoke.sh <cws-bench> <cws-sim> <cws-report>
#
# Pins the perf-trajectory acceptance properties end to end:
#  1. BENCH_*.json work counters and config hashes are byte-identical
#     across build-thread and shard counts (the determinism contract
#     that makes the ratchet honest on any host);
#  2. a clean `--against` rerun exits 0 — wall-time wobble never gates;
#  3. an injected work-counter regression exits 1 and names the counter;
#  4. tampering only with wall-time statistics still exits 0;
#  5. a config-hash (identity) mismatch is refused with exit 2;
#  6. the exit-code convention holds on unknown flags / empty filters;
#  7. cws-sim --profile + cws-report --profile round-trip: the report
#     renders the phase table and phase.* SLO rules gate on it.
#
#===----------------------------------------------------------------------===#
set -eu

BENCH=$1
SIM=$2
REPORT=$3
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "bench_smoke: $1" >&2
  exit 1
}

# The quickest registered bench keeps the smoke fast; strategy build is
# a pure single-run workload.
NAME=strategy_build_throughput

#=== 1. Work counters are thread/shard invariant =========================#
run_cell() {
  # $1 = out dir, $2 = build threads, $3 = shards
  CWS_BUILD_THREADS=$2 CWS_SHARDS=$3 \
    "$BENCH" --filter "$NAME" --reps 1 --warmup 0 --out "$1" > /dev/null \
    || fail "bench run failed at threads=$2 shards=$3"
  [ -f "$1/BENCH_$NAME.json" ] || fail "no BENCH_$NAME.json in $1"
}
run_cell "$TMP/t1s1" 1 1
run_cell "$TMP/t4s1" 4 1
run_cell "$TMP/t1s4" 1 4
run_cell "$TMP/t4s4" 4 4

# Strip the measured wall-time statistics and per-cell provenance
# (shards, cli) and compare what must be deterministic: the identity
# fields, every work-counter object (bench and per-phase), the phase
# counts, and the check outcomes.
stable() {
  grep -o '"config_hash": "[^"]*"' "$1"
  grep -o '"seed": [0-9]*' "$1"
  grep -o '"exec_seed": [0-9]*' "$1"
  grep -o '"invalidation": "[^"]*"' "$1"
  grep -o '"work": {[^}]*}' "$1"
  grep -o '"name": "[^"]*", "count": [0-9]*' "$1"
  grep -o '"what": "[^"]*", "pass": [a-z]*' "$1"
}
stable "$TMP/t1s1/BENCH_$NAME.json" > "$TMP/ref.stable"
for CELL in t4s1 t1s4 t4s4; do
  stable "$TMP/$CELL/BENCH_$NAME.json" > "$TMP/$CELL.stable"
  cmp -s "$TMP/ref.stable" "$TMP/$CELL.stable" \
    || fail "work counters diverged at cell $CELL"
done

#=== 2. Clean rerun against the baseline exits 0 =========================#
"$BENCH" --filter "$NAME" --reps 1 --warmup 0 --out "$TMP/new" \
         --against "$TMP/t1s1" > "$TMP/clean.txt" \
  || fail "clean --against rerun gated (wall wobble must be advisory)"
grep -q "$NAME" "$TMP/clean.txt" || fail "comparison output lacks the bench"

#=== 3. Injected work regression exits 1 =================================#
mkdir "$TMP/badwork"
sed 's/"variants_total": *[0-9]*/"variants_total": 99999/' \
    "$TMP/t1s1/BENCH_$NAME.json" > "$TMP/badwork/BENCH_$NAME.json"
STATUS=0
"$BENCH" --filter "$NAME" --reps 1 --warmup 0 --out "$TMP/new2" \
         --against "$TMP/badwork" > "$TMP/reg.txt" || STATUS=$?
[ "$STATUS" -eq 1 ] || fail "work regression exited $STATUS, expected 1"
grep -q "variants_total" "$TMP/reg.txt" \
  || fail "regression output does not name the work counter"

#=== 4. Wall-time-only tamper stays advisory (exit 0) ====================#
mkdir "$TMP/badwall"
sed '/"wall_us"/,/}/s/\("mean": *\)[0-9.e+-]*/\19999999/' \
    "$TMP/t1s1/BENCH_$NAME.json" > "$TMP/badwall/BENCH_$NAME.json"
"$BENCH" --filter "$NAME" --reps 1 --warmup 0 --out "$TMP/new3" \
         --against "$TMP/badwall" > /dev/null \
  || fail "wall-time-only shift gated; metrics must stay advisory"

#=== 5. Identity mismatch is refused (exit 2) ============================#
mkdir "$TMP/badhash"
sed 's/"config_hash": *"0x/"config_hash": "0y/' \
    "$TMP/t1s1/BENCH_$NAME.json" > "$TMP/badhash/BENCH_$NAME.json"
STATUS=0
"$BENCH" --filter "$NAME" --reps 1 --warmup 0 --out "$TMP/new4" \
         --against "$TMP/badhash" > "$TMP/ref.txt" || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "identity mismatch exited $STATUS, expected 2"
grep -q "config_hash" "$TMP/ref.txt" \
  || fail "refusal does not name the mismatched field"

#=== 6. Exit-code convention =============================================#
STATUS=0; "$BENCH" --bogus 2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "unknown flag exited $STATUS, expected 2"
STATUS=0
"$BENCH" --filter no_such_bench --out "$TMP/none" 2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "empty filter exited $STATUS, expected 2"

#=== 7. Profile round trip through cws-report ============================#
"$SIM" --jobs 15 --seed 3 --journal "$TMP/run.jsonl" \
       --profile "$TMP/profile.json" > /dev/null 2>&1 \
  || fail "cws-sim --profile failed"
cat > "$TMP/run.slo" <<'EOF'
# Phase budgets gate only when a profile is attached.
phase.sim.tick.count <= 1000000
phase.chain.dp.self_us >= 0
EOF
"$REPORT" --journal "$TMP/run.jsonl" --profile "$TMP/profile.json" \
          --slo "$TMP/run.slo" > "$TMP/report.md" \
  || fail "phase SLO rules breached with a profile attached"
grep -q "## Where the time went" "$TMP/report.md" \
  || fail "report lacks the phase-profile section"
grep -q "chain.dp" "$TMP/report.md" \
  || fail "phase table lacks the DP phase"
STATUS=0
"$REPORT" --journal "$TMP/run.jsonl" --slo "$TMP/run.slo" \
          > /dev/null 2> "$TMP/noprof.err" || STATUS=$?
[ "$STATUS" -eq 1 ] || fail "phase rules without a profile exited $STATUS, expected 1 (fail closed)"
grep -q "unknown indicator 'phase." "$TMP/noprof.err" \
  || fail "fail-closed breach does not name the phase indicator"

echo "bench smoke ok"
