//===-- tests/test_invalidation.cpp - Event-driven invalidation tests -----===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
//
// The reserved-slot interval index (resource/SlotIndex) and the
// event-driven invalidation pass built on it: index bookkeeping, the
// committed-job invalidation regression, the empty-scan histogram fix,
// and the scan-vs-index differential (byte-identical journals).
//
//===----------------------------------------------------------------------===//

#include "flow/BackgroundLoad.h"
#include "flow/JobManager.h"
#include "flow/Metascheduler.h"
#include "flow/VirtualOrganization.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "resource/SlotIndex.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace cws;

namespace {

struct FlowFixture {
  Grid Env = Grid::makeFig2();
  Network Net;
  Economy Econ;
  unsigned User;
  StrategyConfig Config;
  Metascheduler Meta{Env, Net, Econ, Config};
  JobManager Manager{Meta, 0};

  FlowFixture() { User = Econ.addUser(1e9); }
};

class InvalidationTest : public ::testing::Test {
protected:
  void SetUp() override { obs::Journal::global().reset(); }
  void TearDown() override { obs::Journal::global().reset(); }
};

size_t countKind(const std::string &Jsonl, const std::string &Kind) {
  std::string Needle = "\"kind\":\"" + Kind + "\"";
  size_t N = 0;
  for (size_t At = Jsonl.find(Needle); At != std::string::npos;
       At = Jsonl.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// SlotIndex
//===----------------------------------------------------------------------===//

namespace {

/// Sorted (job, variant) pairs for order-insensitive comparison.
std::vector<std::pair<unsigned, unsigned>>
sortedHits(const std::vector<SlotRef> &Hits) {
  std::vector<std::pair<unsigned, unsigned>> Out;
  for (const SlotRef &H : Hits)
    Out.emplace_back(H.JobId, H.Variant);
  std::sort(Out.begin(), Out.end());
  return Out;
}

using HitList = std::vector<std::pair<unsigned, unsigned>>;

} // namespace

TEST(SlotIndex, AddCollectRemoveRoundTrip) {
  SlotIndex Idx(/*BucketTicks=*/16);
  Idx.add(/*JobId=*/1, /*Variant=*/0, /*NodeId=*/0, 10, 20);
  Idx.add(1, 1, 2, 30, 40);
  Idx.add(2, 0, 0, 15, 25);
  EXPECT_EQ(Idx.slotCount(), 3u);
  EXPECT_EQ(Idx.jobCount(), 2u);
  EXPECT_TRUE(Idx.tracks(1));
  EXPECT_FALSE(Idx.tracks(9));

  std::vector<SlotRef> Hits;
  // [12, 18) on node 0 overlaps both jobs' slots there.
  EXPECT_EQ(Idx.collect(0, 12, 18, Hits), 2u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{1, 0}, {2, 0}}));

  // Same window on node 2 touches only job 1's other variant — and
  // only when the times intersect.
  Hits.clear();
  EXPECT_EQ(Idx.collect(2, 35, 50, Hits), 1u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{1, 1}}));
  Hits.clear();
  EXPECT_EQ(Idx.collect(2, 40, 50, Hits), 0u); // [begin, end) abuts only
  EXPECT_EQ(Idx.collect(1, 0, 100, Hits), 0u); // untouched node

  EXPECT_EQ(Idx.remove(1), 2u);
  EXPECT_FALSE(Idx.tracks(1));
  EXPECT_EQ(Idx.slotCount(), 1u);
  Hits.clear();
  EXPECT_EQ(Idx.collect(0, 12, 18, Hits), 1u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{2, 0}}));
  EXPECT_EQ(Idx.remove(1), 0u); // already gone
  EXPECT_EQ(Idx.remove(2), 1u);
  EXPECT_EQ(Idx.slotCount(), 0u);
  EXPECT_EQ(Idx.jobCount(), 0u);
}

TEST(SlotIndex, RemoveVariantLeavesSiblingsIndexed) {
  SlotIndex Idx(/*BucketTicks=*/16);
  Idx.add(3, /*Variant=*/0, /*NodeId=*/0, 10, 20);
  Idx.add(3, /*Variant=*/1, /*NodeId=*/0, 12, 22);
  EXPECT_EQ(Idx.slotCount(), 2u);

  // Dropping one confirmed-broken variant keeps the other visible.
  EXPECT_EQ(Idx.removeVariant(3, 0), 1u);
  EXPECT_TRUE(Idx.tracks(3));
  EXPECT_EQ(Idx.slotCount(), 1u);
  std::vector<SlotRef> Hits;
  EXPECT_EQ(Idx.collect(0, 10, 25, Hits), 1u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{3, 1}}));

  EXPECT_EQ(Idx.removeVariant(3, 0), 0u); // already gone
  EXPECT_EQ(Idx.removeVariant(3, 1), 1u); // last variant retires the job
  EXPECT_FALSE(Idx.tracks(3));
  EXPECT_EQ(Idx.jobCount(), 0u);
  EXPECT_EQ(Idx.slotCount(), 0u);
}

TEST(SlotIndex, MultiBucketSlotIsReportedOncePerQuery) {
  SlotIndex Idx(/*BucketTicks=*/8);
  // One slot spanning four buckets, queried by a window spanning three:
  // the bucketed map must not report it once per bucket.
  Idx.add(5, 0, 0, 4, 30);
  EXPECT_EQ(Idx.slotCount(), 1u);
  std::vector<SlotRef> Hits;
  EXPECT_EQ(Idx.collect(0, 0, 32, Hits), 1u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{5, 0}}));
  // A query starting mid-slot still finds it exactly once.
  Hits.clear();
  EXPECT_EQ(Idx.collect(0, 17, 40, Hits), 1u);
  EXPECT_EQ(sortedHits(Hits), (HitList{{5, 0}}));
  EXPECT_EQ(Idx.remove(5), 1u);
  EXPECT_EQ(Idx.slotCount(), 0u);
}

TEST(SlotIndex, EmptyIntervalsAreIgnored) {
  SlotIndex Idx;
  Idx.add(1, 0, 0, 10, 10);
  EXPECT_EQ(Idx.slotCount(), 0u);
  EXPECT_FALSE(Idx.tracks(1));
  std::vector<SlotRef> Hits;
  EXPECT_EQ(Idx.collect(0, 0, 100, Hits), 0u);
}

//===----------------------------------------------------------------------===//
// Committed jobs survive environment changes (regression)
//===----------------------------------------------------------------------===//

TEST_F(InvalidationTest, CommittedJobIsNotInvalidatedByOverlappingChange) {
  FlowFixture F;
  Job J = makeFig2Job();
  J.setDeadline(60);
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  ASSERT_TRUE(F.Manager.onNegotiation(J.id(), 3).has_value());
  ASSERT_TRUE(F.Manager.stats()[0].Committed);
  ASSERT_FALSE(F.Manager.stats()[0].TtlClosed);

  // Background load floods every free slot of the window the strategy
  // planned in, overlapping (in time) the committed reservations.
  for (auto &N : F.Env.nodes())
    for (Tick T = 0; T < 60; ++T)
      N.timeline().reserve(T, T + 1, BackgroundOwner);

  obs::Counter &Invalidated =
      obs::Registry::global().counter("cws_jobs_invalidated_total");
  uint64_t Before = Invalidated.value();
  obs::Journal &Jn = obs::Journal::global();
  Jn.enable(256);
  F.Manager.onEnvironmentChange(5);
  Jn.disable();

  // The committed schedule's reservations are pinned: no invalidation
  // journal entry, no counter bump, and the TTL stays open until the
  // job completes.
  EXPECT_EQ(countKind(Jn.jsonl(), "invalidate"), 0u);
  EXPECT_EQ(Invalidated.value(), Before);
  EXPECT_FALSE(F.Manager.stats()[0].TtlClosed);

  F.Manager.onCompletion(J.id(), F.Manager.stats()[0].Completion);
  EXPECT_TRUE(F.Manager.stats()[0].TtlClosed);
}

//===----------------------------------------------------------------------===//
// Empty scans keep the size histogram honest
//===----------------------------------------------------------------------===//

TEST_F(InvalidationTest, EnvChangeWithNoOpenStrategiesSkipsInstruments) {
  FlowFixture F;
  obs::Registry &R = obs::Registry::global();
  obs::Counter &ScanJobs = R.counter("cws_env_scan_jobs_total");
  obs::Histogram &ScanSize = R.histogram(
      "cws_env_scan_size",
      {8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0, 32768.0});

  // No jobs at all: the change must not observe a zero into the
  // histogram percentiles.
  uint64_t Jobs = ScanJobs.value(), Sizes = ScanSize.count();
  F.Manager.onEnvironmentChange(1);
  EXPECT_EQ(ScanJobs.value(), Jobs);
  EXPECT_EQ(ScanSize.count(), Sizes);

  // A committed in-flight job is still scanned by the oracle (that
  // wasted work is the index's baseline) — one job, one observation.
  Job J = makeFig2Job();
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  Tick Completion = *F.Manager.onNegotiation(J.id(), 2);
  F.Manager.onEnvironmentChange(4);
  EXPECT_EQ(ScanJobs.value(), Jobs + 1);
  EXPECT_EQ(ScanSize.count(), Sizes + 1);

  // After completion nothing is TTL-open again: back to skipping.
  F.Manager.onCompletion(J.id(), Completion);
  Jobs = ScanJobs.value();
  Sizes = ScanSize.count();
  F.Manager.onEnvironmentChange(Completion + 1);
  EXPECT_EQ(ScanJobs.value(), Jobs);
  EXPECT_EQ(ScanSize.count(), Sizes);
}

//===----------------------------------------------------------------------===//
// Index mode without a change log falls back to the scan
//===----------------------------------------------------------------------===//

TEST_F(InvalidationTest, IndexModeWithoutLogStillClosesTtl) {
  FlowFixture F;
  F.Manager.setInvalidationMode(InvalidationMode::Index);
  ASSERT_TRUE(F.Manager.onArrival(makeFig2Job(), 0));
  for (auto &N : F.Env.nodes())
    N.timeline().reserve(0, 100, BackgroundOwner);
  F.Manager.onEnvironmentChange(7);
  EXPECT_TRUE(F.Manager.stats()[0].TtlClosed);
  EXPECT_EQ(F.Manager.stats()[0].Ttl, 7);
}

//===----------------------------------------------------------------------===//
// Scan-vs-index differential: byte-identical journals
//===----------------------------------------------------------------------===//

namespace {

std::string journaledVoRun(InvalidationMode Mode, uint64_t Seed,
                           size_t BuildThreads) {
  VoConfig Config;
  Config.JobCount = 40;
  Config.Strategy.BuildThreads = BuildThreads;
  Config.Invalidation = Mode;
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(Config, StrategyKind::S1, Seed);
  Jn.disable();
  std::string Out = Jn.jsonl();
  Jn.reset();
  return Out;
}

} // namespace

TEST_F(InvalidationTest, ScanAndIndexJournalsAreByteIdentical) {
  for (uint64_t Seed : {3u, 7u, 11u}) {
    for (size_t Threads : {size_t(1), size_t(4)}) {
      std::string Scan =
          journaledVoRun(InvalidationMode::Scan, Seed, Threads);
      std::string Index =
          journaledVoRun(InvalidationMode::Index, Seed, Threads);
      EXPECT_EQ(Scan, Index)
          << "seed " << Seed << ", " << Threads << " build threads";
      // The differential is only meaningful when the run actually
      // invalidated something.
      EXPECT_GT(countKind(Scan, "invalidate"), 0u) << "seed " << Seed;
    }
  }
}

TEST_F(InvalidationTest, IndexRevalidatesFarFewerPlacementsThanScan) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &ScanPlacements =
      R.counter("cws_env_scan_placements_total");
  obs::Counter &IndexPlacements =
      R.counter("cws_env_index_placements_total");
  obs::Counter &IndexCandidates =
      R.counter("cws_env_index_candidates_total");

  uint64_t ScanBase = ScanPlacements.value();
  journaledVoRun(InvalidationMode::Scan, /*Seed=*/7, /*BuildThreads=*/1);
  uint64_t ScanCost = ScanPlacements.value() - ScanBase;

  uint64_t IndexBase = IndexPlacements.value();
  uint64_t CandidatesBase = IndexCandidates.value();
  uint64_t ScanDuringIndex = ScanPlacements.value();
  journaledVoRun(InvalidationMode::Index, /*Seed=*/7, /*BuildThreads=*/1);
  uint64_t IndexCost = IndexPlacements.value() - IndexBase;

  // The index pass visits only intersected jobs; the scan re-validates
  // every open strategy on every change (the acceptance bar is >= 10x
  // on the 60-job example workload; this 40-job run clears it too).
  EXPECT_GT(ScanCost, 0u);
  EXPECT_GE(ScanCost, 10 * std::max<uint64_t>(IndexCost, 1));
  EXPECT_GT(IndexCandidates.value(), CandidatesBase);
  // And the index run never fell back to scanning.
  EXPECT_EQ(ScanPlacements.value(), ScanDuringIndex);
}
