//===-- tests/test_explain.cpp - Journal explain/golden tests -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the decision journal on a deterministic VO run
/// (schema validity, causal-chain completeness, byte-determinism across
/// build-thread counts) plus golden renderings of the cws-explain
/// analyses on a hand-built journal.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "obs/Explain.h"
#include "obs/Journal.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

class ExplainTest : public ::testing::Test {
protected:
  void SetUp() override { Journal::global().reset(); }
  void TearDown() override { Journal::global().reset(); }
};

VoConfig smallConfig(size_t BuildThreads) {
  VoConfig Config;
  Config.JobCount = 30;
  Config.Strategy.BuildThreads = BuildThreads;
  return Config;
}

std::string journaledRun(size_t BuildThreads) {
  Journal &Jn = Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(smallConfig(BuildThreads), StrategyKind::S1,
                         /*Seed=*/7);
  Jn.disable();
  std::string Out = Jn.jsonl();
  Jn.reset();
  return Out;
}

TEST_F(ExplainTest, SimulationJournalPassesValidation) {
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(journaledRun(1), J, Error)) << Error;
  EXPECT_EQ(J.Dropped, 0u);
  EXPECT_GT(J.Events.size(), 0u);
  std::vector<std::string> Violations = validateJournal(J);
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " violations, first: " << Violations.front();
}

TEST_F(ExplainTest, JournalIsByteDeterministicAcrossBuildThreads) {
  std::string Serial = journaledRun(1);
  std::string Parallel = journaledRun(4);
  EXPECT_EQ(Serial, Parallel);
}

TEST_F(ExplainTest, EveryJobChainStartsWithArrivalThenAdmission) {
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(journaledRun(1), J, Error)) << Error;
  // Group kinds per job in id order; every journaled job must open with
  // arrival -> admission and close with a terminal decision.
  std::map<int64_t, std::vector<const ParsedJournalEvent *>> PerJob;
  for (const ParsedJournalEvent &E : J.Events)
    if (E.JobId >= 0)
      PerJob[E.JobId].push_back(&E);
  EXPECT_GT(PerJob.size(), 0u);
  for (const auto &[Job, Chain] : PerJob) {
    ASSERT_GE(Chain.size(), 2u) << "job " << Job;
    EXPECT_EQ(Chain[0]->Kind, "arrival") << "job " << Job;
    EXPECT_GE(Chain[0]->FlowId, 0) << "job " << Job;
    // The admission verdict follows the arrival and its variant events.
    bool SawAdmission = false;
    bool SawTerminal = false;
    for (const ParsedJournalEvent *E : Chain) {
      if (E->Kind == "admission")
        SawAdmission = true;
      if (E->Kind == "commit" || E->Kind == "reject")
        SawTerminal = true;
    }
    EXPECT_TRUE(SawAdmission) << "job " << Job;
    EXPECT_TRUE(SawTerminal) << "job " << Job;
  }
}

TEST_F(ExplainTest, ExplainJobRendersTheTimeline) {
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(journaledRun(1), J, Error)) << Error;
  ASSERT_FALSE(J.Events.empty());
  // Pick the first job that appears.
  int64_t Job = -1;
  for (const ParsedJournalEvent &E : J.Events)
    if (E.JobId >= 0) {
      Job = E.JobId;
      break;
    }
  ASSERT_GE(Job, 0);
  std::string Out = explainJob(J, Job);
  EXPECT_NE(Out.find("job " + std::to_string(Job) + " (flow "),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find(" arrival"), std::string::npos) << Out;
  EXPECT_NE(Out.find(" admission"), std::string::npos) << Out;
  EXPECT_EQ(explainJob(J, 999999),
            "job 999999: no events in journal\n");
}

TEST_F(ExplainTest, SummaryCountsFlowsAndEnvChanges) {
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(journaledRun(1), J, Error)) << Error;
  std::string Out = journalSummary(J);
  EXPECT_NE(Out.find("journal: "), std::string::npos) << Out;
  EXPECT_NE(Out.find("environment change(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("arrivals"), std::string::npos) << Out;
  EXPECT_NE(Out.find("commits"), std::string::npos) << Out;
}

TEST_F(ExplainTest, SummaryListsFlowsInAscendingIdOrder) {
  // Arrivals recorded out of order (flows 2, 0, 1); the summary table
  // must render ascending ids no matter how events interleave.
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 1, 0, {{"deadline", 9}, {"tasks", 1}},
            "S3", /*FlowId=*/2);
  Jn.append(JournalKind::Arrival, 2, 1, {{"deadline", 9}, {"tasks", 1}},
            "S1", /*FlowId=*/0);
  Jn.append(JournalKind::Arrival, 3, 2, {{"deadline", 9}, {"tasks", 1}},
            "S2", /*FlowId=*/1);
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  std::string Out = journalSummary(J);
  size_t Flow0 = Out.find("\n| 0 ");
  size_t Flow1 = Out.find("\n| 1 ");
  size_t Flow2 = Out.find("\n| 2 ");
  ASSERT_NE(Flow0, std::string::npos) << Out;
  ASSERT_NE(Flow1, std::string::npos) << Out;
  ASSERT_NE(Flow2, std::string::npos) << Out;
  EXPECT_LT(Flow0, Flow1);
  EXPECT_LT(Flow1, Flow2);
}

/// Builds the canonical broken-strategy story by hand: an arrival, the
/// background placement that broke the schedule, the invalidation
/// naming the broken slot, the reallocation and the recovery commit.
ParsedJournal syntheticReallocation() {
  Journal &Jn = Journal::global();
  Jn.reset();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 4, 100, {{"deadline", 600}, {"tasks", 3}},
            "S1", /*FlowId=*/0);
  Jn.append(JournalKind::EnvChange, -1, 130,
            {{"node", 2}, {"start", 150}, {"end", 210}}, "background");
  Jn.append(JournalKind::Invalidate, 4, 130,
            {{"variant", 1},
             {"node", 2},
             {"start", 160},
             {"end", 200},
             {"busy_start", 150},
             {"busy_end", 210},
             {"ttl", 30}},
            "stale");
  Jn.append(JournalKind::Reallocate, 4, 131, {}, "stale-strategy");
  Jn.append(JournalKind::Commit, 4, 140,
            {{"variant", 2}, {"start", 220}, {"makespan", 60}}, "reallocated");
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  EXPECT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  EXPECT_TRUE(validateJournal(J).empty());
  Jn.reset();
  return J;
}

TEST_F(ExplainTest, WhyReallocatedNamesTriggerSlotAndOutcome) {
  ParsedJournal J = syntheticReallocation();
  EXPECT_EQ(
      explainReallocations(J),
      "job 4 reallocated at t=131 (#4) [stale-strategy]\n"
      "  trigger: #2 t=130 env.change [background] node=2 start=150 end=210\n"
      "  invalidated: #3 t=130 invalidate [stale] variant=1 node=2 "
      "start=160 end=200 busy_start=150 busy_end=210 ttl=30\n"
      "  outcome: #5 t=140 commit [reallocated] variant=2 start=220 "
      "makespan=60\n"
      "1 reallocation(s)\n");
}

TEST_F(ExplainTest, WhyRejectedShowsReasonAndPrecedingDecision) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 8, 50, {{"deadline", 70}, {"tasks", 2}},
            "S1", /*FlowId=*/1);
  Jn.append(JournalKind::Admission, 8, 50,
            {{"admissible", 0}, {"feasible", 0}});
  Jn.append(JournalKind::Reject, 8, 50, {}, "inadmissible");
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  EXPECT_EQ(explainRejections(J),
            "job 8 rejected at t=50 (#3): inadmissible\n"
            "  after: #2 t=50 admission admissible=0 feasible=0\n"
            "1 rejection(s)\n");
  EXPECT_EQ(explainReallocations(J), "no reallocations in journal\n");
}

TEST_F(ExplainTest, ValidatorFlagsBrokenJournals) {
  // A cause must reference an earlier event.
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":2,"
      "\"dropped\":0}\n"
      "{\"id\":1,\"kind\":\"arrival\",\"tick\":0,\"job\":1}\n"
      "{\"id\":2,\"kind\":\"commit\",\"tick\":5,\"job\":1,\"cause\":9}\n",
      J, Error))
      << Error;
  std::vector<std::string> V = validateJournal(J);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_NE(V[0].find("does not precede"), std::string::npos) << V[0];

  // A trigger must reference an env.change.
  ASSERT_TRUE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":2,"
      "\"dropped\":0}\n"
      "{\"id\":1,\"kind\":\"arrival\",\"tick\":0,\"job\":1}\n"
      "{\"id\":2,\"kind\":\"reallocate\",\"tick\":5,\"job\":1,"
      "\"cause\":1,\"trigger\":1}\n",
      J, Error))
      << Error;
  V = validateJournal(J);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_NE(V[0].find("not an env.change"), std::string::npos) << V[0];

  // Meta counts must match the surviving events.
  ASSERT_TRUE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":5,"
      "\"dropped\":0}\n"
      "{\"id\":1,\"kind\":\"note\",\"tick\":0}\n",
      J, Error))
      << Error;
  EXPECT_FALSE(validateJournal(J).empty());
}

} // namespace
