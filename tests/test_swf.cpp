//===-- tests/test_swf.cpp - SWF trace import/export tests ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "batch/Swf.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

// Fields: id submit wait run alloc cpu mem reqProcs reqTime ...
const char SampleSwf[] =
    "; Parallel Workloads Archive style header\n"
    "; UnixStartTime: 0\n"
    "1 0 -1 100 4 -1 -1 4 120 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"
    "2 50 -1 30 2 -1 -1 2 60 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"
    "3 80 -1 200 8 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n";

} // namespace

TEST(Swf, ReadsBasicFields) {
  SwfImportResult R = readSwf(SampleSwf);
  ASSERT_EQ(R.Jobs.size(), 3u);
  EXPECT_EQ(R.SkippedLines, 0u);
  EXPECT_EQ(R.Jobs[0].Id, 1u);
  EXPECT_EQ(R.Jobs[0].Arrival, 0);
  EXPECT_EQ(R.Jobs[0].Nodes, 4u);
  EXPECT_EQ(R.Jobs[0].EstTicks, 120);
  EXPECT_EQ(R.Jobs[0].ActualTicks, 100);
}

TEST(Swf, FallsBackToAllocatedAndRuntime) {
  // Job 3 has no requested procs/time: allocated (8) and runtime (200)
  // are used; actual is clamped to the estimate.
  SwfImportResult R = readSwf(SampleSwf);
  EXPECT_EQ(R.Jobs[2].Nodes, 8u);
  EXPECT_EQ(R.Jobs[2].EstTicks, 200);
  EXPECT_EQ(R.Jobs[2].ActualTicks, 200);
}

TEST(Swf, SkipsCommentsAndMalformedLines) {
  SwfImportResult R = readSwf("; comment\nnot a number line\n"
                              "1 0 -1 banana 4\n"
                              "2 0 -1 10 2 -1 -1 2 20\n");
  EXPECT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.SkippedLines, 2u);
}

TEST(Swf, SkipsDegenerateJobs) {
  SwfImportResult R = readSwf("1 0 -1 0 4 -1 -1 4 10\n"  // zero runtime
                              "2 0 -1 10 0 -1 -1 0 10\n" // zero procs
                              "3 -5 -1 10 1 -1 -1 1 10\n"); // negative submit
  EXPECT_TRUE(R.Jobs.empty());
  EXPECT_EQ(R.SkippedLines, 3u);
}

TEST(Swf, NodeCapClamps) {
  SwfImportConfig Config;
  Config.NodeCap = 4;
  SwfImportResult R = readSwf(SampleSwf, Config);
  EXPECT_EQ(R.Jobs[2].Nodes, 4u);
}

TEST(Swf, TimeScaleDividesTimes) {
  SwfImportConfig Config;
  Config.TimeScale = 10;
  SwfImportResult R = readSwf(SampleSwf, Config);
  EXPECT_EQ(R.Jobs[0].EstTicks, 12);
  EXPECT_EQ(R.Jobs[0].ActualTicks, 10);
  EXPECT_EQ(R.Jobs[1].Arrival, 5);
}

TEST(Swf, MaxJobsStopsEarly) {
  SwfImportConfig Config;
  Config.MaxJobs = 2;
  EXPECT_EQ(readSwf(SampleSwf, Config).Jobs.size(), 2u);
}

TEST(Swf, SortsByArrival) {
  SwfImportResult R = readSwf("2 50 -1 10 1 -1 -1 1 20\n"
                              "1 10 -1 10 1 -1 -1 1 20\n");
  ASSERT_EQ(R.Jobs.size(), 2u);
  EXPECT_EQ(R.Jobs[0].Id, 1u);
  EXPECT_EQ(R.Jobs[1].Id, 2u);
}

TEST(Swf, RoundTripsThroughWriter) {
  BatchWorkloadConfig W;
  W.JobCount = 40;
  std::vector<BatchJob> Original = makeBatchTrace(W, 5);
  SwfImportResult R = readSwf(writeSwf(Original));
  ASSERT_EQ(R.Jobs.size(), Original.size());
  EXPECT_EQ(R.SkippedLines, 0u);
  for (size_t I = 0; I < Original.size(); ++I) {
    EXPECT_EQ(R.Jobs[I].Id, Original[I].Id);
    EXPECT_EQ(R.Jobs[I].Arrival, Original[I].Arrival);
    EXPECT_EQ(R.Jobs[I].Nodes, Original[I].Nodes);
    EXPECT_EQ(R.Jobs[I].EstTicks, Original[I].EstTicks);
    EXPECT_EQ(R.Jobs[I].ActualTicks, Original[I].ActualTicks);
  }
}

TEST(Swf, ImportedTraceRunsThroughTheCluster) {
  SwfImportConfig Config;
  Config.NodeCap = 8;
  SwfImportResult R = readSwf(SampleSwf, Config);
  ClusterConfig CC;
  CC.NodeCount = 8;
  auto Out = runCluster(CC, R.Jobs);
  for (const auto &O : Out)
    EXPECT_TRUE(O.Started);
}
