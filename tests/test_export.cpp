//===-- tests/test_export.cpp - CSV export tests --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/Export.h"
#include "metrics/QoS.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cws;

namespace {

size_t countLines(const std::string &S) {
  size_t Lines = 0;
  for (char C : S)
    if (C == '\n')
      ++Lines;
  return Lines;
}

} // namespace

TEST(Export, DistributionCsvHasOneRowPerPlacement) {
  Job J = makeChainJob();
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  std::string Csv = distributionCsv(J, R.Dist);
  EXPECT_EQ(countLines(Csv), 1 + J.taskCount()); // Header + rows.
  EXPECT_EQ(Csv.rfind("task,name,node,start,end,cost\n", 0), 0u);
  for (const auto &T : J.tasks())
    EXPECT_NE(Csv.find("," + T.Name + ","), std::string::npos);
}

TEST(Export, DistributionCsvFieldsParseBack) {
  Job J = makeChainJob();
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  std::string Csv = distributionCsv(J, R.Dist);
  std::istringstream In(Csv);
  std::string Line;
  std::getline(In, Line); // Header.
  size_t Rows = 0;
  while (std::getline(In, Line)) {
    unsigned TaskId, NodeId;
    long long Start, End;
    double Cost;
    char Name[64];
    ASSERT_EQ(std::sscanf(Line.c_str(), "%u,%63[^,],%u,%lld,%lld,%lf",
                          &TaskId, Name, &NodeId, &Start, &End, &Cost),
              6)
        << Line;
    const Placement *P = R.Dist.find(TaskId);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(P->NodeId, NodeId);
    EXPECT_EQ(P->Start, Start);
    EXPECT_EQ(P->End, End);
    ++Rows;
  }
  EXPECT_EQ(Rows, J.taskCount());
}

TEST(Export, StrategyCsvCoversAllVariants) {
  StrategyConfig Config;
  Strategy S = Strategy::build(makeFig2Job(), Grid::makeFig2(), Network{},
                               Config, 1);
  std::string Csv = strategyCsv(S);
  EXPECT_EQ(countLines(Csv), 1 + S.variants().size());
  // Infeasible variants keep empty numeric fields but stay present.
  size_t Feasible = 0;
  std::istringstream In(Csv);
  std::string Line;
  std::getline(In, Line);
  while (std::getline(In, Line))
    if (Line.find(",1,") != std::string::npos)
      ++Feasible;
  EXPECT_EQ(Feasible, S.feasibleCount());
}

TEST(Export, VoStatsCsvRoundTripCounts) {
  VoJobStats A;
  A.JobId = 7;
  A.Arrival = 3;
  A.Deadline = 40;
  A.Admissible = true;
  A.Committed = true;
  A.ActualStart = 5;
  A.Completion = 30;
  A.Cost = 12.5;
  A.Cf = 9;
  A.Ttl = 22;
  A.TtlClosed = true;
  VoJobStats B; // All defaults.
  std::string Csv = voStatsCsv({A, B});
  EXPECT_EQ(countLines(Csv), 3u);
  EXPECT_NE(Csv.find("7,3,40,1,1,0,0,0,0,5,30,12.500,9,22,1,0"),
            std::string::npos);
}

TEST(Export, PublishVoAggregatesFillsRealGauges) {
  VoAggregates A;
  A.Jobs = 200;
  A.Committed = 150;
  A.AdmissiblePercent = 87.5;
  A.CommittedPercent = 75.0;
  A.MeanCost = 12.25;
  A.MeanCf = 41.0;
  obs::Registry R;
  publishVoAggregates(A, R);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_jobs").value(), 200.0);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_committed_jobs").value(), 150.0);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_admissible_percent").value(), 87.5);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_committed_percent").value(), 75.0);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_mean_cost").value(), 12.25);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_mean_cf").value(), 41.0);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("cws_vo_admissible_percent 87.5\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE cws_vo_jobs gauge\n"), std::string::npos);
  // Republishing overwrites in place: one snapshot, one series each.
  A.AdmissiblePercent = 90.0;
  publishVoAggregates(A, R);
  EXPECT_DOUBLE_EQ(R.realGauge("cws_vo_admissible_percent").value(), 90.0);
}

TEST(Export, EmptyInputsYieldHeaderOnly) {
  Job J;
  Distribution D;
  EXPECT_EQ(countLines(distributionCsv(J, D)), 1u);
  EXPECT_EQ(countLines(voStatsCsv({})), 1u);
}
