//===-- tests/test_estimates.cpp - Estimation grid tests ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Estimates.h"
#include "resource/Grid.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(EstimateGrid, ReproducesFig2Table) {
  Job J = makeFig2Job();
  EstimateGrid E(J, {1.0, 0.5, 1.0 / 3.0, 0.25});
  const Tick Expected[6][4] = {
      {2, 4, 6, 8}, {3, 6, 9, 12}, {1, 2, 3, 4},
      {2, 4, 6, 8}, {1, 2, 3, 4},  {2, 4, 6, 8},
  };
  for (unsigned TaskId = 0; TaskId < 6; ++TaskId)
    for (size_t Level = 0; Level < 4; ++Level)
      EXPECT_EQ(E.ticks(TaskId, Level), Expected[TaskId][Level])
          << "P" << TaskId + 1 << " level " << Level;
}

TEST(EstimateGrid, PerfAt) {
  Job J = makeFig2Job();
  EstimateGrid E(J, {1.0, 0.5});
  EXPECT_DOUBLE_EQ(E.perfAt(0), 1.0);
  EXPECT_DOUBLE_EQ(E.perfAt(1), 0.5);
  EXPECT_EQ(E.levels(), 2u);
}

TEST(EstimateGrid, CoveredLevelsFull) {
  Job J = makeFig2Job();
  EstimateGrid E(J, {1.0, 0.5, 0.25});
  EXPECT_EQ(E.coveredLevels(false), (std::vector<size_t>{0, 1, 2}));
}

TEST(EstimateGrid, CoveredLevelsBestWorst) {
  Job J = makeFig2Job();
  EstimateGrid E(J, {1.0, 0.5, 0.33, 0.25});
  EXPECT_EQ(E.coveredLevels(true), (std::vector<size_t>{0, 3}));
}

TEST(EstimateGrid, BestWorstDegeneratesToFull) {
  Job J = makeFig2Job();
  EstimateGrid E(J, {1.0, 0.5});
  EXPECT_EQ(E.coveredLevels(true), (std::vector<size_t>{0, 1}));
}

TEST(EstimateGrid, EnvironmentLevelsAreSortedAndDeduped) {
  Grid G;
  G.addNode(0.5);
  G.addNode(1.0);
  G.addNode(0.5);
  G.addNode(0.33);
  std::vector<double> Levels = EstimateGrid::environmentLevels(G);
  ASSERT_EQ(Levels.size(), 3u);
  EXPECT_DOUBLE_EQ(Levels[0], 1.0);
  EXPECT_DOUBLE_EQ(Levels[1], 0.5);
  EXPECT_DOUBLE_EQ(Levels[2], 0.33);
}

TEST(EstimateGrid, Fig2EnvironmentHasFourLevels) {
  Grid G = Grid::makeFig2();
  EXPECT_EQ(EstimateGrid::environmentLevels(G).size(), 4u);
}
