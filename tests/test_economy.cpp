//===-- tests/test_economy.cpp - VO economy tests -------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Economy.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Economy, AddUserStartsFresh) {
  Economy E;
  unsigned U = E.addUser(100.0);
  EXPECT_EQ(E.userCount(), 1u);
  EXPECT_DOUBLE_EQ(E.quota(U), 100.0);
  EXPECT_DOUBLE_EQ(E.spent(U), 0.0);
  EXPECT_DOUBLE_EQ(E.remaining(U), 100.0);
}

TEST(Economy, ChargeWithinQuota) {
  Economy E;
  unsigned U = E.addUser(100.0);
  EXPECT_TRUE(E.charge(U, 60.0));
  EXPECT_DOUBLE_EQ(E.spent(U), 60.0);
  EXPECT_DOUBLE_EQ(E.remaining(U), 40.0);
}

TEST(Economy, ChargeBeyondQuotaFailsAtomically) {
  Economy E;
  unsigned U = E.addUser(100.0);
  EXPECT_TRUE(E.charge(U, 90.0));
  EXPECT_FALSE(E.charge(U, 20.0));
  EXPECT_DOUBLE_EQ(E.spent(U), 90.0);
}

TEST(Economy, CanAffordMatchesCharge) {
  Economy E;
  unsigned U = E.addUser(50.0);
  EXPECT_TRUE(E.canAfford(U, 50.0));
  EXPECT_FALSE(E.canAfford(U, 50.1));
}

TEST(Economy, RefundRestoresQuota) {
  Economy E;
  unsigned U = E.addUser(100.0);
  E.charge(U, 80.0);
  E.refund(U, 30.0);
  EXPECT_DOUBLE_EQ(E.spent(U), 50.0);
  EXPECT_TRUE(E.charge(U, 50.0));
}

TEST(Economy, RefundNeverGoesNegative) {
  Economy E;
  unsigned U = E.addUser(100.0);
  E.charge(U, 10.0);
  E.refund(U, 50.0);
  EXPECT_DOUBLE_EQ(E.spent(U), 0.0);
}

TEST(Economy, GrantRaisesQuota) {
  // The paper's dynamic priority change: a user raises the execution
  // cost they can pay for a resource.
  Economy E;
  unsigned U = E.addUser(10.0);
  E.charge(U, 10.0);
  EXPECT_FALSE(E.canAfford(U, 1.0));
  E.grant(U, 5.0);
  EXPECT_TRUE(E.charge(U, 5.0));
}

TEST(Economy, PriorityFollowsRemainingQuota) {
  Economy E;
  unsigned Rich = E.addUser(100.0);
  unsigned Poor = E.addUser(100.0);
  E.charge(Poor, 75.0);
  EXPECT_DOUBLE_EQ(E.priority(Rich), 1.0);
  EXPECT_DOUBLE_EQ(E.priority(Poor), 0.25);
}

TEST(Economy, PriorityZeroWhenEveryoneBroke) {
  Economy E;
  unsigned U = E.addUser(10.0);
  E.charge(U, 10.0);
  EXPECT_DOUBLE_EQ(E.priority(U), 0.0);
}

TEST(Economy, MultipleUsersAreIndependent) {
  Economy E;
  unsigned A = E.addUser(10.0);
  unsigned B = E.addUser(20.0);
  E.charge(A, 5.0);
  EXPECT_DOUBLE_EQ(E.spent(A), 5.0);
  EXPECT_DOUBLE_EQ(E.spent(B), 0.0);
}
