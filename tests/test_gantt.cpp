//===-- tests/test_gantt.cpp - Gantt rendering tests ----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Gantt.h"
#include "core/Scheduler.h"
#include "job/Job.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Gantt, RendersUsedNodesOnly) {
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 1, 0, 4, 0.0});
  Job J;
  J.addTask("only", 4, 40);
  std::string Out = renderGantt(J, Env, D);
  EXPECT_NE(Out.find("node  1"), std::string::npos);
  EXPECT_EQ(Out.find("node  0"), std::string::npos);
  EXPECT_EQ(Out.find("node  2"), std::string::npos);
}

TEST(Gantt, ShowIdleNodesOption) {
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 1, 0, 4, 0.0});
  Job J;
  J.addTask("only", 4, 40);
  GanttOptions Options;
  Options.ShowIdleNodes = true;
  std::string Out = renderGantt(J, Env, D, Options);
  EXPECT_NE(Out.find("node  0"), std::string::npos);
  EXPECT_NE(Out.find("node  3"), std::string::npos);
}

TEST(Gantt, LegendListsEveryPlacement) {
  Job J = makeChainJob();
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  std::string Out = renderGantt(J, Env, R.Dist);
  EXPECT_NE(Out.find("A=A["), std::string::npos);
  EXPECT_NE(Out.find("legend:"), std::string::npos);
  for (const auto &T : J.tasks())
    EXPECT_NE(Out.find("=" + T.Name + "["), std::string::npos);
}

TEST(Gantt, ForeignLoadIsHashed) {
  Grid Env = makeSmallGrid();
  Env.node(1).timeline().reserve(0, 3, 99);
  Distribution D;
  D.add({0, 1, 4, 8, 0.0});
  Job J;
  J.addTask("t", 4, 40);
  std::string Out = renderGantt(J, Env, D);
  EXPECT_NE(Out.find('#'), std::string::npos);
  GanttOptions NoForeign;
  NoForeign.ShowForeignLoad = false;
  std::string Clean = renderGantt(J, Env, D, NoForeign);
  EXPECT_EQ(Clean.find('#'), std::string::npos);
}

TEST(Gantt, WideScheduleStaysWithinWidth) {
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 10000, 0.0});
  Job J;
  J.addTask("big", 4, 40);
  GanttOptions Options;
  Options.Width = 32;
  std::string Out = renderGantt(J, Env, D, Options);
  // Every node row (lines containing '|') fits in width + label margin.
  size_t Pos = 0;
  while ((Pos = Out.find("node", Pos)) != std::string::npos) {
    size_t Eol = Out.find('\n', Pos);
    EXPECT_LE(Eol - Pos, 32u + 24u);
    Pos = Eol;
  }
}

TEST(Gantt, EmptyDistribution) {
  Grid Env = makeSmallGrid();
  Distribution D;
  Job J;
  std::string Out = renderGantt(J, Env, D);
  EXPECT_NE(Out.find("legend:"), std::string::npos);
}
