#!/bin/sh
#===-- tests/diff_smoke.sh - End-to-end cws-diff smoke test --------------===#
#
# Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
# Scheduling" (PaCT 2009). Distributed without any warranty.
#
# Usage: diff_smoke.sh <cws-sim> <cws-diff> <cws-explain>
#
# Pins the differential-analysis acceptance properties end to end:
#  1. identical-workload runs at different shard counts and build-thread
#     counts are a semantic fixed point (exit 0) even though the meta
#     lines differ byte-wise;
#  2. an injected one-event divergence exits 1 and the Markdown report
#     names the job id, the tick, and both cause chains;
#  3. the exit-code convention holds: 2 on missing files, unknown
#     flags, and malformed artifacts;
#  4. the baseline gate round-trips: a fresh MANIFEST passes, a
#     divergent artifact fails with exit 1, a stale digest fails with 2;
#  5. cws-explain --diff-job renders both timelines and the divergence.
#
#===----------------------------------------------------------------------===#
set -eu

SIM=$1
DIFF=$2
EXPLAIN=$3
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "diff_smoke: $1" >&2
  exit 1
}

#=== 1. Fixed point across shard / thread counts =========================#
"$SIM" --jobs 12 --seed 5 --journal "$TMP/a.jsonl" \
       --timeseries "$TMP/a.csv" > /dev/null
"$SIM" --jobs 12 --seed 5 --shards 4 --build-threads 4 \
       --journal "$TMP/b.jsonl" --timeseries "$TMP/b.csv" > /dev/null
"$DIFF" "$TMP/a.jsonl" "$TMP/b.jsonl" > /dev/null \
  || fail "shard/thread count changed the journal semantics"
cmp -s "$TMP/a.jsonl" "$TMP/b.jsonl" \
  && fail "meta lines should differ byte-wise (shards, cli)"

#=== 2. Injected divergence is localized =================================#
sed '0,/"kind":"commit"/s/"kind":"commit"/"kind":"reject"/' \
    "$TMP/b.jsonl" > "$TMP/bad.jsonl"
STATUS=0
"$DIFF" --report "$TMP/rep.md" "$TMP/a.jsonl" "$TMP/bad.jsonl" \
  > "$TMP/out.txt" || STATUS=$?
[ "$STATUS" -eq 1 ] || fail "injected divergence exited $STATUS, expected 1"
grep -q "diverged at t=" "$TMP/out.txt" \
  || fail "console output does not localize the divergence tick"
grep -q "^## First divergence" "$TMP/rep.md" \
  || fail "report lacks the first-divergence section"
grep -q "^job [0-9]* diverged at t=[0-9]*" "$TMP/rep.md" \
  || fail "report does not name the diverging job and tick"
grep -q "Cause chain in A" "$TMP/rep.md" \
  || fail "report lacks run A's cause chain"
grep -q "Cause chain in B" "$TMP/rep.md" \
  || fail "report lacks run B's cause chain"

#=== 3. Exit-code convention =============================================#
STATUS=0; "$DIFF" "$TMP/missing" "$TMP/a.jsonl" 2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "missing file exited $STATUS, expected 2"
STATUS=0; "$DIFF" --bogus 2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "unknown flag exited $STATUS, expected 2"
echo "not an artifact" > "$TMP/garbage"
STATUS=0
"$DIFF" "$TMP/garbage" "$TMP/a.jsonl" 2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "undetectable artifact exited $STATUS, expected 2"
STATUS=0
"$DIFF" --mode journal "$TMP/garbage" "$TMP/a.jsonl" 2> /dev/null \
  || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "malformed journal exited $STATUS, expected 2"

#=== 4. Baseline gate ====================================================#
mkdir "$TMP/base"
cp "$TMP/a.jsonl" "$TMP/base/smoke.journal.jsonl"
cp "$TMP/a.csv" "$TMP/base/smoke.ts.csv"
for F in smoke.journal.jsonl smoke.ts.csv; do
  D=$("$DIFF" --digest "$TMP/base/$F" | cut -d' ' -f1)
  echo "$D  $F"
done > "$TMP/base/MANIFEST"
"$DIFF" --against-baseline "$TMP/base" --journal "$TMP/b.jsonl" \
        --timeseries "$TMP/a.csv" > /dev/null \
  || fail "equivalent run failed the baseline gate"
STATUS=0
"$DIFF" --against-baseline "$TMP/base" --journal "$TMP/bad.jsonl" \
        --report "$TMP/baserep.md" > /dev/null || STATUS=$?
[ "$STATUS" -eq 1 ] || fail "divergent run exited $STATUS at the gate"
grep -q "diverged at t=" "$TMP/baserep.md" \
  || fail "baseline gate report does not localize the divergence"
echo "x" >> "$TMP/base/smoke.journal.jsonl"
STATUS=0
"$DIFF" --against-baseline "$TMP/base" --journal "$TMP/a.jsonl" \
        2> /dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || fail "stale baseline digest exited $STATUS, expected 2"

#=== 5. cws-explain --diff-job ===========================================#
JOB=$(sed -n 's/.*"kind":"reject".*"job":\([0-9]*\).*/\1/p' \
      "$TMP/bad.jsonl" | head -1)
[ -n "$JOB" ] || JOB=0
"$EXPLAIN" --diff-job "$JOB" "$TMP/a.jsonl" "$TMP/bad.jsonl" \
  > "$TMP/expl.txt" || fail "cws-explain --diff-job failed"
grep -q -- "--- run A ---" "$TMP/expl.txt" \
  || fail "diff-job output lacks run A's timeline"
grep -q "diverges at t=" "$TMP/expl.txt" \
  || fail "diff-job output does not localize the divergence"

echo "diff smoke ok"
