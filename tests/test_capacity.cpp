//===-- tests/test_capacity.cpp - Capacity profile tests ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Capacity.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(CapacityProfile, EmptyIsFullyFree) {
  CapacityProfile P(8);
  EXPECT_EQ(P.busyAt(0), 0u);
  EXPECT_TRUE(P.fits(0, 100, 8));
  EXPECT_EQ(P.earliestSlot(0, 10, 8), 0);
}

TEST(CapacityProfile, ReserveRaisesBusyLevel) {
  CapacityProfile P(8);
  P.reserve(10, 20, 5);
  EXPECT_EQ(P.busyAt(9), 0u);
  EXPECT_EQ(P.busyAt(10), 5u);
  EXPECT_EQ(P.busyAt(19), 5u);
  EXPECT_EQ(P.busyAt(20), 0u);
}

TEST(CapacityProfile, FitsChecksWholeWindow) {
  CapacityProfile P(8);
  P.reserve(10, 20, 5);
  EXPECT_TRUE(P.fits(0, 10, 8));
  EXPECT_TRUE(P.fits(10, 20, 3));
  EXPECT_FALSE(P.fits(10, 20, 4));
  EXPECT_FALSE(P.fits(5, 15, 4));
  EXPECT_TRUE(P.fits(20, 30, 8));
}

TEST(CapacityProfile, OverlappingReservationsStack) {
  CapacityProfile P(8);
  P.reserve(0, 10, 3);
  P.reserve(5, 15, 3);
  EXPECT_EQ(P.busyAt(7), 6u);
  EXPECT_FALSE(P.fits(5, 10, 3));
  EXPECT_TRUE(P.fits(5, 10, 2));
}

TEST(CapacityProfile, EarliestSlotWaitsForCapacity) {
  CapacityProfile P(4);
  P.reserve(0, 10, 3);
  EXPECT_EQ(P.earliestSlot(0, 5, 1), 0);
  EXPECT_EQ(P.earliestSlot(0, 5, 2), 10);
  EXPECT_EQ(P.earliestSlot(3, 5, 2), 10);
}

TEST(CapacityProfile, EarliestSlotNeedsContiguousWindow) {
  CapacityProfile P(4);
  P.reserve(10, 20, 4);
  // 4 nodes free until 10: a 10-tick job fits at 0, an 11-tick one
  // must wait for the block to clear.
  EXPECT_EQ(P.earliestSlot(0, 10, 1), 0);
  EXPECT_EQ(P.earliestSlot(0, 11, 1), 20);
}

TEST(CapacityProfile, EarliestSlotBetweenBlocks) {
  CapacityProfile P(4);
  P.reserve(0, 10, 4);
  P.reserve(15, 25, 4);
  EXPECT_EQ(P.earliestSlot(0, 5, 2), 10);
  EXPECT_EQ(P.earliestSlot(0, 6, 2), 25);
}

TEST(CapacityProfile, PartialOverlapLevels) {
  CapacityProfile P(10);
  P.reserve(0, 100, 2);
  P.reserve(10, 20, 5);
  P.reserve(15, 30, 3);
  EXPECT_EQ(P.busyAt(17), 10u);
  EXPECT_FALSE(P.fits(16, 18, 1));
  EXPECT_EQ(P.earliestSlot(12, 3, 5), 20);
}

TEST(CapacityProfile, FuzzEarliestSlotIsConsistentWithFits) {
  Prng Rng(77);
  CapacityProfile P(6);
  for (int I = 0; I < 200; ++I) {
    Tick B = Rng.uniformInt(0, 300);
    Tick D = Rng.uniformInt(1, 20);
    auto Need = static_cast<unsigned>(Rng.uniformInt(1, 6));
    if (Rng.bernoulli(0.5)) {
      P.reserve(B, B + D, Need);
      continue;
    }
    Tick Slot = P.earliestSlot(B, D, Need);
    EXPECT_GE(Slot, B);
    EXPECT_TRUE(P.fits(Slot, Slot + D, Need));
    if (Slot > B) {
      EXPECT_FALSE(P.fits(B, B + D, Need));
    }
  }
}
