//===-- tests/test_dot.cpp - DOT export tests -----------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Dot.h"
#include "core/Scheduler.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Dot, PlainGraphListsTasksAndEdges) {
  Job J = makeFig2Job();
  std::string Dot = jobDot(J);
  EXPECT_EQ(Dot.rfind("digraph job {", 0), 0u);
  for (const auto &T : J.tasks())
    EXPECT_NE(Dot.find(T.Name), std::string::npos);
  // One arrow per data edge.
  size_t Arrows = 0;
  size_t Pos = 0;
  while ((Pos = Dot.find("->", Pos)) != std::string::npos) {
    ++Arrows;
    Pos += 2;
  }
  EXPECT_EQ(Arrows, J.edgeCount());
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
}

TEST(Dot, AnnotatedGraphShowsPlacements) {
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  std::string Dot = jobDot(J, R.Dist);
  for (const auto &P : R.Dist.placements()) {
    char Expect[64];
    std::snprintf(Expect, sizeof(Expect), "@%u [%lld,%lld)", P.NodeId,
                  static_cast<long long>(P.Start),
                  static_cast<long long>(P.End));
    EXPECT_NE(Dot.find(Expect), std::string::npos) << Expect;
  }
  EXPECT_NE(Dot.find("fillcolor=\"#"), std::string::npos);
}

TEST(Dot, PartialDistributionLeavesUnplacedPlain) {
  Job J = makeChainJob();
  Distribution D;
  D.add({0, 1, 0, 4, 0.0});
  std::string Dot = jobDot(J, D);
  EXPECT_NE(Dot.find("@1 [0,4)"), std::string::npos);
  // Tasks 1 and 2 carry no placement annotation.
  EXPECT_EQ(Dot.find("@1 [5"), std::string::npos);
}

TEST(Dot, EmptyJob) {
  Job J;
  std::string Dot = jobDot(J);
  EXPECT_NE(Dot.find("digraph job"), std::string::npos);
}

TEST(Dot, EdgeLabelsCarryTransferTicks) {
  Job J;
  unsigned A = J.addTask("a", 1, 10);
  unsigned B = J.addTask("b", 1, 10);
  J.addEdge(A, B, 7);
  std::string Dot = jobDot(J);
  EXPECT_NE(Dot.find("label=\"7\""), std::string::npos);
}
