//===-- tests/test_execution.cpp - Execution engine tests -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Execution.h"
#include "core/Scheduler.h"
#include "job/Generator.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

/// Schedules the chain job and commits it; returns job + distribution.
struct Committed {
  Job J;
  Grid Env;
  Distribution D;
};

Committed makeCommitted(Tick Deadline = 200) {
  Committed C{makeChainJob(Deadline), makeSmallGrid(), {}};
  Network Net;
  ScheduleResult R = scheduleJob(C.J, C.Env, Net, SchedulerConfig{}, 7);
  EXPECT_TRUE(R.Feasible);
  C.D = R.Dist;
  EXPECT_TRUE(C.D.commit(C.Env, 7));
  return C;
}

} // namespace

TEST(Execution, ExactRuntimesReproduceThePlan) {
  Committed C = makeCommitted();
  Prng Rng(1);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 1.0;
  ExecutionResult R = executeDistribution(C.J, C.D, C.Env, Rng, Config);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_TRUE(R.MetDeadline);
  EXPECT_EQ(R.Completion, C.D.makespan());
  EXPECT_EQ(R.CompletionGain, 0);
  EXPECT_EQ(R.Overruns, 0u);
  EXPECT_EQ(R.EarlyFinishes, 0u);
  for (const auto &T : R.Tasks) {
    const Placement *P = C.D.find(T.TaskId);
    EXPECT_EQ(T.Start, P->Start);
    EXPECT_EQ(T.End, P->End);
  }
}

TEST(Execution, EarlyFinishesNeverSlowTheJobDown) {
  Committed C = makeCommitted();
  Prng Rng(2);
  ExecutionConfig Config;
  Config.FactorLo = 0.4;
  Config.FactorHi = 0.8;
  ExecutionResult R = executeDistribution(C.J, C.D, C.Env, Rng, Config);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_LE(R.Completion, C.D.makespan());
  EXPECT_GE(R.CompletionGain, 0);
  EXPECT_GT(R.EarlyFinishes, 0u);
}

TEST(Execution, ActualsRespectPrecedence) {
  JobGenerator Gen(WorkloadConfig{}, 5);
  Network Net;
  Prng EnvRng(6);
  for (int I = 0; I < 10; ++I) {
    Job J = Gen.next(0);
    J.setDeadline(J.deadline() * 3);
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
    ScheduleResult S = scheduleJob(J, Env, Net, SchedulerConfig{}, 7);
    if (!S.Feasible)
      continue;
    ASSERT_TRUE(S.Dist.commit(Env, 7));
    Prng Rng(100 + I);
    ExecutionConfig Config;
    Config.FactorLo = 0.5;
    Config.FactorHi = 1.0;
    ExecutionResult R = executeDistribution(J, S.Dist, Env, Rng, Config);
    ASSERT_TRUE(R.Succeeded);
    for (const auto &E : J.edges()) {
      Tick Tr = Network{}.transferTicks(E.BaseTransfer,
                                        R.Tasks[E.Src].NodeId,
                                        R.Tasks[E.Dst].NodeId);
      EXPECT_GE(R.Tasks[E.Dst].Start, R.Tasks[E.Src].End + Tr);
    }
  }
}

TEST(Execution, OverrunIntoFreeTimeIsGranted) {
  // A single task on an otherwise empty node may exceed its wall time
  // by up to MaxExtension.
  Job J;
  J.addTask("t", 10, 100);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 10, 0.0});
  ASSERT_TRUE(D.commit(Env, 7));
  Prng Rng(3);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 1.2; // 12 ticks on a 10-tick slot.
  Config.MaxExtension = 4;
  ExecutionResult R = executeDistribution(J, D, Env, Rng, Config);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_EQ(R.Overruns, 1u);
  EXPECT_EQ(R.Kills, 0u);
  EXPECT_EQ(R.Tasks[0].End, 12);
  EXPECT_TRUE(R.Tasks[0].Overran);
}

TEST(Execution, OverrunIntoAReservationKills) {
  Job J;
  J.addTask("t", 10, 100);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 10, 0.0});
  ASSERT_TRUE(D.commit(Env, 7));
  // Someone else holds the node right after the reservation.
  ASSERT_TRUE(Env.node(0).timeline().reserve(10, 20, 9));
  Prng Rng(3);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 1.2;
  ExecutionResult R = executeDistribution(J, D, Env, Rng, Config);
  EXPECT_FALSE(R.Succeeded);
  EXPECT_EQ(R.Kills, 1u);
  EXPECT_TRUE(R.Tasks[0].Killed);
}

TEST(Execution, OverrunBeyondMaxExtensionKills) {
  Job J;
  J.addTask("t", 10, 100);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 10, 0.0});
  ASSERT_TRUE(D.commit(Env, 7));
  Prng Rng(3);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 2.0; // Needs +10, far past +4.
  Config.MaxExtension = 4;
  ExecutionResult R = executeDistribution(J, D, Env, Rng, Config);
  EXPECT_FALSE(R.Succeeded);
  EXPECT_EQ(R.Kills, 1u);
}

TEST(Execution, EarlyStartUsesUnreservedLeadIn) {
  // Two tasks on different nodes; the successor's node is idle before
  // its reservation, so an early predecessor finish cascades.
  Job J;
  unsigned A = J.addTask("a", 10, 100);
  unsigned B = J.addTask("b", 10, 100);
  J.addEdge(A, B, 0);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({A, 0, 0, 10, 0.0});
  D.add({B, 1, 10, 23, 0.0});
  ASSERT_TRUE(D.commit(Env, 7));
  Prng Rng(4);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 0.5; // A finishes at 5.
  ExecutionResult R = executeDistribution(J, D, Env, Rng, Config);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_EQ(R.Tasks[A].End, 5);
  EXPECT_EQ(R.Tasks[B].Start, 5); // Lead-in [5, 10) on node 1 is free.
  EXPECT_GT(R.CompletionGain, 0);
}

TEST(Execution, EarlyStartBlockedByForeignReservation) {
  Job J;
  unsigned A = J.addTask("a", 10, 100);
  unsigned B = J.addTask("b", 10, 100);
  J.addEdge(A, B, 0);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Distribution D;
  D.add({A, 0, 0, 10, 0.0});
  D.add({B, 1, 10, 23, 0.0});
  ASSERT_TRUE(D.commit(Env, 7));
  ASSERT_TRUE(Env.node(1).timeline().reserve(6, 9, 9));
  Prng Rng(4);
  ExecutionConfig Config;
  Config.FactorLo = Config.FactorHi = 0.5;
  ExecutionResult R = executeDistribution(J, D, Env, Rng, Config);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_EQ(R.Tasks[B].Start, 10); // Lead-in occupied: start as planned.
}

TEST(Execution, DeterministicForSameSeed) {
  Committed C = makeCommitted();
  Prng A(9), B(9);
  ExecutionResult Ra = executeDistribution(C.J, C.D, C.Env, A);
  ExecutionResult Rb = executeDistribution(C.J, C.D, C.Env, B);
  ASSERT_EQ(Ra.Tasks.size(), Rb.Tasks.size());
  for (size_t I = 0; I < Ra.Tasks.size(); ++I) {
    EXPECT_EQ(Ra.Tasks[I].Start, Rb.Tasks[I].Start);
    EXPECT_EQ(Ra.Tasks[I].End, Rb.Tasks[I].End);
  }
}
