//===-- tests/test_gang.cpp - Gang scheduling tests -----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Gang.h"
#include "batch/Cluster.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Gang, SingleJobRunsToCompletion) {
  GangConfig Config;
  Config.NodeCount = 4;
  Config.Quantum = 4;
  auto Out = runGang(Config, {{0, 0, 2, 10, 10}});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0].Started);
  EXPECT_EQ(Out[0].Start, 0);
  EXPECT_EQ(Out[0].Finish, 10);
}

TEST(Gang, ConcurrentJobsShareNodes) {
  GangConfig Config;
  Config.NodeCount = 4;
  Config.Quantum = 2;
  auto Out = runGang(Config, {{0, 0, 2, 8, 8}, {1, 0, 2, 8, 8}});
  // Both fit side by side: no time slicing needed.
  EXPECT_EQ(Out[0].Start, 0);
  EXPECT_EQ(Out[1].Start, 0);
  EXPECT_EQ(Out[0].Finish, 8);
  EXPECT_EQ(Out[1].Finish, 8);
}

TEST(Gang, TimeSlicesWhenOversubscribed) {
  GangConfig Config;
  Config.NodeCount = 4;
  Config.Quantum = 2;
  // Two jobs each need all nodes: they must alternate quanta.
  auto Out = runGang(Config, {{0, 0, 4, 4, 4}, {1, 0, 4, 4, 4}});
  EXPECT_TRUE(Out[0].Started);
  EXPECT_TRUE(Out[1].Started);
  // Each needs 2 quanta of service; interleaved they finish by ~8.
  EXPECT_LE(std::max(Out[0].Finish, Out[1].Finish), 8);
  // Both got service within the first two quanta (no starvation).
  EXPECT_LE(Out[0].Start, 2);
  EXPECT_LE(Out[1].Start, 2);
}

TEST(Gang, ShortJobGetsEarlyServiceUnderLongJob) {
  GangConfig Config;
  Config.NodeCount = 4;
  Config.Quantum = 2;
  // A long full-width job is in flight; a short job arriving later
  // still receives service long before the long job completes —
  // the gang-scheduling selling point over FCFS.
  auto Out = runGang(Config, {{0, 0, 4, 40, 40}, {1, 2, 1, 2, 2}});
  EXPECT_LT(Out[1].Finish, Out[0].Finish);
  EXPECT_LE(Out[1].Start, 6);
}

TEST(Gang, ArrivalsAreRespected) {
  GangConfig Config;
  Config.NodeCount = 4;
  auto Out = runGang(Config, {{0, 100, 1, 4, 4}});
  EXPECT_GE(Out[0].Start, 100);
}

TEST(Gang, IdleGapBetweenArrivals) {
  GangConfig Config;
  Config.NodeCount = 2;
  Config.Quantum = 2;
  auto Out = runGang(Config, {{0, 0, 1, 2, 2}, {1, 50, 1, 2, 2}});
  EXPECT_EQ(Out[0].Finish, 2);
  EXPECT_GE(Out[1].Start, 50);
  EXPECT_TRUE(Out[1].Started);
}

TEST(Gang, AllJobsCompleteOnRandomTrace) {
  BatchWorkloadConfig W;
  W.JobCount = 120;
  W.NodesHi = 6;
  auto Jobs = makeBatchTrace(W, 21);
  GangConfig Config;
  Config.NodeCount = 8;
  auto Out = runGang(Config, Jobs);
  ASSERT_EQ(Out.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_TRUE(Out[I].Started);
    EXPECT_GE(Out[I].Start, Jobs[I].Arrival);
    EXPECT_GE(Out[I].Finish, Out[I].Start + Jobs[I].ActualTicks);
  }
}

TEST(Gang, ImprovesShortJobResponseOverFcfs) {
  // Mixed workload: long wide jobs plus short narrow ones. Gang
  // scheduling should serve the short jobs sooner on average.
  std::vector<BatchJob> Jobs;
  unsigned Id = 0;
  for (Tick T = 0; T < 200; T += 40)
    Jobs.push_back({Id++, T, 8, 40, 40});
  std::vector<size_t> ShortIdx;
  for (Tick T = 5; T < 200; T += 20) {
    ShortIdx.push_back(Jobs.size());
    Jobs.push_back({Id++, T, 1, 4, 4});
  }
  GangConfig GC;
  GC.NodeCount = 8;
  GC.Quantum = 4;
  auto GangOut = runGang(GC, Jobs);
  ClusterConfig CC;
  CC.NodeCount = 8;
  auto FcfsOut = runCluster(CC, Jobs);
  double GangWait = 0, FcfsWait = 0;
  for (size_t I : ShortIdx) {
    GangWait += static_cast<double>(GangOut[I].wait());
    FcfsWait += static_cast<double>(FcfsOut[I].wait());
  }
  EXPECT_LT(GangWait, FcfsWait);
}
