//===-- tests/test_metrics_registry.cpp - Metrics registry tests ----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/Export.h"
#include "metrics/QoS.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

TEST(MetricsCounter, AddsAndReturnsTheSameInstance) {
  Registry R;
  Counter &C = R.counter("requests_total", "requests seen");
  C.add();
  C.add(4);
  EXPECT_EQ(C.value(), 5u);
  EXPECT_EQ(&R.counter("requests_total"), &C);
}

TEST(MetricsCounter, ConcurrentIncrementsAreLossless) {
  Registry R;
  Counter &C = R.counter("contended_total");
  constexpr size_t Threads = 8;
  constexpr size_t PerThread = 10000;
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < Threads; ++W)
    Workers.emplace_back([&C] {
      for (size_t I = 0; I < PerThread; ++I)
        C.add();
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(MetricsGauge, SetAddSub) {
  Registry R;
  Gauge &G = R.gauge("depth");
  G.set(10);
  G.add(5);
  G.sub(3);
  EXPECT_EQ(G.value(), 12);
  G.set(-4);
  EXPECT_EQ(G.value(), -4);
}

TEST(MetricsHistogram, BucketBoundariesAreLessOrEqual) {
  Registry R;
  Histogram &H = R.histogram("latency", {1.0, 2.0, 5.0});
  // Prometheus `le` semantics: a value exactly on a bound belongs to
  // that bound's bucket.
  H.observe(0.5); // -> le=1
  H.observe(1.0); // -> le=1 (boundary)
  H.observe(1.5); // -> le=2
  H.observe(2.0); // -> le=2 (boundary)
  H.observe(5.0); // -> le=5 (boundary)
  H.observe(7.0); // -> +Inf
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // +Inf
  EXPECT_EQ(H.count(), 6u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
  // Cumulative counts are monotone and end at the total.
  EXPECT_EQ(H.cumulativeCount(0), 2u);
  EXPECT_EQ(H.cumulativeCount(1), 4u);
  EXPECT_EQ(H.cumulativeCount(2), 5u);
  EXPECT_EQ(H.cumulativeCount(3), 6u);
}

TEST(MetricsHistogram, ConcurrentObservationsAreLossless) {
  Registry R;
  Histogram &H = R.histogram("contended", {10.0, 100.0});
  constexpr size_t Threads = 8;
  constexpr size_t PerThread = 5000;
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < Threads; ++W)
    Workers.emplace_back([&H] {
      for (size_t I = 0; I < PerThread; ++I)
        H.observe(1.0);
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.bucketCount(0), Threads * PerThread);
  EXPECT_DOUBLE_EQ(H.sum(), static_cast<double>(Threads * PerThread));
}

TEST(MetricsRealGauge, StoresDoublesExactly) {
  Registry R;
  RealGauge &G = R.realGauge("cws_vo_mean_cost", "mean quota cost");
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
  G.set(37.25);
  EXPECT_DOUBLE_EQ(G.value(), 37.25);
  G.set(-0.125);
  EXPECT_DOUBLE_EQ(G.value(), -0.125);
  EXPECT_EQ(&R.realGauge("cws_vo_mean_cost"), &G);
  G.reset();
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
}

TEST(MetricsRealGauge, ExposesAsPrometheusGauge) {
  Registry R;
  R.realGauge("cws_test_ratio", "a real-valued gauge").set(62.5);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("# HELP cws_test_ratio a real-valued gauge\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE cws_test_ratio gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("cws_test_ratio 62.5\n"), std::string::npos);

  std::vector<Registry::Sample> S = R.samples();
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Name, "cws_test_ratio");
  EXPECT_EQ(S[0].Type, "gauge");
  EXPECT_EQ(S[0].Value, 62.5);

  R.reset();
  EXPECT_NE(R.prometheusText().find("cws_test_ratio 0\n"),
            std::string::npos);
}

TEST(MetricsRegistry, PrometheusExpositionFormat) {
  Registry R;
  R.counter("cws_test_total", "things counted").add(3);
  R.gauge("cws_test_depth").set(-2);
  Histogram &H = R.histogram("cws_test_micros", {0.5, 10.0});
  H.observe(0.25);
  H.observe(50.0);

  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("# HELP cws_test_total things counted\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE cws_test_total counter\n"), std::string::npos);
  EXPECT_NE(Text.find("cws_test_total 3\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE cws_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("cws_test_depth -2\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE cws_test_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cws_test_micros_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cws_test_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cws_test_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cws_test_micros_sum 50.25\n"), std::string::npos);
  EXPECT_NE(Text.find("cws_test_micros_count 2\n"), std::string::npos);
}

TEST(MetricsRegistry, SamplesMirrorTheExposition) {
  Registry R;
  R.counter("a_total").add(1);
  Histogram &H = R.histogram("b_micros", {1.0});
  H.observe(0.5);
  std::vector<Registry::Sample> S = R.samples();
  // counter + (1 bucket + Inf bucket + sum + count + p50/p90/p99).
  ASSERT_EQ(S.size(), 8u);
  EXPECT_EQ(S[0].Name, "a_total");
  EXPECT_EQ(S[0].Type, "counter");
  EXPECT_EQ(S[0].Value, 1.0);
  EXPECT_EQ(S[1].Series, "bucket");
  EXPECT_EQ(S[1].Le, "1");
  EXPECT_EQ(S[2].Le, "+Inf");
  EXPECT_EQ(S[3].Series, "sum");
  EXPECT_EQ(S[4].Series, "count");
  EXPECT_EQ(S[4].Value, 1.0);
  EXPECT_EQ(S[5].Series, "p50");
  EXPECT_EQ(S[6].Series, "p90");
  EXPECT_EQ(S[7].Series, "p99");
}

TEST(MetricsRegistry, CsvExportHasHeaderAndAllRows) {
  Registry R;
  R.counter("a_total").add(2);
  R.gauge("b_depth").set(7);
  std::string Csv = metricsCsv(R);
  EXPECT_NE(Csv.find("metric,type,series,le,value\n"), std::string::npos);
  EXPECT_NE(Csv.find("a_total,counter,,,2\n"), std::string::npos);
  EXPECT_NE(Csv.find("b_depth,gauge,,,7\n"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  Registry R;
  Counter &C = R.counter("a_total");
  Gauge &G = R.gauge("b_depth");
  Histogram &H = R.histogram("c_micros", {1.0});
  C.add(5);
  G.set(9);
  H.observe(0.5);
  R.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
  // Same instances are still registered.
  EXPECT_EQ(&R.counter("a_total"), &C);
  EXPECT_EQ(&R.gauge("b_depth"), &G);
}

TEST(MetricsHistogram, QuantileInterpolatesPrometheusStyle) {
  Registry R;
  Histogram &H = R.histogram("q_micros", {1.0, 2.0, 4.0, 8.0});
  EXPECT_TRUE(std::isnan(H.quantile(0.5)));
  H.observe(0.5);
  H.observe(1.5);
  H.observe(3.0);
  H.observe(7.0);
  // histogram_quantile semantics: rank = q * count, linear
  // interpolation inside the bucket holding the rank. With one
  // observation per bucket and bounds {1,2,4,8}:
  //   p50: rank 2.0 -> (1,2] filled -> 2.0
  //   p90: rank 3.6 -> 0.6 into (4,8] -> 4 + 0.6*4 = 6.4
  //   p99: rank 3.96 -> 4 + 0.96*4 = 7.84
  EXPECT_DOUBLE_EQ(H.quantile(0.50), 2.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.90), 6.4);
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 7.84);
  // The first bucket interpolates from a lower edge of 0.
  EXPECT_DOUBLE_EQ(H.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.125), 0.5);
  // A rank landing in +Inf clamps to the highest finite bound.
  Histogram &Tail = R.histogram("tail_micros", {1.0, 2.0});
  Tail.observe(50.0);
  EXPECT_DOUBLE_EQ(Tail.quantile(0.99), 2.0);
}

TEST(MetricsHistogram, MergeEqualsObservingBothStreams) {
  Registry R;
  Histogram &A = R.histogram("merge_a_micros", {1.0, 2.0, 4.0});
  Histogram &B = R.histogram("merge_b_micros", {1.0, 2.0, 4.0});
  Histogram &Both = R.histogram("merge_ab_micros", {1.0, 2.0, 4.0});
  for (double X : {0.5, 1.5, 9.0}) {
    A.observe(X);
    Both.observe(X);
  }
  for (double X : {3.0, 3.5}) {
    B.observe(X);
    Both.observe(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Both.count());
  EXPECT_DOUBLE_EQ(A.sum(), Both.sum());
  for (size_t I = 0; I <= A.bounds().size(); ++I)
    EXPECT_EQ(A.bucketCount(I), Both.bucketCount(I));
  EXPECT_DOUBLE_EQ(A.quantile(0.5), Both.quantile(0.5));
  EXPECT_DOUBLE_EQ(A.quantile(0.9), Both.quantile(0.9));
}

TEST(MetricsHistogram, MergeWithEmptyIsIdentity) {
  Registry R;
  Histogram &A = R.histogram("merge_id_micros", {1.0, 2.0});
  Histogram &Empty = R.histogram("merge_empty_micros", {1.0, 2.0});
  A.observe(0.5);
  A.observe(1.5);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.sum(), 2.0);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.quantile(0.5), A.quantile(0.5));
}

TEST(MetricsHistogramDeathTest, MergeRejectsMismatchedBounds) {
  Registry R;
  Histogram &A = R.histogram("merge_x_micros", {1.0, 2.0});
  Histogram &B = R.histogram("merge_y_micros", {1.0, 3.0});
  EXPECT_DEATH(A.merge(B), "bounds");
}

TEST(MetricsHistogram, QuantilesAppearInExpositionAndSamples) {
  Registry R;
  Histogram &H = R.histogram("lat_micros", {1.0, 2.0, 4.0, 8.0});
  // An empty histogram must not emit NaN quantile series.
  EXPECT_EQ(R.prometheusText().find("lat_micros_p50"), std::string::npos);
  H.observe(0.5);
  H.observe(1.5);
  H.observe(3.0);
  H.observe(7.0);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("lat_micros_p50 2\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("lat_micros_p90 6.4\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("lat_micros_p99 7.84\n"), std::string::npos) << Text;
  std::vector<Registry::Sample> S = R.samples();
  // 4 buckets + Inf + sum + count + 3 quantiles.
  ASSERT_EQ(S.size(), 10u);
  EXPECT_EQ(S[7].Series, "p50");
  EXPECT_EQ(S[7].Value, 2.0);
  EXPECT_EQ(S[8].Series, "p90");
  EXPECT_EQ(S[9].Series, "p99");
  EXPECT_EQ(S[9].Value, 7.84);
}

TEST(MetricsRegistry, LabeledSeriesShareOneFamilyHeader) {
  Registry R;
  R.realGauge("cws_flow_mean_cost{flow=\"S1\"}", "mean cost per flow")
      .set(10.0);
  R.realGauge("cws_flow_mean_cost{flow=\"S2\"}", "mean cost per flow")
      .set(20.0);
  std::string Text = R.prometheusText();
  // Exactly one HELP/TYPE pair for the family, both series present.
  size_t First = Text.find("# TYPE cws_flow_mean_cost gauge\n");
  ASSERT_NE(First, std::string::npos) << Text;
  EXPECT_EQ(Text.find("# TYPE cws_flow_mean_cost", First + 1),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("cws_flow_mean_cost{flow=\"S1\"} 10\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cws_flow_mean_cost{flow=\"S2\"} 20\n"),
            std::string::npos);
}

TEST(MetricsRegistry, EscapeLabelValueCoversTheExpositionEscapes) {
  // Prometheus exposition label values escape backslash, double quote
  // and newline — one pass, so the added backslashes are not
  // re-escaped.
  EXPECT_EQ(escapeLabelValue("plain"), "plain");
  EXPECT_EQ(escapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(escapeLabelValue("\\n"), "\\\\n");
}

TEST(MetricsRegistry, FlowLabelValuesAreEscapedInTheExposition) {
  // A hostile flow name ('"', '\' and a newline) must neither break
  // the series name nor split the exposition line.
  Registry R;
  VoAggregates A;
  A.Jobs = 2;
  publishFlowAggregates(A, "ev\"il\\flow\nname", R);
  std::string Text = R.prometheusText();
  EXPECT_NE(
      Text.find("cws_flow_jobs{flow=\"ev\\\"il\\\\flow\\nname\"} 2\n"),
      std::string::npos)
      << Text;
  // The family header still splits at '{' despite the decorations.
  EXPECT_NE(Text.find("# TYPE cws_flow_jobs gauge\n"), std::string::npos)
      << Text;
  // No exposition line may contain a raw (unescaped) newline: every
  // line holds either a comment or exactly one sample.
  EXPECT_EQ(Text.find("\nname\"}"), std::string::npos) << Text;
}

TEST(MetricsRegistry, PublishTraceStatsExportsTracerCounters) {
  Tracer &T = Tracer::global();
  T.reset();
  T.setCategoryFilter("core");
  T.enable(4);
  T.instant("core", "keep");
  T.instant("sim", "masked");
  for (int I = 0; I < 6; ++I)
    T.instant("core", "tick");
  T.disable();
  Registry R;
  publishTraceStats(R);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("cws_trace_filtered_total 1\n"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("cws_trace_dropped_total 3\n"), std::string::npos)
      << Text;
  T.reset();
}

TEST(MetricsRegistry, GlobalRegistryExposesBuiltInInstruments) {
  // The library instruments register on first use through
  // Registry::global(); registering again must return the same
  // instrument rather than a duplicate series.
  Counter &C = Registry::global().counter("cws_selftest_total");
  Counter &Again = Registry::global().counter("cws_selftest_total");
  EXPECT_EQ(&C, &Again);
}

} // namespace
