//===-- tests/test_journal.cpp - Decision journal tests -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override { Journal::global().reset(); }
  void TearDown() override { Journal::global().reset(); }
};

TEST_F(JournalTest, DisabledAppendIsANoOp) {
  Journal &Jn = Journal::global();
  EXPECT_FALSE(Jn.enabled());
  EXPECT_EQ(Jn.append(JournalKind::Arrival, 1, 10), 0u);
  EXPECT_EQ(Jn.recorded(), 0u);
  EXPECT_TRUE(Jn.snapshot().empty());
}

TEST_F(JournalTest, KindNamesRoundTrip) {
  for (size_t I = 0; I < JournalKindCount; ++I) {
    auto Kind = static_cast<JournalKind>(I);
    const char *Name = journalKindName(Kind);
    ASSERT_NE(Name, nullptr);
    JournalKind Back;
    ASSERT_TRUE(journalKindFromName(Name, Back)) << Name;
    EXPECT_EQ(Back, Kind);
  }
  JournalKind Out;
  EXPECT_FALSE(journalKindFromName("no-such-kind", Out));
}

TEST_F(JournalTest, CausalChainLinksPerJob) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  uint64_t A1 = Jn.append(JournalKind::Arrival, 7, 10, {}, nullptr, 2);
  uint64_t B1 = Jn.append(JournalKind::Arrival, 8, 11, {}, nullptr, 3);
  uint64_t A2 = Jn.append(JournalKind::Admission, 7, 10);
  uint64_t A3 = Jn.append(JournalKind::Commit, 7, 25);
  uint64_t B2 = Jn.append(JournalKind::Reject, 8, 12);
  Jn.disable();
  std::vector<JournalEvent> E = Jn.snapshot();
  ASSERT_EQ(E.size(), 5u);
  // Ids are 1-based and dense.
  EXPECT_EQ(A1, 1u);
  EXPECT_EQ(B1, 2u);
  // Chain heads have no cause; later events point to the same job's
  // previous event, never across jobs.
  EXPECT_EQ(E[0].Cause, 0u);
  EXPECT_EQ(E[1].Cause, 0u);
  EXPECT_EQ(E[2].Cause, A1);
  EXPECT_EQ(E[3].Cause, A2);
  EXPECT_EQ(E[4].Cause, B1);
  EXPECT_EQ(A3, E[3].Id);
  EXPECT_EQ(B2, E[4].Id);
}

TEST_F(JournalTest, FlowIsInheritedFromTheArrivalEvent) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 5, 0, {}, nullptr, /*FlowId=*/4);
  Jn.append(JournalKind::Admission, 5, 0);
  Jn.append(JournalKind::Commit, 5, 9);
  // A different job without a registered flow stays at -1.
  Jn.append(JournalKind::Admission, 6, 1);
  Jn.disable();
  std::vector<JournalEvent> E = Jn.snapshot();
  ASSERT_EQ(E.size(), 4u);
  EXPECT_EQ(E[0].FlowId, 4);
  EXPECT_EQ(E[1].FlowId, 4);
  EXPECT_EQ(E[2].FlowId, 4);
  EXPECT_EQ(E[3].FlowId, -1);
}

TEST_F(JournalTest, InvalidateAndReallocateAutoTriggerOnLastEnvChange) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 3, 0);
  uint64_t Env1 = Jn.append(JournalKind::EnvChange, -1, 5, {{"node", 2}});
  EXPECT_EQ(Jn.lastEnvChange(), Env1);
  Jn.append(JournalKind::Invalidate, 3, 5);
  uint64_t Env2 = Jn.append(JournalKind::EnvChange, -1, 8, {{"node", 4}});
  Jn.append(JournalKind::Reallocate, 3, 9);
  // Other kinds never auto-trigger.
  Jn.append(JournalKind::Commit, 3, 12);
  Jn.disable();
  std::vector<JournalEvent> E = Jn.snapshot();
  ASSERT_EQ(E.size(), 6u);
  EXPECT_EQ(E[2].Trigger, Env1);
  EXPECT_EQ(E[4].Trigger, Env2);
  EXPECT_EQ(E[5].Trigger, 0u);
}

TEST_F(JournalTest, RingOverflowKeepsNewestAndCountsDropped) {
  Journal &Jn = Journal::global();
  Jn.enable(8);
  for (int64_t I = 0; I < 20; ++I)
    Jn.append(JournalKind::Note, I, I, {{"i", I}});
  Jn.disable();
  EXPECT_EQ(Jn.recorded(), 20u);
  EXPECT_EQ(Jn.dropped(), 12u);
  std::vector<JournalEvent> E = Jn.snapshot();
  ASSERT_EQ(E.size(), 8u);
  // Survivors are the newest 8 in append order (ids 13..20).
  for (size_t I = 0; I < E.size(); ++I) {
    EXPECT_EQ(E[I].Id, 13 + I);
    ASSERT_EQ(E[I].ArgCount, 1u);
    EXPECT_EQ(E[I].Args[0].Value, static_cast<int64_t>(12 + I));
  }
}

TEST_F(JournalTest, JsonlRoundTripPreservesEveryField) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 9, 100, {{"deadline", 900}, {"tasks", 5}},
            "S2", /*FlowId=*/1);
  Jn.append(JournalKind::EnvChange, -1, 110,
            {{"node", 3}, {"start", 110}, {"end", 140}}, "background");
  Jn.append(JournalKind::Invalidate, 9, 111, {{"ttl", 11}}, "stale");
  Jn.append(JournalKind::Reject, 9, 112, {}, "stale-inadmissible");
  Jn.disable();

  ParsedJournal P;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), P, Error)) << Error;
  EXPECT_EQ(P.Recorded, 4u);
  EXPECT_EQ(P.Dropped, 0u);
  ASSERT_EQ(P.Events.size(), 4u);

  const ParsedJournalEvent &A = P.Events[0];
  EXPECT_EQ(A.Id, 1u);
  EXPECT_EQ(A.Kind, "arrival");
  EXPECT_EQ(A.JobId, 9);
  EXPECT_EQ(A.FlowId, 1);
  EXPECT_EQ(A.At, 100);
  EXPECT_EQ(A.Cause, 0u);
  EXPECT_EQ(A.Detail, "S2");
  ASSERT_NE(A.arg("deadline"), nullptr);
  EXPECT_EQ(*A.arg("deadline"), 900);
  ASSERT_NE(A.arg("tasks"), nullptr);
  EXPECT_EQ(*A.arg("tasks"), 5);
  EXPECT_EQ(A.arg("absent"), nullptr);

  const ParsedJournalEvent &Env = P.Events[1];
  EXPECT_EQ(Env.Kind, "env.change");
  EXPECT_EQ(Env.JobId, -1);
  EXPECT_EQ(Env.FlowId, -1);

  const ParsedJournalEvent &Inv = P.Events[2];
  EXPECT_EQ(Inv.Kind, "invalidate");
  EXPECT_EQ(Inv.Cause, 1u);
  EXPECT_EQ(Inv.Trigger, 2u);
  EXPECT_EQ(Inv.FlowId, 1);

  const ParsedJournalEvent &Rej = P.Events[3];
  EXPECT_EQ(Rej.Kind, "reject");
  EXPECT_EQ(Rej.Cause, 3u);
  EXPECT_EQ(Rej.Detail, "stale-inadmissible");

  // byId is a binary search over ascending ids.
  ASSERT_NE(P.byId(3), nullptr);
  EXPECT_EQ(P.byId(3)->Kind, "invalidate");
  EXPECT_EQ(P.byId(99), nullptr);
}

TEST_F(JournalTest, ProvenanceStampRoundTripsThroughTheMetaLine) {
  Journal &Jn = Journal::global();
  Jn.enable(16);
  RunProvenance Prov;
  Prov.Stamped = true;
  Prov.Seed = 42;
  Prov.ConfigHash = configHashOf("canonical text");
  Prov.ScenarioId = "arrival_scale=2.0+strategy=S1";
  Prov.Cli = "cws-sim --seed 42 --scenario \"x\"";
  Prov.Shards = 4;
  Jn.setProvenance(Prov);
  Jn.append(JournalKind::Note, 1, 5);
  Jn.disable();

  ParsedJournal P;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), P, Error)) << Error;
  ASSERT_TRUE(P.Prov.valid());
  EXPECT_EQ(P.Prov.Seed, 42u);
  EXPECT_EQ(P.Prov.ConfigHash, Prov.ConfigHash);
  EXPECT_EQ(P.Prov.ScenarioId, Prov.ScenarioId);
  EXPECT_EQ(P.Prov.Cli, Prov.Cli);
  EXPECT_EQ(P.Prov.Shards, 4);
  EXPECT_TRUE(P.Prov.sameScenario(Prov));

  // An unstamped journal parses with no provenance; a partial stamp
  // (provenance strings without a seed) is rejected.
  Jn.reset();
  Jn.enable(16);
  Jn.append(JournalKind::Note, 1, 5);
  Jn.disable();
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), P, Error)) << Error;
  EXPECT_FALSE(P.Prov.valid());
  EXPECT_FALSE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":0,"
      "\"dropped\":0,\"scenario\":\"s\"}\n",
      P, Error));
  EXPECT_NE(Error.find("seed"), std::string::npos) << Error;
}

TEST_F(JournalTest, JsonlMetaReportsRingLosses) {
  Journal &Jn = Journal::global();
  Jn.enable(4);
  for (int64_t I = 0; I < 10; ++I)
    Jn.append(JournalKind::Note, 1, I);
  Jn.disable();
  ParsedJournal P;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), P, Error)) << Error;
  EXPECT_EQ(P.Recorded, 10u);
  EXPECT_EQ(P.Dropped, 6u);
  ASSERT_EQ(P.Events.size(), 4u);
  EXPECT_EQ(P.Events.front().Id, 7u);
  // The surviving chain tail references dropped events; the parser
  // keeps the dangling id so validators can decide.
  EXPECT_EQ(P.Events.front().Cause, 6u);
}

TEST_F(JournalTest, ParserRejectsMalformedInput) {
  ParsedJournal P;
  std::string Error;
  EXPECT_FALSE(parseJournalJsonl("not json\n", P, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;

  // Wrong schema version.
  EXPECT_FALSE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":2,\"recorded\":0,"
      "\"dropped\":0}\n",
      P, Error));

  // An event missing its id.
  EXPECT_FALSE(parseJournalJsonl(
      "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":1,"
      "\"dropped\":0}\n{\"kind\":\"note\",\"tick\":3}\n",
      P, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

TEST_F(JournalTest, ReenableClearsCausalBookkeeping) {
  Journal &Jn = Journal::global();
  Jn.enable(16);
  Jn.append(JournalKind::Arrival, 5, 0, {}, nullptr, 2);
  Jn.append(JournalKind::EnvChange, -1, 1);
  Jn.enable(16);
  // Job 5's chain and flow and the env-change id must not leak into the
  // fresh recording.
  Jn.append(JournalKind::Invalidate, 5, 2);
  Jn.disable();
  std::vector<JournalEvent> E = Jn.snapshot();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0].Id, 1u);
  EXPECT_EQ(E[0].Cause, 0u);
  EXPECT_EQ(E[0].Trigger, 0u);
  EXPECT_EQ(E[0].FlowId, -1);
}

TEST_F(JournalTest, ConcurrentAppendsLoseNothing) {
  Journal &Jn = Journal::global();
  constexpr size_t Threads = 4;
  constexpr size_t PerThread = 2000;
  Jn.enable(Threads * PerThread);
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < Threads; ++W)
    Workers.emplace_back([&Jn, W] {
      for (size_t I = 0; I < PerThread; ++I)
        Jn.append(JournalKind::Note, static_cast<int64_t>(W),
                  static_cast<int64_t>(I));
    });
  for (auto &W : Workers)
    W.join();
  Jn.disable();
  EXPECT_EQ(Jn.recorded(), Threads * PerThread);
  EXPECT_EQ(Jn.dropped(), 0u);
  // Per-job causal chains stay intact under interleaving: each job's
  // events reference the job's previous id in order.
  std::vector<JournalEvent> E = Jn.snapshot();
  std::vector<uint64_t> Last(Threads, 0);
  for (const JournalEvent &Ev : E) {
    auto W = static_cast<size_t>(Ev.JobId);
    EXPECT_EQ(Ev.Cause, Last[W]);
    Last[W] = Ev.Id;
  }
}

TEST_F(JournalTest, PublishJournalStatsExportsLossCounters) {
  Journal &Jn = Journal::global();
  Jn.enable(4);
  for (int64_t I = 0; I < 6; ++I)
    Jn.append(JournalKind::Note, 1, I);
  Jn.disable();
  Registry R;
  publishJournalStats(R);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("cws_journal_recorded_total 6"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("cws_journal_dropped_total 2"), std::string::npos)
      << Text;
}

} // namespace
