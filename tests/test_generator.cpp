//===-- tests/test_generator.cpp - Workload generator tests ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Generator.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cws;

TEST(JobGenerator, SameSeedSameJobs) {
  WorkloadConfig Config;
  JobGenerator A(Config, 99), B(Config, 99);
  for (int I = 0; I < 10; ++I) {
    Job Ja = A.next(I);
    Job Jb = B.next(I);
    ASSERT_EQ(Ja.taskCount(), Jb.taskCount());
    ASSERT_EQ(Ja.edgeCount(), Jb.edgeCount());
    EXPECT_EQ(Ja.deadline(), Jb.deadline());
    for (unsigned T = 0; T < Ja.taskCount(); ++T) {
      EXPECT_EQ(Ja.task(T).RefTicks, Jb.task(T).RefTicks);
      EXPECT_DOUBLE_EQ(Ja.task(T).Volume, Jb.task(T).Volume);
    }
  }
}

TEST(JobGenerator, SequentialIds) {
  JobGenerator Gen(WorkloadConfig{}, 1);
  EXPECT_EQ(Gen.next().id(), 0u);
  EXPECT_EQ(Gen.next().id(), 1u);
  EXPECT_EQ(Gen.next().id(), 2u);
}

TEST(JobGenerator, ReleaseIsApplied) {
  JobGenerator Gen(WorkloadConfig{}, 1);
  Job J = Gen.next(37);
  EXPECT_EQ(J.release(), 37);
  EXPECT_GT(J.deadline(), 37);
}

class GeneratorSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSweep, JobsAreWellFormed) {
  WorkloadConfig Config;
  JobGenerator Gen(Config, GetParam());
  for (int I = 0; I < 50; ++I) {
    Job J = Gen.next(0);
    EXPECT_GE(J.taskCount(), Config.MinTasks);
    EXPECT_LE(J.taskCount(), Config.MaxTasks);
    EXPECT_TRUE(J.isAcyclic());
    for (const auto &T : J.tasks()) {
      EXPECT_GE(T.RefTicks, Config.RefTicksLo);
      EXPECT_LE(T.RefTicks, Config.RefTicksHi);
      EXPECT_DOUBLE_EQ(T.Volume,
                       Config.VolumePerRefTick *
                           static_cast<double>(T.RefTicks));
    }
    for (const auto &E : J.edges()) {
      EXPECT_GE(E.BaseTransfer, Config.TransferLo);
      EXPECT_LE(E.BaseTransfer, Config.TransferHi);
    }
    // Connectivity: every non-source task has a predecessor.
    size_t Sources = J.sources().size();
    for (const auto &T : J.tasks())
      if (!J.inEdges(T.Id).empty())
        EXPECT_FALSE(J.inEdges(T.Id).empty());
    EXPECT_GE(Sources, 1u);
    // Deadline honours the slack formula.
    Tick Expected = static_cast<Tick>(std::ceil(
        Config.DeadlineSlack * static_cast<double>(J.criticalPathRefTicks())));
    EXPECT_EQ(J.deadline(), Expected);
  }
}

TEST_P(GeneratorSweep, LayerWidthIsBounded) {
  WorkloadConfig Config;
  Config.MaxWidth = 3;
  JobGenerator Gen(Config, GetParam());
  for (int I = 0; I < 30; ++I) {
    Job J = Gen.next(0);
    // No more than MaxWidth tasks can be pairwise independent within a
    // layer; a weaker but checkable property is that the number of
    // sources is at most MaxWidth.
    EXPECT_LE(J.sources().size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1u, 2u, 3u, 2009u, 65537u));

TEST(JobGenerator, ParameterSpreadIsTwoToThree) {
  // The paper: task parameters differ by a factor of 2..3. The default
  // reference-tick range honours that.
  WorkloadConfig Config;
  EXPECT_GE(static_cast<double>(Config.RefTicksHi) /
                static_cast<double>(Config.RefTicksLo),
            2.0);
  EXPECT_LE(static_cast<double>(Config.RefTicksHi) /
                static_cast<double>(Config.RefTicksLo),
            3.0);
}
