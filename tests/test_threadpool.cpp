//===-- tests/test_threadpool.cpp - Worker pool tests ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace cws;

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t N = 500;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&Hits](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnTheCallingThread) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  std::atomic<size_t> Ran{0};
  bool AllOnCaller = true;
  Pool.parallelFor(32, [&](size_t) {
    if (std::this_thread::get_id() != Caller)
      AllOnCaller = false;
    Ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Ran.load(), 32u);
  EXPECT_TRUE(AllOnCaller);
}

TEST(ThreadPool, MaxLanesOneForcesSerialExecution) {
  ThreadPool Pool(4);
  std::thread::id Caller = std::this_thread::get_id();
  bool AllOnCaller = true;
  Pool.parallelFor(
      64,
      [&](size_t) {
        if (std::this_thread::get_id() != Caller)
          AllOnCaller = false;
      },
      /*MaxLanes=*/1);
  EXPECT_TRUE(AllOnCaller);
}

TEST(ThreadPool, ExplicitLaneRequestGrowsThePool) {
  // A `--build-threads 4` request must spawn real lanes even when the
  // pool was created empty (single-core hardware).
  ThreadPool Pool(0);
  std::atomic<size_t> Ran{0};
  Pool.parallelFor(
      16, [&Ran](size_t) { Ran.fetch_add(1, std::memory_order_relaxed); },
      /*MaxLanes=*/4);
  EXPECT_EQ(Ran.load(), 16u);
  EXPECT_EQ(Pool.threadCount(), 3u); // 3 helpers + the caller.
  // The pool never shrinks; a narrower batch reuses the workers.
  Pool.parallelFor(
      8, [&Ran](size_t) { Ran.fetch_add(1, std::memory_order_relaxed); },
      /*MaxLanes=*/2);
  EXPECT_EQ(Ran.load(), 24u);
  EXPECT_EQ(Pool.threadCount(), 3u);
}

TEST(ThreadPool, HelpersActuallyParticipate) {
  ThreadPool Pool(3);
  std::mutex Mu;
  std::set<std::thread::id> Lanes;
  // Each body blocks briefly so the caller cannot drain the batch alone
  // before the helpers wake.
  Pool.parallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> Lock(Mu);
    Lanes.insert(std::this_thread::get_id());
  });
  EXPECT_GT(Lanes.size(), 1u);
}

TEST(ThreadPool, ConcurrentBatchesFromDifferentCallersComplete) {
  ThreadPool Pool(2);
  constexpr size_t Callers = 4;
  constexpr size_t N = 200;
  std::atomic<size_t> Total{0};
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Callers; ++C)
    Threads.emplace_back([&Pool, &Total] {
      Pool.parallelFor(N, [&Total](size_t) {
        Total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Total.load(), Callers * N);
}

TEST(ThreadPool, EmptyAndSingletonBatchesAreTrivial) {
  ThreadPool Pool(2);
  size_t Ran = 0;
  Pool.parallelFor(0, [&Ran](size_t) { ++Ran; });
  EXPECT_EQ(Ran, 0u);
  Pool.parallelFor(1, [&Ran](size_t I) { Ran += I + 1; });
  EXPECT_EQ(Ran, 1u);
}

TEST(ThreadPool, DefaultThreadsHonorsTheEnvironment) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
  ASSERT_EQ(setenv("CWS_BUILD_THREADS", "6", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreads(), 6u);
  // Garbage and non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("CWS_BUILD_THREADS", "banana", 1), 0);
  size_t Fallback = ThreadPool::defaultThreads();
  EXPECT_GE(Fallback, 1u);
  ASSERT_EQ(setenv("CWS_BUILD_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreads(), Fallback);
  ASSERT_EQ(unsetenv("CWS_BUILD_THREADS"), 0);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, SubmitRangeCoversTheHalfOpenInterval) {
  ThreadPool Pool(3);
  constexpr size_t Begin = 17, End = 412;
  std::vector<std::atomic<int>> Hits(End);
  Pool.submitRange(Begin, End, [&Hits](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < End; ++I)
    EXPECT_EQ(Hits[I].load(), I >= Begin ? 1 : 0) << "index " << I;
}

TEST(ThreadPool, SubmitRangeEmptyAndReversedRangesRunNothing) {
  ThreadPool Pool(2);
  size_t Ran = 0;
  Pool.submitRange(5, 5, [&Ran](size_t) { ++Ran; });
  Pool.submitRange(9, 3, [&Ran](size_t) { ++Ran; });
  EXPECT_EQ(Ran, 0u);
}

TEST(ThreadPool, SubmitRangeSerialLaneStaysOnTheCaller) {
  // MaxLanes = 1 is the 1-shard drain: the batch must run entirely on
  // the calling thread, in ascending index order.
  ThreadPool Pool(4);
  std::thread::id Caller = std::this_thread::get_id();
  bool AllOnCaller = true;
  std::vector<size_t> Order;
  Pool.submitRange(
      3, 40,
      [&](size_t I) {
        if (std::this_thread::get_id() != Caller)
          AllOnCaller = false;
        Order.push_back(I);
      },
      /*MaxLanes=*/1);
  EXPECT_TRUE(AllOnCaller);
  ASSERT_EQ(Order.size(), 37u);
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], I + 3);
}

TEST(ThreadPool, SubmitRangeGrowsThePoolLikeParallelFor) {
  ThreadPool Pool(0);
  std::atomic<size_t> Ran{0};
  Pool.submitRange(
      0, 16, [&Ran](size_t) { Ran.fetch_add(1, std::memory_order_relaxed); },
      /*MaxLanes=*/4);
  EXPECT_EQ(Ran.load(), 16u);
  EXPECT_EQ(Pool.threadCount(), 3u); // 3 helpers + the caller.
}

} // namespace
