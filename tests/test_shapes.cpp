//===-- tests/test_shapes.cpp - Figure shape regression tests -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reproduction claims of EXPERIMENTS.md as regression tests: small
/// fixed-seed versions of the figure experiments whose *shapes*
/// (orderings) must keep holding as the library evolves. These run the
/// same deterministic pipelines as the benches at reduced scale.
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "metrics/Experiment.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

/// One shared small Fig. 3 run (deterministic; computed once).
const std::vector<Fig3Row> &fig3Rows() {
  static const std::vector<Fig3Row> Rows = [] {
    Fig3Config Config;
    Config.JobCount = 500;
    return runFig3(Config);
  }();
  return Rows;
}

/// One shared small Fig. 4 run.
const std::vector<Fig4Row> &fig4Rows() {
  static const std::vector<Fig4Row> Rows = [] {
    Fig4Config Config;
    Config.Vo.JobCount = 150;
    Config.Kinds = {StrategyKind::S1, StrategyKind::S2, StrategyKind::S3,
                    StrategyKind::MS1};
    return runFig4(Config);
  }();
  return Rows;
}

const Fig4Row &fig4Row(StrategyKind Kind) {
  for (const auto &R : fig4Rows())
    if (R.Kind == Kind)
      return R;
  ADD_FAILURE() << "missing fig4 row";
  return fig4Rows().front();
}

} // namespace

TEST(Fig3Shape, AdmissibilityIsPartial) {
  // Fig. 3a: nothing close to 0% or 100% — the application level
  // schedules against already-loaded resources.
  for (const auto &R : fig3Rows()) {
    EXPECT_GT(R.admissiblePercent(), 10.0) << strategyName(R.Kind);
    EXPECT_LT(R.admissiblePercent(), 70.0) << strategyName(R.Kind);
  }
}

TEST(Fig3Shape, AdmissibilityOrderS1S2S3) {
  const auto &Rows = fig3Rows();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_GE(Rows[0].admissiblePercent(), Rows[1].admissiblePercent() - 1.0);
  EXPECT_GT(Rows[1].admissiblePercent(), Rows[2].admissiblePercent());
}

TEST(Fig3Shape, CollisionFastShareGrowsS1S2S3) {
  const auto &Rows = fig3Rows();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_LT(Rows[0].IntraCost.fastPercent(),
            Rows[1].IntraCost.fastPercent() + 1.0);
  EXPECT_LT(Rows[1].IntraCost.fastPercent(),
            Rows[2].IntraCost.fastPercent() + 1.0);
  // Everyone collides somewhere.
  for (const auto &R : Rows)
    EXPECT_GT(R.IntraCost.total(), 0u);
}

TEST(Fig4Shape, S3IsCheapestUnderCf) {
  EXPECT_LT(fig4Row(StrategyKind::S3).Agg.MeanCf,
            fig4Row(StrategyKind::S2).Agg.MeanCf);
  EXPECT_LT(fig4Row(StrategyKind::S3).Agg.MeanCf,
            fig4Row(StrategyKind::MS1).Agg.MeanCf);
}

TEST(Fig4Shape, S3IsLeastSlowNodeBound) {
  auto SlowShare = [](const Fig4Row &R) {
    double Total = R.LoadFast + R.LoadMedium + R.LoadSlow;
    return Total > 0 ? R.LoadSlow / Total : 0.0;
  };
  EXPECT_LT(SlowShare(fig4Row(StrategyKind::S3)),
            SlowShare(fig4Row(StrategyKind::S1)));
  EXPECT_LT(SlowShare(fig4Row(StrategyKind::S3)),
            SlowShare(fig4Row(StrategyKind::S2)));
}

TEST(Fig4Shape, TtlOrderS3S2Ms1) {
  EXPECT_GE(fig4Row(StrategyKind::S3).Agg.MeanTtl,
            fig4Row(StrategyKind::S2).Agg.MeanTtl - 0.5);
  EXPECT_GT(fig4Row(StrategyKind::S2).Agg.MeanTtl,
            fig4Row(StrategyKind::MS1).Agg.MeanTtl);
}

TEST(Fig4Shape, Ms1HasTheWorstStartDeviation) {
  double Ms1 = fig4Row(StrategyKind::MS1).Agg.MeanStartDeviationRatio;
  EXPECT_GT(Ms1, fig4Row(StrategyKind::S2).Agg.MeanStartDeviationRatio);
  EXPECT_GT(Ms1, fig4Row(StrategyKind::S3).Agg.MeanStartDeviationRatio);
}

TEST(Fig4Shape, Ms1RecoversAndReallocatesMost) {
  double Ms1 = fig4Row(StrategyKind::MS1).Agg.ShiftRecoveredPercent +
               fig4Row(StrategyKind::MS1).Agg.ReallocatedPercent;
  double S2 = fig4Row(StrategyKind::S2).Agg.ShiftRecoveredPercent +
              fig4Row(StrategyKind::S2).Agg.ReallocatedPercent;
  EXPECT_GT(Ms1, S2);
}

TEST(Sec5Shape, BackfillingReducesWaiting) {
  BatchWorkloadConfig W;
  W.JobCount = 600;
  W.NodesHi = 8;
  auto Trace = makeBatchTrace(W, 2009);
  ClusterConfig None;
  None.NodeCount = 16;
  ClusterConfig Easy = None;
  Easy.Backfill = BackfillMode::Easy;
  double WaitNone =
      summarizeCluster(Trace, runCluster(None, Trace), 16).MeanWait;
  double WaitEasy =
      summarizeCluster(Trace, runCluster(Easy, Trace), 16).MeanWait;
  EXPECT_LT(WaitEasy, WaitNone);
}

TEST(Sec5Shape, ReservationsIncreaseWaiting) {
  BatchWorkloadConfig W;
  W.JobCount = 400;
  W.NodesHi = 8;
  auto Trace = makeBatchTrace(W, 2009);
  ClusterConfig Config;
  Config.NodeCount = 16;
  std::vector<AdvanceReservation> Resv;
  for (Tick T = 100; T < Trace.back().Arrival; T += 300)
    Resv.push_back({T, T + 120, 6});
  double Plain =
      summarizeCluster(Trace, runCluster(Config, Trace), 16).MeanWait;
  double Loaded =
      summarizeCluster(Trace, runCluster(Config, Trace, Resv), 16).MeanWait;
  EXPECT_GT(Loaded, Plain);
}
