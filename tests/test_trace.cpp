//===-- tests/test_trace.cpp - Span tracer tests --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

/// Minimal JSON syntax checker: accepts a value, rejects trailing
/// garbage. Enough to prove the exporter never emits malformed output.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    Pos = 0;
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }
  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool string() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos;
    return true;
  }
  bool number() {
    skipWs();
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           ((S[Pos] >= '0' && S[Pos] <= '9') || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' ||
            S[Pos] == '+'))
      ++Pos;
    return Pos > Start;
  }
  bool value() {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    return number();
  }
  bool object() {
    if (!consume('{'))
      return false;
    if (consume('}'))
      return true;
    do {
      if (!string() || !consume(':') || !value())
        return false;
    } while (consume(','));
    return consume('}');
  }
  bool array() {
    if (!consume('['))
      return false;
    if (consume(']'))
      return true;
    do {
      if (!value())
        return false;
    } while (consume(','));
    return consume(']');
  }
};

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override { Tracer::global().reset(); }
  void TearDown() override { Tracer::global().reset(); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer &T = Tracer::global();
  EXPECT_FALSE(T.enabled());
  {
    Span S("test", "outer");
    T.instant("test", "tick");
  }
  EXPECT_EQ(T.recorded(), 0u);
  EXPECT_TRUE(T.snapshot().empty());
}

TEST_F(TraceTest, SpanNestingProducesMatchedBeginEnd) {
  Tracer &T = Tracer::global();
  T.enable(64);
  {
    Span Outer("test", "outer");
    {
      Span Inner("test", "inner");
      T.instant("test", "mark");
    }
  }
  T.disable();
  std::vector<TraceEvent> E = T.snapshot();
  ASSERT_EQ(E.size(), 5u);
  EXPECT_EQ(E[0].Phase, TracePhase::Begin);
  EXPECT_STREQ(E[0].Name, "outer");
  EXPECT_EQ(E[1].Phase, TracePhase::Begin);
  EXPECT_STREQ(E[1].Name, "inner");
  EXPECT_EQ(E[2].Phase, TracePhase::Instant);
  EXPECT_STREQ(E[2].Name, "mark");
  EXPECT_EQ(E[3].Phase, TracePhase::End);
  EXPECT_STREQ(E[3].Name, "inner");
  EXPECT_EQ(E[4].Phase, TracePhase::End);
  EXPECT_STREQ(E[4].Name, "outer");
  // Timestamps never run backwards and sequence numbers are dense.
  for (size_t I = 1; I < E.size(); ++I) {
    EXPECT_GE(E[I].TsMicros, E[I - 1].TsMicros);
    EXPECT_EQ(E[I].Seq, E[I - 1].Seq + 1);
  }
}

TEST_F(TraceTest, SpanArgsTravelWithTheEndEvent) {
  Tracer &T = Tracer::global();
  T.enable(16);
  {
    Span S("test", "work", "input", 7);
    S.arg("output", 42);
  }
  T.disable();
  std::vector<TraceEvent> E = T.snapshot();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_EQ(E[0].ArgCount, 0u);
  ASSERT_EQ(E[1].ArgCount, 2u);
  EXPECT_STREQ(E[1].Args[0].Key, "input");
  EXPECT_EQ(E[1].Args[0].Value, 7);
  EXPECT_STREQ(E[1].Args[1].Key, "output");
  EXPECT_EQ(E[1].Args[1].Value, 42);
}

TEST_F(TraceTest, RingWraparoundKeepsTheNewestEvents) {
  Tracer &T = Tracer::global();
  T.enable(8);
  for (int64_t I = 0; I < 20; ++I)
    T.instant("test", "tick", "i", I);
  T.disable();
  EXPECT_EQ(T.recorded(), 20u);
  EXPECT_EQ(T.dropped(), 12u);
  std::vector<TraceEvent> E = T.snapshot();
  ASSERT_EQ(E.size(), 8u);
  // The survivors are the last 8, oldest first.
  for (size_t I = 0; I < E.size(); ++I) {
    EXPECT_EQ(E[I].Seq, 12 + I);
    ASSERT_EQ(E[I].ArgCount, 1u);
    EXPECT_EQ(E[I].Args[0].Value, static_cast<int64_t>(12 + I));
  }
}

TEST_F(TraceTest, ChromeJsonIsStructurallyValid) {
  Tracer &T = Tracer::global();
  T.enable(64);
  {
    Span S("core", "scheduleJob", "tasks", 5);
    T.instant("flow", "job.commit", "variant", 2);
  }
  // A name needing escaping must not break the output.
  T.instant("test", "weird \"name\"\n");
  T.disable();
  std::string Json = T.chromeJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"args\":{\"variant\":2}"), std::string::npos);
}

TEST_F(TraceTest, EmptyTracerStillExportsValidJson) {
  std::string Json = Tracer::global().chromeJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
}

TEST_F(TraceTest, ConcurrentRecordingLosesNoEvents) {
  Tracer &T = Tracer::global();
  constexpr size_t Threads = 4;
  constexpr size_t PerThread = 2000;
  // Each iteration records Begin + instant + End; size the ring so
  // nothing wraps.
  T.enable(Threads * PerThread * 3);
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < Threads; ++W)
    Workers.emplace_back([&T] {
      for (size_t I = 0; I < PerThread; ++I) {
        Span S("test", "worker");
        T.instant("test", "tick");
      }
    });
  for (auto &W : Workers)
    W.join();
  T.disable();
  // Each iteration records Begin + instant + End.
  EXPECT_EQ(T.recorded(), Threads * PerThread * 3);
  EXPECT_EQ(T.snapshot().size(), Threads * PerThread * 3);
  EXPECT_TRUE(JsonChecker(T.chromeJson()).valid());
}

TEST_F(TraceTest, CategoryFilterMasksUnlistedCategories) {
  Tracer &T = Tracer::global();
  T.setCategoryFilter("core, flow");
  T.enable(64);
  T.instant("core", "keep1");
  T.instant("sim", "drop1");
  T.instant("flow", "keep2");
  T.instant("sim", "drop2");
  T.disable();
  EXPECT_EQ(T.filtered(), 2u);
  std::vector<TraceEvent> E = T.snapshot();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_STREQ(E[0].Name, "keep1");
  EXPECT_STREQ(E[1].Name, "keep2");
  EXPECT_TRUE(T.categoryEnabled("core"));
  EXPECT_TRUE(T.categoryEnabled("flow"));
  EXPECT_FALSE(T.categoryEnabled("sim"));
}

TEST_F(TraceTest, EmptyCategoryFilterRecordsEverything) {
  Tracer &T = Tracer::global();
  T.setCategoryFilter("");
  T.enable(16);
  T.instant("core", "a");
  T.instant("sim", "b");
  T.disable();
  EXPECT_EQ(T.filtered(), 0u);
  EXPECT_EQ(T.snapshot().size(), 2u);
  EXPECT_TRUE(T.categoryEnabled("anything"));
}

TEST_F(TraceTest, ResetClearsTheCategoryFilter) {
  Tracer &T = Tracer::global();
  T.setCategoryFilter("core");
  T.reset();
  T.enable(16);
  T.instant("sim", "survives");
  T.disable();
  EXPECT_EQ(T.filtered(), 0u);
  EXPECT_EQ(T.snapshot().size(), 1u);
}

TEST_F(TraceTest, ReenableResetsEpochAndRing) {
  Tracer &T = Tracer::global();
  T.enable(8);
  T.instant("test", "old");
  T.enable(8);
  T.instant("test", "new");
  T.disable();
  std::vector<TraceEvent> E = T.snapshot();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_STREQ(E[0].Name, "new");
  EXPECT_EQ(E[0].Seq, 0u);
}

} // namespace
