//===-- tests/test_support.cpp - Table and Flags unit tests ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Flags.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace cws;

TEST(Table, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table T({"a", "b", "c"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.print(OS);
  // Three cells rendered even though only one was provided.
  EXPECT_NE(OS.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Flags, ParsesEqualsForm) {
  int64_t Jobs = 0;
  double Rate = 0.0;
  std::string Name;
  Flags F;
  F.addInt("jobs", &Jobs, "job count");
  F.addReal("rate", &Rate, "rate");
  F.addString("name", &Name, "name");
  const char *Argv[] = {"prog", "--jobs=120", "--rate=0.5", "--name=s1"};
  EXPECT_TRUE(F.parse(4, const_cast<char **>(Argv)));
  EXPECT_EQ(Jobs, 120);
  EXPECT_DOUBLE_EQ(Rate, 0.5);
  EXPECT_EQ(Name, "s1");
}

TEST(Flags, ParsesSpaceForm) {
  int64_t Jobs = 0;
  Flags F;
  F.addInt("jobs", &Jobs, "job count");
  const char *Argv[] = {"prog", "--jobs", "77"};
  EXPECT_TRUE(F.parse(3, const_cast<char **>(Argv)));
  EXPECT_EQ(Jobs, 77);
}

TEST(Flags, HelpReturnsFalse) {
  Flags F;
  const char *Argv[] = {"prog", "--help"};
  EXPECT_FALSE(F.parse(2, const_cast<char **>(Argv)));
}

TEST(Flags, NoArgsKeepsDefaults) {
  int64_t Jobs = 42;
  Flags F;
  F.addInt("jobs", &Jobs, "job count");
  const char *Argv[] = {"prog"};
  EXPECT_TRUE(F.parse(1, const_cast<char **>(Argv)));
  EXPECT_EQ(Jobs, 42);
}

TEST(Flags, LaterFlagWins) {
  int64_t Jobs = 0;
  Flags F;
  F.addInt("jobs", &Jobs, "job count");
  const char *Argv[] = {"prog", "--jobs=1", "--jobs=2"};
  EXPECT_TRUE(F.parse(3, const_cast<char **>(Argv)));
  EXPECT_EQ(Jobs, 2);
}
