//===-- tests/test_scheduler.cpp - Critical works method tests ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Generator.h"
#include "job/Job.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Scheduler, Fig2JobIsFeasible) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  SchedulerConfig Config;
  ScheduleResult R = scheduleJob(J, G, Net, Config, 42);
  ASSERT_TRUE(R.Feasible);
  expectValidDistribution(J, R.Dist);
  EXPECT_LE(R.Dist.makespan(), 20);
}

TEST(Scheduler, Fig2FirstPhaseIsLongestCriticalWork) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  ASSERT_GE(R.Phases.size(), 2u);
  EXPECT_EQ(R.Phases[0].RefLength, 12);
}

TEST(Scheduler, EnvironmentIsNotMutated) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  for (const auto &N : G.nodes())
    EXPECT_TRUE(N.timeline().intervals().empty());
}

TEST(Scheduler, EmptyJobIsTriviallyFeasible) {
  Job J;
  Grid G = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 1);
  EXPECT_TRUE(R.Feasible);
  EXPECT_TRUE(R.Dist.empty());
}

TEST(Scheduler, ImpossibleDeadlineIsInfeasible) {
  Job J = makeFig2Job();
  J.setDeadline(5); // Critical work alone is 12 on the fastest node.
  Grid G = Grid::makeFig2();
  Network Net;
  ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  EXPECT_FALSE(R.Feasible);
}

TEST(Scheduler, NowDelaysRelease) {
  Job J = makeChainJob(1000);
  Grid G = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 42, 50);
  ASSERT_TRUE(R.Feasible);
  EXPECT_GE(R.Dist.startTime(), 50);
}

TEST(Scheduler, CandidateRestrictionIsHonoured) {
  Job J = makeChainJob(1000);
  Grid G = makeSmallGrid();
  Network Net;
  SchedulerConfig Config;
  Config.Alloc.CandidateNodes = {2, 3};
  ScheduleResult R = scheduleJob(J, G, Net, Config, 42);
  ASSERT_TRUE(R.Feasible);
  for (const auto &P : R.Dist.placements())
    EXPECT_TRUE(P.NodeId == 2 || P.NodeId == 3);
}

TEST(Scheduler, PreloadedGridIsAvoided) {
  Job J = makeChainJob(1000);
  Grid G = makeSmallGrid();
  // Saturate node 3 (the cheapest) completely.
  G.node(3).timeline().reserve(0, 100000, 7);
  Network Net;
  ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  ASSERT_TRUE(R.Feasible);
  for (const auto &P : R.Dist.placements())
    EXPECT_NE(P.NodeId, 3u);
}

TEST(Scheduler, RepairResolvesInterChainConflicts) {
  // A job whose second critical work cannot fit between the first one's
  // tight placements: the repair mechanism must release and re-place
  // blockers instead of failing. A time-biased run on the Fig. 2 job
  // exercises exactly that path (the first chain packs the fast node).
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  SchedulerConfig Config;
  Config.Alloc.Bias = OptimizationBias::Time;
  ScheduleResult R = scheduleJob(J, G, Net, Config, 42);
  ASSERT_TRUE(R.Feasible);
  expectValidDistribution(J, R.Dist);
  // The repair path records Moved collisions for the released tasks.
  bool SawMoved = false;
  for (const auto &C : R.Collisions)
    if (C.Resolution == CollisionResolution::Moved)
      SawMoved = true;
  EXPECT_TRUE(SawMoved);
}

TEST(Scheduler, TimeBiasIsNoSlowerThanCostBias) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  SchedulerConfig CostConfigured;
  SchedulerConfig TimeConfigured;
  TimeConfigured.Alloc.Bias = OptimizationBias::Time;
  ScheduleResult ByCost = scheduleJob(J, G, Net, CostConfigured, 42);
  ScheduleResult ByTime = scheduleJob(J, G, Net, TimeConfigured, 42);
  ASSERT_TRUE(ByCost.Feasible);
  ASSERT_TRUE(ByTime.Feasible);
  EXPECT_LE(ByTime.Dist.makespan(), ByCost.Dist.makespan());
  EXPECT_LE(ByCost.Dist.economicCost(), ByTime.Dist.economicCost() + 1e-9);
}

TEST(Scheduler, DataPoliciesChangeSchedules) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  SchedulerConfig Remote;
  Remote.DataKind = DataPolicyKind::RemoteAccess;
  SchedulerConfig Replicated;
  Replicated.DataKind = DataPolicyKind::ActiveReplication;
  ScheduleResult A = scheduleJob(J, G, Net, Remote, 42);
  ScheduleResult B = scheduleJob(J, G, Net, Replicated, 42);
  ASSERT_TRUE(A.Feasible);
  ASSERT_TRUE(B.Feasible);
  // Replication cannot make transfers slower, so the replicated run is
  // never later overall.
  EXPECT_LE(B.Dist.makespan(), A.Dist.makespan() + 1);
}

TEST(Scheduler, DeterministicForSameInputs) {
  JobGenerator Gen(WorkloadConfig{}, 7);
  Job J = Gen.next(0);
  Prng Rng(3);
  Grid G = Grid::makeRandom(GridConfig{}, Rng);
  Network Net;
  ScheduleResult A = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  ScheduleResult B = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
  ASSERT_EQ(A.Feasible, B.Feasible);
  ASSERT_EQ(A.Dist.size(), B.Dist.size());
  for (const auto &P : A.Dist.placements()) {
    const Placement *Q = B.Dist.find(P.TaskId);
    ASSERT_NE(Q, nullptr);
    EXPECT_EQ(P.NodeId, Q->NodeId);
    EXPECT_EQ(P.Start, Q->Start);
    EXPECT_EQ(P.End, Q->End);
  }
}

TEST(Scheduler, MakespanWithinDeadlineWhenFeasible) {
  JobGenerator Gen(WorkloadConfig{}, 11);
  Prng Rng(4);
  Network Net;
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    Grid G = Grid::makeRandom(GridConfig{}, Rng);
    ScheduleResult R = scheduleJob(J, G, Net, SchedulerConfig{}, 42);
    if (!R.Feasible)
      continue;
    expectValidDistribution(J, R.Dist);
    EXPECT_LE(R.Dist.makespan(), J.deadline());
  }
}
