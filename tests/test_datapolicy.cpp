//===-- tests/test_datapolicy.cpp - Network and data policy tests ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/DataPolicy.h"
#include "resource/Network.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Network, SameNodeIsFree) {
  Network Net;
  EXPECT_EQ(Net.transferTicks(10, 3, 3), 0);
}

TEST(Network, CrossNodePaysBaseTime) {
  Network Net;
  EXPECT_EQ(Net.transferTicks(10, 1, 2), 10);
}

TEST(Network, ScaleAndLatency) {
  NetworkConfig Config;
  Config.TransferScale = 1.5;
  Config.Latency = 2;
  Network Net(Config);
  EXPECT_EQ(Net.transferTicks(10, 1, 2), 17); // 2 + ceil(15)
  EXPECT_EQ(Net.transferTicks(0, 1, 2), 2);   // Latency only.
  EXPECT_EQ(Net.transferTicks(10, 1, 1), 0);  // Same node ignores both.
}

TEST(Network, ScaleRoundsUp) {
  NetworkConfig Config;
  Config.TransferScale = 0.5;
  Network Net(Config);
  EXPECT_EQ(Net.transferTicks(3, 0, 1), 2); // ceil(1.5)
}

TEST(DataPolicy, RemoteAccessPaysEveryTime) {
  Network Net;
  DataPolicy P(DataPolicyKind::RemoteAccess, Net);
  EXPECT_EQ(P.transferTicks(0, 10, 1, 2), 10);
  EXPECT_EQ(P.transferTicks(0, 10, 1, 2), 10); // No memory.
  EXPECT_EQ(P.transferTicks(0, 10, 1, 1), 0);
}

TEST(DataPolicy, ReplicationAmortizesAndRemembers) {
  Network Net;
  DataPolicyConfig Config;
  Config.ReplicationFactor = 0.5;
  DataPolicy P(DataPolicyKind::ActiveReplication, Net, Config);
  EXPECT_EQ(P.transferTicks(7, 10, 1, 2), 5); // First delivery: half.
  EXPECT_EQ(P.transferTicks(7, 10, 1, 2), 0); // Replica present.
  EXPECT_EQ(P.transferTicks(7, 10, 3, 2), 0); // Any source: replica at 2.
  EXPECT_EQ(P.transferTicks(8, 10, 1, 2), 5); // Different dataset.
}

TEST(DataPolicy, ReplicationResetForgets) {
  Network Net;
  DataPolicy P(DataPolicyKind::ActiveReplication, Net);
  P.transferTicks(1, 10, 1, 2);
  P.reset();
  EXPECT_GT(P.transferTicks(1, 10, 1, 2), 0);
}

TEST(DataPolicy, PreviewDoesNotRecordReplicas) {
  Network Net;
  DataPolicy P(DataPolicyKind::ActiveReplication, Net);
  Tick First = P.previewTicks(1, 10, 1, 2);
  EXPECT_GT(First, 0);
  EXPECT_EQ(P.previewTicks(1, 10, 1, 2), First); // Still not replicated.
}

TEST(DataPolicy, StaticStoragePenalizesMovement) {
  Network Net;
  DataPolicyConfig Config;
  Config.StaticPenalty = 2.0;
  DataPolicy P(DataPolicyKind::StaticStorage, Net, Config);
  EXPECT_EQ(P.transferTicks(0, 10, 1, 2), 20);
  EXPECT_EQ(P.transferTicks(0, 10, 2, 2), 0); // Co-located: free.
}

TEST(DataPolicy, BilledTicksReplicationIsCheap) {
  Network Net;
  DataPolicyConfig Config;
  Config.ReplicationFactor = 0.5;
  Config.ReplicationBilling = 0.25;
  DataPolicy P(DataPolicyKind::ActiveReplication, Net, Config);
  EXPECT_EQ(P.billedTicks(0, 12, 1, 2), 3);  // quarter of the wire time
  EXPECT_EQ(P.previewTicks(0, 12, 1, 2), 6); // but half the latency
  P.transferTicks(0, 12, 1, 2);
  EXPECT_EQ(P.billedTicks(0, 12, 1, 2), 0); // Replicated: free.
}

TEST(DataPolicy, BilledTicksMatchesPreviewForOtherKinds) {
  Network Net;
  DataPolicy Remote(DataPolicyKind::RemoteAccess, Net);
  DataPolicy Static(DataPolicyKind::StaticStorage, Net);
  EXPECT_EQ(Remote.billedTicks(0, 10, 1, 2), Remote.previewTicks(0, 10, 1, 2));
  EXPECT_EQ(Static.billedTicks(0, 10, 1, 2), Static.previewTicks(0, 10, 1, 2));
}

TEST(DataPolicy, Names) {
  EXPECT_STREQ(dataPolicyName(DataPolicyKind::ActiveReplication),
               "replication");
  EXPECT_STREQ(dataPolicyName(DataPolicyKind::RemoteAccess), "remote");
  EXPECT_STREQ(dataPolicyName(DataPolicyKind::StaticStorage), "static");
}
