//===-- tests/test_repair_config.cpp - Scheduler config knob tests --------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the scheduler's configuration surface: the repair budget,
/// restricted strategy node sets, and their interactions.
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(RepairBudget, ZeroDisablesRepair) {
  // The time-biased Fig. 2 run needs repair (its first chain packs the
  // fast node, strangling the second); with budget 0 it must fail.
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;
  SchedulerConfig Config;
  Config.Alloc.Bias = OptimizationBias::Time;
  Config.RepairBudget = 0;
  EXPECT_FALSE(scheduleJob(J, Env, Net, Config, 42).Feasible);
  Config.RepairBudget = 8;
  EXPECT_TRUE(scheduleJob(J, Env, Net, Config, 42).Feasible);
}

TEST(RepairBudget, MonotoneFeasibility) {
  // A larger repair budget never makes fewer jobs schedulable.
  JobGenerator Gen(WorkloadConfig{}, 91);
  Prng EnvRng(92);
  Prng LoadRng(93);
  Network Net;
  size_t Feasible[3] = {0, 0, 0};
  const int Budgets[3] = {0, 2, 8};
  for (int I = 0; I < 40; ++I) {
    Job J = Gen.next(0);
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
    preloadGrid(Env, J.deadline(), 0.3, 0.6, 2, 8, LoadRng);
    for (int B = 0; B < 3; ++B) {
      SchedulerConfig Config;
      Config.RepairBudget = Budgets[B];
      if (scheduleJob(J, Env, Net, Config, 42).Feasible)
        ++Feasible[B];
    }
  }
  EXPECT_LE(Feasible[0], Feasible[1]);
  EXPECT_LE(Feasible[1], Feasible[2]);
  EXPECT_GT(Feasible[2], 0u);
}

TEST(RepairBudget, RepairedSchedulesRemainValid) {
  JobGenerator Gen(WorkloadConfig{}, 94);
  Prng EnvRng(95);
  Network Net;
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
    SchedulerConfig Config;
    Config.Alloc.Bias = OptimizationBias::Time;
    ScheduleResult R = scheduleJob(J, Env, Net, Config, 42);
    if (R.Feasible)
      expectValidDistribution(J, R.Dist);
  }
}

TEST(AllowedNodes, RestrictsEveryVariant) {
  Grid Env = makeSmallGrid();
  Network Net;
  Job J = makeChainJob(400);
  StrategyConfig Config;
  Config.AllowedNodes = {1, 2};
  Strategy S = Strategy::build(J, Env, Net, Config, 42);
  ASSERT_TRUE(S.admissible());
  for (const auto &V : S.variants())
    for (const auto &P : V.Result.Dist.placements())
      EXPECT_TRUE(P.NodeId == 1 || P.NodeId == 2);
}

TEST(AllowedNodes, LevelsComeFromTheRestrictedSet) {
  Grid Env = makeSmallGrid(); // perfs 1.0, 0.8, 0.4, 0.33
  Network Net;
  Job J = makeChainJob(400);
  StrategyConfig Config;
  Config.AllowedNodes = {2, 3};
  Strategy S = Strategy::build(J, Env, Net, Config, 42);
  ASSERT_EQ(S.levels().size(), 2u);
  EXPECT_DOUBLE_EQ(S.levels()[0], 0.4);
  EXPECT_DOUBLE_EQ(S.levels()[1], 0.33);
}

TEST(AllowedNodes, EmptyMeansEverything) {
  Grid Env = makeSmallGrid();
  Network Net;
  Job J = makeChainJob(400);
  StrategyConfig Config;
  Strategy S = Strategy::build(J, Env, Net, Config, 42);
  EXPECT_EQ(S.levels().size(), 4u);
}

TEST(AllowedNodes, SingleNodeDomainStillSchedules) {
  Grid Env = makeSmallGrid();
  Network Net;
  Job J = makeChainJob(400);
  StrategyConfig Config;
  Config.AllowedNodes = {0};
  Strategy S = Strategy::build(J, Env, Net, Config, 42);
  ASSERT_TRUE(S.admissible());
  for (const auto &V : S.variants())
    for (const auto &P : V.Result.Dist.placements())
      EXPECT_EQ(P.NodeId, 0u);
}
