//===-- tests/test_sweep.cpp - Scenario sweep harness tests ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"
#include "obs/Report.h"
#include "sweep/Scenario.h"
#include "sweep/Stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

using namespace cws;
using namespace cws::sweep;

namespace {

//===----------------------------------------------------------------------===//
// Grid parsing and expansion
//===----------------------------------------------------------------------===//

TEST(SweepGrid, ParsesAxesSeedsAndFixedKnobs) {
  SweepGrid G;
  std::string Error;
  ASSERT_TRUE(parseSweepGrid("# a grid\n"
                             "axis arrival_scale 1.0 2.0\n"
                             "axis strategy S1 S2 MS1  # inline comment\n"
                             "seeds 5\n"
                             "base_seed 100\n"
                             "jobs 40\n"
                             "slack 2.5\n",
                             G, Error))
      << Error;
  ASSERT_EQ(G.Axes.size(), 2u);
  EXPECT_EQ(G.Axes[0].Name, "arrival_scale");
  EXPECT_EQ(G.Axes[0].Values, (std::vector<std::string>{"1.0", "2.0"}));
  EXPECT_EQ(G.Axes[1].Values,
            (std::vector<std::string>{"S1", "S2", "MS1"}));
  EXPECT_EQ(G.Seeds, 5u);
  EXPECT_EQ(G.BaseSeed, 100u);
  EXPECT_EQ(G.Jobs, 40);
  EXPECT_DOUBLE_EQ(G.Slack, 2.5);
  EXPECT_EQ(sweepScenarioCount(G), 6u);
}

TEST(SweepGrid, RejectsMalformedGrids) {
  SweepGrid G;
  std::string Error;
  EXPECT_FALSE(parseSweepGrid("axis unknown_knob 1 2\n", G, Error));
  EXPECT_NE(Error.find("unknown axis"), std::string::npos) << Error;
  EXPECT_FALSE(parseSweepGrid("axis strategy\n", G, Error));
  EXPECT_FALSE(parseSweepGrid("axis strategy S1\naxis strategy S2\n", G,
                              Error));
  EXPECT_NE(Error.find("duplicate axis"), std::string::npos) << Error;
  EXPECT_FALSE(parseSweepGrid("axis strategy S1 S1\n", G, Error));
  EXPECT_NE(Error.find("duplicate value"), std::string::npos) << Error;
  EXPECT_FALSE(parseSweepGrid("axis strategy a=b\n", G, Error));
  EXPECT_NE(Error.find("token-shaped"), std::string::npos) << Error;
  EXPECT_FALSE(parseSweepGrid("seeds 0\n", G, Error));
  EXPECT_FALSE(parseSweepGrid("slack nope\n", G, Error));
  EXPECT_FALSE(parseSweepGrid("frobnicate 3\n", G, Error));
}

TEST(SweepGrid, ExpansionIsCartesianWithSeedReplicas) {
  SweepGrid G;
  std::string Error;
  ASSERT_TRUE(parseSweepGrid("axis arrival_scale 1.0 2.0\n"
                             "axis strategy S1 S2\n"
                             "seeds 2\n"
                             "base_seed 10\n",
                             G, Error))
      << Error;
  std::vector<SweepRunSpec> Runs = expandSweepGrid(G);
  ASSERT_EQ(Runs.size(), 8u);
  // Later axes cycle fastest; replicas are consecutive.
  EXPECT_EQ(Runs[0].ScenarioId, "arrival_scale=1.0+strategy=S1");
  EXPECT_EQ(Runs[0].Seed, 10u);
  EXPECT_EQ(Runs[1].ScenarioId, "arrival_scale=1.0+strategy=S1");
  EXPECT_EQ(Runs[1].Seed, 11u);
  EXPECT_EQ(Runs[2].ScenarioId, "arrival_scale=1.0+strategy=S2");
  EXPECT_EQ(Runs[4].ScenarioId, "arrival_scale=2.0+strategy=S1");
  EXPECT_EQ(Runs[7].ScenarioId, "arrival_scale=2.0+strategy=S2");
  EXPECT_EQ(Runs[7].ScenarioIndex, 3u);
  // Axis flags and the provenance scenario land in the sim args.
  const std::vector<std::string> &Args = Runs[0].SimArgs;
  auto Has = [&Args](const std::string &Flag, const std::string &Value) {
    for (size_t I = 0; I + 1 < Args.size(); ++I)
      if (Args[I] == Flag && Args[I + 1] == Value)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("--arrival-scale", "1.0"));
  EXPECT_TRUE(Has("--strategy", "S1"));
  EXPECT_TRUE(Has("--scenario", "arrival_scale=1.0+strategy=S1"));
  EXPECT_TRUE(Has("--seed", "10"));
}

TEST(SweepGrid, AxisFreeGridIsOneScenario) {
  SweepGrid G;
  std::string Error;
  ASSERT_TRUE(parseSweepGrid("seeds 3\n", G, Error)) << Error;
  std::vector<SweepRunSpec> Runs = expandSweepGrid(G);
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_EQ(Runs[0].ScenarioId, "default");
}

//===----------------------------------------------------------------------===//
// Pooled statistics
//===----------------------------------------------------------------------===//

using ScenarioList =
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, std::string>>>>;

TEST(SweepStats, GoldenMeanCiAndQuantiles) {
  SweepAccumulator Acc(ScenarioList{{"s", {}}}, 5);
  for (double X : {0.1, 0.2, 0.3, 0.4, 0.5})
    Acc.addRun(0, {{"miss", X}});
  obs::SweepStore Store = Acc.finalize();
  ASSERT_EQ(Store.Scenarios.size(), 1u);
  const obs::SweepIndicatorStats *St = Store.Scenarios[0].indicator("miss");
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->N, 5u);
  EXPECT_NEAR(St->Mean, 0.3, 1e-12);
  // Sample stddev of {.1 .2 .3 .4 .5} is sqrt(0.025).
  EXPECT_NEAR(St->Stddev, std::sqrt(0.025), 1e-12);
  // CI95 half-width = t_{0.975,4} * s / sqrt(5) with t = 2.776.
  EXPECT_NEAR(St->Ci95, 2.776 * std::sqrt(0.025) / std::sqrt(5.0), 1e-12);
  // Exact interpolated quantiles of the sorted samples.
  EXPECT_NEAR(St->P50, 0.3, 1e-12);
  EXPECT_NEAR(St->P90, 0.46, 1e-12);
  EXPECT_NEAR(St->P99, 0.496, 1e-12);
  EXPECT_DOUBLE_EQ(St->Min, 0.1);
  EXPECT_DOUBLE_EQ(St->Max, 0.5);
}

TEST(SweepStats, SingleSampleHasZeroSpread) {
  SweepAccumulator Acc(ScenarioList{{"s", {}}}, 1);
  Acc.addRun(0, {{"miss", 0.25}});
  const obs::SweepIndicatorStats *St =
      Acc.finalize().Scenarios[0].indicator("miss");
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->N, 1u);
  EXPECT_DOUBLE_EQ(St->Mean, 0.25);
  EXPECT_DOUBLE_EQ(St->Stddev, 0.0);
  EXPECT_DOUBLE_EQ(St->Ci95, 0.0);
  EXPECT_DOUBLE_EQ(St->P50, 0.25);
}

TEST(SweepStats, MergeEqualsSequentialPoolingExactly) {
  // The worker-count independence invariant in miniature: pooling
  // {A then B}, {B then A}, and merge(one half, other half) all give
  // bit-identical statistics because finalize() sorts first.
  std::map<std::string, double> RunsAB[4] = {
      {{"x", 0.7}, {"y", 3.0}},
      {{"x", 0.1}},
      {{"x", 0.4}, {"y", 1.0}},
      {{"x", 0.2}},
  };
  SweepAccumulator Forward(ScenarioList{{"s", {}}}, 4);
  for (const auto &Ind : RunsAB)
    Forward.addRun(0, Ind);
  SweepAccumulator Backward(ScenarioList{{"s", {}}}, 4);
  for (size_t I = 4; I-- > 0;)
    Backward.addRun(0, RunsAB[I]);
  SweepAccumulator Left(ScenarioList{{"s", {}}}, 4);
  Left.addRun(0, RunsAB[0]);
  Left.addRun(0, RunsAB[3]);
  SweepAccumulator Right(ScenarioList{{"s", {}}}, 4);
  Right.addRun(0, RunsAB[2]);
  Right.addRun(0, RunsAB[1]);
  Left.merge(Right);
  std::string A = obs::sweepCsv(Forward.finalize());
  EXPECT_EQ(A, obs::sweepCsv(Backward.finalize()));
  EXPECT_EQ(A, obs::sweepCsv(Left.finalize()));
}

//===----------------------------------------------------------------------===//
// Store CSV round-trip
//===----------------------------------------------------------------------===//

TEST(SweepStore, CsvRoundTripsExactly) {
  SweepAccumulator Acc(
      ScenarioList{{"a=1+s=S1", {{"a", "1"}, {"s", "S1"}}},
                   {"a=2+s=S1", {{"a", "2"}, {"s", "S1"}}}},
      3);
  Acc.addRun(0, {{"miss", 0.02}, {"commit", 0.61}});
  Acc.addRun(0, {{"miss", 0.08}, {"commit", 0.55}});
  Acc.addRun(1, {{"miss", 0.11}});
  obs::SweepStore Store = Acc.finalize();
  std::string Csv = obs::sweepCsv(Store);

  obs::SweepStore Back;
  std::string Error;
  ASSERT_TRUE(obs::parseSweepCsv(Csv, Back, Error)) << Error;
  EXPECT_EQ(Back.Seeds, 3u);
  EXPECT_EQ(Back.Runs, 3u);
  ASSERT_EQ(Back.Scenarios.size(), 2u);
  EXPECT_EQ(Back.Scenarios[0].Axes,
            (std::vector<std::pair<std::string, std::string>>{
                {"a", "1"}, {"s", "S1"}}));
  // Serialize-parse-serialize is a fixed point.
  EXPECT_EQ(obs::sweepCsv(Back), Csv);
}

TEST(SweepStore, CsvRejectsMalformedInput) {
  obs::SweepStore S;
  std::string Error;
  EXPECT_FALSE(obs::parseSweepCsv("", S, Error));
  EXPECT_FALSE(obs::parseSweepCsv("wrong,header\n", S, Error));
  EXPECT_NE(Error.find("header"), std::string::npos) << Error;
  const std::string Header =
      "scenario,axes,indicator,n,mean,stddev,ci95,p50,p90,p99,min,max\n";
  EXPECT_FALSE(obs::parseSweepCsv(Header + "s,a=1,miss,2,0.5\n", S, Error));
  EXPECT_NE(Error.find("12 fields"), std::string::npos) << Error;
  EXPECT_FALSE(obs::parseSweepCsv(
      Header + "s,a=1,miss,xx,0,0,0,0,0,0,0,0\n", S, Error));
  EXPECT_FALSE(obs::parseSweepCsv(
      Header + "s,badaxes,miss,1,0,0,0,0,0,0,0,0\n", S, Error));
}

TEST(SweepStore, NaNFieldsRenderAndParseAsNa) {
  // An empty-sample indicator parses back to NaN, never 0.
  const std::string Header =
      "scenario,axes,indicator,n,mean,stddev,ci95,p50,p90,p99,min,max\n";
  obs::SweepStore S;
  std::string Error;
  ASSERT_TRUE(obs::parseSweepCsv(
      Header + "s,a=1,miss,0,n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a\n", S, Error))
      << Error;
  const obs::SweepIndicatorStats *St = S.Scenarios[0].indicator("miss");
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->N, 0u);
  EXPECT_TRUE(std::isnan(St->Mean));
  EXPECT_TRUE(std::isnan(St->P90));
}

//===----------------------------------------------------------------------===//
// Sweep SLO evaluation
//===----------------------------------------------------------------------===//

static obs::SweepStore twoScenarioStore() {
  SweepAccumulator Acc(ScenarioList{{"lam=0.8", {{"lam", "0.8"}}},
                                    {"lam=0.9", {{"lam", "0.9"}}}},
                       3);
  Acc.addRun(0, {{"miss", 0.02}});
  Acc.addRun(0, {{"miss", 0.03}});
  Acc.addRun(0, {{"miss", 0.04}});
  Acc.addRun(1, {{"miss", 0.06}});
  Acc.addRun(1, {{"miss", 0.08}});
  Acc.addRun(1, {{"miss", 0.10}});
  return Acc.finalize();
}

TEST(SweepSlo, GatesQuantilesPerScenarioAndTracksTheWorst) {
  obs::SweepStore S = twoScenarioStore();
  std::vector<obs::SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(obs::parseSloFile("miss.p90 <= 0.05 across seeds\n", Rules,
                                Error))
      << Error;
  std::vector<obs::SweepSloResult> R = obs::evaluateSweepSlo(Rules, S);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Known);
  EXPECT_FALSE(R[0].Pass); // lam=0.9's p90 = 0.096 > 0.05
  EXPECT_EQ(R[0].WorstScenario, "lam=0.9");
  EXPECT_NEAR(R[0].Worst, 0.096, 1e-12);
  EXPECT_EQ(R[0].Evaluated, 2u);

  // Loosening the bound above every scenario's p90 passes.
  Rules[0].Bound = 0.2;
  EXPECT_TRUE(obs::evaluateSweepSlo(Rules, S)[0].Pass);
}

TEST(SweepSlo, DefaultStatIsTheMeanAndLowerBoundsTrackTheMinimum) {
  obs::SweepStore S = twoScenarioStore();
  std::vector<obs::SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(obs::parseSloFile("miss >= 0.025\n", Rules, Error)) << Error;
  std::vector<obs::SweepSloResult> R = obs::evaluateSweepSlo(Rules, S);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Known);
  // Worst for a >= rule is the smallest scenario mean: lam=0.8's 0.03.
  EXPECT_NEAR(R[0].Worst, 0.03, 1e-12);
  EXPECT_EQ(R[0].WorstScenario, "lam=0.8");
  EXPECT_TRUE(R[0].Pass);
}

TEST(SweepSlo, UnknownIndicatorsFailClosed) {
  obs::SweepStore S = twoScenarioStore();
  std::vector<obs::SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(obs::parseSloFile("no_such.p90 <= 1.0 across seeds\n", Rules,
                                Error))
      << Error;
  std::vector<obs::SweepSloResult> R = obs::evaluateSweepSlo(Rules, S);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].Known);
  EXPECT_FALSE(R[0].Pass);
  EXPECT_EQ(R[0].Evaluated, 0u);
  EXPECT_EQ(R[0].Skipped, 2u);
}

//===----------------------------------------------------------------------===//
// Crossing-point interpolation
//===----------------------------------------------------------------------===//

TEST(SweepCrossings, InterpolatesLinearlyBetweenAdjacentAxisValues) {
  // miss(0.8) = 0.03, miss(0.9) = 0.08: the 0.05 bound is crossed at
  // 0.8 + (0.05 - 0.03) / (0.08 - 0.03) * 0.1 = 0.84.
  obs::SweepStore S = twoScenarioStore();
  std::vector<obs::SweepCrossing> C =
      obs::estimateSweepCrossings(S, "miss", "mean", 0.05);
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Axis, "lam");
  EXPECT_DOUBLE_EQ(C[0].LoAxis, 0.8);
  EXPECT_DOUBLE_EQ(C[0].HiAxis, 0.9);
  EXPECT_NEAR(C[0].LoValue, 0.03, 1e-12);
  EXPECT_NEAR(C[0].HiValue, 0.08, 1e-12);
  EXPECT_NEAR(C[0].At, 0.84, 1e-12);
  EXPECT_EQ(C[0].Context, "");

  // A bound outside the observed range crosses nothing.
  EXPECT_TRUE(obs::estimateSweepCrossings(S, "miss", "mean", 0.5).empty());
  // Non-numeric axes contribute no crossings.
  SweepAccumulator Acc(ScenarioList{{"strategy=S1", {{"strategy", "S1"}}},
                                    {"strategy=S2", {{"strategy", "S2"}}}},
                       1);
  Acc.addRun(0, {{"miss", 0.0}});
  Acc.addRun(1, {{"miss", 1.0}});
  EXPECT_TRUE(
      obs::estimateSweepCrossings(Acc.finalize(), "miss", "mean", 0.5)
          .empty());
}

TEST(SweepCrossings, GroupsByTheHeldFixedAxes) {
  SweepAccumulator Acc(
      ScenarioList{
          {"lam=1+s=S1", {{"lam", "1"}, {"s", "S1"}}},
          {"lam=1+s=S2", {{"lam", "1"}, {"s", "S2"}}},
          {"lam=2+s=S1", {{"lam", "2"}, {"s", "S1"}}},
          {"lam=2+s=S2", {{"lam", "2"}, {"s", "S2"}}},
      },
      1);
  Acc.addRun(0, {{"miss", 0.0}});  // S1 crosses between lam=1 and 2
  Acc.addRun(1, {{"miss", 0.2}});  // S2 stays above the bound
  Acc.addRun(2, {{"miss", 0.2}});
  Acc.addRun(3, {{"miss", 0.3}});
  std::vector<obs::SweepCrossing> C =
      obs::estimateSweepCrossings(Acc.finalize(), "miss", "", 0.1);
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Axis, "lam");
  EXPECT_EQ(C[0].Context, "s=S1");
  EXPECT_DOUBLE_EQ(C[0].At, 1.5);
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

TEST(SweepReport, RendersScenariosTrendsCrossingsAndVerdict) {
  SweepAccumulator Acc(ScenarioList{{"lam=0.8", {{"lam", "0.8"}}},
                                    {"lam=0.9", {{"lam", "0.9"}}}},
                       3);
  Acc.addRun(0, {{"deadline_miss_rate", 0.03}, {"commit_rate", 0.7}});
  Acc.addRun(0, {{"deadline_miss_rate", 0.03}, {"commit_rate", 0.6}});
  Acc.addRun(1, {{"deadline_miss_rate", 0.08}, {"commit_rate", 0.5}});
  Acc.addRun(1, {{"deadline_miss_rate", 0.10}, {"commit_rate", 0.4}});
  obs::SweepStore S = Acc.finalize();
  std::vector<obs::SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(obs::parseSloFile("deadline_miss_rate <= 0.05\n", Rules,
                                Error))
      << Error;
  std::vector<obs::SweepSloResult> Slo = obs::evaluateSweepSlo(Rules, S);
  std::string Report = obs::renderSweepReport(S, Slo);
  EXPECT_NE(Report.find("# CWS sweep report"), std::string::npos);
  EXPECT_NE(Report.find("lam=0.9"), std::string::npos);
  EXPECT_NE(Report.find("## Trend along lam"), std::string::npos);
  EXPECT_NE(Report.find("## Crossing points"), std::string::npos);
  EXPECT_NE(Report.find("crosses"), std::string::npos);
  EXPECT_NE(Report.find("**BREACH**"), std::string::npos);
  EXPECT_NE(Report.find("SLO: **FAIL**"), std::string::npos);
  // Deterministic rendering.
  EXPECT_EQ(Report, obs::renderSweepReport(S, Slo));
}

//===----------------------------------------------------------------------===//
// Provenance
//===----------------------------------------------------------------------===//

TEST(Provenance, CsvCommentRoundTrips) {
  obs::RunProvenance P;
  P.Stamped = true;
  P.Seed = 42;
  P.ConfigHash = obs::configHashOf("some canonical text");
  P.ScenarioId = "arrival_scale=1.0+strategy=S1";
  P.Cli = "cws-sim --jobs 40 --seed 42";
  P.Shards = 8;
  std::string Comment = obs::provenanceCsvComment(P);
  obs::RunProvenance Back;
  ASSERT_TRUE(obs::parseProvenanceCsvComment(
      Comment.substr(0, Comment.size() - 1), Back));
  EXPECT_TRUE(Back.valid());
  EXPECT_EQ(Back.Seed, 42u);
  EXPECT_EQ(Back.ConfigHash, P.ConfigHash);
  EXPECT_EQ(Back.ScenarioId, P.ScenarioId);
  EXPECT_EQ(Back.Cli, P.Cli);
  EXPECT_EQ(Back.Shards, 8);

  // A one-shot build stamps no shard count; the comment omits the
  // field and the parse leaves it zero.
  P.Shards = 0;
  obs::RunProvenance NoShards;
  std::string Bare = obs::provenanceCsvComment(P);
  EXPECT_EQ(Bare.find("shards="), std::string::npos);
  ASSERT_TRUE(obs::parseProvenanceCsvComment(Bare.substr(0, Bare.size() - 1),
                                             NoShards));
  EXPECT_EQ(NoShards.Shards, 0);
}

TEST(Provenance, SameScenarioIgnoresSeedAndCliButNotConfig) {
  obs::RunProvenance A;
  A.Stamped = true;
  A.Seed = 1;
  A.ConfigHash = "0x01";
  A.ScenarioId = "s";
  obs::RunProvenance B = A;
  B.Seed = 2;
  B.Cli = "different path";
  EXPECT_TRUE(A.sameScenario(B));
  B.ConfigHash = "0x02";
  EXPECT_FALSE(A.sameScenario(B));
  B = A;
  B.ScenarioId = "t";
  EXPECT_FALSE(A.sameScenario(B));
  obs::RunProvenance Unstamped;
  EXPECT_FALSE(A.sameScenario(Unstamped));
}

} // namespace
