//===-- tests/test_shift.cpp - Distribution shifting tests ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Shift.h"
#include "core/Scheduler.h"
#include "job/Generator.h"
#include "obs/Journal.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Shift, ShiftMovesEveryPlacement) {
  Distribution D;
  D.add({0, 1, 0, 4, 5.0});
  D.add({1, 2, 6, 9, 7.0});
  Distribution S = shiftDistribution(D, 10);
  EXPECT_EQ(S.find(0)->Start, 10);
  EXPECT_EQ(S.find(0)->End, 14);
  EXPECT_EQ(S.find(1)->Start, 16);
  EXPECT_EQ(S.find(1)->End, 19);
  // Costs and node assignments are untouched.
  EXPECT_EQ(S.find(1)->NodeId, 2u);
  EXPECT_DOUBLE_EQ(S.economicCost(), D.economicCost());
}

TEST(Shift, NegativeShiftWorksWithinBounds) {
  Distribution D;
  D.add({0, 1, 5, 9, 0.0});
  Distribution S = shiftDistribution(D, -5);
  EXPECT_EQ(S.find(0)->Start, 0);
}

TEST(Shift, ZeroShiftIsByteIdenticalCopy) {
  Distribution D;
  D.add({0, 1, 0, 4, 5.0});
  D.add({1, 2, 6, 9, 7.0});
  Distribution S = shiftDistribution(D, 0);
  ASSERT_EQ(S.placements().size(), D.placements().size());
  for (size_t I = 0; I < D.placements().size(); ++I) {
    const Placement &A = D.placements()[I];
    const Placement &B = S.placements()[I];
    EXPECT_EQ(B.TaskId, A.TaskId);
    EXPECT_EQ(B.NodeId, A.NodeId);
    EXPECT_EQ(B.Start, A.Start);
    EXPECT_EQ(B.End, A.End);
    EXPECT_DOUBLE_EQ(B.EconomicCost, A.EconomicCost);
  }
}

TEST(Shift, AlreadyFeasibleFastPathHasNoSideEffects) {
  // The Delta = 0 fast path is pinned to be a strict no-op: no search,
  // no journal events, so recovery code can probe "already fits"
  // without perturbing run artifacts.
  Grid G = makeSmallGrid();
  G.node(1).timeline().reserve(0, 50, 9); // Busy elsewhere only.
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  D.add({1, 0, 7, 12, 0.0});
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  std::string Before = Jn.jsonl();
  auto Delta = minimalFeasibleShift(D, G, 100);
  std::string After = Jn.jsonl();
  Jn.disable();
  Jn.reset();
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 0);
  EXPECT_EQ(Before, After);
}

TEST(Shift, ZeroWhenAlreadyFree) {
  Grid G = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  auto Delta = minimalFeasibleShift(D, G, 100);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 0);
}

TEST(Shift, JumpsPastOneBlock) {
  Grid G = makeSmallGrid();
  G.node(0).timeline().reserve(2, 8, 9);
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  auto Delta = minimalFeasibleShift(D, G, 100);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 8);
}

TEST(Shift, ChainsOverSeveralBlocks) {
  Grid G = makeSmallGrid();
  G.node(0).timeline().reserve(2, 8, 9);
  G.node(0).timeline().reserve(10, 14, 9);
  Distribution D;
  D.add({0, 0, 0, 5, 0.0}); // After the first jump lands on [8,13): hits
                            // the second block, jumps again to 14.
  auto Delta = minimalFeasibleShift(D, G, 100);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 14);
}

TEST(Shift, MultiPlacementTakesTheMaxConstraint) {
  Grid G = makeSmallGrid();
  G.node(0).timeline().reserve(0, 6, 9);
  G.node(1).timeline().reserve(0, 12, 9);
  Distribution D;
  D.add({0, 0, 0, 3, 0.0});
  D.add({1, 1, 4, 7, 0.0});
  auto Delta = minimalFeasibleShift(D, G, 100);
  ASSERT_TRUE(Delta.has_value());
  // Task 1 needs Start + Delta >= 12, i.e. Delta >= 8; task 0 then
  // starts at 8 >= 6: fine.
  EXPECT_EQ(*Delta, 8);
  Distribution S = shiftDistribution(D, *Delta);
  EXPECT_TRUE(S.fitsGrid(G));
}

TEST(Shift, DeadlineBoundsTheSearch) {
  Grid G = makeSmallGrid();
  G.node(0).timeline().reserve(0, 50, 9);
  Distribution D;
  D.add({0, 0, 0, 10, 0.0});
  EXPECT_FALSE(minimalFeasibleShift(D, G, 55).has_value());
  auto Delta = minimalFeasibleShift(D, G, 60);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 50);
}

TEST(Shift, IgnoresOwnReservations) {
  Grid G = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  ASSERT_TRUE(D.commit(G, 42));
  auto Delta = minimalFeasibleShift(D, G, 100, /*Ignore=*/42);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 0);
}

TEST(Shift, EmptyDistributionShiftsTrivially) {
  Grid G = makeSmallGrid();
  Distribution D;
  auto Delta = minimalFeasibleShift(D, G, 10);
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, 0);
}

TEST(Shift, ShiftedScheduleStaysValid) {
  // Property: shifting a real schedule preserves precedence and
  // non-overlap, and the minimal shift really fits the loaded grid.
  JobGenerator Gen(WorkloadConfig{}, 71);
  Prng Rng(72);
  Network Net;
  for (int I = 0; I < 15; ++I) {
    Job J = Gen.next(0);
    J.setDeadline(J.deadline() * 4);
    Grid Env = Grid::makeRandom(GridConfig{}, Rng);
    ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 42);
    if (!R.Feasible)
      continue;
    // Load the grid afterwards, then shift around the new load.
    for (int K = 0; K < 10; ++K) {
      unsigned Node = static_cast<unsigned>(Rng.index(Env.size()));
      Tick Dur = Rng.uniformInt(2, 9);
      Timeline &Line = Env.node(Node).timeline();
      Tick Start = Line.earliestFit(Rng.uniformInt(0, 30), Dur);
      Line.reserve(Start, Start + Dur, 9);
    }
    auto Delta = minimalFeasibleShift(R.Dist, Env, J.deadline());
    if (!Delta)
      continue;
    Distribution S = shiftDistribution(R.Dist, *Delta);
    expectValidDistribution(J, S);
    EXPECT_TRUE(S.fitsGrid(Env));
    EXPECT_LE(S.makespan(), J.deadline());
  }
}
