//===-- tests/test_diff.cpp - Semantic differential analysis tests --------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
//
// obs/Diff: the identical-run fixed point across build-thread / shard /
// invalidation-mode combinations, first-divergence localization of an
// injected one-event change, the meta policy, series tolerance
// classes, the sweep CI-overlap / quantile-shift verdicts with pinned
// numerics, and the Markdown report golden.
//
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace cws;
using namespace cws::obs;

namespace {

class DiffTest : public ::testing::Test {
protected:
  void SetUp() override { Journal::global().reset(); }
  void TearDown() override { Journal::global().reset(); }
};

/// One journaled multi-flow run at the given parallelism knobs.
std::string journaledRun(size_t Shards, size_t BuildThreads,
                         InvalidationMode Mode) {
  VoConfig Config;
  Config.JobCount = 24;
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 6;
  Config.Invalidation = Mode;
  Config.Shards = Shards;
  Config.Strategy.BuildThreads = BuildThreads;
  Journal &Jn = Journal::global();
  Jn.reset();
  Jn.enable();
  runMultiFlowVo(Config, {StrategyKind::S1, StrategyKind::S3}, /*Seed=*/7);
  Jn.disable();
  std::string Out = Jn.jsonl();
  Jn.reset();
  return Out;
}

ParsedJournal parsed(const std::string &Text) {
  ParsedJournal J;
  std::string Error;
  EXPECT_TRUE(parseJournalJsonl(Text, J, Error)) << Error;
  return J;
}

/// A small hand-written journal: an environment change at t=5, job 7
/// triggered by it, job 8 independent.
const char BaseJournal[] =
    "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":5,\"dropped\":0}\n"
    "{\"id\":1,\"kind\":\"env.change\",\"tick\":5,\"job\":-1,\"flow\":-1,"
    "\"detail\":\"node\",\"args\":{\"node\":2}}\n"
    "{\"id\":2,\"kind\":\"arrival\",\"tick\":10,\"job\":7,\"flow\":0}\n"
    "{\"id\":3,\"kind\":\"invalidate\",\"tick\":12,\"job\":7,\"flow\":0,"
    "\"cause\":2,\"trigger\":1}\n"
    "{\"id\":4,\"kind\":\"commit\",\"tick\":14,\"job\":7,\"flow\":0,"
    "\"cause\":3,\"args\":{\"cost\":9}}\n"
    "{\"id\":5,\"kind\":\"commit\",\"tick\":20,\"job\":8,\"flow\":0}\n";

/// BaseJournal with exactly one event changed: job 7's commit became a
/// reject (same tick, same args).
const char DivergedJournal[] =
    "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":5,\"dropped\":0}\n"
    "{\"id\":1,\"kind\":\"env.change\",\"tick\":5,\"job\":-1,\"flow\":-1,"
    "\"detail\":\"node\",\"args\":{\"node\":2}}\n"
    "{\"id\":2,\"kind\":\"arrival\",\"tick\":10,\"job\":7,\"flow\":0}\n"
    "{\"id\":3,\"kind\":\"invalidate\",\"tick\":12,\"job\":7,\"flow\":0,"
    "\"cause\":2,\"trigger\":1}\n"
    "{\"id\":4,\"kind\":\"reject\",\"tick\":14,\"job\":7,\"flow\":0,"
    "\"cause\":3,\"args\":{\"cost\":9}}\n"
    "{\"id\":5,\"kind\":\"commit\",\"tick\":20,\"job\":8,\"flow\":0}\n";

TimeSeriesRow row(uint64_t Seq, Tick At, const std::string &Series,
                  double Value) {
  TimeSeriesRow R;
  R.Seq = Seq;
  R.At = At;
  R.Reason = "sample";
  R.Series = Series;
  R.Value = Value;
  return R;
}

SweepIndicatorStats stats(uint64_t N, double Mean, double Ci95, double P50,
                          double P90, double P99) {
  SweepIndicatorStats S;
  S.N = N;
  S.Mean = Mean;
  S.Stddev = Ci95; // Not compared beyond exact equality.
  S.Ci95 = Ci95;
  S.P50 = P50;
  S.P90 = P90;
  S.P99 = P99;
  S.Min = P50;
  S.Max = P99;
  return S;
}

SweepStore store(const SweepIndicatorStats &S) {
  SweepStore St;
  St.Seeds = 2;
  St.Runs = 2;
  SweepScenario Sc;
  Sc.Id = "strategy=S1";
  Sc.Axes = {{"strategy", "S1"}};
  Sc.Indicators["commit_rate"] = S;
  St.Scenarios.push_back(Sc);
  return St;
}

} // namespace

//===----------------------------------------------------------------------===//
// Glob matching and default rules
//===----------------------------------------------------------------------===//

TEST(DiffGlob, MatchesStarsAnywhere) {
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("*_us", "queue_wait_us"));
  EXPECT_FALSE(globMatch("*_us", "queue_wait_ms"));
  EXPECT_TRUE(globMatch("*wall*", "sched_wall_clock"));
  EXPECT_TRUE(globMatch("util_*", "util_busy"));
  EXPECT_FALSE(globMatch("util_*x", "util_busy"));
  EXPECT_TRUE(globMatch("jobs_committed", "jobs_committed"));
  EXPECT_FALSE(globMatch("jobs_committed", "jobs_committed2"));
  EXPECT_TRUE(globMatch("a*b*c", "a-xx-b-yy-c"));
}

//===----------------------------------------------------------------------===//
// Journal fixed point across parallelism knobs
//===----------------------------------------------------------------------===//

TEST_F(DiffTest, ParallelismKnobsAreASemanticFixedPoint) {
  ASSERT_EQ(unsetenv("CWS_SHARDS"), 0);
  for (InvalidationMode Mode :
       {InvalidationMode::Scan, InvalidationMode::Index}) {
    ParsedJournal Base = parsed(journaledRun(1, 1, Mode));
    ASSERT_FALSE(Base.Events.empty());
    for (size_t Shards : {size_t(1), size_t(4)})
      for (size_t Threads : {size_t(1), size_t(4)}) {
        if (Shards == 1 && Threads == 1)
          continue;
        ParsedJournal Other = parsed(journaledRun(Shards, Threads, Mode));
        DiffResult R = diffJournals(Base, Other);
        EXPECT_TRUE(R.identical())
            << Shards << " shards, " << Threads << " threads, "
            << (Mode == InvalidationMode::Scan ? "scan" : "index") << ": "
            << renderDiffText(R, "base", "other");
      }
  }
}

//===----------------------------------------------------------------------===//
// First-divergence localization
//===----------------------------------------------------------------------===//

TEST_F(DiffTest, InjectedDivergenceIsLocalizedToJobTickAndCause) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(DivergedJournal);
  DiffResult R = diffJournals(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_TRUE(R.First.Present);
  EXPECT_EQ(R.First.JobId, 7);
  EXPECT_EQ(R.First.Tick, 14);
  EXPECT_EQ(R.First.IndexInJob, 2u);
  EXPECT_NE(R.First.EventA.find("commit"), std::string::npos);
  EXPECT_NE(R.First.EventB.find("reject"), std::string::npos);
  // Both cause chains walk back through the invalidation, and the
  // invalidation's trigger is expanded to the env.change content.
  EXPECT_NE(R.First.ChainA.find("arrival"), std::string::npos);
  EXPECT_NE(R.First.ChainA.find("invalidate"), std::string::npos);
  EXPECT_NE(R.First.ChainA.find("trigger: t=5 env.change [node] node=2"),
            std::string::npos);
  EXPECT_NE(R.First.ChainB.find("reject"), std::string::npos);
  EXPECT_NE(R.Summary.find("job 7"), std::string::npos);
  EXPECT_NE(R.Summary.find("t=14"), std::string::npos);
}

TEST_F(DiffTest, IdenticalJournalsAreAFixedPoint) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(BaseJournal);
  DiffResult R = diffJournals(A, B);
  EXPECT_TRUE(R.identical()) << renderDiffText(R, "a", "b");
  EXPECT_FALSE(R.First.Present);
  EXPECT_EQ(R.TotalFindings, 0u);
}

TEST_F(DiffTest, MissingTrailingEventsAreReported) {
  // Drop job 8's commit: one side's chain is a strict prefix.
  std::string Short(BaseJournal);
  Short.resize(Short.find("{\"id\":5"));
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B;
  std::string Error;
  // recorded no longer matches — parse leniently by fixing the header.
  size_t Pos = Short.find("\"recorded\":5");
  Short.replace(Pos, 12, "\"recorded\":4");
  ASSERT_TRUE(parseJournalJsonl(Short, B, Error)) << Error;
  DiffResult R = diffJournals(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_TRUE(R.First.Present);
  EXPECT_EQ(R.First.JobId, 8);
  EXPECT_EQ(R.First.EventB, "(absent)");
}

//===----------------------------------------------------------------------===//
// Meta policy
//===----------------------------------------------------------------------===//

TEST_F(DiffTest, MetaPolicyGatesProvenanceFields) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(BaseJournal);
  A.Prov.Stamped = B.Prov.Stamped = true;
  A.Prov.Seed = B.Prov.Seed = 3;
  A.Prov.ConfigHash = B.Prov.ConfigHash = "0xabc";
  A.Prov.ScenarioId = B.Prov.ScenarioId = "single";
  A.Prov.Shards = 1;
  B.Prov.Shards = 4;
  A.Prov.Cli = "cws-sim --journal a.jsonl";
  B.Prov.Cli = "cws-sim --journal b.jsonl";

  // Shards and cli differ: allowed by the default policy.
  EXPECT_TRUE(diffJournals(A, B).identical());

  // A seed mismatch is a divergence...
  B.Prov.Seed = 4;
  DiffResult R = diffJournals(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.MetaFindings.size(), 1u);
  EXPECT_EQ(R.MetaFindings[0].Where, "meta.seed");
  EXPECT_EQ(R.MetaFindings[0].A, "3");
  EXPECT_EQ(R.MetaFindings[0].B, "4");

  // ...unless the policy allows it, or meta comparison is off.
  DiffOptions Opts;
  Opts.Meta.AllowSeed = true;
  EXPECT_TRUE(diffJournals(A, B, Opts).identical());
  DiffOptions Off;
  Off.Meta.Off = true;
  EXPECT_TRUE(diffJournals(A, B, Off).identical());

  // Config hash and scenario are strict by default.
  B.Prov.Seed = 3;
  B.Prov.ConfigHash = "0xdef";
  EXPECT_EQ(diffJournals(A, B).MetaFindings[0].Where, "meta.config_hash");
  B.Prov.ConfigHash = "0xabc";
  B.Prov.ScenarioId = "other";
  EXPECT_EQ(diffJournals(A, B).MetaFindings[0].Where, "meta.scenario");

  // Disallowing shards catches the shard-count difference too.
  B.Prov.ScenarioId = "single";
  DiffOptions Strict;
  Strict.Meta.AllowShards = false;
  Strict.Meta.AllowCli = true;
  DiffResult S = diffJournals(A, B, Strict);
  ASSERT_EQ(S.MetaFindings.size(), 1u);
  EXPECT_EQ(S.MetaFindings[0].Where, "meta.shards");
}

TEST_F(DiffTest, UnstampedJournalsSkipMetaComparison) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(BaseJournal);
  EXPECT_TRUE(diffJournals(A, B).identical());
  // One stamped side is itself a finding.
  B.Prov.Stamped = true;
  B.Prov.Seed = 1;
  DiffResult R = diffJournals(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.MetaFindings.size(), 1u);
  EXPECT_EQ(R.MetaFindings[0].Where, "meta.provenance");
}

//===----------------------------------------------------------------------===//
// Series tolerance classes
//===----------------------------------------------------------------------===//

TEST(DiffSeries, ToleranceClassesGateValueComparison) {
  ParsedTimeSeries A, B;
  A.Rows = {row(0, 1, "jobs_committed", 3), row(1, 1, "sched_wall_us", 120),
            row(2, 1, "util_busy", 0.500)};
  B.Rows = {row(0, 1, "jobs_committed", 3), row(1, 1, "sched_wall_us", 480),
            row(2, 1, "util_busy", 0.501)};

  // Default rules: the wall-time series is excluded, util_busy is
  // exact — its drift is a finding.
  DiffResult R = diffTimeSeries(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_NE(R.Findings[0].Where.find("util_busy"), std::string::npos);

  // An epsilon band admits the drift.
  DiffOptions Opts;
  Opts.Series.push_back({"util_*", SeriesClass::Tolerance, 0.01});
  EXPECT_TRUE(diffTimeSeries(A, B, Opts).identical());

  // Without the default rules the wall-time series diverges too.
  DiffOptions Raw;
  Raw.NoDefaultSeriesRules = true;
  EXPECT_EQ(diffTimeSeries(A, B, Raw).TotalFindings, 2u);

  // Exact divergence on a counter is always reported.
  B.Rows[0].Value = 4;
  DiffResult C = diffTimeSeries(A, B, Opts);
  EXPECT_EQ(C.Verdict, DiffVerdict::Diverged);
  EXPECT_NE(C.Findings[0].Where.find("jobs_committed"), std::string::npos);
}

TEST(DiffSeries, SurplusRowsAreAbsentFindings) {
  ParsedTimeSeries A, B;
  A.Rows = {row(0, 1, "jobs_committed", 3), row(1, 2, "jobs_committed", 5)};
  B.Rows = {row(0, 1, "jobs_committed", 3)};
  DiffResult R = diffTimeSeries(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].B, "(absent)");
}

//===----------------------------------------------------------------------===//
// Sweep verdicts, pinned numerics
//===----------------------------------------------------------------------===//

TEST(DiffSweep, ExactEqualityIsIdentical) {
  SweepStore A = store(stats(2, 0.5625, 0.794125, 0.5625, 0.6125, 0.62375));
  SweepStore B = store(stats(2, 0.5625, 0.794125, 0.5625, 0.6125, 0.62375));
  DiffResult R = diffSweeps(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Identical);
}

TEST(DiffSweep, CiOverlapAndQuantileShiftAreCompatible) {
  // Means 0.50 vs 0.58 with CI half-widths 0.05 + 0.04 = 0.09 >= 0.08:
  // overlapping. Quantiles shift by < 10% relative.
  SweepStore A = store(stats(2, 0.50, 0.05, 0.50, 0.60, 0.70));
  SweepStore B = store(stats(2, 0.58, 0.04, 0.52, 0.63, 0.73));
  DiffResult R = diffSweeps(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Compatible);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_NE(R.Findings[0].Where.find("(compatible)"), std::string::npos);
}

TEST(DiffSweep, CiSeparationIsDiverged) {
  // Means 0.50 vs 0.65: |0.15| > 0.05 + 0.04 — the CIs do not overlap.
  SweepStore A = store(stats(2, 0.50, 0.05, 0.50, 0.60, 0.70));
  SweepStore B = store(stats(2, 0.65, 0.04, 0.50, 0.60, 0.70));
  DiffResult R = diffSweeps(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_NE(R.Findings[0].Where.find("(regressed)"), std::string::npos);
}

TEST(DiffSweep, QuantileShiftBeyondToleranceIsDiverged) {
  // Identical means, but p99 0.70 -> 0.80 is a 12.5% relative shift,
  // past the 10% default tolerance.
  SweepStore A = store(stats(2, 0.50, 0.05, 0.50, 0.60, 0.70));
  SweepStore B = store(stats(2, 0.50, 0.05, 0.50, 0.60, 0.80));
  EXPECT_EQ(diffSweeps(A, B).Verdict, DiffVerdict::Diverged);
  // A looser tolerance admits it.
  DiffOptions Opts;
  Opts.QuantileShiftTol = 0.20;
  EXPECT_EQ(diffSweeps(A, B, Opts).Verdict, DiffVerdict::Compatible);
}

TEST(DiffSweep, SampleCountChangeIsNeverCompatible) {
  SweepStore A = store(stats(2, 0.50, 0.05, 0.50, 0.60, 0.70));
  SweepStore B = store(stats(3, 0.50, 0.05, 0.50, 0.60, 0.70));
  B.Runs = 3;
  EXPECT_EQ(diffSweeps(A, B).Verdict, DiffVerdict::Diverged);
}

TEST(DiffSweep, MissingScenariosAndIndicatorsDiverge) {
  SweepStore A = store(stats(2, 0.5, 0.1, 0.5, 0.6, 0.7));
  SweepStore B = A;
  B.Scenarios[0].Id = "strategy=S2";
  DiffResult R = diffSweeps(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  EXPECT_EQ(R.TotalFindings, 2u); // One missing on each side.

  SweepStore C = A;
  C.Scenarios[0].Indicators.erase("commit_rate");
  EXPECT_EQ(diffSweeps(A, C).Verdict, DiffVerdict::Diverged);
}

//===----------------------------------------------------------------------===//
// Renderings
//===----------------------------------------------------------------------===//

TEST_F(DiffTest, ReportGoldenForInjectedDivergence) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(DivergedJournal);
  std::string Report =
      renderDiffReport(diffJournals(A, B), "a.jsonl", "b.jsonl");
  EXPECT_EQ(Report,
            "# Differential run analysis (journal)\n"
            "\n"
            "- run A: `a.jsonl`\n"
            "- run B: `b.jsonl`\n"
            "- verdict: **diverged** — job 7 diverged at t=14: A #4 t=14 "
            "commit cost=9 vs B #4 t=14 reject cost=9\n"
            "\n"
            "## First divergence\n"
            "\n"
            "job 7 diverged at t=14 (event 3 of its chain):\n"
            "\n"
            "- A: `#4 t=14 commit cost=9`\n"
            "- B: `#4 t=14 reject cost=9`\n"
            "\n"
            "Cause chain in A (a.jsonl):\n"
            "\n"
            "```\n"
            "  #2 t=10 arrival\n"
            "  #3 t=12 invalidate\n"
            "      trigger: t=5 env.change [node] node=2\n"
            "  #4 t=14 commit cost=9\n"
            "```\n"
            "\n"
            "Cause chain in B (b.jsonl):\n"
            "\n"
            "```\n"
            "  #2 t=10 arrival\n"
            "  #3 t=12 invalidate\n"
            "      trigger: t=5 env.change [node] node=2\n"
            "  #4 t=14 reject cost=9\n"
            "```\n"
            "\n"
            "## Findings\n"
            "\n"
            "| where | A | B |\n"
            "|---|---|---|\n"
            "| job 7 event 3/3 | `#4 t=14 commit cost=9` | `#4 t=14 reject "
            "cost=9` |\n"
            "\n");
}

TEST_F(DiffTest, ExplainJobDiffLocalizesWithinTheJob) {
  ParsedJournal A = parsed(BaseJournal);
  ParsedJournal B = parsed(DivergedJournal);
  std::string Out = explainJobDiff(A, B, 7);
  EXPECT_NE(Out.find("--- run A ---"), std::string::npos);
  EXPECT_NE(Out.find("--- run B ---"), std::string::npos);
  EXPECT_NE(Out.find("job 7 diverges at t=14"), std::string::npos);
  // A job whose chains agree says so and points elsewhere.
  std::string Same = explainJobDiff(A, B, 8);
  EXPECT_NE(Same.find("causal chains agree"), std::string::npos);
  EXPECT_NE(Same.find("diverge elsewhere"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Outcome mode: the cross-reallocation-mode equivalence gate
//===----------------------------------------------------------------------===//

namespace {

/// A repair-mode run (A-side): job 5 decided before any repair, job 7
/// saved by a stage-2 repair at t=14, jobs 8 and 9 decided after it.
const char RepairRunJournal[] =
    "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":6,\"dropped\":0}\n"
    "{\"id\":1,\"kind\":\"commit\",\"tick\":10,\"job\":5,\"flow\":0}\n"
    "{\"id\":2,\"kind\":\"repair.stage\",\"tick\":14,\"job\":7,\"flow\":0,"
    "\"detail\":\"dp\",\"args\":{\"stage\":2,\"ok\":1}}\n"
    "{\"id\":3,\"kind\":\"commit\",\"tick\":15,\"job\":7,\"flow\":0}\n"
    "{\"id\":4,\"kind\":\"commit\",\"tick\":30,\"job\":8,\"flow\":0}\n"
    "{\"id\":5,\"kind\":\"reject\",\"tick\":40,\"job\":9,\"flow\":0}\n";

/// The rebuild oracle (B-side): job 5 agrees, job 7 rejected (the
/// save), jobs 8 and 9 flipped both ways by post-repair drift.
const char RebuildRunJournal[] =
    "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":5,\"dropped\":0}\n"
    "{\"id\":1,\"kind\":\"commit\",\"tick\":10,\"job\":5,\"flow\":0}\n"
    "{\"id\":2,\"kind\":\"reject\",\"tick\":14,\"job\":7,\"flow\":0}\n"
    "{\"id\":3,\"kind\":\"reject\",\"tick\":30,\"job\":8,\"flow\":0}\n"
    "{\"id\":4,\"kind\":\"commit\",\"tick\":40,\"job\":9,\"flow\":0}\n";

} // namespace

TEST_F(DiffTest, OutcomesStrictModeFlagsEveryFlip) {
  ParsedJournal A = parsed(RepairRunJournal);
  ParsedJournal B = parsed(RebuildRunJournal);
  DiffResult R = diffJournalOutcomes(A, B);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  EXPECT_EQ(R.TotalFindings, 3u); // Jobs 7, 8 and 9.
}

TEST_F(DiffTest, OutcomesAcceptSavesAndPostRepairDrift) {
  ParsedJournal A = parsed(RepairRunJournal);
  ParsedJournal B = parsed(RebuildRunJournal);
  DiffOptions Opts;
  Opts.AllowRepairSaves = true;
  DiffResult R = diffJournalOutcomes(A, B, Opts);
  EXPECT_TRUE(R.identical()) << R.Summary;
  EXPECT_NE(R.Summary.find("1 repair save(s) accepted"), std::string::npos)
      << R.Summary;
  EXPECT_NE(R.Summary.find("2 post-repair drift(s) accepted"),
            std::string::npos)
      << R.Summary;
}

TEST_F(DiffTest, OutcomesRejectDivergenceBeforeTheFirstRepair) {
  // Job 5's flip happens at t=10, before the first stage-1/2 repair at
  // t=14 — the grids were still identical, so this is a defect.
  ParsedJournal A = parsed(RepairRunJournal);
  ParsedJournal B = parsed(RebuildRunJournal);
  B.Events[0].Kind = "reject";
  DiffOptions Opts;
  Opts.AllowRepairSaves = true;
  DiffResult R = diffJournalOutcomes(A, B, Opts);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Where, "job 5 outcome");
}

TEST_F(DiffTest, OutcomesRejectDriftWithoutAnyRepairOnRecord) {
  // Without a successful stage-1/2 repair in A there is no moment the
  // grids could have legitimately diverged: every flip is a defect.
  ParsedJournal A = parsed(RepairRunJournal);
  ParsedJournal B = parsed(RebuildRunJournal);
  A.Events.erase(A.Events.begin() + 1); // Drop the repair.stage event.
  DiffOptions Opts;
  Opts.AllowRepairSaves = true;
  DiffResult R = diffJournalOutcomes(A, B, Opts);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  EXPECT_EQ(R.TotalFindings, 3u);
}

TEST_F(DiffTest, OutcomesDominanceBackstopCatchesNetLoss) {
  // Turn A's extra commits (jobs 7 and 8) into rejects that agree
  // with B: the only divergence left is job 9's drift, which leaves A
  // committing 1 job to B's 2. The drift is tick-eligible per job, but
  // the aggregate backstop must still fail the comparison.
  ParsedJournal A = parsed(RepairRunJournal);
  ParsedJournal B = parsed(RebuildRunJournal);
  A.Events[2].Kind = "reject"; // Job 7 now agrees with B.
  A.Events[3].Kind = "reject"; // Job 8 now agrees with B.
  DiffOptions Opts;
  Opts.AllowRepairSaves = true;
  DiffResult R = diffJournalOutcomes(A, B, Opts);
  EXPECT_EQ(R.Verdict, DiffVerdict::Diverged);
  bool Backstop = false;
  for (const DiffFinding &F : R.Findings)
    Backstop |= F.Where == "committed jobs total";
  EXPECT_TRUE(Backstop) << R.Summary;
}
