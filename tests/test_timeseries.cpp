//===-- tests/test_timeseries.cpp - Sim-time telemetry tests --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the sim-time telemetry sampler: byte-determinism of the
/// exported series across build-thread counts, periodic cadence and
/// event coalescing, ring-overflow accounting, utilization bounds on a
/// real VO run, and the CSV / JSONL / trace-fragment export shapes.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

class TimeSeriesTest : public ::testing::Test {
protected:
  void SetUp() override { TimeSeries::global().reset(); }
  void TearDown() override { TimeSeries::global().reset(); }
};

VoConfig smallConfig(size_t BuildThreads) {
  VoConfig Config;
  Config.JobCount = 25;
  Config.Strategy.BuildThreads = BuildThreads;
  return Config;
}

/// One sampled VO run through the global sampler; returns the CSV.
std::string sampledRun(size_t BuildThreads,
                       TimeSeriesConfig Config = TimeSeriesConfig()) {
  TimeSeries &Ts = TimeSeries::global();
  Ts.reset();
  Ts.enable(Config);
  runVirtualOrganization(smallConfig(BuildThreads), StrategyKind::S1,
                         /*Seed=*/7);
  Ts.disable();
  return Ts.csv();
}

TEST_F(TimeSeriesTest, CsvIsByteDeterministicAcrossBuildThreads) {
  std::string Serial = sampledRun(1);
  std::string Parallel = sampledRun(4);
  EXPECT_EQ(Serial, Parallel);
  EXPECT_EQ(Serial.rfind("seq,tick,reason,series,node,flow,value\n", 0), 0u)
      << Serial.substr(0, 120);
  // The run produced periodic frames and forced event frames.
  EXPECT_NE(Serial.find(",sample,"), std::string::npos);
  EXPECT_NE(Serial.find(",env.change,"), std::string::npos);
  EXPECT_NE(Serial.find(",run.end,"), std::string::npos);
}

TEST_F(TimeSeriesTest, UtilizationFractionsStayWithinBounds) {
  TimeSeries &Ts = TimeSeries::global();
  Ts.enable();
  runVirtualOrganization(smallConfig(1), StrategyKind::S1, /*Seed=*/7);
  Ts.disable();
  std::vector<TimeSeriesFrame> Frames = Ts.snapshot();
  ASSERT_FALSE(Frames.empty());
  size_t FramesWithNodes = 0;
  for (const TimeSeriesFrame &F : Frames) {
    if (!F.Nodes.empty())
      ++FramesWithNodes;
    for (const NodeOccupancy &O : F.Nodes) {
      EXPECT_GE(O.Busy, 0.0);
      EXPECT_GE(O.Background, 0.0);
      EXPECT_GE(O.Reserved, 0.0);
      // Busy and background split one elapsed window between disjoint
      // owner ranges, so together they can never exceed it.
      EXPECT_LE(O.Busy + O.Background, 1.0 + 1e-9)
          << "frame " << F.Seq << " at " << F.At;
      EXPECT_LE(O.Reserved, 1.0 + 1e-9);
    }
  }
  EXPECT_GT(FramesWithNodes, 0u);
}

TEST_F(TimeSeriesTest, RingOverflowIsCountedNotSilent) {
  TimeSeriesConfig Config;
  Config.Capacity = 8;
  sampledRun(1, Config);
  TimeSeries &Ts = TimeSeries::global();
  EXPECT_GT(Ts.dropped(), 0u);
  std::vector<TimeSeriesFrame> Frames = Ts.snapshot();
  EXPECT_EQ(Frames.size(), 8u);
  EXPECT_EQ(Ts.recorded(), Ts.dropped() + Frames.size());
  // The survivors are the newest frames, in order, with their original
  // sequence numbers.
  for (size_t I = 1; I < Frames.size(); ++I)
    EXPECT_EQ(Frames[I].Seq, Frames[I - 1].Seq + 1);
  EXPECT_EQ(Frames.back().Seq, Ts.recorded() - 1);

  Registry R;
  publishTimeSeriesStats(R);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("cws_timeseries_frames_total " +
                      std::to_string(Ts.recorded()) + "\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("cws_timeseries_dropped " +
                      std::to_string(Ts.dropped()) + "\n"),
            std::string::npos)
      << Text;
}

TEST_F(TimeSeriesTest, PeriodicFramesFollowTheCadence) {
  TimeSeries Ts;
  TimeSeriesConfig Config;
  Config.SampleEvery = 10;
  Ts.enable(Config);
  Ts.addProbe("x", [] { return 1.0; });
  Ts.onTick(0);  // boundary 0
  Ts.onTick(3);  // below the next boundary (10)
  Ts.onTick(12); // first event at/after 10
  Ts.onTick(19); // below 20
  Ts.onTick(20); // boundary 20
  Ts.disable();
  std::vector<TimeSeriesFrame> Frames = Ts.snapshot();
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_EQ(Frames[0].At, 0);
  EXPECT_EQ(Frames[1].At, 12);
  EXPECT_EQ(Frames[2].At, 20);
  for (const TimeSeriesFrame &F : Frames)
    EXPECT_STREQ(F.Reason, "sample");
}

TEST_F(TimeSeriesTest, SameTickSameReasonEventsCoalesce) {
  TimeSeries Ts;
  Ts.enable();
  Ts.addProbe("x", [] { return 1.0; });
  Ts.sampleEvent(10, "commit");
  Ts.sampleEvent(10, "commit");     // coalesced into the frame above
  Ts.sampleEvent(10, "reallocate"); // same tick, new reason -> new frame
  Ts.sampleEvent(11, "commit");     // new tick -> new frame
  Ts.disable();
  std::vector<TimeSeriesFrame> Frames = Ts.snapshot();
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_STREQ(Frames[0].Reason, "commit");
  EXPECT_STREQ(Frames[1].Reason, "reallocate");
  EXPECT_EQ(Frames[2].At, 11);
}

TEST_F(TimeSeriesTest, DisabledSamplerRecordsNothing) {
  TimeSeries Ts;
  Ts.onTick(5);
  Ts.sampleEvent(5, "commit");
  Ts.addOccupancySlice(0, 0, 10, "job", 1000);
  EXPECT_EQ(Ts.recorded(), 0u);
  EXPECT_EQ(Ts.slicesRecorded(), 0u);
  EXPECT_FALSE(Ts.enabled());
}

TEST_F(TimeSeriesTest, CsvRowsCoverMetricsNodesAndFlows) {
  TimeSeries Ts;
  Ts.enable();
  Ts.addProbe("jobs", [] { return 2.0; });
  Ts.setFlowProvider({"S1"},
                     [] { return std::vector<FlowSample>{{3, 1}}; });
  Ts.setOccupancyProvider([](Tick, Tick) {
    return std::vector<NodeOccupancy>{{0.25, 0.5, 0.125}};
  });
  Ts.sampleEvent(5, "commit");
  Ts.disable();
  // Export must survive the providers being dropped at run end.
  Ts.clearProviders();
  std::string Csv = Ts.csv();
  EXPECT_NE(Csv.find("0,5,commit,jobs,,,2\n"), std::string::npos) << Csv;
  EXPECT_NE(Csv.find("0,5,commit,util_busy,0,,0.25\n"), std::string::npos)
      << Csv;
  EXPECT_NE(Csv.find("0,5,commit,util_background,0,,0.5\n"),
            std::string::npos)
      << Csv;
  EXPECT_NE(Csv.find("0,5,commit,util_reserved,0,,0.125\n"),
            std::string::npos)
      << Csv;
  EXPECT_NE(Csv.find("0,5,commit,queued,,S1,3\n"), std::string::npos)
      << Csv;
  EXPECT_NE(Csv.find("0,5,commit,in_flight,,S1,1\n"), std::string::npos)
      << Csv;

  std::string Jsonl = Ts.jsonl();
  EXPECT_EQ(Jsonl.rfind("{\"kind\":\"timeseries.meta\",\"schema\":1", 0),
            0u)
      << Jsonl.substr(0, 120);
  EXPECT_NE(Jsonl.find("\"reason\":\"commit\""), std::string::npos);
}

TEST_F(TimeSeriesTest, ChromeFragmentCarriesCounterAndOccupancyTracks) {
  TimeSeries Ts;
  Ts.enable();
  Ts.addProbe("jobs", [] { return 2.0; });
  Ts.sampleEvent(5, "commit");
  Ts.addOccupancySlice(3, 10, 40, "background", 1);
  Ts.disable();
  std::string Extra = Ts.chromeTraceEvents();
  // Counter sample on the sim-time process, occupancy as a complete
  // event on the node's track.
  EXPECT_NE(Extra.find("\"ph\":\"C\""), std::string::npos) << Extra;
  EXPECT_NE(Extra.find("\"pid\":2"), std::string::npos) << Extra;
  EXPECT_NE(Extra.find("sim-time (ticks)"), std::string::npos) << Extra;
  EXPECT_NE(Extra.find("\"ph\":\"X\""), std::string::npos) << Extra;
  EXPECT_NE(Extra.find("\"name\":\"background\""), std::string::npos)
      << Extra;
  EXPECT_NE(Extra.find("\"dur\":30"), std::string::npos) << Extra;
  // A fragment, not a document: no surrounding brackets.
  EXPECT_NE(Extra.front(), '[');
  EXPECT_NE(Extra.back(), ']');
}

} // namespace
