#!/bin/sh
#===-- tests/sweep_smoke.sh - End-to-end sweep harness smoke test --------===#
#
# Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
# Scheduling" (PaCT 2009). Distributed without any warranty.
#
# Usage: sweep_smoke.sh <cws-sim> <cws-sweep> <cws-report> <cws-diff>
#
# Pins the sweep harness acceptance properties end to end:
#  1. a 1-scenario 1-seed sweep reproduces the direct single run — the
#     spawned run's journal and telemetry semantically match a direct
#     cws-sim invocation (cws-diff, journal + series modes);
#  2. pooled statistics are identical at any --workers value
#     (cws-diff sweep mode);
#  3. quantile SLO rules gate the exit code: 0 on sane bounds, exactly 1
#     on a forced breach (for cws-report --sweep and cws-sweep alike).
#
#===----------------------------------------------------------------------===#
set -eu

SIM=$1
SWEEP=$2
REPORT=$3
DIFF=$4
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "sweep_smoke: $1" >&2
  exit 1
}

#=== 1. 1x1 sweep == direct run, semantically ============================#
cat > "$TMP/one.grid" <<EOF
axis strategy S1
seeds 1
base_seed 42
jobs 10
EOF
"$SWEEP" --grid "$TMP/one.grid" --workers 2 --out "$TMP/one.csv" \
         --runs-dir "$TMP/onerun" --keep-runs 1 --quiet 1 > /dev/null \
  || fail "1x1 sweep failed"
# The exact invocation the sweep spawns for its single run. Only the
# CLI text (different artifact paths) may differ — cws-diff's default
# meta policy allows exactly that.
"$SIM" --strategy S1 --jobs 10 --scenario strategy=S1 --seed 42 \
       --journal "$TMP/dj.jsonl" --timeseries "$TMP/dt.csv" \
       > /dev/null 2>&1 || fail "direct cws-sim run failed"
"$DIFF" "$TMP/onerun/run-0.journal.jsonl" "$TMP/dj.jsonl" > /dev/null \
  || fail "1x1 sweep journal differs from the direct single-run journal"
"$DIFF" "$TMP/onerun/run-0.ts.csv" "$TMP/dt.csv" > /dev/null \
  || fail "1x1 sweep telemetry differs from the direct single-run series"
# And the rendered reports agree too.
"$REPORT" --journal "$TMP/onerun/run-0.journal.jsonl" \
          --timeseries "$TMP/onerun/run-0.ts.csv" \
          --out "$TMP/sweeprep.md" || fail "report on sweep artifacts failed"
"$REPORT" --journal "$TMP/dj.jsonl" --timeseries "$TMP/dt.csv" \
          --out "$TMP/directrep.md" || fail "report on direct run failed"
diff "$TMP/sweeprep.md" "$TMP/directrep.md" > /dev/null \
  || fail "1x1 sweep report differs from the direct single-run report"

#=== 2. Worker-count independence ========================================#
cat > "$TMP/mini.grid" <<EOF
axis arrival_scale 1.0 2.0
axis strategy S1 S2
seeds 2
base_seed 42
jobs 8
EOF
"$SWEEP" --grid "$TMP/mini.grid" --workers 1 --out "$TMP/w1.csv" \
         --runs-dir "$TMP/r1" --quiet 1 > /dev/null \
  || fail "sweep with 1 worker failed"
"$SWEEP" --grid "$TMP/mini.grid" --workers 4 --out "$TMP/w4.csv" \
         --runs-dir "$TMP/r4" --quiet 1 > /dev/null \
  || fail "sweep with 4 workers failed"
"$DIFF" --mode sweep "$TMP/w1.csv" "$TMP/w4.csv" > /dev/null \
  || fail "pooled statistics depend on the worker count"

#=== 3. Quantile SLO gating ==============================================#
cat > "$TMP/pass.slo" <<EOF
deadline_miss_rate.p90 <= 1.0 across seeds
commit_rate.max >= 0.0
EOF
"$REPORT" --sweep "$TMP/w1.csv" --slo "$TMP/pass.slo" > /dev/null \
  || fail "sane quantile SLO did not pass"

cat > "$TMP/breach.slo" <<EOF
commit_rate.p50 >= 1.5 across seeds
EOF
STATUS=0
"$REPORT" --sweep "$TMP/w1.csv" --slo "$TMP/breach.slo" > /dev/null \
  || STATUS=$?
[ "$STATUS" -eq 1 ] \
  || fail "forced breach exited $STATUS via cws-report, expected 1"
STATUS=0
"$SWEEP" --grid "$TMP/mini.grid" --workers 2 --runs-dir "$TMP/r5" \
         --slo "$TMP/breach.slo" --quiet 1 > /dev/null || STATUS=$?
[ "$STATUS" -eq 1 ] \
  || fail "forced breach exited $STATUS via cws-sweep, expected 1"

echo "sweep smoke ok"
