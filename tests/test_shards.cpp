//===-- tests/test_shards.cpp - Sharded job-flow pipeline tests -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
//
// The sharded job-flow metascheduler: shard-count differentials
// (byte-identical journals and per-job stats at any --shards value,
// both invalidation modes), the owner-id stripe partition, the
// economy's per-shard charge ledgers, and shard-count resolution.
//
//===----------------------------------------------------------------------===//

#include "flow/Economy.h"
#include "flow/Metascheduler.h"
#include "flow/VirtualOrganization.h"
#include "metrics/Export.h"
#include "obs/Journal.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

using namespace cws;

namespace {

class ShardTest : public ::testing::Test {
protected:
  void SetUp() override { obs::Journal::global().reset(); }
  void TearDown() override { obs::Journal::global().reset(); }
};

/// One journaled multi-flow run; returns the journal bytes and the
/// per-flow per-job CSVs (everything downstream consumers see).
struct RunArtifacts {
  std::string Journal;
  std::vector<std::string> FlowCsvs;
};

RunArtifacts shardedVoRun(size_t Shards, uint64_t Seed,
                          InvalidationMode Mode, bool Exec = false) {
  VoConfig Config;
  Config.JobCount = 36;
  // Bursty arrivals so per-tick batches genuinely hold several jobs
  // and the commit pipeline sees multi-job drains.
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 6;
  Config.Invalidation = Mode;
  Config.ExecuteWithDeviations = Exec;
  Config.Shards = Shards;
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  std::vector<VoRunResult> Results =
      runMultiFlowVo(Config, {StrategyKind::S1, StrategyKind::S3}, Seed);
  Jn.disable();
  RunArtifacts Out;
  Out.Journal = Jn.jsonl();
  for (const VoRunResult &R : Results)
    Out.FlowCsvs.push_back(voStatsCsv(R.Jobs));
  Jn.reset();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shard-count differential: byte-identical journals and stats
//===----------------------------------------------------------------------===//

TEST_F(ShardTest, JournalsAndStatsAreByteIdenticalAtAnyShardCount) {
  for (uint64_t Seed : {3u, 7u, 11u}) {
    for (InvalidationMode Mode :
         {InvalidationMode::Scan, InvalidationMode::Index}) {
      RunArtifacts Base = shardedVoRun(1, Seed, Mode);
      ASSERT_FALSE(Base.Journal.empty());
      for (size_t Shards : {size_t(2), size_t(4)}) {
        RunArtifacts Sharded = shardedVoRun(Shards, Seed, Mode);
        EXPECT_EQ(Base.Journal, Sharded.Journal)
            << "seed " << Seed << ", " << Shards << " shards, "
            << (Mode == InvalidationMode::Scan ? "scan" : "index");
        ASSERT_EQ(Base.FlowCsvs.size(), Sharded.FlowCsvs.size());
        for (size_t F = 0; F < Base.FlowCsvs.size(); ++F)
          EXPECT_EQ(Base.FlowCsvs[F], Sharded.FlowCsvs[F])
              << "seed " << Seed << ", " << Shards << " shards, flow "
              << F;
      }
    }
  }
}

TEST_F(ShardTest, ExecutionDeviationsAreShardInvariant) {
  // The per-job execution RNG derives from (flow seed, job id), so
  // actual completions must not depend on which shard ran the job or
  // on commit batching.
  RunArtifacts Base = shardedVoRun(1, /*Seed=*/5, InvalidationMode::Index,
                                   /*Exec=*/true);
  RunArtifacts Sharded = shardedVoRun(3, /*Seed=*/5, InvalidationMode::Index,
                                      /*Exec=*/true);
  EXPECT_EQ(Base.Journal, Sharded.Journal);
  EXPECT_EQ(Base.FlowCsvs, Sharded.FlowCsvs);
}

//===----------------------------------------------------------------------===//
// Owner-id stripes
//===----------------------------------------------------------------------===//

TEST(ShardOwners, StripesAreDisjointAndCoverEveryJob) {
  constexpr size_t Shards = 4;
  std::set<OwnerId> Seen;
  for (unsigned JobId = 0; JobId < 1000; ++JobId) {
    OwnerId Owner = Metascheduler::ownerOf(JobId);
    // Owner ids are pure in the job id: the same at every shard count.
    EXPECT_EQ(Owner, JobOwnerBase + JobId);
    // Exactly one shard owns each id (insertion implies no collision).
    EXPECT_TRUE(Seen.insert(Owner).second);
    size_t S = Metascheduler::shardOfJob(JobId, Shards);
    EXPECT_LT(S, Shards);
    // The stripe rule: shard S owns { JobOwnerBase + S + k * Shards }.
    EXPECT_EQ((Owner - JobOwnerBase) % Shards, S);
    // Owner -> shard agrees with job -> shard.
    EXPECT_EQ(Metascheduler::shardOfOwner(Owner, Shards), S);
  }
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(ShardOwners, SingleShardOwnsEverything) {
  for (unsigned JobId : {0u, 1u, 17u, 999u}) {
    EXPECT_EQ(Metascheduler::shardOfJob(JobId, 1), 0u);
    EXPECT_EQ(Metascheduler::shardOfJob(JobId, 0), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Economy ledgers
//===----------------------------------------------------------------------===//

TEST(ShardEconomy, MergeIsInsensitiveToRecordingOrderAndShardCount) {
  // The same set of charges, recorded in three different shard/order
  // configurations, must leave every account with bit-identical spend.
  struct Charge {
    unsigned User;
    unsigned JobId;
    double Amount;
  };
  // Amounts chosen so float addition order matters if unsorted.
  const std::vector<Charge> Charges = {{0, 4, 0.1},  {0, 1, 1e8},
                                       {0, 9, 0.2},  {1, 2, 3.7},
                                       {0, 6, 1e-7}, {1, 8, 0.3}};
  auto SpentAfter = [&](size_t Shards,
                        const std::vector<size_t> &Order) {
    Economy E;
    E.addUser(1e12);
    E.addUser(1e12);
    E.beginLedgers(Shards);
    for (size_t I : Order) {
      const Charge &C = Charges[I];
      E.setActiveShard(C.JobId % Shards, C.JobId);
      EXPECT_TRUE(E.charge(C.User, C.Amount));
    }
    E.mergeLedgers();
    return std::make_pair(E.spent(0), E.spent(1));
  };
  auto Base = SpentAfter(1, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(Base, SpentAfter(1, {5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(Base, SpentAfter(3, {2, 0, 5, 1, 4, 3}));
  EXPECT_EQ(Base, SpentAfter(4, {3, 5, 0, 4, 2, 1}));
}

TEST(ShardEconomy, CanAffordCountsPendingLedgerDebits) {
  Economy E;
  unsigned User = E.addUser(100.0);
  E.beginLedgers(2);
  E.setActiveShard(0, /*JobId=*/0);
  EXPECT_TRUE(E.charge(User, 60.0));
  // The debit is still pending, not merged...
  EXPECT_DOUBLE_EQ(E.spent(User), 0.0);
  EXPECT_DOUBLE_EQ(E.pendingOf(User), 60.0);
  // ...but affordability must already see it, or a later job of the
  // same drain could overspend the quota.
  EXPECT_FALSE(E.canAfford(User, 50.0));
  EXPECT_TRUE(E.canAfford(User, 40.0));
  E.mergeLedgers();
  EXPECT_DOUBLE_EQ(E.spent(User), 60.0);
  EXPECT_DOUBLE_EQ(E.pendingOf(User), 0.0);
  EXPECT_FALSE(E.canAfford(User, 50.0));
}

//===----------------------------------------------------------------------===//
// Shard-count resolution
//===----------------------------------------------------------------------===//

TEST(ShardResolve, ExplicitValueWinsEnvFillsDefaultCapsApply) {
  ASSERT_EQ(unsetenv("CWS_SHARDS"), 0);
  EXPECT_EQ(resolveShardCount(0), 1u);
  EXPECT_EQ(resolveShardCount(3), 3u);
  EXPECT_EQ(resolveShardCount(200), 64u); // pool lane cap

  ASSERT_EQ(setenv("CWS_SHARDS", "4", 1), 0);
  EXPECT_EQ(resolveShardCount(0), 4u);
  // An explicit configuration beats the environment.
  EXPECT_EQ(resolveShardCount(2), 2u);
  // Garbage and non-positive values fall back to 1.
  ASSERT_EQ(setenv("CWS_SHARDS", "banana", 1), 0);
  EXPECT_EQ(resolveShardCount(0), 1u);
  ASSERT_EQ(setenv("CWS_SHARDS", "0", 1), 0);
  EXPECT_EQ(resolveShardCount(0), 1u);
  ASSERT_EQ(setenv("CWS_SHARDS", "-3", 1), 0);
  EXPECT_EQ(resolveShardCount(0), 1u);
  ASSERT_EQ(unsetenv("CWS_SHARDS"), 0);
}

//===----------------------------------------------------------------------===//
// Config canonical text is shard-invariant
//===----------------------------------------------------------------------===//

TEST(ShardCanonical, ShardCountStaysOutOfTheConfigHash) {
  // Results are shard-invariant by construction (the differential
  // above), so the shard count must not perturb the config hash —
  // cws-diff compares the hash strictly across shard-count runs. The
  // resolved count travels as its own provenance field instead.
  ASSERT_EQ(unsetenv("CWS_SHARDS"), 0);
  VoConfig Config;
  std::string One = voConfigCanonical(Config, StrategyKind::S1);
  EXPECT_EQ(One.find("vo.shards"), std::string::npos);
  Config.Shards = 4;
  std::string Four = voConfigCanonical(Config, StrategyKind::S1);
  EXPECT_EQ(One, Four);
}
