//===-- tests/test_strategy.cpp - Strategy generation tests ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "job/Job.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

Strategy buildFig2(StrategyKind Kind) {
  StrategyConfig Config;
  Config.Kind = Kind;
  return Strategy::build(makeFig2Job(), Grid::makeFig2(), Network{}, Config,
                         42);
}

} // namespace

TEST(Strategy, NamesAndPolicies) {
  EXPECT_STREQ(strategyName(StrategyKind::S1), "S1");
  EXPECT_STREQ(strategyName(StrategyKind::MS1), "MS1");
  EXPECT_EQ(strategyDataPolicy(StrategyKind::S1),
            DataPolicyKind::ActiveReplication);
  EXPECT_EQ(strategyDataPolicy(StrategyKind::S2),
            DataPolicyKind::RemoteAccess);
  EXPECT_EQ(strategyDataPolicy(StrategyKind::S3),
            DataPolicyKind::StaticStorage);
  EXPECT_EQ(strategyDataPolicy(StrategyKind::MS1),
            DataPolicyKind::ActiveReplication);
  EXPECT_TRUE(strategyBestWorstOnly(StrategyKind::MS1));
  EXPECT_FALSE(strategyBestWorstOnly(StrategyKind::S1));
}

TEST(Strategy, Fig2S1IsAdmissibleWithAlternatives) {
  Strategy S = buildFig2(StrategyKind::S1);
  EXPECT_TRUE(S.admissible());
  // The paper's Fig. 2b shows at least three alternative distributions.
  EXPECT_GE(S.feasibleCount(), 2u);
  EXPECT_EQ(S.levels().size(), 4u);
}

TEST(Strategy, VariantsScheduleAllTasks) {
  Strategy S = buildFig2(StrategyKind::S1);
  for (const auto &V : S.variants()) {
    if (!V.feasible())
      continue;
    expectValidDistribution(S.scheduledJob(), V.Result.Dist);
    EXPECT_LE(V.Result.Dist.makespan(), 20);
  }
}

TEST(Strategy, CheapestVariantIsUniqueMinimum) {
  // The Fig. 2b shape: one distribution is strictly cheapest (CF2 = 37
  // versus CF1 = CF3 = 41 in the paper's units).
  Strategy S = buildFig2(StrategyKind::S1);
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);
  for (const auto &V : S.variants()) {
    if (!V.feasible() || &V == Best)
      continue;
    EXPECT_GE(V.Result.Dist.economicCost(),
              Best->Result.Dist.economicCost());
  }
}

TEST(Strategy, BestByTimeMinimizesMakespan) {
  Strategy S = buildFig2(StrategyKind::S1);
  const ScheduleVariant *Fastest = S.bestByTime();
  ASSERT_NE(Fastest, nullptr);
  for (const auto &V : S.variants())
    if (V.feasible())
      EXPECT_GE(V.Result.Dist.makespan(), Fastest->Result.Dist.makespan());
}

TEST(Strategy, Ms1CoversOnlyBestAndWorstLevels) {
  Strategy S = buildFig2(StrategyKind::MS1);
  ASSERT_EQ(S.levels().size(), 4u);
  for (const auto &V : S.variants())
    EXPECT_TRUE(V.Level == 0 || V.Level == 3) << "level " << V.Level;
}

TEST(Strategy, Ms1HasNoMoreVariantsThanS1) {
  Strategy S1 = buildFig2(StrategyKind::S1);
  Strategy MS1 = buildFig2(StrategyKind::MS1);
  EXPECT_LE(MS1.variants().size(), S1.variants().size());
}

TEST(Strategy, S3SchedulesCoarseJob) {
  Strategy S = buildFig2(StrategyKind::S3);
  EXPECT_LT(S.scheduledJob().taskCount(), makeFig2Job().taskCount());
  EXPECT_EQ(S.scheduledJob().totalRefTicks(),
            makeFig2Job().totalRefTicks());
}

TEST(Strategy, FineGrainKindsScheduleOriginalJob) {
  for (StrategyKind Kind :
       {StrategyKind::S1, StrategyKind::S2, StrategyKind::MS1}) {
    Strategy S = buildFig2(Kind);
    EXPECT_EQ(S.scheduledJob().taskCount(), 6u);
  }
}

TEST(Strategy, VariantsAreDeduplicated) {
  Strategy S = buildFig2(StrategyKind::S1);
  for (size_t I = 0; I < S.variants().size(); ++I)
    for (size_t K = I + 1; K < S.variants().size(); ++K) {
      const Distribution &A = S.variants()[I].Result.Dist;
      const Distribution &B = S.variants()[K].Result.Dist;
      if (A.size() != B.size() || A.empty())
        continue;
      bool Same = true;
      for (const auto &P : A.placements()) {
        const Placement *Q = B.find(P.TaskId);
        if (!Q || Q->NodeId != P.NodeId || Q->Start != P.Start ||
            Q->End != P.End)
          Same = false;
      }
      EXPECT_FALSE(Same && S.variants()[I].feasible() ==
                               S.variants()[K].feasible())
          << "variants " << I << " and " << K << " are identical";
    }
}

TEST(Strategy, BestFittingRespectsCurrentLoad) {
  Grid Env = Grid::makeFig2();
  StrategyConfig Config;
  Strategy S = Strategy::build(makeFig2Job(), Env, Network{}, Config, 42);
  const ScheduleVariant *Before = S.bestFitting(Env);
  ASSERT_NE(Before, nullptr);
  // Occupy exactly the cheapest variant's first placement slot.
  const Placement &P = Before->Result.Dist.placements().front();
  ASSERT_TRUE(Env.node(P.NodeId).timeline().reserve(P.Start, P.End, 7));
  const ScheduleVariant *After = S.bestFitting(Env);
  if (After)
    EXPECT_NE(After, Before);
}

TEST(Strategy, BestFittingIgnoresOwnReservations) {
  Grid Env = Grid::makeFig2();
  StrategyConfig Config;
  Strategy S = Strategy::build(makeFig2Job(), Env, Network{}, Config, 42);
  const ScheduleVariant *Best = S.bestFitting(Env);
  ASSERT_NE(Best, nullptr);
  ASSERT_TRUE(Best->Result.Dist.commit(Env, /*Owner=*/77));
  EXPECT_EQ(S.bestFitting(Env, /*Ignore=*/77), Best);
  EXPECT_NE(S.bestFitting(Env), Best);
}

TEST(Strategy, InadmissibleWhenDeadlineImpossible) {
  Job J = makeFig2Job();
  J.setDeadline(4);
  StrategyConfig Config;
  Strategy S = Strategy::build(J, Grid::makeFig2(), Network{}, Config, 42);
  EXPECT_FALSE(S.admissible());
  EXPECT_EQ(S.bestByCost(), nullptr);
  EXPECT_EQ(S.bestByTime(), nullptr);
}

TEST(Strategy, CollectsCollisions) {
  Strategy S = buildFig2(StrategyKind::S1);
  // The Fig. 2 job is known to produce at least one collision (P4/P5
  // competing for a node) across the variant set.
  EXPECT_FALSE(S.allCollisions().empty());
}

TEST(Strategy, BuildLeavesEnvironmentUntouched) {
  Grid Env = Grid::makeFig2();
  StrategyConfig Config;
  Strategy::build(makeFig2Job(), Env, Network{}, Config, 42);
  for (const auto &N : Env.nodes())
    EXPECT_TRUE(N.timeline().intervals().empty());
}

TEST(Strategy, ParallelBuildMatchesSerialExactly) {
  // Variant generation fans out over a worker pool; the merged result
  // must be indistinguishable from the serial build at any lane count.
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;
  for (StrategyKind Kind : {StrategyKind::S1, StrategyKind::S2,
                            StrategyKind::S3, StrategyKind::MS1}) {
    StrategyConfig Serial;
    Serial.Kind = Kind;
    Serial.BuildThreads = 1;
    StrategyConfig Parallel = Serial;
    Parallel.BuildThreads = 4;
    Strategy A = Strategy::build(J, Env, Net, Serial, 42);
    Strategy B = Strategy::build(J, Env, Net, Parallel, 42);
    EXPECT_EQ(A.levels(), B.levels());
    ASSERT_EQ(A.variants().size(), B.variants().size())
        << strategyName(Kind);
    for (size_t I = 0; I < A.variants().size(); ++I) {
      const ScheduleVariant &VA = A.variants()[I];
      const ScheduleVariant &VB = B.variants()[I];
      EXPECT_EQ(VA.Level, VB.Level);
      EXPECT_EQ(VA.Bias, VB.Bias);
      EXPECT_EQ(VA.feasible(), VB.feasible());
      const Distribution &DA = VA.Result.Dist;
      const Distribution &DB = VB.Result.Dist;
      ASSERT_EQ(DA.size(), DB.size());
      for (const Placement &P : DA.placements()) {
        const Placement *Q = DB.find(P.TaskId);
        ASSERT_NE(Q, nullptr);
        EXPECT_EQ(Q->NodeId, P.NodeId);
        EXPECT_EQ(Q->Start, P.Start);
        EXPECT_EQ(Q->End, P.End);
        EXPECT_DOUBLE_EQ(Q->EconomicCost, P.EconomicCost);
      }
    }
  }
}

TEST(Strategy, JobIdAndKindAreRecorded) {
  Job J = makeFig2Job();
  J.setId(123);
  StrategyConfig Config;
  Config.Kind = StrategyKind::S2;
  Strategy S = Strategy::build(J, Grid::makeFig2(), Network{}, Config, 42, 9);
  EXPECT_EQ(S.jobId(), 123u);
  EXPECT_EQ(S.kind(), StrategyKind::S2);
  EXPECT_EQ(S.builtAt(), 9);
}
