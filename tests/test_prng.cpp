//===-- tests/test_prng.cpp - Prng unit tests -----------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace cws;

TEST(Prng, SameSeedSameSequence) {
  Prng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 4);
}

TEST(Prng, UniformIntStaysInRange) {
  Prng Rng(7);
  for (int I = 0; I < 2000; ++I) {
    int64_t V = Rng.uniformInt(-5, 17);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 17);
  }
}

TEST(Prng, UniformIntDegenerateRange) {
  Prng Rng(7);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Rng.uniformInt(9, 9), 9);
}

TEST(Prng, UniformIntCoversAllValues) {
  Prng Rng(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.uniformInt(0, 7));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Prng, UniformRealStaysInRange) {
  Prng Rng(3);
  for (int I = 0; I < 2000; ++I) {
    double V = Rng.uniformReal(0.25, 0.75);
    EXPECT_GE(V, 0.25);
    EXPECT_LT(V, 0.75);
  }
}

TEST(Prng, UniformRealMeanIsCentered) {
  Prng Rng(5);
  double Sum = 0.0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.uniformReal(0.0, 1.0);
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(Prng, BernoulliExtremes) {
  Prng Rng(9);
  for (int I = 0; I < 32; ++I) {
    EXPECT_FALSE(Rng.bernoulli(0.0));
    EXPECT_TRUE(Rng.bernoulli(1.0));
  }
}

TEST(Prng, BernoulliRate) {
  Prng Rng(13);
  int Hits = 0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    if (Rng.bernoulli(0.3))
      ++Hits;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.02);
}

TEST(Prng, IndexInBounds) {
  Prng Rng(17);
  for (int I = 0; I < 500; ++I)
    EXPECT_LT(Rng.index(13), 13u);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng Rng(19);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  Rng.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Prng, ShuffleChangesOrderEventually) {
  Prng Rng(23);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  bool Changed = false;
  for (int I = 0; I < 8 && !Changed; ++I) {
    Rng.shuffle(V);
    Changed = V != Orig;
  }
  EXPECT_TRUE(Changed);
}

TEST(Prng, ForkedStreamsDiffer) {
  Prng Root(31);
  Prng A = Root.fork();
  Prng B = Root.fork();
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 4);
}

/// Range property over many seeds.
class PrngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrngSeedSweep, UniformIntRespectsBoundsAndIsDeterministic) {
  Prng A(GetParam()), B(GetParam());
  for (int I = 0; I < 300; ++I) {
    int64_t Lo = -100 + static_cast<int64_t>(I % 7) * 3;
    int64_t Hi = Lo + (I % 23);
    int64_t V = A.uniformInt(Lo, Hi);
    EXPECT_GE(V, Lo);
    EXPECT_LE(V, Hi);
    EXPECT_EQ(V, B.uniformInt(Lo, Hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrngSeedSweep,
                         ::testing::Values(0u, 1u, 2u, 42u, 1337u, 99991u,
                                           0xffffffffffffffffULL));
