//===-- tests/test_distribution.cpp - Distribution and cost tests ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/Distribution.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(CostModel, CfTermIsCeil) {
  // "rounded to nearest not-smaller integer"
  EXPECT_EQ(CostModel::cfTerm(20.0, 2), 10);
  EXPECT_EQ(CostModel::cfTerm(10.0, 3), 4);
  EXPECT_EQ(CostModel::cfTerm(10.0, 4), 3);
  EXPECT_EQ(CostModel::cfTerm(9.0, 3), 3);
  EXPECT_EQ(CostModel::cfTerm(0.0, 5), 0);
}

TEST(CostModel, NodeCostScalesWithPriceAndTicks) {
  Grid G = Grid::makeFig2();
  CostModel Cost(G);
  EXPECT_DOUBLE_EQ(Cost.nodeCost(0, 2), G.node(0).pricePerTick() * 2.0);
  EXPECT_DOUBLE_EQ(Cost.nodeCost(3, 0), 0.0);
}

TEST(CostModel, TransferCost) {
  Grid G = Grid::makeFig2();
  CostConfig Config;
  Config.TransferCostPerTick = 4.0;
  CostModel Cost(G, Config);
  EXPECT_DOUBLE_EQ(Cost.transferCost(3), 12.0);
  EXPECT_DOUBLE_EQ(Cost.transferCost(0), 0.0);
}

TEST(Distribution, AddAndFind) {
  Distribution D;
  D.add({0, 1, 0, 4, 10.0});
  D.add({1, 2, 5, 9, 20.0});
  ASSERT_NE(D.find(0), nullptr);
  EXPECT_EQ(D.find(0)->NodeId, 1u);
  EXPECT_EQ(D.find(2), nullptr);
  EXPECT_EQ(D.size(), 2u);
}

TEST(Distribution, RemoveReturnsPlacement) {
  Distribution D;
  D.add({0, 1, 0, 4, 10.0});
  auto P = D.remove(0);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->NodeId, 1u);
  EXPECT_TRUE(D.empty());
  EXPECT_FALSE(D.remove(0).has_value());
}

TEST(Distribution, CoversNeedsEveryTask) {
  Job J = makeChainJob();
  Distribution D;
  D.add({0, 0, 0, 2, 1.0});
  D.add({1, 0, 3, 6, 1.0});
  EXPECT_FALSE(D.covers(J));
  D.add({2, 0, 7, 9, 1.0});
  EXPECT_TRUE(D.covers(J));
}

TEST(Distribution, MakespanAndStart) {
  Distribution D;
  EXPECT_EQ(D.makespan(), 0);
  EXPECT_EQ(D.startTime(), 0);
  D.add({0, 0, 5, 9, 1.0});
  D.add({1, 1, 2, 4, 1.0});
  EXPECT_EQ(D.makespan(), 9);
  EXPECT_EQ(D.startTime(), 2);
}

TEST(Distribution, EconomicCostSums) {
  Distribution D;
  D.add({0, 0, 0, 1, 10.5});
  D.add({1, 0, 2, 3, 4.5});
  EXPECT_DOUBLE_EQ(D.economicCost(), 15.0);
}

TEST(Distribution, CostFunctionUsesLoadTicks) {
  Job J = makeChainJob(); // Volumes 20, 30, 20.
  Distribution D;
  D.add({0, 0, 0, 2, 0.0});  // ceil(20/2) = 10
  D.add({1, 0, 3, 9, 0.0});  // ceil(30/6) = 5
  D.add({2, 0, 10, 18, 0.0}); // ceil(20/8) = 3
  EXPECT_EQ(D.costFunction(J), 18);
}

TEST(Distribution, FitsGridChecksEveryPlacement) {
  Grid G = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  D.add({1, 1, 0, 5, 0.0});
  EXPECT_TRUE(D.fitsGrid(G));
  G.node(1).timeline().reserve(3, 4, 9);
  EXPECT_FALSE(D.fitsGrid(G));
  EXPECT_TRUE(D.fitsGrid(G, /*Ignore=*/9));
}

TEST(Distribution, CommitReservesUnderOwner) {
  Grid G = makeSmallGrid();
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  D.add({1, 1, 2, 7, 0.0});
  EXPECT_TRUE(D.commit(G, 42));
  EXPECT_FALSE(G.node(0).timeline().isFree(0, 5));
  EXPECT_EQ(G.node(1).timeline().firstOverlap(2, 7)->Owner, 42u);
}

TEST(Distribution, CommitRollsBackOnConflict) {
  Grid G = makeSmallGrid();
  G.node(1).timeline().reserve(2, 7, 7);
  Distribution D;
  D.add({0, 0, 0, 5, 0.0});
  D.add({1, 1, 2, 7, 0.0});
  EXPECT_FALSE(D.commit(G, 42));
  // The first reservation must have been rolled back.
  EXPECT_TRUE(G.node(0).timeline().isFree(0, 5));
}
