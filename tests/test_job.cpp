//===-- tests/test_job.cpp - Compound job unit tests ----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Job.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cws;

TEST(Job, AddTaskAssignsDenseIds) {
  Job J;
  EXPECT_EQ(J.addTask("a", 1, 10), 0u);
  EXPECT_EQ(J.addTask("b", 2, 20), 1u);
  EXPECT_EQ(J.taskCount(), 2u);
  EXPECT_EQ(J.task(1).Name, "b");
  EXPECT_EQ(J.task(1).RefTicks, 2);
  EXPECT_DOUBLE_EQ(J.task(1).Volume, 20.0);
}

TEST(Job, EdgesBuildAdjacency) {
  Job J = makeDiamondJob();
  EXPECT_EQ(J.edgeCount(), 4u);
  EXPECT_EQ(J.outEdges(0).size(), 2u);
  EXPECT_EQ(J.inEdges(3).size(), 2u);
  EXPECT_EQ(J.inEdges(0).size(), 0u);
  EXPECT_EQ(J.outEdges(3).size(), 0u);
}

TEST(Job, SourcesAndSinks) {
  Job J = makeDiamondJob();
  EXPECT_EQ(J.sources(), (std::vector<unsigned>{0}));
  EXPECT_EQ(J.sinks(), (std::vector<unsigned>{3}));
}

TEST(Job, TopoOrderRespectsEdges) {
  Job J = makeDiamondJob();
  std::vector<unsigned> Order = J.topoOrder();
  ASSERT_EQ(Order.size(), 4u);
  auto PosOf = [&](unsigned T) {
    return std::find(Order.begin(), Order.end(), T) - Order.begin();
  };
  for (const auto &E : J.edges())
    EXPECT_LT(PosOf(E.Src), PosOf(E.Dst));
}

TEST(Job, CycleIsDetected) {
  Job J;
  unsigned A = J.addTask("a", 1, 10);
  unsigned B = J.addTask("b", 1, 10);
  J.addEdge(A, B, 1);
  J.addEdge(B, A, 1);
  EXPECT_FALSE(J.isAcyclic());
  EXPECT_TRUE(J.topoOrder().empty());
}

TEST(Job, EmptyJobIsAcyclic) {
  Job J;
  EXPECT_TRUE(J.isAcyclic());
  EXPECT_EQ(J.criticalPathRefTicks(), 0);
}

TEST(Job, CriticalPathCountsTransfers) {
  Job J = makeChainJob();
  // 2 + 1 + 3 + 1 + 2 = 9.
  EXPECT_EQ(J.criticalPathRefTicks(), 9);
}

TEST(Job, CriticalPathPicksLongestBranch) {
  Job J = makeDiamondJob();
  // A(2) +1+ B(3) +1+ D(2) = 9 via B; via C it is 7.
  EXPECT_EQ(J.criticalPathRefTicks(), 9);
}

TEST(Job, TotalRefTicks) {
  Job J = makeDiamondJob();
  EXPECT_EQ(J.totalRefTicks(), 8);
}

TEST(Job, ReleaseAndDeadline) {
  Job J;
  J.addTask("a", 1, 1);
  J.setRelease(5);
  J.setDeadline(50);
  EXPECT_EQ(J.release(), 5);
  EXPECT_EQ(J.deadline(), 50);
}

TEST(Fig2Job, MatchesPaperStructure) {
  Job J = makeFig2Job();
  EXPECT_EQ(J.taskCount(), 6u);
  EXPECT_EQ(J.edgeCount(), 8u); // D1 .. D8
  EXPECT_EQ(J.deadline(), 20);
  EXPECT_EQ(J.sources(), (std::vector<unsigned>{0}));  // P1
  EXPECT_EQ(J.sinks(), (std::vector<unsigned>{5}));    // P6
  EXPECT_TRUE(J.isAcyclic());
}

TEST(Fig2Job, VolumesAndRefTimesMatchTable) {
  Job J = makeFig2Job();
  const Tick Refs[] = {2, 3, 1, 2, 1, 2};
  const double Vols[] = {20, 30, 10, 20, 10, 20};
  for (unsigned I = 0; I < 6; ++I) {
    EXPECT_EQ(J.task(I).RefTicks, Refs[I]) << "P" << I + 1;
    EXPECT_DOUBLE_EQ(J.task(I).Volume, Vols[I]) << "P" << I + 1;
  }
}

TEST(Fig2Job, CriticalPathIsTwelve) {
  // The longest critical work of Section 3 is 12 units including data
  // transfer times.
  EXPECT_EQ(makeFig2Job().criticalPathRefTicks(), 12);
}
