//===-- tests/test_realloc_repair.cpp - Staged reallocation repair --------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the escalating staged repair behind reallocation: the
/// stage-1 single-slot shift and stage-2 DP re-run in isolation, the
/// build-then-swap guarantee of a failed reallocation, journal shape
/// (every reallocation records its resolution stage), determinism of
/// both reallocation modes across the parallelism and invalidation
/// knobs, and the by-rebuild repair oracle.
///
//===----------------------------------------------------------------------===//

#include "core/Repair.h"
#include "flow/Metascheduler.h"
#include "flow/VirtualOrganization.h"
#include "obs/Journal.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cws;

namespace {

class ReallocRepairTest : public ::testing::Test {
protected:
  void SetUp() override { obs::Journal::global().reset(); }
  void TearDown() override { obs::Journal::global().reset(); }
};

struct MetaFixture {
  Grid Env = Grid::makeFig2();
  Network Net;
  Economy Econ;
  unsigned User;
  StrategyConfig Config;
  Metascheduler Meta{Env, Net, Econ, Config};

  MetaFixture() { User = Econ.addUser(1e9); }
};

/// An owner id foreign to both the strategy under repair and the
/// figure's background load.
constexpr OwnerId Intruder = 7777;

/// The placement of \p V starting last — breaking it leaves the widest
/// forward window for the stage-1 shift.
const Placement &latestPlacement(const ScheduleVariant &V) {
  const auto &Ps = V.Result.Dist.placements();
  return *std::max_element(Ps.begin(), Ps.end(),
                           [](const Placement &A, const Placement &B) {
                             return A.Start < B.Start;
                           });
}

/// One journaled single-flow run; returns the raw journal bytes.
std::string voJournal(ReallocationMode Realloc, InvalidationMode Inval,
                      size_t Shards, size_t BuildThreads, uint64_t Seed) {
  VoConfig Config;
  Config.JobCount = 36;
  // Bursty arrivals: overlapping active jobs make reallocations (and
  // with them the repair stages) actually fire.
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 6;
  Config.Reallocation = Realloc;
  Config.Invalidation = Inval;
  Config.Shards = Shards;
  Config.Strategy.BuildThreads = BuildThreads;
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(Config, StrategyKind::S1, Seed);
  Jn.disable();
  std::string Out = Jn.jsonl();
  Jn.reset();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Stage 1: single-slot shift
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, ShiftRepairsOneBrokenReservation) {
  // The chain job carries deadline slack (unlike the tight Fig. 2
  // schedule), so a forward shift of the sink has room to land.
  Grid Env = makeSmallGrid();
  Network Net;
  StrategyConfig Config;
  Job J = makeChainJob(400);
  Strategy S = Strategy::build(J, Env, Net, Config, /*Owner=*/42);
  ASSERT_TRUE(S.admissible());
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);

  // Break exactly one reservation: a foreign reservation lands on the
  // latest-starting placement (the plan held this window free, so the
  // reserve cannot collide).
  const Placement Hit = latestPlacement(*Best);
  Env.node(Hit.NodeId).timeline().reserve(Hit.Start, Hit.End, Intruder);

  RepairInputs In{Env, Net, Config, /*Owner=*/42, /*Now=*/0};
  std::optional<VariantRepair> R = repairVariantByShift(J, *Best, In);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Stage, RepairStage::Shift);
  EXPECT_GT(R->ShiftDelta, 0);
  EXPECT_EQ(R->PlacementsPinned, Best->Result.Dist.placements().size() - 1);

  const Distribution &Fixed = R->Repaired.Result.Dist;
  expectValidDistribution(J, Fixed);
  EXPECT_LE(Fixed.makespan(), J.deadline());
  EXPECT_TRUE(Fixed.fitsGrid(Env, 42));

  // Exactly the hit placement moved — forward, on its node — and the
  // economic cost is invariant (it depends on node and duration only).
  size_t Moved = 0;
  for (const Placement &P : Best->Result.Dist.placements()) {
    const Placement *Q = Fixed.find(P.TaskId);
    ASSERT_NE(Q, nullptr);
    EXPECT_EQ(Q->NodeId, P.NodeId);
    EXPECT_EQ(Q->End - Q->Start, P.End - P.Start);
    if (Q->Start != P.Start) {
      ++Moved;
      EXPECT_EQ(P.TaskId, Hit.TaskId);
      EXPECT_GT(Q->Start, P.Start);
    }
  }
  EXPECT_EQ(Moved, 1u);
  EXPECT_DOUBLE_EQ(Fixed.economicCost(), Best->Result.Dist.economicCost());
}

TEST_F(ReallocRepairTest, ShiftDeclinesWithSeveralBrokenReservations) {
  Grid Env = Grid::makeFig2();
  Network Net;
  StrategyConfig Config;
  Job J = makeFig2Job();
  Strategy S = Strategy::build(J, Env, Net, Config, /*Owner=*/42);
  ASSERT_TRUE(S.admissible());
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);
  ASSERT_GE(Best->Result.Dist.placements().size(), 2u);
  for (const Placement &P : Best->Result.Dist.placements())
    Env.node(P.NodeId).timeline().reserve(P.Start, P.End, Intruder);
  RepairInputs In{Env, Net, Config, /*Owner=*/42, /*Now=*/0};
  EXPECT_FALSE(repairVariantByShift(J, *Best, In).has_value());
}

//===----------------------------------------------------------------------===//
// Stage 2: DP re-run of the broken critical works
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, DpRerunsTheBrokenWorkAndPinsSurvivors) {
  Grid Env = Grid::makeFig2();
  Network Net;
  StrategyConfig Config;
  Job J = makeFig2Job();
  Strategy S = Strategy::build(J, Env, Net, Config, /*Owner=*/42);
  ASSERT_TRUE(S.admissible());
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);
  const std::vector<CriticalWork> &Phases = Best->Result.Phases;
  ASSERT_GT(Phases.size(), 1u);

  // Break every placement of the last critical work: several broken
  // slots (stage 1 declines), one broken phase, no pinned successors
  // to squeeze the re-run.
  const CriticalWork &Last = Phases.back();
  for (unsigned T : Last.TaskIds) {
    const Placement *P = Best->Result.Dist.find(T);
    ASSERT_NE(P, nullptr);
    Env.node(P->NodeId).timeline().reserve(P->Start, P->End, Intruder);
  }

  RepairInputs In{Env, Net, Config, /*Owner=*/42, /*Now=*/0};
  ASSERT_FALSE(repairVariantByShift(J, *Best, In).has_value());
  std::optional<VariantRepair> R = repairVariantByDp(J, *Best, In);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Stage, RepairStage::Dp);
  EXPECT_GE(R->WorksRerun, 1u);
  EXPECT_GT(R->PlacementsPinned, 0u);

  const Distribution &Fixed = R->Repaired.Result.Dist;
  expectValidDistribution(J, Fixed);
  EXPECT_LE(Fixed.makespan(), J.deadline());
  EXPECT_TRUE(Fixed.fitsGrid(Env, 42));

  // Survivors are pinned byte-for-byte; only the broken work moved.
  for (const Placement &P : Best->Result.Dist.placements()) {
    if (std::find(Last.TaskIds.begin(), Last.TaskIds.end(), P.TaskId) !=
        Last.TaskIds.end())
      continue;
    const Placement *Q = Fixed.find(P.TaskId);
    ASSERT_NE(Q, nullptr);
    EXPECT_EQ(Q->NodeId, P.NodeId);
    EXPECT_EQ(Q->Start, P.Start);
    EXPECT_EQ(Q->End, P.End);
  }
}

//===----------------------------------------------------------------------===//
// Build-then-swap: a failed reallocation keeps the old reservations
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, FailedReallocationKeepsOldReservations) {
  MetaFixture F;
  Job J = makeFig2Job();
  Strategy S = F.Meta.buildStrategy(J, 0);
  ASSERT_TRUE(F.Meta.commit(J, *S.bestByCost(), F.User));
  size_t Before = 0;
  for (const auto &N : F.Env.nodes())
    for (const auto &I : N.timeline().intervals())
      Before += I.Owner == Metascheduler::ownerOf(J.id());
  ASSERT_GT(Before, 0u);

  // One tick before the deadline nothing fits: the repair stages have
  // nothing broken to fix and the rebuild comes back inadmissible.
  ReallocationResult R = F.Meta.reallocate(J, S, F.User, J.deadline() - 1);
  EXPECT_FALSE(R.admissible());
  EXPECT_EQ(R.Stage, RepairStage::Failed);

  // Build-then-swap: every old reservation survived the failure.
  size_t After = 0;
  for (const auto &N : F.Env.nodes())
    for (const auto &I : N.timeline().intervals())
      After += I.Owner == Metascheduler::ownerOf(J.id());
  EXPECT_EQ(After, Before);
}

//===----------------------------------------------------------------------===//
// Journal shape: every reallocation records its resolution
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, RepairJournalRecordsAStagePerReallocation) {
  obs::ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(obs::parseJournalJsonl(
      voJournal(ReallocationMode::Repair, InvalidationMode::Index, 1, 1, 7),
      J, Error))
      << Error;
  size_t Reallocates = 0, Stages = 0;
  for (const obs::ParsedJournalEvent &E : J.Events) {
    if (E.Kind == "reallocate") {
      ++Reallocates;
      // The same job must resolve through a repair.stage event at the
      // same tick — success or failure, the stage is on record.
      bool Resolved = false;
      for (const obs::ParsedJournalEvent &R : J.Events)
        if (R.Kind == "repair.stage" && R.JobId == E.JobId && R.At == E.At)
          Resolved = true;
      EXPECT_TRUE(Resolved) << "job " << E.JobId << " reallocation at t="
                            << E.At << " records no repair stage";
    } else if (E.Kind == "repair.stage") {
      ++Stages;
      const int64_t *Stage = E.arg("stage");
      ASSERT_NE(Stage, nullptr);
      EXPECT_GE(*Stage, 1);
      EXPECT_LE(*Stage, 3);
    }
  }
  ASSERT_GT(Reallocates, 0u);
  ASSERT_GT(Stages, 0u);
}

TEST_F(ReallocRepairTest, RebuildJournalHasNoRepairEvents) {
  std::string Journal =
      voJournal(ReallocationMode::Rebuild, InvalidationMode::Index, 1, 1, 7);
  obs::ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(obs::parseJournalJsonl(Journal, J, Error)) << Error;
  size_t Reallocates = 0;
  for (const obs::ParsedJournalEvent &E : J.Events) {
    Reallocates += E.Kind == "reallocate";
    EXPECT_NE(E.Kind, "repair.stage");
    EXPECT_NE(E.Kind, "repair.attempt");
  }
  ASSERT_GT(Reallocates, 0u);
}

//===----------------------------------------------------------------------===//
// Determinism: both modes are invariant across the parallelism knobs
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, JournalsAreParallelismInvariantPerMode) {
  for (ReallocationMode Mode :
       {ReallocationMode::Repair, ReallocationMode::Rebuild}) {
    for (uint64_t Seed : {3u, 11u}) {
      std::string Base =
          voJournal(Mode, InvalidationMode::Index, 1, 1, Seed);
      ASSERT_FALSE(Base.empty());
      // The invalidation oracle, worker shards and build threads may
      // change who computes what — never what happens.
      EXPECT_EQ(Base, voJournal(Mode, InvalidationMode::Scan, 1, 1, Seed))
          << "scan vs index, seed " << Seed;
      EXPECT_EQ(Base, voJournal(Mode, InvalidationMode::Index, 4, 1, Seed))
          << "4 shards, seed " << Seed;
      EXPECT_EQ(Base, voJournal(Mode, InvalidationMode::Scan, 4, 4, Seed))
          << "scan, 4 shards, 4 build threads, seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// The by-rebuild repair oracle
//===----------------------------------------------------------------------===//

TEST_F(ReallocRepairTest, OracleFindsEveryRepairFeasibleAndAffordable) {
  VoConfig Config;
  Config.JobCount = 60;
  Config.Workload.DeadlineSlack = 2.0;
  Config.RepairOracle = true;
  VoRunResult R = runVirtualOrganization(Config, StrategyKind::S1, /*Seed=*/7);
  const RepairOracleStats &O = R.RepairOracle;
  ASSERT_GT(O.Checked, 0u);
  EXPECT_EQ(O.Feasible, O.Checked);
  EXPECT_EQ(O.Affordable, O.Checked);
  // Aggregate dominance: pinning stale placements can price single
  // repairs above a fresh rebuild, but across the run repair must not
  // cost more than the rebuilds the oracle derived.
  EXPECT_LE(O.RepairCost, O.RebuildCost + 1e-9);
}

TEST_F(ReallocRepairTest, OracleIsSideEffectFree) {
  // Same run with and without the oracle: identical journals (the
  // oracle's reference rebuilds are swallowed by a capture buffer).
  auto Run = [](bool Oracle) {
    VoConfig Config;
    Config.JobCount = 36;
    Config.InterarrivalLo = 0;
    Config.InterarrivalHi = 6;
    Config.RepairOracle = Oracle;
    obs::Journal &Jn = obs::Journal::global();
    Jn.reset();
    Jn.enable();
    runVirtualOrganization(Config, StrategyKind::S1, /*Seed=*/7);
    Jn.disable();
    std::string Out = Jn.jsonl();
    Jn.reset();
    return Out;
  };
  EXPECT_EQ(Run(false), Run(true));
}
