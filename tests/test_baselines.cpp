//===-- tests/test_baselines.cpp - Baseline scheduler tests ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "baseline/Heft.h"
#include "baseline/Heuristics.h"
#include "job/Generator.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

namespace {

/// Two tasks, two nodes; task 0 is fast on node 0, task 1 on node 1.
const std::vector<std::vector<Tick>> SmallEtc{{2, 10}, {10, 2}};

} // namespace

TEST(Heuristics, MetPicksFastestNodeRegardlessOfLoad) {
  MappingResult R = mapIndependentTasks(SmallEtc, {0, 0},
                                        MappingHeuristic::MET);
  EXPECT_EQ(R.NodeOf[0], 0u);
  EXPECT_EQ(R.NodeOf[1], 1u);
  EXPECT_EQ(R.Makespan, 2);
}

TEST(Heuristics, MetIgnoresLoadEvenWhenBad) {
  // Both tasks are fastest on node 0: MET piles them up.
  std::vector<std::vector<Tick>> Etc{{2, 3}, {2, 3}};
  MappingResult R = mapIndependentTasks(Etc, {0, 0}, MappingHeuristic::MET);
  EXPECT_EQ(R.NodeOf[0], 0u);
  EXPECT_EQ(R.NodeOf[1], 0u);
  EXPECT_EQ(R.Makespan, 4);
}

TEST(Heuristics, MctBalancesLoad) {
  std::vector<std::vector<Tick>> Etc{{2, 3}, {2, 3}};
  MappingResult R = mapIndependentTasks(Etc, {0, 0}, MappingHeuristic::MCT);
  EXPECT_EQ(R.NodeOf[0], 0u);
  EXPECT_EQ(R.NodeOf[1], 1u); // Completion 3 beats queued 4.
  EXPECT_EQ(R.Makespan, 3);
}

TEST(Heuristics, OlbUsesEarliestReadyNode) {
  MappingResult R = mapIndependentTasks(SmallEtc, {5, 0},
                                        MappingHeuristic::OLB);
  EXPECT_EQ(R.NodeOf[0], 1u); // Ready at 0 beats ready at 5.
}

TEST(Heuristics, ReadyTimesOffsetStarts) {
  MappingResult R = mapIndependentTasks({{4, 4}}, {10, 20},
                                        MappingHeuristic::MCT);
  EXPECT_EQ(R.NodeOf[0], 0u);
  EXPECT_EQ(R.Start[0], 10);
  EXPECT_EQ(R.Finish[0], 14);
}

TEST(Heuristics, MinMinSchedulesShortTasksFirst) {
  // Min-min should keep the makespan low on this classic pattern.
  std::vector<std::vector<Tick>> Etc{{1, 2}, {1, 2}, {8, 12}};
  MappingResult R = mapIndependentTasks(Etc, {0, 0},
                                        MappingHeuristic::MinMin);
  EXPECT_LE(R.Makespan, 10);
}

TEST(Heuristics, MaxMinSchedulesLongTasksFirst) {
  std::vector<std::vector<Tick>> Etc{{1, 2}, {1, 2}, {8, 12}};
  MappingResult R = mapIndependentTasks(Etc, {0, 0},
                                        MappingHeuristic::MaxMin);
  // The big task is assigned in round one, to its best node 0.
  EXPECT_EQ(R.NodeOf[2], 0u);
  EXPECT_EQ(R.Start[2], 0);
}

TEST(Heuristics, SufferagePrioritizesHighPenaltyTasks) {
  // Task 0 suffers greatly if it loses node 0; task 1 barely cares.
  std::vector<std::vector<Tick>> Etc{{2, 20}, {2, 3}};
  MappingResult R = mapIndependentTasks(Etc, {0, 0},
                                        MappingHeuristic::Sufferage);
  EXPECT_EQ(R.NodeOf[0], 0u);
  EXPECT_EQ(R.Start[0], 0);
  EXPECT_EQ(R.NodeOf[1], 1u);
}

TEST(Heuristics, AllHeuristicsProduceValidSchedules) {
  Prng Rng(31);
  for (int Round = 0; Round < 10; ++Round) {
    size_t Tasks = 1 + Rng.index(12);
    size_t Nodes = 1 + Rng.index(6);
    std::vector<std::vector<Tick>> Etc(Tasks, std::vector<Tick>(Nodes));
    for (auto &Row : Etc)
      for (auto &V : Row)
        V = Rng.uniformInt(1, 20);
    for (MappingHeuristic H : AllMappingHeuristics) {
      MappingResult R = mapIndependentTasks(
          Etc, std::vector<Tick>(Nodes, 0), H);
      ASSERT_EQ(R.NodeOf.size(), Tasks);
      // Per-node, executions must not overlap.
      for (size_t A = 0; A < Tasks; ++A) {
        EXPECT_EQ(R.Finish[A], R.Start[A] + Etc[A][R.NodeOf[A]]);
        EXPECT_LE(R.Finish[A], R.Makespan);
        for (size_t B = A + 1; B < Tasks; ++B) {
          if (R.NodeOf[A] != R.NodeOf[B])
            continue;
          EXPECT_TRUE(R.Finish[A] <= R.Start[B] ||
                      R.Finish[B] <= R.Start[A]);
        }
      }
    }
  }
}

TEST(Heuristics, Names) {
  EXPECT_STREQ(mappingHeuristicName(MappingHeuristic::OLB), "olb");
  EXPECT_STREQ(mappingHeuristicName(MappingHeuristic::MinMin), "min-min");
  EXPECT_STREQ(mappingHeuristicName(MappingHeuristic::Sufferage),
               "sufferage");
}

TEST(Heft, SchedulesFig2JobValidly) {
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  HeftResult R = scheduleHeft(J, G, Net);
  expectValidDistribution(J, R.Dist);
  EXPECT_EQ(R.Makespan, R.Dist.makespan());
  EXPECT_TRUE(R.MeetsDeadline);
}

TEST(Heft, MakespanIsNearCriticalPath) {
  // HEFT minimizes finish time: on an empty Fig. 2 grid it should be
  // close to the reference critical path (12 on the fastest nodes).
  Job J = makeFig2Job();
  Grid G = Grid::makeFig2();
  Network Net;
  HeftResult R = scheduleHeft(J, G, Net);
  EXPECT_LE(R.Makespan, 14);
}

TEST(Heft, RespectsExistingReservations) {
  Job J = makeChainJob(1000);
  Grid G = makeSmallGrid();
  for (auto &N : G.nodes())
    if (N.id() != 2)
      N.timeline().reserve(0, 500, 9);
  Network Net;
  HeftResult R = scheduleHeft(J, G, Net);
  for (const auto &P : R.Dist.placements())
    if (P.Start < 500) {
      EXPECT_EQ(P.NodeId, 2u);
    }
}

TEST(Heft, EmptyJob) {
  Job J;
  Grid G = makeSmallGrid();
  Network Net;
  HeftResult R = scheduleHeft(J, G, Net);
  EXPECT_TRUE(R.MeetsDeadline);
  EXPECT_EQ(R.Makespan, 0);
}

TEST(Heft, HandlesRandomJobs) {
  JobGenerator Gen(WorkloadConfig{}, 17);
  Prng Rng(18);
  Network Net;
  for (int I = 0; I < 15; ++I) {
    Job J = Gen.next(0);
    Grid G = Grid::makeRandom(GridConfig{}, Rng);
    HeftResult R = scheduleHeft(J, G, Net);
    expectValidDistribution(J, R.Dist);
  }
}
