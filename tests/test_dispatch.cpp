//===-- tests/test_dispatch.cpp - Domains, forecasting, dispatch ----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/Dispatch.h"
#include "flow/Metascheduler.h"
#include "job/Generator.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace cws;

namespace {

Grid makeTieredGrid() {
  Grid G;
  G.addNode(1.0);
  G.addNode(0.9);
  G.addNode(0.5);
  G.addNode(0.45);
  G.addNode(0.33);
  G.addNode(0.33);
  return G;
}

} // namespace

TEST(Domain, PartitionByGroupCoversGrid) {
  Grid Env = makeTieredGrid();
  std::vector<Domain> Domains = partitionByGroup(Env);
  ASSERT_EQ(Domains.size(), 3u);
  EXPECT_EQ(Domains[0].Name, "fast");
  std::set<unsigned> Seen;
  size_t Total = 0;
  for (const auto &D : Domains) {
    Total += D.NodeIds.size();
    Seen.insert(D.NodeIds.begin(), D.NodeIds.end());
  }
  EXPECT_EQ(Total, Env.size());
  EXPECT_EQ(Seen.size(), Env.size());
}

TEST(Domain, PartitionStripedBalancesTiers) {
  Grid Env = makeTieredGrid();
  std::vector<Domain> Domains = partitionStriped(Env, 2);
  ASSERT_EQ(Domains.size(), 2u);
  EXPECT_EQ(Domains[0].NodeIds.size(), 3u);
  EXPECT_EQ(Domains[1].NodeIds.size(), 3u);
  // Each stripe gets one node of the fastest pair.
  bool Stripe0HasFast = Domains[0].contains(0) || Domains[0].contains(1);
  bool Stripe1HasFast = Domains[1].contains(0) || Domains[1].contains(1);
  EXPECT_TRUE(Stripe0HasFast);
  EXPECT_TRUE(Stripe1HasFast);
}

TEST(Domain, PartitionStripedCapsAtGridSize) {
  Grid Env = makeSmallGrid();
  EXPECT_EQ(partitionStriped(Env, 100).size(), Env.size());
}

TEST(Domain, BookedLoad) {
  Grid Env = makeTieredGrid();
  Domain D{"d", {0, 1}};
  Env.node(0).timeline().reserve(0, 50, 1);
  EXPECT_DOUBLE_EQ(domainBookedLoad(Env, D, 0, 100), 0.25);
}

TEST(Forecast, StartsAtZero) {
  LoadForecaster F(4);
  EXPECT_DOUBLE_EQ(F.forecast(0), 0.0);
  EXPECT_EQ(F.observations(), 0u);
}

TEST(Forecast, FirstObservationSeedsLevels) {
  Grid Env = makeSmallGrid();
  Env.node(0).timeline().reserve(0, 50, 1);
  LoadForecaster F(Env.size(), 0.3);
  F.observe(Env, 0, 100);
  EXPECT_DOUBLE_EQ(F.forecast(0), 0.5);
  EXPECT_DOUBLE_EQ(F.forecast(1), 0.0);
}

TEST(Forecast, EwmaBlendsObservations) {
  Grid Env = makeSmallGrid();
  LoadForecaster F(Env.size(), 0.5);
  Env.node(0).timeline().reserve(0, 100, 1);
  F.observe(Env, 0, 100); // Level = 1.0.
  F.observe(Env, 100, 200); // Utilization 0 -> level 0.5.
  EXPECT_DOUBLE_EQ(F.forecast(0), 0.5);
}

TEST(Forecast, DomainForecastAverages) {
  Grid Env = makeSmallGrid();
  Env.node(0).timeline().reserve(0, 100, 1);
  LoadForecaster F(Env.size());
  F.observe(Env, 0, 100);
  Domain D{"d", {0, 1}};
  EXPECT_DOUBLE_EQ(F.domainForecast(D), 0.5);
}

TEST(Dispatch, RoundRobinCycles) {
  Grid Env = makeTieredGrid();
  Network Net;
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{},
                              partitionStriped(Env, 3),
                              DispatchPolicy::RoundRobin);
  JobGenerator Gen(WorkloadConfig{}, 5);
  std::vector<size_t> Picks;
  for (int I = 0; I < 6; ++I) {
    Job J = Gen.next(0);
    Picks.push_back(Dispatcher.dispatch(J, 100 + I, 0).DomainIdx);
  }
  EXPECT_EQ(Picks, (std::vector<size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Dispatch, LeastLoadedAvoidsBusyDomain) {
  Grid Env = makeTieredGrid();
  Network Net;
  std::vector<Domain> Domains = partitionStriped(Env, 2);
  // Saturate domain 0.
  for (unsigned NodeId : Domains[0].NodeIds)
    Env.node(NodeId).timeline().reserve(0, 1000, 9);
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains,
                              DispatchPolicy::LeastLoaded);
  Job J = makeChainJob(200);
  DispatchDecision D = Dispatcher.dispatch(J, 100, 0);
  EXPECT_EQ(D.DomainIdx, 1u);
}

TEST(Dispatch, LeastForecastUsesObservedHistory) {
  Grid Env = makeTieredGrid();
  Network Net;
  std::vector<Domain> Domains = partitionStriped(Env, 2);
  for (unsigned NodeId : Domains[1].NodeIds)
    Env.node(NodeId).timeline().reserve(0, 50, 9);
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains,
                              DispatchPolicy::LeastForecast);
  Dispatcher.observeLoad(50, 50);
  Job J = makeChainJob(300);
  EXPECT_EQ(Dispatcher.dispatch(J, 100, 60).DomainIdx, 0u);
}

TEST(Dispatch, CheapestBidPicksCheapestAdmissibleDomain) {
  Grid Env = makeTieredGrid();
  Network Net;
  std::vector<Domain> Domains = partitionByGroup(Env);
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains,
                              DispatchPolicy::CheapestBid);
  Job J = makeChainJob(400); // Roomy deadline: every domain can host it.
  DispatchDecision D = Dispatcher.dispatch(J, 100, 0);
  ASSERT_EQ(D.Bids.size(), Domains.size());
  // The slow domain has the cheapest nodes.
  EXPECT_EQ(Domains[D.DomainIdx].Name, "slow");
  for (double Bid : D.Bids)
    EXPECT_GE(Bid, D.Bids[D.DomainIdx]);
  EXPECT_TRUE(D.S.admissible());
}

TEST(Dispatch, CheapestBidFallsBackWhenNobodyBids) {
  Grid Env = makeTieredGrid();
  Network Net;
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{},
                              partitionByGroup(Env),
                              DispatchPolicy::CheapestBid);
  Job J = makeChainJob(2); // Impossible deadline.
  DispatchDecision D = Dispatcher.dispatch(J, 100, 0);
  EXPECT_FALSE(D.S.admissible());
  for (double Bid : D.Bids)
    EXPECT_TRUE(std::isinf(Bid));
}

TEST(Dispatch, StrategyIsRestrictedToTheDomain) {
  Grid Env = makeTieredGrid();
  Network Net;
  std::vector<Domain> Domains = partitionByGroup(Env);
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains,
                              DispatchPolicy::RoundRobin);
  Job J = makeChainJob(400);
  DispatchDecision D = Dispatcher.dispatch(J, 100, 0);
  const Domain &Chosen = Domains[D.DomainIdx];
  for (const auto &V : D.S.variants())
    for (const auto &P : V.Result.Dist.placements())
      EXPECT_TRUE(Chosen.contains(P.NodeId));
}

TEST(Dispatch, CommitAfterDispatchReservesInTheDomain) {
  Grid Env = makeTieredGrid();
  Network Net;
  Economy Econ;
  unsigned User = Econ.addUser(1e9);
  Metascheduler Meta(Env, Net, Econ, StrategyConfig{});
  std::vector<Domain> Domains = partitionByGroup(Env);
  DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains,
                              DispatchPolicy::CheapestBid);
  Job J = makeChainJob(400);
  J.setId(3);
  DispatchDecision D = Dispatcher.dispatch(J, Metascheduler::ownerOf(3), 0);
  ASSERT_TRUE(D.S.admissible());
  ASSERT_TRUE(Meta.commit(J, *D.S.bestByCost(), User));
  for (const auto &N : Env.nodes())
    if (!N.timeline().intervals().empty())
      EXPECT_TRUE(Domains[D.DomainIdx].contains(N.id()))
          << "reservation leaked outside the domain";
}
