//===-- tests/test_integration.cpp - Cross-module integration tests -------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "baseline/Heft.h"
#include "core/CriticalWork.h"
#include "core/Strategy.h"
#include "flow/Metascheduler.h"
#include "flow/VirtualOrganization.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

/// The full Fig. 2 story: job structure, critical works, a strategy
/// whose supporting schedules include a strictly cheapest distribution,
/// and the P4/P5-style collision.
TEST(Integration, Fig2EndToEnd) {
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;

  // (1) Critical works as in Section 3.
  auto Chains = allFullChains(J);
  ASSERT_EQ(Chains.size(), 4u);
  EXPECT_EQ(Chains.front().RefLength, 12);
  EXPECT_EQ(Chains.back().RefLength, 9);

  // (2) Strategy with alternatives.
  StrategyConfig Config;
  Strategy S = Strategy::build(J, Env, Net, Config, 42);
  ASSERT_TRUE(S.admissible());
  ASSERT_GE(S.feasibleCount(), 2u);

  // (3) Every feasible variant is a valid co-allocation within the
  // fixed completion time.
  for (const auto &V : S.variants()) {
    if (!V.feasible())
      continue;
    expectValidDistribution(J, V.Result.Dist);
    EXPECT_LE(V.Result.Dist.makespan(), 20);
  }

  // (4) The Fig. 2b shape: the cheapest supporting schedule is strictly
  // cheaper (by CF) than the fastest alternative.
  const ScheduleVariant *Cheapest = S.bestByCost();
  const ScheduleVariant *Fastest = S.bestByTime();
  ASSERT_NE(Cheapest, nullptr);
  ASSERT_NE(Fastest, nullptr);
  EXPECT_LT(Cheapest->Result.Dist.economicCost(),
            Fastest->Result.Dist.economicCost());
  EXPECT_LT(Fastest->Result.Dist.makespan(),
            Cheapest->Result.Dist.makespan());

  // (5) Collisions between tasks of different critical works occur and
  // are resolved.
  EXPECT_FALSE(S.allCollisions().empty());
}

TEST(Integration, CommitThenRescheduleAroundCommittedJob) {
  Grid Env = Grid::makeFig2();
  Network Net;
  Economy Econ;
  unsigned User = Econ.addUser(1e9);
  Metascheduler Meta(Env, Net, Econ, StrategyConfig{});

  Job First = makeFig2Job();
  First.setId(1);
  Strategy S1 = Meta.buildStrategy(First, 0);
  ASSERT_TRUE(Meta.commit(First, *S1.bestByCost(), User));

  // A second identical job must schedule around the first one's
  // reservations.
  Job Second = makeFig2Job();
  Second.setId(2);
  Second.setDeadline(60);
  Strategy S2 = Meta.buildStrategy(Second, 0);
  ASSERT_TRUE(S2.admissible());
  const ScheduleVariant *Pick = S2.bestFitting(Env);
  ASSERT_NE(Pick, nullptr);
  ASSERT_TRUE(Meta.commit(Second, *Pick, User));

  // No reservation overlap between the two jobs on any node.
  for (const auto &N : Env.nodes()) {
    const auto &I = N.timeline().intervals();
    for (size_t K = 1; K < I.size(); ++K)
      EXPECT_LE(I[K - 1].End, I[K].Begin);
  }
}

TEST(Integration, CriticalWorksBeatsHeftOnCost) {
  // HEFT optimizes makespan only; the cost-biased critical works method
  // must never pay more quota on the same empty environment.
  JobGenerator Gen(WorkloadConfig{}, 55);
  Prng Rng(56);
  Network Net;
  int CostWins = 0, Total = 0;
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    J.setDeadline(J.deadline() * 3); // Room for the cheap schedule.
    Grid Env = Grid::makeRandom(GridConfig{}, Rng);
    ScheduleResult Ours = scheduleJob(J, Env, Net, SchedulerConfig{}, 42);
    HeftResult Theirs = scheduleHeft(J, Env, Net);
    if (!Ours.Feasible)
      continue;
    ++Total;
    if (Ours.Dist.economicCost() <= Theirs.Dist.economicCost() + 1e-9)
      ++CostWins;
  }
  ASSERT_GT(Total, 10);
  EXPECT_EQ(CostWins, Total);
}

TEST(Integration, HeftBeatsCostBiasOnMakespan) {
  JobGenerator Gen(WorkloadConfig{}, 57);
  Prng Rng(58);
  Network Net;
  int Faster = 0, Total = 0;
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    J.setDeadline(J.deadline() * 3);
    Grid Env = Grid::makeRandom(GridConfig{}, Rng);
    ScheduleResult Ours = scheduleJob(J, Env, Net, SchedulerConfig{}, 42);
    HeftResult Theirs = scheduleHeft(J, Env, Net);
    if (!Ours.Feasible)
      continue;
    ++Total;
    if (Theirs.Makespan <= Ours.Dist.makespan())
      ++Faster;
  }
  ASSERT_GT(Total, 10);
  // HEFT should win or tie on speed in the vast majority of cases.
  EXPECT_GE(Faster * 10, Total * 8);
}

TEST(Integration, StrategySwitchingUnderGrowingLoad) {
  // As background reservations accumulate, bestFitting degrades
  // gracefully from the cheapest variant to costlier ones, and the
  // chosen cost never decreases.
  Grid Env = Grid::makeFig2();
  Network Net;
  Job J = makeFig2Job();
  Strategy S = Strategy::build(J, Env, Net, StrategyConfig{}, 42);
  ASSERT_TRUE(S.admissible());
  double LastCost = 0.0;
  Prng Rng(99);
  for (int Step = 0; Step < 50; ++Step) {
    const ScheduleVariant *Pick = S.bestFitting(Env);
    if (!Pick)
      break;
    double Cost = Pick->Result.Dist.economicCost();
    EXPECT_GE(Cost, LastCost - 1e-9);
    LastCost = Cost;
    // Random background arrival.
    unsigned Node = static_cast<unsigned>(Rng.index(Env.size()));
    Tick Dur = Rng.uniformInt(1, 4);
    Timeline &Line = Env.node(Node).timeline();
    Tick Start = Line.earliestFit(Rng.uniformInt(0, 20), Dur);
    Line.reserve(Start, Start + Dur, BackgroundOwner);
  }
}

TEST(Integration, Fig3AndFig4SharePipelineSmoke) {
  Fig3Config F3;
  F3.JobCount = 20;
  auto Rows3 = runFig3(F3);
  EXPECT_EQ(Rows3.size(), 3u);
  Fig4Config F4;
  F4.Vo.JobCount = 10;
  F4.Kinds = {StrategyKind::S2, StrategyKind::S3};
  auto Rows4 = runFig4(F4);
  EXPECT_EQ(Rows4.size(), 2u);
}
