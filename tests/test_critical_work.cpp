//===-- tests/test_critical_work.cpp - Critical work extraction tests -----===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "core/CriticalWork.h"
#include "job/Job.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace cws;

namespace {

std::vector<std::string> chainNames(const Job &J, const CriticalWork &W) {
  std::vector<std::string> Names;
  for (unsigned T : W.TaskIds)
    Names.push_back(J.task(T).Name);
  return Names;
}

} // namespace

TEST(CriticalWork, Fig2FullChainsMatchPaper) {
  // Section 3: "there are four critical works 12, 11, 10, and 9 time
  // units long (including data transfer time)".
  Job J = makeFig2Job();
  std::vector<CriticalWork> Chains = allFullChains(J);
  ASSERT_EQ(Chains.size(), 4u);
  EXPECT_EQ(Chains[0].RefLength, 12);
  EXPECT_EQ(Chains[1].RefLength, 11);
  EXPECT_EQ(Chains[2].RefLength, 10);
  EXPECT_EQ(Chains[3].RefLength, 9);
  EXPECT_EQ(chainNames(J, Chains[0]),
            (std::vector<std::string>{"P1", "P2", "P4", "P6"}));
  EXPECT_EQ(chainNames(J, Chains[1]),
            (std::vector<std::string>{"P1", "P2", "P5", "P6"}));
  EXPECT_EQ(chainNames(J, Chains[2]),
            (std::vector<std::string>{"P1", "P3", "P4", "P6"}));
  EXPECT_EQ(chainNames(J, Chains[3]),
            (std::vector<std::string>{"P1", "P3", "P5", "P6"}));
}

TEST(CriticalWork, FindPicksLongestUnassignedChain) {
  Job J = makeFig2Job();
  std::vector<bool> Assigned(6, false);
  CriticalWork W = findCriticalWork(J, Assigned);
  EXPECT_EQ(W.RefLength, 12);
  EXPECT_EQ(chainNames(J, W),
            (std::vector<std::string>{"P1", "P2", "P4", "P6"}));
}

TEST(CriticalWork, FindSkipsAssignedTasks) {
  Job J = makeFig2Job();
  std::vector<bool> Assigned(6, false);
  // Assign P1, P2, P4, P6 (ids 0, 1, 3, 5).
  Assigned[0] = Assigned[1] = Assigned[3] = Assigned[5] = true;
  CriticalWork W = findCriticalWork(J, Assigned);
  // Remaining: P3 -> P5 (via D6), length 1 + 1 + 1 = 3.
  EXPECT_EQ(W.RefLength, 3);
  EXPECT_EQ(chainNames(J, W), (std::vector<std::string>{"P3", "P5"}));
}

TEST(CriticalWork, FindOnFullyAssignedJobIsEmpty) {
  Job J = makeFig2Job();
  std::vector<bool> Assigned(6, true);
  EXPECT_TRUE(findCriticalWork(J, Assigned).TaskIds.empty());
}

TEST(CriticalWork, PhasesPartitionTasks) {
  Job J = makeFig2Job();
  std::vector<CriticalWork> Phases = criticalWorkPhases(J);
  ASSERT_EQ(Phases.size(), 2u);
  std::set<unsigned> Seen;
  size_t Total = 0;
  for (const auto &P : Phases) {
    Total += P.TaskIds.size();
    Seen.insert(P.TaskIds.begin(), P.TaskIds.end());
  }
  EXPECT_EQ(Total, 6u);
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(CriticalWork, PhasesAreLengthOrdered) {
  Job J = makeFig2Job();
  std::vector<CriticalWork> Phases = criticalWorkPhases(J);
  for (size_t I = 1; I < Phases.size(); ++I)
    EXPECT_GE(Phases[I - 1].RefLength, Phases[I].RefLength);
}

TEST(CriticalWork, ChainIsConnectedPath) {
  Job J = makeDiamondJob();
  for (const auto &W : criticalWorkPhases(J))
    for (size_t I = 1; I < W.TaskIds.size(); ++I) {
      bool Connected = false;
      for (size_t EdgeIdx : J.inEdges(W.TaskIds[I]))
        if (J.edge(EdgeIdx).Src == W.TaskIds[I - 1])
          Connected = true;
      EXPECT_TRUE(Connected);
    }
}

TEST(CriticalWork, IsolatedTasksBecomeSingletonWorks) {
  Job J;
  J.addTask("a", 5, 50);
  J.addTask("b", 3, 30);
  std::vector<CriticalWork> Phases = criticalWorkPhases(J);
  ASSERT_EQ(Phases.size(), 2u);
  EXPECT_EQ(Phases[0].RefLength, 5);
  EXPECT_EQ(Phases[1].RefLength, 3);
}

TEST(CriticalWork, AllFullChainsRespectsCap) {
  Job J = makeFig2Job();
  EXPECT_EQ(allFullChains(J, 2).size(), 2u);
}

TEST(CriticalWork, DiamondChains) {
  Job J = makeDiamondJob();
  std::vector<CriticalWork> Chains = allFullChains(J);
  ASSERT_EQ(Chains.size(), 2u);
  EXPECT_EQ(Chains[0].RefLength, 9); // A-B-D
  EXPECT_EQ(Chains[1].RefLength, 7); // A-C-D
}
