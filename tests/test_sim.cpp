//===-- tests/test_sim.cpp - Event queue and simulator tests --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "sim/EventQueue.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cws;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue Q;
  std::vector<int> Order;
  Q.schedule(30, [&](Tick) { Order.push_back(3); });
  Q.schedule(10, [&](Tick) { Order.push_back(1); });
  Q.schedule(20, [&](Tick) { Order.push_back(2); });
  while (!Q.empty())
    Q.runNext();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFiresInSubmissionOrder) {
  EventQueue Q;
  std::vector<int> Order;
  for (int I = 0; I < 5; ++I)
    Q.schedule(7, [&Order, I](Tick) { Order.push_back(I); });
  while (!Q.empty())
    Q.runNext();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue Q;
  bool Fired = false;
  EventId Id = Q.schedule(5, [&](Tick) { Fired = true; });
  EXPECT_TRUE(Q.cancel(Id));
  EXPECT_FALSE(Q.cancel(Id));
  EXPECT_TRUE(Q.empty());
  EXPECT_FALSE(Fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue Q;
  EventId A = Q.schedule(5, [](Tick) {});
  Q.schedule(9, [](Tick) {});
  EXPECT_EQ(Q.nextTime(), 5);
  Q.cancel(A);
  EXPECT_EQ(Q.nextTime(), 9);
}

TEST(EventQueue, NextTimeOnEmpty) {
  EventQueue Q;
  EXPECT_EQ(Q.nextTime(), TickMax);
}

TEST(EventQueue, RunNextReportsTime) {
  EventQueue Q;
  Q.schedule(17, [](Tick At) { EXPECT_EQ(At, 17); });
  EXPECT_EQ(Q.runNext(), 17);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue Q;
  int Count = 0;
  Q.schedule(1, [&](Tick) {
    ++Count;
    Q.schedule(2, [&](Tick) { ++Count; });
  });
  while (!Q.empty())
    Q.runNext();
  EXPECT_EQ(Count, 2);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator Sim;
  Tick Seen = -1;
  Sim.at(12, [&](Tick Now) { Seen = Now; });
  Sim.run();
  EXPECT_EQ(Seen, 12);
  EXPECT_EQ(Sim.now(), 12);
}

TEST(Simulator, AfterIsRelative) {
  Simulator Sim;
  std::vector<Tick> Times;
  Sim.at(10, [&](Tick) {
    Sim.after(5, [&](Tick Now) { Times.push_back(Now); });
  });
  Sim.run();
  EXPECT_EQ(Times, (std::vector<Tick>{15}));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator Sim;
  Sim.at(10, [&](Tick) {
    Sim.at(3, [&](Tick Now) { EXPECT_EQ(Now, 10); });
  });
  EXPECT_EQ(Sim.run(), 2u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator Sim;
  int Fired = 0;
  Sim.at(5, [&](Tick) { ++Fired; });
  Sim.at(50, [&](Tick) { ++Fired; });
  EXPECT_EQ(Sim.run(20), 1u);
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(Sim.run(), 1u);
  EXPECT_EQ(Fired, 2);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator Sim;
  bool Fired = false;
  EventId Id = Sim.at(4, [&](Tick) { Fired = true; });
  EXPECT_TRUE(Sim.cancel(Id));
  Sim.run();
  EXPECT_FALSE(Fired);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator Sim;
  int Count = 0;
  Sim.at(1, [&](Tick) { ++Count; });
  Sim.at(2, [&](Tick) { ++Count; });
  EXPECT_TRUE(Sim.step());
  EXPECT_EQ(Count, 1);
  EXPECT_TRUE(Sim.step());
  EXPECT_EQ(Count, 2);
  EXPECT_FALSE(Sim.step());
}

TEST(Simulator, PendingCount) {
  Simulator Sim;
  Sim.at(1, [](Tick) {});
  Sim.at(2, [](Tick) {});
  EXPECT_EQ(Sim.pending(), 2u);
  Sim.run();
  EXPECT_EQ(Sim.pending(), 0u);
}
