//===-- tests/test_timeline.cpp - Timeline unit tests ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Timeline.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(Timeline, FreshIsFree) {
  Timeline T;
  EXPECT_TRUE(T.isFree(0, 100));
  EXPECT_EQ(T.earliestFit(0, 10), 0);
  EXPECT_EQ(T.busyTicks(0, 100), 0);
}

TEST(Timeline, ReserveBlocksOverlap) {
  Timeline T;
  EXPECT_TRUE(T.reserve(10, 20, 1));
  EXPECT_FALSE(T.reserve(15, 25, 2));
  EXPECT_FALSE(T.reserve(5, 11, 2));
  EXPECT_FALSE(T.reserve(10, 20, 2));
  EXPECT_TRUE(T.reserve(20, 30, 2)); // Half-open: touching is fine.
  EXPECT_TRUE(T.reserve(5, 10, 3));
}

TEST(Timeline, IsFreeHalfOpenSemantics) {
  Timeline T;
  T.reserve(10, 20, 1);
  EXPECT_TRUE(T.isFree(0, 10));
  EXPECT_TRUE(T.isFree(20, 30));
  EXPECT_FALSE(T.isFree(19, 21));
  EXPECT_FALSE(T.isFree(9, 11));
  EXPECT_TRUE(T.isFree(5, 5)); // Empty interval.
}

TEST(Timeline, EarliestFitSkipsBusy) {
  Timeline T;
  T.reserve(10, 20, 1);
  T.reserve(25, 30, 1);
  EXPECT_EQ(T.earliestFit(0, 10), 0);
  EXPECT_EQ(T.earliestFit(0, 11), 30);
  EXPECT_EQ(T.earliestFit(12, 5), 20);
  EXPECT_EQ(T.earliestFit(12, 6), 30);
  EXPECT_EQ(T.earliestFit(40, 100), 40);
}

TEST(Timeline, EarliestFitExactGap) {
  Timeline T;
  T.reserve(0, 10, 1);
  T.reserve(15, 20, 1);
  EXPECT_EQ(T.earliestFit(0, 5), 10);
  EXPECT_EQ(T.earliestFit(0, 6), 20);
}

TEST(Timeline, FirstOverlapFindsBlocking) {
  Timeline T;
  T.reserve(10, 20, 7);
  const Interval *I = T.firstOverlap(15, 25);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Owner, 7u);
  EXPECT_EQ(T.firstOverlap(0, 10), nullptr);
  EXPECT_EQ(T.firstOverlap(20, 30), nullptr);
}

TEST(Timeline, ReleaseOwnerRemovesAll) {
  Timeline T;
  T.reserve(0, 5, 1);
  T.reserve(5, 10, 2);
  T.reserve(10, 15, 1);
  EXPECT_EQ(T.releaseOwner(1), 2u);
  EXPECT_TRUE(T.isFree(0, 5));
  EXPECT_FALSE(T.isFree(5, 10));
  EXPECT_TRUE(T.isFree(10, 15));
  EXPECT_EQ(T.releaseOwner(1), 0u);
}

TEST(Timeline, ReleaseExactInterval) {
  Timeline T;
  T.reserve(0, 5, 1);
  T.reserve(10, 15, 1);
  EXPECT_FALSE(T.release(0, 5, 2));  // Wrong owner.
  EXPECT_FALSE(T.release(0, 4, 1));  // Wrong bounds.
  EXPECT_TRUE(T.release(0, 5, 1));
  EXPECT_TRUE(T.isFree(0, 5));
  EXPECT_FALSE(T.isFree(10, 15));
}

TEST(Timeline, IsFreeForIgnoresOwner) {
  Timeline T;
  T.reserve(10, 20, 5);
  T.reserve(30, 40, 6);
  EXPECT_TRUE(T.isFreeFor(10, 20, 5));
  EXPECT_FALSE(T.isFreeFor(10, 20, 6));
  EXPECT_FALSE(T.isFreeFor(15, 35, 5)); // Overlaps owner 6 too.
}

TEST(Timeline, BusyTicksAndUtilization) {
  Timeline T;
  T.reserve(10, 20, 1);
  T.reserve(30, 35, 2);
  EXPECT_EQ(T.busyTicks(0, 100), 15);
  EXPECT_EQ(T.busyTicks(15, 32), 7);
  EXPECT_DOUBLE_EQ(T.utilization(0, 100), 0.15);
  EXPECT_DOUBLE_EQ(T.utilization(50, 50), 0.0);
}

TEST(Timeline, IntervalsStaySorted) {
  Timeline T;
  T.reserve(50, 60, 1);
  T.reserve(10, 20, 1);
  T.reserve(30, 40, 1);
  const auto &I = T.intervals();
  ASSERT_EQ(I.size(), 3u);
  EXPECT_EQ(I[0].Begin, 10);
  EXPECT_EQ(I[1].Begin, 30);
  EXPECT_EQ(I[2].Begin, 50);
}

TEST(Timeline, ClearEmpties) {
  Timeline T;
  T.reserve(0, 5, 1);
  T.clear();
  EXPECT_TRUE(T.isFree(0, 1000));
}

/// Random-operation invariants: intervals remain sorted, disjoint, and
/// earliestFit results are actually free.
class TimelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimelineFuzz, InvariantsHoldUnderRandomOps) {
  Prng Rng(GetParam());
  Timeline T;
  for (int Op = 0; Op < 400; ++Op) {
    Tick B = Rng.uniformInt(0, 500);
    Tick Len = Rng.uniformInt(1, 30);
    switch (Rng.index(3)) {
    case 0:
      T.reserve(B, B + Len, 1 + Rng.index(4));
      break;
    case 1:
      T.releaseOwner(1 + Rng.index(4));
      break;
    case 2: {
      Tick Fit = T.earliestFit(B, Len);
      EXPECT_GE(Fit, B);
      EXPECT_TRUE(T.isFree(Fit, Fit + Len));
      break;
    }
    }
    const auto &I = T.intervals();
    for (size_t K = 1; K < I.size(); ++K) {
      EXPECT_LE(I[K - 1].End, I[K].Begin);
      EXPECT_LT(I[K].Begin, I[K].End);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 77u, 1234u));
