//===-- tests/TestUtil.h - Shared test fixtures -----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#ifndef CWS_TESTS_TESTUTIL_H
#define CWS_TESTS_TESTUTIL_H

#include "core/Distribution.h"
#include "job/Job.h"
#include "resource/Grid.h"

#include <gtest/gtest.h>

namespace cws {

/// A diamond job: A -> {B, C} -> D with unit transfers.
inline Job makeDiamondJob(Tick Deadline = 100) {
  Job J;
  unsigned A = J.addTask("A", 2, 20);
  unsigned B = J.addTask("B", 3, 30);
  unsigned C = J.addTask("C", 1, 10);
  unsigned D = J.addTask("D", 2, 20);
  J.addEdge(A, B, 1);
  J.addEdge(A, C, 1);
  J.addEdge(B, D, 1);
  J.addEdge(C, D, 1);
  J.setDeadline(Deadline);
  return J;
}

/// A plain chain A -> B -> C.
inline Job makeChainJob(Tick Deadline = 100) {
  Job J;
  unsigned A = J.addTask("A", 2, 20);
  unsigned B = J.addTask("B", 3, 30);
  unsigned C = J.addTask("C", 2, 20);
  J.addEdge(A, B, 1);
  J.addEdge(B, C, 1);
  J.setDeadline(Deadline);
  return J;
}

/// Two fast + two slow nodes.
inline Grid makeSmallGrid() {
  Grid G;
  G.addNode(1.0);
  G.addNode(0.8);
  G.addNode(0.4);
  G.addNode(0.33);
  return G;
}

/// Checks the structural invariants every complete distribution must
/// satisfy: full coverage, precedence (dst starts no earlier than src
/// ends) and non-overlapping same-node reservations.
inline void expectValidDistribution(const Job &J, const Distribution &D) {
  EXPECT_TRUE(D.covers(J));
  for (const auto &E : J.edges()) {
    const Placement *Src = D.find(E.Src);
    const Placement *Dst = D.find(E.Dst);
    ASSERT_NE(Src, nullptr);
    ASSERT_NE(Dst, nullptr);
    EXPECT_GE(Dst->Start, Src->End)
        << "edge " << E.Src << "->" << E.Dst << " violated";
  }
  for (const auto &A : D.placements())
    for (const auto &B : D.placements()) {
      if (A.TaskId == B.TaskId || A.NodeId != B.NodeId)
        continue;
      EXPECT_TRUE(A.End <= B.Start || B.End <= A.Start)
          << "tasks " << A.TaskId << " and " << B.TaskId
          << " overlap on node " << A.NodeId;
    }
}

} // namespace cws

#endif // CWS_TESTS_TESTUTIL_H
