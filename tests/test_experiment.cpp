//===-- tests/test_experiment.cpp - Experiment harness tests --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(PreloadGrid, ReachesTargetFractions) {
  Prng Rng(5);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  size_t Placed = preloadGrid(Env, 100, 0.4, 0.6, 2, 8, Rng);
  EXPECT_GT(Placed, 0u);
  for (const auto &N : Env.nodes()) {
    double U = N.timeline().utilization(0, 100);
    EXPECT_GE(U, 0.3); // Target is at least 0.4 minus granularity slop.
    EXPECT_LT(U, 0.95);
  }
}

TEST(PreloadGrid, ZeroRangeLeavesGridEmpty) {
  Prng Rng(6);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  preloadGrid(Env, 100, 0.0, 0.0, 2, 8, Rng);
  for (const auto &N : Env.nodes())
    EXPECT_TRUE(N.timeline().intervals().empty());
}

TEST(Fig3, TinyRunProducesRows) {
  Fig3Config Config;
  Config.JobCount = 40;
  std::vector<Fig3Row> Rows = runFig3(Config);
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Kind, StrategyKind::S1);
  EXPECT_EQ(Rows[1].Kind, StrategyKind::S2);
  EXPECT_EQ(Rows[2].Kind, StrategyKind::S3);
  for (const auto &R : Rows) {
    EXPECT_EQ(R.Jobs, 40u);
    EXPECT_GE(R.admissiblePercent(), 0.0);
    EXPECT_LE(R.admissiblePercent(), 100.0);
    EXPECT_GT(R.MeanVariants, 0.0);
    EXPECT_GE(R.MeanVariants, R.MeanFeasibleVariants);
  }
}

TEST(Fig3, CollisionSplitsAreConsistent) {
  Fig3Config Config;
  Config.JobCount = 60;
  std::vector<Fig3Row> Rows = runFig3(Config);
  for (const auto &R : Rows) {
    if (R.IntraCost.total() > 0) {
      EXPECT_GE(R.IntraCost.fastPercent(), 0.0);
      EXPECT_LE(R.IntraCost.fastPercent(), 100.0);
      EXPECT_NEAR(R.IntraCost.fastPercent() + R.IntraCost.slowPercent(),
                  100.0, 1e-9);
    }
  }
}

TEST(Fig3, IsDeterministic) {
  Fig3Config Config;
  Config.JobCount = 30;
  auto A = runFig3(Config);
  auto B = runFig3(Config);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Admissible, B[I].Admissible);
    EXPECT_EQ(A[I].IntraCost.Fast, B[I].IntraCost.Fast);
    EXPECT_EQ(A[I].IntraCost.Slow, B[I].IntraCost.Slow);
  }
}

TEST(Fig3, SeedChangesOutcome) {
  Fig3Config A;
  A.JobCount = 30;
  Fig3Config B = A;
  B.Seed = A.Seed + 1;
  EXPECT_NE(runFig3(A)[0].Admissible, runFig3(B)[0].Admissible);
}

TEST(Fig4, TinyRunProducesRows) {
  Fig4Config Config;
  Config.Vo.JobCount = 20;
  std::vector<Fig4Row> Rows = runFig4(Config);
  ASSERT_EQ(Rows.size(), 4u);
  for (const auto &R : Rows) {
    EXPECT_EQ(R.Agg.Jobs, 20u);
    EXPECT_GE(R.LoadFast, 0.0);
    EXPECT_GE(R.LoadMedium, 0.0);
    EXPECT_GE(R.LoadSlow, 0.0);
  }
}

TEST(Fig4, DefaultVoConfigIsLooserThanFig3) {
  VoConfig Vo = makeFig4VoConfig();
  EXPECT_GT(Vo.Workload.DeadlineSlack, WorkloadConfig{}.DeadlineSlack);
}

TEST(Fig4, AggregatesAreConsistent) {
  Fig4Config Config;
  Config.Vo.JobCount = 20;
  for (const auto &R : runFig4(Config)) {
    EXPECT_LE(R.Agg.CommittedPercent, R.Agg.AdmissiblePercent + 1e-9);
    if (R.Agg.Committed > 0) {
      EXPECT_GT(R.Agg.MeanCost, 0.0);
      EXPECT_GT(R.Agg.MeanCf, 0.0);
      EXPECT_GT(R.Agg.MeanRunTicks, 0.0);
      EXPECT_GE(R.Agg.MeanResponseTicks, R.Agg.MeanRunTicks);
    }
  }
}

TEST(SummarizeVo, EmptyRun) {
  VoRunResult Run;
  VoAggregates A = summarizeVo(Run);
  EXPECT_EQ(A.Jobs, 0u);
  EXPECT_EQ(A.Committed, 0u);
  EXPECT_EQ(A.MeanCost, 0.0);
}

TEST(SummarizeVo, CountsCategories) {
  VoRunResult Run;
  VoJobStats Committed;
  Committed.Admissible = true;
  Committed.Committed = true;
  Committed.Arrival = 0;
  Committed.ActualStart = 10;
  Committed.Completion = 30;
  Committed.ForecastStart = 8;
  Committed.Cost = 50.0;
  Committed.Cf = 12;
  Committed.Ttl = 25;
  Committed.TtlClosed = true;
  VoJobStats Inadmissible;
  Inadmissible.TtlClosed = true;
  Run.Jobs = {Committed, Inadmissible};
  VoAggregates A = summarizeVo(Run);
  EXPECT_EQ(A.Jobs, 2u);
  EXPECT_EQ(A.Committed, 1u);
  EXPECT_DOUBLE_EQ(A.AdmissiblePercent, 50.0);
  EXPECT_DOUBLE_EQ(A.MeanCost, 50.0);
  EXPECT_DOUBLE_EQ(A.MeanCf, 12.0);
  EXPECT_DOUBLE_EQ(A.MeanRunTicks, 20.0);
  EXPECT_DOUBLE_EQ(A.MeanStartDeviation, 2.0);
  EXPECT_DOUBLE_EQ(A.MeanTtl, 25.0);
}
