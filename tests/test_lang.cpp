//===-- tests/test_lang.cpp - Description language tests ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "job/Generator.h"

#include <gtest/gtest.h>

using namespace cws;

// --- Lexer ---

TEST(Lexer, EmptyInput) {
  Lexer L("");
  EXPECT_TRUE(L.next().is(TokenKind::EndOfInput));
}

TEST(Lexer, IdentifiersNumbersStrings) {
  Lexer L("task a1 ref 4 vol 2.5 \"hello\"");
  EXPECT_TRUE(L.next().isKeyword("task"));
  Token A = L.next();
  EXPECT_TRUE(A.is(TokenKind::Identifier));
  EXPECT_EQ(A.Text, "a1");
  EXPECT_TRUE(L.next().isKeyword("ref"));
  Token N = L.next();
  EXPECT_TRUE(N.is(TokenKind::Number));
  EXPECT_EQ(N.Text, "4");
  L.next(); // vol
  EXPECT_EQ(L.next().Text, "2.5");
  Token S = L.next();
  EXPECT_TRUE(S.is(TokenKind::String));
  EXPECT_EQ(S.Text, "hello");
  EXPECT_TRUE(L.next().is(TokenKind::EndOfInput));
}

TEST(Lexer, ArrowWithAndWithoutSpaces) {
  Lexer A("a -> b");
  A.next();
  EXPECT_TRUE(A.next().is(TokenKind::Arrow));
  Lexer B("a->b");
  EXPECT_EQ(B.next().Text, "a");
  EXPECT_TRUE(B.next().is(TokenKind::Arrow));
  EXPECT_EQ(B.next().Text, "b");
}

TEST(Lexer, CommentsAndSeparatorsAreSkipped) {
  Lexer L("# a comment\n task , x ; ref 1 # trailing\n");
  EXPECT_TRUE(L.next().isKeyword("task"));
  EXPECT_EQ(L.next().Text, "x");
  EXPECT_TRUE(L.next().isKeyword("ref"));
  EXPECT_EQ(L.next().Text, "1");
  EXPECT_TRUE(L.next().is(TokenKind::EndOfInput));
}

TEST(Lexer, NegativeNumbers) {
  Lexer L("release -3");
  L.next();
  Token N = L.next();
  EXPECT_TRUE(N.is(TokenKind::Number));
  EXPECT_EQ(N.Text, "-3");
}

TEST(Lexer, LocationsAreTracked) {
  Lexer L("task a\nedge b");
  Token T1 = L.next();
  EXPECT_EQ(T1.Line, 1u);
  EXPECT_EQ(T1.Col, 1u);
  L.next();
  Token T3 = L.next();
  EXPECT_EQ(T3.Line, 2u);
  EXPECT_EQ(T3.Col, 1u);
}

TEST(Lexer, UnterminatedStringIsError) {
  Lexer L("\"oops");
  EXPECT_TRUE(L.next().is(TokenKind::Error));
}

TEST(Lexer, InvalidCharacterIsError) {
  Lexer L("@");
  Token T = L.next();
  EXPECT_TRUE(T.is(TokenKind::Error));
  EXPECT_EQ(T.Text, "@");
}

TEST(Lexer, PeekDoesNotConsume) {
  Lexer L("task");
  EXPECT_TRUE(L.peek().isKeyword("task"));
  EXPECT_TRUE(L.peek().isKeyword("task"));
  EXPECT_TRUE(L.next().isKeyword("task"));
  EXPECT_TRUE(L.next().is(TokenKind::EndOfInput));
}

TEST(Lexer, MacroTaskNamesWithPlus) {
  Lexer L("task P1+2 ref 5");
  L.next();
  EXPECT_EQ(L.next().Text, "P1+2");
}

// --- Parser ---

TEST(Parser, MinimalJob) {
  ParseResult R = parseJobDescription(R"(
    job "wf" deadline 30
    task a ref 2 vol 20
    task b ref 4
    edge a -> b transfer 2
  )");
  ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
  EXPECT_TRUE(R.HasJob);
  EXPECT_FALSE(R.HasEnv);
  EXPECT_EQ(R.TheJob.taskCount(), 2u);
  EXPECT_EQ(R.TheJob.edgeCount(), 1u);
  EXPECT_EQ(R.TheJob.deadline(), 30);
  EXPECT_EQ(R.TheJob.task(0).Name, "a");
  EXPECT_DOUBLE_EQ(R.TheJob.task(0).Volume, 20.0);
  // vol defaults to 10 * ref.
  EXPECT_DOUBLE_EQ(R.TheJob.task(1).Volume, 40.0);
  EXPECT_EQ(R.TheJob.edge(0).BaseTransfer, 2);
}

TEST(Parser, DeclarationOrderDoesNotMatter) {
  ParseResult R = parseJobDescription(R"(
    edge a -> b
    task b ref 1
    task a ref 1
  )");
  ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
  EXPECT_EQ(R.TheJob.edgeCount(), 1u);
}

TEST(Parser, NodesBuildAGrid) {
  ParseResult R = parseJobDescription(R"(
    node perf 1.0
    node perf 0.5 price 3.5
  )");
  ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
  EXPECT_TRUE(R.HasEnv);
  ASSERT_EQ(R.Env.size(), 2u);
  EXPECT_DOUBLE_EQ(R.Env.node(0).relPerf(), 1.0);
  EXPECT_DOUBLE_EQ(R.Env.node(1).pricePerTick(), 3.5);
}

TEST(Parser, DefaultEdgeTransferIsOne) {
  ParseResult R = parseJobDescription("task a ref 1\ntask b ref 1\n"
                                      "edge a -> b");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.TheJob.edge(0).BaseTransfer, 1);
}

TEST(Parser, ReportsUnknownTask) {
  ParseResult R = parseJobDescription("task a ref 1\nedge a -> ghost");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("unknown task 'ghost'"),
            std::string::npos);
}

TEST(Parser, ReportsDuplicateTask) {
  ParseResult R = parseJobDescription("task a ref 1\ntask a ref 2");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("duplicate task 'a'"),
            std::string::npos);
}

TEST(Parser, ReportsCycle) {
  ParseResult R = parseJobDescription(
      "task a ref 1\ntask b ref 1\nedge a -> b\nedge b -> a");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("cycle"), std::string::npos);
}

TEST(Parser, ReportsMissingRef) {
  ParseResult R = parseJobDescription("task a vol 10");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("missing the required 'ref'"),
            std::string::npos);
}

TEST(Parser, ReportsBadAttributeValue) {
  ParseResult R = parseJobDescription("task a ref banana");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("expected number"),
            std::string::npos);
}

TEST(Parser, ReportsUnknownAttribute) {
  ParseResult R = parseJobDescription("task a ref 1 color 7");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("unknown task attribute"),
            std::string::npos);
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  ParseResult R = parseJobDescription(R"(
    task a ref banana
    task b ref 2
    edge b -> ghost
  )");
  ASSERT_FALSE(R.ok());
  EXPECT_GE(R.Errors.size(), 2u);
  // b was still parsed despite a's error.
  EXPECT_EQ(R.TheJob.taskCount(), 1u);
}

TEST(Parser, DiagnosticLocationsPointAtTheProblem) {
  ParseResult R = parseJobDescription("task a ref 1\nedge a -> ghost");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Errors[0].Line, 2u);
}

TEST(Parser, SelfEdgeIsRejected) {
  ParseResult R = parseJobDescription("task a ref 1\nedge a -> a");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("self-dependency"),
            std::string::npos);
}

TEST(Parser, DuplicateJobDeclarationIsRejected) {
  ParseResult R = parseJobDescription("job deadline 5\njob deadline 6\n"
                                      "task a ref 1");
  ASSERT_FALSE(R.ok());
}

TEST(Parser, BusyDeclarationsPreloadTheGrid) {
  ParseResult R = parseJobDescription(R"(
    node perf 1.0
    node perf 0.5
    busy 0 10 20
    busy 1 0 5
  )");
  ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
  EXPECT_FALSE(R.Env.node(0).timeline().isFree(10, 20));
  EXPECT_TRUE(R.Env.node(0).timeline().isFree(0, 10));
  EXPECT_FALSE(R.Env.node(1).timeline().isFree(0, 5));
}

TEST(Parser, BusyRejectsUnknownNode) {
  ParseResult R = parseJobDescription("node perf 1.0\nbusy 5 0 10");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("references node 5"),
            std::string::npos);
}

TEST(Parser, BusyRejectsBadInterval) {
  ParseResult R = parseJobDescription("node perf 1.0\nbusy 0 10 10");
  ASSERT_FALSE(R.ok());
}

TEST(Parser, BusyRejectsOverlap) {
  ParseResult R = parseJobDescription(
      "node perf 1.0\nbusy 0 0 10\nbusy 0 5 15");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(formatDiagnostics(R.Errors).find("overlaps"),
            std::string::npos);
}

TEST(Parser, BusyRejectsNonNumbers) {
  ParseResult R = parseJobDescription("node perf 1.0\nbusy 0 start end");
  ASSERT_FALSE(R.ok());
}

TEST(Parser, Fig2JobRoundTrips) {
  Job Original = makeFig2Job();
  std::string Text = printJobDescription(Original);
  ParseResult R = parseJobDescription(Text);
  ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
  ASSERT_EQ(R.TheJob.taskCount(), Original.taskCount());
  ASSERT_EQ(R.TheJob.edgeCount(), Original.edgeCount());
  EXPECT_EQ(R.TheJob.deadline(), Original.deadline());
  for (unsigned T = 0; T < Original.taskCount(); ++T) {
    EXPECT_EQ(R.TheJob.task(T).Name, Original.task(T).Name);
    EXPECT_EQ(R.TheJob.task(T).RefTicks, Original.task(T).RefTicks);
    EXPECT_DOUBLE_EQ(R.TheJob.task(T).Volume, Original.task(T).Volume);
  }
  EXPECT_EQ(R.TheJob.criticalPathRefTicks(),
            Original.criticalPathRefTicks());
}

TEST(Parser, GeneratedJobsRoundTrip) {
  JobGenerator Gen(WorkloadConfig{}, 77);
  for (int I = 0; I < 20; ++I) {
    Job Original = Gen.next(3);
    ParseResult R = parseJobDescription(printJobDescription(Original));
    ASSERT_TRUE(R.ok()) << formatDiagnostics(R.Errors);
    EXPECT_EQ(R.TheJob.taskCount(), Original.taskCount());
    EXPECT_EQ(R.TheJob.edgeCount(), Original.edgeCount());
    EXPECT_EQ(R.TheJob.release(), Original.release());
    EXPECT_EQ(R.TheJob.deadline(), Original.deadline());
    EXPECT_EQ(R.TheJob.criticalPathRefTicks(),
              Original.criticalPathRefTicks());
  }
}
