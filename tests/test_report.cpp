//===-- tests/test_report.cpp - Run-report and SLO gate tests -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the cws-report building blocks: the tidy-CSV time-series
/// parser, the SLO rule grammar, the indicator join of journal and
/// time series, the fail-closed SLO evaluation, and the Markdown
/// rendering (with the per-flow table pinned to sorted flow order).
///
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cws;
using namespace cws::obs;

namespace {

class ReportTest : public ::testing::Test {
protected:
  void SetUp() override { Journal::global().reset(); }
  void TearDown() override { Journal::global().reset(); }
};

//===----------------------------------------------------------------------===//
// Time-series CSV parser
//===----------------------------------------------------------------------===//

TEST_F(ReportTest, ParsesTidyCsvRows) {
  ParsedTimeSeries Ts;
  std::string Error;
  ASSERT_TRUE(parseTimeSeriesCsv("seq,tick,reason,series,node,flow,value\n"
                                 "0,25,sample,jobs_committed,,,3\n"
                                 "0,25,sample,util_busy,4,,0.25\n"
                                 "1,30,commit,queued,,S1,2\n",
                                 Ts, Error))
      << Error;
  ASSERT_EQ(Ts.Rows.size(), 3u);
  EXPECT_EQ(Ts.Rows[0].Seq, 0u);
  EXPECT_EQ(Ts.Rows[0].At, 25);
  EXPECT_EQ(Ts.Rows[0].Reason, "sample");
  EXPECT_EQ(Ts.Rows[0].Series, "jobs_committed");
  EXPECT_EQ(Ts.Rows[0].Node, -1);
  EXPECT_DOUBLE_EQ(Ts.Rows[0].Value, 3.0);
  EXPECT_EQ(Ts.Rows[1].Node, 4);
  EXPECT_EQ(Ts.Rows[2].Flow, "S1");
}

TEST_F(ReportTest, CsvProvenanceCommentFillsTheStamp) {
  ParsedTimeSeries Ts;
  std::string Error;
  ASSERT_TRUE(parseTimeSeriesCsv(
      "# provenance seed=9 config=0xabc scenario=lam=2+s=S1 cli=cws-sim "
      "--seed 9\n"
      "seq,tick,reason,series,node,flow,value\n"
      "0,25,sample,jobs_committed,,,3\n",
      Ts, Error))
      << Error;
  ASSERT_TRUE(Ts.Prov.valid());
  EXPECT_EQ(Ts.Prov.Seed, 9u);
  EXPECT_EQ(Ts.Prov.ConfigHash, "0xabc");
  EXPECT_EQ(Ts.Prov.ScenarioId, "lam=2+s=S1");
  EXPECT_EQ(Ts.Prov.Cli, "cws-sim --seed 9");
  // Unstamped files still parse and report no provenance.
  ASSERT_TRUE(parseTimeSeriesCsv("seq,tick,reason,series,node,flow,value\n",
                                 Ts, Error))
      << Error;
  EXPECT_FALSE(Ts.Prov.valid());
}

TEST_F(ReportTest, RejectsMalformedCsv) {
  ParsedTimeSeries Ts;
  std::string Error;
  EXPECT_FALSE(parseTimeSeriesCsv("tick,series,value\n", Ts, Error));
  EXPECT_NE(Error.find("header"), std::string::npos) << Error;
  EXPECT_FALSE(
      parseTimeSeriesCsv("seq,tick,reason,series,node,flow,value\n"
                         "0,25,sample\n",
                         Ts, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// SLO rule grammar
//===----------------------------------------------------------------------===//

TEST_F(ReportTest, ParsesSloRulesWithCommentsAndBothDirections) {
  std::vector<SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(parseSloFile("# quality gate\n"
                           "\n"
                           "deadline_miss_rate <= 0.05\n"
                           "commit_rate>=0.3  # inline comment\n",
                           Rules, Error))
      << Error;
  ASSERT_EQ(Rules.size(), 2u);
  EXPECT_EQ(Rules[0].Indicator, "deadline_miss_rate");
  EXPECT_TRUE(Rules[0].IsUpper);
  EXPECT_DOUBLE_EQ(Rules[0].Bound, 0.05);
  EXPECT_EQ(Rules[1].Indicator, "commit_rate");
  EXPECT_FALSE(Rules[1].IsUpper);
  EXPECT_DOUBLE_EQ(Rules[1].Bound, 0.3);
}

TEST_F(ReportTest, RejectsMalformedSloRules) {
  std::vector<SloRule> Rules;
  std::string Error;
  EXPECT_FALSE(parseSloFile("deadline_miss_rate\n", Rules, Error));
  EXPECT_FALSE(parseSloFile("x <= not_a_number\n", Rules, Error));
  EXPECT_FALSE(parseSloFile("x <= 1 trailing junk\n", Rules, Error));
  EXPECT_FALSE(parseSloFile("<= 1\n", Rules, Error));
}

TEST_F(ReportTest, ParsesQuantileSloGrammar) {
  std::vector<SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(parseSloFile("deadline_miss_rate.p90 <= 0.05 across seeds\n"
                           "commit_rate.min >= 0.2\n"
                           "mean_node_busy <= 0.95\n",
                           Rules, Error))
      << Error;
  ASSERT_EQ(Rules.size(), 3u);
  EXPECT_EQ(Rules[0].Indicator, "deadline_miss_rate");
  EXPECT_EQ(Rules[0].Stat, "p90");
  EXPECT_TRUE(Rules[0].AcrossSeeds);
  EXPECT_EQ(Rules[0].fullName(), "deadline_miss_rate.p90");
  EXPECT_EQ(Rules[1].Stat, "min");
  EXPECT_FALSE(Rules[1].AcrossSeeds);
  EXPECT_EQ(Rules[2].Stat, "");
  EXPECT_EQ(Rules[2].fullName(), "mean_node_busy");

  // A dotted suffix that is not a pooled statistic stays part of the
  // indicator name (profile indicators are dotted: phase.chain.dp.count).
  ASSERT_TRUE(parseSloFile("x.p45 <= 1\n", Rules, Error)) << Error;
  ASSERT_EQ(Rules.size(), 1u);
  EXPECT_EQ(Rules[0].Indicator, "x.p45");
  EXPECT_EQ(Rules[0].Stat, "");
  EXPECT_FALSE(parseSloFile(".p90 <= 1\n", Rules, Error));
  EXPECT_FALSE(parseSloFile("x <= 1 across the universe\n", Rules, Error));
}

TEST_F(ReportTest, DistributionRulesFailClosedInSingleRunEvaluation) {
  // A `.stat` / `across seeds` rule gates a pooled distribution; a
  // single run has none, so it must never pass here.
  std::map<std::string, double> Ind{{"deadline_miss_rate", 0.0}};
  std::vector<SloRule> Rules;
  std::string Error;
  ASSERT_TRUE(parseSloFile("deadline_miss_rate.p90 <= 0.5 across seeds\n"
                           "deadline_miss_rate.max <= 0.5\n",
                           Rules, Error))
      << Error;
  std::vector<SloResult> R = evaluateSlo(Rules, Ind);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_FALSE(R[0].Known);
  EXPECT_FALSE(R[0].Pass);
  EXPECT_FALSE(R[1].Known);
  EXPECT_FALSE(R[1].Pass);
}

//===----------------------------------------------------------------------===//
// Indicators
//===----------------------------------------------------------------------===//

/// Three arrivals on two flows; one on-time commit, one deadline miss,
/// one reject; one reallocation after an environment change.
ParsedJournal syntheticJournal() {
  Journal &Jn = Journal::global();
  Jn.reset();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 1, 10, {{"deadline", 100}, {"tasks", 2}},
            "S1", /*FlowId=*/0);
  Jn.append(JournalKind::Arrival, 2, 12, {{"deadline", 150}, {"tasks", 2}},
            "S2", /*FlowId=*/1);
  Jn.append(JournalKind::Arrival, 3, 14, {{"deadline", 50}, {"tasks", 2}},
            "S1", /*FlowId=*/0);
  // "makespan" is the absolute completion tick: 90 <= 100 meets.
  Jn.append(JournalKind::Commit, 1, 20,
            {{"variant", 0}, {"start", 30}, {"makespan", 90}}, "ok",
            /*FlowId=*/0);
  Jn.append(JournalKind::EnvChange, -1, 25,
            {{"node", 1}, {"start", 30}, {"end", 60}}, "background");
  Jn.append(JournalKind::Reallocate, 2, 26, {}, "stale-strategy",
            /*FlowId=*/1);
  // 200 > 150 misses its deadline.
  Jn.append(JournalKind::Commit, 2, 28,
            {{"variant", 1}, {"start", 40}, {"makespan", 200}},
            "reallocated", /*FlowId=*/1);
  Jn.append(JournalKind::Reject, 3, 30, {}, "inadmissible", /*FlowId=*/0);
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  EXPECT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  Jn.reset();
  return J;
}

TEST_F(ReportTest, ComputesJournalIndicators) {
  std::map<std::string, double> Ind =
      computeIndicators(syntheticJournal(), ParsedTimeSeries());
  EXPECT_DOUBLE_EQ(Ind["jobs_submitted"], 3.0);
  EXPECT_DOUBLE_EQ(Ind["jobs_committed"], 2.0);
  EXPECT_DOUBLE_EQ(Ind["jobs_rejected"], 1.0);
  EXPECT_DOUBLE_EQ(Ind["commit_rate"], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Ind["deadline_miss_rate"], 0.5);
  EXPECT_DOUBLE_EQ(Ind["env_changes"], 1.0);
  EXPECT_DOUBLE_EQ(Ind["reallocations"], 1.0);
  EXPECT_DOUBLE_EQ(Ind["reallocations_per_commit"], 0.5);
  // No time series joined: the utilization indicators stay absent.
  EXPECT_EQ(Ind.count("mean_node_busy"), 0u);
}

TEST_F(ReportTest, ExecutionCompletionOverridesTheCommitForecast) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 1, 0, {{"deadline", 100}, {"tasks", 1}},
            "S1", /*FlowId=*/0);
  // The commit forecasts a miss, but the actual execution finished in
  // time — the execution record wins.
  Jn.append(JournalKind::Commit, 1, 5,
            {{"variant", 0}, {"start", 10}, {"makespan", 120}}, "ok",
            /*FlowId=*/0);
  Jn.append(JournalKind::Execution, 1, 95, {{"completion", 95}, {"killed", 0}},
            "ok", /*FlowId=*/0);
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  std::map<std::string, double> Ind =
      computeIndicators(J, ParsedTimeSeries());
  EXPECT_DOUBLE_EQ(Ind["deadline_miss_rate"], 0.0);
}

TEST_F(ReportTest, UnjudgedDeadlineMissRateIsUndefinedAndFailsClosed) {
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 1, 0, {{"deadline", 100}, {"tasks", 1}},
            "S1", /*FlowId=*/0);
  Jn.append(JournalKind::Reject, 1, 2, {}, "inadmissible", /*FlowId=*/0);
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  std::map<std::string, double> Ind =
      computeIndicators(J, ParsedTimeSeries());
  // Nothing committed means nothing could be judged: the miss rate
  // stays undefined, not a reassuring 0.0.
  EXPECT_EQ(Ind.count("deadline_miss_rate"), 0u);

  std::vector<SloResult> Results = evaluateSlo(
      {{"deadline_miss_rate", /*IsUpper=*/true, 0.05}}, Ind);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_FALSE(Results[0].Pass); // undefined fails closed
  EXPECT_FALSE(Results[0].Known);
  std::string Report = renderRunReport(J, ParsedTimeSeries(), Results);
  EXPECT_NE(Report.find("| deadline miss rate | n/a |"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("SLO: **FAIL**"), std::string::npos) << Report;
}

TEST_F(ReportTest, JoinsUtilizationFromTheTimeSeries) {
  ParsedTimeSeries Ts;
  std::string Error;
  // Node 0 averages 0.5 busy + 0.1 background, node 1 zero.
  ASSERT_TRUE(parseTimeSeriesCsv("seq,tick,reason,series,node,flow,value\n"
                                 "0,10,sample,util_busy,0,,0.4\n"
                                 "0,10,sample,util_background,0,,0.2\n"
                                 "0,10,sample,util_busy,1,,0\n"
                                 "0,10,sample,util_background,1,,0\n"
                                 "1,20,sample,util_busy,0,,0.6\n"
                                 "1,20,sample,util_background,0,,0\n"
                                 "1,20,sample,util_busy,1,,0\n"
                                 "1,20,sample,util_background,1,,0\n",
                                 Ts, Error))
      << Error;
  std::map<std::string, double> Ind =
      computeIndicators(ParsedJournal(), Ts);
  EXPECT_DOUBLE_EQ(Ind["max_node_busy"], 0.6);
  EXPECT_DOUBLE_EQ(Ind["mean_node_busy"], 0.3);
}

//===----------------------------------------------------------------------===//
// SLO evaluation
//===----------------------------------------------------------------------===//

TEST_F(ReportTest, EvaluatesRulesAndFailsClosedOnUnknownIndicators) {
  std::map<std::string, double> Ind{{"commit_rate", 0.6},
                                    {"deadline_miss_rate", 0.1}};
  std::vector<SloRule> Rules{{"commit_rate", /*IsUpper=*/false, 0.5},
                             {"deadline_miss_rate", /*IsUpper=*/true, 0.05},
                             {"made_up_indicator", /*IsUpper=*/true, 1.0}};
  std::vector<SloResult> Results = evaluateSlo(Rules, Ind);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_TRUE(Results[0].Pass);
  EXPECT_DOUBLE_EQ(Results[0].Actual, 0.6);
  EXPECT_FALSE(Results[1].Pass); // 0.1 > 0.05
  EXPECT_TRUE(Results[1].Known);
  EXPECT_FALSE(Results[2].Pass); // unknown fails closed
  EXPECT_FALSE(Results[2].Known);
}

//===----------------------------------------------------------------------===//
// Markdown rendering
//===----------------------------------------------------------------------===//

TEST_F(ReportTest, ReportRendersOverviewFlowsAndSloVerdict) {
  ParsedJournal J = syntheticJournal();
  std::map<std::string, double> Ind =
      computeIndicators(J, ParsedTimeSeries());
  std::vector<SloRule> Rules{{"deadline_miss_rate", /*IsUpper=*/true, 0.05}};
  std::string Report =
      renderRunReport(J, ParsedTimeSeries(), evaluateSlo(Rules, Ind));
  EXPECT_EQ(Report.rfind("# CWS run report\n", 0), 0u);
  EXPECT_NE(Report.find("| jobs submitted | 3 |"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("| commit rate | 66.7% |"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("## Per-flow QoS"), std::string::npos);
  // The miss rate (50%) breaches the 5% rule.
  EXPECT_NE(Report.find("**BREACH**"), std::string::npos) << Report;
  EXPECT_NE(Report.find("SLO: **FAIL**"), std::string::npos) << Report;

  std::string Passing = renderRunReport(
      J, ParsedTimeSeries(),
      evaluateSlo({{"commit_rate", /*IsUpper=*/false, 0.5}}, Ind));
  EXPECT_NE(Passing.find("SLO: **PASS**"), std::string::npos) << Passing;
}

TEST_F(ReportTest, PerFlowTableIsSortedByFlowId) {
  // Arrivals recorded in flow order 2, 0, 1; the table must come out
  // ascending regardless of event order.
  Journal &Jn = Journal::global();
  Jn.enable(64);
  Jn.append(JournalKind::Arrival, 1, 0, {{"deadline", 9}, {"tasks", 1}},
            "S3", /*FlowId=*/2);
  Jn.append(JournalKind::Arrival, 2, 1, {{"deadline", 9}, {"tasks", 1}},
            "S1", /*FlowId=*/0);
  Jn.append(JournalKind::Arrival, 3, 2, {{"deadline", 9}, {"tasks", 1}},
            "S2", /*FlowId=*/1);
  Jn.disable();
  ParsedJournal J;
  std::string Error;
  ASSERT_TRUE(parseJournalJsonl(Jn.jsonl(), J, Error)) << Error;
  std::string Report = renderRunReport(J, ParsedTimeSeries(), {});
  size_t Flow0 = Report.find("\n| 0 | 1 |");
  size_t Flow1 = Report.find("\n| 1 | 1 |");
  size_t Flow2 = Report.find("\n| 2 | 1 |");
  ASSERT_NE(Flow0, std::string::npos) << Report;
  ASSERT_NE(Flow1, std::string::npos) << Report;
  ASSERT_NE(Flow2, std::string::npos) << Report;
  EXPECT_LT(Flow0, Flow1);
  EXPECT_LT(Flow1, Flow2);
}

TEST_F(ReportTest, UtilizationSectionRanksContendedNodes) {
  ParsedTimeSeries Ts;
  std::string Error;
  ASSERT_TRUE(parseTimeSeriesCsv("seq,tick,reason,series,node,flow,value\n"
                                 "0,10,sample,util_busy,0,,0.1\n"
                                 "0,10,sample,util_background,0,,0.1\n"
                                 "0,10,sample,util_busy,1,,0.5\n"
                                 "0,10,sample,util_background,1,,0.3\n"
                                 "0,10,sample,util_reserved,1,,0.9\n",
                                 Ts, Error))
      << Error;
  std::string Report = renderRunReport(ParsedJournal(), Ts, {});
  EXPECT_NE(Report.find("## Utilization"), std::string::npos) << Report;
  // Node 1 (80% contended) outranks node 0 (20%).
  size_t Node1 = Report.find("\n| 1 | 50.0% | 30.0% |");
  size_t Node0 = Report.find("\n| 0 | 10.0% | 10.0% |");
  ASSERT_NE(Node1, std::string::npos) << Report;
  ASSERT_NE(Node0, std::string::npos) << Report;
  EXPECT_LT(Node1, Node0);
}

} // namespace
