//===-- tests/test_grid.cpp - Node and Grid unit tests --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Grid.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(PerfGroup, ClassifiesPaperBands) {
  EXPECT_EQ(classifyPerf(1.0), PerfGroup::Fast);
  EXPECT_EQ(classifyPerf(0.66), PerfGroup::Fast);
  EXPECT_EQ(classifyPerf(0.5), PerfGroup::Medium);
  EXPECT_EQ(classifyPerf(0.35), PerfGroup::Medium);
  EXPECT_EQ(classifyPerf(0.33), PerfGroup::Slow);
  EXPECT_EQ(classifyPerf(0.1), PerfGroup::Slow);
}

TEST(PerfGroup, Names) {
  EXPECT_STREQ(perfGroupName(PerfGroup::Fast), "fast");
  EXPECT_STREQ(perfGroupName(PerfGroup::Medium), "medium");
  EXPECT_STREQ(perfGroupName(PerfGroup::Slow), "slow");
}

TEST(ProcessorNode, ExecTicksReproducesFig2Table) {
  // The Fig. 2a estimation table: reference times {2, 3, 1, 2, 1, 2}
  // scale exactly by node types with perf 1, 1/2, 1/3, 1/4.
  Grid G = Grid::makeFig2();
  const Tick Refs[] = {2, 3, 1, 2, 1, 2};
  const Tick Expected[4][6] = {
      {2, 3, 1, 2, 1, 2},
      {4, 6, 2, 4, 2, 4},
      {6, 9, 3, 6, 3, 6},
      {8, 12, 4, 8, 4, 8},
  };
  for (unsigned NodeType = 0; NodeType < 4; ++NodeType)
    for (unsigned TaskIdx = 0; TaskIdx < 6; ++TaskIdx)
      EXPECT_EQ(G.node(NodeType).execTicks(Refs[TaskIdx]),
                Expected[NodeType][TaskIdx])
          << "node type " << NodeType + 1 << " task P" << TaskIdx + 1;
}

TEST(ProcessorNode, ExecTicksZeroWork) {
  Grid G = Grid::makeFig2();
  EXPECT_EQ(G.node(2).execTicks(0), 0);
}

TEST(ProcessorNode, ExecTicksRoundsUp) {
  Grid G;
  unsigned N = G.addNode(0.6);
  // 3 / 0.6 = 5.0 exactly; 4 / 0.6 = 6.67 -> 7.
  EXPECT_EQ(G.node(N).execTicks(3), 5);
  EXPECT_EQ(G.node(N).execTicks(4), 7);
}

TEST(Grid, PriceGrowsWithPerformance) {
  Grid G = Grid::makeFig2();
  EXPECT_GT(G.node(0).pricePerTick(), G.node(1).pricePerTick());
  EXPECT_GT(G.node(1).pricePerTick(), G.node(2).pricePerTick());
  EXPECT_GT(G.node(2).pricePerTick(), G.node(3).pricePerTick());
}

TEST(Grid, FasterNodeCostsMoreForSameWork) {
  // Total price of a fixed amount of work must grow with performance
  // (the paper's premium for powerful resources).
  Grid G = Grid::makeFig2();
  Tick Ref = 12;
  double FastCost = G.node(0).pricePerTick() *
                    static_cast<double>(G.node(0).execTicks(Ref));
  double SlowCost = G.node(3).pricePerTick() *
                    static_cast<double>(G.node(3).execTicks(Ref));
  EXPECT_GT(FastCost, SlowCost);
}

TEST(Grid, MakeRandomRespectsConfig) {
  GridConfig Config;
  Prng Rng(123);
  for (int I = 0; I < 20; ++I) {
    Grid G = Grid::makeRandom(Config, Rng);
    EXPECT_GE(G.size(), Config.MinNodes);
    EXPECT_LE(G.size(), Config.MaxNodes);
    bool HasFast = false, HasSlow = false;
    for (const auto &N : G.nodes()) {
      EXPECT_GT(N.relPerf(), 0.0);
      EXPECT_LE(N.relPerf(), Config.FastHi + 1e-9);
      if (N.group() == PerfGroup::Fast)
        HasFast = true;
      if (N.group() == PerfGroup::Slow)
        HasSlow = true;
    }
    EXPECT_TRUE(HasFast);
    EXPECT_TRUE(HasSlow);
  }
}

TEST(Grid, IdsByPerfIsSortedFastestFirst) {
  GridConfig Config;
  Prng Rng(5);
  Grid G = Grid::makeRandom(Config, Rng);
  std::vector<unsigned> Ids = G.idsByPerf();
  ASSERT_EQ(Ids.size(), G.size());
  for (size_t I = 1; I < Ids.size(); ++I)
    EXPECT_GE(G.node(Ids[I - 1]).relPerf(), G.node(Ids[I]).relPerf());
}

TEST(Grid, GroupQueries) {
  Grid G;
  G.addNode(0.9);
  G.addNode(0.5);
  G.addNode(0.33);
  G.addNode(0.33);
  EXPECT_EQ(G.idsInGroup(PerfGroup::Fast).size(), 1u);
  EXPECT_EQ(G.idsInGroup(PerfGroup::Medium).size(), 1u);
  EXPECT_EQ(G.idsInGroup(PerfGroup::Slow).size(), 2u);
}

TEST(Grid, GroupUtilization) {
  Grid G;
  unsigned Fast = G.addNode(0.9);
  G.addNode(0.9);
  G.node(Fast).timeline().reserve(0, 50, 1);
  EXPECT_DOUBLE_EQ(G.groupUtilization(PerfGroup::Fast, 0, 100), 0.25);
  EXPECT_DOUBLE_EQ(G.groupUtilization(PerfGroup::Slow, 0, 100), 0.0);
}

TEST(Grid, ReleaseOwnerAcrossNodes) {
  Grid G;
  G.addNode(1.0);
  G.addNode(0.5);
  G.node(0).timeline().reserve(0, 10, 42);
  G.node(1).timeline().reserve(5, 15, 42);
  G.node(1).timeline().reserve(20, 25, 7);
  G.releaseOwner(42);
  EXPECT_TRUE(G.node(0).timeline().isFree(0, 10));
  EXPECT_TRUE(G.node(1).timeline().isFree(5, 15));
  EXPECT_FALSE(G.node(1).timeline().isFree(20, 25));
}

TEST(Grid, ClearTimelines) {
  Grid G;
  G.addNode(1.0);
  G.node(0).timeline().reserve(0, 10, 1);
  G.clearTimelines();
  EXPECT_TRUE(G.node(0).timeline().isFree(0, 10));
}

TEST(Grid, CopyIsIndependent) {
  Grid G;
  G.addNode(1.0);
  Grid Copy = G;
  Copy.node(0).timeline().reserve(0, 10, 1);
  EXPECT_TRUE(G.node(0).timeline().isFree(0, 10));
  EXPECT_FALSE(Copy.node(0).timeline().isFree(0, 10));
}
