//===-- tests/test_coarsen.cpp - Granularity transformation tests ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Coarsen.h"
#include "job/Generator.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace cws;

namespace {

Tick totalRef(const Job &J) { return J.totalRefTicks(); }

double totalVolume(const Job &J) {
  double Sum = 0.0;
  for (const auto &T : J.tasks())
    Sum += T.Volume;
  return Sum;
}

} // namespace

TEST(Coarsen, ChainContractsToOneTask) {
  Job J = makeChainJob();
  CoarsenConfig Config;
  Config.MaxMergedRef = 0; // Unbounded.
  CoarseJob C = coarsenJob(J, Config);
  EXPECT_EQ(C.Coarse.taskCount(), 1u);
  EXPECT_EQ(C.Coarse.edgeCount(), 0u);
  EXPECT_EQ(C.Coarse.task(0).RefTicks, 7);
  EXPECT_DOUBLE_EQ(C.Coarse.task(0).Volume, 70.0);
  ASSERT_EQ(C.Members.size(), 1u);
  EXPECT_EQ(C.Members[0].size(), 3u);
}

TEST(Coarsen, BoundStopsOversizedMerges) {
  Job J = makeChainJob(); // Refs 2, 3, 2.
  CoarsenConfig Config;
  Config.MaxMergedRef = 5;
  CoarseJob C = coarsenJob(J, Config);
  // 2+3 = 5 merges; adding the last 2 would exceed 5.
  EXPECT_EQ(C.Coarse.taskCount(), 2u);
  EXPECT_EQ(totalRef(C.Coarse), 7);
}

TEST(Coarsen, DiamondMergesSiblingsThenChain) {
  Job J = makeDiamondJob();
  CoarsenConfig Config;
  Config.MaxMergedRef = 0;
  CoarseJob C = coarsenJob(J, Config);
  // B and C are siblings (same preds/succs); after their merge the job
  // is the chain A -> BC -> D which contracts fully.
  EXPECT_EQ(C.Coarse.taskCount(), 1u);
  EXPECT_EQ(totalRef(C.Coarse), totalRef(J));
  EXPECT_DOUBLE_EQ(totalVolume(C.Coarse), totalVolume(J));
}

TEST(Coarsen, SiblingRoundsZeroKeepsParallelism) {
  Job J = makeDiamondJob();
  CoarsenConfig Config;
  Config.SiblingRounds = 0;
  Config.MaxMergedRef = 0;
  CoarseJob C = coarsenJob(J, Config);
  // No linear runs exist in a diamond, so nothing merges.
  EXPECT_EQ(C.Coarse.taskCount(), 4u);
}

TEST(Coarsen, PreservesWorkAndVolume) {
  JobGenerator Gen(WorkloadConfig{}, 404);
  for (int I = 0; I < 30; ++I) {
    Job J = Gen.next(0);
    CoarseJob C = coarsenJob(J);
    EXPECT_EQ(totalRef(C.Coarse), totalRef(J));
    EXPECT_NEAR(totalVolume(C.Coarse), totalVolume(J), 1e-9);
    EXPECT_LE(C.Coarse.taskCount(), J.taskCount());
    EXPECT_TRUE(C.Coarse.isAcyclic());
    EXPECT_EQ(C.Coarse.deadline(), J.deadline());
    EXPECT_EQ(C.Coarse.release(), J.release());
    EXPECT_EQ(C.Coarse.id(), J.id());
  }
}

TEST(Coarsen, MembersPartitionOriginalTasks) {
  JobGenerator Gen(WorkloadConfig{}, 405);
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    CoarseJob C = coarsenJob(J);
    std::vector<bool> Seen(J.taskCount(), false);
    for (const auto &Group : C.Members)
      for (unsigned Member : Group) {
        ASSERT_LT(Member, J.taskCount());
        EXPECT_FALSE(Seen[Member]) << "task absorbed twice";
        Seen[Member] = true;
      }
    for (bool S : Seen)
      EXPECT_TRUE(S);
  }
}

TEST(Coarsen, NeverLengthensBeyondSerialWork) {
  // Critical path of the coarse job is bounded by the total work plus
  // all transfers (full serialization).
  JobGenerator Gen(WorkloadConfig{}, 406);
  for (int I = 0; I < 20; ++I) {
    Job J = Gen.next(0);
    CoarseJob C = coarsenJob(J);
    Tick TransferSum = 0;
    for (const auto &E : J.edges())
      TransferSum += E.BaseTransfer;
    EXPECT_LE(C.Coarse.criticalPathRefTicks(),
              J.totalRefTicks() + TransferSum);
    EXPECT_GE(C.Coarse.criticalPathRefTicks(), J.criticalPathRefTicks() > 0
                                                   ? J.task(0).RefTicks
                                                   : 0);
  }
}

TEST(Coarsen, Fig2JobCoarsens) {
  Job J = makeFig2Job();
  CoarsenConfig Config;
  Config.MaxMergedRef = 0;
  CoarseJob C = coarsenJob(J, Config);
  // P2/P3 and P4/P5 are sibling pairs; with unbounded merges the whole
  // job collapses into a single chain and then one task.
  EXPECT_LT(C.Coarse.taskCount(), J.taskCount());
  EXPECT_EQ(totalRef(C.Coarse), 11);
}

TEST(Coarsen, EmptyJob) {
  Job J;
  CoarseJob C = coarsenJob(J);
  EXPECT_EQ(C.Coarse.taskCount(), 0u);
}

TEST(Coarsen, SingleTaskJob) {
  Job J;
  J.addTask("only", 3, 30);
  CoarseJob C = coarsenJob(J);
  EXPECT_EQ(C.Coarse.taskCount(), 1u);
  EXPECT_EQ(C.Coarse.task(0).RefTicks, 3);
}
