//===-- tests/test_stats.cpp - Statistics unit tests ----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace cws;

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
}

TEST(OnlineStats, MeanAndExtrema) {
  OnlineStats S;
  for (double V : {1.0, 2.0, 3.0, 4.0})
    S.add(V);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 4.0);
  EXPECT_DOUBLE_EQ(S.sum(), 10.0);
}

TEST(OnlineStats, VarianceMatchesDirectFormula) {
  OnlineStats S;
  std::vector<double> Values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double V : Values)
    S.add(V);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(S.stddev() * S.stddev(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, SingleValueHasZeroVariance) {
  OnlineStats S;
  S.add(3.5);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsBulk) {
  OnlineStats A, B, Bulk;
  for (int I = 0; I < 10; ++I) {
    A.add(I * 1.5);
    Bulk.add(I * 1.5);
  }
  for (int I = 10; I < 25; ++I) {
    B.add(I * 0.5 - 3);
    Bulk.add(I * 0.5 - 3);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Bulk.count());
  EXPECT_NEAR(A.mean(), Bulk.mean(), 1e-12);
  EXPECT_NEAR(A.variance(), Bulk.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), Bulk.min());
  EXPECT_DOUBLE_EQ(A.max(), Bulk.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats A, Empty;
  A.add(1.0);
  A.add(2.0);
  OnlineStats Before = A;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), Before.mean());
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 1.5);
}

TEST(Histogram, BinsAndFractions) {
  Histogram H(0.0, 10.0, 5);
  for (double V : {0.5, 1.5, 2.5, 3.5, 9.5})
    H.add(V);
  EXPECT_EQ(H.total(), 5u);
  EXPECT_EQ(H.binCount(0), 2u); // 0.5, 1.5
  EXPECT_EQ(H.binCount(1), 2u); // 2.5, 3.5
  EXPECT_EQ(H.binCount(4), 1u); // 9.5
  EXPECT_DOUBLE_EQ(H.fraction(0), 0.4);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram H(0.0, 1.0, 2);
  H.add(-5.0);
  H.add(42.0);
  EXPECT_EQ(H.binCount(0), 1u);
  EXPECT_EQ(H.binCount(1), 1u);
}

TEST(Histogram, BinBoundaries) {
  Histogram H(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(H.binLo(0), 0.0);
  EXPECT_DOUBLE_EQ(H.binHi(0), 2.0);
  EXPECT_DOUBLE_EQ(H.binLo(4), 8.0);
  EXPECT_DOUBLE_EQ(H.binHi(4), 10.0);
}

TEST(Quantile, EmptyAndSingle) {
  // No samples -> no quantiles: NaN (reports render "n/a", SLO rules
  // fail closed), never a silent 0.
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(quantile({}, 0.0)));
  EXPECT_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> V{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> V{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.5);
}

TEST(RatioCounter, Percent) {
  RatioCounter R;
  EXPECT_EQ(R.percent(), 0.0);
  R.add(true);
  R.add(false);
  R.add(true);
  R.add(true);
  EXPECT_EQ(R.hits(), 3u);
  EXPECT_EQ(R.total(), 4u);
  EXPECT_DOUBLE_EQ(R.percent(), 75.0);
}
