//===-- tests/test_flow.cpp - Job-flow level tests ------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "flow/BackgroundLoad.h"
#include "flow/JobManager.h"
#include "flow/Metascheduler.h"
#include "flow/VirtualOrganization.h"
#include "metrics/QoS.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace cws;

namespace {

struct FlowFixture {
  Grid Env = Grid::makeFig2();
  Network Net;
  Economy Econ;
  unsigned User;
  StrategyConfig Config;
  Metascheduler Meta{Env, Net, Econ, Config};
  JobManager Manager{Meta, 0};

  FlowFixture() { User = Econ.addUser(1e9); }
};

} // namespace

TEST(Metascheduler, OwnerIdsAreDisjointFromBackground) {
  EXPECT_GT(Metascheduler::ownerOf(0), BackgroundOwner);
  EXPECT_NE(Metascheduler::ownerOf(3), Metascheduler::ownerOf(4));
}

TEST(Metascheduler, CommitReservesAndCharges) {
  FlowFixture F;
  Job J = makeFig2Job();
  Strategy S = F.Meta.buildStrategy(J, 0);
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);
  EXPECT_TRUE(F.Meta.commit(J, *Best, F.User));
  EXPECT_GT(F.Econ.spent(F.User), 0.0);
  EXPECT_FALSE(Best->Result.Dist.fitsGrid(F.Env));
  EXPECT_TRUE(
      Best->Result.Dist.fitsGrid(F.Env, Metascheduler::ownerOf(J.id())));
}

TEST(Metascheduler, CommitFailsWithoutQuota) {
  Grid Env = Grid::makeFig2();
  Network Net;
  Economy Econ;
  unsigned Broke = Econ.addUser(0.01);
  Metascheduler Meta(Env, Net, Econ, StrategyConfig{});
  Job J = makeFig2Job();
  Strategy S = Meta.buildStrategy(J, 0);
  const ScheduleVariant *Best = S.bestByCost();
  ASSERT_NE(Best, nullptr);
  EXPECT_FALSE(Meta.commit(J, *Best, Broke));
  // Nothing reserved, nothing charged.
  EXPECT_DOUBLE_EQ(Econ.spent(Broke), 0.0);
  EXPECT_TRUE(Best->Result.Dist.fitsGrid(Env));
}

TEST(Metascheduler, ReallocateReleasesOldReservations) {
  FlowFixture F;
  Job J = makeFig2Job();
  Strategy S = F.Meta.buildStrategy(J, 0);
  ASSERT_TRUE(F.Meta.commit(J, *S.bestByCost(), F.User));
  ReallocationResult Fresh = F.Meta.reallocate(J, S, F.User, 5);
  EXPECT_TRUE(Fresh.admissible());
  // Nothing was broken, so the repair stages decline and the rebuild
  // serves the request.
  EXPECT_EQ(Fresh.Stage, RepairStage::Rebuild);
  // Old reservations are gone.
  for (const auto &N : F.Env.nodes())
    for (const auto &I : N.timeline().intervals())
      EXPECT_NE(I.Owner, Metascheduler::ownerOf(J.id()));
}

TEST(JobManager, AdmissibleArrivalIsTracked) {
  FlowFixture F;
  EXPECT_TRUE(F.Manager.onArrival(makeFig2Job(), 0));
  EXPECT_EQ(F.Manager.activeCount(), 1u);
  ASSERT_EQ(F.Manager.stats().size(), 1u);
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_TRUE(St.Admissible);
  EXPECT_FALSE(St.Committed);
  EXPECT_EQ(St.Deadline, 20);
}

TEST(JobManager, InadmissibleArrivalRetiresImmediately) {
  FlowFixture F;
  Job J = makeFig2Job();
  J.setDeadline(4);
  EXPECT_FALSE(F.Manager.onArrival(J, 0));
  EXPECT_EQ(F.Manager.activeCount(), 0u);
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_FALSE(St.Admissible);
  EXPECT_TRUE(St.TtlClosed);
  EXPECT_EQ(St.Ttl, 0);
}

TEST(JobManager, NegotiationCommitsAndCompletes) {
  FlowFixture F;
  Job J = makeFig2Job();
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  std::optional<Tick> Completion = F.Manager.onNegotiation(J.id(), 3);
  ASSERT_TRUE(Completion.has_value());
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_TRUE(St.Committed);
  EXPECT_EQ(St.Completion, *Completion);
  EXPECT_GT(St.Cost, 0.0);
  EXPECT_GT(St.Cf, 0);
  F.Manager.onCompletion(J.id(), *Completion);
  EXPECT_EQ(F.Manager.activeCount(), 0u);
  EXPECT_TRUE(F.Manager.stats()[0].TtlClosed);
  EXPECT_EQ(F.Manager.stats()[0].Ttl, *Completion);
}

TEST(JobManager, StaleStrategyRecoversByShifting) {
  FlowFixture F;
  Job J = makeFig2Job();
  J.setDeadline(60); // Roomy deadline so a shifted schedule still fits.
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  // Invalidate every variant by filling all nodes during the window the
  // variants planned in.
  for (auto &N : F.Env.nodes())
    N.timeline().reserve(0, 25, BackgroundOwner);
  std::optional<Tick> Completion = F.Manager.onNegotiation(J.id(), 2);
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_TRUE(St.TtlClosed);
  EXPECT_EQ(St.Ttl, 2);
  ASSERT_TRUE(Completion.has_value());
  // The cheapest recovery is shifting a stale supporting schedule past
  // the blockade — no reallocation needed.
  EXPECT_TRUE(St.ShiftRecovered);
  EXPECT_FALSE(St.Reallocated);
  EXPECT_TRUE(St.Switched);
  EXPECT_GE(St.CommitShift, 25 - 18); // Makespans are at most 18.
  EXPECT_GE(St.ActualStart, 25);
  EXPECT_LE(St.Completion, 60);
}

TEST(JobManager, RejectedWhenNeitherShiftNorReallocationFits) {
  FlowFixture F;
  Job J = makeFig2Job();
  J.setDeadline(60);
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  // Blockade so long that neither a shifted schedule nor a fresh one
  // can complete by the deadline.
  for (auto &N : F.Env.nodes())
    N.timeline().reserve(0, 55, BackgroundOwner);
  std::optional<Tick> Completion = F.Manager.onNegotiation(J.id(), 2);
  EXPECT_FALSE(Completion.has_value());
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_TRUE(St.Rejected);
  EXPECT_FALSE(St.Committed);
  EXPECT_TRUE(St.TtlClosed);
}

TEST(JobManager, EnvironmentChangeClosesTtl) {
  FlowFixture F;
  Job J = makeFig2Job();
  ASSERT_TRUE(F.Manager.onArrival(J, 0));
  // Saturate the grid: no variant fits anymore.
  for (auto &N : F.Env.nodes())
    N.timeline().reserve(0, 100, BackgroundOwner);
  F.Manager.onEnvironmentChange(7);
  const VoJobStats &St = F.Manager.stats()[0];
  EXPECT_TRUE(St.TtlClosed);
  EXPECT_EQ(St.Ttl, 7);
}

TEST(JobManager, TtlSurvivesWhileVariantsFit) {
  FlowFixture F;
  ASSERT_TRUE(F.Manager.onArrival(makeFig2Job(), 0));
  F.Manager.onEnvironmentChange(5); // Nothing changed: still fits.
  EXPECT_FALSE(F.Manager.stats()[0].TtlClosed);
}

TEST(BackgroundLoad, GeneratesReservationsAndNotifies) {
  Grid Env = Grid::makeFig2();
  Simulator Sim;
  BackgroundConfig Config;
  Config.MeanGapFast = 5;
  Config.MeanGapMedium = 5;
  Config.MeanGapSlow = 5;
  BackgroundLoad Load(Env, Sim, Config, Prng(1));
  size_t Notifications = 0;
  Load.setObserver([&](Tick) { ++Notifications; });
  Load.start(200);
  Sim.run();
  EXPECT_GT(Load.placed(), 0u);
  EXPECT_EQ(Notifications, Load.placed());
  size_t Reserved = 0;
  for (const auto &N : Env.nodes())
    for (const auto &I : N.timeline().intervals()) {
      EXPECT_EQ(I.Owner, BackgroundOwner);
      ++Reserved;
    }
  EXPECT_EQ(Reserved, Load.placed());
}

TEST(BackgroundLoad, IsDeterministic) {
  auto Run = [] {
    Grid Env = Grid::makeFig2();
    Simulator Sim;
    BackgroundLoad Load(Env, Sim, BackgroundConfig{}, Prng(9));
    Load.start(300);
    Sim.run();
    return Load.placed();
  };
  EXPECT_EQ(Run(), Run());
}

TEST(VirtualOrganization, SmallRunProducesConsistentStats) {
  VoConfig Config;
  Config.JobCount = 25;
  VoRunResult R = runVirtualOrganization(Config, StrategyKind::S1, 7);
  EXPECT_EQ(R.Jobs.size(), 25u);
  EXPECT_GT(R.BackgroundJobs, 0u);
  EXPECT_GT(R.Horizon, 0);
  for (const auto &St : R.Jobs) {
    if (St.Committed) {
      EXPECT_TRUE(St.Admissible);
      EXPECT_FALSE(St.Rejected);
      EXPECT_GE(St.ActualStart, St.Arrival);
      EXPECT_GT(St.Completion, St.ActualStart);
      EXPECT_LE(St.Completion, St.Deadline);
      EXPECT_GT(St.Cost, 0.0);
    }
    if (St.TtlClosed)
      EXPECT_GE(St.Ttl, 0);
  }
}

TEST(VirtualOrganization, SameSeedSameOutcome) {
  VoConfig Config;
  Config.JobCount = 15;
  VoRunResult A = runVirtualOrganization(Config, StrategyKind::S2, 13);
  VoRunResult B = runVirtualOrganization(Config, StrategyKind::S2, 13);
  ASSERT_EQ(A.Jobs.size(), B.Jobs.size());
  for (size_t I = 0; I < A.Jobs.size(); ++I) {
    EXPECT_EQ(A.Jobs[I].Committed, B.Jobs[I].Committed);
    EXPECT_EQ(A.Jobs[I].Completion, B.Jobs[I].Completion);
    EXPECT_EQ(A.Jobs[I].Ttl, B.Jobs[I].Ttl);
  }
  EXPECT_EQ(A.BackgroundJobs, B.BackgroundJobs);
}

TEST(MultiFlowVo, DealsJobsRoundRobin) {
  VoConfig Config;
  Config.JobCount = 30;
  std::vector<VoRunResult> Results = runMultiFlowVo(
      Config, {StrategyKind::S1, StrategyKind::S2, StrategyKind::S3}, 5);
  ASSERT_EQ(Results.size(), 3u);
  for (const auto &Run : Results)
    EXPECT_EQ(Run.Jobs.size(), 10u);
  // Job ids are disjoint across flows.
  std::set<unsigned> Seen;
  for (const auto &Run : Results)
    for (const auto &St : Run.Jobs)
      EXPECT_TRUE(Seen.insert(St.JobId).second);
  EXPECT_EQ(Seen.size(), 30u);
}

TEST(MultiFlowVo, SingleFlowMatchesRunVirtualOrganization) {
  VoConfig Config;
  Config.JobCount = 20;
  VoRunResult Single = runVirtualOrganization(Config, StrategyKind::S2, 9);
  std::vector<VoRunResult> Multi =
      runMultiFlowVo(Config, {StrategyKind::S2}, 9);
  ASSERT_EQ(Multi.size(), 1u);
  ASSERT_EQ(Single.Jobs.size(), Multi[0].Jobs.size());
  for (size_t I = 0; I < Single.Jobs.size(); ++I) {
    EXPECT_EQ(Single.Jobs[I].Committed, Multi[0].Jobs[I].Committed);
    EXPECT_EQ(Single.Jobs[I].Completion, Multi[0].Jobs[I].Completion);
    EXPECT_EQ(Single.Jobs[I].Ttl, Multi[0].Jobs[I].Ttl);
  }
}

TEST(MultiFlowVo, FlowsShareTheEnvironment) {
  VoConfig Config;
  Config.JobCount = 40;
  std::vector<VoRunResult> Results = runMultiFlowVo(
      Config, {StrategyKind::S1, StrategyKind::S2}, 17);
  // Both flows committed work, and the shared horizon is identical.
  EXPECT_EQ(Results[0].Horizon, Results[1].Horizon);
  EXPECT_EQ(Results[0].BackgroundJobs, Results[1].BackgroundJobs);
  double Load0 = Results[0].JobLoadPercent[0] +
                 Results[0].JobLoadPercent[1] + Results[0].JobLoadPercent[2];
  double Load1 = Results[1].JobLoadPercent[0] +
                 Results[1].JobLoadPercent[1] + Results[1].JobLoadPercent[2];
  EXPECT_GT(Load0, 0.0);
  EXPECT_GT(Load1, 0.0);
}

TEST(JobManager, ShiftRecoveryStatsFlowIntoAggregates) {
  VoConfig Config = VoConfig{};
  Config.JobCount = 60;
  VoRunResult Run = runVirtualOrganization(Config, StrategyKind::S1, 23);
  VoAggregates A = summarizeVo(Run);
  // Consistency: shift-recovered jobs are committed and switched.
  for (const auto &St : Run.Jobs)
    if (St.ShiftRecovered) {
      EXPECT_TRUE(St.Committed);
      EXPECT_TRUE(St.Switched);
      EXPECT_GT(St.CommitShift, 0);
    }
  EXPECT_GE(A.ShiftRecoveredPercent, 0.0);
}

TEST(VirtualOrganization, ExecutionOptInRecordsActuals) {
  VoConfig Config;
  Config.JobCount = 30;
  Config.ExecuteWithDeviations = true;
  Config.Execution.FactorLo = 0.6;
  Config.Execution.FactorHi = 1.0; // Never overruns: no kills possible.
  VoRunResult R = runVirtualOrganization(Config, StrategyKind::S1, 31);
  size_t Executed = 0;
  for (const auto &St : R.Jobs) {
    if (!St.Committed)
      continue;
    ++Executed;
    EXPECT_FALSE(St.ExecutionKilled);
    EXPECT_GT(St.ActualCompletion, 0);
    EXPECT_LE(St.ActualCompletion, St.Completion);
  }
  EXPECT_GT(Executed, 0u);
}

TEST(VirtualOrganization, ExecutionOffLeavesActualsZero) {
  VoConfig Config;
  Config.JobCount = 15;
  VoRunResult R = runVirtualOrganization(Config, StrategyKind::S1, 31);
  for (const auto &St : R.Jobs) {
    EXPECT_EQ(St.ActualCompletion, 0);
    EXPECT_FALSE(St.ExecutionKilled);
  }
}

TEST(VirtualOrganization, ExecutionIsDeterministic) {
  VoConfig Config;
  Config.JobCount = 15;
  Config.ExecuteWithDeviations = true;
  VoRunResult A = runVirtualOrganization(Config, StrategyKind::S2, 33);
  VoRunResult B = runVirtualOrganization(Config, StrategyKind::S2, 33);
  for (size_t I = 0; I < A.Jobs.size(); ++I)
    EXPECT_EQ(A.Jobs[I].ActualCompletion, B.Jobs[I].ActualCompletion);
}

TEST(VirtualOrganization, LoadPercentagesAreSane) {
  VoConfig Config;
  Config.JobCount = 25;
  VoRunResult R = runVirtualOrganization(Config, StrategyKind::S1, 3);
  for (size_t G = 0; G < 3; ++G) {
    EXPECT_GE(R.JobLoadPercent[G], 0.0);
    EXPECT_LE(R.JobLoadPercent[G], 100.0);
    EXPECT_GE(R.BackgroundLoadPercent[G], 0.0);
    EXPECT_LE(R.BackgroundLoadPercent[G], 100.0);
  }
}
