//===-- tests/test_edge_cases.cpp - Cross-module boundary cases -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary conditions that individual module suites do not cover:
/// degenerate jobs and grids flowing through the whole pipeline, exact
/// deadline fits, zero transfers, single-node environments and extreme
/// configurations.
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "batch/Gang.h"
#include "core/Strategy.h"
#include "flow/Execution.h"
#include "job/Coarsen.h"
#include "job/Generator.h"
#include "lang/Parser.h"
#include "resource/Network.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace cws;

TEST(EdgeCases, SingleTaskSingleNodePipeline) {
  Job J;
  J.addTask("only", 4, 40);
  J.setDeadline(100);
  Grid Env;
  Env.addNode(0.5);
  Network Net;
  Strategy S = Strategy::build(J, Env, Net, StrategyConfig{}, 42);
  ASSERT_TRUE(S.admissible());
  const ScheduleVariant *Best = S.bestByCost();
  EXPECT_EQ(Best->Result.Dist.find(0)->End, 8); // ceil(4 / 0.5)
}

TEST(EdgeCases, DeadlineExactlyAtMakespanIsFeasible) {
  Job J;
  J.addTask("t", 4, 40);
  Grid Env;
  Env.addNode(1.0);
  Network Net;
  J.setDeadline(4); // Exactly the execution time.
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  EXPECT_TRUE(R.Feasible);
  J.setDeadline(3);
  EXPECT_FALSE(scheduleJob(J, Env, Net, SchedulerConfig{}, 1).Feasible);
}

TEST(EdgeCases, ZeroTransferEdgesStillOrderTasks) {
  Job J;
  unsigned A = J.addTask("a", 2, 20);
  unsigned B = J.addTask("b", 2, 20);
  J.addEdge(A, B, 0);
  J.setDeadline(100);
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  EXPECT_GE(R.Dist.find(B)->Start, R.Dist.find(A)->End);
  EXPECT_EQ(J.criticalPathRefTicks(), 4);
}

TEST(EdgeCases, WideFanOutSchedulesEveryBranch) {
  Job J;
  unsigned Root = J.addTask("root", 1, 10);
  for (int I = 0; I < 12; ++I)
    J.addEdge(Root, J.addTask("leaf" + std::to_string(I), 2, 20), 1);
  J.setDeadline(300);
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(J, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  expectValidDistribution(J, R.Dist);
  // 13 phases: the root chain plus one per remaining leaf.
  EXPECT_EQ(R.Phases.size(), 12u);
}

TEST(EdgeCases, HomogeneousGridHasOneLevel) {
  Grid Env;
  for (int I = 0; I < 4; ++I)
    Env.addNode(0.5);
  Network Net;
  Job J = makeChainJob(200);
  Strategy S = Strategy::build(J, Env, Net, StrategyConfig{}, 42);
  EXPECT_EQ(S.levels().size(), 1u);
  EXPECT_TRUE(S.admissible());
}

TEST(EdgeCases, CoarsenedSingleChainExecutes) {
  Job J = makeChainJob(200);
  CoarsenConfig CC;
  CC.MaxMergedRef = 0;
  Job Coarse = coarsenJob(J, CC).Coarse;
  ASSERT_EQ(Coarse.taskCount(), 1u);
  Grid Env = makeSmallGrid();
  Network Net;
  ScheduleResult R = scheduleJob(Coarse, Env, Net, SchedulerConfig{}, 1);
  ASSERT_TRUE(R.Feasible);
  ASSERT_TRUE(R.Dist.commit(Env, 1));
  Prng Rng(5);
  ExecutionConfig EC;
  EC.FactorLo = EC.FactorHi = 1.0;
  ExecutionResult E = executeDistribution(Coarse, R.Dist, Env, Rng, EC);
  EXPECT_TRUE(E.Succeeded);
}

TEST(EdgeCases, TimelineAdjacentReservationsAreDense) {
  Timeline T;
  for (Tick I = 0; I < 50; ++I)
    ASSERT_TRUE(T.reserve(I * 2, I * 2 + 2, 1 + (I % 3)));
  EXPECT_EQ(T.busyTicks(0, 100), 100);
  EXPECT_EQ(T.earliestFit(0, 1), 100);
}

TEST(EdgeCases, MinimalWorkloadConfigGenerates) {
  WorkloadConfig W;
  W.MinTasks = 2;
  W.MaxTasks = 2;
  W.MaxWidth = 1; // Pure chains.
  JobGenerator Gen(W, 3);
  for (int I = 0; I < 10; ++I) {
    Job J = Gen.next(0);
    EXPECT_EQ(J.taskCount(), 2u);
    EXPECT_EQ(J.sources().size(), 1u);
    EXPECT_EQ(J.sinks().size(), 1u);
  }
}

TEST(EdgeCases, TwoLevelQuantizationKeepsExtremes) {
  Grid Env;
  Env.addNode(1.0);
  Env.addNode(0.7);
  Env.addNode(0.5);
  Env.addNode(0.33);
  Network Net;
  StrategyConfig Config;
  Config.MaxLevels = 2;
  Strategy S = Strategy::build(makeChainJob(300), Env, Net, Config, 42);
  ASSERT_EQ(S.levels().size(), 2u);
  EXPECT_DOUBLE_EQ(S.levels()[0], 1.0);
  EXPECT_DOUBLE_EQ(S.levels()[1], 0.33);
}

TEST(EdgeCases, DescriptionWithOnlyNodesIsUsableAsEnvironment) {
  ParseResult R = parseJobDescription("node perf 1.0\nnode perf 0.5");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.HasEnv);
  EXPECT_FALSE(R.HasJob);
  EXPECT_EQ(R.TheJob.taskCount(), 0u);
}

TEST(EdgeCases, LargeVolumesDoNotOverflowCf) {
  Distribution D;
  D.add({0, 0, 0, 1, 0.0});
  Job J;
  J.addTask("huge", 1, 1e15);
  EXPECT_EQ(D.costFunction(J), static_cast<int64_t>(1e15));
}

TEST(EdgeCases, NetworkLatencyOnlyTransfer) {
  NetworkConfig Config;
  Config.Latency = 5;
  Network Net(Config);
  // Zero-volume transfer between distinct nodes still pays latency.
  EXPECT_EQ(Net.transferTicks(0, 0, 1), 5);
  EXPECT_EQ(Net.transferTicks(0, 1, 1), 0);
}

TEST(EdgeCases, StrategyOnFullyLoadedGridIsInadmissibleNotCrashing) {
  Grid Env = makeSmallGrid();
  for (auto &N : Env.nodes())
    N.timeline().reserve(0, 100000, 9);
  Network Net;
  Job J = makeChainJob(50);
  Strategy S = Strategy::build(J, Env, Net, StrategyConfig{}, 42);
  EXPECT_FALSE(S.admissible());
  EXPECT_EQ(S.bestFitting(Env), nullptr);
}

TEST(EdgeCases, GangWithQuantumLargerThanJobs) {
  GangConfig Config;
  Config.NodeCount = 4;
  Config.Quantum = 100;
  auto Out = runGang(Config, {{0, 0, 2, 5, 5}, {1, 3, 2, 5, 5}});
  EXPECT_EQ(Out[0].Finish, 5);
  EXPECT_TRUE(Out[1].Started);
}

TEST(EdgeCases, ClusterSingleNodeSerializesEverything) {
  ClusterConfig Config;
  Config.NodeCount = 1;
  std::vector<BatchJob> Jobs{{0, 0, 1, 5, 5}, {1, 0, 1, 5, 5},
                             {2, 0, 1, 5, 5}};
  auto Out = runCluster(Config, Jobs);
  EXPECT_EQ(Out[0].Start, 0);
  EXPECT_EQ(Out[1].Start, 5);
  EXPECT_EQ(Out[2].Start, 10);
}
