file(REMOVE_RECURSE
  "CMakeFiles/test_shapes.dir/test_shapes.cpp.o"
  "CMakeFiles/test_shapes.dir/test_shapes.cpp.o.d"
  "test_shapes"
  "test_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
