file(REMOVE_RECURSE
  "CMakeFiles/test_chain_allocator.dir/test_chain_allocator.cpp.o"
  "CMakeFiles/test_chain_allocator.dir/test_chain_allocator.cpp.o.d"
  "test_chain_allocator"
  "test_chain_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
