# Empty dependencies file for test_chain_allocator.
# This may be replaced when dependencies are built.
