file(REMOVE_RECURSE
  "CMakeFiles/test_dispatch.dir/test_dispatch.cpp.o"
  "CMakeFiles/test_dispatch.dir/test_dispatch.cpp.o.d"
  "test_dispatch"
  "test_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
