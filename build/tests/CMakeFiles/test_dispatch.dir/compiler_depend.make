# Empty compiler generated dependencies file for test_dispatch.
# This may be replaced when dependencies are built.
