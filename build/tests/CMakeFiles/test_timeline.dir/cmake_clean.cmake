file(REMOVE_RECURSE
  "CMakeFiles/test_timeline.dir/test_timeline.cpp.o"
  "CMakeFiles/test_timeline.dir/test_timeline.cpp.o.d"
  "test_timeline"
  "test_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
