file(REMOVE_RECURSE
  "CMakeFiles/test_datapolicy.dir/test_datapolicy.cpp.o"
  "CMakeFiles/test_datapolicy.dir/test_datapolicy.cpp.o.d"
  "test_datapolicy"
  "test_datapolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
