# Empty dependencies file for test_datapolicy.
# This may be replaced when dependencies are built.
