# Empty dependencies file for test_execution.
# This may be replaced when dependencies are built.
