file(REMOVE_RECURSE
  "CMakeFiles/test_execution.dir/test_execution.cpp.o"
  "CMakeFiles/test_execution.dir/test_execution.cpp.o.d"
  "test_execution"
  "test_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
