file(REMOVE_RECURSE
  "CMakeFiles/test_generator.dir/test_generator.cpp.o"
  "CMakeFiles/test_generator.dir/test_generator.cpp.o.d"
  "test_generator"
  "test_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
