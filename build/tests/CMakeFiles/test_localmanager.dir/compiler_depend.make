# Empty compiler generated dependencies file for test_localmanager.
# This may be replaced when dependencies are built.
