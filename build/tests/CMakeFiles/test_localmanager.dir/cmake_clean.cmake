file(REMOVE_RECURSE
  "CMakeFiles/test_localmanager.dir/test_localmanager.cpp.o"
  "CMakeFiles/test_localmanager.dir/test_localmanager.cpp.o.d"
  "test_localmanager"
  "test_localmanager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localmanager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
