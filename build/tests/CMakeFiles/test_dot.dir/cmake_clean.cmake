file(REMOVE_RECURSE
  "CMakeFiles/test_dot.dir/test_dot.cpp.o"
  "CMakeFiles/test_dot.dir/test_dot.cpp.o.d"
  "test_dot"
  "test_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
