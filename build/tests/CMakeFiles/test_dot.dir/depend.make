# Empty dependencies file for test_dot.
# This may be replaced when dependencies are built.
