file(REMOVE_RECURSE
  "CMakeFiles/test_capacity.dir/test_capacity.cpp.o"
  "CMakeFiles/test_capacity.dir/test_capacity.cpp.o.d"
  "test_capacity"
  "test_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
