file(REMOVE_RECURSE
  "CMakeFiles/test_shift.dir/test_shift.cpp.o"
  "CMakeFiles/test_shift.dir/test_shift.cpp.o.d"
  "test_shift"
  "test_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
