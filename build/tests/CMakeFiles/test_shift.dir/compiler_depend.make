# Empty compiler generated dependencies file for test_shift.
# This may be replaced when dependencies are built.
