file(REMOVE_RECURSE
  "CMakeFiles/test_economy.dir/test_economy.cpp.o"
  "CMakeFiles/test_economy.dir/test_economy.cpp.o.d"
  "test_economy"
  "test_economy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
