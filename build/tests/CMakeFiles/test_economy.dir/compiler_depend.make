# Empty compiler generated dependencies file for test_economy.
# This may be replaced when dependencies are built.
