# Empty dependencies file for test_critical_work.
# This may be replaced when dependencies are built.
