file(REMOVE_RECURSE
  "CMakeFiles/test_critical_work.dir/test_critical_work.cpp.o"
  "CMakeFiles/test_critical_work.dir/test_critical_work.cpp.o.d"
  "test_critical_work"
  "test_critical_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_critical_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
