# Empty compiler generated dependencies file for test_gang.
# This may be replaced when dependencies are built.
