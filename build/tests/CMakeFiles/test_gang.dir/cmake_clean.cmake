file(REMOVE_RECURSE
  "CMakeFiles/test_gang.dir/test_gang.cpp.o"
  "CMakeFiles/test_gang.dir/test_gang.cpp.o.d"
  "test_gang"
  "test_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
