# Empty dependencies file for test_swf.
# This may be replaced when dependencies are built.
