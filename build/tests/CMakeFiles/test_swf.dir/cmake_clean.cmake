file(REMOVE_RECURSE
  "CMakeFiles/test_swf.dir/test_swf.cpp.o"
  "CMakeFiles/test_swf.dir/test_swf.cpp.o.d"
  "test_swf"
  "test_swf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
