file(REMOVE_RECURSE
  "CMakeFiles/test_estimates.dir/test_estimates.cpp.o"
  "CMakeFiles/test_estimates.dir/test_estimates.cpp.o.d"
  "test_estimates"
  "test_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
