# Empty dependencies file for test_estimates.
# This may be replaced when dependencies are built.
