# Empty compiler generated dependencies file for test_strategy.
# This may be replaced when dependencies are built.
