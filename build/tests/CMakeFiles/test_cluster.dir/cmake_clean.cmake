file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/test_cluster.cpp.o"
  "CMakeFiles/test_cluster.dir/test_cluster.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
