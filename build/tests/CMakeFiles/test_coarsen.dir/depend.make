# Empty dependencies file for test_coarsen.
# This may be replaced when dependencies are built.
