file(REMOVE_RECURSE
  "CMakeFiles/test_job.dir/test_job.cpp.o"
  "CMakeFiles/test_job.dir/test_job.cpp.o.d"
  "test_job"
  "test_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
