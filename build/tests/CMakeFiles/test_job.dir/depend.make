# Empty dependencies file for test_job.
# This may be replaced when dependencies are built.
