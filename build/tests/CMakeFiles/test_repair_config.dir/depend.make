# Empty dependencies file for test_repair_config.
# This may be replaced when dependencies are built.
