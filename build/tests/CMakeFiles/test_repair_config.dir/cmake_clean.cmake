file(REMOVE_RECURSE
  "CMakeFiles/test_repair_config.dir/test_repair_config.cpp.o"
  "CMakeFiles/test_repair_config.dir/test_repair_config.cpp.o.d"
  "test_repair_config"
  "test_repair_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
