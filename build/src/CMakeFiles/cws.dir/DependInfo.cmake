
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/Heft.cpp" "src/CMakeFiles/cws.dir/baseline/Heft.cpp.o" "gcc" "src/CMakeFiles/cws.dir/baseline/Heft.cpp.o.d"
  "/root/repo/src/baseline/Heuristics.cpp" "src/CMakeFiles/cws.dir/baseline/Heuristics.cpp.o" "gcc" "src/CMakeFiles/cws.dir/baseline/Heuristics.cpp.o.d"
  "/root/repo/src/batch/BatchJob.cpp" "src/CMakeFiles/cws.dir/batch/BatchJob.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/BatchJob.cpp.o.d"
  "/root/repo/src/batch/Capacity.cpp" "src/CMakeFiles/cws.dir/batch/Capacity.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/Capacity.cpp.o.d"
  "/root/repo/src/batch/Cluster.cpp" "src/CMakeFiles/cws.dir/batch/Cluster.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/Cluster.cpp.o.d"
  "/root/repo/src/batch/Gang.cpp" "src/CMakeFiles/cws.dir/batch/Gang.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/Gang.cpp.o.d"
  "/root/repo/src/batch/QueuePolicy.cpp" "src/CMakeFiles/cws.dir/batch/QueuePolicy.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/QueuePolicy.cpp.o.d"
  "/root/repo/src/batch/Swf.cpp" "src/CMakeFiles/cws.dir/batch/Swf.cpp.o" "gcc" "src/CMakeFiles/cws.dir/batch/Swf.cpp.o.d"
  "/root/repo/src/core/ChainAllocator.cpp" "src/CMakeFiles/cws.dir/core/ChainAllocator.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/ChainAllocator.cpp.o.d"
  "/root/repo/src/core/Collision.cpp" "src/CMakeFiles/cws.dir/core/Collision.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Collision.cpp.o.d"
  "/root/repo/src/core/CostModel.cpp" "src/CMakeFiles/cws.dir/core/CostModel.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/CostModel.cpp.o.d"
  "/root/repo/src/core/CriticalWork.cpp" "src/CMakeFiles/cws.dir/core/CriticalWork.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/CriticalWork.cpp.o.d"
  "/root/repo/src/core/Distribution.cpp" "src/CMakeFiles/cws.dir/core/Distribution.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Distribution.cpp.o.d"
  "/root/repo/src/core/Dot.cpp" "src/CMakeFiles/cws.dir/core/Dot.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Dot.cpp.o.d"
  "/root/repo/src/core/Gantt.cpp" "src/CMakeFiles/cws.dir/core/Gantt.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Gantt.cpp.o.d"
  "/root/repo/src/core/Scheduler.cpp" "src/CMakeFiles/cws.dir/core/Scheduler.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Scheduler.cpp.o.d"
  "/root/repo/src/core/Shift.cpp" "src/CMakeFiles/cws.dir/core/Shift.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Shift.cpp.o.d"
  "/root/repo/src/core/Strategy.cpp" "src/CMakeFiles/cws.dir/core/Strategy.cpp.o" "gcc" "src/CMakeFiles/cws.dir/core/Strategy.cpp.o.d"
  "/root/repo/src/flow/BackgroundLoad.cpp" "src/CMakeFiles/cws.dir/flow/BackgroundLoad.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/BackgroundLoad.cpp.o.d"
  "/root/repo/src/flow/Dispatch.cpp" "src/CMakeFiles/cws.dir/flow/Dispatch.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Dispatch.cpp.o.d"
  "/root/repo/src/flow/Domain.cpp" "src/CMakeFiles/cws.dir/flow/Domain.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Domain.cpp.o.d"
  "/root/repo/src/flow/Economy.cpp" "src/CMakeFiles/cws.dir/flow/Economy.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Economy.cpp.o.d"
  "/root/repo/src/flow/Execution.cpp" "src/CMakeFiles/cws.dir/flow/Execution.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Execution.cpp.o.d"
  "/root/repo/src/flow/Forecast.cpp" "src/CMakeFiles/cws.dir/flow/Forecast.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Forecast.cpp.o.d"
  "/root/repo/src/flow/JobManager.cpp" "src/CMakeFiles/cws.dir/flow/JobManager.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/JobManager.cpp.o.d"
  "/root/repo/src/flow/LocalManager.cpp" "src/CMakeFiles/cws.dir/flow/LocalManager.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/LocalManager.cpp.o.d"
  "/root/repo/src/flow/Metascheduler.cpp" "src/CMakeFiles/cws.dir/flow/Metascheduler.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/Metascheduler.cpp.o.d"
  "/root/repo/src/flow/VirtualOrganization.cpp" "src/CMakeFiles/cws.dir/flow/VirtualOrganization.cpp.o" "gcc" "src/CMakeFiles/cws.dir/flow/VirtualOrganization.cpp.o.d"
  "/root/repo/src/job/Coarsen.cpp" "src/CMakeFiles/cws.dir/job/Coarsen.cpp.o" "gcc" "src/CMakeFiles/cws.dir/job/Coarsen.cpp.o.d"
  "/root/repo/src/job/Estimates.cpp" "src/CMakeFiles/cws.dir/job/Estimates.cpp.o" "gcc" "src/CMakeFiles/cws.dir/job/Estimates.cpp.o.d"
  "/root/repo/src/job/Generator.cpp" "src/CMakeFiles/cws.dir/job/Generator.cpp.o" "gcc" "src/CMakeFiles/cws.dir/job/Generator.cpp.o.d"
  "/root/repo/src/job/Job.cpp" "src/CMakeFiles/cws.dir/job/Job.cpp.o" "gcc" "src/CMakeFiles/cws.dir/job/Job.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/cws.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/cws.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/cws.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/cws.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/metrics/Experiment.cpp" "src/CMakeFiles/cws.dir/metrics/Experiment.cpp.o" "gcc" "src/CMakeFiles/cws.dir/metrics/Experiment.cpp.o.d"
  "/root/repo/src/metrics/Export.cpp" "src/CMakeFiles/cws.dir/metrics/Export.cpp.o" "gcc" "src/CMakeFiles/cws.dir/metrics/Export.cpp.o.d"
  "/root/repo/src/metrics/QoS.cpp" "src/CMakeFiles/cws.dir/metrics/QoS.cpp.o" "gcc" "src/CMakeFiles/cws.dir/metrics/QoS.cpp.o.d"
  "/root/repo/src/resource/DataPolicy.cpp" "src/CMakeFiles/cws.dir/resource/DataPolicy.cpp.o" "gcc" "src/CMakeFiles/cws.dir/resource/DataPolicy.cpp.o.d"
  "/root/repo/src/resource/Grid.cpp" "src/CMakeFiles/cws.dir/resource/Grid.cpp.o" "gcc" "src/CMakeFiles/cws.dir/resource/Grid.cpp.o.d"
  "/root/repo/src/resource/Network.cpp" "src/CMakeFiles/cws.dir/resource/Network.cpp.o" "gcc" "src/CMakeFiles/cws.dir/resource/Network.cpp.o.d"
  "/root/repo/src/resource/Node.cpp" "src/CMakeFiles/cws.dir/resource/Node.cpp.o" "gcc" "src/CMakeFiles/cws.dir/resource/Node.cpp.o.d"
  "/root/repo/src/resource/Timeline.cpp" "src/CMakeFiles/cws.dir/resource/Timeline.cpp.o" "gcc" "src/CMakeFiles/cws.dir/resource/Timeline.cpp.o.d"
  "/root/repo/src/sim/EventQueue.cpp" "src/CMakeFiles/cws.dir/sim/EventQueue.cpp.o" "gcc" "src/CMakeFiles/cws.dir/sim/EventQueue.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/cws.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/cws.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Flags.cpp" "src/CMakeFiles/cws.dir/support/Flags.cpp.o" "gcc" "src/CMakeFiles/cws.dir/support/Flags.cpp.o.d"
  "/root/repo/src/support/Prng.cpp" "src/CMakeFiles/cws.dir/support/Prng.cpp.o" "gcc" "src/CMakeFiles/cws.dir/support/Prng.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/cws.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/cws.dir/support/Stats.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/cws.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/cws.dir/support/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
