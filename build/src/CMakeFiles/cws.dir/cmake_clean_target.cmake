file(REMOVE_RECURSE
  "libcws.a"
)
