# Empty dependencies file for cws.
# This may be replaced when dependencies are built.
