# Empty compiler generated dependencies file for cws-sim.
# This may be replaced when dependencies are built.
