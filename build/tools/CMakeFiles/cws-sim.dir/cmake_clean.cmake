file(REMOVE_RECURSE
  "CMakeFiles/cws-sim.dir/cws-sim.cpp.o"
  "CMakeFiles/cws-sim.dir/cws-sim.cpp.o.d"
  "cws-sim"
  "cws-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cws-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
