# Empty compiler generated dependencies file for cws-sched.
# This may be replaced when dependencies are built.
