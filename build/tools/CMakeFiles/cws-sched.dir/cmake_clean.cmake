file(REMOVE_RECURSE
  "CMakeFiles/cws-sched.dir/cws-sched.cpp.o"
  "CMakeFiles/cws-sched.dir/cws-sched.cpp.o.d"
  "cws-sched"
  "cws-sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cws-sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
