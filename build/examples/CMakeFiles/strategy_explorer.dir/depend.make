# Empty dependencies file for strategy_explorer.
# This may be replaced when dependencies are built.
