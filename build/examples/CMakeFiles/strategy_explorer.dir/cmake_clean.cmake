file(REMOVE_RECURSE
  "CMakeFiles/strategy_explorer.dir/strategy_explorer.cpp.o"
  "CMakeFiles/strategy_explorer.dir/strategy_explorer.cpp.o.d"
  "strategy_explorer"
  "strategy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
