# Empty compiler generated dependencies file for economy_demo.
# This may be replaced when dependencies are built.
