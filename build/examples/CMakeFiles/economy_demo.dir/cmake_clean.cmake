file(REMOVE_RECURSE
  "CMakeFiles/economy_demo.dir/economy_demo.cpp.o"
  "CMakeFiles/economy_demo.dir/economy_demo.cpp.o.d"
  "economy_demo"
  "economy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
