# Empty compiler generated dependencies file for cluster_batch.
# This may be replaced when dependencies are built.
