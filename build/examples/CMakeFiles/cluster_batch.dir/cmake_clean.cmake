file(REMOVE_RECURSE
  "CMakeFiles/cluster_batch.dir/cluster_batch.cpp.o"
  "CMakeFiles/cluster_batch.dir/cluster_batch.cpp.o.d"
  "cluster_batch"
  "cluster_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
