# Empty dependencies file for vo_simulation.
# This may be replaced when dependencies are built.
