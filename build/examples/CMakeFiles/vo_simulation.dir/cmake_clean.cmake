file(REMOVE_RECURSE
  "CMakeFiles/vo_simulation.dir/vo_simulation.cpp.o"
  "CMakeFiles/vo_simulation.dir/vo_simulation.cpp.o.d"
  "vo_simulation"
  "vo_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vo_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
