file(REMOVE_RECURSE
  "CMakeFiles/describe_and_run.dir/describe_and_run.cpp.o"
  "CMakeFiles/describe_and_run.dir/describe_and_run.cpp.o.d"
  "describe_and_run"
  "describe_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/describe_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
