# Empty compiler generated dependencies file for describe_and_run.
# This may be replaced when dependencies are built.
