file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/baselines.cpp.o"
  "CMakeFiles/baselines.dir/baselines.cpp.o.d"
  "baselines"
  "baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
