file(REMOVE_RECURSE
  "CMakeFiles/fig4a_load.dir/fig4a_load.cpp.o"
  "CMakeFiles/fig4a_load.dir/fig4a_load.cpp.o.d"
  "fig4a_load"
  "fig4a_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
