# Empty dependencies file for fig4a_load.
# This may be replaced when dependencies are built.
