# Empty compiler generated dependencies file for multiflow.
# This may be replaced when dependencies are built.
