file(REMOVE_RECURSE
  "CMakeFiles/multiflow.dir/multiflow.cpp.o"
  "CMakeFiles/multiflow.dir/multiflow.cpp.o.d"
  "multiflow"
  "multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
