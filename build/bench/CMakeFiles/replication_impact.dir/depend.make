# Empty dependencies file for replication_impact.
# This may be replaced when dependencies are built.
