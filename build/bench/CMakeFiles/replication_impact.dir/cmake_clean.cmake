file(REMOVE_RECURSE
  "CMakeFiles/replication_impact.dir/replication_impact.cpp.o"
  "CMakeFiles/replication_impact.dir/replication_impact.cpp.o.d"
  "replication_impact"
  "replication_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
