# Empty dependencies file for ablation_levels.
# This may be replaced when dependencies are built.
