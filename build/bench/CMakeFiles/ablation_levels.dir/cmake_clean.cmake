file(REMOVE_RECURSE
  "CMakeFiles/ablation_levels.dir/ablation_levels.cpp.o"
  "CMakeFiles/ablation_levels.dir/ablation_levels.cpp.o.d"
  "ablation_levels"
  "ablation_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
