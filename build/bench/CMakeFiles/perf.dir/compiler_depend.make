# Empty compiler generated dependencies file for perf.
# This may be replaced when dependencies are built.
