file(REMOVE_RECURSE
  "CMakeFiles/perf.dir/perf.cpp.o"
  "CMakeFiles/perf.dir/perf.cpp.o.d"
  "perf"
  "perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
