file(REMOVE_RECURSE
  "CMakeFiles/local_policies.dir/local_policies.cpp.o"
  "CMakeFiles/local_policies.dir/local_policies.cpp.o.d"
  "local_policies"
  "local_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
