# Empty dependencies file for local_policies.
# This may be replaced when dependencies are built.
