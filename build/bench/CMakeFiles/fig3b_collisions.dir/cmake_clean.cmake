file(REMOVE_RECURSE
  "CMakeFiles/fig3b_collisions.dir/fig3b_collisions.cpp.o"
  "CMakeFiles/fig3b_collisions.dir/fig3b_collisions.cpp.o.d"
  "fig3b_collisions"
  "fig3b_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
