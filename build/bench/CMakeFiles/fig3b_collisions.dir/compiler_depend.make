# Empty compiler generated dependencies file for fig3b_collisions.
# This may be replaced when dependencies are built.
