# Empty dependencies file for fig4b_cost_time.
# This may be replaced when dependencies are built.
