file(REMOVE_RECURSE
  "CMakeFiles/fig4b_cost_time.dir/fig4b_cost_time.cpp.o"
  "CMakeFiles/fig4b_cost_time.dir/fig4b_cost_time.cpp.o.d"
  "fig4b_cost_time"
  "fig4b_cost_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_cost_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
