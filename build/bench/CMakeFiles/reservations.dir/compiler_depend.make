# Empty compiler generated dependencies file for reservations.
# This may be replaced when dependencies are built.
