file(REMOVE_RECURSE
  "CMakeFiles/reservations.dir/reservations.cpp.o"
  "CMakeFiles/reservations.dir/reservations.cpp.o.d"
  "reservations"
  "reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
