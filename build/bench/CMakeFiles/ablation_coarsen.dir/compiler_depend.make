# Empty compiler generated dependencies file for ablation_coarsen.
# This may be replaced when dependencies are built.
