file(REMOVE_RECURSE
  "CMakeFiles/ablation_coarsen.dir/ablation_coarsen.cpp.o"
  "CMakeFiles/ablation_coarsen.dir/ablation_coarsen.cpp.o.d"
  "ablation_coarsen"
  "ablation_coarsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
