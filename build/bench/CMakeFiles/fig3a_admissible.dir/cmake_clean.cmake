file(REMOVE_RECURSE
  "CMakeFiles/fig3a_admissible.dir/fig3a_admissible.cpp.o"
  "CMakeFiles/fig3a_admissible.dir/fig3a_admissible.cpp.o.d"
  "fig3a_admissible"
  "fig3a_admissible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_admissible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
