# Empty dependencies file for fig3a_admissible.
# This may be replaced when dependencies are built.
