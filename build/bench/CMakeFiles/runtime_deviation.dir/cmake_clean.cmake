file(REMOVE_RECURSE
  "CMakeFiles/runtime_deviation.dir/runtime_deviation.cpp.o"
  "CMakeFiles/runtime_deviation.dir/runtime_deviation.cpp.o.d"
  "runtime_deviation"
  "runtime_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
