# Empty compiler generated dependencies file for runtime_deviation.
# This may be replaced when dependencies are built.
