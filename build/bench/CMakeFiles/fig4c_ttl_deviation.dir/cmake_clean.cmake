file(REMOVE_RECURSE
  "CMakeFiles/fig4c_ttl_deviation.dir/fig4c_ttl_deviation.cpp.o"
  "CMakeFiles/fig4c_ttl_deviation.dir/fig4c_ttl_deviation.cpp.o.d"
  "fig4c_ttl_deviation"
  "fig4c_ttl_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_ttl_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
