# Empty dependencies file for fig4c_ttl_deviation.
# This may be replaced when dependencies are built.
