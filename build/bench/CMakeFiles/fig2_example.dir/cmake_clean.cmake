file(REMOVE_RECURSE
  "CMakeFiles/fig2_example.dir/fig2_example.cpp.o"
  "CMakeFiles/fig2_example.dir/fig2_example.cpp.o.d"
  "fig2_example"
  "fig2_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
