# Empty dependencies file for fig2_example.
# This may be replaced when dependencies are built.
