# Empty compiler generated dependencies file for deadline_sweep.
# This may be replaced when dependencies are built.
