file(REMOVE_RECURSE
  "CMakeFiles/deadline_sweep.dir/deadline_sweep.cpp.o"
  "CMakeFiles/deadline_sweep.dir/deadline_sweep.cpp.o.d"
  "deadline_sweep"
  "deadline_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
