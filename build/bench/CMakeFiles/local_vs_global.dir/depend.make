# Empty dependencies file for local_vs_global.
# This may be replaced when dependencies are built.
