file(REMOVE_RECURSE
  "CMakeFiles/local_vs_global.dir/local_vs_global.cpp.o"
  "CMakeFiles/local_vs_global.dir/local_vs_global.cpp.o.d"
  "local_vs_global"
  "local_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
