//===-- bench/reg_obs_overhead.cpp - Observability overhead guard ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the observability layer costs on the scheduling hot
/// path: `scheduleJob` throughput with tracing disabled vs enabled,
/// plus the raw per-call price of a disabled span, a counter add, a
/// guarded disabled-journal append, a sampler tick and a disabled
/// profiler phase. The guard budget and the measured costs are emitted
/// through the harness, so the overhead contract itself appears in the
/// `BENCH_*.json` trajectory; breaching the budget fails a recorded
/// check — the contract that lets instrumentation live in hot paths.
///
/// Registered with Profile=false: this bench prices the *disabled*
/// observability path, so the harness must not switch the profiler on
/// around it.
///
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "harness.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "resource/Grid.h"
#include "resource/Network.h"

#include <chrono>
#include <string>

using namespace cws;

namespace {

/// The disabled-path budget: an order of magnitude above what one
/// span + counter + guarded append + sampler tick + phase guard costs
/// on any current machine, so a trip means someone put a lock or an
/// allocation on the disabled path.
constexpr double GuardBudgetNs = 50.0;

Job makeBenchJob() {
  Job J;
  unsigned Prev = J.addTask("t0", 2, 20);
  for (int I = 1; I < 8; ++I) {
    unsigned T =
        J.addTask("t" + std::to_string(I), 1 + I % 3, 10 * (1 + I % 3));
    J.addEdge(Prev, T, 1);
    // A fork every third task makes several critical works per job.
    if (I % 3 == 0) {
      unsigned Side = J.addTask("s" + std::to_string(I), 2, 20);
      J.addEdge(Prev, Side, 1);
      J.addEdge(Side, T, 1);
    }
    Prev = T;
  }
  J.setDeadline(400);
  return J;
}

Grid makeBenchGrid() {
  Grid G;
  for (double Perf : {1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.33, 0.33})
    G.addNode(Perf);
  return G;
}

/// Wall-clock nanoseconds of \p Fn.
template <typename F> double timeNs(F &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

} // namespace

CWS_BENCH(obs_overhead,
          "disabled-path observability cost on the scheduling hot path",
          /*Reps=*/3, /*Warmup=*/0, /*Profile=*/false) {
  const Job J = makeBenchJob();
  const Grid Env = makeBenchGrid();
  const Network Net;
  SchedulerConfig Config;

  constexpr int Warmup = 50;
  constexpr int Iters = 400;
  constexpr int PrimIters = 2000000;
  Ctx.setConfig("sched_iters=" + std::to_string(Iters) +
                "\nprim_iters=" + std::to_string(PrimIters) + "\n");

  size_t Feasible = 0;
  auto RunBatch = [&](int N) {
    for (int I = 0; I < N; ++I)
      Feasible += scheduleJob(J, Env, Net, Config, /*Owner=*/1, 0).Feasible;
  };

  // --- scheduleJob throughput, tracing disabled. ---
  obs::Tracer::global().reset();
  RunBatch(Warmup);
  double DisabledNs = timeNs([&] { RunBatch(Iters); }) / Iters;

  // --- scheduleJob throughput, tracing enabled. ---
  obs::Tracer::global().enable(1 << 20);
  RunBatch(Warmup);
  double EnabledNs = timeNs([&] { RunBatch(Iters); }) / Iters;
  uint64_t EventsPerCall = obs::Tracer::global().recorded() / (Warmup + Iters);
  obs::Tracer::global().reset();

  // --- Raw disabled-mode primitives: one span + one counter add + one
  // guarded journal append + one sampler tick + one disabled profiler
  // phase, exactly as the instrumentation sites are written. ---
  obs::Counter &C = obs::Registry::global().counter("bench_obs_probe_total");
  obs::Journal &Jn = obs::Journal::global();
  obs::TimeSeries &Ts = obs::TimeSeries::global();
  obs::Profiler &P = obs::Profiler::global();
  Jn.reset();
  Ts.reset();
  P.reset();
  double PrimNs = timeNs([&] {
                    for (int I = 0; I < PrimIters; ++I) {
                      obs::Span S("bench", "probe");
                      CWS_PHASE("bench.probe");
                      C.add();
                      if (Jn.enabled())
                        Jn.append(obs::JournalKind::Note, I, I, {{"i", I}});
                      Ts.onTick(I);
                    }
                  }) /
                  PrimIters;
  Ctx.check("disabled journal records nothing off the bench probe",
            Jn.recorded() == 0);
  Ctx.check("disabled sampler takes no frames off the bench probe",
            Ts.recorded() == 0);
  Ctx.check("disabled profiler accumulates nothing off the bench probe",
            P.snapshot().empty());
  Ctx.check("disabled-mode primitives fit the budget",
            PrimNs < GuardBudgetNs);

  Ctx.setWork("feasible_results", Feasible);
  Ctx.setWork("trace_events_per_schedule", EventsPerCall);
  Ctx.addMetric("guard_budget_ns", GuardBudgetNs);
  Ctx.addMetric("prim_disabled_ns", PrimNs);
  Ctx.addMetric("schedule_disabled_ns", DisabledNs);
  Ctx.addMetric("schedule_traced_ns", EnabledNs);
  Ctx.addMetric("trace_overhead_ratio", EnabledNs / DisabledNs);
}
