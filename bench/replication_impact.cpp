//===-- bench/replication_impact.cpp - Data replication impact ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-grid angle the paper leans on (its refs [18, 19]: "The
/// Impact of Data Replication on Job Scheduling Performance"): how much
/// of S1's advantage comes from replication being fast and cheap? The
/// sweep varies the replication latency factor from near-instant to
/// no-better-than-remote and reports S1's admissibility, cost and
/// collision profile against the S2 (remote access) baseline.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 1200;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs per factor level");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== SWEEP: impact of replication speed on S1 (" << Jobs
            << " jobs per level) ===\n\n";

  Table T({"replication factor", "S1 admissible %", "S2 admissible %",
           "S1 fast-collision %", "S1 mean feasible variants"});

  for (double Factor : {0.1, 0.25, 0.4, 0.6, 0.8, 1.0}) {
    Fig3Config Config;
    Config.JobCount = static_cast<size_t>(Jobs);
    Config.Seed = static_cast<uint64_t>(Seed);
    Config.StrategyCfg.DataConfig.ReplicationFactor = Factor;
    Config.Kinds = {StrategyKind::S1, StrategyKind::S2};
    std::vector<Fig3Row> Rows = runFig3(Config);
    T.addRow({Table::num(Factor, 2),
              Table::num(Rows[0].admissiblePercent(), 1),
              Table::num(Rows[1].admissiblePercent(), 1),
              Table::num(Rows[0].IntraCost.fastPercent(), 0),
              Table::num(Rows[0].MeanFeasibleVariants, 2)});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: with near-instant replication S1 "
               "clearly out-admits the remote-access baseline and its "
               "collisions move off the fast nodes (tasks spread freely); "
               "as replication slows toward the raw wire time the "
               "advantage evaporates — S1 degenerates into S2, matching "
               "the data-grid studies the paper builds on.\n";
  return 0;
}
