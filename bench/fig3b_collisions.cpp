//===-- bench/fig3b_collisions.cpp - Reproduce Fig. 3b --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 3b: how collisions (conflicts between tasks of different
/// critical works competing for the same node) split between "fast" and
/// "slow" nodes. Paper values: S1 32/68, S2 56/44, S3 74/26. The
/// headline row uses the cost-optimized variants (the CF-driven method
/// of the paper); the time-optimized variants are reported separately.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 12000;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "number of randomly generated jobs");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  Fig3Config Config;
  Config.JobCount = static_cast<size_t>(Jobs);
  Config.Seed = static_cast<uint64_t>(Seed);

  std::cout << "=== FIG 3b: collision split between fast and slow nodes ("
            << Jobs << " jobs) ===\n\n";
  std::vector<Fig3Row> Rows = runFig3(Config);

  const double PaperFast[] = {32.0, 56.0, 74.0};
  Table T({"strategy", "paper fast/slow %", "measured fast/slow %",
           "collisions", "time-bias fast %", "vs background fast %"});
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Fig3Row &R = Rows[I];
    T.addRow({strategyName(R.Kind),
              Table::num(PaperFast[I], 0) + "/" +
                  Table::num(100.0 - PaperFast[I], 0),
              Table::num(R.IntraCost.fastPercent(), 0) + "/" +
                  Table::num(R.IntraCost.slowPercent(), 0),
              std::to_string(R.IntraCost.total()),
              Table::num(R.IntraTime.fastPercent(), 0),
              Table::num(R.Background.fastPercent(), 0)});
  }
  T.print(std::cout);

  std::cout << "\nShape check: the fast-node share of collisions grows "
               "monotonically from S1 (spreads tasks, collides mostly "
               "where most nodes are) to S3 (coarse grain monopolizes "
               "the high-performance nodes).\n";
  return 0;
}
