//===-- bench/env_invalidation.cpp - Env-change invalidation cost ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what one environment change costs the job-flow level under
/// both invalidation modes: the full re-validation scan (the
/// differential-testing oracle behind `--invalidation=scan`) and the
/// event-driven reserved-slot index pass (the default). Both runs use
/// the same workload and seed, so they process the identical stream of
/// environment changes and reach the identical invalidation decisions;
/// only the work per change differs. Aborts when the index stops
/// re-validating an order of magnitude fewer placements than the scan —
/// the contract the event-driven pass exists for.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace cws;

namespace {

struct ModeCost {
  double WallMs = 0;
  uint64_t Changes = 0;
  uint64_t Placements = 0;
  uint64_t Invalidated = 0;
};

ModeCost runMode(InvalidationMode Mode, size_t Jobs, uint64_t Seed) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &Changes = R.counter("cws_env_changes_total");
  obs::Counter &ScanPlacements = R.counter("cws_env_scan_placements_total");
  obs::Counter &IndexPlacements = R.counter("cws_env_index_placements_total");
  obs::Counter &Invalidated = R.counter("cws_jobs_invalidated_total");

  // Counters are global and cumulative, so cost = delta across the run.
  uint64_t C0 = Changes.value();
  uint64_t P0 = ScanPlacements.value() + IndexPlacements.value();
  uint64_t I0 = Invalidated.value();

  VoConfig Config;
  Config.JobCount = Jobs;
  Config.Invalidation = Mode;
  auto T0 = std::chrono::steady_clock::now();
  runVirtualOrganization(Config, StrategyKind::S1, Seed);
  auto T1 = std::chrono::steady_clock::now();

  ModeCost Cost;
  Cost.WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count() /
      1000.0;
  Cost.Changes = Changes.value() - C0;
  Cost.Placements = ScanPlacements.value() + IndexPlacements.value() - P0;
  Cost.Invalidated = Invalidated.value() - I0;
  return Cost;
}

} // namespace

/// One journaled run of \p Mode, parsed for the differential oracle.
obs::ParsedJournal journaledMode(InvalidationMode Mode, size_t Jobs,
                                 uint64_t Seed) {
  VoConfig Config;
  Config.JobCount = Jobs;
  Config.Invalidation = Mode;
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(Config, StrategyKind::S1, Seed);
  Jn.disable();
  obs::ParsedJournal J;
  std::string Error;
  CWS_CHECK(obs::parseJournalJsonl(Jn.jsonl(), J, Error),
            "journaled run must parse");
  Jn.reset();
  return J;
}

int main() {
  constexpr size_t Jobs = 60;
  constexpr uint64_t Seed = 7;

  // Differential oracle first: scan and index must make the *same
  // decisions*, event for event. cws-diff's journal comparator
  // localizes any violation to the first diverging (job, tick) with
  // both cause chains.
  {
    obs::ParsedJournal Scan = journaledMode(InvalidationMode::Scan, Jobs,
                                            Seed);
    obs::ParsedJournal Index = journaledMode(InvalidationMode::Index, Jobs,
                                             Seed);
    obs::DiffResult Diff = obs::diffJournals(Scan, Index);
    if (!Diff.identical())
      std::cout << obs::renderDiffText(Diff, "scan", "index");
    CWS_CHECK(Diff.identical(),
              "scan and index journals must be semantically identical");
    std::printf("determinism: scan and index journals identical "
                "(%zu events)\n\n",
                Scan.Events.size());
  }

  ModeCost Scan = runMode(InvalidationMode::Scan, Jobs, Seed);
  ModeCost Index = runMode(InvalidationMode::Index, Jobs, Seed);

  CWS_CHECK(Scan.Changes == Index.Changes,
            "same seed must produce the same environment-change stream");
  CWS_CHECK(Scan.Invalidated == Index.Invalidated,
            "both modes must reach the same invalidation decisions");

  double Changes = static_cast<double>(Scan.Changes ? Scan.Changes : 1);
  Table T({"invalidation mode", "placements re-validated",
           "placements / change", "run wall ms"});
  T.addRow({"scan (oracle)", Table::num(double(Scan.Placements), 0),
            Table::num(Scan.Placements / Changes, 2),
            Table::num(Scan.WallMs, 1)});
  T.addRow({"index (event-driven)", Table::num(double(Index.Placements), 0),
            Table::num(Index.Placements / Changes, 2),
            Table::num(Index.WallMs, 1)});
  T.print(std::cout);

  double Ratio = static_cast<double>(Scan.Placements) /
                 static_cast<double>(Index.Placements ? Index.Placements : 1);
  std::printf("\nenvironment changes: %llu, invalidations: %llu\n",
              static_cast<unsigned long long>(Scan.Changes),
              static_cast<unsigned long long>(Scan.Invalidated));
  std::printf("scan / index re-validation ratio: %.1fx\n", Ratio);

  CWS_CHECK(Ratio >= 10.0,
            "the slot index must re-validate >= 10x fewer placements");
  std::printf("\nOK: event-driven invalidation holds the >= 10x bar\n");
  return 0;
}
