//===-- bench/reg_strategy_build_throughput.cpp - Parallel build gauge ----===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the strategy-build throughput (builds/sec) of the serial path
/// against the parallel variant-generation path on the simulator's
/// standard workload, and verifies the parallel output is identical to
/// the serial one — the contract that lets `Strategy::build` default to
/// `hw_concurrency` lanes. The variant totals are work counters, so a
/// change to the variant set (not just its speed) trips the ratchet.
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "harness.h"
#include "job/Generator.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "support/Prng.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cws;

namespace {

constexpr int64_t Jobs = 50;
constexpr uint64_t Seed = 42;

/// Seconds of wall clock Fn takes.
template <typename F> double seconds(F &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// True when both strategies hold variant-for-variant identical
/// supporting schedules.
bool identicalStrategies(const Strategy &A, const Strategy &B) {
  if (A.variants().size() != B.variants().size() || A.levels() != B.levels())
    return false;
  for (size_t I = 0; I < A.variants().size(); ++I) {
    const ScheduleVariant &VA = A.variants()[I];
    const ScheduleVariant &VB = B.variants()[I];
    if (VA.Level != VB.Level || VA.Bias != VB.Bias ||
        VA.feasible() != VB.feasible())
      return false;
    const Distribution &DA = VA.Result.Dist;
    const Distribution &DB = VB.Result.Dist;
    if (DA.size() != DB.size())
      return false;
    for (const Placement &P : DA.placements()) {
      const Placement *Q = DB.find(P.TaskId);
      if (!Q || Q->NodeId != P.NodeId || Q->Start != P.Start ||
          Q->End != P.End)
        return false;
    }
  }
  return true;
}

} // namespace

CWS_BENCH(strategy_build_throughput,
          "serial vs parallel strategy builds on the standard workload",
          /*Reps=*/3, /*Warmup=*/1, /*Profile=*/true) {
  const size_t Threads = ThreadPool::defaultThreads();
  Ctx.setSeed(Seed);
  Ctx.setExecSeed(Seed);
  Ctx.setConfig("jobs=" + std::to_string(Jobs) + "\nstrategy=S1\n");

  // The simulator's standard workload and environment.
  Prng Root(Seed);
  Grid Env = Grid::makeRandom(GridConfig{}, Root);
  JobGenerator Gen(WorkloadConfig{}, Seed + 1);
  std::vector<Job> Workload;
  Workload.reserve(static_cast<size_t>(Jobs));
  for (int64_t I = 0; I < Jobs; ++I)
    Workload.push_back(Gen.next());
  Network Net;
  StrategyConfig Config;

  auto BuildAll = [&](size_t Lanes) {
    std::vector<Strategy> Out;
    Out.reserve(Workload.size());
    StrategyConfig C = Config;
    C.BuildThreads = Lanes;
    for (const Job &J : Workload)
      Out.push_back(Strategy::build(J, Env, Net, C, /*Owner=*/1));
    return Out;
  };

  // Build both ways and prove the determinism contract.
  std::vector<Strategy> Serial = BuildAll(1);
  std::vector<Strategy> Parallel = BuildAll(Threads);
  bool Identical = true;
  for (size_t I = 0; I < Serial.size(); ++I)
    Identical = Identical && identicalStrategies(Serial[I], Parallel[I]);
  Ctx.check("parallel build identical to the serial build", Identical);

  uint64_t Variants = 0, Feasible = 0;
  for (const Strategy &S : Serial) {
    Variants += S.variants().size();
    Feasible += S.feasibleCount();
  }
  Ctx.setWork("jobs", static_cast<uint64_t>(Jobs));
  Ctx.setWork("variants_total", Variants);
  Ctx.setWork("feasible_total", Feasible);

  double SerialSec = seconds([&] { BuildAll(1); });
  double ParallelSec = seconds([&] { BuildAll(Threads); });
  double N = static_cast<double>(Jobs);
  Ctx.addMetric("serial_builds_per_sec", N / SerialSec);
  Ctx.addMetric("parallel_builds_per_sec", N / ParallelSec);
  Ctx.addMetric("parallel_speedup", SerialSec / ParallelSec);
}
