//===-- bench/ablation_coarsen.cpp - Granularity ablation -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the coarse-grain transformation behind S3: sweeping the
/// macro-task size bound from "no coarsening" to unbounded shows the
/// granularity trade-off — fewer data exchanges and lower CF versus
/// shrinking admissibility under tight deadlines (oversized macro-tasks
/// cannot fit fragmented timelines).
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "job/Coarsen.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 1200;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs in the population");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== ABLATION: S3 coarse-grain macro-task size bound ("
            << Jobs << " jobs) ===\n\n";

  Table T({"max merged ref", "mean tasks after", "mean edges after",
           "admissible %", "mean CF", "mean makespan"});

  // Bound 1 disables merging entirely; 0 means unbounded.
  for (Tick Bound : {static_cast<Tick>(1), static_cast<Tick>(4),
                     static_cast<Tick>(6), static_cast<Tick>(8),
                     static_cast<Tick>(12), static_cast<Tick>(0)}) {
    JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed));
    Prng EnvRng(static_cast<uint64_t>(Seed) ^ 0xc0a5);
    Prng LoadRng(static_cast<uint64_t>(Seed) ^ 0x10ad);
    Network Net;
    RatioCounter Admissible;
    OnlineStats Tasks, EdgesLeft, Cf, Makespan;
    for (int64_t I = 0; I < Jobs; ++I) {
      Job J = Gen.next(0);
      Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
      preloadGrid(Env, J.deadline(), 0.35, 0.75, 2, 10, LoadRng);
      StrategyConfig Config;
      Config.Kind = StrategyKind::S3;
      Config.CoarsenMaxRef = Bound;
      Strategy S = Strategy::build(J, Env, Net, Config, 42);
      Tasks.add(static_cast<double>(S.scheduledJob().taskCount()));
      EdgesLeft.add(static_cast<double>(S.scheduledJob().edgeCount()));
      Admissible.add(S.admissible());
      if (const ScheduleVariant *Best = S.bestByCost()) {
        Cf.add(static_cast<double>(
            Best->Result.Dist.costFunction(S.scheduledJob())));
        Makespan.add(static_cast<double>(Best->Result.Dist.makespan()));
      }
    }
    T.addRow({Bound == 0 ? "unbounded" : std::to_string(Bound),
              Table::num(Tasks.mean(), 1), Table::num(EdgesLeft.mean(), 1),
              Table::num(Admissible.percent(), 1), Table::num(Cf.mean(), 1),
              Table::num(Makespan.mean(), 1)});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: larger bounds merge more work into fewer "
               "macro-tasks (columns 2-3 shrink) and lower CF, but "
               "admissibility under the tight Fig. 3 regime collapses — "
               "the reason the library bounds S3's merges by default.\n";
  return 0;
}
