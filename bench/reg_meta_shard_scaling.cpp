//===-- bench/reg_meta_shard_scaling.cpp - Sharded ingest scaling ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the sharded job-flow metascheduler at 1, 2, 4 and 8 worker
/// shards on a bursty arrival stream (zero minimum interarrival gap, so
/// per-tick admission batches genuinely hold several jobs): jobs
/// ingested per wall second and the commit-pipeline drain latency. The
/// hard gate is determinism, not speed — every sharded run's journal
/// and per-job stats are compared against the 1-shard run and any
/// difference fails the recorded check. Speedup is hardware-bound: on a
/// single-core host every shard count degrades to the same serial
/// schedule and the throughput metrics only show pipeline overhead.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "harness.h"
#include "metrics/Export.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cws;

namespace {

constexpr size_t Jobs = 120;
constexpr uint64_t Seed = 9;

VoConfig benchConfig(size_t Shards) {
  VoConfig Config;
  Config.JobCount = Jobs;
  // Bursty arrivals: gaps drawn from [0, 3] make same-tick batches the
  // rule instead of the exception, which is what the parallel prepare
  // stages feed on.
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 3;
  Config.Shards = Shards;
  return Config;
}

/// Everything downstream consumers can see of a run.
struct RunArtifacts {
  std::string Journal;
  std::string StatsCsv;
};

RunArtifacts journaledRun(size_t Shards) {
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  VoRunResult Run =
      runVirtualOrganization(benchConfig(Shards), StrategyKind::S1, Seed);
  Jn.disable();
  RunArtifacts Out{Jn.jsonl(), voStatsCsv(Run.Jobs)};
  Jn.reset();
  return Out;
}

struct ShardCost {
  double WallMs = 0;
  double DrainP50Us = 0;
  double DrainP99Us = 0;
  uint64_t CommitBatches = 0;
};

ShardCost timedRun(size_t Shards) {
  obs::Registry &R = obs::Registry::global();
  obs::Histogram &DrainUs = R.histogram(
      "cws_shard_commit_drain_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000});
  obs::Counter &Batches = R.counter("cws_shard_commit_batches_total");
  // The registry is global and cumulative; reset so the drain-latency
  // quantiles cover exactly this run.
  R.reset();
  uint64_t B0 = Batches.value();

  auto T0 = std::chrono::steady_clock::now();
  runVirtualOrganization(benchConfig(Shards), StrategyKind::S1, Seed);
  auto T1 = std::chrono::steady_clock::now();

  ShardCost Cost;
  Cost.WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count() /
      1000.0;
  Cost.DrainP50Us = DrainUs.quantile(0.5);
  Cost.DrainP99Us = DrainUs.quantile(0.99);
  Cost.CommitBatches = Batches.value() - B0;
  return Cost;
}

} // namespace

CWS_BENCH(meta_shard_scaling,
          "sharded job-flow ingest: determinism gate + scaling curve",
          /*Reps=*/3, /*Warmup=*/1, /*Profile=*/true) {
  const std::vector<size_t> ShardCounts = {1, 2, 4, 8};
  Ctx.setSeed(Seed);
  Ctx.setExecSeed(Seed);
  Ctx.setInvalidation("index");
  Ctx.setConfig("jobs=" + std::to_string(Jobs) +
                "\ninterarrival=[0,3]\nshards=1,2,4,8\n");
  Ctx.setWork("jobs", Jobs);

  // Determinism gate first: sharding must never change what the run
  // computes, only how fast it computes it.
  RunArtifacts Base = journaledRun(1);
  obs::ParsedJournal BaseJournal;
  std::string ParseError;
  CWS_CHECK(obs::parseJournalJsonl(Base.Journal, BaseJournal, ParseError),
            "baseline journal must parse");
  Ctx.setWork("journal_events", BaseJournal.Events.size());
  for (size_t Shards : ShardCounts) {
    if (Shards == 1)
      continue;
    RunArtifacts Sharded = journaledRun(Shards);
    obs::ParsedJournal ShardedJournal;
    CWS_CHECK(obs::parseJournalJsonl(Sharded.Journal, ShardedJournal,
                                     ParseError),
              "sharded journal must parse");
    obs::DiffResult Diff = obs::diffJournals(BaseJournal, ShardedJournal);
    Ctx.check("journal identical to 1-shard run at " +
                  std::to_string(Shards) + " shards",
              Diff.identical());
    Ctx.check("per-job stats identical to 1-shard run at " +
                  std::to_string(Shards) + " shards",
              Sharded.StatsCsv == Base.StatsCsv);
  }

  // Timing pass, journal off so ingest throughput is the bottleneck.
  for (size_t Shards : ShardCounts) {
    ShardCost Cost = timedRun(Shards);
    std::string S = std::to_string(Shards);
    Ctx.setWork("commit_drains_s" + S, Cost.CommitBatches);
    Ctx.addMetric("wall_ms_s" + S, Cost.WallMs);
    Ctx.addMetric("jobs_per_sec_s" + S,
                  Cost.WallMs > 0 ? Jobs / (Cost.WallMs / 1000.0) : 0);
    Ctx.addMetric("drain_p50_us_s" + S, Cost.DrainP50Us);
    Ctx.addMetric("drain_p99_us_s" + S, Cost.DrainP99Us);
  }
}
