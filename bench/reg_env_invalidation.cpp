//===-- bench/reg_env_invalidation.cpp - Env-change invalidation cost -----===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what one environment change costs the job-flow level under
/// both invalidation modes: the full re-validation scan (the
/// differential-testing oracle behind `--invalidation=scan`) and the
/// event-driven reserved-slot index pass (the default). Both runs use
/// the same workload and seed, so they process the identical stream of
/// environment changes and reach the identical invalidation decisions;
/// only the work per change differs. The placements-re-validated
/// totals are the bench's work counters — the ratchet pins them exactly
/// — and the >= 10x scan/index ratio is a recorded check.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "harness.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <chrono>

using namespace cws;

namespace {

constexpr size_t Jobs = 60;
constexpr uint64_t Seed = 7;

VoConfig benchConfig(InvalidationMode Mode) {
  VoConfig Config;
  Config.JobCount = Jobs;
  Config.Invalidation = Mode;
  return Config;
}

struct ModeCost {
  double WallMs = 0;
  uint64_t Changes = 0;
  uint64_t Placements = 0;
  uint64_t Invalidated = 0;
};

ModeCost runMode(InvalidationMode Mode) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &Changes = R.counter("cws_env_changes_total");
  obs::Counter &ScanPlacements = R.counter("cws_env_scan_placements_total");
  obs::Counter &IndexPlacements = R.counter("cws_env_index_placements_total");
  obs::Counter &Invalidated = R.counter("cws_jobs_invalidated_total");

  // Counters are global and cumulative, so cost = delta across the run.
  uint64_t C0 = Changes.value();
  uint64_t P0 = ScanPlacements.value() + IndexPlacements.value();
  uint64_t I0 = Invalidated.value();

  auto T0 = std::chrono::steady_clock::now();
  runVirtualOrganization(benchConfig(Mode), StrategyKind::S1, Seed);
  auto T1 = std::chrono::steady_clock::now();

  ModeCost Cost;
  Cost.WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count() /
      1000.0;
  Cost.Changes = Changes.value() - C0;
  Cost.Placements = ScanPlacements.value() + IndexPlacements.value() - P0;
  Cost.Invalidated = Invalidated.value() - I0;
  return Cost;
}

/// One journaled run of \p Mode, parsed for the differential oracle.
obs::ParsedJournal journaledMode(InvalidationMode Mode) {
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(benchConfig(Mode), StrategyKind::S1, Seed);
  Jn.disable();
  obs::ParsedJournal J;
  std::string Error;
  CWS_CHECK(obs::parseJournalJsonl(Jn.jsonl(), J, Error),
            "journaled run must parse");
  Jn.reset();
  return J;
}

} // namespace

CWS_BENCH(env_invalidation,
          "re-validation cost of one environment change, scan vs index",
          /*Reps=*/3, /*Warmup=*/1, /*Profile=*/true) {
  Ctx.setSeed(Seed);
  Ctx.setExecSeed(Seed);
  Ctx.setInvalidation("index");
  Ctx.setConfig("jobs=" + std::to_string(Jobs) + "\n");

  // Differential oracle first: scan and index must make the *same
  // decisions*, event for event.
  obs::ParsedJournal Scan = journaledMode(InvalidationMode::Scan);
  obs::ParsedJournal Index = journaledMode(InvalidationMode::Index);
  obs::DiffResult Diff = obs::diffJournals(Scan, Index);
  Ctx.check("scan and index journals semantically identical",
            Diff.identical());

  ModeCost ScanCost = runMode(InvalidationMode::Scan);
  ModeCost IndexCost = runMode(InvalidationMode::Index);
  Ctx.check("same environment-change stream in both modes",
            ScanCost.Changes == IndexCost.Changes);
  Ctx.check("same invalidation decisions in both modes",
            ScanCost.Invalidated == IndexCost.Invalidated);

  Ctx.setWork("env_changes", ScanCost.Changes);
  Ctx.setWork("invalidations", ScanCost.Invalidated);
  Ctx.setWork("scan_placements", ScanCost.Placements);
  Ctx.setWork("index_placements", IndexCost.Placements);

  double Ratio =
      static_cast<double>(ScanCost.Placements) /
      static_cast<double>(IndexCost.Placements ? IndexCost.Placements : 1);
  Ctx.check("slot index re-validates >= 10x fewer placements",
            Ratio >= 10.0);
  Ctx.addMetric("scan_index_ratio", Ratio);
  Ctx.addMetric("scan_wall_ms", ScanCost.WallMs);
  Ctx.addMetric("index_wall_ms", IndexCost.WallMs);
}
