//===-- bench/strategy_build_throughput.cpp - Parallel build gauge --------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the strategy-build throughput (builds/sec) of the serial path
/// against the parallel variant-generation path on the simulator's
/// standard workload, and verifies the parallel output is identical to
/// the serial one — the contract that lets `Strategy::build` default to
/// `hw_concurrency` lanes. Usage:
///
///   strategy_build_throughput [--jobs 50] [--seed 42] [--threads N]
///                             [--rounds 3] [--strategy S1|S2|S3|MS1]
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "job/Generator.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "support/Check.h"
#include "support/Flags.h"
#include "support/Prng.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

using namespace cws;

/// Seconds of wall clock Fn takes.
template <typename F> static double seconds(F &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// True when both strategies hold variant-for-variant identical
/// supporting schedules.
static bool identicalStrategies(const Strategy &A, const Strategy &B) {
  if (A.variants().size() != B.variants().size() ||
      A.levels() != B.levels())
    return false;
  for (size_t I = 0; I < A.variants().size(); ++I) {
    const ScheduleVariant &VA = A.variants()[I];
    const ScheduleVariant &VB = B.variants()[I];
    if (VA.Level != VB.Level || VA.Bias != VB.Bias ||
        VA.feasible() != VB.feasible())
      return false;
    const Distribution &DA = VA.Result.Dist;
    const Distribution &DB = VB.Result.Dist;
    if (DA.size() != DB.size())
      return false;
    for (const Placement &P : DA.placements()) {
      const Placement *Q = DB.find(P.TaskId);
      if (!Q || Q->NodeId != P.NodeId || Q->Start != P.Start ||
          Q->End != P.End)
        return false;
    }
  }
  return true;
}

int main(int Argc, char **Argv) {
  int64_t Jobs = 50;
  int64_t Seed = 42;
  int64_t Threads = static_cast<int64_t>(ThreadPool::defaultThreads());
  int64_t Rounds = 3;
  std::string StrategyName = "S1";
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs to build strategies for");
  F.addInt("seed", &Seed, "workload seed");
  F.addInt("threads", &Threads, "parallel lane count to benchmark");
  F.addInt("rounds", &Rounds, "timed repetitions (best round reported)");
  F.addString("strategy", &StrategyName, "S1 | S2 | S3 | MS1");
  if (!F.parse(Argc, Argv))
    return 0;

  StrategyConfig Config;
  for (StrategyKind K : {StrategyKind::S1, StrategyKind::S2,
                         StrategyKind::S3, StrategyKind::MS1})
    if (StrategyName == strategyName(K))
      Config.Kind = K;

  // The simulator's standard workload and environment.
  Prng Root(static_cast<uint64_t>(Seed));
  Grid Env = Grid::makeRandom(GridConfig{}, Root);
  JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed) + 1);
  std::vector<Job> Workload;
  Workload.reserve(static_cast<size_t>(Jobs));
  for (int64_t I = 0; I < Jobs; ++I)
    Workload.push_back(Gen.next());
  Network Net;

  auto BuildAll = [&](size_t Lanes) {
    std::vector<Strategy> Out;
    Out.reserve(Workload.size());
    StrategyConfig C = Config;
    C.BuildThreads = Lanes;
    for (const Job &J : Workload)
      Out.push_back(Strategy::build(J, Env, Net, C, /*Owner=*/1));
    return Out;
  };

  // Warm-up builds both ways and proves the determinism contract.
  std::vector<Strategy> Serial = BuildAll(1);
  std::vector<Strategy> Parallel = BuildAll(static_cast<size_t>(Threads));
  for (size_t I = 0; I < Serial.size(); ++I)
    CWS_CHECK(identicalStrategies(Serial[I], Parallel[I]),
              "parallel build diverged from the serial build");

  double SerialBest = 1e100;
  double ParallelBest = 1e100;
  for (int64_t R = 0; R < Rounds; ++R) {
    SerialBest = std::min(SerialBest, seconds([&] { BuildAll(1); }));
    ParallelBest = std::min(
        ParallelBest,
        seconds([&] { BuildAll(static_cast<size_t>(Threads)); }));
  }

  double N = static_cast<double>(Jobs);
  unsigned Hw = std::thread::hardware_concurrency();
  std::cout << "strategy " << strategyName(Config.Kind) << ", " << Jobs
            << " jobs, seed " << Seed << ", parallel output identical\n"
            << "hardware concurrency " << Hw;
  if (static_cast<int64_t>(Hw) < Threads)
    std::cout << " (below the requested lanes; expect no wall-clock gain)";
  std::cout << "\n\n";
  Table T({"path", "lanes", "builds/sec", "speedup"});
  T.addRow({"serial", "1", Table::num(N / SerialBest, 1), "1.00"});
  T.addRow({"parallel", std::to_string(Threads),
            Table::num(N / ParallelBest, 1),
            Table::num(SerialBest / ParallelBest, 2)});
  T.print(std::cout);
  return 0;
}
