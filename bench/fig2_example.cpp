//===-- bench/fig2_example.cpp - Reproduce the Fig. 2 worked example ------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's worked example (Fig. 2): the compound job
/// P1..P6 with data transfers D1..D8, its four critical works (12, 11,
/// 10 and 9 time units long), and a strategy fragment with alternative
/// distributions, reporting CF and economic cost per distribution and
/// the collisions resolved during construction.
///
//===----------------------------------------------------------------------===//

#include "core/Gantt.h"
#include "core/Strategy.h"
#include "job/Job.h"
#include "resource/Network.h"
#include "support/Table.h"

#include <iostream>
#include <string>

using namespace cws;

int main() {
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;

  std::cout << "=== FIG 2 / worked example: compound job P1..P6 ===\n\n";

  std::cout << "Estimation table (paper Fig. 2a):\n";
  {
    Table T({"task", "T_i1", "T_i2", "T_i3", "T_i4", "V_ij"});
    for (const auto &Task : J.tasks()) {
      std::vector<std::string> Row{Task.Name};
      for (unsigned Node = 0; Node < 4; ++Node)
        Row.push_back(
            std::to_string(Env.node(Node).execTicks(Task.RefTicks)));
      Row.push_back(Table::num(Task.Volume, 0));
      T.addRow(Row);
    }
    T.print(std::cout);
  }

  std::cout << "\nCritical works (paper: 12, 11, 10, 9 units incl. data "
               "transfer time):\n";
  {
    Table T({"chain", "length"});
    for (const auto &Chain : allFullChains(J)) {
      std::string Names;
      for (unsigned Task : Chain.TaskIds)
        Names += (Names.empty() ? "" : "-") + J.task(Task).Name;
      T.addRow({Names, std::to_string(Chain.RefLength)});
    }
    T.print(std::cout);
  }

  StrategyConfig Config;
  Strategy S = Strategy::build(J, Env, Net, Config, /*Owner=*/1);

  std::cout << "\nStrategy fragment: alternative distributions "
               "(paper Fig. 2b: CF1 = 41, CF2 = 37, CF3 = 41; the chosen "
               "distribution is the strictly cheapest one):\n";
  {
    Table T({"distribution", "level", "bias", "CF", "econ cost", "makespan",
             "feasible"});
    unsigned Idx = 1;
    for (const auto &V : S.variants()) {
      T.addRow({"D" + std::to_string(Idx++), std::to_string(V.Level),
                optimizationBiasName(V.Bias),
                V.feasible() ? std::to_string(V.Result.Dist.costFunction(J))
                             : "-",
                V.feasible() ? Table::num(V.Result.Dist.economicCost(), 1)
                             : "-",
                V.feasible() ? std::to_string(V.Result.Dist.makespan()) : "-",
                V.feasible() ? "yes" : "no"});
    }
    T.print(std::cout);
  }

  const ScheduleVariant *Best = S.bestByCost();
  if (Best) {
    std::cout << "\nCheapest distribution (the paper's Distribution 2 "
                 "analogue), task allocations:\n";
    Table T({"task", "node", "start", "end"});
    for (const auto &Task : J.tasks()) {
      const Placement *P = Best->Result.Dist.find(Task.Id);
      T.addRow({Task.Name, std::to_string(P->NodeId + 1),
                std::to_string(P->Start), std::to_string(P->End)});
    }
    T.print(std::cout);

    GanttOptions Options;
    Options.ShowIdleNodes = true;
    Options.Width = 40;
    std::cout << "\nTimeline (the Fig. 2b picture):\n"
              << renderGantt(J, Env, Best->Result.Dist, Options);

    std::cout << "\nCollisions during construction (paper: P4 and P5 "
                 "simultaneously attempt one node; resolved by moving "
                 "one of them):\n";
    Table C({"task", "contended node", "wanted", "got", "resolution"});
    for (const auto &Record : Best->Result.Collisions)
      C.addRow({J.task(Record.TaskId).Name,
                std::to_string(Record.NodeId + 1),
                std::to_string(Record.WantedStart),
                std::to_string(Record.ActualStart),
                collisionResolutionName(Record.Resolution)});
    if (Best->Result.Collisions.empty())
      C.addRow({"(none)"});
    C.print(std::cout);
  }

  std::cout << "\nNote: node ids printed 1..4 match the paper's node "
               "types. The paper's absolute CF values (41/37/41) are not "
               "derivable from its own Fig. 2a table; CWS reproduces the "
               "shape: a unique cheapest distribution among alternative "
               "supporting schedules. See EXPERIMENTS.md.\n";
  return 0;
}
