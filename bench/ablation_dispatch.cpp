//===-- bench/ablation_dispatch.cpp - Domain dispatch ablation ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the metascheduler's job-flow distribution between
/// processor-node domains (Fig. 1): round-robin, least booked load,
/// EWMA load forecast (the Section-5 forecasting item) and an economic
/// tender where domains bid their cheapest admissible schedule. A job
/// stream is committed greedily; the sweep reports admission, cost and
/// domain balance per policy.
///
//===----------------------------------------------------------------------===//

#include "flow/Dispatch.h"
#include "flow/Metascheduler.h"
#include "job/Generator.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 300;
  int64_t Seed = 2009;
  int64_t DomainCount = 3;
  Flags F;
  F.addInt("jobs", &Jobs, "jobs in the stream");
  F.addInt("seed", &Seed, "experiment seed");
  F.addInt("domains", &DomainCount, "striped domains");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== ABLATION: domain dispatch policies (" << Jobs
            << " jobs, " << DomainCount << " striped domains) ===\n\n";

  Table T({"policy", "admitted %", "mean cost", "mean makespan",
           "domain imbalance", "grid util %"});

  for (DispatchPolicy Policy :
       {DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
        DispatchPolicy::LeastForecast, DispatchPolicy::CheapestBid}) {
    // Fresh, identical world per policy.
    Prng EnvRng(static_cast<uint64_t>(Seed));
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
    Network Net;
    WorkloadConfig W;
    W.DeadlineSlack = 1.7;
    JobGenerator Gen(W, static_cast<uint64_t>(Seed) + 1);
    std::vector<Domain> Domains =
        partitionStriped(Env, static_cast<size_t>(DomainCount));
    DomainDispatcher Dispatcher(Env, Net, StrategyConfig{}, Domains, Policy);

    RatioCounter Admitted;
    OnlineStats Cost, Makespan;
    std::vector<size_t> PerDomain(Domains.size(), 0);
    Tick Now = 0;
    Tick LastObserve = 0;
    for (int64_t I = 0; I < Jobs; ++I) {
      Now += 5;
      if (Policy == DispatchPolicy::LeastForecast && Now - LastObserve >= 48) {
        Dispatcher.observeLoad(Now, 48);
        LastObserve = Now;
      }
      Job J = Gen.next(Now);
      OwnerId Owner = Metascheduler::ownerOf(J.id());
      DispatchDecision D = Dispatcher.dispatch(J, Owner, Now);
      const ScheduleVariant *Pick = D.S.bestFitting(Env);
      if (!Pick) {
        Admitted.add(false);
        continue;
      }
      bool Committed = Pick->Result.Dist.commit(Env, Owner);
      Admitted.add(Committed);
      if (!Committed)
        continue;
      ++PerDomain[D.DomainIdx];
      Cost.add(Pick->Result.Dist.economicCost());
      Makespan.add(static_cast<double>(Pick->Result.Dist.makespan() -
                                       J.release()));
    }

    // Imbalance: coefficient of variation of per-domain job counts.
    OnlineStats Counts;
    for (size_t N : PerDomain)
      Counts.add(static_cast<double>(N));
    double Imbalance =
        Counts.mean() > 0 ? Counts.stddev() / Counts.mean() : 0.0;
    double Util = 0.0;
    for (const auto &N : Env.nodes())
      Util += N.timeline().utilization(0, Now + 100);
    Util = 100.0 * Util / static_cast<double>(Env.size());

    T.addRow({dispatchPolicyName(Policy), Table::num(Admitted.percent(), 1),
              Table::num(Cost.mean(), 0), Table::num(Makespan.mean(), 1),
              Table::num(Imbalance, 2), Table::num(Util, 1)});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: the economic tender admits the most jobs "
               "at the lowest cost (it always finds the cheapest hosting "
               "domain) at the price of one strategy build per bid; "
               "least-booked-load is nearly as good for free. The EWMA "
               "history forecast trails both — when reservation calendars "
               "are globally visible, the booked future beats any "
               "extrapolated past; forecasting earns its keep only where "
               "calendars are not shared (the situation Section 5 has in "
               "mind).\n";
  return 0;
}
