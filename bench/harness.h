//===-- bench/harness.h - Structured benchmark harness ----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured benchmark harness behind `tools/cws-bench`: benches
/// self-register with `CWS_BENCH`, the runner executes them with
/// warmup/repetition discipline, pools per-repetition metric samples
/// through `sweep::SweepAccumulator` (mean, stddev, CI95, exact
/// quantiles), and emits one schema-validated `BENCH_<name>.json` per
/// bench carrying:
///
///  - a provenance stamp (seed, exec seed, config hash, scenario,
///    shards, invalidation mode, CLI) — the same fail-loudly identity
///    `cws-sweep` pooling applies;
///  - **work counters**: deterministic per-run quantities (placements
///    re-validated, DP labels kept, variants built). The harness checks
///    them stable across repetitions and `cws-bench --against` gates on
///    them exactly — the only honest ratchet on a noisy 1-core host;
///  - **metrics**: measured distributions (wall times, throughputs).
///    Compared with the CI-overlap + quantile-shift tests of
///    `obs/Diff`, but always *advisory* — they never move the exit
///    code;
///  - **checks**: named pass/fail invariants (differential oracles,
///    overhead budgets). Any failure fails the bench run itself;
///  - the merged phase **profile** of the measured repetitions.
///
/// Comparison verdicts follow the repo-wide exit convention: 0 pass
/// (identical or wall-time-only wobble), 1 regression (work counter or
/// check), 2 refusal (provenance identity mismatch, I/O, schema).
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BENCH_HARNESS_H
#define CWS_BENCH_HARNESS_H

#include "obs/Profiler.h"
#include "obs/Provenance.h"
#include "obs/Report.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cws {
namespace bench {

class BenchContext;
using BenchFn = void (*)(BenchContext &);

/// One registered benchmark.
struct BenchInfo {
  const char *Name;
  const char *Description;
  BenchFn Fn;
  /// Measured repetitions / discarded warmup repetitions when the CLI
  /// does not override them.
  int DefaultReps = 3;
  int DefaultWarmup = 1;
  /// False for benches that measure observability primitives and must
  /// control the profiler themselves (obs_overhead).
  bool Profile = true;
};

/// The process-wide bench registry `CWS_BENCH` populates.
class BenchRegistry {
public:
  static BenchRegistry &global();
  void add(const BenchInfo &Info);
  /// All registered benches, sorted by name.
  std::vector<const BenchInfo *> all() const;

private:
  std::vector<BenchInfo> Benches;
};

/// Static-initializer hook of the `CWS_BENCH` macro.
struct BenchRegistrar {
  explicit BenchRegistrar(const BenchInfo &Info) {
    BenchRegistry::global().add(Info);
  }
};

/// Declares and registers a bench body:
///
///   CWS_BENCH(env_invalidation, "what one env change costs", 3, 1,
///             /*Profile=*/true) {
///     Ctx.setSeed(7);
///     ...
///   }
#define CWS_BENCH(NameIdent, Desc, Reps, Warmup, Prof)                         \
  static void NameIdent##BenchBody(::cws::bench::BenchContext &);              \
  static ::cws::bench::BenchRegistrar NameIdent##BenchReg(                     \
      {#NameIdent, Desc, &NameIdent##BenchBody, Reps, Warmup, Prof});          \
  static void NameIdent##BenchBody(::cws::bench::BenchContext &Ctx)

/// One named pass/fail invariant of a bench run.
struct CheckOutcome {
  std::string What;
  bool Pass = true;
};

/// The per-repetition recording surface a bench body writes into.
class BenchContext {
public:
  /// False while the harness is warming up; samples, work and checks
  /// recorded during warmup are discarded.
  bool measured() const { return Measured; }
  /// 0-based measured repetition index.
  size_t rep() const { return Rep; }

  /// Canonical configuration text hashed (with the bench name) into
  /// the provenance config hash; pass the knobs that shape the
  /// workload, `key=value` per line.
  void setConfig(const std::string &CanonicalText);
  /// Workload seed stamped into provenance.
  void setSeed(uint64_t S);
  /// Execution-stage seed stamped into provenance (defaults to the
  /// workload seed; VO benches pass the root seed the per-job
  /// execution PRNGs fork from).
  void setExecSeed(uint64_t S);
  /// Invalidation mode stamped into provenance ("index" by default).
  void setInvalidation(const std::string &Mode);

  /// Records a deterministic work counter. Values must agree across
  /// measured repetitions; a disagreement records a failed
  /// `work_stable:<counter>` check.
  void setWork(const std::string &Counter, uint64_t Value);
  /// Records one sample of a measured metric for this repetition.
  void addMetric(const std::string &Name, double Sample);
  /// Records a named invariant; any failure fails the bench.
  void check(const std::string &What, bool Ok);

private:
  friend struct BenchRunner;
  bool Measured = false;
  size_t Rep = 0;
  std::string ConfigText;
  uint64_t Seed = 0;
  uint64_t ExecSeed = 0;
  bool ExecSeedSet = false;
  std::string Invalidation = "index";
  std::vector<std::pair<std::string, uint64_t>> Work;
  std::map<std::string, double> RepMetrics;
  std::vector<CheckOutcome> Checks;
};

/// Everything one bench run produced; `json()` is the
/// `BENCH_<name>.json` document.
struct BenchRun {
  const BenchInfo *Info = nullptr;
  obs::RunProvenance Prov;
  uint64_t ExecSeed = 0;
  std::string Invalidation;
  int Reps = 0;
  int Warmup = 0;
  /// Sorted by counter name.
  std::vector<std::pair<std::string, uint64_t>> Work;
  /// Sorted by check name.
  std::vector<CheckOutcome> Checks;
  /// Metric name -> pooled repetition statistics.
  std::map<std::string, obs::SweepIndicatorStats> Metrics;
  /// Merged phase profile of the measured repetitions.
  std::vector<obs::PhaseStats> Profile;

  bool passed() const;
  /// The `cws-bench-v1` JSON document.
  std::string json() const;
};

/// Runs \p Info with \p Reps measured and \p Warmup discarded
/// repetitions. Non-positive \p Reps and negative \p Warmup fall back
/// to the bench defaults (zero warmup is a legitimate explicit
/// choice); \p Cli is stamped into provenance.
BenchRun runBench(const BenchInfo &Info, int Reps, int Warmup,
                  const std::string &Cli);

/// A parsed `BENCH_<name>.json`.
struct ParsedBench {
  std::string Name;
  std::string Description;
  uint64_t Seed = 0;
  uint64_t ExecSeed = 0;
  std::string ConfigHash;
  std::string Scenario;
  std::string Invalidation;
  std::string Cli;
  int64_t Shards = 0;
  int64_t Reps = 0;
  int64_t Warmup = 0;
  std::vector<std::pair<std::string, uint64_t>> Work;
  std::vector<CheckOutcome> Checks;
  std::map<std::string, obs::SweepIndicatorStats> Metrics;
  size_t ProfilePhases = 0;
};

/// Parses text written by `BenchRun::json`. Returns false and sets
/// \p Error on malformed input or a schema mismatch.
bool parseBenchJson(const std::string &Text, ParsedBench &Out,
                    std::string &Error);

/// Comparison outcome of one bench against its baseline, ordered by
/// severity.
enum class BenchVerdict : uint8_t {
  /// Work, checks and metric statistics field-equal.
  Identical,
  /// Work and checks equal; some metric moved, but metrics are
  /// advisory (wall-time wobble).
  Compatible,
  /// A work counter changed or a check fails — the hard gate.
  Regressed,
  /// Provenance identity mismatch: the runs measure different
  /// configurations and must not be compared.
  Refused,
};

const char *benchVerdictName(BenchVerdict V);

/// Result of `compareBench`.
struct BenchCompareResult {
  BenchVerdict Verdict = BenchVerdict::Identical;
  /// Hard findings: work-counter mismatches, failed checks.
  std::vector<std::string> Gated;
  /// Advisory findings: metric shifts outside the CI-overlap /
  /// quantile-shift tolerance, one-sided records.
  std::vector<std::string> Advisory;
  /// Refusal causes: the mismatched provenance identity fields.
  std::vector<std::string> Mismatched;
};

/// Compares \p New against \p Base. Identity fields (config hash,
/// scenario, seed, exec seed, invalidation) must match or the verdict
/// is Refused; shard count and CLI text may differ (the shard-invariance
/// contract). Work counters and checks gate; metric statistics are
/// tested with the CI-overlap (|meanA - meanB| <= ci95A + ci95B) and
/// relative quantile-shift (tolerance \p QuantileShiftTol) rules of
/// `obs/Diff` but only ever produce advisory findings.
BenchCompareResult compareBench(const ParsedBench &Base,
                                const ParsedBench &New,
                                double QuantileShiftTol = 0.10);

/// Renders one bench run as console text (work / metric / check
/// tables).
std::string renderBenchRun(const BenchRun &Run);

/// Renders a comparison: verdict line plus finding lines.
std::string renderBenchCompare(const std::string &Name,
                               const BenchCompareResult &R);

/// The `cws-bench` CLI (also the main of the per-bench alias binaries,
/// which pass their bench name as \p DefaultFilter). Returns the
/// process exit code.
int benchMain(int Argc, char **Argv, const std::string &DefaultFilter);

} // namespace bench
} // namespace cws

#endif // CWS_BENCH_HARNESS_H
