//===-- bench/obs_overhead.cpp - Observability overhead guard -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the observability layer costs on the scheduling hot
/// path: `scheduleJob` throughput with tracing disabled vs enabled,
/// plus the raw per-call price of a disabled span, a counter add and a
/// guarded disabled-journal append. Aborts when the disabled-mode
/// primitives are not effectively free — the contract that lets
/// instrumentation live in hot paths.
///
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Job.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "resource/Grid.h"
#include "resource/Network.h"
#include "support/Check.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace cws;

static Job makeBenchJob() {
  Job J;
  unsigned Prev = J.addTask("t0", 2, 20);
  for (int I = 1; I < 8; ++I) {
    unsigned T = J.addTask("t" + std::to_string(I), 1 + I % 3, 10 * (1 + I % 3));
    J.addEdge(Prev, T, 1);
    // A fork every third task makes several critical works per job.
    if (I % 3 == 0) {
      unsigned Side = J.addTask("s" + std::to_string(I), 2, 20);
      J.addEdge(Prev, Side, 1);
      J.addEdge(Side, T, 1);
    }
    Prev = T;
  }
  J.setDeadline(400);
  return J;
}

static Grid makeBenchGrid() {
  Grid G;
  for (double Perf : {1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.33, 0.33})
    G.addNode(Perf);
  return G;
}

/// Wall-clock nanoseconds of \p Fn.
template <typename F> static double timeNs(F &&Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

int main() {
  const Job J = makeBenchJob();
  const Grid Env = makeBenchGrid();
  const Network Net;
  SchedulerConfig Config;

  constexpr int Warmup = 50;
  constexpr int Iters = 400;
  size_t Feasible = 0;
  auto RunBatch = [&](int N) {
    for (int I = 0; I < N; ++I)
      Feasible += scheduleJob(J, Env, Net, Config, /*Owner=*/1, 0).Feasible;
  };

  // --- scheduleJob throughput, tracing disabled. ---
  obs::Tracer::global().reset();
  RunBatch(Warmup);
  double DisabledNs = timeNs([&] { RunBatch(Iters); }) / Iters;

  // --- scheduleJob throughput, tracing enabled. ---
  obs::Tracer::global().enable(1 << 20);
  RunBatch(Warmup);
  double EnabledNs = timeNs([&] { RunBatch(Iters); }) / Iters;
  uint64_t EventsPerCall =
      obs::Tracer::global().recorded() / (Warmup + Iters);
  obs::Tracer::global().reset();

  // --- Raw disabled-mode primitives: one span + one counter add +
  // one guarded journal append, exactly as the instrumentation sites
  // are written. ---
  constexpr int PrimIters = 2000000;
  obs::Counter &C = obs::Registry::global().counter("bench_obs_probe_total");
  obs::Journal &Jn = obs::Journal::global();
  obs::TimeSeries &Ts = obs::TimeSeries::global();
  Jn.reset();
  Ts.reset();
  double PrimNs = timeNs([&] {
                    for (int I = 0; I < PrimIters; ++I) {
                      obs::Span S("bench", "probe");
                      C.add();
                      if (Jn.enabled())
                        Jn.append(obs::JournalKind::Note, I, I,
                                  {{"i", I}});
                      Ts.onTick(I);
                    }
                  }) /
                  PrimIters;
  CWS_CHECK(Jn.recorded() == 0,
            "the disabled journal must not record the bench probe");
  CWS_CHECK(Ts.recorded() == 0,
            "the disabled sampler must not take frames off the bench probe");

  Table T({"configuration", "ns / scheduleJob", "vs disabled"});
  T.addRow({"tracing disabled", Table::num(DisabledNs, 0), "1.00x"});
  T.addRow({"tracing enabled", Table::num(EnabledNs, 0),
            Table::num(EnabledNs / DisabledNs, 2) + "x"});
  T.print(std::cout);
  std::printf("\ntrace events per scheduleJob while enabled: %llu\n",
              static_cast<unsigned long long>(EventsPerCall));
  std::printf("disabled span + counter + journal + sampler tick: "
              "%.2f ns/op\n",
              PrimNs);
  std::printf("(feasible results: %zu, keeps the optimizer honest)\n",
              Feasible);

  // The disabled path must stay a relaxed load + branch. 50 ns/op is
  // an order of magnitude above what it costs on any current machine,
  // so a trip means someone put a lock or an allocation on it.
  CWS_CHECK(PrimNs < 50.0,
            "disabled-mode observability is no longer negligible");
  std::printf("\nOK: disabled-mode overhead is negligible\n");
  return 0;
}
