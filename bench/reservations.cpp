//===-- bench/reservations.cpp - Section 5 advance reservations -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5: "preliminary reservation nearly always increases queue
/// waiting time. Backfilling decreases this time." The bench sweeps the
/// share of cluster capacity taken by advance reservations and reports
/// queue waiting with and without backfilling.
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 1500;
  int64_t Nodes = 16;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "batch jobs in the trace");
  F.addInt("nodes", &Nodes, "cluster node count");
  F.addInt("seed", &Seed, "trace seed");
  if (!F.parse(Argc, Argv))
    return 0;

  BatchWorkloadConfig W;
  W.JobCount = static_cast<size_t>(Jobs);
  W.NodesHi = static_cast<unsigned>(Nodes) / 2;
  std::vector<BatchJob> Trace =
      makeBatchTrace(W, static_cast<uint64_t>(Seed));
  Tick TraceEnd = Trace.back().Arrival + 200;

  std::cout << "=== SEC 5: advance reservations vs queue waiting time ("
            << Jobs << " jobs, " << Nodes << " nodes) ===\n\n";

  Table T({"reserved nodes", "period", "fcfs wait", "fcfs+easy wait",
           "fcfs+conservative wait"});

  for (unsigned Share : {0u, 2u, 4u, 6u}) {
    std::vector<AdvanceReservation> Resv;
    if (Share > 0)
      for (Tick At = 100; At < TraceEnd; At += 300)
        Resv.push_back({At, At + 120, Share});

    std::vector<std::string> Row{std::to_string(Share),
                                 Share ? "120 every 300" : "-"};
    for (BackfillMode Mode :
         {BackfillMode::None, BackfillMode::Easy,
          BackfillMode::Conservative}) {
      ClusterConfig Config;
      Config.NodeCount = static_cast<unsigned>(Nodes);
      Config.Backfill = Mode;
      ClusterMetrics M = summarizeCluster(
          Trace, runCluster(Config, Trace, Resv), Config.NodeCount);
      Row.push_back(Table::num(M.MeanWait, 1));
    }
    T.addRow(Row);
  }

  T.print(std::cout);
  std::cout << "\nClaims under test: waiting time grows with the reserved "
               "capacity share (rows top to bottom) and backfilling "
               "recovers part of the loss (columns left to right).\n";
  return 0;
}
