//===-- bench/deadline_sweep.cpp - QoS pressure sensitivity ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sensitivity of the Fig. 3a result to QoS pressure: admissibility per
/// strategy type as the fixed-completion-time slack sweeps from brutal
/// to comfortable. Shows where the strategy types separate and where S3
/// (coarse grain) catches up — the crossover structure behind the
/// paper's single operating point.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 1000;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs per slack level");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== SWEEP: admissibility vs deadline slack (" << Jobs
            << " jobs per level) ===\n\n";

  Table T({"deadline slack", "S1 %", "S2 %", "S3 %", "S3/S1 ratio"});
  for (double Slack : {1.2, 1.35, 1.5, 1.8, 2.2, 2.8}) {
    Fig3Config Config;
    Config.JobCount = static_cast<size_t>(Jobs);
    Config.Seed = static_cast<uint64_t>(Seed);
    Config.Workload.DeadlineSlack = Slack;
    std::vector<Fig3Row> Rows = runFig3(Config);
    double S1 = Rows[0].admissiblePercent();
    double S3 = Rows[2].admissiblePercent();
    T.addRow({Table::num(Slack, 2), Table::num(S1, 1),
              Table::num(Rows[1].admissiblePercent(), 1),
              Table::num(S3, 1),
              Table::num(S1 > 0 ? S3 / S1 : 0.0, 2)});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: under brutal deadlines every strategy "
               "collapses together; the paper's ~38 % operating point "
               "(slack 1.5) is where the types separate most; with "
               "comfortable slack S3's coarse macro-tasks stop being a "
               "handicap (the S3/S1 ratio climbs toward 1).\n";
  return 0;
}
