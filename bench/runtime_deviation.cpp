//===-- bench/runtime_deviation.cpp - Schedule reliability ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Actual solving time Ti for a task can be different from user
/// estimation Tij" — this study executes committed schedules under
/// increasing runtime uncertainty and reports reliability (deadline
/// hits, kills at the wall limit) and completion-forecast error per
/// strategy type. The question behind it: whose supporting schedules
/// degrade gracefully when estimates are wrong?
///
//===----------------------------------------------------------------------===//

#include "flow/Execution.h"
#include "core/Strategy.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 500;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "jobs per uncertainty level");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== EXECUTION: schedule reliability under runtime "
               "uncertainty (" << Jobs << " jobs per level) ===\n\n";

  struct Level {
    const char *Name;
    double Lo, Hi;
  };
  const Level Levels[] = {
      {"exact (1.0)", 1.0, 1.0},
      {"optimistic (0.6-1.0)", 0.6, 1.0},
      {"noisy (0.6-1.1)", 0.6, 1.1},
      {"underestimated (0.8-1.3)", 0.8, 1.3},
  };
  const StrategyKind Kinds[] = {StrategyKind::S1, StrategyKind::S2,
                                StrategyKind::S3};

  Table T({"uncertainty", "strategy", "deadline hit %", "killed %",
           "mean completion gain", "mean early finishes"});

  for (const auto &L : Levels) {
    for (StrategyKind Kind : Kinds) {
      WorkloadConfig W;
      W.DeadlineSlack = 2.0;
      JobGenerator Gen(W, static_cast<uint64_t>(Seed));
      Prng EnvRng(static_cast<uint64_t>(Seed) ^ 0xe0e0);
      Prng ExecRng(static_cast<uint64_t>(Seed) ^ 0xfafa);
      Network Net;
      RatioCounter Hit, Killed;
      OnlineStats Gain, Early;
      for (int64_t I = 0; I < Jobs; ++I) {
        Job J = Gen.next(0);
        Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
        StrategyConfig SC;
        SC.Kind = Kind;
        Strategy S = Strategy::build(J, Env, Net, SC, 42);
        const ScheduleVariant *Best = S.bestByCost();
        if (!Best)
          continue;
        Distribution D = Best->Result.Dist;
        if (!D.commit(Env, 42))
          continue;
        ExecutionConfig EC;
        EC.FactorLo = L.Lo;
        EC.FactorHi = L.Hi;
        EC.DataKind = strategyDataPolicy(Kind);
        ExecutionResult R =
            executeDistribution(S.scheduledJob(), D, Env, ExecRng, EC);
        Hit.add(R.Succeeded && R.MetDeadline);
        Killed.add(R.Kills > 0);
        if (R.Succeeded) {
          Gain.add(static_cast<double>(R.CompletionGain));
          Early.add(static_cast<double>(R.EarlyFinishes));
        }
      }
      T.addRow({L.Name, strategyName(Kind), Table::num(Hit.percent(), 1),
                Table::num(Killed.percent(), 1), Table::num(Gain.mean(), 1),
                Table::num(Early.mean(), 1)});
    }
  }
  T.print(std::cout);

  std::cout << "\nReading guide: with exact estimates execution replays "
               "the plan perfectly (row 1: 100 % / 0 kills — a sanity "
               "check of the whole pipeline). With overestimating users "
               "(the realistic case) every strategy banks completion "
               "gains from early finishes. Once real runtimes can exceed "
               "the reservations, kills at the wall limit dominate — "
               "*fine-grain* plans suffer most (S1 > S2 > S3): every "
               "task is another chance to overrun into a neighbouring "
               "reservation, while S3's few macro-tasks sit next to more "
               "free space. Tight plans are fragile plans; the wall-time "
               "discipline the paper's advance reservations imply is "
               "only as good as the estimates behind it.\n";
  return 0;
}
