//===-- bench/fig4a_load.cpp - Reproduce Fig. 4a --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 4a: average node load level per relative-performance group when
/// compound job flows run through the coordinated two-level framework.
/// Paper shape: S1 leans on slow nodes, S2 balances the groups best,
/// S3 leans toward the high-performance end.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 400;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs per strategy run");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  Fig4Config Config;
  Config.Vo.JobCount = static_cast<size_t>(Jobs);
  Config.Seed = static_cast<uint64_t>(Seed);
  Config.Kinds = {StrategyKind::S1, StrategyKind::S2, StrategyKind::S3};

  std::cout << "=== FIG 4a: average node load level by performance group ("
            << Jobs << " jobs per strategy) ===\n\n";
  std::vector<Fig4Row> Rows = runFig4(Config);

  Table T({"strategy", "fast (0.66-1) %", "medium (0.33-0.66) %",
           "slow (0.33) %", "slow share"});
  for (const auto &R : Rows) {
    double Total = R.LoadFast + R.LoadMedium + R.LoadSlow;
    T.addRow({strategyName(R.Kind), Table::num(R.LoadFast, 1),
              Table::num(R.LoadMedium, 1), Table::num(R.LoadSlow, 1),
              Table::num(Total > 0 ? 100.0 * R.LoadSlow / Total : 0.0, 0) +
                  "%"});
  }
  T.print(std::cout);

  std::cout << "\nShape check (paper Fig. 4a): S1's load distribution is "
               "the most slow-node-heavy, S3's the least (its coarse "
               "macro-tasks need the faster groups), S2 in between.\n";
  return 0;
}
