//===-- bench/local_policies.cpp - Section 5 local queue policies ---------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5 compares local batch queue-management models: FCFS, LWF,
/// backfilling and gang scheduling. Claims under test: "with the use of
/// FCFS strategy waiting time is shorter than with the use of LWF. On
/// the other hand, estimation error for starting time forecast is
/// bigger with FCFS than with LWF", and "backfilling decreases this
/// [waiting] time".
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "batch/Gang.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 2000;
  int64_t Nodes = 16;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "batch jobs in the trace");
  F.addInt("nodes", &Nodes, "cluster node count");
  F.addInt("seed", &Seed, "trace seed");
  if (!F.parse(Argc, Argv))
    return 0;

  BatchWorkloadConfig W;
  W.JobCount = static_cast<size_t>(Jobs);
  W.NodesHi = static_cast<unsigned>(Nodes) / 2;
  W.PriorityLevels = 3; // Exercised by the priority rows.
  std::vector<BatchJob> Trace =
      makeBatchTrace(W, static_cast<uint64_t>(Seed));

  std::cout << "=== SEC 5: local queue-management policies (" << Jobs
            << " jobs, " << Nodes << " nodes) ===\n\n";

  Table T({"policy", "mean wait", "p95 wait", "max wait", "forecast error",
           "mean slowdown", "utilization %"});

  auto AddRow = [&](const std::string &Name, const ClusterMetrics &M,
                    const std::vector<BatchOutcome> &Out) {
    std::vector<double> Waits;
    Waits.reserve(Out.size());
    for (const auto &O : Out)
      Waits.push_back(static_cast<double>(O.wait()));
    T.addRow({Name, Table::num(M.MeanWait, 1),
              Table::num(quantile(Waits, 0.95), 0), Table::num(M.MaxWait, 0),
              Table::num(M.MeanForecastError, 1),
              Table::num(M.MeanSlowdown, 2),
              Table::num(100.0 * M.Utilization, 0)});
  };

  for (QueueOrder Order :
       {QueueOrder::FCFS, QueueOrder::LWF, QueueOrder::Priority})
    for (BackfillMode Mode :
         {BackfillMode::None, BackfillMode::Easy,
          BackfillMode::Conservative}) {
      ClusterConfig Config;
      Config.NodeCount = static_cast<unsigned>(Nodes);
      Config.Order = Order;
      Config.Backfill = Mode;
      auto Out = runCluster(Config, Trace);
      AddRow(std::string(queueOrderName(Order)) + "+" +
                 backfillModeName(Mode),
             summarizeCluster(Trace, Out, Config.NodeCount), Out);
    }

  // Gang scheduling for completeness (no reservation-style forecast).
  {
    GangConfig GC;
    GC.NodeCount = static_cast<unsigned>(Nodes);
    auto Out = runGang(GC, Trace);
    ClusterMetrics M = summarizeCluster(Trace, Out,
                                        static_cast<unsigned>(Nodes));
    std::vector<double> Waits;
    for (const auto &O : Out)
      Waits.push_back(static_cast<double>(O.wait()));
    T.addRow({"gang(q=4)", Table::num(M.MeanWait, 1),
              Table::num(quantile(Waits, 0.95), 0),
              Table::num(M.MaxWait, 0), "-", Table::num(M.MeanSlowdown, 2),
              Table::num(100.0 * M.Utilization, 0)});
  }

  T.print(std::cout);
  std::cout << "\nClaims under test (Section 5): backfilling decreases "
               "waiting time versus plain FCFS; FCFS versus LWF waiting "
               "time and forecast error are compared in the first and "
               "fourth rows. Gang scheduling trades utilization for "
               "short-job responsiveness.\n";
  return 0;
}
