//===-- bench/fig4b_cost_time.cpp - Reproduce Fig. 4b ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 4b: relative job completion cost and relative task execution
/// time for the MS1 / S2 / S3 strategies. Paper shape: the lowest-cost
/// strategies are the "slowest" ones like S3; S2 is the fastest, most
/// expensive and most accurate; less accurate strategies like MS1 give
/// longer completion times than S2.
///
/// Methodology: the three runs share the same job flow and environment
/// seed; the reported means are *paired* — computed only over jobs that
/// every strategy managed to commit — so a strategy that rejects the
/// hard jobs cannot look artificially fast on the easy remainder.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <map>
#include <set>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 400;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs per strategy run");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  const StrategyKind Kinds[] = {StrategyKind::MS1, StrategyKind::S2,
                                StrategyKind::S3};

  VoConfig Config = makeFig4VoConfig();
  Config.JobCount = static_cast<size_t>(Jobs);

  std::cout << "=== FIG 4b: relative job completion cost and task "
               "execution time (" << Jobs << " jobs per strategy, paired "
               "over commonly committed jobs) ===\n\n";

  // Per-kind, per-job records.
  std::map<StrategyKind, std::map<unsigned, const VoJobStats *>> ByKind;
  std::vector<VoRunResult> Runs;
  Runs.reserve(3);
  for (StrategyKind Kind : Kinds)
    Runs.push_back(runVirtualOrganization(Config, Kind,
                                          static_cast<uint64_t>(Seed)));
  for (const auto &Run : Runs)
    for (const auto &St : Run.Jobs)
      if (St.Committed)
        ByKind[Run.Kind][St.JobId] = &St;

  // Jobs committed under every strategy.
  std::set<unsigned> Common;
  bool First = true;
  for (StrategyKind Kind : Kinds) {
    std::set<unsigned> Ids;
    for (const auto &[JobId, St] : ByKind[Kind])
      Ids.insert(JobId);
    if (First) {
      Common = std::move(Ids);
      First = false;
    } else {
      std::set<unsigned> Keep;
      std::set_intersection(Common.begin(), Common.end(), Ids.begin(),
                            Ids.end(), std::inserter(Keep, Keep.begin()));
      Common = std::move(Keep);
    }
  }

  struct Row {
    double Cf = 0.0;
    double Econ = 0.0;
    double Run = 0.0;
    double Response = 0.0;
  };
  std::map<StrategyKind, Row> Rows;
  for (StrategyKind Kind : Kinds) {
    Row &R = Rows[Kind];
    for (unsigned JobId : Common) {
      const VoJobStats *St = ByKind[Kind][JobId];
      R.Cf += static_cast<double>(St->Cf);
      R.Econ += St->Cost;
      R.Run += static_cast<double>(St->runTicks());
      R.Response += static_cast<double>(St->Completion - St->Arrival);
    }
    auto N = static_cast<double>(std::max<size_t>(1, Common.size()));
    R.Cf /= N;
    R.Econ /= N;
    R.Run /= N;
    R.Response /= N;
  }

  double MaxCf = 0.0, MaxEcon = 0.0, MaxResponse = 0.0;
  for (const auto &[Kind, R] : Rows) {
    MaxCf = std::max(MaxCf, R.Cf);
    MaxEcon = std::max(MaxEcon, R.Econ);
    MaxResponse = std::max(MaxResponse, R.Response);
  }

  Table T({"strategy", "rel. completion cost (CF)", "rel. econ cost",
           "rel. task execution time", "mean CF", "mean completion ticks"});
  for (StrategyKind Kind : Kinds) {
    const Row &R = Rows[Kind];
    T.addRow({strategyName(Kind),
              Table::num(MaxCf > 0 ? R.Cf / MaxCf : 0.0, 2),
              Table::num(MaxEcon > 0 ? R.Econ / MaxEcon : 0.0, 2),
              Table::num(MaxResponse > 0 ? R.Response / MaxResponse : 0.0,
                         2),
              Table::num(R.Cf, 1), Table::num(R.Response, 1)});
  }
  T.print(std::cout);
  std::cout << "\n(paired over " << Common.size()
            << " jobs committed by all three strategies)\n";

  std::cout << "\nShape check (paper Fig. 4b): S3 has the lowest relative "
               "completion cost (CF) and sits at the slow end; MS1's "
               "reduced estimation coverage makes its completion times "
               "longer than S2's on the same jobs. See EXPERIMENTS.md "
               "for the residual deviations.\n";
  return 0;
}
