//===-- bench/ablation_repair.cpp - Collision repair ablation -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the inter-chain collision repair mechanism: when a later
/// critical work cannot fit the windows left by earlier ones, the
/// scheduler may release and reschedule the blocking placements. The
/// sweep varies the repair budget and reports how many jobs become
/// schedulable because of it.
///
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 1500;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs in the population");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== ABLATION: inter-chain collision repair budget ("
            << Jobs << " jobs, cost and time bias) ===\n\n";

  Table T({"repair budget", "feasible % (cost)", "feasible % (time)",
           "mean collisions", "mean cost when feasible"});

  for (int Budget : {0, 1, 2, 4, 8}) {
    JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed));
    Prng EnvRng(static_cast<uint64_t>(Seed) ^ 0x51ed);
    Prng LoadRng(static_cast<uint64_t>(Seed) ^ 0x10ad);
    Network Net;
    RatioCounter CostFeasible, TimeFeasible;
    OnlineStats Collisions, Cost;
    for (int64_t I = 0; I < Jobs; ++I) {
      Job J = Gen.next(0);
      Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
      preloadGrid(Env, J.deadline(), 0.3, 0.6, 2, 8, LoadRng);
      for (OptimizationBias Bias :
           {OptimizationBias::Cost, OptimizationBias::Time}) {
        SchedulerConfig Config;
        Config.Alloc.Bias = Bias;
        Config.RepairBudget = Budget;
        ScheduleResult R = scheduleJob(J, Env, Net, Config, 42);
        (Bias == OptimizationBias::Cost ? CostFeasible : TimeFeasible)
            .add(R.Feasible);
        if (Bias == OptimizationBias::Cost && R.Feasible) {
          Collisions.add(static_cast<double>(R.Collisions.size()));
          Cost.add(R.Dist.economicCost());
        }
      }
    }
    T.addRow({std::to_string(Budget), Table::num(CostFeasible.percent(), 1),
              Table::num(TimeFeasible.percent(), 1),
              Table::num(Collisions.mean(), 2), Table::num(Cost.mean(), 0)});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: budget 0 disables the paper's resolution "
               "of conflicts between critical works; the feasibility gap "
               "between the first and last row is what that mechanism "
               "buys. Time-biased scheduling depends on it most (its "
               "tightly packed first chains strangle later ones).\n";
  return 0;
}
