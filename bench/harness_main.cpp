//===-- bench/harness_main.cpp - Per-bench alias entry point --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The main of the per-bench alias binaries (`bench/env_invalidation`,
/// `bench/obs_overhead`, ...): the full `cws-bench` CLI preset to one
/// registered bench via the `CWS_BENCH_DEFAULT_FILTER` compile
/// definition, so existing scripts and CI invocations keep their
/// binary names while the structured harness does the work.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

#ifndef CWS_BENCH_DEFAULT_FILTER
#define CWS_BENCH_DEFAULT_FILTER ""
#endif

int main(int Argc, char **Argv) {
  return cws::bench::benchMain(Argc, Argv, CWS_BENCH_DEFAULT_FILTER);
}
