//===-- bench/multiflow.cpp - Competing job flows -------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 1 shows job flows i, j, k that "intersect each other on nodes".
/// This study puts the strategy types into direct competition: one flow
/// per type, fed round-robin from the same arrival stream on the same
/// grid. Unlike the isolated Fig. 4 runs, here each flow's reservations
/// are part of every other flow's environment.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "metrics/QoS.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 600;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "total compound jobs (dealt across the flows)");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  VoConfig Config = makeFig4VoConfig();
  Config.JobCount = static_cast<size_t>(Jobs);

  std::vector<StrategyKind> Kinds{StrategyKind::S1, StrategyKind::S2,
                                  StrategyKind::S3, StrategyKind::MS1};

  std::cout << "=== MULTIFLOW: competing strategy flows on one grid ("
            << Jobs << " jobs dealt across " << Kinds.size()
            << " flows) ===\n\n";

  std::vector<VoRunResult> Results =
      runMultiFlowVo(Config, Kinds, static_cast<uint64_t>(Seed));

  Table T({"flow", "jobs", "admissible %", "committed %", "mean CF",
           "mean cost", "mean TTL", "shift-recovered %", "slow-node share"});
  for (const auto &Run : Results) {
    VoAggregates A = summarizeVo(Run);
    double Total = Run.JobLoadPercent[0] + Run.JobLoadPercent[1] +
                   Run.JobLoadPercent[2];
    T.addRow({strategyName(Run.Kind), std::to_string(Run.Jobs.size()),
              Table::num(A.AdmissiblePercent, 0),
              Table::num(A.CommittedPercent, 0), Table::num(A.MeanCf, 1),
              Table::num(A.MeanCost, 0), Table::num(A.MeanTtl, 1),
              Table::num(A.ShiftRecoveredPercent, 0),
              Table::num(Total > 0 ? 100.0 * Run.JobLoadPercent[2] / Total
                                   : 0.0,
                         0) +
                  "%"});
  }
  T.print(std::cout);

  std::cout << "\nReading guide: unlike the isolated Fig. 4 runs, each "
               "flow here schedules around the other flows' reservations. "
               "The per-type characters persist under competition — S3 "
               "stays the CF-cheapest and the least slow-node-bound, MS1 "
               "stays the most fragile (lowest TTL, most recoveries) — "
               "which is the point of strategies as *sets* of supporting "
               "schedules: they degrade by switching, not by failing.\n";
  return 0;
}
