//===-- bench/perf.cpp - Microbenchmarks ----------------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the scheduling hot paths:
/// timeline operations, critical-work extraction, the DP chain
/// allocator via scheduleJob, full strategy generation and the cluster
/// substrate.
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "core/Scheduler.h"
#include "core/Strategy.h"
#include "job/Coarsen.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"

#include <benchmark/benchmark.h>

using namespace cws;

static void BM_TimelineReserveRelease(benchmark::State &State) {
  for (auto _ : State) {
    Timeline T;
    for (Tick I = 0; I < 200; ++I)
      T.reserve(I * 10, I * 10 + 7, 1 + (I % 5));
    for (OwnerId O = 1; O <= 5; ++O)
      T.releaseOwner(O);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TimelineReserveRelease);

static void BM_TimelineEarliestFit(benchmark::State &State) {
  Timeline T;
  Prng Rng(1);
  for (int I = 0; I < 500; ++I) {
    Tick B = Rng.uniformInt(0, 10000);
    T.reserve(B, B + Rng.uniformInt(1, 8), 1);
  }
  Tick Probe = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(T.earliestFit(Probe, 6));
    Probe = (Probe + 97) % 10000;
  }
}
BENCHMARK(BM_TimelineEarliestFit);

static void BM_CriticalWorkPhases(benchmark::State &State) {
  JobGenerator Gen(WorkloadConfig{}, 7);
  Job J = Gen.next(0);
  for (auto _ : State)
    benchmark::DoNotOptimize(criticalWorkPhases(J));
}
BENCHMARK(BM_CriticalWorkPhases);

static void BM_CoarsenJob(benchmark::State &State) {
  JobGenerator Gen(WorkloadConfig{}, 8);
  Job J = Gen.next(0);
  for (auto _ : State)
    benchmark::DoNotOptimize(coarsenJob(J));
}
BENCHMARK(BM_CoarsenJob);

static void BM_ScheduleJobFig2(benchmark::State &State) {
  Job J = makeFig2Job();
  Grid Env = Grid::makeFig2();
  Network Net;
  SchedulerConfig Config;
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleJob(J, Env, Net, Config, 42));
}
BENCHMARK(BM_ScheduleJobFig2);

static void BM_ScheduleJobRandomLoaded(benchmark::State &State) {
  JobGenerator Gen(WorkloadConfig{}, 9);
  Job J = Gen.next(0);
  Prng Rng(10);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  preloadGrid(Env, J.deadline(), 0.3, 0.6, 2, 8, Rng);
  Network Net;
  SchedulerConfig Config;
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleJob(J, Env, Net, Config, 42));
}
BENCHMARK(BM_ScheduleJobRandomLoaded);

static void BM_StrategyBuild(benchmark::State &State) {
  JobGenerator Gen(WorkloadConfig{}, 11);
  Job J = Gen.next(0);
  Prng Rng(12);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  preloadGrid(Env, J.deadline(), 0.3, 0.6, 2, 8, Rng);
  Network Net;
  StrategyConfig Config;
  Config.Kind = static_cast<StrategyKind>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(Strategy::build(J, Env, Net, Config, 42));
}
BENCHMARK(BM_StrategyBuild)->DenseRange(0, 3);

static void BM_ClusterFcfsEasy(benchmark::State &State) {
  BatchWorkloadConfig W;
  W.JobCount = 500;
  auto Trace = makeBatchTrace(W, 13);
  ClusterConfig Config;
  Config.NodeCount = 16;
  Config.Backfill = BackfillMode::Easy;
  for (auto _ : State)
    benchmark::DoNotOptimize(runCluster(Config, Trace));
}
BENCHMARK(BM_ClusterFcfsEasy);

BENCHMARK_MAIN();
