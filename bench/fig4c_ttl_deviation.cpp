//===-- bench/fig4c_ttl_deviation.cpp - Reproduce Fig. 4c -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 4c: relative strategy time-to-live and the start-time deviation
/// to job run time ratio for MS1 / S2 / S3. Paper shape: lowest-cost
/// strategies like S3 are the most persistent (highest TTL); the
/// fastest, most accurate strategies like S2 are the least persistent
/// but have the smallest start deviation; MS1's reduced coverage makes
/// its forecasts the least accurate.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 400;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs per strategy run");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  Fig4Config Config;
  Config.Vo.JobCount = static_cast<size_t>(Jobs);
  Config.Seed = static_cast<uint64_t>(Seed);
  Config.Kinds = {StrategyKind::MS1, StrategyKind::S2, StrategyKind::S3};

  std::cout << "=== FIG 4c: strategy time-to-live and start-time deviation ("
            << Jobs << " jobs per strategy) ===\n\n";
  std::vector<Fig4Row> Rows = runFig4(Config);

  double MaxTtl = 0.0, MaxDev = 0.0;
  for (const auto &R : Rows) {
    MaxTtl = std::max(MaxTtl, R.Agg.MeanTtl);
    MaxDev = std::max(MaxDev, R.Agg.MeanStartDeviationRatio);
  }

  Table T({"strategy", "rel. time-to-live", "rel. start deviation",
           "mean TTL (ticks)", "deviation/run ratio", "switched %",
           "reallocated %"});
  for (const auto &R : Rows)
    T.addRow({strategyName(R.Kind),
              Table::num(MaxTtl > 0 ? R.Agg.MeanTtl / MaxTtl : 0.0, 2),
              Table::num(
                  MaxDev > 0 ? R.Agg.MeanStartDeviationRatio / MaxDev : 0.0,
                  2),
              Table::num(R.Agg.MeanTtl, 1),
              Table::num(R.Agg.MeanStartDeviationRatio, 3),
              Table::num(R.Agg.SwitchedPercent, 0),
              Table::num(R.Agg.ReallocatedPercent, 0)});
  T.print(std::cout);

  std::cout << "\nShape check (paper Fig. 4c): S3's strategies live the "
               "longest; MS1's reduced coverage yields the largest "
               "start-time deviation; S2's full coverage the smallest.\n";
  return 0;
}
