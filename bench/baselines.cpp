//===-- bench/baselines.cpp - Ablation vs classic schedulers --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the critical works method against the structure-blind
/// mapping heuristics of the paper's reference [13] (on the jobs' task
/// sets, ignoring precedence) and against HEFT (structure-aware,
/// makespan-only). Reported: mean makespan, mean economic cost and the
/// deadline hit rate on the same randomized population.
///
//===----------------------------------------------------------------------===//

#include "baseline/Heft.h"
#include "baseline/Heuristics.h"
#include "core/Scheduler.h"
#include "job/Generator.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 500;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs in the population");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== ABLATION: critical works vs baselines (" << Jobs
            << " jobs) ===\n\n";

  JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed));
  Prng EnvRng(static_cast<uint64_t>(Seed) ^ 0x9e3779b9);
  Network Net;

  OnlineStats CwCostMakespan, CwCostPrice;
  OnlineStats CwTimeMakespan, CwTimePrice;
  OnlineStats HeftMakespan, HeftPrice;
  RatioCounter CwCostHit, CwTimeHit, HeftHit;
  OnlineStats HeurMakespan[6];

  for (int64_t I = 0; I < Jobs; ++I) {
    Job J = Gen.next(0);
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);

    SchedulerConfig ByCost;
    SchedulerConfig ByTime;
    ByTime.Alloc.Bias = OptimizationBias::Time;
    ScheduleResult RC = scheduleJob(J, Env, Net, ByCost, 42);
    ScheduleResult RT = scheduleJob(J, Env, Net, ByTime, 42);
    HeftResult RH = scheduleHeft(J, Env, Net);

    CwCostHit.add(RC.Feasible);
    CwTimeHit.add(RT.Feasible);
    HeftHit.add(RH.MeetsDeadline);
    if (RC.Feasible) {
      CwCostMakespan.add(static_cast<double>(RC.Dist.makespan()));
      CwCostPrice.add(RC.Dist.economicCost());
    }
    if (RT.Feasible) {
      CwTimeMakespan.add(static_cast<double>(RT.Dist.makespan()));
      CwTimePrice.add(RT.Dist.economicCost());
    }
    HeftMakespan.add(static_cast<double>(RH.Makespan));
    HeftPrice.add(RH.Dist.economicCost());

    // Structure-blind heuristics on the same task set: the ETC matrix
    // ignores data dependencies entirely.
    std::vector<std::vector<Tick>> Etc(J.taskCount(),
                                       std::vector<Tick>(Env.size()));
    for (const auto &Task : J.tasks())
      for (const auto &N : Env.nodes())
        Etc[Task.Id][N.id()] = N.execTicks(Task.RefTicks);
    for (size_t H = 0; H < 6; ++H) {
      MappingResult R = mapIndependentTasks(
          Etc, std::vector<Tick>(Env.size(), 0), AllMappingHeuristics[H]);
      HeurMakespan[H].add(static_cast<double>(R.Makespan));
    }
  }

  Table T({"scheduler", "mean makespan", "mean econ cost",
           "deadline hit %", "structure-aware"});
  T.addRow({"critical-works (cost bias)", Table::num(CwCostMakespan.mean(), 1),
            Table::num(CwCostPrice.mean(), 0),
            Table::num(CwCostHit.percent(), 0), "yes"});
  T.addRow({"critical-works (time bias)", Table::num(CwTimeMakespan.mean(), 1),
            Table::num(CwTimePrice.mean(), 0),
            Table::num(CwTimeHit.percent(), 0), "yes"});
  T.addRow({"HEFT", Table::num(HeftMakespan.mean(), 1),
            Table::num(HeftPrice.mean(), 0), Table::num(HeftHit.percent(), 0),
            "yes"});
  for (size_t H = 0; H < 6; ++H)
    T.addRow({std::string(mappingHeuristicName(AllMappingHeuristics[H])) +
                  " (no precedence)",
              Table::num(HeurMakespan[H].mean(), 1), "-", "-", "no"});
  T.print(std::cout);

  std::cout << "\nReading guide: the cost-biased critical works method "
               "buys the lowest economic cost that still meets the fixed "
               "completion time; HEFT and the time bias chase makespan "
               "and pay for it. Heuristic rows are lower bounds that "
               "ignore data dependencies (no deadline semantics), shown "
               "for the heterogeneity baseline only.\n";
  return 0;
}
