//===-- bench/ablation_levels.cpp - Coverage and front-size ablation ------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two ablations of strategy generation. (1) Estimation-level coverage:
/// MS1-vs-S1 generalized — more levels mean more supporting schedules
/// and better survival under load, at generation cost. (2) The Pareto
/// front size of the DP chain allocator: how small the front can get
/// before schedule quality degrades.
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "flow/BackgroundLoad.h"
#include "job/Generator.h"
#include "metrics/Experiment.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 800;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "random jobs per configuration");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  Network Net;

  std::cout << "=== ABLATION 1: estimation-level coverage (" << Jobs
            << " jobs) ===\n\n";
  {
    Table T({"max levels", "mean variants", "admissible %",
             "survives 30 bg jobs %", "gen time us/job"});
    for (size_t Levels : {2u, 3u, 4u, 6u}) {
      JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed));
      Prng EnvRng(static_cast<uint64_t>(Seed) ^ 1);
      Prng LoadRng(static_cast<uint64_t>(Seed) ^ 2);
      Prng AgeRng(static_cast<uint64_t>(Seed) ^ 3);
      RatioCounter Admissible, Survives;
      OnlineStats Variants;
      auto T0 = std::chrono::steady_clock::now();
      for (int64_t I = 0; I < Jobs; ++I) {
        Job J = Gen.next(0);
        Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
        preloadGrid(Env, J.deadline(), 0.25, 0.55, 2, 8, LoadRng);
        StrategyConfig Config;
        Config.MaxLevels = Levels;
        Strategy S = Strategy::build(J, Env, Net, Config, 42);
        Admissible.add(S.admissible());
        Variants.add(static_cast<double>(S.variants().size()));
        if (!S.admissible())
          continue;
        // Age the environment with 30 background jobs, then ask whether
        // any supporting schedule still fits.
        for (int Step = 0; Step < 30; ++Step) {
          unsigned Node = static_cast<unsigned>(AgeRng.index(Env.size()));
          Tick Dur = AgeRng.uniformInt(2, 8);
          Timeline &Line = Env.node(Node).timeline();
          Tick Start =
              Line.earliestFit(AgeRng.uniformInt(0, J.deadline()), Dur);
          Line.reserve(Start, Start + Dur, BackgroundOwner);
        }
        Survives.add(S.bestFitting(Env) != nullptr);
      }
      auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
      T.addRow({std::to_string(Levels), Table::num(Variants.mean(), 1),
                Table::num(Admissible.percent(), 1),
                Table::num(Survives.percent(), 1),
                Table::num(static_cast<double>(Us) /
                               static_cast<double>(Jobs),
                           0)});
    }
    T.print(std::cout);
    std::cout << "\nMore levels = more supporting schedules = better "
                 "survival under dynamics, at linear generation cost — "
                 "the S1-vs-MS1 trade-off as a dial.\n\n";
  }

  std::cout << "=== ABLATION 2: Pareto front size of the DP allocator ("
            << Jobs << " jobs) ===\n\n";
  {
    Table T({"front cap", "feasible %", "mean cost", "mean makespan"});
    for (size_t Front : {2u, 4u, 8u, 16u}) {
      JobGenerator Gen(WorkloadConfig{}, static_cast<uint64_t>(Seed));
      Prng EnvRng(static_cast<uint64_t>(Seed) ^ 4);
      Prng LoadRng(static_cast<uint64_t>(Seed) ^ 5);
      RatioCounter Feasible;
      OnlineStats Cost, Makespan;
      for (int64_t I = 0; I < Jobs; ++I) {
        Job J = Gen.next(0);
        Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
        preloadGrid(Env, J.deadline(), 0.25, 0.55, 2, 8, LoadRng);
        SchedulerConfig Config;
        Config.Alloc.MaxFrontSize = Front;
        ScheduleResult R = scheduleJob(J, Env, Net, Config, 42);
        Feasible.add(R.Feasible);
        if (R.Feasible) {
          Cost.add(R.Dist.economicCost());
          Makespan.add(static_cast<double>(R.Dist.makespan()));
        }
      }
      T.addRow({std::to_string(Front), Table::num(Feasible.percent(), 1),
                Table::num(Cost.mean(), 1), Table::num(Makespan.mean(), 1)});
    }
    T.print(std::cout);
    std::cout << "\nFinding: the DP is robust to the front cap on this "
               "workload — nondominated (finish, cost) labels per state "
               "rarely exceed two or three, so even a cap of 2 keeps the "
               "extremes. The cap matters only for longer chains with "
               "many distinct node prices; 8 is a safe default.\n";
  }
  return 0;
}
