//===-- bench/harness.cpp - Structured benchmark harness ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "harness.h"
#include "flow/VirtualOrganization.h"
#include "obs/Metrics.h"
#include "support/Check.h"
#include "support/Flags.h"
#include "support/Json.h"
#include "support/Table.h"
#include "sweep/Stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace cws;
using namespace cws::bench;

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

BenchRegistry &BenchRegistry::global() {
  static BenchRegistry R;
  return R;
}

void BenchRegistry::add(const BenchInfo &Info) { Benches.push_back(Info); }

std::vector<const BenchInfo *> BenchRegistry::all() const {
  std::vector<const BenchInfo *> Out;
  Out.reserve(Benches.size());
  for (const BenchInfo &B : Benches)
    Out.push_back(&B);
  std::sort(Out.begin(), Out.end(),
            [](const BenchInfo *A, const BenchInfo *B) {
              return std::string(A->Name) < B->Name;
            });
  return Out;
}

//===----------------------------------------------------------------------===//
// BenchContext
//===----------------------------------------------------------------------===//

void BenchContext::setConfig(const std::string &CanonicalText) {
  ConfigText = CanonicalText;
}

void BenchContext::setSeed(uint64_t S) { Seed = S; }

void BenchContext::setExecSeed(uint64_t S) {
  ExecSeed = S;
  ExecSeedSet = true;
}

void BenchContext::setInvalidation(const std::string &Mode) {
  Invalidation = Mode;
}

void BenchContext::setWork(const std::string &Counter, uint64_t Value) {
  if (!Measured)
    return;
  for (auto &W : Work)
    if (W.first == Counter) {
      W.second = Value;
      return;
    }
  Work.push_back({Counter, Value});
}

void BenchContext::addMetric(const std::string &Name, double Sample) {
  if (!Measured)
    return;
  RepMetrics[Name] = Sample;
}

void BenchContext::check(const std::string &What, bool Ok) {
  if (!Measured)
    return;
  Checks.push_back({What, Ok});
}

//===----------------------------------------------------------------------===//
// Runner
//===----------------------------------------------------------------------===//

namespace cws {
namespace bench {

/// Drives the warmup/measured repetitions of one bench; friend of
/// BenchContext so the harness owns the per-repetition state machine.
struct BenchRunner {
  static BenchRun run(const BenchInfo &Info, int Reps, int Warmup,
                      const std::string &Cli) {
    if (Reps <= 0)
      Reps = Info.DefaultReps;
    if (Warmup < 0)
      Warmup = Info.DefaultWarmup;
    CWS_CHECK(Reps > 0, "a bench needs at least one measured repetition");

    BenchRun Run;
    Run.Info = &Info;
    Run.Reps = Reps;
    Run.Warmup = Warmup;

    BenchContext Ctx;
    for (int W = 0; W < Warmup; ++W) {
      Ctx.Measured = false;
      Info.Fn(Ctx);
    }

    if (Info.Profile) {
      obs::Profiler::global().reset();
      obs::Profiler::global().enable();
    }

    sweep::SweepAccumulator Acc({{std::string("bench:") + Info.Name, {}}},
                                static_cast<uint64_t>(Reps));
    std::vector<std::pair<std::string, uint64_t>> RefWork;
    // Merged check verdicts: a check passes only when it passed in
    // every measured repetition.
    std::vector<CheckOutcome> Merged;
    auto MergeCheck = [&Merged](const std::string &What, bool Ok) {
      for (auto &C : Merged)
        if (C.What == What) {
          C.Pass = C.Pass && Ok;
          return;
        }
      Merged.push_back({What, Ok});
    };

    for (int R = 0; R < Reps; ++R) {
      Ctx.Measured = true;
      Ctx.Rep = static_cast<size_t>(R);
      Ctx.Work.clear();
      Ctx.RepMetrics.clear();
      Ctx.Checks.clear();
      auto T0 = std::chrono::steady_clock::now();
      Info.Fn(Ctx);
      double WallUs =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - T0)
              .count();
      Ctx.RepMetrics["wall_us"] = WallUs;
      Acc.addRun(0, Ctx.RepMetrics);
      for (const CheckOutcome &C : Ctx.Checks)
        MergeCheck(C.What, C.Pass);
      // Work counters are deterministic quantities of a fixed
      // workload: every measured repetition must report the same set
      // and values, or the counter is not a counter.
      std::sort(Ctx.Work.begin(), Ctx.Work.end());
      if (R == 0)
        RefWork = Ctx.Work;
      else if (Ctx.Work != RefWork)
        MergeCheck("work_stable", false);
    }

    if (Info.Profile) {
      obs::Profiler::global().disable();
      Run.Profile = obs::Profiler::global().snapshot();
      obs::Profiler::global().reset();
    }

    Run.Work = std::move(RefWork);
    std::sort(Merged.begin(), Merged.end(),
              [](const CheckOutcome &A, const CheckOutcome &B) {
                return A.What < B.What;
              });
    Run.Checks = std::move(Merged);
    obs::SweepStore Store = Acc.finalize();
    CWS_CHECK(Store.Scenarios.size() == 1, "one bench pools one scenario");
    Run.Metrics = Store.Scenarios[0].Indicators;

    Run.Prov.Stamped = true;
    Run.Prov.Seed = Ctx.Seed;
    Run.Prov.ConfigHash = obs::configHashOf(
        std::string("bench ") + Info.Name + "\n" + Ctx.ConfigText);
    Run.Prov.ScenarioId = std::string("bench:") + Info.Name;
    Run.Prov.Shards = static_cast<int64_t>(resolveShardCount(0));
    Run.Prov.Cli = Cli;
    Run.ExecSeed = Ctx.ExecSeedSet ? Ctx.ExecSeed : Ctx.Seed;
    Run.Invalidation = Ctx.Invalidation;
    return Run;
  }
};

} // namespace bench
} // namespace cws

BenchRun cws::bench::runBench(const BenchInfo &Info, int Reps, int Warmup,
                              const std::string &Cli) {
  return BenchRunner::run(Info, Reps, Warmup, Cli);
}

bool BenchRun::passed() const {
  for (const CheckOutcome &C : Checks)
    if (!C.Pass)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

static void appendStats(std::string &S, const obs::SweepIndicatorStats &St) {
  S += "{\"n\": " + std::to_string(St.N);
  S += ", \"mean\": " + obs::renderNumber(St.Mean);
  S += ", \"stddev\": " + obs::renderNumber(St.Stddev);
  S += ", \"ci95\": " + obs::renderNumber(St.Ci95);
  S += ", \"p50\": " + obs::renderNumber(St.P50);
  S += ", \"p90\": " + obs::renderNumber(St.P90);
  S += ", \"p99\": " + obs::renderNumber(St.P99);
  S += ", \"min\": " + obs::renderNumber(St.Min);
  S += ", \"max\": " + obs::renderNumber(St.Max);
  S += "}";
}

std::string BenchRun::json() const {
  std::string S;
  S += "{\n";
  S += "  \"schema\": \"cws-bench-v1\",\n";
  S += "  \"name\": \"" + json::escape(Info->Name) + "\",\n";
  S += "  \"description\": \"" + json::escape(Info->Description) + "\",\n";
  S += "  \"provenance\": {\"seed\": " + std::to_string(Prov.Seed);
  S += ", \"exec_seed\": " + std::to_string(ExecSeed);
  S += ", \"config_hash\": \"" + json::escape(Prov.ConfigHash) + "\"";
  S += ", \"scenario\": \"" + json::escape(Prov.ScenarioId) + "\"";
  S += ", \"shards\": " + std::to_string(Prov.Shards);
  S += ", \"invalidation\": \"" + json::escape(Invalidation) + "\"";
  S += ", \"cli\": \"" + json::escape(Prov.Cli) + "\"},\n";
  S += "  \"reps\": " + std::to_string(Reps) + ",\n";
  S += "  \"warmup\": " + std::to_string(Warmup) + ",\n";
  S += "  \"work\": {";
  for (size_t I = 0; I < Work.size(); ++I) {
    if (I)
      S += ", ";
    S += "\"" + json::escape(Work[I].first) +
         "\": " + std::to_string(Work[I].second);
  }
  S += "},\n";
  S += "  \"checks\": [";
  for (size_t I = 0; I < Checks.size(); ++I) {
    if (I)
      S += ", ";
    S += "{\"what\": \"" + json::escape(Checks[I].What) + "\", \"pass\": ";
    S += Checks[I].Pass ? "true" : "false";
    S += "}";
  }
  S += "],\n";
  S += "  \"metrics\": {";
  bool FirstMetric = true;
  for (const auto &M : Metrics) {
    if (!FirstMetric)
      S += ",";
    FirstMetric = false;
    S += "\n    \"" + json::escape(M.first) + "\": ";
    appendStats(S, M.second);
  }
  S += Metrics.empty() ? "},\n" : "\n  },\n";
  S += "  \"profile\": [";
  bool FirstPhase = true;
  for (const obs::PhaseStats &P : Profile) {
    if (!FirstPhase)
      S += ",";
    FirstPhase = false;
    S += "\n    {\"name\": \"" + json::escape(P.Name) + "\"";
    S += ", \"count\": " + std::to_string(P.Count);
    S += ", \"total_us\": " + obs::renderNumber(P.TotalUs);
    S += ", \"self_us\": " + obs::renderNumber(P.SelfUs);
    S += ", \"p50_us\": " + obs::renderNumber(P.P50Us);
    S += ", \"p99_us\": " + obs::renderNumber(P.P99Us);
    S += ", \"work\": {";
    for (size_t I = 0; I < P.Work.size(); ++I) {
      if (I)
        S += ", ";
      S += "\"" + json::escape(P.Work[I].first) +
           "\": " + std::to_string(P.Work[I].second);
    }
    S += "}}";
  }
  S += Profile.empty() ? "]\n" : "\n  ]\n";
  S += "}\n";
  return S;
}

//===----------------------------------------------------------------------===//
// JSON reader
//===----------------------------------------------------------------------===//

bool cws::bench::parseBenchJson(const std::string &Text, ParsedBench &Out,
                                std::string &Error) {
  json::Value Doc;
  if (!json::parse(Text, Doc, Error))
    return false;
  std::string Schema;
  if (!Doc.getString("schema", Schema) || Schema != "cws-bench-v1") {
    Error = "not a cws-bench-v1 document";
    return false;
  }
  if (!Doc.getString("name", Out.Name) || Out.Name.empty()) {
    Error = "missing bench name";
    return false;
  }
  Doc.getString("description", Out.Description);
  const json::Value *Prov = Doc.find("provenance");
  if (!Prov || !Prov->isObject()) {
    Error = "missing provenance object";
    return false;
  }
  double Num = 0;
  if (Prov->getNumber("seed", Num))
    Out.Seed = static_cast<uint64_t>(Num);
  if (Prov->getNumber("exec_seed", Num))
    Out.ExecSeed = static_cast<uint64_t>(Num);
  if (!Prov->getString("config_hash", Out.ConfigHash)) {
    Error = "missing provenance config_hash";
    return false;
  }
  Prov->getString("scenario", Out.Scenario);
  Prov->getString("invalidation", Out.Invalidation);
  Prov->getString("cli", Out.Cli);
  if (Prov->getNumber("shards", Num))
    Out.Shards = static_cast<int64_t>(Num);
  if (Doc.getNumber("reps", Num))
    Out.Reps = static_cast<int64_t>(Num);
  if (Doc.getNumber("warmup", Num))
    Out.Warmup = static_cast<int64_t>(Num);

  if (const json::Value *Work = Doc.find("work")) {
    if (!Work->isObject()) {
      Error = "work must be an object";
      return false;
    }
    for (const auto &M : Work->members()) {
      if (!M.second.isNumber()) {
        Error = "work counter '" + M.first + "' must be a number";
        return false;
      }
      Out.Work.push_back({M.first, static_cast<uint64_t>(M.second.number())});
    }
    std::sort(Out.Work.begin(), Out.Work.end());
  }
  if (const json::Value *Checks = Doc.find("checks")) {
    if (!Checks->isArray()) {
      Error = "checks must be an array";
      return false;
    }
    for (const json::Value &C : Checks->array()) {
      CheckOutcome O;
      if (!C.getString("what", O.What)) {
        Error = "a check needs a 'what'";
        return false;
      }
      const json::Value *Pass = C.find("pass");
      if (!Pass || !Pass->isBool()) {
        Error = "check '" + O.What + "' needs a boolean 'pass'";
        return false;
      }
      O.Pass = Pass->boolean();
      Out.Checks.push_back(O);
    }
  }
  if (const json::Value *Metrics = Doc.find("metrics")) {
    if (!Metrics->isObject()) {
      Error = "metrics must be an object";
      return false;
    }
    for (const auto &M : Metrics->members()) {
      obs::SweepIndicatorStats St;
      double V = 0;
      if (!M.second.getNumber("n", V)) {
        Error = "metric '" + M.first + "' needs an 'n'";
        return false;
      }
      St.N = static_cast<uint64_t>(V);
      struct Field {
        const char *Name;
        double *Dst;
      } Fields[] = {{"mean", &St.Mean}, {"stddev", &St.Stddev},
                    {"ci95", &St.Ci95}, {"p50", &St.P50},
                    {"p90", &St.P90},   {"p99", &St.P99},
                    {"min", &St.Min},   {"max", &St.Max}};
      for (const Field &F : Fields)
        if (!M.second.getNumber(F.Name, *F.Dst)) {
          Error = "metric '" + M.first + "' needs a '" +
                  std::string(F.Name) + "'";
          return false;
        }
      Out.Metrics[M.first] = St;
    }
  }
  if (const json::Value *Profile = Doc.find("profile")) {
    if (!Profile->isArray()) {
      Error = "profile must be an array";
      return false;
    }
    Out.ProfilePhases = Profile->array().size();
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Comparison
//===----------------------------------------------------------------------===//

const char *cws::bench::benchVerdictName(BenchVerdict V) {
  switch (V) {
  case BenchVerdict::Identical:
    return "identical";
  case BenchVerdict::Compatible:
    return "compatible";
  case BenchVerdict::Regressed:
    return "REGRESSED";
  case BenchVerdict::Refused:
    return "refused";
  }
  CWS_UNREACHABLE("unknown bench verdict");
}

static bool sameStats(const obs::SweepIndicatorStats &A,
                      const obs::SweepIndicatorStats &B) {
  return A.N == B.N && A.Mean == B.Mean && A.Stddev == B.Stddev &&
         A.Ci95 == B.Ci95 && A.P50 == B.P50 && A.P90 == B.P90 &&
         A.P99 == B.P99 && A.Min == B.Min && A.Max == B.Max;
}

/// The sweep-mode compatibility tests of obs/Diff: means must have
/// overlapping 95% confidence intervals, quantiles must not shift by
/// more than Tol relative to the larger magnitude.
static bool statsCompatible(const obs::SweepIndicatorStats &A,
                            const obs::SweepIndicatorStats &B, double Tol,
                            std::string &Why) {
  if (std::fabs(A.Mean - B.Mean) > A.Ci95 + B.Ci95) {
    Why = "mean " + obs::renderNumber(A.Mean) + " -> " +
          obs::renderNumber(B.Mean) + " outside CI overlap (" +
          obs::renderNumber(A.Ci95) + " + " + obs::renderNumber(B.Ci95) + ")";
    return false;
  }
  struct Q {
    const char *Name;
    double A, B;
  } Quantiles[] = {{"p50", A.P50, B.P50},
                   {"p90", A.P90, B.P90},
                   {"p99", A.P99, B.P99}};
  for (const Q &Qu : Quantiles) {
    double Scale = std::max(std::fabs(Qu.A), std::fabs(Qu.B));
    if (std::fabs(Qu.A - Qu.B) > Tol * Scale) {
      Why = std::string(Qu.Name) + " " + obs::renderNumber(Qu.A) + " -> " +
            obs::renderNumber(Qu.B) + " shifts more than " +
            obs::renderNumber(Tol * 100) + "%";
      return false;
    }
  }
  return true;
}

BenchCompareResult cws::bench::compareBench(const ParsedBench &Base,
                                            const ParsedBench &New,
                                            double QuantileShiftTol) {
  BenchCompareResult R;

  // Identity first: two runs of different configurations must not be
  // compared at all — the fail-loudly rule sweep pooling applies.
  auto Identity = [&R](const std::string &Field, const std::string &A,
                       const std::string &B) {
    if (A != B)
      R.Mismatched.push_back(Field + ": '" + A + "' vs '" + B + "'");
  };
  Identity("name", Base.Name, New.Name);
  Identity("config_hash", Base.ConfigHash, New.ConfigHash);
  Identity("scenario", Base.Scenario, New.Scenario);
  Identity("seed", std::to_string(Base.Seed), std::to_string(New.Seed));
  Identity("exec_seed", std::to_string(Base.ExecSeed),
           std::to_string(New.ExecSeed));
  Identity("invalidation", Base.Invalidation, New.Invalidation);
  if (!R.Mismatched.empty()) {
    R.Verdict = BenchVerdict::Refused;
    return R;
  }

  // Checks gate: the new run must pass everything, and must not drop
  // an invariant the baseline recorded.
  for (const CheckOutcome &C : New.Checks)
    if (!C.Pass)
      R.Gated.push_back("check failed: " + C.What);
  for (const CheckOutcome &C : Base.Checks) {
    bool Found = false;
    for (const CheckOutcome &N : New.Checks)
      Found = Found || N.What == C.What;
    if (!Found)
      R.Advisory.push_back("check no longer recorded: " + C.What);
  }

  // Work counters gate exactly: they are deterministic quantities of
  // the measured workload, the only signal a 1-core host can ratchet.
  size_t I = 0, J = 0;
  while (I < Base.Work.size() || J < New.Work.size()) {
    if (J >= New.Work.size() ||
        (I < Base.Work.size() && Base.Work[I].first < New.Work[J].first)) {
      R.Gated.push_back("work counter dropped: " + Base.Work[I].first + " (" +
                        std::to_string(Base.Work[I].second) + ")");
      ++I;
    } else if (I >= Base.Work.size() ||
               New.Work[J].first < Base.Work[I].first) {
      R.Gated.push_back("work counter appeared: " + New.Work[J].first + " (" +
                        std::to_string(New.Work[J].second) + ")");
      ++J;
    } else {
      if (Base.Work[I].second != New.Work[J].second)
        R.Gated.push_back("work counter " + Base.Work[I].first + ": " +
                          std::to_string(Base.Work[I].second) + " -> " +
                          std::to_string(New.Work[J].second));
      ++I;
      ++J;
    }
  }

  // Metrics are measured distributions; shifts are reported but never
  // gate — wall time on a shared CI host is weather, not signal.
  bool MetricsMoved = false;
  for (const auto &M : Base.Metrics) {
    auto It = New.Metrics.find(M.first);
    if (It == New.Metrics.end()) {
      R.Advisory.push_back("metric dropped: " + M.first);
      MetricsMoved = true;
      continue;
    }
    if (sameStats(M.second, It->second))
      continue;
    MetricsMoved = true;
    std::string Why;
    if (!statsCompatible(M.second, It->second, QuantileShiftTol, Why))
      R.Advisory.push_back("metric " + M.first + ": " + Why);
  }
  for (const auto &M : New.Metrics)
    if (!Base.Metrics.count(M.first)) {
      R.Advisory.push_back("metric appeared: " + M.first);
      MetricsMoved = true;
    }

  if (!R.Gated.empty())
    R.Verdict = BenchVerdict::Regressed;
  else if (MetricsMoved || !R.Advisory.empty())
    R.Verdict = BenchVerdict::Compatible;
  else
    R.Verdict = BenchVerdict::Identical;
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string cws::bench::renderBenchRun(const BenchRun &Run) {
  std::ostringstream Out;
  Out << "bench " << Run.Info->Name << ": " << Run.Info->Description << "\n";
  Out << "  reps " << Run.Reps << " (+" << Run.Warmup << " warmup), seed "
      << Run.Prov.Seed << ", exec seed " << Run.ExecSeed << ", shards "
      << Run.Prov.Shards << ", invalidation " << Run.Invalidation
      << ", config " << Run.Prov.ConfigHash << "\n";
  if (!Run.Work.empty()) {
    Table W({"work counter", "value"});
    for (const auto &P : Run.Work)
      W.addRow({P.first, std::to_string(P.second)});
    W.print(Out);
  }
  if (!Run.Metrics.empty()) {
    Table M({"metric", "n", "mean", "ci95", "p50", "p99"});
    for (const auto &P : Run.Metrics)
      M.addRow({P.first, std::to_string(P.second.N),
                Table::num(P.second.Mean, 2), Table::num(P.second.Ci95, 2),
                Table::num(P.second.P50, 2), Table::num(P.second.P99, 2)});
    M.print(Out);
  }
  for (const CheckOutcome &C : Run.Checks)
    Out << "  check " << (C.Pass ? "ok  " : "FAIL") << "  " << C.What << "\n";
  Out << (Run.passed() ? "  PASS" : "  FAIL") << "\n";
  return Out.str();
}

std::string cws::bench::renderBenchCompare(const std::string &Name,
                                           const BenchCompareResult &R) {
  std::ostringstream Out;
  Out << "against baseline, " << Name << ": " << benchVerdictName(R.Verdict)
      << "\n";
  for (const std::string &F : R.Mismatched)
    Out << "  refused, identity mismatch: " << F << "\n";
  for (const std::string &F : R.Gated)
    Out << "  gated: " << F << "\n";
  for (const std::string &F : R.Advisory)
    Out << "  advisory: " << F << "\n";
  return Out.str();
}

//===----------------------------------------------------------------------===//
// CLI
//===----------------------------------------------------------------------===//

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int cws::bench::benchMain(int Argc, char **Argv,
                          const std::string &DefaultFilter) {
  int64_t List = 0;
  int64_t Reps = 0;
  int64_t Warmup = -1;
  int64_t CompareOnly = 0;
  std::string Filter;
  std::string Out;
  std::string Against;
  Flags F;
  F.addInt("list", &List, "list registered benches and exit (0/1)");
  F.addString("filter", &Filter,
              "run only benches whose name contains this substring");
  F.addInt("reps", &Reps,
           "measured repetitions per bench (0 = bench default)");
  F.addInt("warmup", &Warmup,
           "discarded warmup repetitions (-1 = bench default)");
  F.addString("out", &Out,
              "directory to write one BENCH_<name>.json per bench into");
  F.addString("against", &Against,
              "baseline directory of BENCH_<name>.json files to ratchet "
              "against (work counters gate, wall time is advisory)");
  F.addInt("compare-only", &CompareOnly,
           "with --against and --out: compare the files already in "
           "--out instead of running the benches (0/1)");
  if (!F.parse(Argc, Argv))
    return 0;

  if (Filter.empty())
    Filter = DefaultFilter;
  std::vector<const BenchInfo *> Selected;
  for (const BenchInfo *B : BenchRegistry::global().all())
    if (Filter.empty() || std::string(B->Name).find(Filter) !=
                              std::string::npos)
      Selected.push_back(B);

  if (List) {
    Table T({"bench", "reps", "warmup", "description"});
    for (const BenchInfo *B : Selected)
      T.addRow({B->Name, std::to_string(B->DefaultReps),
                std::to_string(B->DefaultWarmup), B->Description});
    T.print(std::cout);
    return 0;
  }
  if (Selected.empty()) {
    std::fprintf(stderr, "cws-bench: no bench matches filter '%s'\n",
                 Filter.c_str());
    return 2;
  }
  if (CompareOnly && (Against.empty() || Out.empty())) {
    std::fprintf(stderr,
                 "cws-bench: --compare-only needs --against and --out\n");
    return 2;
  }

  std::string Cli = obs::cliStringOf(Argc, Argv);
  if (!Out.empty() && !CompareOnly) {
    std::error_code Ec;
    std::filesystem::create_directories(Out, Ec);
    if (Ec) {
      std::fprintf(stderr, "cws-bench: cannot create '%s': %s\n",
                   Out.c_str(), Ec.message().c_str());
      return 2;
    }
  }

  int Exit = 0;
  auto Escalate = [&Exit](int Code) { Exit = std::max(Exit, Code); };
  for (const BenchInfo *B : Selected) {
    ParsedBench NewDoc;
    std::string NewText;
    if (CompareOnly) {
      std::string Path = Out + "/BENCH_" + B->Name + ".json";
      if (!readFile(Path, NewText)) {
        std::fprintf(stderr, "cws-bench: cannot read '%s'\n", Path.c_str());
        return 2;
      }
    } else {
      BenchRun Run = runBench(*B, static_cast<int>(Reps),
                              static_cast<int>(Warmup), Cli);
      std::cout << renderBenchRun(Run) << "\n";
      if (!Run.passed())
        Escalate(1);
      NewText = Run.json();
      if (!Out.empty()) {
        std::string Path = Out + "/BENCH_" + std::string(B->Name) + ".json";
        std::ofstream OutFile(Path);
        OutFile << NewText;
        if (!OutFile) {
          std::fprintf(stderr, "cws-bench: cannot write '%s'\n",
                       Path.c_str());
          return 2;
        }
      }
    }

    if (Against.empty())
      continue;
    // Every run round-trips through the file format before comparison,
    // so what the ratchet gates is exactly what the artifact records.
    std::string Error;
    if (!parseBenchJson(NewText, NewDoc, Error)) {
      std::fprintf(stderr, "cws-bench: %s: %s\n", B->Name, Error.c_str());
      return 2;
    }
    std::string BasePath = Against + "/BENCH_" + B->Name + ".json";
    std::string BaseText;
    if (!readFile(BasePath, BaseText)) {
      std::cout << "against baseline, " << B->Name
                << ": no baseline at " << BasePath
                << " (run tools/update-baselines.sh)\n\n";
      continue;
    }
    ParsedBench BaseDoc;
    if (!parseBenchJson(BaseText, BaseDoc, Error)) {
      std::fprintf(stderr, "cws-bench: %s: %s\n", BasePath.c_str(),
                   Error.c_str());
      return 2;
    }
    BenchCompareResult R = compareBench(BaseDoc, NewDoc);
    std::cout << renderBenchCompare(B->Name, R) << "\n";
    if (R.Verdict == BenchVerdict::Refused)
      Escalate(2);
    else if (R.Verdict == BenchVerdict::Regressed)
      Escalate(1);
  }
  return Exit;
}
