//===-- bench/reg_realloc_repair.cpp - Staged repair vs full rebuild ------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what one reallocation costs the job-flow level under both
/// reallocation modes: the unconditional full strategy rebuild (the
/// differential oracle behind `--reallocation=rebuild`) and the
/// escalating staged repair (the default). Both runs use the same
/// workload and seed, so they face the same broken strategies up to
/// the first repair that changes history. Staged repair strictly
/// dominates the rebuild — its stage 3 *is* the rebuild, and stages
/// 1/2 can keep placements of the stale plan that a from-scratch
/// rebuild at Now cannot reproduce — so from the first stage-1/2
/// repair on, the two runs schedule on diverged grids. The stage mix
/// (shift / dp / rebuilt / failed) and the divergence count are the
/// bench's work counters — the ratchet pins them exactly — and the
/// recorded checks gate what must hold regardless:
///  - per-job commit/reject outcomes are equivalent across modes up
///    to documented repair saves and post-repair drift (the
///    `--allow-repair-saves` semantics of `cws-diff --outcomes`,
///    including the never-fewer-commits dominance backstop);
///  - at least 60% of the reallocations that deliver a strategy at
///    all resolve in stage 1 or 2 (the failed ones are cases even the
///    full rebuild cannot fix — stage 3 is that rebuild);
///  - the oracle run (`VoConfig::RepairOracle`) re-derives every
///    staged repair by full rebuild: each repaired strategy must be
///    feasible on the live grid and affordable, and the aggregate
///    cost of the repaired strategies must not exceed what the
///    rebuilds would have charged. Per repair, "never worse" is not
///    enforceable without running the rebuild it exists to avoid — a
///    repair pins stale placements and can price above a fresh
///    rebuild on some jobs — so the per-repair share is reported as
///    the `oracle_notworse_share` metric instead.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "harness.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <chrono>

using namespace cws;

namespace {

constexpr size_t Jobs = 60;
constexpr uint64_t Seed = 7;

VoConfig benchConfig(ReallocationMode Mode, bool Oracle = false) {
  VoConfig Config;
  Config.JobCount = Jobs;
  // The example workload: cws-sim's defaults, not WorkloadConfig's
  // (the tool widens the deadline slack to 2.0; the per-job outcome
  // gate below is pinned to this workload, where repair dominance is
  // clean).
  Config.Workload.DeadlineSlack = 2.0;
  Config.Reallocation = Mode;
  Config.RepairOracle = Oracle;
  return Config;
}

struct ModeCost {
  double WallMs = 0;
  uint64_t Attempts = 0;
  uint64_t Shift = 0;
  uint64_t Dp = 0;
  uint64_t Rebuilt = 0;
  uint64_t Failed = 0;
};

ModeCost runMode(ReallocationMode Mode) {
  obs::Registry &R = obs::Registry::global();
  obs::Counter &Attempts = R.counter("cws_meta_realloc_attempts_total");
  obs::Counter &Shift =
      R.counter("cws_meta_realloc_repaired_total{stage=\"shift\"}");
  obs::Counter &Dp = R.counter("cws_meta_realloc_repaired_total{stage=\"dp\"}");
  obs::Counter &Rebuilt = R.counter("cws_meta_realloc_rebuilt_total");
  obs::Counter &Failed = R.counter("cws_meta_realloc_failed_total");

  // Counters are global and cumulative, so cost = delta across the run.
  uint64_t A0 = Attempts.value();
  uint64_t S0 = Shift.value();
  uint64_t D0 = Dp.value();
  uint64_t R0 = Rebuilt.value();
  uint64_t F0 = Failed.value();

  auto T0 = std::chrono::steady_clock::now();
  runVirtualOrganization(benchConfig(Mode), StrategyKind::S1, Seed);
  auto T1 = std::chrono::steady_clock::now();

  ModeCost Cost;
  Cost.WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count() /
      1000.0;
  Cost.Attempts = Attempts.value() - A0;
  Cost.Shift = Shift.value() - S0;
  Cost.Dp = Dp.value() - D0;
  Cost.Rebuilt = Rebuilt.value() - R0;
  Cost.Failed = Failed.value() - F0;
  return Cost;
}

/// One journaled run of \p Mode, parsed for the outcome-equivalence
/// oracle.
obs::ParsedJournal journaledMode(ReallocationMode Mode) {
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  runVirtualOrganization(benchConfig(Mode), StrategyKind::S1, Seed);
  Jn.disable();
  obs::ParsedJournal J;
  std::string Error;
  CWS_CHECK(obs::parseJournalJsonl(Jn.jsonl(), J, Error),
            "journaled run must parse");
  Jn.reset();
  return J;
}

} // namespace

CWS_BENCH(realloc_repair,
          "reallocation cost and stage mix, staged repair vs full rebuild",
          /*Reps=*/3, /*Warmup=*/1, /*Profile=*/true) {
  Ctx.setSeed(Seed);
  Ctx.setExecSeed(Seed);
  Ctx.setConfig("jobs=" + std::to_string(Jobs) + "\n");

  // Differential oracle first: repair and rebuild legitimately place
  // jobs differently, but verdicts must agree up to documented repair
  // saves and post-repair drift (any divergence before the first
  // stage-1/2 repair, or that leaves repair committing fewer jobs
  // overall, fails). The config hash differs by construction (the
  // reallocation mode is part of the canonical config).
  obs::ParsedJournal Repair = journaledMode(ReallocationMode::Repair);
  obs::ParsedJournal Rebuild = journaledMode(ReallocationMode::Rebuild);
  obs::DiffOptions Opts;
  Opts.Meta.AllowConfigHash = true;
  obs::DiffResult Strict = obs::diffJournalOutcomes(Repair, Rebuild, Opts);
  Opts.AllowRepairSaves = true;
  obs::DiffResult Diff = obs::diffJournalOutcomes(Repair, Rebuild, Opts);
  Ctx.check("outcome divergence limited to saves and post-repair drift",
            Diff.identical());
  uint64_t Divergences = Strict.TotalFindings - Strict.MetaFindings.size();

  // The by-rebuild re-derivation oracle: every staged repair must be
  // feasible on the live grid and affordable, and in aggregate the
  // repaired strategies must not cost more than the rebuilds the
  // oracle derived. Per-repair cost parity is reported, not gated —
  // see the header comment.
  VoRunResult OracleRun = runVirtualOrganization(
      benchConfig(ReallocationMode::Repair, /*Oracle=*/true), StrategyKind::S1,
      Seed);
  const RepairOracleStats &O = OracleRun.RepairOracle;
  Ctx.check("oracle: every staged repair feasible and affordable",
            O.Checked > 0 && O.Feasible == O.Checked &&
                O.Affordable == O.Checked);
  Ctx.check("oracle: aggregate repair cost <= aggregate rebuild cost",
            O.RepairCost <= O.RebuildCost + 1e-9);
  Ctx.addMetric("oracle_notworse_share",
                static_cast<double>(O.NotWorse) /
                    static_cast<double>(O.Checked ? O.Checked : 1));

  ModeCost RepairCost = runMode(ReallocationMode::Repair);
  ModeCost RebuildCost = runMode(ReallocationMode::Rebuild);

  Ctx.setWork("realloc_attempts", RepairCost.Attempts);
  Ctx.setWork("repaired_shift", RepairCost.Shift);
  Ctx.setWork("repaired_dp", RepairCost.Dp);
  Ctx.setWork("rebuilt", RepairCost.Rebuilt);
  Ctx.setWork("failed", RepairCost.Failed);
  Ctx.setWork("rebuild_attempts", RebuildCost.Attempts);
  Ctx.setWork("outcome_divergences", Divergences);

  // Share over the reallocations that delivered a strategy at all: the
  // failed ones are jobs even the stage-3 rebuild cannot fix, so no
  // mode resolves them.
  uint64_t Resolved = RepairCost.Shift + RepairCost.Dp + RepairCost.Rebuilt;
  double Stage12Share =
      static_cast<double>(RepairCost.Shift + RepairCost.Dp) /
      static_cast<double>(Resolved ? Resolved : 1);
  Ctx.check("stage 1 or 2 resolves >= 60% of resolved reallocations",
            Stage12Share >= 0.60);
  Ctx.addMetric("stage12_share", Stage12Share);
  Ctx.addMetric("repair_wall_ms", RepairCost.WallMs);
  Ctx.addMetric("rebuild_wall_ms", RebuildCost.WallMs);
  Ctx.addMetric("rebuild_repair_wall_ratio",
                RebuildCost.WallMs /
                    (RepairCost.WallMs > 0 ? RepairCost.WallMs : 1));
}
