//===-- bench/local_vs_global.cpp - Local policy vs global QoS ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5's open question made measurable: how does the *local*
/// queue-management policy of the node managers interact with the QoS
/// of the *global* compound-job flows? Background local jobs are routed
/// through per-domain LocalManagers under two policies (aggressive gap
/// filling versus strict FCFS) and two queue-depth limits. The result
/// is a control experiment: with a shared reservation calendar the
/// discipline barely matters — see the finding printed at the end.
///
//===----------------------------------------------------------------------===//

#include "flow/BackgroundLoad.h"
#include "flow/LocalManager.h"
#include "flow/Metascheduler.h"
#include "job/Generator.h"
#include "support/Flags.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 250;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs in the flow");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  std::cout << "=== SEC 5 STUDY: local queue policy vs global QoS ("
            << Jobs << " compound jobs) ===\n\n";

  Table T({"local policy", "global admitted %", "mean global cost",
           "grid util %", "local jobs placed", "local mean wait",
           "local rejected %"});

  struct Setup {
    LocalQueuePolicy Policy;
    Tick Lookahead;
  };
  const Setup Setups[] = {
      {LocalQueuePolicy::Immediate, 400},
      {LocalQueuePolicy::StrictFcfs, 400},
      {LocalQueuePolicy::Immediate, 60},
      {LocalQueuePolicy::StrictFcfs, 60},
  };
  for (const auto &[Policy, Lookahead] : Setups) {
    // Identical world per policy.
    Prng EnvRng(static_cast<uint64_t>(Seed));
    Grid Env = Grid::makeRandom(GridConfig{}, EnvRng);
    Network Net;
    WorkloadConfig W;
    W.DeadlineSlack = 2.0;
    JobGenerator Gen(W, static_cast<uint64_t>(Seed) + 1);
    Prng LocalRng(static_cast<uint64_t>(Seed) + 2);

    std::vector<Domain> Domains = partitionByGroup(Env);
    std::vector<LocalManager> Managers;
    Managers.reserve(Domains.size());
    for (const auto &D : Domains)
      Managers.emplace_back(Env, D, Policy, Lookahead);

    RatioCounter Admitted;
    OnlineStats Cost;
    Tick Now = 0;
    for (int64_t I = 0; I < Jobs; ++I) {
      Now += 8;
      // Local users of every domain submit between compound arrivals.
      // Demand is bursty: a steady trickle plus a periodic burst that
      // builds a genuine backlog — exactly where queue policies differ
      // (a backlog pushes the FCFS front past the fragmentation gaps
      // that Immediate keeps filling).
      for (auto &M : Managers) {
        for (size_t K = 0; K < M.domain().NodeIds.size(); ++K)
          if (LocalRng.bernoulli(0.25))
            M.submitLocal(Now, LocalRng.uniformInt(4, 12), BackgroundOwner);
        if (I % 10 == 0)
          for (size_t K = 0; K < 2 * M.domain().NodeIds.size(); ++K)
            M.submitLocal(Now, LocalRng.uniformInt(10, 30), BackgroundOwner);
      }

      Job J = Gen.next(Now);
      OwnerId Owner = Metascheduler::ownerOf(J.id());
      StrategyConfig SC;
      Strategy S = Strategy::build(J, Env, Net, SC, Owner, Now);
      const ScheduleVariant *Pick = S.bestFitting(Env);
      if (!Pick || !Pick->Result.Dist.commit(Env, Owner)) {
        Admitted.add(false);
        continue;
      }
      Admitted.add(true);
      Cost.add(Pick->Result.Dist.economicCost());
    }
    double Util = 0.0;
    for (const auto &N : Env.nodes())
      Util += N.timeline().utilization(0, Now + 100);
    Util = 100.0 * Util / static_cast<double>(Env.size());

    size_t Placed = 0, RejectedCount = 0;
    double Wait = 0.0;
    for (const auto &M : Managers) {
      Placed += M.placed();
      RejectedCount += M.rejected();
      Wait += M.meanLocalWait() * static_cast<double>(M.placed());
    }
    double MeanWait = Placed ? Wait / static_cast<double>(Placed) : 0.0;
    double RejPct =
        Placed + RejectedCount
            ? 100.0 * static_cast<double>(RejectedCount) /
                  static_cast<double>(Placed + RejectedCount)
            : 0.0;

    T.addRow({std::string(localQueuePolicyName(Policy)) + "/la=" +
                  std::to_string(Lookahead),
              Table::num(Admitted.percent(), 1),
              Table::num(Cost.mean(), 0), Table::num(Util, 1),
              std::to_string(Placed), Table::num(MeanWait, 1),
              Table::num(RejPct, 1)});
  }
  T.print(std::cout);

  std::cout << "\nFinding (a deliberate control experiment): when local "
               "managers book against a *shared reservation calendar* "
               "with known durations, the queue discipline barely moves "
               "global QoS — Immediate and strict FCFS converge on the "
               "same packed calendar (rows differ by ~1-2 %). The local "
               "discipline matters for waiting-time *distribution*, not "
               "for the metascheduler. Contrast with bench/reservations, "
               "where advance reservations shift waiting times by 2x: in "
               "this framework the QoS lever is reservation visibility, "
               "not the local queue order — which supports the paper's "
               "design of planning on reservation calendars.\n";
  return 0;
}
