//===-- bench/fig3a_admissible.cpp - Reproduce Fig. 3a --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 3a: the percentage of experiments with admissible
/// application-level schedules over thousands of randomly generated
/// compound jobs, per strategy type. Paper values: S1 38 %, S2 37 %,
/// S3 33 %.
///
//===----------------------------------------------------------------------===//

#include "metrics/Experiment.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 12000;
  int64_t Seed = 2009;
  Flags F;
  F.addInt("jobs", &Jobs, "number of randomly generated jobs");
  F.addInt("seed", &Seed, "experiment seed");
  if (!F.parse(Argc, Argv))
    return 0;

  Fig3Config Config;
  Config.JobCount = static_cast<size_t>(Jobs);
  Config.Seed = static_cast<uint64_t>(Seed);

  std::cout << "=== FIG 3a: percentage of experiments with admissible "
               "schedules (" << Jobs << " jobs) ===\n\n";
  std::vector<Fig3Row> Rows = runFig3(Config);

  const double Paper[] = {38.0, 37.0, 33.0};
  Table T({"strategy", "paper %", "measured %", "mean variants",
           "mean feasible"});
  for (size_t I = 0; I < Rows.size(); ++I)
    T.addRow({strategyName(Rows[I].Kind), Table::num(Paper[I], 0),
              Table::num(Rows[I].admissiblePercent(), 1),
              Table::num(Rows[I].MeanVariants, 1),
              Table::num(Rows[I].MeanFeasibleVariants, 1)});
  T.print(std::cout);

  std::cout << "\nShape check: admissibility is well below 100 % "
               "(application-level schedules are built for resources "
               "already loaded by independent jobs) and S1 >= S2 > S3.\n";
  return 0;
}
