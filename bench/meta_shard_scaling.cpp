//===-- bench/meta_shard_scaling.cpp - Sharded ingest scaling -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the sharded job-flow metascheduler at 1, 2, 4 and 8 worker
/// shards on a bursty arrival stream (zero minimum interarrival gap, so
/// per-tick admission batches genuinely hold several jobs): jobs
/// ingested per wall second and the commit-pipeline drain latency. The
/// hard gate is determinism, not speed — before timing, every sharded
/// run's journal and per-job stats are byte-compared against the
/// 1-shard run and any difference aborts. Speedup is hardware-bound:
/// on a single-core host every shard count degrades to the same serial
/// schedule and the throughput column only shows pipeline overhead.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "metrics/Export.h"
#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace cws;

namespace {

constexpr size_t Jobs = 120;
constexpr uint64_t Seed = 9;

VoConfig benchConfig(size_t Shards) {
  VoConfig Config;
  Config.JobCount = Jobs;
  // Bursty arrivals: gaps drawn from [0, 3] make same-tick batches the
  // rule instead of the exception, which is what the parallel prepare
  // stages feed on.
  Config.InterarrivalLo = 0;
  Config.InterarrivalHi = 3;
  Config.Shards = Shards;
  return Config;
}

/// Everything downstream consumers can see of a run.
struct RunArtifacts {
  std::string Journal;
  std::string StatsCsv;
};

RunArtifacts journaledRun(size_t Shards) {
  obs::Journal &Jn = obs::Journal::global();
  Jn.reset();
  Jn.enable();
  VoRunResult Run = runVirtualOrganization(benchConfig(Shards),
                                           StrategyKind::S1, Seed);
  Jn.disable();
  RunArtifacts Out{Jn.jsonl(), voStatsCsv(Run.Jobs)};
  Jn.reset();
  return Out;
}

struct ShardCost {
  size_t Shards = 1;
  double WallMs = 0;
  double JobsPerSec = 0;
  double DrainP50Us = 0;
  double DrainP99Us = 0;
  uint64_t CommitBatches = 0;
};

ShardCost timedRun(size_t Shards) {
  obs::Registry &R = obs::Registry::global();
  obs::Histogram &DrainUs = R.histogram(
      "cws_shard_commit_drain_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000});
  obs::Counter &Batches = R.counter("cws_shard_commit_batches_total");
  // The registry is global and cumulative; reset so the drain-latency
  // quantiles cover exactly this run.
  R.reset();
  uint64_t B0 = Batches.value();

  auto T0 = std::chrono::steady_clock::now();
  runVirtualOrganization(benchConfig(Shards), StrategyKind::S1, Seed);
  auto T1 = std::chrono::steady_clock::now();

  ShardCost Cost;
  Cost.Shards = Shards;
  Cost.WallMs =
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count() /
      1000.0;
  Cost.JobsPerSec = Cost.WallMs > 0 ? Jobs / (Cost.WallMs / 1000.0) : 0;
  Cost.DrainP50Us = DrainUs.quantile(0.5);
  Cost.DrainP99Us = DrainUs.quantile(0.99);
  Cost.CommitBatches = Batches.value() - B0;
  return Cost;
}

} // namespace

int main() {
  const std::vector<size_t> ShardCounts = {1, 2, 4, 8};

  // Determinism gate first: sharding must never change what the run
  // computes, only how fast it computes it.
  RunArtifacts Base = journaledRun(1);
  CWS_CHECK(!Base.Journal.empty(), "baseline run must journal events");
  obs::ParsedJournal BaseJournal;
  std::string ParseError;
  CWS_CHECK(obs::parseJournalJsonl(Base.Journal, BaseJournal, ParseError),
            "baseline journal must parse");
  for (size_t Shards : ShardCounts) {
    if (Shards == 1)
      continue;
    RunArtifacts Sharded = journaledRun(Shards);
    // Semantic journal equality via the cws-diff comparator: on a
    // violation it names the first diverging (job, tick) instead of
    // leaving a byte offset to decode.
    obs::ParsedJournal ShardedJournal;
    CWS_CHECK(obs::parseJournalJsonl(Sharded.Journal, ShardedJournal,
                                     ParseError),
              "sharded journal must parse");
    obs::DiffResult Diff = obs::diffJournals(BaseJournal, ShardedJournal);
    if (!Diff.identical())
      std::cout << obs::renderDiffText(Diff, "1 shard",
                                       std::to_string(Shards) + " shards");
    CWS_CHECK(Diff.identical(),
              "sharded journal must be semantically identical to the "
              "1-shard run");
    CWS_CHECK(Sharded.StatsCsv == Base.StatsCsv,
              "sharded per-job stats must match the 1-shard run");
  }
  std::printf("determinism: journals and stats identical at shards "
              "{1, 2, 4, 8}\n\n");

  // Timing pass, journal off so ingest throughput is the bottleneck.
  Table T({"shards", "run wall ms", "jobs / s", "drain p50 us",
           "drain p99 us", "commit drains"});
  double BaseJobsPerSec = 0;
  double BestJobsPerSec = 0;
  for (size_t Shards : ShardCounts) {
    ShardCost Cost = timedRun(Shards);
    if (Shards == 1)
      BaseJobsPerSec = Cost.JobsPerSec;
    if (Cost.JobsPerSec > BestJobsPerSec)
      BestJobsPerSec = Cost.JobsPerSec;
    T.addRow({std::to_string(Cost.Shards), Table::num(Cost.WallMs, 1),
              Table::num(Cost.JobsPerSec, 0),
              Table::num(Cost.DrainP50Us, 0),
              Table::num(Cost.DrainP99Us, 0),
              std::to_string(Cost.CommitBatches)});
  }
  T.print(std::cout);

  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("\nhardware threads: %u\n", Cores ? Cores : 1);
  if (BaseJobsPerSec > 0)
    std::printf("best / 1-shard ingest ratio: %.2fx\n",
                BestJobsPerSec / BaseJobsPerSec);
  if (Cores <= 1)
    std::printf("single-core host: speedup is not measurable here; the "
                "determinism gate above is the result\n");

  std::printf("\nOK: sharded runs are byte-identical to the 1-shard run\n");
  return 0;
}
