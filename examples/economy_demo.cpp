//===-- examples/economy_demo.cpp - The VO quota economy ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual organization's economic machinery on its own: two users
/// with different quotas submit identical jobs; the richer user can
/// afford faster (time-biased) schedules while the poorer one drops to
/// cheap slow-node plans, runs out of quota, and recovers after a grant
/// — the paper's "dynamic priority change, when [a] virtual organization
/// user changes execution cost for a specific resource".
///
//===----------------------------------------------------------------------===//

#include "flow/Economy.h"
#include "flow/Metascheduler.h"
#include "job/Generator.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main() {
  Prng Rng(7);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  Network Net;
  Economy Econ;
  unsigned Rich = Econ.addUser(4000.0);
  unsigned Poor = Econ.addUser(350.0);
  Metascheduler Meta(Env, Net, Econ, StrategyConfig{});

  WorkloadConfig W;
  W.DeadlineSlack = 2.5;
  JobGenerator Gen(W, 11);

  std::cout << "two users, quotas 4000 (rich) and 350 (poor), identical "
               "job streams\n\n";

  Table T({"round", "user", "plan", "cost", "paid?", "remaining",
           "priority"});
  Tick Now = 0;
  for (int Round = 1; Round <= 6; ++Round) {
    Now += 30;
    for (unsigned User : {Rich, Poor}) {
      Job J = Gen.next(Now);
      Strategy S = Meta.buildStrategy(J, Now);
      // The rich user buys speed; the poor one shops for price.
      const ScheduleVariant *Pick =
          User == Rich ? S.bestByTime() : S.bestByCost();
      if (!Pick) {
        T.addRow({std::to_string(Round), User == Rich ? "rich" : "poor",
                  "(inadmissible)", "-", "-",
                  Table::num(Econ.remaining(User), 0),
                  Table::num(Econ.priority(User), 2)});
        continue;
      }
      double Cost = Pick->Result.Dist.economicCost();
      bool Paid = Meta.commit(J, *Pick, User);
      T.addRow({std::to_string(Round), User == Rich ? "rich" : "poor",
                std::string(optimizationBiasName(Pick->Bias)) + "-optimal",
                Table::num(Cost, 0), Paid ? "yes" : "NO (quota)",
                Table::num(Econ.remaining(User), 0),
                Table::num(Econ.priority(User), 2)});
    }
    if (Round == 4) {
      // The poor user tops up their quota (dynamic priority change).
      Econ.grant(Poor, 800.0);
      T.addRow({std::to_string(Round), "poor", "+800 quota granted", "-",
                "-", Table::num(Econ.remaining(Poor), 0),
                Table::num(Econ.priority(Poor), 2)});
    }
  }
  T.print(std::cout);

  std::cout << "\nNote how the poor user's commits start failing once the "
               "quota drains and resume after the grant, and how the "
               "dynamic priority (share of remaining quota) tracks it.\n";
  return 0;
}
