//===-- examples/cluster_batch.cpp - Local batch system demo --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local batch substrate on its own: a cluster trace scheduled under
/// FCFS, LWF, EASY/conservative backfilling and gang scheduling, with an
/// advance reservation carved out for a metascheduler — the situation a
/// CWS distribution creates in a local batch system.
///
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "batch/Gang.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 400;
  int64_t Nodes = 12;
  int64_t Seed = 7;
  Flags F;
  F.addInt("jobs", &Jobs, "batch jobs in the trace");
  F.addInt("nodes", &Nodes, "cluster size");
  F.addInt("seed", &Seed, "trace seed");
  if (!F.parse(Argc, Argv))
    return 0;

  BatchWorkloadConfig W;
  W.JobCount = static_cast<size_t>(Jobs);
  W.NodesHi = static_cast<unsigned>(Nodes) / 2;
  std::vector<BatchJob> Trace = makeBatchTrace(W, static_cast<uint64_t>(Seed));

  // The metascheduler holds half the cluster every 400 ticks — an
  // advance reservation backing a compound job's distribution.
  std::vector<AdvanceReservation> Resv;
  for (Tick At = 200; At < Trace.back().Arrival; At += 400)
    Resv.push_back({At, At + 100, static_cast<unsigned>(Nodes) / 2});

  std::cout << "local batch cluster: " << Nodes << " nodes, " << Jobs
            << " jobs, " << Resv.size() << " advance reservations\n\n";

  Table T({"policy", "mean wait", "max wait", "forecast err", "slowdown"});
  for (QueueOrder Order : {QueueOrder::FCFS, QueueOrder::LWF})
    for (BackfillMode Mode : {BackfillMode::None, BackfillMode::Easy,
                              BackfillMode::Conservative}) {
      ClusterConfig Config;
      Config.NodeCount = static_cast<unsigned>(Nodes);
      Config.Order = Order;
      Config.Backfill = Mode;
      ClusterMetrics M = summarizeCluster(
          Trace, runCluster(Config, Trace, Resv), Config.NodeCount);
      T.addRow({std::string(queueOrderName(Order)) + "+" +
                    backfillModeName(Mode),
                Table::num(M.MeanWait, 1), Table::num(M.MaxWait, 0),
                Table::num(M.MeanForecastError, 1),
                Table::num(M.MeanSlowdown, 2)});
    }
  {
    GangConfig GC;
    GC.NodeCount = static_cast<unsigned>(Nodes);
    ClusterMetrics M = summarizeCluster(Trace, runGang(GC, Trace),
                                        GC.NodeCount);
    T.addRow({"gang (no reservations)", Table::num(M.MeanWait, 1),
              Table::num(M.MaxWait, 0), "-", Table::num(M.MeanSlowdown, 2)});
  }
  T.print(std::cout);
  return 0;
}
