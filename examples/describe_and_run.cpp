//===-- examples/describe_and_run.cpp - Textual job descriptions ----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end from a textual resource query: parse a job description
/// file (the role JDL / ClassAds play in the paper's discussion),
/// schedule it with the critical works method, and render the
/// distribution as an ASCII Gantt chart. Pass a file path, or run
/// without arguments to use the built-in sample.
///
//===----------------------------------------------------------------------===//

#include "core/Gantt.h"
#include "core/Scheduler.h"
#include "lang/Parser.h"
#include "resource/Network.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace cws;

static const char SampleDescription[] = R"(
job "inline-sample" deadline 30
task prepare  ref 2 vol 20
task simulate ref 5 vol 50
task render   ref 2 vol 20
edge prepare -> simulate transfer 1
edge simulate -> render  transfer 2
node perf 1.0
node perf 0.5
node perf 0.33
)";

int main(int Argc, char **Argv) {
  std::string Text = SampleDescription;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }

  ParseResult R = parseJobDescription(Text);
  if (!R.ok()) {
    std::fprintf(stderr, "description has errors:\n%s",
                 formatDiagnostics(R.Errors).c_str());
    return 1;
  }
  if (!R.HasEnv) {
    std::fprintf(stderr, "description declares no nodes\n");
    return 1;
  }

  std::printf("parsed job with %zu tasks, %zu transfers, deadline %lld; "
              "%zu nodes\n\n",
              R.TheJob.taskCount(), R.TheJob.edgeCount(),
              static_cast<long long>(R.TheJob.deadline()), R.Env.size());

  Network Net;
  ScheduleResult Schedule =
      scheduleJob(R.TheJob, R.Env, Net, SchedulerConfig{}, /*Owner=*/1);
  if (!Schedule.Feasible) {
    std::printf("the job cannot meet its deadline on the declared nodes\n");
    return 1;
  }

  std::printf("makespan %lld, economic cost %.1f, CF %lld, %zu collisions\n\n",
              static_cast<long long>(Schedule.Dist.makespan()),
              Schedule.Dist.economicCost(),
              static_cast<long long>(Schedule.Dist.costFunction(R.TheJob)),
              Schedule.Collisions.size());

  GanttOptions Options;
  Options.ShowIdleNodes = true;
  std::cout << renderGantt(R.TheJob, R.Env, Schedule.Dist, Options);
  return 0;
}
