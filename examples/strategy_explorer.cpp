//===-- examples/strategy_explorer.cpp - Watch a strategy live ------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategy anatomy: generate a strategy for one random compound job,
/// print every supporting schedule, then age the environment with
/// background arrivals and watch the strategy switch schedules until it
/// dies — the time-to-live dynamic of Fig. 4c, step by step.
///
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"
#include "flow/BackgroundLoad.h"
#include "job/Generator.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Seed = 11;
  std::string KindName = "S1";
  Flags F;
  F.addInt("seed", &Seed, "job/environment seed");
  F.addString("strategy", &KindName, "S1 | S2 | S3 | MS1");
  if (!F.parse(Argc, Argv))
    return 0;

  StrategyKind Kind = StrategyKind::S1;
  for (StrategyKind K : {StrategyKind::S1, StrategyKind::S2,
                         StrategyKind::S3, StrategyKind::MS1})
    if (KindName == strategyName(K))
      Kind = K;

  WorkloadConfig W;
  W.DeadlineSlack = 2.2;
  JobGenerator Gen(W, static_cast<uint64_t>(Seed));
  Job J = Gen.next(0);
  Prng Rng(static_cast<uint64_t>(Seed) * 7 + 1);
  Grid Env = Grid::makeRandom(GridConfig{}, Rng);
  Network Net;

  std::cout << "job " << J.id() << ": " << J.taskCount() << " tasks, "
            << J.edgeCount() << " transfers, deadline " << J.deadline()
            << "; environment: " << Env.size() << " nodes\n\n";

  StrategyConfig Config;
  Config.Kind = Kind;
  Strategy S = Strategy::build(J, Env, Net, Config, /*Owner=*/1000);

  std::cout << "strategy " << strategyName(Kind) << " ("
            << dataPolicyName(strategyDataPolicy(Kind))
            << " data policy), supporting schedules:\n";
  Table T({"#", "level perf", "bias", "feasible", "start", "makespan",
           "econ cost"});
  unsigned Idx = 0;
  for (const auto &V : S.variants())
    T.addRow({std::to_string(Idx++), Table::num(V.LevelPerf, 2),
              optimizationBiasName(V.Bias), V.feasible() ? "yes" : "no",
              V.feasible() ? std::to_string(V.Result.Dist.startTime()) : "-",
              V.feasible() ? std::to_string(V.Result.Dist.makespan()) : "-",
              V.feasible() ? Table::num(V.Result.Dist.economicCost(), 0)
                           : "-"});
  T.print(std::cout);

  if (!S.admissible()) {
    std::cout << "\nstrategy is inadmissible; try another seed\n";
    return 0;
  }

  std::cout << "\naging the environment with background arrivals:\n";
  Prng BgRng(static_cast<uint64_t>(Seed) + 99);
  const ScheduleVariant *Last = nullptr;
  for (int Step = 0;; ++Step) {
    const ScheduleVariant *Pick = S.bestFitting(Env);
    if (!Pick) {
      std::cout << "  t=" << Step << ": no supporting schedule fits — the "
                << "strategy is dead (TTL = " << Step << " arrivals)\n";
      break;
    }
    if (Pick != Last) {
      std::cout << "  t=" << Step << ": using variant #"
                << (Pick - S.variants().data()) << " (cost "
                << Table::num(Pick->Result.Dist.economicCost(), 0)
                << ", makespan " << Pick->Result.Dist.makespan() << ")"
                << (Last ? "  <- switched" : "") << "\n";
      Last = Pick;
    }
    // One background job lands on a random node.
    unsigned Node = static_cast<unsigned>(BgRng.index(Env.size()));
    Tick Dur = BgRng.uniformInt(2, 10);
    Timeline &Line = Env.node(Node).timeline();
    Tick Start = Line.earliestFit(BgRng.uniformInt(0, J.deadline()), Dur);
    Line.reserve(Start, Start + Dur, BackgroundOwner);
    if (Step > 500) {
      std::cout << "  strategy survived 500 arrivals; stopping\n";
      break;
    }
  }
  return 0;
}
