//===-- examples/vo_simulation.cpp - A full two-level VO run --------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole framework end to end: a virtual organization with a
/// randomized heterogeneous grid, independent background job flows, a
/// metascheduler dispatching a flow of compound jobs, job managers
/// keeping strategies alive, and the QoS factors the paper studies —
/// for every strategy type side by side.
///
//===----------------------------------------------------------------------===//

#include "metrics/QoS.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  int64_t Jobs = 120;
  int64_t Seed = 42;
  Flags F;
  F.addInt("jobs", &Jobs, "compound jobs in the flow");
  F.addInt("seed", &Seed, "run seed");
  if (!F.parse(Argc, Argv))
    return 0;

  VoConfig Config;
  Config.JobCount = static_cast<size_t>(Jobs);
  Config.Workload.DeadlineSlack = 2.0;

  std::cout << "virtual organization run: " << Jobs
            << " compound jobs per strategy type, seed " << Seed << "\n\n";

  Table T({"strategy", "admissible %", "committed %", "rejected %",
           "mean cost", "mean CF", "mean run", "mean TTL", "switch %"});
  for (StrategyKind Kind : {StrategyKind::S1, StrategyKind::S2,
                            StrategyKind::S3, StrategyKind::MS1}) {
    VoRunResult Run = runVirtualOrganization(Config, Kind,
                                             static_cast<uint64_t>(Seed));
    VoAggregates A = summarizeVo(Run);
    T.addRow({strategyName(Kind), Table::num(A.AdmissiblePercent, 0),
              Table::num(A.CommittedPercent, 0),
              Table::num(A.RejectedPercent, 0), Table::num(A.MeanCost, 0),
              Table::num(A.MeanCf, 1), Table::num(A.MeanRunTicks, 1),
              Table::num(A.MeanTtl, 1), Table::num(A.SwitchedPercent, 0)});
  }
  T.print(std::cout);

  std::cout << "\nEach row is an independent simulation of the same job "
               "flow and background load under a different scheduling "
               "strategy type (S1: replication, S2: remote access, S3: "
               "coarse grain + static data, MS1: reduced coverage).\n";
  return 0;
}
