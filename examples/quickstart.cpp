//===-- examples/quickstart.cpp - CWS in five minutes ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a compound job (a DAG of tasks with data
/// transfers), describe a small heterogeneous environment, run the
/// critical works method and inspect the resulting distribution —
/// the wall-time co-allocation of every task.
///
//===----------------------------------------------------------------------===//

#include "core/Scheduler.h"
#include "job/Job.h"
#include "resource/Grid.h"
#include "resource/Network.h"

#include <cstdio>

using namespace cws;

int main() {
  // 1. A compound job: four tasks, diamond-shaped data dependencies.
  //    Each task has a reference execution time (its runtime on a
  //    relative-performance-1 node) and a computation volume.
  Job J;
  unsigned Prepare = J.addTask("prepare", /*RefTicks=*/2, /*Volume=*/20);
  unsigned SimA = J.addTask("simulate-a", 4, 40);
  unsigned SimB = J.addTask("simulate-b", 3, 30);
  unsigned Reduce = J.addTask("reduce", 2, 20);
  J.addEdge(Prepare, SimA, /*BaseTransfer=*/1);
  J.addEdge(Prepare, SimB, 1);
  J.addEdge(SimA, Reduce, 2);
  J.addEdge(SimB, Reduce, 1);
  // The QoS contract: the job must complete within 30 time units.
  J.setDeadline(30);

  // 2. The environment: heterogeneous nodes. Prices follow performance,
  //    so faster nodes cost more per tick.
  Grid Env;
  Env.addNode(1.0);  // fast
  Env.addNode(0.5);  // medium
  Env.addNode(0.33); // slow
  Env.addNode(0.33); // slow
  Network Net;

  // 3. Run the critical works method: cheapest co-allocation that still
  //    meets the deadline.
  SchedulerConfig Config; // defaults: cost bias, remote data access
  ScheduleResult R = scheduleJob(J, Env, Net, Config, /*Owner=*/1);

  if (!R.Feasible) {
    std::printf("the job cannot meet its deadline on this environment\n");
    return 1;
  }

  std::printf("scheduled %zu tasks in %zu critical-work phases\n",
              R.Dist.size(), R.Phases.size());
  std::printf("makespan %lld / deadline %lld, economic cost %.1f, CF %lld\n",
              static_cast<long long>(R.Dist.makespan()),
              static_cast<long long>(J.deadline()), R.Dist.economicCost(),
              static_cast<long long>(R.Dist.costFunction(J)));
  for (const auto &P : R.Dist.placements())
    std::printf("  %-12s -> node %u (perf %.2f)  [%lld, %lld)\n",
                J.task(P.TaskId).Name.c_str(), P.NodeId,
                Env.node(P.NodeId).relPerf(),
                static_cast<long long>(P.Start),
                static_cast<long long>(P.End));
  if (!R.Collisions.empty())
    std::printf("resolved %zu resource collision(s) along the way\n",
                R.Collisions.size());
  return 0;
}
