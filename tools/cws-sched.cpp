//===-- tools/cws-sched.cpp - Command line scheduler ----------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-sched: schedule a job description from a file (or stdin with
/// "-") and report the strategy. Usage:
///
///   cws-sched --file job.cws [--strategy S1|S2|S3|MS1]
///             [--now T] [--gantt 1] [--csv 1] [--build-threads N]
///             [--trace out.json] [--trace-categories core]
///             [--metrics out.prom] [--journal run.jsonl]
///             [--timeseries ts.csv] [--profile profile.json]
///             [--invalidation scan|index] [--reallocation repair|rebuild]
///
/// The description must declare nodes (or pass --fig2grid 1 to use the
/// paper's four-type environment).
///
//===----------------------------------------------------------------------===//

#include "core/Dot.h"
#include "core/Gantt.h"
#include "core/Strategy.h"
#include "lang/Parser.h"
#include "metrics/Export.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Provenance.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "resource/Network.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace cws;

int main(int Argc, char **Argv) {
  std::string File;
  std::string StrategyName = "S1";
  int64_t Now = 0;
  int64_t Gantt = 1;
  int64_t Csv = 0;
  int64_t Dot = 0;
  int64_t UseFig2Grid = 0;
  int64_t BuildThreads = 0;
  std::string TraceFile;
  std::string TraceCategories;
  std::string MetricsFile;
  std::string JournalFile;
  std::string TimeSeriesFile;
  Flags F;
  F.addString("file", &File, "job description file ('-' for stdin)");
  F.addString("strategy", &StrategyName, "S1 | S2 | S3 | MS1");
  F.addInt("now", &Now, "scheduling moment (ticks)");
  F.addInt("gantt", &Gantt, "render an ASCII Gantt chart (0/1)");
  F.addInt("csv", &Csv, "print CSV instead of tables (0/1)");
  F.addInt("dot", &Dot, "print the job as a Graphviz digraph and exit");
  F.addInt("fig2grid", &UseFig2Grid,
           "use the paper's Fig. 2 environment (0/1)");
  F.addInt("build-threads", &BuildThreads,
           "worker lanes for the strategy build (0 = hardware concurrency / "
           "CWS_BUILD_THREADS, 1 = serial)");
  F.addString("trace", &TraceFile,
              "write a Chrome trace-event JSON timeline of the build");
  F.addString("trace-categories", &TraceCategories,
              "record only these trace categories, comma-separated "
              "(e.g. core; empty = all)");
  F.addString("metrics", &MetricsFile,
              "write a metrics snapshot (Prometheus text, CSV if *.csv)");
  F.addString("journal", &JournalFile,
              "write the per-job decision journal as JSONL "
              "(inspect with cws-explain)");
  F.addString("timeseries", &TimeSeriesFile,
              "write the telemetry frames of the build (tidy CSV, JSONL "
              "if *.jsonl)");
  std::string ProfileFile;
  F.addString("profile", &ProfileFile,
              "write the phase profile (where wall time and work went) "
              "as JSON; inspect with cws-report --profile");
  // A single build has no environment changes to invalidate against;
  // the flag is validated here so scripts can pass one uniform command
  // line to both tools.
  std::string Invalidation = "index";
  F.addString("invalidation", &Invalidation,
              "how env changes find broken strategies: index or scan "
              "(no-op for a one-shot build; accepted for tool-flag "
              "uniformity with cws-sim)");
  // Like --invalidation: a one-shot build has no job flow to shard, but
  // scripts pass one uniform command line to both tools.
  int64_t Shards = 0;
  F.addInt("shards", &Shards,
           "worker shards of the job-flow level (no-op for a one-shot "
           "build; accepted for tool-flag uniformity with cws-sim)");
  std::string Reallocation = "repair";
  F.addString("reallocation", &Reallocation,
              "how stale strategies are replaced: repair or rebuild "
              "(no-op for a one-shot build; accepted for tool-flag "
              "uniformity with cws-sim)");
  if (!F.parse(Argc, Argv))
    return 0;
  if (Invalidation != "scan" && Invalidation != "index") {
    std::fprintf(stderr,
                 "cws-sched: --invalidation must be scan or index, got "
                 "'%s'\n",
                 Invalidation.c_str());
    return 2;
  }
  if (Reallocation != "repair" && Reallocation != "rebuild") {
    std::fprintf(stderr,
                 "cws-sched: --reallocation must be repair or rebuild, got "
                 "'%s'\n",
                 Reallocation.c_str());
    return 2;
  }
  if (Shards < 0) {
    std::fprintf(stderr, "cws-sched: --shards must be >= 0\n");
    return 2;
  }

  if (!TraceFile.empty()) {
    obs::Tracer::global().setCategoryFilter(TraceCategories);
    obs::Tracer::global().enable();
  }
  if (!JournalFile.empty())
    obs::Journal::global().enable();
  if (!ProfileFile.empty())
    obs::Profiler::global().enable();
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeries::global().enable();
    obs::TimeSeries::global().addDefaultProbes(obs::Registry::global());
  }

  if (File.empty()) {
    std::fprintf(stderr, "cws-sched: --file is required (try --help)\n");
    return 2;
  }
  std::string Text;
  if (File == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cws-sched: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }

  ParseResult R = parseJobDescription(Text);
  if (!R.ok()) {
    std::fprintf(stderr, "%s", formatDiagnostics(R.Errors).c_str());
    return 1;
  }
  Grid Env = UseFig2Grid ? Grid::makeFig2() : std::move(R.Env);
  if (Env.empty()) {
    std::fprintf(stderr,
                 "cws-sched: no nodes declared (add 'node perf ...' "
                 "lines or pass --fig2grid 1)\n");
    return 1;
  }

  if (Dot) {
    std::cout << jobDot(R.TheJob);
    return 0;
  }

  StrategyConfig Config;
  for (StrategyKind K : {StrategyKind::S1, StrategyKind::S2,
                         StrategyKind::S3, StrategyKind::MS1})
    if (StrategyName == strategyName(K))
      Config.Kind = K;
  if (BuildThreads > 0)
    Config.BuildThreads = static_cast<size_t>(BuildThreads);

  // Provenance for the one-shot build: no seed or VoConfig exists, so
  // the config hash covers the job description text plus the strategy
  // knobs that shape the build.
  obs::RunProvenance Prov;
  Prov.Stamped = true;
  Prov.Seed = 0;
  Prov.ConfigHash = obs::configHashOf(
      std::string("sched strategy=") + strategyName(Config.Kind) +
      " now=" + std::to_string(Now) + "\n" + Text);
  Prov.ScenarioId = "single";
  Prov.Cli = obs::cliStringOf(Argc, Argv);
  obs::Journal::global().setProvenance(Prov);
  obs::TimeSeries::global().setProvenance(Prov);
  obs::Profiler::global().setProvenance(Prov);

  Network Net;
  Strategy S = Strategy::build(R.TheJob, Env, Net, Config, /*Owner=*/1,
                               Now);

  // A one-shot build has no simulator clock driving periodic frames;
  // record a single post-build frame so the probes still export.
  std::string TsExtra;
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeries &Ts = obs::TimeSeries::global();
    Ts.sampleEvent(Now, "build");
    Ts.disable();
    TsExtra = Ts.chromeTraceEvents();
  }
  if (!ProfileFile.empty()) {
    obs::Profiler &P = obs::Profiler::global();
    P.disable();
    std::string PhaseExtra = P.chromeTraceEvents();
    if (!PhaseExtra.empty())
      TsExtra += (TsExtra.empty() ? "" : ",") + PhaseExtra;
    if (!P.writeJson(ProfileFile)) {
      std::fprintf(stderr, "cws-sched: cannot write profile '%s'\n",
                   ProfileFile.c_str());
      return 2;
    }
    publishProfilerStats(P, obs::Registry::global());
  }

  if (!TraceFile.empty()) {
    obs::Tracer::global().disable();
    if (!obs::Tracer::global().writeJson(TraceFile, TsExtra)) {
      std::fprintf(stderr, "cws-sched: cannot write trace '%s'\n",
                   TraceFile.c_str());
      return 2;
    }
  }
  if (!JournalFile.empty()) {
    obs::Journal::global().disable();
    if (!obs::Journal::global().writeJsonl(JournalFile)) {
      std::fprintf(stderr, "cws-sched: cannot write journal '%s'\n",
                   JournalFile.c_str());
      return 2;
    }
  }
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeries &Ts = obs::TimeSeries::global();
    if (!Ts.writeFile(TimeSeriesFile)) {
      std::fprintf(stderr, "cws-sched: cannot write time series '%s'\n",
                   TimeSeriesFile.c_str());
      return 2;
    }
    publishTimeSeriesStats(obs::Registry::global());
  }
  if (!MetricsFile.empty() && !writeMetricsSnapshot(MetricsFile)) {
    std::fprintf(stderr, "cws-sched: cannot write metrics '%s'\n",
                 MetricsFile.c_str());
    return 2;
  }

  if (Csv) {
    std::cout << strategyCsv(S);
    if (const ScheduleVariant *Best = S.bestByCost())
      std::cout << "\n" << distributionCsv(S.scheduledJob(),
                                           Best->Result.Dist);
    return S.admissible() ? 0 : 1;
  }

  std::cout << "job " << R.TheJob.id() << " with " << R.TheJob.taskCount()
            << " tasks; strategy " << strategyName(S.kind()) << " has "
            << S.variants().size() << " variants, " << S.feasibleCount()
            << " feasible\n\n";
  Table T({"#", "level perf", "bias", "feasible", "start", "makespan",
           "econ cost", "CF"});
  size_t Idx = 0;
  for (const auto &V : S.variants()) {
    const Distribution &D = V.Result.Dist;
    T.addRow({std::to_string(Idx++), Table::num(V.LevelPerf, 2),
              optimizationBiasName(V.Bias), V.feasible() ? "yes" : "no",
              V.feasible() ? std::to_string(D.startTime()) : "-",
              V.feasible() ? std::to_string(D.makespan()) : "-",
              V.feasible() ? Table::num(D.economicCost(), 1) : "-",
              V.feasible()
                  ? std::to_string(D.costFunction(S.scheduledJob()))
                  : "-"});
  }
  T.print(std::cout);

  const ScheduleVariant *Best = S.bestByCost();
  if (!Best) {
    std::cout << "\nno admissible schedule within the deadline\n";
    return 1;
  }
  if (Gantt) {
    GanttOptions Options;
    Options.ShowIdleNodes = true;
    std::cout << "\ncheapest supporting schedule:\n"
              << renderGantt(S.scheduledJob(), Env, Best->Result.Dist,
                             Options);
  }
  return 0;
}
