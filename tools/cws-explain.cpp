//===-- tools/cws-explain.cpp - Decision journal inspector ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-explain: answer "why did the scheduler do that?" from a decision
/// journal written by `cws-sim --journal=run.jsonl`. Usage:
///
///   cws-explain [--job N] [--why-reallocated] [--why-rejected]
///               [--summary] run.jsonl
///   cws-explain --diff-job N a.jsonl b.jsonl
///
/// With no mode flag the per-flow summary is printed. The journal is
/// schema-validated first; structural violations make the tool exit 1,
/// which CI uses as the journal schema gate. `--diff-job` takes two
/// journals and renders job N's causal timeline from both runs plus
/// their first divergence (the cws-diff passthrough).
///
/// Exit codes: 0 ok, 1 validation failure, 2 usage / I/O / parse
/// error — the convention shared by cws-report, cws-sweep and
/// cws-diff.
///
//===----------------------------------------------------------------------===//

#include "obs/Diff.h"
#include "obs/Explain.h"
#include "obs/Journal.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace cws;

static void printUsage() {
  std::fprintf(
      stderr,
      "usage: cws-explain [--job N] [--why-reallocated] [--why-rejected]\n"
      "                   [--summary] <journal.jsonl>\n"
      "       cws-explain --diff-job N <a.jsonl> <b.jsonl>\n"
      "\n"
      "  --job N            causal timeline of job N\n"
      "  --why-reallocated  every reallocation, its triggering\n"
      "                     environment change and the broken slot\n"
      "  --why-rejected     every rejection and the decision before it\n"
      "  --summary          per-flow decision counts (default)\n"
      "  --diff-job N       job N's timeline from two journals and their\n"
      "                     first divergence\n"
      "\n"
      "exit codes: 0 ok, 1 validation failure, 2 usage or I/O\n");
}

int main(int Argc, char **Argv) {
  // The journal path is positional, so support/Flags.h (key=value only)
  // does not fit; the four modes make hand parsing short enough.
  std::string Path;
  std::string PathB;
  int64_t JobId = -1;
  int64_t DiffJobId = -1;
  bool WantJob = false;
  bool WantDiffJob = false;
  bool WantReallocated = false;
  bool WantRejected = false;
  bool WantSummary = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--diff-job") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cws-explain: --diff-job needs a job id\n");
        return 2;
      }
      char *End = nullptr;
      DiffJobId = std::strtoll(Argv[++I], &End, 10);
      if (!End || *End != '\0') {
        std::fprintf(stderr, "cws-explain: bad job id '%s'\n", Argv[I]);
        return 2;
      }
      WantDiffJob = true;
    } else if (Arg == "--job") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cws-explain: --job needs a job id\n");
        return 2;
      }
      char *End = nullptr;
      JobId = std::strtoll(Argv[++I], &End, 10);
      if (!End || *End != '\0') {
        std::fprintf(stderr, "cws-explain: bad job id '%s'\n", Argv[I]);
        return 2;
      }
      WantJob = true;
    } else if (Arg.rfind("--job=", 0) == 0) {
      char *End = nullptr;
      JobId = std::strtoll(Arg.c_str() + 6, &End, 10);
      if (!End || *End != '\0') {
        std::fprintf(stderr, "cws-explain: bad job id '%s'\n",
                     Arg.c_str() + 6);
        return 2;
      }
      WantJob = true;
    } else if (Arg == "--why-reallocated") {
      WantReallocated = true;
    } else if (Arg == "--why-rejected") {
      WantRejected = true;
    } else if (Arg == "--summary") {
      WantSummary = true;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "cws-explain: unknown flag '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else if (WantDiffJob && PathB.empty()) {
      PathB = Arg;
    } else {
      std::fprintf(stderr, "cws-explain: more than one journal file\n");
      return 2;
    }
  }
  if (Path.empty() || (WantDiffJob && PathB.empty())) {
    printUsage();
    return 2;
  }
  if (WantDiffJob && (WantJob || WantReallocated || WantRejected)) {
    std::fprintf(stderr, "cws-explain: --diff-job excludes other modes\n");
    return 2;
  }
  if (!WantJob && !WantDiffJob && !WantReallocated && !WantRejected)
    WantSummary = true;

  std::string Text;
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Text = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cws-explain: cannot open '%s'\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }

  obs::ParsedJournal J;
  std::string Error;
  if (!obs::parseJournalJsonl(Text, J, Error)) {
    std::fprintf(stderr, "cws-explain: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return 2;
  }
  if (WantDiffJob) {
    // An inspection across two runs, not a gate: skip the validation
    // pass so a journal from a misbehaving run can still be compared.
    std::ifstream InB(PathB);
    if (!InB) {
      std::fprintf(stderr, "cws-explain: cannot open '%s'\n", PathB.c_str());
      return 2;
    }
    std::ostringstream BufferB;
    BufferB << InB.rdbuf();
    obs::ParsedJournal B;
    if (!obs::parseJournalJsonl(BufferB.str(), B, Error)) {
      std::fprintf(stderr, "cws-explain: %s: %s\n", PathB.c_str(),
                   Error.c_str());
      return 2;
    }
    std::cout << obs::explainJobDiff(J, B, DiffJobId);
    return 0;
  }
  std::vector<std::string> Violations = obs::validateJournal(J);
  if (!Violations.empty()) {
    std::fprintf(stderr, "cws-explain: %s: journal fails validation:\n",
                 Path.c_str());
    for (const std::string &V : Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
    return 1;
  }

  bool First = true;
  auto Separate = [&First] {
    if (!First)
      std::cout << "\n";
    First = false;
  };
  if (WantJob) {
    Separate();
    std::cout << obs::explainJob(J, JobId);
  }
  if (WantReallocated) {
    Separate();
    std::cout << obs::explainReallocations(J);
  }
  if (WantRejected) {
    Separate();
    std::cout << obs::explainRejections(J);
  }
  if (WantSummary) {
    Separate();
    std::cout << obs::journalSummary(J);
  }
  return 0;
}
