//===-- tools/cws-sweep.cpp - Monte-Carlo scenario sweep driver -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-sweep: expand a declarative scenario grid into runs, fan them
/// across `cws-sim` worker processes, and pool per-scenario statistics
/// (mean, stddev, 95% CI, p50/p90/p99) of every QoS indicator. Usage:
///
///   cws-sweep --grid examples/sweep.grid --workers 4
///             [--sim build/tools/cws-sim] [--out sweep.csv]
///             [--report sweep.md] [--slo examples/sweep.slo]
///             [--runs-dir sweep-runs] [--keep-runs 1]
///
/// `--out` writes the statistics store CSV (`cws-report --sweep` reads
/// it back); `--report` renders the Markdown sweep report; `--slo`
/// gates the exit code on quantile rules like
/// `deadline_miss_rate.p90 <= 0.05 across seeds`. Pooled statistics are
/// identical at any --workers value: runs are deterministic per seed
/// and pooling is order-insensitive. Exit codes: 0 ok, 1 SLO breach,
/// 2 usage / run / pooling error.
///
//===----------------------------------------------------------------------===//

#include "support/Flags.h"
#include "sweep/Runner.h"
#include "sweep/Scenario.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace cws;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

static bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  return static_cast<bool>(Out && (Out << Text));
}

int main(int Argc, char **Argv) {
  std::string GridFile;
  std::string SimBinary;
  std::string OutFile;
  std::string ReportFile;
  std::string SloFile;
  std::string RunsDir = "sweep-runs";
  int64_t Workers = 2;
  int64_t KeepRuns = 0;
  int64_t Quiet = 0;
  Flags F;
  F.addString("grid", &GridFile, "scenario grid file (required)");
  F.addString("sim", &SimBinary,
              "cws-sim binary to spawn (default: next to cws-sweep)");
  F.addString("out", &OutFile,
              "write the pooled statistics CSV here (read back with "
              "cws-report --sweep)");
  F.addString("report", &ReportFile,
              "write the Markdown sweep report here");
  F.addString("slo", &SloFile,
              "SLO rules; quantile rules ('indicator.p90 <= bound "
              "across seeds') gate the pooled distributions, exit 1 on "
              "breach");
  F.addString("runs-dir", &RunsDir, "directory for per-run artifacts");
  F.addInt("workers", &Workers, "concurrent worker processes");
  F.addInt("keep-runs", &KeepRuns,
           "keep per-run journals / series / logs after pooling (0/1)");
  F.addInt("quiet", &Quiet, "suppress per-run progress lines (0/1)");
  if (!F.parse(Argc, Argv))
    return 0;

  if (GridFile.empty()) {
    std::fprintf(stderr, "cws-sweep: --grid is required (try --help)\n");
    return 2;
  }
  if (Workers <= 0) {
    std::fprintf(stderr, "cws-sweep: --workers must be positive\n");
    return 2;
  }
  if (SimBinary.empty()) {
    // Default: cws-sim sits next to this binary.
    std::string Self = Argv[0];
    size_t Slash = Self.rfind('/');
    SimBinary = Slash == std::string::npos
                    ? std::string("cws-sim")
                    : Self.substr(0, Slash + 1) + "cws-sim";
  }

  std::string Text;
  if (!readFile(GridFile, Text)) {
    std::fprintf(stderr, "cws-sweep: cannot open '%s'\n", GridFile.c_str());
    return 2;
  }
  sweep::SweepGrid Grid;
  std::string Error;
  if (!sweep::parseSweepGrid(Text, Grid, Error)) {
    std::fprintf(stderr, "cws-sweep: %s: %s\n", GridFile.c_str(),
                 Error.c_str());
    return 2;
  }

  size_t Scenarios = sweep::sweepScenarioCount(Grid);
  std::fprintf(stderr,
               "cws-sweep: %zu scenarios x %llu seeds = %llu runs, "
               "%lld workers\n",
               Scenarios, static_cast<unsigned long long>(Grid.Seeds),
               static_cast<unsigned long long>(Scenarios * Grid.Seeds),
               static_cast<long long>(Workers));

  sweep::SweepOptions Opts;
  Opts.SimBinary = SimBinary;
  Opts.RunsDir = RunsDir;
  Opts.Workers = static_cast<unsigned>(Workers);
  Opts.KeepRuns = KeepRuns != 0;
  if (!Quiet)
    Opts.Progress = [](const std::string &Line) {
      std::fprintf(stderr, "cws-sweep: %s\n", Line.c_str());
    };

  obs::SweepStore Store;
  if (!sweep::runSweep(Grid, Opts, Store, Error)) {
    std::fprintf(stderr, "cws-sweep: %s\n", Error.c_str());
    return 2;
  }

  if (!OutFile.empty() && !writeFile(OutFile, obs::sweepCsv(Store))) {
    std::fprintf(stderr, "cws-sweep: cannot write '%s'\n", OutFile.c_str());
    return 2;
  }

  std::vector<obs::SweepSloResult> Slo;
  bool Breached = false;
  if (!SloFile.empty()) {
    if (!readFile(SloFile, Text)) {
      std::fprintf(stderr, "cws-sweep: cannot open '%s'\n", SloFile.c_str());
      return 2;
    }
    std::vector<obs::SloRule> Rules;
    if (!obs::parseSloFile(Text, Rules, Error)) {
      std::fprintf(stderr, "cws-sweep: %s: %s\n", SloFile.c_str(),
                   Error.c_str());
      return 2;
    }
    Slo = obs::evaluateSweepSlo(Rules, Store);
    for (const obs::SweepSloResult &R : Slo) {
      if (R.Pass)
        continue;
      Breached = true;
      if (!R.Known)
        std::fprintf(stderr,
                     "cws-sweep: SLO breach: no scenario defines '%s'\n",
                     R.Rule.fullName().c_str());
      else
        std::fprintf(stderr,
                     "cws-sweep: SLO breach: %s = %g at %s violates %s "
                     "%g\n",
                     R.Rule.fullName().c_str(), R.Worst,
                     R.WorstScenario.c_str(), R.Rule.IsUpper ? "<=" : ">=",
                     R.Rule.Bound);
    }
  }

  std::string Report = obs::renderSweepReport(Store, Slo);
  if (ReportFile.empty()) {
    std::cout << Report;
  } else if (!writeFile(ReportFile, Report)) {
    std::fprintf(stderr, "cws-sweep: cannot write '%s'\n",
                 ReportFile.c_str());
    return 2;
  }
  if (!OutFile.empty())
    std::fprintf(stderr, "cws-sweep: wrote pooled statistics to %s\n",
                 OutFile.c_str());
  return Breached ? 1 : 0;
}
