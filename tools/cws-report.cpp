//===-- tools/cws-report.cpp - Markdown run reporter + SLO gate -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-report: join a decision journal with a telemetry time series
/// into one Markdown run report, and gate on service-level objectives.
/// Usage:
///
///   cws-sim --jobs 200 --journal=run.jsonl --timeseries=ts.csv
///           --profile=profile.json
///   cws-report --journal=run.jsonl --timeseries=ts.csv
///              [--profile=profile.json] [--slo=run.slo] [--out report.md]
///   cws-report --sweep=sweep.csv [--slo=sweep.slo] [--out report.md]
///
/// The report renders an overview, the utilization summary with the
/// top-5 most-contended nodes, the reallocation/invalidation timeline,
/// and the per-flow QoS table. With `--profile` it adds the "Where the
/// time went" phase breakdown and exposes `phase.*` indicators to SLO
/// rules (`phase.chain.dp.self_us <= 500000`); without a profile those
/// rules fail closed. With `--slo` each rule of the file
/// (`indicator <= bound`, `#` comments) is evaluated against the run's
/// indicators and any breach makes the tool exit 1 — a CI-gateable
/// alerting analog.
///
/// With `--sweep` the tool reads a pooled statistics store written by
/// `cws-sweep --out` and renders the sweep report instead: per-scenario
/// distributions, per-axis trends, crossing-point estimates, and the
/// SLO verdict. Sweep SLO rules may gate pooled statistics
/// (`deadline_miss_rate.p90 <= 0.05 across seeds`); distribution rules
/// fail closed in single-run mode. Exit codes: 0 ok, 1 SLO breach or
/// invalid journal, 2 usage / I/O / parse error — the convention
/// shared by cws-explain, cws-sweep and cws-diff.
///
//===----------------------------------------------------------------------===//

#include "obs/Explain.h"
#include "obs/Journal.h"
#include "obs/Report.h"
#include "support/Flags.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace cws;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int main(int Argc, char **Argv) {
  std::string JournalFile;
  std::string TimeSeriesFile;
  std::string SweepFile;
  std::string SloFile;
  std::string OutFile;
  Flags F;
  F.addString("journal", &JournalFile,
              "decision journal written by cws-sim --journal (required "
              "unless --sweep)");
  F.addString("timeseries", &TimeSeriesFile,
              "telemetry CSV written by cws-sim --timeseries");
  std::string ProfileFile;
  F.addString("profile", &ProfileFile,
              "phase profile written by cws-sim --profile; adds the "
              "'Where the time went' section and the phase.* SLO "
              "indicators");
  F.addString("sweep", &SweepFile,
              "pooled statistics CSV written by cws-sweep --out; renders "
              "the sweep report instead of a run report");
  F.addString("slo", &SloFile,
              "SLO rules ('indicator <= bound' lines, pooled-statistic "
              "rules like 'indicator.p90 <= bound across seeds' with "
              "--sweep); any breach makes the exit code 1");
  F.addString("out", &OutFile,
              "write the Markdown report here instead of stdout");
  if (!F.parse(Argc, Argv))
    return 0;

  std::string Text;
  std::string Error;

  //===--- Sweep mode ----------------------------------------------------===//
  if (!SweepFile.empty()) {
    if (!JournalFile.empty() || !TimeSeriesFile.empty() ||
        !ProfileFile.empty()) {
      std::fprintf(stderr, "cws-report: --sweep excludes "
                           "--journal/--timeseries/--profile\n");
      return 2;
    }
    if (!readFile(SweepFile, Text)) {
      std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                   SweepFile.c_str());
      return 2;
    }
    obs::SweepStore Store;
    if (!obs::parseSweepCsv(Text, Store, Error)) {
      std::fprintf(stderr, "cws-report: %s: %s\n", SweepFile.c_str(),
                   Error.c_str());
      return 2;
    }
    std::vector<obs::SweepSloResult> Slo;
    bool Breached = false;
    if (!SloFile.empty()) {
      if (!readFile(SloFile, Text)) {
        std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                     SloFile.c_str());
        return 2;
      }
      std::vector<obs::SloRule> Rules;
      if (!obs::parseSloFile(Text, Rules, Error)) {
        std::fprintf(stderr, "cws-report: %s: %s\n", SloFile.c_str(),
                     Error.c_str());
        return 2;
      }
      Slo = obs::evaluateSweepSlo(Rules, Store);
      for (const obs::SweepSloResult &R : Slo) {
        if (R.Pass)
          continue;
        Breached = true;
        if (!R.Known)
          std::fprintf(stderr,
                       "cws-report: SLO breach: no scenario defines "
                       "'%s'\n",
                       R.Rule.fullName().c_str());
        else
          std::fprintf(stderr,
                       "cws-report: SLO breach: %s = %g at %s violates "
                       "%s %g\n",
                       R.Rule.fullName().c_str(), R.Worst,
                       R.WorstScenario.c_str(),
                       R.Rule.IsUpper ? "<=" : ">=", R.Rule.Bound);
      }
    }
    std::string Report = obs::renderSweepReport(Store, Slo);
    if (OutFile.empty()) {
      std::cout << Report;
    } else {
      std::ofstream Out(OutFile);
      if (!Out || !(Out << Report)) {
        std::fprintf(stderr, "cws-report: cannot write '%s'\n",
                     OutFile.c_str());
        return 2;
      }
    }
    return Breached ? 1 : 0;
  }

  if (JournalFile.empty()) {
    std::fprintf(stderr, "cws-report: --journal is required (try --help)\n");
    return 2;
  }

  if (!readFile(JournalFile, Text)) {
    std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                 JournalFile.c_str());
    return 2;
  }
  obs::ParsedJournal J;
  if (!obs::parseJournalJsonl(Text, J, Error)) {
    std::fprintf(stderr, "cws-report: %s: %s\n", JournalFile.c_str(),
                 Error.c_str());
    return 2;
  }
  std::vector<std::string> Violations = obs::validateJournal(J);
  if (!Violations.empty()) {
    std::fprintf(stderr, "cws-report: %s: journal fails validation:\n",
                 JournalFile.c_str());
    for (const std::string &V : Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
    return 1;
  }

  obs::ParsedTimeSeries Ts;
  if (!TimeSeriesFile.empty()) {
    if (!readFile(TimeSeriesFile, Text)) {
      std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                   TimeSeriesFile.c_str());
      return 2;
    }
    if (!obs::parseTimeSeriesCsv(Text, Ts, Error)) {
      std::fprintf(stderr, "cws-report: %s: %s\n", TimeSeriesFile.c_str(),
                   Error.c_str());
      return 2;
    }
  }

  obs::ParsedProfile Profile;
  bool HasProfile = false;
  if (!ProfileFile.empty()) {
    if (!readFile(ProfileFile, Text)) {
      std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                   ProfileFile.c_str());
      return 2;
    }
    if (!obs::parseProfileJson(Text, Profile, Error)) {
      std::fprintf(stderr, "cws-report: %s: %s\n", ProfileFile.c_str(),
                   Error.c_str());
      return 2;
    }
    HasProfile = true;
  }

  std::vector<obs::SloResult> Slo;
  bool Breached = false;
  if (!SloFile.empty()) {
    if (!readFile(SloFile, Text)) {
      std::fprintf(stderr, "cws-report: cannot open '%s'\n",
                   SloFile.c_str());
      return 2;
    }
    std::vector<obs::SloRule> Rules;
    if (!obs::parseSloFile(Text, Rules, Error)) {
      std::fprintf(stderr, "cws-report: %s: %s\n", SloFile.c_str(),
                   Error.c_str());
      return 2;
    }
    std::map<std::string, double> Ind = obs::computeIndicators(J, Ts);
    // phase.* rules gate only an attached profile; without one they
    // stay unknown and fail closed.
    if (HasProfile)
      obs::addProfileIndicators(Profile, Ind);
    Slo = obs::evaluateSlo(Rules, Ind);
    for (const obs::SloResult &R : Slo) {
      if (R.Pass)
        continue;
      Breached = true;
      if (!R.Known)
        std::fprintf(stderr,
                     "cws-report: SLO breach: unknown indicator '%s'\n",
                     R.Rule.Indicator.c_str());
      else
        std::fprintf(stderr,
                     "cws-report: SLO breach: %s = %g violates %s %g\n",
                     R.Rule.Indicator.c_str(), R.Actual,
                     R.Rule.IsUpper ? "<=" : ">=", R.Rule.Bound);
    }
  }

  std::string Report =
      obs::renderRunReport(J, Ts, Slo, HasProfile ? &Profile : nullptr);
  if (OutFile.empty()) {
    std::cout << Report;
  } else {
    std::ofstream Out(OutFile);
    if (!Out || !(Out << Report)) {
      std::fprintf(stderr, "cws-report: cannot write '%s'\n",
                   OutFile.c_str());
      return 2;
    }
  }
  return Breached ? 1 : 0;
}
