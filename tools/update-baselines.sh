#!/bin/sh
#===-- tools/update-baselines.sh - Regenerate the golden baselines -------===#
#
# Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
# Scheduling" (PaCT 2009). Distributed without any warranty.
#
# Regenerates examples/baseline/ — the golden run artifacts that CI's
# `cws-diff --against-baseline` regression gate compares every build
# against, and examples/baseline/bench/ — the BENCH_*.json perf
# baselines that CI's `cws-bench --against` ratchet compares every
# build against. Run from the repository root after an *intentional*
# behavior change, inspect the diff, and commit the result:
#
#   cmake -B build -S . && cmake --build build -j
#   sh tools/update-baselines.sh [build-dir]
#   git diff examples/baseline/   # review: is every change intended?
#
# The workload is pinned (jobs, seed, scenario id) so the artifacts
# are deterministic; the MANIFEST holds fnv1a64 content digests that
# let the gate reject stale baselines and short-circuit unchanged
# files.
#
#===----------------------------------------------------------------------===#
set -eu

BUILD=${1:-build}
OUT=examples/baseline

[ -x "$BUILD/tools/cws-sim" ] && [ -x "$BUILD/tools/cws-diff" ] || {
  echo "update-baselines: $BUILD/tools/cws-sim or cws-diff missing;" \
       "build first (cmake --build $BUILD -j)" >&2
  exit 2
}
mkdir -p "$OUT"

# The pinned example workload. Relative binary path keeps the recorded
# CLI text stable across checkouts (and the gate allows it to differ
# anyway).
"$BUILD/tools/cws-sim" --jobs 60 --seed 7 --scenario baseline \
    --journal "$OUT/example.journal.jsonl" \
    --timeseries "$OUT/example.ts.csv"

{
  echo "# Golden baseline digests (fnv1a64 over raw bytes)."
  echo "# Regenerate with: sh tools/update-baselines.sh"
  for F in example.journal.jsonl example.ts.csv; do
    D=$("$BUILD/tools/cws-diff" --digest "$OUT/$F" | cut -d' ' -f1)
    echo "$D  $F"
  done
} > "$OUT/MANIFEST"

echo "update-baselines: wrote $OUT/{example.journal.jsonl,example.ts.csv,MANIFEST}"

# The perf baselines. One measured repetition: wall-time statistics are
# advisory in the ratchet anyway, and only the deterministic work
# counters / checks gate, so a single rep is exactly as strong and much
# faster. Run with pinned parallelism so the recorded provenance is
# stable (the ratchet allows shards/cli to differ regardless).
[ -x "$BUILD/tools/cws-bench" ] || {
  echo "update-baselines: $BUILD/tools/cws-bench missing;" \
       "build first (cmake --build $BUILD -j)" >&2
  exit 2
}
CWS_BUILD_THREADS=1 CWS_SHARDS=1 \
  "$BUILD/tools/cws-bench" --reps 1 --warmup 0 --out "$OUT/bench" \
  > /dev/null

echo "update-baselines: wrote $OUT/bench/BENCH_*.json"
