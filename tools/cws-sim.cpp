//===-- tools/cws-sim.cpp - Command line VO simulator ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-sim: run the two-level virtual-organization simulation from the
/// command line and report QoS aggregates or a per-job CSV. Usage:
///
///   cws-sim [--strategy S1|S2|S3|MS1] [--jobs N] [--seed S]
///           [--slack X] [--csv 1] [--build-threads N] [--shards N]
///           [--trace out.json] [--trace-categories core,flow]
///           [--metrics out.prom] [--journal run.jsonl]
///           [--timeseries ts.csv] [--sample-every N]
///           [--profile profile.json] [--invalidation scan|index]
///           [--arrival-scale X] [--background-scale X]
///           [--fast-share Y] [--scenario ID]
///
/// The scale flags are the sweep axes `cws-sweep` drives: they multiply
/// the arrival rate (divide interarrival gaps) and background load
/// (divide background mean gaps), and set the fast-node share. All are
/// the identity at their defaults. --scenario labels the run's
/// provenance stamp; every journal / time-series artifact carries
/// (seed, config hash, scenario, CLI) so aggregators can verify what
/// they pool.
///
//===----------------------------------------------------------------------===//

#include "flow/VirtualOrganization.h"
#include "metrics/Export.h"
#include "metrics/QoS.h"
#include "obs/Journal.h"
#include "obs/Profiler.h"
#include "obs/Provenance.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "support/Flags.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <iostream>

using namespace cws;

int main(int Argc, char **Argv) {
  std::string StrategyName = "S1";
  int64_t Jobs = 200;
  int64_t Seed = 42;
  double Slack = 2.0;
  int64_t Csv = 0;
  int64_t Exec = 0;
  int64_t BuildThreads = 0;
  std::string TraceFile;
  std::string TraceCategories;
  std::string MetricsFile;
  std::string JournalFile;
  std::string TimeSeriesFile;
  int64_t SampleEvery = 25;
  Flags F;
  F.addString("strategy", &StrategyName, "S1 | S2 | S3 | MS1");
  F.addInt("jobs", &Jobs, "compound jobs in the flow");
  F.addInt("seed", &Seed, "run seed");
  F.addReal("slack", &Slack, "deadline slack factor");
  F.addInt("csv", &Csv, "print the per-job CSV instead of a summary");
  F.addInt("exec", &Exec,
           "execute committed schedules under runtime deviations (0/1)");
  F.addInt("build-threads", &BuildThreads,
           "worker lanes for strategy builds (0 = hardware concurrency / "
           "CWS_BUILD_THREADS, 1 = serial)");
  int64_t Shards = 0;
  F.addInt("shards", &Shards,
           "worker shards of the job-flow level: parallel ingest and "
           "tender evaluation, results byte-identical at any value "
           "(0 = CWS_SHARDS env, 1 when unset)");
  F.addString("trace", &TraceFile,
              "write a Chrome trace-event JSON timeline of the run");
  F.addString("trace-categories", &TraceCategories,
              "record only these trace categories, comma-separated "
              "(e.g. core,flow; empty = all)");
  F.addString("metrics", &MetricsFile,
              "write a metrics snapshot (Prometheus text, CSV if *.csv)");
  F.addString("journal", &JournalFile,
              "write the per-job decision journal as JSONL "
              "(inspect with cws-explain)");
  F.addString("timeseries", &TimeSeriesFile,
              "write the sim-time telemetry series (tidy CSV, JSONL if "
              "*.jsonl; inspect with cws-report)");
  F.addInt("sample-every", &SampleEvery,
           "periodic telemetry frame cadence in simulation ticks");
  std::string ProfileFile;
  F.addString("profile", &ProfileFile,
              "write the phase profile (where wall time and work went) "
              "as JSON; inspect with cws-report --profile");
  std::string Invalidation = "index";
  F.addString("invalidation", &Invalidation,
              "how env changes find broken strategies: index "
              "(event-driven slot index) or scan (full re-validation "
              "oracle)");
  std::string Reallocation = "repair";
  F.addString("reallocation", &Reallocation,
              "how stale strategies are replaced: repair (escalating "
              "staged repair) or rebuild (unconditional full rebuild "
              "oracle)");
  bool RepairOracle = false;
  F.addBool("repair-oracle", &RepairOracle,
            "re-derive every staged repair with a side-effect-free "
            "reference rebuild and print the oracle tallies (feasible, "
            "affordable, cost vs rebuild)");
  double ArrivalScale = 1.0;
  double BackgroundScale = 1.0;
  double FastShare = -1.0;
  std::string Scenario = "single";
  F.addReal("arrival-scale", &ArrivalScale,
            "arrival-rate multiplier: interarrival gaps divide by this "
            "(sweep axis; 1 = paper default)");
  F.addReal("background-scale", &BackgroundScale,
            "background-load multiplier: background mean gaps divide by "
            "this (sweep axis; 1 = paper default)");
  F.addReal("fast-share", &FastShare,
            "share of fast nodes in the grid (sweep axis; negative = "
            "paper default 1/3)");
  F.addString("scenario", &Scenario,
              "scenario id stamped into artifact provenance");
  if (!F.parse(Argc, Argv))
    return 0;
  if (ArrivalScale <= 0 || BackgroundScale <= 0) {
    std::fprintf(stderr, "cws-sim: scale factors must be positive\n");
    return 2;
  }
  if (FastShare >= 0 && FastShare > 1.0) {
    std::fprintf(stderr, "cws-sim: --fast-share must be in [0, 1]\n");
    return 2;
  }
  if (Invalidation != "scan" && Invalidation != "index") {
    std::fprintf(stderr,
                 "cws-sim: --invalidation must be scan or index, got "
                 "'%s'\n",
                 Invalidation.c_str());
    return 2;
  }
  if (Reallocation != "repair" && Reallocation != "rebuild") {
    std::fprintf(stderr,
                 "cws-sim: --reallocation must be repair or rebuild, got "
                 "'%s'\n",
                 Reallocation.c_str());
    return 2;
  }
  if (Shards < 0) {
    std::fprintf(stderr, "cws-sim: --shards must be >= 0\n");
    return 2;
  }

  if (!TraceFile.empty()) {
    obs::Tracer::global().setCategoryFilter(TraceCategories);
    obs::Tracer::global().enable();
  }
  if (!JournalFile.empty())
    obs::Journal::global().enable();
  if (!ProfileFile.empty())
    obs::Profiler::global().enable();
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeriesConfig TsConfig;
    if (SampleEvery > 0)
      TsConfig.SampleEvery = SampleEvery;
    obs::TimeSeries::global().enable(TsConfig);
  }

  StrategyKind Kind = StrategyKind::S1;
  for (StrategyKind K : {StrategyKind::S1, StrategyKind::S2,
                         StrategyKind::S3, StrategyKind::MS1})
    if (StrategyName == strategyName(K))
      Kind = K;

  VoConfig Config;
  Config.JobCount = static_cast<size_t>(Jobs);
  Config.Workload.DeadlineSlack = Slack;
  Config.ExecuteWithDeviations = Exec != 0;
  Config.Strategy.BuildThreads = static_cast<size_t>(
      BuildThreads > 0 ? BuildThreads : 0);
  Config.Invalidation = Invalidation == "scan" ? InvalidationMode::Scan
                                               : InvalidationMode::Index;
  Config.Reallocation = Reallocation == "rebuild"
                            ? ReallocationMode::Rebuild
                            : ReallocationMode::Repair;
  Config.RepairOracle = RepairOracle;
  Config.Shards = static_cast<size_t>(Shards);
  // Sweep axes. Gaps scale by 1/factor so a scale of 2 means twice the
  // arrival rate / background pressure; max(1, ...) keeps gaps legal.
  auto ScaleGap = [](Tick Gap, double Scale) {
    auto Scaled = static_cast<Tick>(
        std::llround(static_cast<double>(Gap) / Scale));
    return Scaled < 1 ? Tick(1) : Scaled;
  };
  Config.InterarrivalLo = ScaleGap(Config.InterarrivalLo, ArrivalScale);
  Config.InterarrivalHi = ScaleGap(Config.InterarrivalHi, ArrivalScale);
  Config.Background.MeanGapFast =
      ScaleGap(Config.Background.MeanGapFast, BackgroundScale);
  Config.Background.MeanGapMedium =
      ScaleGap(Config.Background.MeanGapMedium, BackgroundScale);
  Config.Background.MeanGapSlow =
      ScaleGap(Config.Background.MeanGapSlow, BackgroundScale);
  if (FastShare >= 0) {
    Config.GridCfg.FastShare = FastShare;
    // Keep the band shares a partition: medium takes at most what fast
    // leaves, the remainder stays slow.
    Config.GridCfg.MediumShare =
        std::min(Config.GridCfg.MediumShare, 1.0 - FastShare);
  }

  // Stamp provenance into every enabled artifact before the run: the
  // hash covers the *effective* configuration (after sweep-axis
  // application), so replicas of one scenario agree and any divergent
  // knob disagrees loudly at pooling time.
  obs::RunProvenance Prov;
  Prov.Stamped = true;
  Prov.Seed = static_cast<uint64_t>(Seed);
  Prov.ConfigHash = obs::configHashOf(voConfigCanonical(Config, Kind));
  Prov.ScenarioId = Scenario;
  Prov.Shards = static_cast<int64_t>(resolveShardCount(Config.Shards));
  Prov.Cli = obs::cliStringOf(Argc, Argv);
  obs::Journal::global().setProvenance(Prov);
  obs::TimeSeries::global().setProvenance(Prov);
  obs::Profiler::global().setProvenance(Prov);

  VoRunResult Run =
      runVirtualOrganization(Config, Kind, static_cast<uint64_t>(Seed));

  // Publish the QoS aggregates before any snapshot is written, so one
  // --metrics file carries engine internals and results together. The
  // single flow also appears under its strategy label, matching the
  // flow ids journal events carry.
  VoAggregates A = summarizeVo(Run);
  publishVoAggregates(A);
  publishFlowAggregates(A, strategyName(Kind));

  // Stop sampling before any export; the counter tracks and occupancy
  // slices merge into the trace file next to the wall-clock spans.
  std::string TsExtra;
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeries::global().disable();
    TsExtra = obs::TimeSeries::global().chromeTraceEvents();
  }
  if (!ProfileFile.empty()) {
    obs::Profiler &P = obs::Profiler::global();
    P.disable();
    // The per-phase summary slices ride the same trace file as the
    // spans and the sim-time lane.
    std::string PhaseExtra = P.chromeTraceEvents();
    if (!PhaseExtra.empty())
      TsExtra += (TsExtra.empty() ? "" : ",") + PhaseExtra;
    if (!P.writeJson(ProfileFile)) {
      std::fprintf(stderr, "cws-sim: cannot write profile '%s'\n",
                   ProfileFile.c_str());
      return 2;
    }
    publishProfilerStats(P, obs::Registry::global());
    std::fprintf(stderr, "cws-sim: wrote %zu profiled phases to %s\n",
                 P.snapshot().size(), ProfileFile.c_str());
  }

  if (!TraceFile.empty()) {
    obs::Tracer &Tr = obs::Tracer::global();
    Tr.disable();
    if (!Tr.writeJson(TraceFile, TsExtra)) {
      std::fprintf(stderr, "cws-sim: cannot write trace '%s'\n",
                   TraceFile.c_str());
      return 2;
    }
    std::fprintf(stderr, "cws-sim: wrote %llu trace events to %s",
                 static_cast<unsigned long long>(Tr.recorded() -
                                                 Tr.dropped()),
                 TraceFile.c_str());
    if (Tr.dropped() > 0)
      std::fprintf(stderr, " (%llu older events dropped by the ring)",
                   static_cast<unsigned long long>(Tr.dropped()));
    if (Tr.filtered() > 0)
      std::fprintf(stderr, " (%llu events masked by --trace-categories)",
                   static_cast<unsigned long long>(Tr.filtered()));
    std::fprintf(stderr, "\n");
  }
  if (!JournalFile.empty()) {
    obs::Journal &Jn = obs::Journal::global();
    Jn.disable();
    if (!Jn.writeJsonl(JournalFile)) {
      std::fprintf(stderr, "cws-sim: cannot write journal '%s'\n",
                   JournalFile.c_str());
      return 2;
    }
    std::fprintf(stderr, "cws-sim: wrote %llu journal events to %s",
                 static_cast<unsigned long long>(Jn.recorded() -
                                                 Jn.dropped()),
                 JournalFile.c_str());
    if (Jn.dropped() > 0)
      std::fprintf(stderr, " (%llu older events dropped by the ring)",
                   static_cast<unsigned long long>(Jn.dropped()));
    std::fprintf(stderr, "\n");
  }
  if (!TimeSeriesFile.empty()) {
    obs::TimeSeries &Ts = obs::TimeSeries::global();
    if (!Ts.writeFile(TimeSeriesFile)) {
      std::fprintf(stderr, "cws-sim: cannot write time series '%s'\n",
                   TimeSeriesFile.c_str());
      return 2;
    }
    publishTimeSeriesStats(obs::Registry::global());
    std::fprintf(stderr, "cws-sim: wrote %llu telemetry frames to %s",
                 static_cast<unsigned long long>(Ts.recorded() -
                                                 Ts.dropped()),
                 TimeSeriesFile.c_str());
    if (Ts.dropped() > 0)
      std::fprintf(stderr, " (%llu older frames dropped by the ring)",
                   static_cast<unsigned long long>(Ts.dropped()));
    std::fprintf(stderr, "\n");
  }
  if (!MetricsFile.empty() && !writeMetricsSnapshot(MetricsFile)) {
    std::fprintf(stderr, "cws-sim: cannot write metrics '%s'\n",
                 MetricsFile.c_str());
    return 2;
  }

  if (RepairOracle) {
    const RepairOracleStats &O = Run.RepairOracle;
    std::fprintf(stderr,
                 "cws-sim: repair oracle: %llu checked, %llu feasible, "
                 "%llu affordable, %llu not worse than rebuild, "
                 "repair cost %.1f vs rebuild cost %.1f\n",
                 static_cast<unsigned long long>(O.Checked),
                 static_cast<unsigned long long>(O.Feasible),
                 static_cast<unsigned long long>(O.Affordable),
                 static_cast<unsigned long long>(O.NotWorse),
                 O.RepairCost, O.RebuildCost);
  }

  if (Csv) {
    std::cout << voStatsCsv(Run.Jobs);
    return 0;
  }

  std::cout << "strategy " << strategyName(Kind) << ", " << Jobs
            << " jobs, seed " << Seed << "\n\n";
  Table T({"metric", "value"});
  T.addRow({"admissible %", Table::num(A.AdmissiblePercent, 1)});
  T.addRow({"committed %", Table::num(A.CommittedPercent, 1)});
  T.addRow({"rejected %", Table::num(A.RejectedPercent, 1)});
  T.addRow({"switched %", Table::num(A.SwitchedPercent, 1)});
  T.addRow({"reallocated %", Table::num(A.ReallocatedPercent, 1)});
  T.addRow({"mean quota cost", Table::num(A.MeanCost, 1)});
  T.addRow({"mean CF", Table::num(A.MeanCf, 1)});
  T.addRow({"mean run ticks", Table::num(A.MeanRunTicks, 1)});
  T.addRow({"mean response ticks", Table::num(A.MeanResponseTicks, 1)});
  T.addRow({"mean strategy TTL", Table::num(A.MeanTtl, 1)});
  T.addRow({"mean start deviation", Table::num(A.MeanStartDeviation, 2)});
  T.addRow({"deviation / run ratio",
            Table::num(A.MeanStartDeviationRatio, 3)});
  if (Exec)
    T.addRow({"execution killed %",
              Table::num(A.ExecutionKilledPercent, 1)});
  T.addRow({"background jobs", std::to_string(Run.BackgroundJobs)});
  T.addRow({"horizon (ticks)", std::to_string(Run.Horizon)});
  for (PerfGroup G :
       {PerfGroup::Fast, PerfGroup::Medium, PerfGroup::Slow})
    T.addRow({std::string("job load, ") + perfGroupName(G) + " %",
              Table::num(Run.JobLoadPercent[static_cast<size_t>(G)], 1)});
  T.print(std::cout);
  return 0;
}
