//===-- tools/cws-bench.cpp - Structured benchmark runner -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-bench: run the registered benchmarks through the structured
/// harness, write one provenance-stamped `BENCH_<name>.json` per bench
/// and ratchet against a baseline directory. Usage:
///
///   cws-bench [--list] [--filter substr] [--reps N] [--warmup N]
///             [--out dir] [--against baseline-dir] [--compare-only 1]
///
/// Deterministic work counters gate the comparison (exit 1 on any
/// change); wall-time metrics are advisory only; runs whose provenance
/// identity (config hash, scenario, seeds, invalidation mode) differs
/// are refused with exit 2 — see bench/harness.h for the full
/// contract.
///
//===----------------------------------------------------------------------===//

#include "harness.h"

int main(int Argc, char **Argv) {
  return cws::bench::benchMain(Argc, Argv, "");
}
