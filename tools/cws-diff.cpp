//===-- tools/cws-diff.cpp - Semantic differential run analysis -----------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cws-diff: compare two run artifacts semantically instead of
/// byte-wise. Usage:
///
///   cws-diff [options] <A> <B>
///   cws-diff --against-baseline DIR --journal J [--timeseries TS]
///   cws-diff --digest <file>
///
/// The artifact kind is auto-detected (decision journal, telemetry
/// time series, or pooled sweep statistics) unless forced with
/// `--mode`. Journal comparisons align events per job, compare the
/// provenance header field by field under `--allow-meta`, and localize
/// the first diverging (job, event) with both runs' cause chains.
/// Series comparisons honor per-series tolerance classes (wall-time
/// series are excluded by default). Sweep comparisons add a
/// statistical compatibility test (CI overlap on means, relative
/// quantile shift) whose "compatible" verdict passes only under
/// `--statistical`.
///
/// `--against-baseline DIR` checks freshly produced artifacts against
/// the committed golden baselines in DIR (see examples/baseline/): a
/// digest fast path first, then the semantic diff. Regenerate
/// baselines with tools/update-baselines.sh after intentional
/// behavior changes.
///
/// Exit codes: 0 identical (or statistically compatible with
/// `--statistical`), 1 divergence, 2 usage / I/O / parse error.
///
//===----------------------------------------------------------------------===//

#include "obs/Diff.h"
#include "obs/Journal.h"
#include "obs/Provenance.h"
#include "obs/Report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace cws;

static void printUsage() {
  std::fprintf(
      stderr,
      "usage: cws-diff [options] <A> <B>\n"
      "       cws-diff --against-baseline DIR --journal J [--timeseries T]\n"
      "       cws-diff --digest <file>\n"
      "\n"
      "  --mode M              auto|journal|series|sweep (default auto)\n"
      "  --report FILE         write the Markdown diff report to FILE\n"
      "  --allow-meta LIST     provenance fields allowed to differ, comma\n"
      "                        list of seed,config_hash,scenario,shards,cli\n"
      "                        (default: shards,cli)\n"
      "  --ignore-meta         skip provenance comparison entirely\n"
      "  --statistical         accept a statistically compatible sweep\n"
      "                        verdict (CI overlap, quantile shift) as pass\n"
      "  --outcomes            journal mode: compare per-job commit/reject\n"
      "                        verdicts only (the cross-reallocation-mode\n"
      "                        equivalence gate; placements may differ)\n"
      "  --allow-repair-saves  with --outcomes: accept the divergence a\n"
      "                        staged repair is meant to cause — jobs A\n"
      "                        committed with a repair on record where B\n"
      "                        rejected, and verdicts decided after the\n"
      "                        first repair diverged the grids (A = repair\n"
      "                        run, B = rebuild oracle; A must never\n"
      "                        commit fewer jobs than B in total)\n"
      "  --quantile-tol X      relative p50/p90/p99 shift tolerance\n"
      "                        (default 0.10)\n"
      "  --exclude-series L    comma list of extra series globs to skip\n"
      "  --max-findings N      findings to print per comparison "
      "(default 20)\n"
      "  --against-baseline D  compare --journal/--timeseries artifacts\n"
      "                        against the golden baselines in D\n"
      "  --digest FILE         print the fnv1a64 content digest of FILE\n"
      "\n"
      "exit codes: 0 identical/compatible, 1 divergence, 2 usage or I/O\n");
}

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

namespace {
enum class Mode { Auto, Journal, Series, Sweep };
} // namespace

/// Sniffs the artifact kind from its leading lines.
static Mode detectMode(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (Line.find("\"journal.meta\"") != std::string::npos)
      return Mode::Journal;
    if (Line.rfind("# cws-sweep statistics", 0) == 0)
      return Mode::Sweep;
    if (Line.rfind("# provenance", 0) == 0)
      continue; // Shared CSV comment; the header decides.
    if (Line.rfind("seq,tick,reason,series", 0) == 0)
      return Mode::Series;
    if (Line.rfind("scenario,axes,indicator", 0) == 0)
      return Mode::Sweep;
    break;
  }
  return Mode::Auto;
}

static bool parseMetaList(const std::string &List, obs::MetaPolicy &Policy) {
  Policy.AllowSeed = Policy.AllowConfigHash = Policy.AllowScenario =
      Policy.AllowShards = Policy.AllowCli = false;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string Field = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? List.size() + 1 : Comma + 1;
    if (Field.empty())
      continue;
    if (Field == "seed")
      Policy.AllowSeed = true;
    else if (Field == "config_hash")
      Policy.AllowConfigHash = true;
    else if (Field == "scenario")
      Policy.AllowScenario = true;
    else if (Field == "shards")
      Policy.AllowShards = true;
    else if (Field == "cli")
      Policy.AllowCli = true;
    else {
      std::fprintf(stderr, "cws-diff: unknown meta field '%s'\n",
                   Field.c_str());
      return false;
    }
  }
  return true;
}

static void splitCommas(const std::string &List,
                        std::vector<std::string> &Out) {
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string Item = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? List.size() + 1 : Comma + 1;
    if (!Item.empty())
      Out.push_back(Item);
  }
}

/// Runs one A-vs-B comparison. Returns 0/1/2 per the tool contract and
/// appends the Markdown report section for `--report`.
static int diffOnce(const std::string &PathA, const std::string &PathB,
                    Mode M, const obs::DiffOptions &Opts, bool Statistical,
                    bool Outcomes, std::string &ReportOut) {
  std::string TextA, TextB;
  if (!readFile(PathA, TextA)) {
    std::fprintf(stderr, "cws-diff: cannot open '%s'\n", PathA.c_str());
    return 2;
  }
  if (!readFile(PathB, TextB)) {
    std::fprintf(stderr, "cws-diff: cannot open '%s'\n", PathB.c_str());
    return 2;
  }
  if (M == Mode::Auto) {
    M = detectMode(TextA);
    Mode MB = detectMode(TextB);
    if (M == Mode::Auto || MB == Mode::Auto) {
      std::fprintf(stderr,
                   "cws-diff: cannot detect artifact kind of '%s'; use "
                   "--mode\n",
                   (M == Mode::Auto ? PathA : PathB).c_str());
      return 2;
    }
    if (M != MB) {
      std::fprintf(stderr,
                   "cws-diff: '%s' and '%s' are different artifact kinds\n",
                   PathA.c_str(), PathB.c_str());
      return 2;
    }
  }
  if (Outcomes && M != Mode::Journal) {
    std::fprintf(stderr, "cws-diff: --outcomes applies to journals only\n");
    return 2;
  }

  std::string Error;
  obs::DiffResult R;
  switch (M) {
  case Mode::Journal: {
    obs::ParsedJournal A, B;
    if (!obs::parseJournalJsonl(TextA, A, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathA.c_str(),
                   Error.c_str());
      return 2;
    }
    if (!obs::parseJournalJsonl(TextB, B, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathB.c_str(),
                   Error.c_str());
      return 2;
    }
    R = Outcomes ? obs::diffJournalOutcomes(A, B, Opts)
                 : obs::diffJournals(A, B, Opts);
    break;
  }
  case Mode::Series: {
    obs::ParsedTimeSeries A, B;
    if (!obs::parseTimeSeriesCsv(TextA, A, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathA.c_str(),
                   Error.c_str());
      return 2;
    }
    if (!obs::parseTimeSeriesCsv(TextB, B, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathB.c_str(),
                   Error.c_str());
      return 2;
    }
    R = obs::diffTimeSeries(A, B, Opts);
    break;
  }
  case Mode::Sweep: {
    obs::SweepStore A, B;
    if (!obs::parseSweepCsv(TextA, A, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathA.c_str(),
                   Error.c_str());
      return 2;
    }
    if (!obs::parseSweepCsv(TextB, B, Error)) {
      std::fprintf(stderr, "cws-diff: %s: %s\n", PathB.c_str(),
                   Error.c_str());
      return 2;
    }
    R = obs::diffSweeps(A, B, Opts);
    break;
  }
  case Mode::Auto:
    return 2; // Unreachable; detectMode ran above.
  }

  std::cout << obs::renderDiffText(R, PathA, PathB);
  ReportOut += obs::renderDiffReport(R, PathA, PathB);
  if (R.identical())
    return 0;
  if (R.Verdict == obs::DiffVerdict::Compatible && Statistical)
    return 0;
  return 1;
}

/// `--digest`: canonical content digest used by baseline MANIFEST
/// files — fnv1a64 over the raw bytes, rendered like the config hash.
static int printDigest(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "cws-diff: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::printf("0x%016llx  %s\n",
              static_cast<unsigned long long>(obs::fnv1a64(Text)),
              Path.c_str());
  return 0;
}

namespace {
struct BaselineEntry {
  std::string Digest;
  std::string File;
};
} // namespace

static bool parseManifest(const std::string &Text,
                          std::vector<BaselineEntry> &Out,
                          std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  size_t N = 0;
  while (std::getline(In, Line)) {
    ++N;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    BaselineEntry E;
    if (!(Fields >> E.Digest >> E.File)) {
      Error = "line " + std::to_string(N) + ": expected '<digest>  <file>'";
      return false;
    }
    Out.push_back(E);
  }
  if (Out.empty()) {
    Error = "no baseline entries";
    return false;
  }
  return true;
}

/// `--against-baseline`: every MANIFEST entry must (a) still match its
/// committed digest (guards stale regeneration) and (b) semantically
/// match the corresponding fresh artifact. Matching fresh digests
/// short-circuit the parse.
static int diffAgainstBaseline(const std::string &Dir,
                               const std::string &JournalFile,
                               const std::string &TimeSeriesFile,
                               const obs::DiffOptions &Opts,
                               std::string &ReportOut) {
  std::string Text, Error;
  std::string ManifestPath = Dir + "/MANIFEST";
  if (!readFile(ManifestPath, Text)) {
    std::fprintf(stderr, "cws-diff: cannot open '%s'\n",
                 ManifestPath.c_str());
    return 2;
  }
  std::vector<BaselineEntry> Entries;
  if (!parseManifest(Text, Entries, Error)) {
    std::fprintf(stderr, "cws-diff: %s: %s\n", ManifestPath.c_str(),
                 Error.c_str());
    return 2;
  }

  int Worst = 0;
  bool Compared = false;
  for (const BaselineEntry &E : Entries) {
    std::string Fresh;
    if (E.File.size() > 14 &&
        E.File.rfind(".journal.jsonl") == E.File.size() - 14)
      Fresh = JournalFile;
    else if (E.File.size() > 7 && E.File.rfind(".ts.csv") == E.File.size() - 7)
      Fresh = TimeSeriesFile;
    if (Fresh.empty())
      continue; // No fresh artifact of this kind supplied.
    Compared = true;

    std::string Golden = Dir + "/" + E.File;
    std::string GoldenText, FreshText;
    if (!readFile(Golden, GoldenText)) {
      std::fprintf(stderr, "cws-diff: cannot open baseline '%s'\n",
                   Golden.c_str());
      return 2;
    }
    char Digest[32];
    std::snprintf(Digest, sizeof(Digest), "0x%016llx",
                  static_cast<unsigned long long>(obs::fnv1a64(GoldenText)));
    if (E.Digest != Digest) {
      std::fprintf(stderr,
                   "cws-diff: baseline '%s' does not match its MANIFEST "
                   "digest (%s vs %s) — rerun tools/update-baselines.sh\n",
                   Golden.c_str(), Digest, E.Digest.c_str());
      return 2;
    }
    if (readFile(Fresh, FreshText) && FreshText == GoldenText) {
      std::printf("cws-diff: %s: byte-identical to baseline\n",
                  Fresh.c_str());
      continue;
    }
    int Rc = diffOnce(Golden, Fresh, Mode::Auto, Opts,
                      /*Statistical=*/false, /*Outcomes=*/false, ReportOut);
    if (Rc == 2)
      return 2;
    Worst = std::max(Worst, Rc);
  }
  if (!Compared) {
    std::fprintf(stderr,
                 "cws-diff: --against-baseline needs --journal and/or "
                 "--timeseries\n");
    return 2;
  }
  return Worst;
}

int main(int Argc, char **Argv) {
  // Positional file operands rule out support/Flags.h (key=value only),
  // matching cws-explain's hand-rolled parsing.
  std::vector<std::string> Paths;
  Mode M = Mode::Auto;
  std::string ReportFile, BaselineDir, JournalFile, TimeSeriesFile;
  std::string DigestFile;
  bool Statistical = false;
  bool Outcomes = false;
  obs::DiffOptions Opts;

  auto NeedValue = [&](int &I, const char *Flag) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "cws-diff: %s needs a value\n", Flag);
      std::exit(2);
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--mode") {
      std::string V = NeedValue(I, "--mode");
      if (V == "auto")
        M = Mode::Auto;
      else if (V == "journal")
        M = Mode::Journal;
      else if (V == "series")
        M = Mode::Series;
      else if (V == "sweep")
        M = Mode::Sweep;
      else {
        std::fprintf(stderr, "cws-diff: bad mode '%s'\n", V.c_str());
        return 2;
      }
    } else if (Arg == "--report") {
      ReportFile = NeedValue(I, "--report");
    } else if (Arg == "--allow-meta") {
      if (!parseMetaList(NeedValue(I, "--allow-meta"), Opts.Meta))
        return 2;
    } else if (Arg == "--ignore-meta") {
      Opts.Meta.Off = true;
    } else if (Arg == "--statistical") {
      Statistical = true;
    } else if (Arg == "--outcomes") {
      Outcomes = true;
    } else if (Arg == "--allow-repair-saves") {
      Opts.AllowRepairSaves = true;
    } else if (Arg == "--quantile-tol") {
      char *End = nullptr;
      const char *V = NeedValue(I, "--quantile-tol");
      Opts.QuantileShiftTol = std::strtod(V, &End);
      if (!End || *End != '\0' || Opts.QuantileShiftTol < 0) {
        std::fprintf(stderr, "cws-diff: bad tolerance '%s'\n", V);
        return 2;
      }
    } else if (Arg == "--exclude-series") {
      std::vector<std::string> Globs;
      splitCommas(NeedValue(I, "--exclude-series"), Globs);
      for (const std::string &G : Globs)
        Opts.Series.push_back({G, obs::SeriesClass::Excluded, 0.0});
    } else if (Arg == "--max-findings") {
      char *End = nullptr;
      const char *V = NeedValue(I, "--max-findings");
      long N = std::strtol(V, &End, 10);
      if (!End || *End != '\0' || N < 1) {
        std::fprintf(stderr, "cws-diff: bad finding count '%s'\n", V);
        return 2;
      }
      Opts.MaxFindings = static_cast<size_t>(N);
    } else if (Arg == "--against-baseline") {
      BaselineDir = NeedValue(I, "--against-baseline");
    } else if (Arg == "--journal") {
      JournalFile = NeedValue(I, "--journal");
    } else if (Arg == "--timeseries") {
      TimeSeriesFile = NeedValue(I, "--timeseries");
    } else if (Arg == "--digest") {
      DigestFile = NeedValue(I, "--digest");
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "cws-diff: unknown flag '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }

  if (Opts.AllowRepairSaves && !Outcomes) {
    std::fprintf(stderr,
                 "cws-diff: --allow-repair-saves requires --outcomes\n");
    return 2;
  }

  if (!DigestFile.empty()) {
    if (!Paths.empty() || !BaselineDir.empty()) {
      std::fprintf(stderr, "cws-diff: --digest takes no other operands\n");
      return 2;
    }
    return printDigest(DigestFile);
  }

  std::string Report;
  int Rc;
  if (!BaselineDir.empty()) {
    if (!Paths.empty()) {
      std::fprintf(stderr,
                   "cws-diff: --against-baseline excludes positional "
                   "operands\n");
      return 2;
    }
    Rc = diffAgainstBaseline(BaselineDir, JournalFile, TimeSeriesFile, Opts,
                             Report);
  } else {
    if (Paths.size() != 2) {
      printUsage();
      return 2;
    }
    Rc = diffOnce(Paths[0], Paths[1], M, Opts, Statistical, Outcomes,
                  Report);
  }

  if (!ReportFile.empty() && Rc != 2) {
    std::ofstream Out(ReportFile);
    if (!Out || !(Out << Report)) {
      std::fprintf(stderr, "cws-diff: cannot write '%s'\n",
                   ReportFile.c_str());
      return 2;
    }
  }
  return Rc;
}
