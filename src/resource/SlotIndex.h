//===-- resource/SlotIndex.h - Reserved-slot interval index -----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event-driven invalidation support: an interval index over the
/// reserved slots of open scheduling strategies, plus the change log of
/// intervals added to the shared environment. Together they turn the
/// job-flow level's "re-validate everything on every environment
/// change" scan into "re-validate only the variants whose planned slots
/// the change actually touched" (the backfilling literature's
/// reservation table, keyed by time interval instead of queue
/// position).
///
/// `SlotIndex` is a bucketed tick map: each node maps fixed-width tick
/// buckets to the slots overlapping them, keyed `(node, [begin, end))
/// -> (job, variant)`, so an intersection query for one added
/// reservation touches O(duration / bucket) buckets instead of every
/// open strategy. The layer speaks raw ids and intervals only — the
/// flow layer above decides what a "job" or "variant" is.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_SLOTINDEX_H
#define CWS_RESOURCE_SLOTINDEX_H

#include "resource/Timeline.h"
#include "sim/Time.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace cws {

class Grid;

/// One reservation a scheduling strategy plans to hold — the raw
/// (node, interval) shape the resource layer speaks; the flow layer
/// maps its placements down to these.
struct PlannedSlot {
  unsigned NodeId = 0;
  Tick Begin = 0, End = 0;
};

/// One planned slot the current environment no longer honours: the
/// index into the queried slot sequence plus the first foreign busy
/// interval overlapping it (diagnostic payload for journals and the
/// staged reallocation repair).
struct BrokenSlot {
  size_t SlotIdx = 0;
  Tick BusyStart = 0, BusyEnd = 0;
};

/// Scans \p Slots against \p G and returns the ones that are no longer
/// free, in slot order, each annotated with the first overlapping
/// interval (in timeline order) not owned by \p Ignore. An empty result
/// means every planned slot still fits.
std::vector<BrokenSlot> collectBrokenSlots(const Grid &G,
                                           const std::vector<PlannedSlot> &Slots,
                                           OwnerId Ignore);

/// One interval added to a node's timeline of the shared environment.
struct ReservedRange {
  unsigned NodeId = 0;
  Tick Begin = 0;
  Tick End = 0;
};

/// Append-only log of every reservation added to the shared grid
/// (background placements and committed supporting schedules). Each
/// consumer keeps its own cursor into the log and drains the suffix at
/// every environment change, so changes that land *between* two
/// environment changes (commits by other flows) are still seen by the
/// next intersection pass. Releases are never logged: removing busy
/// intervals can only un-break a strategy, never invalidate one.
class EnvChangeLog {
public:
  void noteAdded(unsigned NodeId, Tick Begin, Tick End) {
    Added.push_back({NodeId, Begin, End});
  }

  size_t size() const { return Added.size(); }
  const ReservedRange &at(size_t I) const { return Added[I]; }

private:
  std::vector<ReservedRange> Added;
};

/// One consumer's position in an EnvChangeLog. Sharded runs give every
/// (flow, shard) job manager its own cursor, so each shard drains the
/// shared log independently — concurrent drains are safe because the
/// log is append-only, drains only read the suffix written before the
/// tick barrier, and each cursor is owned by exactly one shard.
class EnvLogCursor {
public:
  /// Invokes \p Fn on every range appended since the last drain and
  /// advances past them. Returns the number of ranges drained.
  template <typename FnT> size_t drain(const EnvChangeLog &Log, FnT &&Fn) {
    size_t Seen = 0;
    for (size_t End = Log.size(); Next < End; ++Next, ++Seen)
      Fn(Log.at(Next));
    return Seen;
  }

  /// Ranges consumed so far.
  size_t position() const { return Next; }

private:
  size_t Next = 0;
};

/// What an intersection query reports: one (job, variant) whose slot a
/// changed range overlaps.
struct SlotRef {
  unsigned JobId = 0;
  unsigned Variant = 0;
};

/// Bucketed per-node interval index over the reserved slots of open
/// strategies: `(node, [begin, end)) -> (job, variant)`. A slot
/// spanning several buckets is listed in each, so `collect` may report
/// one (job, variant) multiple times — callers dedupe (the query
/// result is order-insensitive; sort before use for determinism).
class SlotIndex {
public:
  /// \p BucketTicks trades memory for query width: background jobs and
  /// task reservations run tens of ticks, so the default keeps a
  /// typical query inside one or two buckets.
  explicit SlotIndex(Tick BucketTicks = 64);

  /// Indexes the slot [Begin, End) of \p JobId's variant \p Variant on
  /// \p NodeId. Empty intervals are ignored.
  void add(unsigned JobId, unsigned Variant, unsigned NodeId, Tick Begin,
           Tick End);

  /// Drops every slot of \p JobId; returns how many were removed.
  size_t remove(unsigned JobId);

  /// Drops the slots of one variant of \p JobId (a variant confirmed
  /// broken never needs another look); returns how many were removed.
  size_t removeVariant(unsigned JobId, unsigned Variant);

  /// True while \p JobId has at least one indexed slot.
  bool tracks(unsigned JobId) const;

  /// Appends the (job, variant) pairs whose slots intersect
  /// [Begin, End) on \p NodeId to \p Out (with possible duplicates,
  /// see above). Returns the number of intersecting slot entries.
  size_t collect(unsigned NodeId, Tick Begin, Tick End,
                 std::vector<SlotRef> &Out) const;

  /// Distinct slots currently indexed.
  size_t slotCount() const { return Slots; }

  /// Jobs currently indexed.
  size_t jobCount() const { return Jobs.size(); }

  Tick bucketTicks() const { return Bucket; }

private:
  struct Slot {
    unsigned JobId;
    unsigned Variant;
    Tick Begin, End;
  };

  /// Key of one (node, bucket) cell.
  static uint64_t cellKey(unsigned NodeId, Tick BucketIdx) {
    return (static_cast<uint64_t>(NodeId) << 40) ^
           static_cast<uint64_t>(BucketIdx);
  }

  struct VariantRef {
    /// Cells the variant's slots occupy (one entry per (slot, bucket)
    /// pair; removal walks these instead of sweeping the whole map).
    std::vector<uint64_t> Cells;
    /// Distinct slots of the variant (Cells may repeat a cell).
    size_t Slots = 0;
  };
  struct JobRef {
    std::unordered_map<unsigned, VariantRef> Variants;
  };

  /// Erases \p Ref's slots of (\p JobId, \p Variant) from the cell
  /// map; returns the distinct slots dropped.
  size_t eraseVariant(unsigned JobId, unsigned Variant,
                      const VariantRef &Ref);

  Tick Bucket;
  /// (node, bucket) -> slots overlapping that bucket.
  std::unordered_map<uint64_t, std::vector<Slot>> Cells;
  std::unordered_map<unsigned, JobRef> Jobs;
  size_t Slots = 0;
};

} // namespace cws

#endif // CWS_RESOURCE_SLOTINDEX_H
