//===-- resource/SlotIndex.cpp - Reserved-slot interval index -------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/SlotIndex.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

std::vector<BrokenSlot>
cws::collectBrokenSlots(const Grid &G, const std::vector<PlannedSlot> &Slots,
                        OwnerId Ignore) {
  std::vector<BrokenSlot> Broken;
  for (size_t I = 0; I < Slots.size(); ++I) {
    const PlannedSlot &S = Slots[I];
    for (const Interval &Busy : G.node(S.NodeId).timeline().intervals()) {
      if (Busy.Owner == Ignore)
        continue;
      if (Busy.Begin < S.End && S.Begin < Busy.End) {
        Broken.push_back({I, Busy.Begin, Busy.End});
        break;
      }
    }
  }
  return Broken;
}

SlotIndex::SlotIndex(Tick BucketTicks) : Bucket(BucketTicks) {
  CWS_CHECK(BucketTicks >= 1, "bucket width must be positive");
}

void SlotIndex::add(unsigned JobId, unsigned Variant, unsigned NodeId,
                    Tick Begin, Tick End) {
  if (Begin >= End)
    return;
  VariantRef &Ref = Jobs[JobId].Variants[Variant];
  for (Tick B = Begin / Bucket; B <= (End - 1) / Bucket; ++B) {
    uint64_t Key = cellKey(NodeId, B);
    Cells[Key].push_back({JobId, Variant, Begin, End});
    Ref.Cells.push_back(Key);
  }
  ++Ref.Slots;
  ++Slots;
}

size_t SlotIndex::eraseVariant(unsigned JobId, unsigned Variant,
                               const VariantRef &Ref) {
  for (uint64_t Key : Ref.Cells) {
    auto Cell = Cells.find(Key);
    if (Cell == Cells.end())
      continue; // An earlier ref of the same variant emptied it.
    std::vector<Slot> &S = Cell->second;
    S.erase(std::remove_if(S.begin(), S.end(),
                           [JobId, Variant](const Slot &E) {
                             return E.JobId == JobId &&
                                    E.Variant == Variant;
                           }),
            S.end());
    if (S.empty())
      Cells.erase(Cell);
  }
  CWS_CHECK(Slots >= Ref.Slots, "slot accounting underflow");
  Slots -= Ref.Slots;
  return Ref.Slots;
}

size_t SlotIndex::remove(unsigned JobId) {
  auto It = Jobs.find(JobId);
  if (It == Jobs.end())
    return 0;
  size_t Removed = 0;
  for (const auto &[Variant, Ref] : It->second.Variants)
    Removed += eraseVariant(JobId, Variant, Ref);
  Jobs.erase(It);
  return Removed;
}

size_t SlotIndex::removeVariant(unsigned JobId, unsigned Variant) {
  auto It = Jobs.find(JobId);
  if (It == Jobs.end())
    return 0;
  auto VIt = It->second.Variants.find(Variant);
  if (VIt == It->second.Variants.end())
    return 0;
  size_t Removed = eraseVariant(JobId, Variant, VIt->second);
  It->second.Variants.erase(VIt);
  if (It->second.Variants.empty())
    Jobs.erase(It);
  return Removed;
}

bool SlotIndex::tracks(unsigned JobId) const {
  return Jobs.find(JobId) != Jobs.end();
}

size_t SlotIndex::collect(unsigned NodeId, Tick Begin, Tick End,
                          std::vector<SlotRef> &Out) const {
  if (Begin >= End)
    return 0;
  size_t Hits = 0;
  for (Tick B = Begin / Bucket; B <= (End - 1) / Bucket; ++B) {
    auto Cell = Cells.find(cellKey(NodeId, B));
    if (Cell == Cells.end())
      continue;
    for (const Slot &S : Cell->second) {
      if (S.Begin >= End || Begin >= S.End)
        continue;
      // A slot listed in several queried buckets matches in each;
      // credit only the first bucket both the slot and the query cover
      // so every intersecting slot is reported exactly once.
      if (std::max(S.Begin, Begin) / Bucket != B)
        continue;
      Out.push_back({S.JobId, S.Variant});
      ++Hits;
    }
  }
  return Hits;
}
