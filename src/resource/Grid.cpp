//===-- resource/Grid.cpp - The distributed environment -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace cws;

static double priceFor(double RelPerf, const GridConfig &Config) {
  return Config.PriceBase * std::pow(RelPerf, Config.PriceExponent);
}

unsigned Grid::addNode(double RelPerf, const GridConfig &Config) {
  return addNodePriced(RelPerf, priceFor(RelPerf, Config));
}

unsigned Grid::addNodePriced(double RelPerf, double PricePerTick) {
  auto Id = static_cast<unsigned>(Nodes.size());
  Nodes.emplace_back(Id, RelPerf, PricePerTick);
  return Id;
}

Grid Grid::makeRandom(const GridConfig &Config, Prng &Rng) {
  CWS_CHECK(Config.MinNodes >= 1 && Config.MinNodes <= Config.MaxNodes,
            "invalid node count range");
  Grid G;
  auto Count = static_cast<unsigned>(
      Rng.uniformInt(Config.MinNodes, Config.MaxNodes));
  auto FastCount = static_cast<unsigned>(
      std::round(Config.FastShare * static_cast<double>(Count)));
  auto MediumCount = static_cast<unsigned>(
      std::round(Config.MediumShare * static_cast<double>(Count)));
  FastCount = std::max(1u, FastCount);
  MediumCount = std::max(1u, std::min(MediumCount, Count - FastCount));
  for (unsigned I = 0; I < Count; ++I) {
    double Perf;
    if (I < FastCount)
      Perf = Rng.uniformReal(Config.FastLo, Config.FastHi);
    else if (I < FastCount + MediumCount)
      Perf = Rng.uniformReal(Config.MediumLo, Config.MediumHi);
    else
      Perf = Config.SlowPerf;
    G.addNode(Perf, Config);
  }
  return G;
}

Grid Grid::makeFig2() {
  Grid G;
  GridConfig Config;
  // Ids 0..3 correspond to the paper's node types 1..4.
  G.addNode(1.0, Config);
  G.addNode(1.0 / 2.0, Config);
  G.addNode(1.0 / 3.0, Config);
  G.addNode(1.0 / 4.0, Config);
  return G;
}

ProcessorNode &Grid::node(unsigned Id) {
  CWS_CHECK(Id < Nodes.size(), "node id out of range");
  return Nodes[Id];
}

const ProcessorNode &Grid::node(unsigned Id) const {
  CWS_CHECK(Id < Nodes.size(), "node id out of range");
  return Nodes[Id];
}

std::vector<unsigned> Grid::idsInGroup(PerfGroup Group) const {
  std::vector<unsigned> Ids;
  for (const auto &N : Nodes)
    if (N.group() == Group)
      Ids.push_back(N.id());
  std::sort(Ids.begin(), Ids.end(), [this](unsigned A, unsigned B) {
    if (Nodes[A].relPerf() != Nodes[B].relPerf())
      return Nodes[A].relPerf() > Nodes[B].relPerf();
    return A < B;
  });
  return Ids;
}

std::vector<unsigned> Grid::idsByPerf() const {
  std::vector<unsigned> Ids(Nodes.size());
  for (unsigned I = 0; I < Nodes.size(); ++I)
    Ids[I] = I;
  std::sort(Ids.begin(), Ids.end(), [this](unsigned A, unsigned B) {
    if (Nodes[A].relPerf() != Nodes[B].relPerf())
      return Nodes[A].relPerf() > Nodes[B].relPerf();
    return A < B;
  });
  return Ids;
}

double Grid::groupUtilization(PerfGroup Group, Tick From, Tick To) const {
  double Sum = 0.0;
  size_t Count = 0;
  for (const auto &N : Nodes) {
    if (N.group() != Group)
      continue;
    Sum += N.timeline().utilization(From, To);
    ++Count;
  }
  return Count ? Sum / static_cast<double>(Count) : 0.0;
}

void Grid::forEachInterval(
    const std::function<void(unsigned, const Interval &)> &Fn) const {
  for (unsigned Id = 0; Id < Nodes.size(); ++Id)
    for (const Interval &I : Nodes[Id].timeline().intervals())
      Fn(Id, I);
}

void Grid::releaseOwner(OwnerId Owner) {
  for (auto &N : Nodes)
    N.timeline().releaseOwner(Owner);
}

void Grid::clearTimelines() {
  for (auto &N : Nodes)
    N.timeline().clear();
}
