//===-- resource/Timeline.cpp - Node reservation calendar -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Timeline.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

size_t Timeline::lowerBound(Tick T) const {
  auto It = std::partition_point(Busy.begin(), Busy.end(),
                                 [T](const Interval &I) { return I.End <= T; });
  return static_cast<size_t>(It - Busy.begin());
}

bool Timeline::isFree(Tick B, Tick E) const {
  if (B >= E)
    return true;
  size_t Idx = lowerBound(B);
  return Idx == Busy.size() || Busy[Idx].Begin >= E;
}

bool Timeline::isFreeFor(Tick B, Tick E, OwnerId Except) const {
  if (B >= E)
    return true;
  for (size_t Idx = lowerBound(B); Idx < Busy.size(); ++Idx) {
    if (Busy[Idx].Begin >= E)
      break;
    if (Busy[Idx].Owner != Except)
      return false;
  }
  return true;
}

const Interval *Timeline::firstOverlap(Tick B, Tick E) const {
  if (B >= E)
    return nullptr;
  size_t Idx = lowerBound(B);
  if (Idx == Busy.size() || Busy[Idx].Begin >= E)
    return nullptr;
  return &Busy[Idx];
}

bool Timeline::reserve(Tick B, Tick E, OwnerId Owner) {
  CWS_CHECK(B < E, "reservation must be a non-empty interval");
  CWS_CHECK(Owner != 0, "owner id 0 is reserved");
  size_t Idx = lowerBound(B);
  if (Idx != Busy.size() && Busy[Idx].Begin < E)
    return false;
  Busy.insert(Busy.begin() + static_cast<ptrdiff_t>(Idx), {B, E, Owner});
  return true;
}

Tick Timeline::earliestFit(Tick NotBefore, Tick Dur) const {
  CWS_CHECK(Dur > 0, "earliestFit needs a positive duration");
  Tick Candidate = NotBefore;
  for (size_t Idx = lowerBound(NotBefore); Idx < Busy.size(); ++Idx) {
    if (Busy[Idx].Begin >= Candidate + Dur)
      return Candidate;
    Candidate = std::max(Candidate, Busy[Idx].End);
  }
  return Candidate;
}

size_t Timeline::releaseOwner(OwnerId Owner) {
  size_t Before = Busy.size();
  Busy.erase(std::remove_if(
                 Busy.begin(), Busy.end(),
                 [Owner](const Interval &I) { return I.Owner == Owner; }),
             Busy.end());
  return Before - Busy.size();
}

bool Timeline::release(Tick B, Tick E, OwnerId Owner) {
  for (size_t Idx = lowerBound(B); Idx < Busy.size(); ++Idx) {
    if (Busy[Idx].Begin >= E)
      break;
    if (Busy[Idx].Begin == B && Busy[Idx].End == E &&
        Busy[Idx].Owner == Owner) {
      Busy.erase(Busy.begin() + static_cast<ptrdiff_t>(Idx));
      return true;
    }
  }
  return false;
}

Tick Timeline::busyTicks(Tick From, Tick To) const {
  Tick Sum = 0;
  for (size_t Idx = lowerBound(From); Idx < Busy.size(); ++Idx) {
    if (Busy[Idx].Begin >= To)
      break;
    Sum += std::min(To, Busy[Idx].End) - std::max(From, Busy[Idx].Begin);
  }
  return Sum;
}

Tick Timeline::busyTicksOf(Tick From, Tick To, OwnerId MinOwner,
                           OwnerId MaxOwner) const {
  Tick Sum = 0;
  for (size_t Idx = lowerBound(From); Idx < Busy.size(); ++Idx) {
    if (Busy[Idx].Begin >= To)
      break;
    if (Busy[Idx].Owner < MinOwner || Busy[Idx].Owner > MaxOwner)
      continue;
    Sum += std::min(To, Busy[Idx].End) - std::max(From, Busy[Idx].Begin);
  }
  return Sum;
}

double Timeline::utilization(Tick From, Tick To) const {
  if (From >= To)
    return 0.0;
  return static_cast<double>(busyTicks(From, To)) /
         static_cast<double>(To - From);
}
