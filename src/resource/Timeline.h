//===-- resource/Timeline.h - Node reservation calendar ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-node reservation calendar. A task placement in a distribution is a
/// wall-time interval `[Start, End)` reserved in the local batch system
/// (the paper's advance reservations [20]); the timeline stores the
/// non-overlapping busy intervals of one processor node and answers
/// earliest-fit queries for the DP allocator and the backfilling policies.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_TIMELINE_H
#define CWS_RESOURCE_TIMELINE_H

#include "sim/Time.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cws {

/// Identifies who holds a reservation (a task, a batch job, background
/// load...). 0 is reserved for "nobody".
using OwnerId = uint64_t;

/// A half-open busy interval [Begin, End) on one node.
struct Interval {
  Tick Begin;
  Tick End;
  OwnerId Owner;
};

/// Sorted, non-overlapping set of busy intervals with reservation
/// operations.
class Timeline {
public:
  /// True when [B, E) overlaps no busy interval. Empty ranges are free.
  bool isFree(Tick B, Tick E) const;

  /// Like isFree, but intervals owned by \p Except do not count as busy
  /// (used to re-validate a schedule against everyone else's load).
  bool isFreeFor(Tick B, Tick E, OwnerId Except) const;

  /// Reserves [B, E) for \p Owner; fails (returns false) on any overlap.
  bool reserve(Tick B, Tick E, OwnerId Owner);

  /// Earliest T >= NotBefore such that [T, T + Dur) is free.
  Tick earliestFit(Tick NotBefore, Tick Dur) const;

  /// Removes every interval owned by \p Owner; returns how many.
  size_t releaseOwner(OwnerId Owner);

  /// Removes the exact interval [B, E) of \p Owner; returns false when
  /// no such reservation exists.
  bool release(Tick B, Tick E, OwnerId Owner);

  /// First busy interval overlapping [B, E), or nullptr.
  const Interval *firstOverlap(Tick B, Tick E) const;

  /// Busy ticks within [From, To).
  Tick busyTicks(Tick From, Tick To) const;

  /// Busy ticks within [From, To) counting only intervals whose owner
  /// lies in [MinOwner, MaxOwner] — splits utilization by owner class
  /// (background load vs jobs) for the telemetry sampler.
  Tick busyTicksOf(Tick From, Tick To, OwnerId MinOwner,
                   OwnerId MaxOwner) const;

  /// Busy fraction of [From, To); 0 for an empty window.
  double utilization(Tick From, Tick To) const;

  /// All busy intervals, ordered by Begin.
  const std::vector<Interval> &intervals() const { return Busy; }

  /// Drops everything.
  void clear() { Busy.clear(); }

private:
  /// Index of the first interval with End > T.
  size_t lowerBound(Tick T) const;

  std::vector<Interval> Busy;
};

} // namespace cws

#endif // CWS_RESOURCE_TIMELINE_H
