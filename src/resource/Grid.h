//===-- resource/Grid.h - The distributed environment -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set of processor nodes a virtual organization schedules on, plus
/// the randomized factory matching the paper's simulated environment:
/// 20..30 nodes split into three relative-performance bands.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_GRID_H
#define CWS_RESOURCE_GRID_H

#include "resource/Node.h"
#include "support/Prng.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace cws {

/// Parameters of the randomized environment of Section 4.
struct GridConfig {
  /// Node count is uniform in [MinNodes, MaxNodes] ("varied from 20 to
  /// 30" to conform to the task parallelism degree).
  unsigned MinNodes = 20;
  unsigned MaxNodes = 30;

  /// Share of nodes per band; the remainder is slow.
  double FastShare = 1.0 / 3.0;
  double MediumShare = 1.0 / 3.0;

  /// Relative performance ranges of the paper: fast 0.66..1, medium
  /// 0.33..0.66, slow exactly 0.33.
  double FastLo = 0.66;
  double FastHi = 1.0;
  double MediumLo = 0.35;
  double MediumHi = 0.66;
  double SlowPerf = 0.33;

  /// Economic model: price per tick = PriceBase * RelPerf^PriceExponent.
  /// With an exponent above 1 the total price of a fixed amount of work
  /// grows with performance — the paper's "user should pay additional
  /// cost in order to use more powerful resource".
  double PriceBase = 10.0;
  double PriceExponent = 2.0;
};

/// An ordered collection of processor nodes.
class Grid {
public:
  Grid() = default;

  /// Adds a node with the config's price model; returns its id.
  unsigned addNode(double RelPerf, const GridConfig &Config = GridConfig());

  /// Adds a node with an explicit price; returns its id.
  unsigned addNodePriced(double RelPerf, double PricePerTick);

  /// Builds the randomized Section-4 environment.
  static Grid makeRandom(const GridConfig &Config, Prng &Rng);

  /// Builds the four-type environment of the Fig. 2 worked example:
  /// node ids 0..3 with relative performance 1, 1/2, 1/3, 1/4 — they
  /// correspond to the paper's node types 1..4.
  static Grid makeFig2();

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  ProcessorNode &node(unsigned Id);
  const ProcessorNode &node(unsigned Id) const;

  std::vector<ProcessorNode> &nodes() { return Nodes; }
  const std::vector<ProcessorNode> &nodes() const { return Nodes; }

  /// Ids of nodes in the given band, fastest first.
  std::vector<unsigned> idsInGroup(PerfGroup Group) const;

  /// Ids of all nodes, fastest first.
  std::vector<unsigned> idsByPerf() const;

  /// Mean utilization of the band over [From, To).
  double groupUtilization(PerfGroup Group, Tick From, Tick To) const;

  /// Calls \p Fn for every reservation interval of every node, node by
  /// node in id order (intervals ordered by Begin within a node) — the
  /// telemetry exporter walks this to build per-node occupancy tracks.
  void forEachInterval(
      const std::function<void(unsigned Node, const Interval &I)> &Fn) const;

  /// Releases every reservation held by \p Owner across all nodes.
  void releaseOwner(OwnerId Owner);

  /// Clears every timeline (fresh environment).
  void clearTimelines();

private:
  std::vector<ProcessorNode> Nodes;
};

} // namespace cws

#endif // CWS_RESOURCE_GRID_H
