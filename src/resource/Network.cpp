//===-- resource/Network.cpp - Data transfer model ------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Network.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

Tick Network::transferTicks(Tick BaseTicks, unsigned SrcNode,
                            unsigned DstNode) const {
  CWS_CHECK(BaseTicks >= 0, "negative base transfer time");
  if (SrcNode == DstNode || BaseTicks == 0)
    return SrcNode == DstNode ? 0 : Config.Latency;
  double Scaled = static_cast<double>(BaseTicks) * Config.TransferScale;
  return Config.Latency + static_cast<Tick>(std::ceil(Scaled - 1e-9));
}
