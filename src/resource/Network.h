//===-- resource/Network.h - Data transfer model ----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inter-node transfer-time model. A data edge of a compound job has
/// a base transfer time (on the reference network); the network scales it
/// and adds latency. Transfers within one node are free, which is the
/// lever coarse-grain strategies (S3) pull to avoid data exchanges.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_NETWORK_H
#define CWS_RESOURCE_NETWORK_H

#include "sim/Time.h"

namespace cws {

/// Transfer-time parameters.
struct NetworkConfig {
  /// Multiplier on base transfer ticks between distinct nodes.
  double TransferScale = 1.0;
  /// Fixed per-transfer latency between distinct nodes.
  Tick Latency = 0;
};

/// Computes inter-node transfer times.
class Network {
public:
  Network() = default;
  explicit Network(NetworkConfig Config) : Config(Config) {}

  /// Ticks to move data with base transfer time \p BaseTicks from
  /// \p SrcNode to \p DstNode. Zero when both are the same node.
  Tick transferTicks(Tick BaseTicks, unsigned SrcNode, unsigned DstNode) const;

  const NetworkConfig &config() const { return Config; }

private:
  NetworkConfig Config;
};

} // namespace cws

#endif // CWS_RESOURCE_NETWORK_H
