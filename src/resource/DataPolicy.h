//===-- resource/DataPolicy.h - Data placement policies ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data storage and replication policies, the second axis of the paper's
/// strategy types: S1 replicates actively, S2 accesses data remotely and
/// S3 keeps data static. The policy turns a (producer, consumer, base
/// transfer time, source node, destination node) tuple into an effective
/// transfer time, optionally remembering replica locations.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_DATAPOLICY_H
#define CWS_RESOURCE_DATAPOLICY_H

#include "resource/Network.h"
#include "sim/Time.h"

#include <cstdint>
#include <unordered_set>

namespace cws {

/// The three data policies of the paper's strategy types.
enum class DataPolicyKind {
  /// S1: replicas are created proactively, so a transfer costs a fraction
  /// of the base time and repeated consumption at a node is free.
  ActiveReplication,
  /// S2: every consumer fetches the data over the network at full price.
  RemoteAccess,
  /// S3: data stays where it was produced; moving it anyway pays a
  /// penalty, so consumers prefer co-location.
  StaticStorage,
};

/// Short name ("replication" / "remote" / "static").
const char *dataPolicyName(DataPolicyKind Kind);

/// Tunables of the policy cost model.
struct DataPolicyConfig {
  /// ActiveReplication: share of the base transfer time a proactive
  /// replication costs on first delivery to a node.
  double ReplicationFactor = 0.4;
  /// StaticStorage: multiplier on the base transfer time when data must
  /// be moved despite the static policy.
  double StaticPenalty = 1.2;
  /// ActiveReplication: share of the wire time the consumer is billed
  /// for. Replication is a VO service whose cost is amortized across
  /// users, so consumers pay only a fraction of the transfer price.
  double ReplicationBilling = 0.25;
};

/// Stateful data placement policy used while building one distribution.
///
/// The replica memory only matters for ActiveReplication; reset() clears
/// it between alternative schedules of a strategy.
class DataPolicy {
public:
  DataPolicy(DataPolicyKind Kind, const Network &Net,
             DataPolicyConfig Config = DataPolicyConfig());

  DataPolicyKind kind() const { return Kind; }

  /// Effective transfer ticks of a dataset produced by task
  /// \p ProducerTask on \p SrcNode and consumed on \p DstNode.
  /// For ActiveReplication this *records* the new replica.
  Tick transferTicks(unsigned ProducerTask, Tick BaseTicks, unsigned SrcNode,
                     unsigned DstNode);

  /// Like transferTicks but without recording replicas; usable from
  /// const contexts (cost previews in the DP allocator).
  Tick previewTicks(unsigned ProducerTask, Tick BaseTicks, unsigned SrcNode,
                    unsigned DstNode) const;

  /// Transfer ticks the consumer is *billed* for. Equal to previewTicks
  /// except under ActiveReplication, where the VO's replica service
  /// amortizes most of the wire cost (ReplicationBilling).
  Tick billedTicks(unsigned ProducerTask, Tick BaseTicks, unsigned SrcNode,
                   unsigned DstNode) const;

  /// Forgets all replica locations.
  void reset() { Replicas.clear(); }

private:
  uint64_t replicaKey(unsigned ProducerTask, unsigned Node) const {
    return (static_cast<uint64_t>(ProducerTask) << 32) | Node;
  }

  DataPolicyKind Kind;
  const Network &Net;
  DataPolicyConfig Config;
  std::unordered_set<uint64_t> Replicas;
};

} // namespace cws

#endif // CWS_RESOURCE_DATAPOLICY_H
