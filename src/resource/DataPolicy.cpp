//===-- resource/DataPolicy.cpp - Data placement policies -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/DataPolicy.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

const char *cws::dataPolicyName(DataPolicyKind Kind) {
  switch (Kind) {
  case DataPolicyKind::ActiveReplication:
    return "replication";
  case DataPolicyKind::RemoteAccess:
    return "remote";
  case DataPolicyKind::StaticStorage:
    return "static";
  }
  CWS_UNREACHABLE("unknown data policy");
}

DataPolicy::DataPolicy(DataPolicyKind Kind, const Network &Net,
                       DataPolicyConfig Config)
    : Kind(Kind), Net(Net), Config(Config) {}

static Tick scaleTicks(Tick Ticks, double Factor) {
  return static_cast<Tick>(
      std::ceil(static_cast<double>(Ticks) * Factor - 1e-9));
}

Tick DataPolicy::previewTicks(unsigned ProducerTask, Tick BaseTicks,
                              unsigned SrcNode, unsigned DstNode) const {
  Tick Wire = Net.transferTicks(BaseTicks, SrcNode, DstNode);
  if (Wire == 0)
    return 0;
  switch (Kind) {
  case DataPolicyKind::ActiveReplication:
    if (Replicas.count(replicaKey(ProducerTask, DstNode)))
      return 0;
    return scaleTicks(Wire, Config.ReplicationFactor);
  case DataPolicyKind::RemoteAccess:
    return Wire;
  case DataPolicyKind::StaticStorage:
    return scaleTicks(Wire, Config.StaticPenalty);
  }
  CWS_UNREACHABLE("unknown data policy");
}

Tick DataPolicy::billedTicks(unsigned ProducerTask, Tick BaseTicks,
                             unsigned SrcNode, unsigned DstNode) const {
  if (Kind != DataPolicyKind::ActiveReplication)
    return previewTicks(ProducerTask, BaseTicks, SrcNode, DstNode);
  Tick Wire = Net.transferTicks(BaseTicks, SrcNode, DstNode);
  if (Wire == 0 || Replicas.count(replicaKey(ProducerTask, DstNode)))
    return 0;
  return scaleTicks(Wire, Config.ReplicationBilling);
}

Tick DataPolicy::transferTicks(unsigned ProducerTask, Tick BaseTicks,
                               unsigned SrcNode, unsigned DstNode) {
  Tick Ticks = previewTicks(ProducerTask, BaseTicks, SrcNode, DstNode);
  if (Kind == DataPolicyKind::ActiveReplication && SrcNode != DstNode)
    Replicas.insert(replicaKey(ProducerTask, DstNode));
  return Ticks;
}
