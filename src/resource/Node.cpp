//===-- resource/Node.cpp - Heterogeneous processor nodes -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "resource/Node.h"
#include "support/Check.h"

#include <cmath>

using namespace cws;

const char *cws::perfGroupName(PerfGroup Group) {
  switch (Group) {
  case PerfGroup::Fast:
    return "fast";
  case PerfGroup::Medium:
    return "medium";
  case PerfGroup::Slow:
    return "slow";
  }
  CWS_UNREACHABLE("unknown performance group");
}

PerfGroup cws::classifyPerf(double RelPerf) {
  if (RelPerf >= 0.66)
    return PerfGroup::Fast;
  if (RelPerf > 0.34)
    return PerfGroup::Medium;
  return PerfGroup::Slow;
}

ProcessorNode::ProcessorNode(unsigned Id, double RelPerf, double PricePerTick)
    : Id(Id), RelPerf(RelPerf), PricePerTick(PricePerTick),
      Group(classifyPerf(RelPerf)) {
  CWS_CHECK(RelPerf > 0.0, "relative performance must be positive");
  CWS_CHECK(PricePerTick >= 0.0, "price per tick must be non-negative");
}

Tick ProcessorNode::execTicks(Tick RefTicks) const {
  CWS_CHECK(RefTicks >= 0, "negative reference time");
  if (RefTicks == 0)
    return 0;
  // ceil(RefTicks / RelPerf) with a tolerance so perfs stored as 1/3 or
  // 1/4 reproduce the paper's integral estimation table exactly.
  double Exact = static_cast<double>(RefTicks) / RelPerf;
  return static_cast<Tick>(std::ceil(Exact - 1e-9));
}
