//===-- resource/Node.h - Heterogeneous processor nodes ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Processor nodes with relative performance, an economic price, and a
/// reservation timeline. The paper's environment groups nodes into three
/// relative-performance bands ("fast" 0.66..1, "medium" 0.33..0.66,
/// "slow" 0.33); PerfGroup mirrors that split.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_RESOURCE_NODE_H
#define CWS_RESOURCE_NODE_H

#include "resource/Timeline.h"
#include "sim/Time.h"

namespace cws {

/// The paper's three relative-performance bands.
enum class PerfGroup { Fast, Medium, Slow };

/// Human-readable band name ("fast" / "medium" / "slow").
const char *perfGroupName(PerfGroup Group);

/// Classifies a relative performance value into the paper's bands.
PerfGroup classifyPerf(double RelPerf);

/// One processor node of the distributed environment.
///
/// A node executes one task at a time (each task "is executed on a single
/// node" and is seen by the local batch system as a job with a resource
/// request); concurrency within a node is therefore modelled by its
/// timeline's exclusive reservations.
class ProcessorNode {
public:
  ProcessorNode(unsigned Id, double RelPerf, double PricePerTick);

  unsigned id() const { return Id; }
  double relPerf() const { return RelPerf; }
  double pricePerTick() const { return PricePerTick; }
  PerfGroup group() const { return Group; }

  /// Whole-tick execution time on this node of work that takes
  /// \p RefTicks on a reference (RelPerf = 1) node.
  Tick execTicks(Tick RefTicks) const;

  Timeline &timeline() { return Line; }
  const Timeline &timeline() const { return Line; }

private:
  unsigned Id;
  double RelPerf;
  double PricePerTick;
  PerfGroup Group;
  Timeline Line;
};

} // namespace cws

#endif // CWS_RESOURCE_NODE_H
