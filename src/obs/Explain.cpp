//===-- obs/Explain.cpp - Journal analysis for cws-explain ----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Explain.h"
#include "support/Table.h"

#include <map>
#include <sstream>

using namespace cws;
using namespace cws::obs;

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

std::vector<std::string> cws::obs::validateJournal(const ParsedJournal &J) {
  std::vector<std::string> Errors;
  auto Error = [&](uint64_t Id, const std::string &Why) {
    Errors.push_back("event #" + std::to_string(Id) + ": " + Why);
  };
  uint64_t FirstId = J.Events.empty() ? 0 : J.Events.front().Id;
  uint64_t PrevId = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Id == 0) {
      Error(E.Id, "id 0 is reserved for 'no event'");
    } else if (E.Id <= PrevId) {
      Error(E.Id, "ids not strictly increasing (previous was #" +
                      std::to_string(PrevId) + ")");
    }
    PrevId = E.Id;
    JournalKind Kind;
    if (!journalKindFromName(E.Kind, Kind))
      Error(E.Id, "unknown kind '" + E.Kind + "'");
    // A reference must point strictly into the past. If the referenced
    // event is gone, the ring must actually have wrapped past it.
    auto CheckRef = [&](uint64_t Ref,
                        const char *What) -> const ParsedJournalEvent * {
      if (Ref == 0)
        return nullptr;
      if (Ref >= E.Id) {
        Error(E.Id, std::string(What) + " #" + std::to_string(Ref) +
                        " does not precede the event");
        return nullptr;
      }
      if (const ParsedJournalEvent *T = J.byId(Ref))
        return T;
      if (!(J.Dropped > 0 && Ref < FirstId))
        Error(E.Id, std::string(What) + " #" + std::to_string(Ref) +
                        " is dangling (not dropped by the ring)");
      return nullptr;
    };
    if (const ParsedJournalEvent *C = CheckRef(E.Cause, "cause")) {
      if (C->JobId != E.JobId)
        Error(E.Id, "cause #" + std::to_string(E.Cause) +
                        " belongs to a different job");
      if (C->At > E.At)
        Error(E.Id, "cause #" + std::to_string(E.Cause) +
                        " happens later (t=" + std::to_string(C->At) + " > t=" +
                        std::to_string(E.At) + ")");
    }
    if (const ParsedJournalEvent *T = CheckRef(E.Trigger, "trigger"))
      if (T->Kind != "env.change")
        Error(E.Id, "trigger #" + std::to_string(E.Trigger) +
                        " is a '" + T->Kind + "', not an env.change");
  }
  if (J.Recorded < J.Dropped)
    Errors.push_back("meta: recorded < dropped");
  else if (J.Events.size() != J.Recorded - J.Dropped)
    Errors.push_back("meta: " + std::to_string(J.Events.size()) +
                     " events survive but recorded-dropped = " +
                     std::to_string(J.Recorded - J.Dropped));
  if (!J.Events.empty() && J.Events.back().Id != J.Recorded)
    Errors.push_back("meta: last event is #" +
                     std::to_string(J.Events.back().Id) + " but recorded = " +
                     std::to_string(J.Recorded));
  return Errors;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

static void renderEventInline(std::string &Out, const ParsedJournalEvent &E) {
  Out += '#';
  Out += std::to_string(E.Id);
  Out += " t=";
  Out += std::to_string(E.At);
  Out += ' ';
  Out += E.Kind;
  if (!E.Detail.empty())
    Out += " [" + E.Detail + "]";
  for (const auto &A : E.Args)
    Out += " " + A.first + "=" + std::to_string(A.second);
}

std::string cws::obs::renderJournalEventInline(const ParsedJournalEvent &E) {
  std::string Out;
  renderEventInline(Out, E);
  return Out;
}

/// Appends "trigger: #N env.change ..." when \p E carries a trigger.
static void renderTrigger(std::string &Out, const ParsedJournal &J,
                          const ParsedJournalEvent &E, const char *Indent) {
  if (E.Trigger == 0)
    return;
  Out += Indent;
  Out += "trigger: ";
  if (const ParsedJournalEvent *T = J.byId(E.Trigger)) {
    renderEventInline(Out, *T);
  } else {
    Out += '#';
    Out += std::to_string(E.Trigger) + " (dropped from ring)";
  }
  Out += "\n";
}

/// Walks the cause chain of \p E backwards to the nearest event of
/// \p Kind, or null when the chain ends (or leaves the ring) first.
static const ParsedJournalEvent *
findInChain(const ParsedJournal &J, const ParsedJournalEvent &E,
            const std::string &Kind) {
  const ParsedJournalEvent *Cur = &E;
  while (Cur->Cause != 0) {
    Cur = J.byId(Cur->Cause);
    if (!Cur)
      return nullptr;
    if (Cur->Kind == Kind)
      return Cur;
  }
  return nullptr;
}

std::string cws::obs::explainJob(const ParsedJournal &J, int64_t JobId) {
  std::vector<const ParsedJournalEvent *> Chain;
  for (const ParsedJournalEvent &E : J.Events)
    if (E.JobId == JobId)
      Chain.push_back(&E);
  if (Chain.empty())
    return "job " + std::to_string(JobId) + ": no events in journal\n";
  int64_t Flow = -1;
  for (const ParsedJournalEvent *E : Chain)
    if (E->FlowId >= 0) {
      Flow = E->FlowId;
      break;
    }
  std::string Out = "job " + std::to_string(JobId);
  if (Flow >= 0)
    Out += " (flow " + std::to_string(Flow) + ")";
  Out += ": " + std::to_string(Chain.size()) + " events\n";
  if (J.Dropped > 0 && Chain.front()->Cause != 0 &&
      !J.byId(Chain.front()->Cause))
    Out += "  (earlier events dropped by the ring)\n";
  for (const ParsedJournalEvent *E : Chain) {
    Out += "  ";
    renderEventInline(Out, *E);
    Out += "\n";
    renderTrigger(Out, J, *E, "      ");
  }
  return Out;
}

std::string cws::obs::explainReallocations(const ParsedJournal &J) {
  std::string Out;
  size_t Count = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Kind != "reallocate")
      continue;
    ++Count;
    Out += "job " + std::to_string(E.JobId) + " reallocated at t=" +
           std::to_string(E.At) + " (#" + std::to_string(E.Id) + ")";
    if (!E.Detail.empty())
      Out += " [" + E.Detail + "]";
    Out += "\n";
    renderTrigger(Out, J, E, "  ");
    // The invalidation that found the broken slot is the nearest one up
    // the job's own causal chain.
    if (const ParsedJournalEvent *Inv = findInChain(J, E, "invalidate")) {
      Out += "  invalidated: ";
      renderEventInline(Out, *Inv);
      Out += "\n";
      if (Inv->Trigger != E.Trigger)
        renderTrigger(Out, J, *Inv, "      ");
    }
    // The outcome is the job's next terminal decision after the
    // reallocation.
    for (const ParsedJournalEvent &Later : J.Events) {
      if (Later.Id <= E.Id || Later.JobId != E.JobId)
        continue;
      if (Later.Kind == "commit" || Later.Kind == "reject" ||
          Later.Kind == "reallocate") {
        Out += "  outcome: ";
        renderEventInline(Out, Later);
        Out += "\n";
        break;
      }
    }
  }
  if (Count == 0)
    return "no reallocations in journal\n";
  Out += std::to_string(Count) + " reallocation(s)\n";
  return Out;
}

std::string cws::obs::explainRejections(const ParsedJournal &J) {
  std::string Out;
  size_t Count = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Kind != "reject")
      continue;
    ++Count;
    Out += "job " + std::to_string(E.JobId) + " rejected at t=" +
           std::to_string(E.At) + " (#" + std::to_string(E.Id) + ")";
    if (!E.Detail.empty())
      Out += ": " + E.Detail;
    Out += "\n";
    if (E.Cause != 0) {
      Out += "  after: ";
      if (const ParsedJournalEvent *C = J.byId(E.Cause)) {
        renderEventInline(Out, *C);
      } else {
        Out += '#';
        Out += std::to_string(E.Cause) + " (dropped from ring)";
      }
      Out += "\n";
    }
    renderTrigger(Out, J, E, "  ");
  }
  if (Count == 0)
    return "no rejections in journal\n";
  Out += std::to_string(Count) + " rejection(s)\n";
  return Out;
}

std::string cws::obs::journalSummary(const ParsedJournal &J) {
  struct FlowCounts {
    int64_t Arrivals = 0, Variants = 0, Collisions = 0, Invalidations = 0,
            Shifts = 0, Reallocations = 0, Commits = 0, Rejects = 0;
  };
  std::map<int64_t, FlowCounts> Flows;
  int64_t EnvChanges = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Kind == "env.change") {
      ++EnvChanges;
      continue;
    }
    FlowCounts &C = Flows[E.FlowId];
    if (E.Kind == "arrival")
      ++C.Arrivals;
    else if (E.Kind == "variant")
      ++C.Variants;
    else if (E.Kind == "collision")
      ++C.Collisions;
    else if (E.Kind == "invalidate")
      ++C.Invalidations;
    else if (E.Kind == "shift")
      ++C.Shifts;
    else if (E.Kind == "reallocate")
      ++C.Reallocations;
    else if (E.Kind == "commit")
      ++C.Commits;
    else if (E.Kind == "reject")
      ++C.Rejects;
  }
  Table T({"flow", "arrivals", "variants", "collisions", "invalidations",
           "shifts", "reallocs", "commits", "rejects"});
  bool HaveRows = false;
  for (const auto &[Flow, C] : Flows) {
    // Flowless marker events (sim notes) would render an all-zero row.
    if (C.Arrivals + C.Variants + C.Collisions + C.Invalidations +
            C.Shifts + C.Reallocations + C.Commits + C.Rejects ==
        0)
      continue;
    HaveRows = true;
    T.addRow({Flow < 0 ? std::string("-") : std::to_string(Flow),
              std::to_string(C.Arrivals), std::to_string(C.Variants),
              std::to_string(C.Collisions), std::to_string(C.Invalidations),
              std::to_string(C.Shifts), std::to_string(C.Reallocations),
              std::to_string(C.Commits), std::to_string(C.Rejects)});
  }
  std::ostringstream OS;
  OS << "journal: " << J.Recorded << " recorded, " << J.Dropped
     << " dropped, " << J.Events.size() << " surviving; " << EnvChanges
     << " environment change(s)\n";
  if (HaveRows)
    T.print(OS);
  return OS.str();
}
