//===-- obs/Report.cpp - Run reports and SLO evaluation -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"
#include "obs/Metrics.h"
#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

using namespace cws;
using namespace cws::obs;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

static const char TimeSeriesHeader[] = "seq,tick,reason,series,node,flow,value";

bool cws::obs::parseTimeSeriesCsv(const std::string &Text,
                                  ParsedTimeSeries &Out,
                                  std::string &Error) {
  Out = ParsedTimeSeries{};
  size_t Pos = 0, LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    if (!SawHeader) {
      // Comment lines may precede the header; the provenance stamp is
      // one of them.
      if (!Line.empty() && Line[0] == '#') {
        parseProvenanceCsvComment(Line, Out.Prov);
        continue;
      }
      if (Line != TimeSeriesHeader) {
        Error = "line " + std::to_string(LineNo) + ": expected header '" +
                std::string(TimeSeriesHeader) + "'";
        return false;
      }
      SawHeader = true;
      continue;
    }
    // Values never contain commas (series/reason names are literals,
    // flow labels are strategy names), so a plain split suffices.
    std::vector<std::string> Fields;
    size_t Start = 0;
    while (true) {
      size_t Comma = Line.find(',', Start);
      if (Comma == std::string::npos) {
        Fields.push_back(Line.substr(Start));
        break;
      }
      Fields.push_back(Line.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    if (Fields.size() != 7) {
      Error = "line " + std::to_string(LineNo) + ": expected 7 fields, got " +
              std::to_string(Fields.size());
      return false;
    }
    TimeSeriesRow R;
    char *End = nullptr;
    R.Seq = std::strtoull(Fields[0].c_str(), &End, 10);
    if (End == Fields[0].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad seq '" + Fields[0] +
              "'";
      return false;
    }
    R.At = std::strtoll(Fields[1].c_str(), &End, 10);
    if (End == Fields[1].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad tick '" + Fields[1] +
              "'";
      return false;
    }
    R.Reason = Fields[2];
    R.Series = Fields[3];
    if (!Fields[4].empty()) {
      R.Node = std::strtoll(Fields[4].c_str(), &End, 10);
      if (End == Fields[4].c_str() || *End) {
        Error = "line " + std::to_string(LineNo) + ": bad node '" +
                Fields[4] + "'";
        return false;
      }
    }
    R.Flow = Fields[5];
    R.Value = std::strtod(Fields[6].c_str(), &End);
    if (End == Fields[6].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad value '" +
              Fields[6] + "'";
      return false;
    }
    Out.Rows.push_back(std::move(R));
  }
  if (!SawHeader) {
    Error = "empty file";
    return false;
  }
  return true;
}

bool cws::obs::parseSloFile(const std::string &Text,
                            std::vector<SloRule> &Out, std::string &Error) {
  Out.clear();
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    // Trim.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);
    SloRule R;
    size_t Op = Line.find("<=");
    if (Op != std::string::npos) {
      R.IsUpper = true;
    } else {
      Op = Line.find(">=");
      if (Op == std::string::npos) {
        Error = "line " + std::to_string(LineNo) +
                ": expected 'indicator <= bound' or 'indicator >= bound'";
        return false;
      }
      R.IsUpper = false;
    }
    std::string Name = Line.substr(0, Op);
    if (size_t NE = Name.find_last_not_of(" \t"); NE != std::string::npos)
      Name = Name.substr(0, NE + 1);
    if (Name.empty()) {
      Error = "line " + std::to_string(LineNo) + ": missing indicator name";
      return false;
    }
    // Sweep grammar: a `.stat` suffix selects the pooled statistic the
    // rule gates on ("deadline_miss_rate.p90"). Any other dotted suffix
    // stays part of the indicator name — profile indicators like
    // `phase.chain.dp.count` are dotted all the way through, and an
    // indicator nothing computes fails closed at evaluation anyway.
    if (size_t Dot = Name.rfind('.'); Dot != std::string::npos) {
      static const char *Stats[] = {"mean", "ci95", "p50", "p90",
                                    "p99",  "min",  "max"};
      std::string Suffix = Name.substr(Dot + 1);
      bool KnownStat = false;
      for (const char *S : Stats)
        KnownStat = KnownStat || Suffix == S;
      if (KnownStat) {
        R.Stat = Suffix;
        Name = Name.substr(0, Dot);
        if (Name.empty()) {
          Error = "line " + std::to_string(LineNo) +
                  ": missing indicator name";
          return false;
        }
      }
    }
    R.Indicator = Name;
    std::string Bound = Line.substr(Op + 2);
    char *End = nullptr;
    R.Bound = std::strtod(Bound.c_str(), &End);
    if (End == Bound.c_str()) {
      Error = "line " + std::to_string(LineNo) + ": bad bound '" + Bound +
              "'";
      return false;
    }
    while (*End == ' ' || *End == '\t')
      ++End;
    // Optional `across seeds` trailer: the rule explicitly scopes to
    // sweep evaluation (and fails closed in single-run evaluation).
    if (*End) {
      std::string Trailer(End);
      if (size_t TE = Trailer.find_last_not_of(" \t");
          TE != std::string::npos)
        Trailer = Trailer.substr(0, TE + 1);
      if (Trailer == "across seeds") {
        R.AcrossSeeds = true;
      } else {
        Error = "line " + std::to_string(LineNo) + ": trailing junk '" +
                Trailer + "'";
        return false;
      }
    }
    Out.push_back(std::move(R));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Indicators
//===----------------------------------------------------------------------===//

std::map<std::string, double>
cws::obs::computeIndicators(const ParsedJournal &J,
                            const ParsedTimeSeries &Ts) {
  std::map<std::string, double> Ind;

  // Journal-side counts and the per-job completion/deadline join.
  struct JobOutcome {
    int64_t Deadline = 0;
    bool HaveDeadline = false;
    int64_t Completion = 0;
    bool HaveCompletion = false;
    bool Committed = false;
  };
  std::map<int64_t, JobOutcome> Jobs;
  double Submitted = 0, Committed = 0, Rejected = 0, Reallocations = 0,
         Invalidations = 0, EnvChanges = 0;
  double RepairShift = 0, RepairDp = 0, RepairRebuilt = 0, RepairFailed = 0;
  double CommitCostSum = 0, CommitCfSum = 0;
  uint64_t CommitCostN = 0, CommitCfN = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Kind == "arrival") {
      ++Submitted;
      if (const int64_t *D = E.arg("deadline")) {
        Jobs[E.JobId].Deadline = *D;
        Jobs[E.JobId].HaveDeadline = true;
      }
    } else if (E.Kind == "commit") {
      ++Committed;
      JobOutcome &O = Jobs[E.JobId];
      O.Committed = true;
      // The journal's "makespan" is Distribution::makespan(), the
      // absolute completion tick the deadline check compares against.
      const int64_t *Makespan = E.arg("makespan");
      if (Makespan && !O.HaveCompletion)
        O.Completion = *Makespan;
      if (const int64_t *Cost = E.arg("cost")) {
        CommitCostSum += static_cast<double>(*Cost);
        ++CommitCostN;
      }
      if (const int64_t *Cf = E.arg("cf")) {
        CommitCfSum += static_cast<double>(*Cf);
        ++CommitCfN;
      }
    } else if (E.Kind == "execution") {
      // Actual completion under deviations overrides the committed
      // forecast.
      if (const int64_t *C = E.arg("completion")) {
        Jobs[E.JobId].Completion = *C;
        Jobs[E.JobId].HaveCompletion = true;
      }
    } else if (E.Kind == "reject") {
      ++Rejected;
    } else if (E.Kind == "reallocate") {
      ++Reallocations;
    } else if (E.Kind == "repair.stage") {
      if (E.Detail == "shift")
        ++RepairShift;
      else if (E.Detail == "dp")
        ++RepairDp;
      else if (E.Detail == "rebuild")
        ++RepairRebuilt;
      else if (E.Detail == "failed")
        ++RepairFailed;
    } else if (E.Kind == "invalidate") {
      ++Invalidations;
    } else if (E.Kind == "env.change") {
      ++EnvChanges;
    }
  }
  double Missed = 0, Judged = 0;
  for (const auto &[JobId, O] : Jobs) {
    if (!O.Committed || !O.HaveDeadline)
      continue;
    ++Judged;
    if (O.Completion > O.Deadline)
      ++Missed;
  }
  Ind["jobs_submitted"] = Submitted;
  Ind["jobs_committed"] = Committed;
  Ind["jobs_rejected"] = Rejected;
  Ind["commit_rate"] = Submitted > 0 ? Committed / Submitted : 0.0;
  Ind["reject_rate"] = Submitted > 0 ? Rejected / Submitted : 0.0;
  // With no committed job carrying a deadline the rate is undefined:
  // leaving it out (instead of a reassuring 0.0) makes an SLO rule on
  // it fail closed through the unknown-indicator path, and the report
  // renders n/a.
  if (Judged > 0)
    Ind["deadline_miss_rate"] = Missed / Judged;
  Ind["reallocations"] = Reallocations;
  Ind["invalidations"] = Invalidations;
  Ind["env_changes"] = EnvChanges;
  Ind["reallocations_per_commit"] =
      Reallocations / (Committed > 0 ? Committed : 1.0);
  // Staged-repair outcome mix (repair-mode journals only; a
  // rebuild-mode run has no repair.stage events and the indicators stay
  // absent, so SLO rules on them fail closed). The share is over the
  // reallocations that delivered a strategy at all — a failed one is a
  // job even the stage-3 rebuild could not fix, so no mode resolves it
  // (same denominator as bench/reg_realloc_repair).
  double RepairSeen = RepairShift + RepairDp + RepairRebuilt + RepairFailed;
  double RepairResolved = RepairShift + RepairDp + RepairRebuilt;
  if (RepairSeen > 0) {
    Ind["realloc_repaired_shift"] = RepairShift;
    Ind["realloc_repaired_dp"] = RepairDp;
    Ind["realloc_rebuilt"] = RepairRebuilt;
    Ind["realloc_failed"] = RepairFailed;
    if (RepairResolved > 0)
      Ind["repair_stage12_share"] =
          (RepairShift + RepairDp) / RepairResolved;
  }
  // Cost / cost-function means over committed schedules: the sweep's
  // cost-vs-time QoS axes. Undefined (absent) with no commits, same
  // convention as deadline_miss_rate.
  if (CommitCostN > 0)
    Ind["mean_commit_cost"] = CommitCostSum / static_cast<double>(CommitCostN);
  if (CommitCfN > 0)
    Ind["mean_commit_cf"] = CommitCfSum / static_cast<double>(CommitCfN);

  // Time-series side: per-node mean contention (busy + background).
  if (!Ts.empty()) {
    std::map<int64_t, std::pair<double, double>> NodeSum; // sum, count
    for (const TimeSeriesRow &R : Ts.Rows) {
      if (R.Node < 0 ||
          (R.Series != "util_busy" && R.Series != "util_background"))
        continue;
      NodeSum[R.Node].first += R.Value;
      NodeSum[R.Node].second += 1.0;
    }
    if (!NodeSum.empty()) {
      double Mean = 0, Max = 0;
      for (const auto &[Node, SC] : NodeSum) {
        // Busy and background rows of one node count separately, so
        // the per-node mean of their sum is 2 * (sum / rows).
        double NodeMean = SC.second > 0 ? 2.0 * SC.first / SC.second : 0.0;
        Mean += NodeMean;
        Max = std::max(Max, NodeMean);
      }
      Mean /= static_cast<double>(NodeSum.size());
      Ind["mean_node_busy"] = Mean;
      Ind["max_node_busy"] = Max;
    }
  }
  // Invalidation-pass sizing, when the sampler ran: probe values are
  // deltas since enable, so the last frame's value is the run total.
  for (const TimeSeriesRow &R : Ts.Rows) {
    if (R.Node >= 0)
      continue;
    if (R.Series == "env_scan_placements")
      Ind["env_scan_placements"] = R.Value;
    else if (R.Series == "env_index_placements")
      Ind["env_index_placements"] = R.Value;
    else if (R.Series == "env_index_candidates")
      Ind["env_index_candidates"] = R.Value;
  }
  return Ind;
}

std::vector<SloResult>
cws::obs::evaluateSlo(const std::vector<SloRule> &Rules,
                      const std::map<std::string, double> &Ind) {
  std::vector<SloResult> Out;
  for (const SloRule &R : Rules) {
    SloResult Res;
    Res.Rule = R;
    auto It = Ind.find(R.Indicator);
    if (!R.Stat.empty() || R.AcrossSeeds) {
      // Distribution rules need the pooled statistics of a sweep; a
      // single run has none, so they fail closed here instead of
      // silently gating on the point value.
      Res.Known = false;
      Res.Pass = false;
    } else if (It == Ind.end()) {
      // Unknown indicators fail closed: a typo must not silently pass.
      Res.Known = false;
      Res.Pass = false;
    } else {
      Res.Known = true;
      Res.Actual = It->second;
      Res.Pass = R.IsUpper ? Res.Actual <= R.Bound : Res.Actual >= R.Bound;
    }
    Out.push_back(std::move(Res));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

/// Fixed-precision rendering for rates and fractions; counts render
/// through renderNumber (no trailing ".000").
static std::string renderRate(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", X);
  return Buf;
}

static std::string renderPercent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Fraction);
  return Buf;
}

void cws::obs::addProfileIndicators(const ParsedProfile &P,
                                    std::map<std::string, double> &Ind) {
  for (const PhaseStats &Phase : P.Phases) {
    const std::string Prefix = "phase." + Phase.Name + ".";
    Ind[Prefix + "count"] = static_cast<double>(Phase.Count);
    Ind[Prefix + "total_us"] = Phase.TotalUs;
    Ind[Prefix + "self_us"] = Phase.SelfUs;
    Ind[Prefix + "p50_us"] = Phase.P50Us;
    Ind[Prefix + "p99_us"] = Phase.P99Us;
    for (const auto &W : Phase.Work)
      Ind[Prefix + W.first] = static_cast<double>(W.second);
  }
}

std::string cws::obs::renderProfileSection(const ParsedProfile &P) {
  std::string Out = "## Where the time went\n\n";
  if (P.Phases.empty()) {
    Out += "The attached profile recorded no phases.\n\n";
    return Out;
  }
  // Rank by self time — total time double-counts nesting (sim.tick
  // contains nearly everything); self time is where the clock actually
  // burned. Ties break by name for a deterministic report.
  std::vector<const PhaseStats *> Ranked;
  double TotalSelfUs = 0.0;
  for (const PhaseStats &Phase : P.Phases) {
    Ranked.push_back(&Phase);
    TotalSelfUs += Phase.SelfUs;
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const PhaseStats *A, const PhaseStats *B) {
              if (A->SelfUs != B->SelfUs)
                return A->SelfUs > B->SelfUs;
              return A->Name < B->Name;
            });
  Out += "| phase | count | total ms | self ms | self share | p50 us | "
         "p99 us | work |\n";
  Out += "|---|---|---|---|---|---|---|---|\n";
  for (const PhaseStats *Phase : Ranked) {
    std::string Work;
    for (const auto &W : Phase->Work) {
      if (!Work.empty())
        Work += ", ";
      Work += W.first + "=" + std::to_string(W.second);
    }
    if (Work.empty())
      Work = "-";
    double Share = TotalSelfUs > 0 ? Phase->SelfUs / TotalSelfUs : 0.0;
    Out += "| " + Phase->Name + " | " + std::to_string(Phase->Count) +
           " | " + renderRate(Phase->TotalUs / 1000.0) + " | " +
           renderRate(Phase->SelfUs / 1000.0) + " | " +
           renderPercent(Share) + " | " + renderRate(Phase->P50Us) + " | " +
           renderRate(Phase->P99Us) + " | " + Work + " |\n";
  }
  Out += "\n";
  return Out;
}

std::string cws::obs::renderRunReport(const ParsedJournal &J,
                                      const ParsedTimeSeries &Ts,
                                      const std::vector<SloResult> &Slo,
                                      const ParsedProfile *Profile) {
  std::map<std::string, double> Ind = computeIndicators(J, Ts);
  auto Get = [&Ind](const char *Name) {
    auto It = Ind.find(Name);
    return It == Ind.end() ? 0.0 : It->second;
  };
  Tick Horizon = 0;
  for (const ParsedJournalEvent &E : J.Events)
    Horizon = std::max(Horizon, static_cast<Tick>(E.At));
  for (const TimeSeriesRow &R : Ts.Rows)
    Horizon = std::max(Horizon, R.At);

  std::string Out = "# CWS run report\n\n";

  //===--- Overview -------------------------------------------------------===//
  Out += "## Overview\n\n";
  Out += "| indicator | value |\n|---|---|\n";
  auto Row = [&Out](const std::string &K, const std::string &V) {
    Out += "| " + K + " | " + V + " |\n";
  };
  Row("run horizon (ticks)", std::to_string(Horizon));
  Row("jobs submitted", renderNumber(Get("jobs_submitted")));
  Row("jobs committed", renderNumber(Get("jobs_committed")));
  Row("jobs rejected", renderNumber(Get("jobs_rejected")));
  Row("commit rate", renderPercent(Get("commit_rate")));
  Row("deadline miss rate", Ind.count("deadline_miss_rate")
                                ? renderPercent(Get("deadline_miss_rate"))
                                : "n/a");
  Row("environment changes", renderNumber(Get("env_changes")));
  Row("invalidations", renderNumber(Get("invalidations")));
  Row("reallocations", renderNumber(Get("reallocations")));
  Row("reallocations per commit",
      renderRate(Get("reallocations_per_commit")));
  // Staged-repair mix, present only in repair-mode journals (a
  // rebuild-mode run has no repair.stage events).
  if (Ind.count("realloc_failed")) {
    Row("reallocations repaired (shift)",
        renderNumber(Get("realloc_repaired_shift")));
    Row("reallocations repaired (dp)",
        renderNumber(Get("realloc_repaired_dp")));
    Row("reallocations rebuilt", renderNumber(Get("realloc_rebuilt")));
    Row("reallocations failed", renderNumber(Get("realloc_failed")));
    if (Ind.count("repair_stage12_share"))
      Row("stage-1/2 repair share",
          renderPercent(Get("repair_stage12_share")));
  }
  // Scan-vs-index comparison, present only when the run sampled the
  // invalidation probes (a scan run shows the first, an index run the
  // others — two runs of cws-report give the before/after).
  if (Ind.count("env_scan_placements"))
    Row("placements re-validated (scan)",
        renderNumber(Get("env_scan_placements")));
  if (Ind.count("env_index_candidates"))
    Row("index candidates re-validated",
        renderNumber(Get("env_index_candidates")));
  if (Ind.count("env_index_placements"))
    Row("placements re-validated (index)",
        renderNumber(Get("env_index_placements")));
  Out += "\n";

  //===--- Utilization ----------------------------------------------------===//
  Out += "## Utilization\n\n";
  // Per-node means over every frame that carried occupancy rows.
  struct NodeUtil {
    double Busy = 0, Background = 0, Reserved = 0;
    double BusyN = 0, BackgroundN = 0, ReservedN = 0;
    double meanBusy() const { return BusyN > 0 ? Busy / BusyN : 0; }
    double meanBackground() const {
      return BackgroundN > 0 ? Background / BackgroundN : 0;
    }
    double meanReserved() const {
      return ReservedN > 0 ? Reserved / ReservedN : 0;
    }
    double contention() const { return meanBusy() + meanBackground(); }
  };
  std::map<int64_t, NodeUtil> Nodes;
  for (const TimeSeriesRow &R : Ts.Rows) {
    if (R.Node < 0)
      continue;
    NodeUtil &N = Nodes[R.Node];
    if (R.Series == "util_busy") {
      N.Busy += R.Value;
      N.BusyN += 1;
    } else if (R.Series == "util_background") {
      N.Background += R.Value;
      N.BackgroundN += 1;
    } else if (R.Series == "util_reserved") {
      N.Reserved += R.Value;
      N.ReservedN += 1;
    }
  }
  if (Nodes.empty()) {
    Out += "No per-node series in the input (run with `--timeseries`).\n\n";
  } else {
    double MeanBusy = 0, MeanBackground = 0;
    for (const auto &[Id, N] : Nodes) {
      MeanBusy += N.meanBusy();
      MeanBackground += N.meanBackground();
    }
    MeanBusy /= static_cast<double>(Nodes.size());
    MeanBackground /= static_cast<double>(Nodes.size());
    Out += "Grid of " + std::to_string(Nodes.size()) +
           " nodes: mean busy (jobs) " + renderPercent(MeanBusy) +
           ", mean background " + renderPercent(MeanBackground) + ".\n\n";
    // Top-5 most contended: mean busy + background, ties to the lower
    // node id so the report is deterministic.
    std::vector<std::pair<int64_t, const NodeUtil *>> Ranked;
    for (const auto &[Id, N] : Nodes)
      Ranked.push_back({Id, &N});
    std::sort(Ranked.begin(), Ranked.end(),
              [](const auto &A, const auto &B) {
                if (A.second->contention() != B.second->contention())
                  return A.second->contention() > B.second->contention();
                return A.first < B.first;
              });
    if (Ranked.size() > 5)
      Ranked.resize(5);
    Out += "Most contended nodes:\n\n";
    Out += "| node | busy (jobs) | background | reserved (lookahead) |\n";
    Out += "|---|---|---|---|\n";
    for (const auto &[Id, N] : Ranked)
      Out += "| " + std::to_string(Id) + " | " +
             renderPercent(N->meanBusy()) + " | " +
             renderPercent(N->meanBackground()) + " | " +
             renderPercent(N->meanReserved()) + " |\n";
    Out += "\n";
  }

  //===--- Reallocation / invalidation timeline ---------------------------===//
  Out += "## Reallocation / invalidation timeline\n\n";
  double TotalChurn = Get("reallocations") + Get("invalidations");
  if (TotalChurn == 0) {
    Out += "No reallocations or invalidations recorded.\n\n";
  } else {
    // ~12 equal tick buckets across the run.
    const Tick Buckets = 12;
    Tick Width = Horizon / Buckets + 1;
    struct Bucket {
      int64_t Realloc = 0, Invalid = 0, Env = 0;
    };
    std::vector<Bucket> Hist(static_cast<size_t>(Buckets));
    for (const ParsedJournalEvent &E : J.Events) {
      auto Idx = static_cast<size_t>(E.At / Width);
      if (Idx >= Hist.size())
        Idx = Hist.size() - 1;
      if (E.Kind == "reallocate")
        ++Hist[Idx].Realloc;
      else if (E.Kind == "invalidate")
        ++Hist[Idx].Invalid;
      else if (E.Kind == "env.change")
        ++Hist[Idx].Env;
    }
    Out += "| ticks | env.changes | invalidations | reallocations |\n";
    Out += "|---|---|---|---|\n";
    for (size_t I = 0; I < Hist.size(); ++I) {
      Tick Lo = static_cast<Tick>(I) * Width;
      Tick Hi = Lo + Width - 1;
      Out += "| " + std::to_string(Lo) + "–" + std::to_string(Hi) +
             " | " + std::to_string(Hist[I].Env) + " | " +
             std::to_string(Hist[I].Invalid) + " | " +
             std::to_string(Hist[I].Realloc) + " |\n";
    }
    Out += "\n";
  }

  //===--- Per-flow QoS ---------------------------------------------------===//
  Out += "## Per-flow QoS\n\n";
  struct FlowCounts {
    int64_t Arrivals = 0, Commits = 0, Rejects = 0, Invalidations = 0,
            Reallocations = 0;
  };
  // std::map: flows render in ascending id order, independent of event
  // order.
  std::map<int64_t, FlowCounts> Flows;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.FlowId < 0 && E.JobId < 0)
      continue; // flowless marker events
    if (E.Kind == "arrival")
      ++Flows[E.FlowId].Arrivals;
    else if (E.Kind == "commit")
      ++Flows[E.FlowId].Commits;
    else if (E.Kind == "reject")
      ++Flows[E.FlowId].Rejects;
    else if (E.Kind == "invalidate")
      ++Flows[E.FlowId].Invalidations;
    else if (E.Kind == "reallocate")
      ++Flows[E.FlowId].Reallocations;
  }
  if (Flows.empty()) {
    Out += "No per-flow events in the journal.\n\n";
  } else {
    Out += "| flow | arrivals | commits | rejects | invalidations | "
           "reallocations | commit rate |\n";
    Out += "|---|---|---|---|---|---|---|\n";
    for (const auto &[Flow, C] : Flows) {
      double Rate = C.Arrivals > 0 ? static_cast<double>(C.Commits) /
                                         static_cast<double>(C.Arrivals)
                                   : 0.0;
      Out += "| " + (Flow < 0 ? std::string("-") : std::to_string(Flow)) +
             " | " + std::to_string(C.Arrivals) + " | " +
             std::to_string(C.Commits) + " | " + std::to_string(C.Rejects) +
             " | " + std::to_string(C.Invalidations) + " | " +
             std::to_string(C.Reallocations) + " | " + renderPercent(Rate) +
             " |\n";
    }
    Out += "\n";
  }

  //===--- Phase profile --------------------------------------------------===//
  if (Profile)
    Out += renderProfileSection(*Profile);

  //===--- SLO verdict ----------------------------------------------------===//
  if (!Slo.empty()) {
    Out += "## SLO\n\n";
    Out += "| indicator | rule | actual | status |\n|---|---|---|---|\n";
    bool AllPass = true;
    for (const SloResult &R : Slo) {
      AllPass = AllPass && R.Pass;
      Out += "| " + R.Rule.Indicator + " | " +
             (R.Rule.IsUpper ? "<= " : ">= ") + renderNumber(R.Rule.Bound) +
             " | " + (R.Known ? renderRate(R.Actual) : "unknown") + " | " +
             (R.Pass ? "ok" : "**BREACH**") + " |\n";
    }
    Out += "\nSLO: " + std::string(AllPass ? "**PASS**" : "**FAIL**") +
           "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Sweep statistics store
//===----------------------------------------------------------------------===//

double SweepIndicatorStats::stat(const std::string &Name,
                                 bool &Known) const {
  Known = true;
  if (Name.empty() || Name == "mean")
    return Mean;
  if (Name == "ci95")
    return Ci95;
  if (Name == "p50")
    return P50;
  if (Name == "p90")
    return P90;
  if (Name == "p99")
    return P99;
  if (Name == "min")
    return Min;
  if (Name == "max")
    return Max;
  Known = false;
  return std::numeric_limits<double>::quiet_NaN();
}

const SweepIndicatorStats *
SweepScenario::indicator(const std::string &Name) const {
  auto It = Indicators.find(Name);
  return It == Indicators.end() ? nullptr : &It->second;
}

std::string SweepScenario::axisValue(const std::string &Name) const {
  for (const auto &[Axis, Value] : Axes)
    if (Axis == Name)
      return Value;
  return std::string();
}

/// NaN-aware CSV / table cell rendering: undefined statistics read
/// "n/a", never a fake number.
static std::string renderStat(double X) {
  return std::isnan(X) ? "n/a" : renderNumber(X);
}

static const char SweepHeader[] =
    "scenario,axes,indicator,n,mean,stddev,ci95,p50,p90,p99,min,max";

std::string cws::obs::sweepCsv(const SweepStore &S) {
  std::string Out = "# cws-sweep statistics\n# sweep runs=" +
                    std::to_string(S.Runs) +
                    " seeds=" + std::to_string(S.Seeds) + "\n";
  Out += SweepHeader;
  Out += "\n";
  for (const SweepScenario &Sc : S.Scenarios) {
    std::string Axes;
    for (const auto &[Axis, Value] : Sc.Axes) {
      if (!Axes.empty())
        Axes += ';';
      Axes += Axis + "=" + Value;
    }
    // std::map order: indicators render sorted by name.
    for (const auto &[Name, St] : Sc.Indicators) {
      Out += Sc.Id + "," + Axes + "," + Name + "," + std::to_string(St.N) +
             "," + renderStat(St.Mean) + "," + renderStat(St.Stddev) + "," +
             renderStat(St.Ci95) + "," + renderStat(St.P50) + "," +
             renderStat(St.P90) + "," + renderStat(St.P99) + "," +
             renderStat(St.Min) + "," + renderStat(St.Max) + "\n";
    }
  }
  return Out;
}

/// Parses a CSV statistic cell: "n/a" -> NaN, else a double.
static bool parseStatField(const std::string &Field, double &Out) {
  if (Field == "n/a") {
    Out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char *End = nullptr;
  Out = std::strtod(Field.c_str(), &End);
  return End != Field.c_str() && !*End;
}

bool cws::obs::parseSweepCsv(const std::string &Text, SweepStore &Out,
                             std::string &Error) {
  Out = SweepStore{};
  size_t Pos = 0, LineNo = 0;
  bool SawHeader = false;
  // Scenario rows arrive grouped; remember the index of each id so
  // out-of-order files still pool correctly.
  std::map<std::string, size_t> Index;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      const std::string Meta = "# sweep ";
      if (Line.compare(0, Meta.size(), Meta) == 0) {
        std::string Rest = Line.substr(Meta.size());
        size_t RunsAt = Rest.find("runs=");
        size_t SeedsAt = Rest.find("seeds=");
        if (RunsAt != std::string::npos)
          Out.Runs = std::strtoull(Rest.c_str() + RunsAt + 5, nullptr, 10);
        if (SeedsAt != std::string::npos)
          Out.Seeds = std::strtoull(Rest.c_str() + SeedsAt + 6, nullptr, 10);
      }
      continue;
    }
    if (!SawHeader) {
      if (Line != SweepHeader) {
        Error = "line " + std::to_string(LineNo) + ": expected header '" +
                std::string(SweepHeader) + "'";
        return false;
      }
      SawHeader = true;
      continue;
    }
    std::vector<std::string> Fields;
    size_t Start = 0;
    while (true) {
      size_t Comma = Line.find(',', Start);
      if (Comma == std::string::npos) {
        Fields.push_back(Line.substr(Start));
        break;
      }
      Fields.push_back(Line.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    if (Fields.size() != 12) {
      Error = "line " + std::to_string(LineNo) + ": expected 12 fields, got " +
              std::to_string(Fields.size());
      return false;
    }
    size_t ScIdx;
    if (auto It = Index.find(Fields[0]); It != Index.end()) {
      ScIdx = It->second;
    } else {
      ScIdx = Out.Scenarios.size();
      Index.emplace(Fields[0], ScIdx);
      SweepScenario Sc;
      Sc.Id = Fields[0];
      // axes: `name=value` pairs joined by ';'.
      const std::string &Axes = Fields[1];
      size_t APos = 0;
      while (APos < Axes.size()) {
        size_t Semi = Axes.find(';', APos);
        if (Semi == std::string::npos)
          Semi = Axes.size();
        std::string Pair = Axes.substr(APos, Semi - APos);
        APos = Semi + 1;
        size_t Eq = Pair.find('=');
        if (Eq == std::string::npos || Eq == 0) {
          Error = "line " + std::to_string(LineNo) + ": bad axes entry '" +
                  Pair + "'";
          return false;
        }
        Sc.Axes.emplace_back(Pair.substr(0, Eq), Pair.substr(Eq + 1));
      }
      Out.Scenarios.push_back(std::move(Sc));
    }
    SweepIndicatorStats St;
    char *End = nullptr;
    St.N = std::strtoull(Fields[3].c_str(), &End, 10);
    if (End == Fields[3].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad n '" + Fields[3] +
              "'";
      return false;
    }
    double *Slots[] = {&St.Mean, &St.Stddev, &St.Ci95, &St.P50,
                       &St.P90,  &St.P99,    &St.Min,  &St.Max};
    for (size_t I = 0; I < 8; ++I) {
      if (!parseStatField(Fields[4 + I], *Slots[I])) {
        Error = "line " + std::to_string(LineNo) + ": bad value '" +
                Fields[4 + I] + "'";
        return false;
      }
    }
    if (Fields[2].empty()) {
      Error = "line " + std::to_string(LineNo) + ": missing indicator name";
      return false;
    }
    Out.Scenarios[ScIdx].Indicators[Fields[2]] = St;
  }
  if (!SawHeader) {
    Error = "empty file";
    return false;
  }
  return true;
}

std::vector<SweepSloResult>
cws::obs::evaluateSweepSlo(const std::vector<SloRule> &Rules,
                           const SweepStore &S) {
  std::vector<SweepSloResult> Out;
  for (const SloRule &R : Rules) {
    SweepSloResult Res;
    Res.Rule = R;
    Res.Worst = std::numeric_limits<double>::quiet_NaN();
    bool StatKnown = true;
    for (const SweepScenario &Sc : S.Scenarios) {
      const SweepIndicatorStats *St = Sc.indicator(R.Indicator);
      if (!St || St->N == 0) {
        ++Res.Skipped;
        continue;
      }
      double Value = St->stat(R.Stat, StatKnown);
      if (!StatKnown)
        break;
      ++Res.Evaluated;
      // Track the scenario closest to (or deepest past) the bound.
      bool Worse = std::isnan(Res.Worst) ||
                   (R.IsUpper ? Value > Res.Worst : Value < Res.Worst);
      if (Worse) {
        Res.Worst = Value;
        Res.WorstScenario = Sc.Id;
      }
    }
    // Fail closed: unknown statistic, or an indicator no scenario
    // produced (a typo or a degenerate grid must not pass the gate).
    Res.Known = StatKnown && Res.Evaluated > 0;
    if (Res.Known) {
      // NaN comparisons are false, so an undefined worst value breaches.
      Res.Pass = R.IsUpper ? Res.Worst <= R.Bound : Res.Worst >= R.Bound;
    }
    Out.push_back(std::move(Res));
  }
  return Out;
}

namespace {
/// A scenario's position along one numeric axis, with the context key
/// formed by every *other* axis value.
struct AxisPoint {
  double Axis = 0.0;
  double Value = 0.0;
  std::string Context;
};
} // namespace

std::vector<SweepCrossing>
cws::obs::estimateSweepCrossings(const SweepStore &S,
                                 const std::string &Indicator,
                                 const std::string &Stat, double Bound) {
  std::vector<SweepCrossing> Out;
  if (S.Scenarios.empty())
    return Out;
  // Numeric axes: every scenario value parses as a double and at least
  // two distinct values exist.
  std::vector<std::string> AxisNames;
  for (const auto &[Axis, Value] : S.Scenarios.front().Axes)
    AxisNames.push_back(Axis);
  for (const std::string &Axis : AxisNames) {
    std::set<std::string> Distinct;
    bool Numeric = true;
    for (const SweepScenario &Sc : S.Scenarios) {
      std::string V = Sc.axisValue(Axis);
      if (V.empty()) {
        Numeric = false;
        break;
      }
      char *End = nullptr;
      std::strtod(V.c_str(), &End);
      if (End == V.c_str() || *End) {
        Numeric = false;
        break;
      }
      Distinct.insert(V);
    }
    if (!Numeric || Distinct.size() < 2)
      continue;
    // Group scenarios by the other axes (std::map: deterministic group
    // order), then walk each group along this axis.
    std::map<std::string, std::vector<AxisPoint>> Groups;
    for (const SweepScenario &Sc : S.Scenarios) {
      const SweepIndicatorStats *St = Sc.indicator(Indicator);
      if (!St || St->N == 0)
        continue;
      bool Known = true;
      double Value = St->stat(Stat, Known);
      if (!Known || std::isnan(Value))
        continue;
      AxisPoint P;
      P.Axis = std::strtod(Sc.axisValue(Axis).c_str(), nullptr);
      P.Value = Value;
      for (const auto &[Other, OtherValue] : Sc.Axes) {
        if (Other == Axis)
          continue;
        if (!P.Context.empty())
          P.Context += ", ";
        P.Context += Other + "=" + OtherValue;
      }
      Groups[P.Context].push_back(P);
    }
    for (auto &[Context, Points] : Groups) {
      std::sort(Points.begin(), Points.end(),
                [](const AxisPoint &A, const AxisPoint &B) {
                  return A.Axis < B.Axis;
                });
      for (size_t I = 1; I < Points.size(); ++I) {
        const AxisPoint &Lo = Points[I - 1];
        const AxisPoint &Hi = Points[I];
        double DLo = Lo.Value - Bound;
        double DHi = Hi.Value - Bound;
        // A crossing needs a sign change; a segment whose endpoint sits
        // exactly on the bound counts (interpolation lands on it).
        if ((DLo > 0) == (DHi > 0) && DLo != 0 && DHi != 0)
          continue;
        if (Hi.Axis == Lo.Axis)
          continue;
        SweepCrossing C;
        C.Axis = Axis;
        C.Indicator = Stat.empty() || Stat == "mean"
                          ? Indicator
                          : Indicator + "." + Stat;
        C.Bound = Bound;
        C.LoAxis = Lo.Axis;
        C.HiAxis = Hi.Axis;
        C.LoValue = Lo.Value;
        C.HiValue = Hi.Value;
        C.At = DHi == DLo ? Lo.Axis
                          : Lo.Axis + (Bound - Lo.Value) *
                                          (Hi.Axis - Lo.Axis) /
                                          (Hi.Value - Lo.Value);
        C.Context = Context;
        Out.push_back(std::move(C));
      }
    }
  }
  return Out;
}

/// "0.042 ± 0.011" (mean ± CI95), or "n/a" without samples.
static std::string renderMeanCi(const SweepIndicatorStats *St) {
  if (!St || St->N == 0 || std::isnan(St->Mean))
    return "n/a";
  std::string Out = renderRate(St->Mean);
  if (St->N > 1 && !std::isnan(St->Ci95))
    Out += " ± " + renderRate(St->Ci95);
  return Out;
}

static std::string renderStatCell(const SweepIndicatorStats *St,
                                  const char *Stat) {
  if (!St || St->N == 0)
    return "n/a";
  bool Known = true;
  double V = St->stat(Stat, Known);
  return !Known || std::isnan(V) ? "n/a" : renderRate(V);
}

std::string cws::obs::renderSweepReport(const SweepStore &S,
                                        const std::vector<SweepSloResult> &Slo) {
  std::string Out = "# CWS sweep report\n\n";

  //===--- Overview -------------------------------------------------------===//
  std::set<std::string> IndicatorNames;
  for (const SweepScenario &Sc : S.Scenarios)
    for (const auto &[Name, St] : Sc.Indicators)
      IndicatorNames.insert(Name);
  Out += "## Overview\n\n";
  Out += "| | |\n|---|---|\n";
  Out += "| scenarios | " + std::to_string(S.Scenarios.size()) + " |\n";
  Out += "| seed replicas per scenario | " + std::to_string(S.Seeds) + " |\n";
  Out += "| runs pooled | " + std::to_string(S.Runs) + " |\n";
  Out += "| indicators | " + std::to_string(IndicatorNames.size()) + " |\n\n";

  //===--- Per-scenario QoS -----------------------------------------------===//
  // The curated columns; the CSV store carries every indicator.
  static const char *KeyIndicators[] = {"deadline_miss_rate", "commit_rate",
                                        "reallocations_per_commit",
                                        "mean_node_busy"};
  Out += "## Per-scenario QoS (mean ± 95% CI across seeds)\n\n";
  Out += "| scenario | n | miss rate | miss p90 | commit rate | "
         "realloc/commit | node busy |\n";
  Out += "|---|---|---|---|---|---|---|\n";
  for (const SweepScenario &Sc : S.Scenarios) {
    uint64_t N = 0;
    for (const char *Key : KeyIndicators)
      if (const SweepIndicatorStats *St = Sc.indicator(Key))
        N = std::max(N, St->N);
    const SweepIndicatorStats *Miss = Sc.indicator("deadline_miss_rate");
    Out += "| " + Sc.Id + " | " + std::to_string(N) + " | " +
           renderMeanCi(Miss) + " | " + renderStatCell(Miss, "p90") + " | " +
           renderMeanCi(Sc.indicator("commit_rate")) + " | " +
           renderMeanCi(Sc.indicator("reallocations_per_commit")) + " | " +
           renderMeanCi(Sc.indicator("mean_node_busy")) + " |\n";
  }
  Out += "\nFull per-indicator statistics (p50/p90/p99, min/max) are in "
         "the sweep CSV store.\n\n";

  //===--- Per-axis trends ------------------------------------------------===//
  // Marginal means: scenarios sharing one axis value averaged together
  // (each scenario weighted equally).
  if (!S.Scenarios.empty()) {
    for (const auto &[Axis, FirstValue] : S.Scenarios.front().Axes) {
      std::set<std::string> Distinct;
      for (const SweepScenario &Sc : S.Scenarios)
        Distinct.insert(Sc.axisValue(Axis));
      if (Distinct.size() < 2)
        continue;
      // Axis values in grid order (first-seen across scenarios), so
      // numeric axes render in sweep order, not lexicographic.
      std::vector<std::string> Ordered;
      for (const SweepScenario &Sc : S.Scenarios) {
        std::string V = Sc.axisValue(Axis);
        if (std::find(Ordered.begin(), Ordered.end(), V) == Ordered.end())
          Ordered.push_back(V);
      }
      Out += "## Trend along " + Axis + "\n\n";
      Out += "| " + Axis + " | scenarios | miss rate | commit rate | "
             "realloc/commit | node busy |\n";
      Out += "|---|---|---|---|---|---|\n";
      for (const std::string &V : Ordered) {
        double Sums[4] = {0, 0, 0, 0};
        uint64_t Counts[4] = {0, 0, 0, 0};
        uint64_t Members = 0;
        for (const SweepScenario &Sc : S.Scenarios) {
          if (Sc.axisValue(Axis) != V)
            continue;
          ++Members;
          for (size_t K = 0; K < 4; ++K) {
            const SweepIndicatorStats *St = Sc.indicator(KeyIndicators[K]);
            if (St && St->N > 0 && !std::isnan(St->Mean)) {
              Sums[K] += St->Mean;
              ++Counts[K];
            }
          }
        }
        Out += "| " + V + " | " + std::to_string(Members) + " |";
        for (size_t K = 0; K < 4; ++K)
          Out += std::string(" ") +
                 (Counts[K] ? renderRate(Sums[K] /
                                         static_cast<double>(Counts[K]))
                            : "n/a") +
                 " |";
        Out += "\n";
      }
      Out += "\n";
    }
  }

  //===--- Crossing points ------------------------------------------------===//
  // Where each SLO rule's statistic crosses its bound along numeric
  // axes — the capacity-question answers ("at what arrival rate does
  // the miss rate cross 5%?").
  std::vector<SweepCrossing> Crossings;
  for (const SweepSloResult &R : Slo) {
    std::vector<SweepCrossing> C = estimateSweepCrossings(
        S, R.Rule.Indicator, R.Rule.Stat, R.Rule.Bound);
    Crossings.insert(Crossings.end(), C.begin(), C.end());
  }
  if (!Slo.empty()) {
    Out += "## Crossing points\n\n";
    if (Crossings.empty()) {
      Out += "No SLO bound is crossed along any numeric axis.\n\n";
    } else {
      for (const SweepCrossing &C : Crossings) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%.3g", C.At);
        Out += "- `" + C.Indicator + "` crosses " + renderNumber(C.Bound) +
               " between " + C.Axis + "=" + renderNumber(C.LoAxis) + " (" +
               renderRate(C.LoValue) + ") and " + C.Axis + "=" +
               renderNumber(C.HiAxis) + " (" + renderRate(C.HiValue) +
               ") at ≈ " + Buf;
        if (!C.Context.empty())
          Out += " (" + C.Context + ")";
        Out += "\n";
      }
      Out += "\n";
    }
  }

  //===--- SLO verdict ----------------------------------------------------===//
  if (!Slo.empty()) {
    Out += "## SLO (gating pooled statistics across seeds)\n\n";
    Out += "| rule | bound | worst scenario | actual | status |\n";
    Out += "|---|---|---|---|---|\n";
    bool AllPass = true;
    for (const SweepSloResult &R : Slo) {
      AllPass = AllPass && R.Pass;
      Out += "| " + R.Rule.fullName() + " | " +
             (R.Rule.IsUpper ? "<= " : ">= ") + renderNumber(R.Rule.Bound) +
             " | " + (R.Known ? R.WorstScenario : "-") + " | " +
             (R.Known ? renderRate(R.Worst) : "unknown") + " | " +
             (R.Pass ? "ok" : "**BREACH**") + " |\n";
    }
    Out += "\nSLO: " + std::string(AllPass ? "**PASS**" : "**FAIL**") +
           "\n";
  }
  return Out;
}
