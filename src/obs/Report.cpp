//===-- obs/Report.cpp - Run reports and SLO evaluation -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace cws;
using namespace cws::obs;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

static const char TimeSeriesHeader[] = "seq,tick,reason,series,node,flow,value";

bool cws::obs::parseTimeSeriesCsv(const std::string &Text,
                                  ParsedTimeSeries &Out,
                                  std::string &Error) {
  Out.Rows.clear();
  size_t Pos = 0, LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    if (!SawHeader) {
      if (Line != TimeSeriesHeader) {
        Error = "line 1: expected header '" + std::string(TimeSeriesHeader) +
                "'";
        return false;
      }
      SawHeader = true;
      continue;
    }
    // Values never contain commas (series/reason names are literals,
    // flow labels are strategy names), so a plain split suffices.
    std::vector<std::string> Fields;
    size_t Start = 0;
    while (true) {
      size_t Comma = Line.find(',', Start);
      if (Comma == std::string::npos) {
        Fields.push_back(Line.substr(Start));
        break;
      }
      Fields.push_back(Line.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    if (Fields.size() != 7) {
      Error = "line " + std::to_string(LineNo) + ": expected 7 fields, got " +
              std::to_string(Fields.size());
      return false;
    }
    TimeSeriesRow R;
    char *End = nullptr;
    R.Seq = std::strtoull(Fields[0].c_str(), &End, 10);
    if (End == Fields[0].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad seq '" + Fields[0] +
              "'";
      return false;
    }
    R.At = std::strtoll(Fields[1].c_str(), &End, 10);
    if (End == Fields[1].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad tick '" + Fields[1] +
              "'";
      return false;
    }
    R.Reason = Fields[2];
    R.Series = Fields[3];
    if (!Fields[4].empty()) {
      R.Node = std::strtoll(Fields[4].c_str(), &End, 10);
      if (End == Fields[4].c_str() || *End) {
        Error = "line " + std::to_string(LineNo) + ": bad node '" +
                Fields[4] + "'";
        return false;
      }
    }
    R.Flow = Fields[5];
    R.Value = std::strtod(Fields[6].c_str(), &End);
    if (End == Fields[6].c_str() || *End) {
      Error = "line " + std::to_string(LineNo) + ": bad value '" +
              Fields[6] + "'";
      return false;
    }
    Out.Rows.push_back(std::move(R));
  }
  if (!SawHeader) {
    Error = "empty file";
    return false;
  }
  return true;
}

bool cws::obs::parseSloFile(const std::string &Text,
                            std::vector<SloRule> &Out, std::string &Error) {
  Out.clear();
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    // Trim.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);
    SloRule R;
    size_t Op = Line.find("<=");
    if (Op != std::string::npos) {
      R.IsUpper = true;
    } else {
      Op = Line.find(">=");
      if (Op == std::string::npos) {
        Error = "line " + std::to_string(LineNo) +
                ": expected 'indicator <= bound' or 'indicator >= bound'";
        return false;
      }
      R.IsUpper = false;
    }
    std::string Name = Line.substr(0, Op);
    if (size_t NE = Name.find_last_not_of(" \t"); NE != std::string::npos)
      Name = Name.substr(0, NE + 1);
    if (Name.empty()) {
      Error = "line " + std::to_string(LineNo) + ": missing indicator name";
      return false;
    }
    R.Indicator = Name;
    std::string Bound = Line.substr(Op + 2);
    char *End = nullptr;
    R.Bound = std::strtod(Bound.c_str(), &End);
    if (End == Bound.c_str()) {
      Error = "line " + std::to_string(LineNo) + ": bad bound '" + Bound +
              "'";
      return false;
    }
    while (*End == ' ' || *End == '\t')
      ++End;
    if (*End) {
      Error = "line " + std::to_string(LineNo) + ": trailing junk '" +
              std::string(End) + "'";
      return false;
    }
    Out.push_back(std::move(R));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Indicators
//===----------------------------------------------------------------------===//

std::map<std::string, double>
cws::obs::computeIndicators(const ParsedJournal &J,
                            const ParsedTimeSeries &Ts) {
  std::map<std::string, double> Ind;

  // Journal-side counts and the per-job completion/deadline join.
  struct JobOutcome {
    int64_t Deadline = 0;
    bool HaveDeadline = false;
    int64_t Completion = 0;
    bool HaveCompletion = false;
    bool Committed = false;
  };
  std::map<int64_t, JobOutcome> Jobs;
  double Submitted = 0, Committed = 0, Rejected = 0, Reallocations = 0,
         Invalidations = 0, EnvChanges = 0;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.Kind == "arrival") {
      ++Submitted;
      if (const int64_t *D = E.arg("deadline")) {
        Jobs[E.JobId].Deadline = *D;
        Jobs[E.JobId].HaveDeadline = true;
      }
    } else if (E.Kind == "commit") {
      ++Committed;
      JobOutcome &O = Jobs[E.JobId];
      O.Committed = true;
      // The journal's "makespan" is Distribution::makespan(), the
      // absolute completion tick the deadline check compares against.
      const int64_t *Makespan = E.arg("makespan");
      if (Makespan && !O.HaveCompletion)
        O.Completion = *Makespan;
    } else if (E.Kind == "execution") {
      // Actual completion under deviations overrides the committed
      // forecast.
      if (const int64_t *C = E.arg("completion")) {
        Jobs[E.JobId].Completion = *C;
        Jobs[E.JobId].HaveCompletion = true;
      }
    } else if (E.Kind == "reject") {
      ++Rejected;
    } else if (E.Kind == "reallocate") {
      ++Reallocations;
    } else if (E.Kind == "invalidate") {
      ++Invalidations;
    } else if (E.Kind == "env.change") {
      ++EnvChanges;
    }
  }
  double Missed = 0, Judged = 0;
  for (const auto &[JobId, O] : Jobs) {
    if (!O.Committed || !O.HaveDeadline)
      continue;
    ++Judged;
    if (O.Completion > O.Deadline)
      ++Missed;
  }
  Ind["jobs_submitted"] = Submitted;
  Ind["jobs_committed"] = Committed;
  Ind["jobs_rejected"] = Rejected;
  Ind["commit_rate"] = Submitted > 0 ? Committed / Submitted : 0.0;
  Ind["reject_rate"] = Submitted > 0 ? Rejected / Submitted : 0.0;
  // With no committed job carrying a deadline the rate is undefined:
  // leaving it out (instead of a reassuring 0.0) makes an SLO rule on
  // it fail closed through the unknown-indicator path, and the report
  // renders n/a.
  if (Judged > 0)
    Ind["deadline_miss_rate"] = Missed / Judged;
  Ind["reallocations"] = Reallocations;
  Ind["invalidations"] = Invalidations;
  Ind["env_changes"] = EnvChanges;
  Ind["reallocations_per_commit"] =
      Reallocations / (Committed > 0 ? Committed : 1.0);

  // Time-series side: per-node mean contention (busy + background).
  if (!Ts.empty()) {
    std::map<int64_t, std::pair<double, double>> NodeSum; // sum, count
    for (const TimeSeriesRow &R : Ts.Rows) {
      if (R.Node < 0 ||
          (R.Series != "util_busy" && R.Series != "util_background"))
        continue;
      NodeSum[R.Node].first += R.Value;
      NodeSum[R.Node].second += 1.0;
    }
    if (!NodeSum.empty()) {
      double Mean = 0, Max = 0;
      for (const auto &[Node, SC] : NodeSum) {
        // Busy and background rows of one node count separately, so
        // the per-node mean of their sum is 2 * (sum / rows).
        double NodeMean = SC.second > 0 ? 2.0 * SC.first / SC.second : 0.0;
        Mean += NodeMean;
        Max = std::max(Max, NodeMean);
      }
      Mean /= static_cast<double>(NodeSum.size());
      Ind["mean_node_busy"] = Mean;
      Ind["max_node_busy"] = Max;
    }
  }
  // Invalidation-pass sizing, when the sampler ran: probe values are
  // deltas since enable, so the last frame's value is the run total.
  for (const TimeSeriesRow &R : Ts.Rows) {
    if (R.Node >= 0)
      continue;
    if (R.Series == "env_scan_placements")
      Ind["env_scan_placements"] = R.Value;
    else if (R.Series == "env_index_placements")
      Ind["env_index_placements"] = R.Value;
    else if (R.Series == "env_index_candidates")
      Ind["env_index_candidates"] = R.Value;
  }
  return Ind;
}

std::vector<SloResult>
cws::obs::evaluateSlo(const std::vector<SloRule> &Rules,
                      const std::map<std::string, double> &Ind) {
  std::vector<SloResult> Out;
  for (const SloRule &R : Rules) {
    SloResult Res;
    Res.Rule = R;
    auto It = Ind.find(R.Indicator);
    if (It == Ind.end()) {
      // Unknown indicators fail closed: a typo must not silently pass.
      Res.Known = false;
      Res.Pass = false;
    } else {
      Res.Known = true;
      Res.Actual = It->second;
      Res.Pass = R.IsUpper ? Res.Actual <= R.Bound : Res.Actual >= R.Bound;
    }
    Out.push_back(std::move(Res));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

/// Fixed-precision rendering for rates and fractions; counts render
/// through renderNumber (no trailing ".000").
static std::string renderRate(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", X);
  return Buf;
}

static std::string renderPercent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Fraction);
  return Buf;
}

std::string cws::obs::renderRunReport(const ParsedJournal &J,
                                      const ParsedTimeSeries &Ts,
                                      const std::vector<SloResult> &Slo) {
  std::map<std::string, double> Ind = computeIndicators(J, Ts);
  auto Get = [&Ind](const char *Name) {
    auto It = Ind.find(Name);
    return It == Ind.end() ? 0.0 : It->second;
  };
  Tick Horizon = 0;
  for (const ParsedJournalEvent &E : J.Events)
    Horizon = std::max(Horizon, static_cast<Tick>(E.At));
  for (const TimeSeriesRow &R : Ts.Rows)
    Horizon = std::max(Horizon, R.At);

  std::string Out = "# CWS run report\n\n";

  //===--- Overview -------------------------------------------------------===//
  Out += "## Overview\n\n";
  Out += "| indicator | value |\n|---|---|\n";
  auto Row = [&Out](const std::string &K, const std::string &V) {
    Out += "| " + K + " | " + V + " |\n";
  };
  Row("run horizon (ticks)", std::to_string(Horizon));
  Row("jobs submitted", renderNumber(Get("jobs_submitted")));
  Row("jobs committed", renderNumber(Get("jobs_committed")));
  Row("jobs rejected", renderNumber(Get("jobs_rejected")));
  Row("commit rate", renderPercent(Get("commit_rate")));
  Row("deadline miss rate", Ind.count("deadline_miss_rate")
                                ? renderPercent(Get("deadline_miss_rate"))
                                : "n/a");
  Row("environment changes", renderNumber(Get("env_changes")));
  Row("invalidations", renderNumber(Get("invalidations")));
  Row("reallocations", renderNumber(Get("reallocations")));
  Row("reallocations per commit",
      renderRate(Get("reallocations_per_commit")));
  // Scan-vs-index comparison, present only when the run sampled the
  // invalidation probes (a scan run shows the first, an index run the
  // others — two runs of cws-report give the before/after).
  if (Ind.count("env_scan_placements"))
    Row("placements re-validated (scan)",
        renderNumber(Get("env_scan_placements")));
  if (Ind.count("env_index_candidates"))
    Row("index candidates re-validated",
        renderNumber(Get("env_index_candidates")));
  if (Ind.count("env_index_placements"))
    Row("placements re-validated (index)",
        renderNumber(Get("env_index_placements")));
  Out += "\n";

  //===--- Utilization ----------------------------------------------------===//
  Out += "## Utilization\n\n";
  // Per-node means over every frame that carried occupancy rows.
  struct NodeUtil {
    double Busy = 0, Background = 0, Reserved = 0;
    double BusyN = 0, BackgroundN = 0, ReservedN = 0;
    double meanBusy() const { return BusyN > 0 ? Busy / BusyN : 0; }
    double meanBackground() const {
      return BackgroundN > 0 ? Background / BackgroundN : 0;
    }
    double meanReserved() const {
      return ReservedN > 0 ? Reserved / ReservedN : 0;
    }
    double contention() const { return meanBusy() + meanBackground(); }
  };
  std::map<int64_t, NodeUtil> Nodes;
  for (const TimeSeriesRow &R : Ts.Rows) {
    if (R.Node < 0)
      continue;
    NodeUtil &N = Nodes[R.Node];
    if (R.Series == "util_busy") {
      N.Busy += R.Value;
      N.BusyN += 1;
    } else if (R.Series == "util_background") {
      N.Background += R.Value;
      N.BackgroundN += 1;
    } else if (R.Series == "util_reserved") {
      N.Reserved += R.Value;
      N.ReservedN += 1;
    }
  }
  if (Nodes.empty()) {
    Out += "No per-node series in the input (run with `--timeseries`).\n\n";
  } else {
    double MeanBusy = 0, MeanBackground = 0;
    for (const auto &[Id, N] : Nodes) {
      MeanBusy += N.meanBusy();
      MeanBackground += N.meanBackground();
    }
    MeanBusy /= static_cast<double>(Nodes.size());
    MeanBackground /= static_cast<double>(Nodes.size());
    Out += "Grid of " + std::to_string(Nodes.size()) +
           " nodes: mean busy (jobs) " + renderPercent(MeanBusy) +
           ", mean background " + renderPercent(MeanBackground) + ".\n\n";
    // Top-5 most contended: mean busy + background, ties to the lower
    // node id so the report is deterministic.
    std::vector<std::pair<int64_t, const NodeUtil *>> Ranked;
    for (const auto &[Id, N] : Nodes)
      Ranked.push_back({Id, &N});
    std::sort(Ranked.begin(), Ranked.end(),
              [](const auto &A, const auto &B) {
                if (A.second->contention() != B.second->contention())
                  return A.second->contention() > B.second->contention();
                return A.first < B.first;
              });
    if (Ranked.size() > 5)
      Ranked.resize(5);
    Out += "Most contended nodes:\n\n";
    Out += "| node | busy (jobs) | background | reserved (lookahead) |\n";
    Out += "|---|---|---|---|\n";
    for (const auto &[Id, N] : Ranked)
      Out += "| " + std::to_string(Id) + " | " +
             renderPercent(N->meanBusy()) + " | " +
             renderPercent(N->meanBackground()) + " | " +
             renderPercent(N->meanReserved()) + " |\n";
    Out += "\n";
  }

  //===--- Reallocation / invalidation timeline ---------------------------===//
  Out += "## Reallocation / invalidation timeline\n\n";
  double TotalChurn = Get("reallocations") + Get("invalidations");
  if (TotalChurn == 0) {
    Out += "No reallocations or invalidations recorded.\n\n";
  } else {
    // ~12 equal tick buckets across the run.
    const Tick Buckets = 12;
    Tick Width = Horizon / Buckets + 1;
    struct Bucket {
      int64_t Realloc = 0, Invalid = 0, Env = 0;
    };
    std::vector<Bucket> Hist(static_cast<size_t>(Buckets));
    for (const ParsedJournalEvent &E : J.Events) {
      auto Idx = static_cast<size_t>(E.At / Width);
      if (Idx >= Hist.size())
        Idx = Hist.size() - 1;
      if (E.Kind == "reallocate")
        ++Hist[Idx].Realloc;
      else if (E.Kind == "invalidate")
        ++Hist[Idx].Invalid;
      else if (E.Kind == "env.change")
        ++Hist[Idx].Env;
    }
    Out += "| ticks | env.changes | invalidations | reallocations |\n";
    Out += "|---|---|---|---|\n";
    for (size_t I = 0; I < Hist.size(); ++I) {
      Tick Lo = static_cast<Tick>(I) * Width;
      Tick Hi = Lo + Width - 1;
      Out += "| " + std::to_string(Lo) + "–" + std::to_string(Hi) +
             " | " + std::to_string(Hist[I].Env) + " | " +
             std::to_string(Hist[I].Invalid) + " | " +
             std::to_string(Hist[I].Realloc) + " |\n";
    }
    Out += "\n";
  }

  //===--- Per-flow QoS ---------------------------------------------------===//
  Out += "## Per-flow QoS\n\n";
  struct FlowCounts {
    int64_t Arrivals = 0, Commits = 0, Rejects = 0, Invalidations = 0,
            Reallocations = 0;
  };
  // std::map: flows render in ascending id order, independent of event
  // order.
  std::map<int64_t, FlowCounts> Flows;
  for (const ParsedJournalEvent &E : J.Events) {
    if (E.FlowId < 0 && E.JobId < 0)
      continue; // flowless marker events
    if (E.Kind == "arrival")
      ++Flows[E.FlowId].Arrivals;
    else if (E.Kind == "commit")
      ++Flows[E.FlowId].Commits;
    else if (E.Kind == "reject")
      ++Flows[E.FlowId].Rejects;
    else if (E.Kind == "invalidate")
      ++Flows[E.FlowId].Invalidations;
    else if (E.Kind == "reallocate")
      ++Flows[E.FlowId].Reallocations;
  }
  if (Flows.empty()) {
    Out += "No per-flow events in the journal.\n\n";
  } else {
    Out += "| flow | arrivals | commits | rejects | invalidations | "
           "reallocations | commit rate |\n";
    Out += "|---|---|---|---|---|---|---|\n";
    for (const auto &[Flow, C] : Flows) {
      double Rate = C.Arrivals > 0 ? static_cast<double>(C.Commits) /
                                         static_cast<double>(C.Arrivals)
                                   : 0.0;
      Out += "| " + (Flow < 0 ? std::string("-") : std::to_string(Flow)) +
             " | " + std::to_string(C.Arrivals) + " | " +
             std::to_string(C.Commits) + " | " + std::to_string(C.Rejects) +
             " | " + std::to_string(C.Invalidations) + " | " +
             std::to_string(C.Reallocations) + " | " + renderPercent(Rate) +
             " |\n";
    }
    Out += "\n";
  }

  //===--- SLO verdict ----------------------------------------------------===//
  if (!Slo.empty()) {
    Out += "## SLO\n\n";
    Out += "| indicator | rule | actual | status |\n|---|---|---|---|\n";
    bool AllPass = true;
    for (const SloResult &R : Slo) {
      AllPass = AllPass && R.Pass;
      Out += "| " + R.Rule.Indicator + " | " +
             (R.Rule.IsUpper ? "<= " : ">= ") + renderNumber(R.Rule.Bound) +
             " | " + (R.Known ? renderRate(R.Actual) : "unknown") + " | " +
             (R.Pass ? "ok" : "**BREACH**") + " |\n";
    }
    Out += "\nSLO: " + std::string(AllPass ? "**PASS**" : "**FAIL**") +
           "\n";
  }
  return Out;
}
