//===-- obs/Diff.h - Semantic differential run analysis ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured comparator behind `tools/cws-diff`: semantic diffs
/// over the run artifacts the stack emits, replacing byte-level `cmp`
/// with answers a scheduler engineer can act on.
///
///  - **Journal mode** aligns decision-journal events per job (the
///    global interleaving is an implementation detail of the shard
///    merge; the per-job causal chain is the contract), compares the
///    meta/provenance header field by field under a `MetaPolicy`
///    (shard count and CLI text legitimately differ between compared
///    invocations; seed, scenario and config hash must not, unless a
///    differential-oracle run says otherwise), and localizes the
///    *first* diverging (job, event) with both runs' cause chains —
///    "job 42 diverged at t=310: run A reallocated, run B committed"
///    instead of "byte 48211 differs".
///  - **Series mode** compares telemetry time-series rows under
///    per-series tolerance classes: exact for deterministic counter
///    deltas (the default), epsilon bands for derived ratios, and
///    excluded for wall-time-contaminated series (`*_us` / `*_ms` /
///    `*wall*` are excluded out of the box — sim artifacts never carry
///    them, but metrics-registry CSVs do).
///  - **Sweep mode** compares pooled per-scenario indicator
///    distributions: exact field equality first, then a CI-overlap
///    test on the means and a relative quantile-shift test on
///    p50/p90/p99, yielding a three-way verdict (identical /
///    compatible / diverged) that backs the baseline regression gate.
///
/// All comparisons are pure functions over the parsed artifact
/// structures, so tests pin verdicts and renderings without running
/// the binary. Exit-code convention of every consumer: 0 identical (or
/// statistically compatible when accepted), 1 divergence, 2 usage/IO
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_DIFF_H
#define CWS_OBS_DIFF_H

#include "obs/Journal.h"
#include "obs/Report.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cws {
namespace obs {

/// Which provenance fields of two compared artifacts may legitimately
/// differ. The default matches the common CI comparison — one run at
/// different lane/shard counts: the CLI text (it names per-run paths
/// and flags) and the shard count (results are shard-invariant) may
/// differ, the identity fields may not.
struct MetaPolicy {
  bool AllowSeed = false;
  bool AllowConfigHash = false;
  bool AllowScenario = false;
  bool AllowShards = true;
  bool AllowCli = true;
  /// Skip meta comparison entirely (legacy unstamped artifacts).
  bool Off = false;
};

/// Tolerance class of one time-series pattern.
enum class SeriesClass : uint8_t {
  /// Values must match exactly (deterministic counter deltas).
  Exact,
  /// |a - b| <= Eps passes (derived ratios, utilization fractions).
  Tolerance,
  /// The series is skipped entirely (wall-time histograms).
  Excluded,
};

/// One tolerance rule: glob `Pattern` (with `*` wildcards) -> class.
/// First matching rule wins; unmatched series default to Exact.
struct SeriesRule {
  std::string Pattern;
  SeriesClass Class = SeriesClass::Exact;
  double Eps = 0.0;
};

/// Comparison options shared by the three modes.
struct DiffOptions {
  MetaPolicy Meta;
  /// Tolerance rules checked in order; `defaultSeriesRules()` is
  /// prepended unless `NoDefaultSeriesRules`.
  std::vector<SeriesRule> Series;
  bool NoDefaultSeriesRules = false;
  /// Sweep mode: relative shift of p50/p90/p99 still considered
  /// compatible (|a-b| <= Tol * max(|a|, |b|)).
  double QuantileShiftTol = 0.10;
  /// Findings kept per result; the total is still counted.
  size_t MaxFindings = 20;
  /// Outcome mode only: compare a repair-mode run (A) against its
  /// rebuild oracle (B) up to the divergence staged repair is *meant*
  /// to cause. Staged repair strictly dominates the rebuild — its
  /// stage 3 *is* the rebuild, and stages 1/2 can keep placements of
  /// the stale plan that a from-scratch rebuild at Now can no longer
  /// reproduce — so the first stage-1/2 repair success is the moment
  /// the two runs' grids part ways. Three acceptances follow:
  ///  - **saves**: A=committed / B=rejected with a successful
  ///    `repair.stage` resolution on A's record for that job (any
  ///    stage — later stage-3 rebuilds run on the already-diverged
  ///    grid);
  ///  - **post-repair drift**: both verdicts decisive (committed or
  ///    rejected) and both decided at or after the first stage-1/2
  ///    repair tick — second-order crowding on the diverged grid
  ///    flips verdicts in either direction;
  ///  - everything else — any divergence before the first repair, or
  ///    involving an open/absent verdict — still fails, and accepted
  ///    drift must never leave A committing fewer jobs than B in
  ///    total (the dominance backstop).
  bool AllowRepairSaves = false;
};

/// The built-in wall-time exclusions (`*_us`, `*_ms`, `*wall*`).
std::vector<SeriesRule> defaultSeriesRules();

/// Matches \p Text against glob \p Pattern (`*` matches any run, no
/// other metacharacters).
bool globMatch(const std::string &Pattern, const std::string &Text);

/// Three-way comparison outcome.
enum class DiffVerdict : uint8_t {
  /// Semantically equal under the policy.
  Identical,
  /// Sweep mode only: not field-equal, but every difference passes the
  /// CI-overlap and quantile-shift tests.
  Compatible,
  Diverged,
};

const char *diffVerdictName(DiffVerdict V);

/// One localized difference ("meta.seed", "job 42", "series x seq 3").
struct DiffFinding {
  std::string Where;
  /// Rendered values from each run ("(absent)" when one side lacks
  /// the record).
  std::string A;
  std::string B;
};

/// Journal mode's first-divergence localization: the earliest (by
/// tick, then job) point where the two runs' causal chains part ways.
struct JournalDivergence {
  bool Present = false;
  int64_t JobId = -1;
  int64_t Tick = 0;
  /// 0-based position in the job's event sequence.
  size_t IndexInJob = 0;
  /// Inline renderings of the diverging event from each run.
  std::string EventA;
  std::string EventB;
  /// The job's cause chain from each run, up to and including the
  /// divergence, with triggers expanded to the environment change
  /// they reference.
  std::string ChainA;
  std::string ChainB;
};

/// Result of one comparison.
struct DiffResult {
  DiffVerdict Verdict = DiffVerdict::Identical;
  /// "journal" | "series" | "sweep".
  std::string Mode;
  std::vector<DiffFinding> MetaFindings;
  std::vector<DiffFinding> Findings;
  /// Total differences found (Findings is capped at MaxFindings).
  size_t TotalFindings = 0;
  /// Journal mode only.
  JournalDivergence First;
  /// One-line human verdict.
  std::string Summary;

  bool identical() const { return Verdict == DiffVerdict::Identical; }
};

/// Journal mode: per-job event alignment + selective meta comparison.
/// Raw `cause` ids are not compared (the cause is structural — the
/// job's previous event); `trigger` references are compared by the
/// content of the environment change they resolve to.
DiffResult diffJournals(const ParsedJournal &A, const ParsedJournal &B,
                        const DiffOptions &Opts = DiffOptions());

/// Outcome mode (`cws-diff --outcomes`): per-job terminal verdict
/// equivalence. Each job's commit/reject verdict must agree across the
/// two journals; placements, costs, event interleaving and repair
/// stages may all differ. This is the cross-reallocation-mode gate —
/// repair and rebuild runs legitimately schedule differently, but must
/// admit and reject the same jobs — except for the saves
/// `Opts.AllowRepairSaves` vouches for. Callers comparing across modes
/// pass `Opts.Meta.AllowConfigHash` (the reallocation mode is part of
/// the canonical config, so the hashes differ by construction).
DiffResult diffJournalOutcomes(const ParsedJournal &A, const ParsedJournal &B,
                               const DiffOptions &Opts = DiffOptions());

/// Series mode: row-by-row comparison under the tolerance rules.
DiffResult diffTimeSeries(const ParsedTimeSeries &A,
                          const ParsedTimeSeries &B,
                          const DiffOptions &Opts = DiffOptions());

/// Sweep mode: scenario/indicator alignment, exact check, then the
/// CI-overlap + quantile-shift compatibility tests.
DiffResult diffSweeps(const SweepStore &A, const SweepStore &B,
                      const DiffOptions &Opts = DiffOptions());

/// Renders the terse console form (one line per finding, first
/// divergence with both cause chains).
std::string renderDiffText(const DiffResult &R, const std::string &LabelA,
                           const std::string &LabelB);

/// Renders the Markdown diff report (`cws-diff --report`): verdict,
/// meta table, first divergence with cause chains, finding table.
/// Deterministic for fixed inputs.
std::string renderDiffReport(const DiffResult &R, const std::string &LabelA,
                             const std::string &LabelB);

/// Side-by-side causal timelines of one job from two runs plus their
/// first divergence — the `cws-explain --diff-job` passthrough.
std::string explainJobDiff(const ParsedJournal &A, const ParsedJournal &B,
                           int64_t JobId);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_DIFF_H
