//===-- obs/Report.h - Run reports and SLO evaluation -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis layer behind `tools/cws-report`: it joins a decision
/// journal (`--journal`) with a telemetry time series (`--timeseries`,
/// CSV form) into one Markdown run report — utilization summary with
/// the most-contended nodes, a reallocation/invalidation timeline,
/// and a per-flow QoS table — and evaluates service-level objectives
/// from a plain-text SLO file:
///
///   # lines are comments; each rule is `indicator <= bound` (or >=)
///   deadline_miss_rate    <= 0.05
///   reallocations_per_commit <= 0.5
///
/// Indicators are derived from the journal and series (see
/// `computeIndicators`); a rule naming an unknown indicator fails
/// closed. `cws-report --slo` exits nonzero on any breach, making the
/// report a CI-gateable alerting analog.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_REPORT_H
#define CWS_OBS_REPORT_H

#include "obs/Journal.h"
#include "obs/Profiler.h"
#include "sim/Time.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cws {
namespace obs {

/// One row of a tidy time-series CSV (`TimeSeries::csv()` schema:
/// `seq,tick,reason,series,node,flow,value`).
struct TimeSeriesRow {
  uint64_t Seq = 0;
  Tick At = 0;
  std::string Reason;
  std::string Series;
  /// Node id of per-node rows, -1 otherwise.
  int64_t Node = -1;
  /// Flow label of per-flow rows, empty otherwise.
  std::string Flow;
  double Value = 0.0;
};

/// A parsed time-series file.
struct ParsedTimeSeries {
  /// Provenance stamp of the leading `# provenance ...` comment;
  /// `!Prov.valid()` for unstamped files.
  RunProvenance Prov;
  std::vector<TimeSeriesRow> Rows;
  bool empty() const { return Rows.empty(); }
};

/// Parses CSV text written by `TimeSeries::csv()`. Leading `#` comment
/// lines are allowed before the header; a `# provenance ...` comment
/// fills `Out.Prov`. Returns false and sets \p Error (with a 1-based
/// line number) on malformed input.
bool parseTimeSeriesCsv(const std::string &Text, ParsedTimeSeries &Out,
                        std::string &Error);

/// One SLO rule: `Indicator <= Bound` (IsUpper) or `Indicator >=
/// Bound`. The sweep grammar adds a pooled-statistic suffix and scope:
///
///   deadline_miss_rate.p90 <= 0.05 across seeds
///
/// parses to Indicator="deadline_miss_rate", Stat="p90",
/// AcrossSeeds=true. Stat rules gate per-scenario pooled distributions
/// (`evaluateSweepSlo`); in single-run evaluation they are unknown and
/// fail closed.
struct SloRule {
  std::string Indicator;
  bool IsUpper = true;
  double Bound = 0.0;
  /// Pooled statistic: "" (run value; scenario mean in sweep mode) or
  /// one of "mean", "p50", "p90", "p99", "min", "max", "ci95".
  std::string Stat;
  /// True for rules suffixed `across seeds` — explicit sweep scope.
  bool AcrossSeeds = false;

  /// The rule's full spelled name ("deadline_miss_rate.p90").
  std::string fullName() const {
    return Stat.empty() ? Indicator : Indicator + "." + Stat;
  }
};

/// Parses an SLO file: one rule per line (`indicator <= bound`,
/// `indicator >= bound`, optional `.stat` suffix on the indicator and
/// `across seeds` trailer after the bound), `#` comments and blank
/// lines ignored. Returns false and sets \p Error on a malformed line.
bool parseSloFile(const std::string &Text, std::vector<SloRule> &Out,
                  std::string &Error);

/// Derives the gateable indicators from \p J joined with \p Ts:
///
///  - `jobs_submitted` / `jobs_committed` / `jobs_rejected` — journal
///    arrival / commit / reject event counts;
///  - `commit_rate` / `reject_rate` — of submitted jobs (0 when none);
///  - `deadline_miss_rate` — committed jobs whose completion (actual
///    execution completion when recorded, else the committed makespan,
///    an absolute tick) exceeds their arrival deadline, over committed
///    jobs;
///  - `reallocations` / `invalidations` / `env_changes` — event counts;
///  - `reallocations_per_commit` — reallocations over committed jobs
///    (over 1 when nothing committed);
///  - `mean_commit_cost` / `mean_commit_cf` — mean committed schedule
///    cost / cost-function value (absent with no commits);
///  - `mean_node_busy` / `max_node_busy` — grid mean / per-node max of
///    the mean `util_busy` + `util_background` fraction (time-series
///    only; absent without one).
std::map<std::string, double> computeIndicators(const ParsedJournal &J,
                                                const ParsedTimeSeries &Ts);

/// Outcome of one rule against the computed indicators.
struct SloResult {
  SloRule Rule;
  /// The indicator's value; 0 when unknown.
  double Actual = 0.0;
  /// False when the rule names no computed indicator (fails closed).
  bool Known = false;
  bool Pass = false;
};

std::vector<SloResult> evaluateSlo(const std::vector<SloRule> &Rules,
                                   const std::map<std::string, double> &Ind);

/// Adds the `phase.*` indicators of profile \p P to \p Ind, making
/// phase budgets SLO-gateable: per phase `phase.<name>.count`,
/// `.total_us`, `.self_us`, `.p50_us`, `.p99_us`, plus one
/// `phase.<name>.<counter>` per work counter. Without an attached
/// profile these indicators stay unknown, so `phase.*` rules fail
/// closed — a budget that silently passes because nothing was profiled
/// is not a budget.
void addProfileIndicators(const ParsedProfile &P,
                          std::map<std::string, double> &Ind);

/// Renders the "Where the time went" Markdown section of profile \p P:
/// every phase ranked by self time, with counts, total/self wall time,
/// per-scope quantiles and the work-counter context. Deterministic for
/// a fixed profile up to the measured times it reports.
std::string renderProfileSection(const ParsedProfile &P);

/// Renders the Markdown run report: overview, utilization summary with
/// the top-5 most-contended nodes, the reallocation / invalidation
/// timeline, the per-flow QoS table (flows in ascending id order), the
/// "Where the time went" phase breakdown when a profile \p Profile is
/// attached, and the SLO verdict when \p Slo is non-empty.
/// Deterministic for fixed inputs.
std::string renderRunReport(const ParsedJournal &J,
                            const ParsedTimeSeries &Ts,
                            const std::vector<SloResult> &Slo,
                            const ParsedProfile *Profile = nullptr);

//===----------------------------------------------------------------------===//
// Sweep statistics store (cws-sweep output, cws-report --sweep input)
//===----------------------------------------------------------------------===//

/// Pooled statistics of one QoS indicator across the seed replicas of
/// one scenario. All fields are NaN when `N == 0` (rendered "n/a"; SLO
/// comparisons against NaN fail closed).
struct SweepIndicatorStats {
  /// Runs of the scenario that produced the indicator (an indicator
  /// like `deadline_miss_rate` is undefined for runs with no judged
  /// jobs, so N may be below the scenario's run count).
  uint64_t N = 0;
  double Mean = 0.0;
  /// Sample standard deviation (0 for N == 1).
  double Stddev = 0.0;
  /// Half-width of the two-sided 95% confidence interval of the mean,
  /// `tCritical95(N-1) * Stddev / sqrt(N)` (0 for N == 1).
  double Ci95 = 0.0;
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  /// Value of the named statistic ("mean", "ci95", "p50", "p90",
  /// "p99", "min", "max"); sets \p Known false on an unknown name.
  double stat(const std::string &Name, bool &Known) const;
};

/// One scenario of a sweep: its id, axis assignment, and pooled
/// per-indicator statistics.
struct SweepScenario {
  /// Token-shaped id ("arrival_scale=0.5+strategy=S2"); never contains
  /// whitespace or commas.
  std::string Id;
  /// Axis name -> value text, in grid declaration order.
  std::vector<std::pair<std::string, std::string>> Axes;
  std::map<std::string, SweepIndicatorStats> Indicators;

  const SweepIndicatorStats *indicator(const std::string &Name) const;
  /// Value of axis \p Name, empty when the scenario has no such axis.
  std::string axisValue(const std::string &Name) const;
};

/// The sweep statistics store: everything `cws-sweep` pools out of a
/// scenario grid run, in grid expansion order.
struct SweepStore {
  /// Seed replicas per scenario.
  uint64_t Seeds = 0;
  /// Total runs pooled.
  uint64_t Runs = 0;
  std::vector<SweepScenario> Scenarios;
};

/// Serializes \p S as the sweep statistics CSV:
///
///   # cws-sweep statistics
///   # sweep runs=<N> seeds=<K>
///   scenario,axes,indicator,n,mean,stddev,ci95,p50,p90,p99,min,max
///
/// one row per (scenario, indicator); the `axes` column is
/// `;`-separated `name=value` pairs; NaN fields render "n/a".
/// Deterministic for a fixed store.
std::string sweepCsv(const SweepStore &S);

/// Parses text written by `sweepCsv`. Returns false and sets \p Error
/// (with a 1-based line number) on malformed input.
bool parseSweepCsv(const std::string &Text, SweepStore &Out,
                   std::string &Error);

/// Outcome of one SLO rule against a sweep store. A rule gates every
/// scenario: it passes only when each scenario that defines the
/// indicator satisfies the bound, and at least one does (an indicator
/// no scenario produced fails closed, like unknown indicators).
struct SweepSloResult {
  SloRule Rule;
  bool Known = false;
  bool Pass = false;
  /// The worst value across scenarios (largest for `<=` rules,
  /// smallest for `>=`); NaN when unknown.
  double Worst = 0.0;
  /// Id of the scenario holding the worst value.
  std::string WorstScenario;
  /// Scenarios evaluated / skipped for lacking the indicator.
  uint64_t Evaluated = 0;
  uint64_t Skipped = 0;
};

/// Evaluates sweep SLO rules: a rule's statistic defaults to the
/// scenario mean when no `.stat` suffix is given.
std::vector<SweepSloResult> evaluateSweepSlo(const std::vector<SloRule> &Rules,
                                             const SweepStore &S);

/// One estimated threshold crossing along a numeric scenario axis: the
/// indicator's pooled statistic moves across \p Bound between two
/// adjacent axis values (all other axes held fixed), located by linear
/// interpolation.
struct SweepCrossing {
  std::string Axis;
  /// Spelled indicator ("deadline_miss_rate.p90").
  std::string Indicator;
  double Bound = 0.0;
  /// Bracketing axis values and the statistic there.
  double LoAxis = 0.0, HiAxis = 0.0;
  double LoValue = 0.0, HiValue = 0.0;
  /// Interpolated axis position of the crossing.
  double At = 0.0;
  /// The held-fixed other axes, "name=value, name=value" (empty for a
  /// one-axis sweep).
  std::string Context;
};

/// Estimates where \p Indicator's \p Stat ("" = mean) crosses \p Bound
/// along each numeric axis of the sweep. Scenario groups that never
/// straddle the bound contribute no crossing.
std::vector<SweepCrossing> estimateSweepCrossings(const SweepStore &S,
                                                  const std::string &Indicator,
                                                  const std::string &Stat,
                                                  double Bound);

/// Renders the Markdown sweep report: overview, the per-scenario QoS
/// table (mean ± CI95 and p90 of the key indicators), per-axis trend
/// tables of marginal means, crossing-point estimates for each SLO
/// rule, and the SLO verdict. Deterministic for fixed inputs.
std::string renderSweepReport(const SweepStore &S,
                              const std::vector<SweepSloResult> &Slo);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_REPORT_H
