//===-- obs/Report.h - Run reports and SLO evaluation -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis layer behind `tools/cws-report`: it joins a decision
/// journal (`--journal`) with a telemetry time series (`--timeseries`,
/// CSV form) into one Markdown run report — utilization summary with
/// the most-contended nodes, a reallocation/invalidation timeline,
/// and a per-flow QoS table — and evaluates service-level objectives
/// from a plain-text SLO file:
///
///   # lines are comments; each rule is `indicator <= bound` (or >=)
///   deadline_miss_rate    <= 0.05
///   reallocations_per_commit <= 0.5
///
/// Indicators are derived from the journal and series (see
/// `computeIndicators`); a rule naming an unknown indicator fails
/// closed. `cws-report --slo` exits nonzero on any breach, making the
/// report a CI-gateable alerting analog.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_REPORT_H
#define CWS_OBS_REPORT_H

#include "obs/Journal.h"
#include "sim/Time.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cws {
namespace obs {

/// One row of a tidy time-series CSV (`TimeSeries::csv()` schema:
/// `seq,tick,reason,series,node,flow,value`).
struct TimeSeriesRow {
  uint64_t Seq = 0;
  Tick At = 0;
  std::string Reason;
  std::string Series;
  /// Node id of per-node rows, -1 otherwise.
  int64_t Node = -1;
  /// Flow label of per-flow rows, empty otherwise.
  std::string Flow;
  double Value = 0.0;
};

/// A parsed time-series file.
struct ParsedTimeSeries {
  std::vector<TimeSeriesRow> Rows;
  bool empty() const { return Rows.empty(); }
};

/// Parses CSV text written by `TimeSeries::csv()`. Returns false and
/// sets \p Error (with a 1-based line number) on malformed input.
bool parseTimeSeriesCsv(const std::string &Text, ParsedTimeSeries &Out,
                        std::string &Error);

/// One SLO rule: `Indicator <= Bound` (IsUpper) or `Indicator >=
/// Bound`.
struct SloRule {
  std::string Indicator;
  bool IsUpper = true;
  double Bound = 0.0;
};

/// Parses an SLO file: one rule per line (`indicator <= bound`,
/// `indicator >= bound`), `#` comments and blank lines ignored.
/// Returns false and sets \p Error on a malformed line.
bool parseSloFile(const std::string &Text, std::vector<SloRule> &Out,
                  std::string &Error);

/// Derives the gateable indicators from \p J joined with \p Ts:
///
///  - `jobs_submitted` / `jobs_committed` / `jobs_rejected` — journal
///    arrival / commit / reject event counts;
///  - `commit_rate` / `reject_rate` — of submitted jobs (0 when none);
///  - `deadline_miss_rate` — committed jobs whose completion (actual
///    execution completion when recorded, else the committed makespan,
///    an absolute tick) exceeds their arrival deadline, over committed
///    jobs;
///  - `reallocations` / `invalidations` / `env_changes` — event counts;
///  - `reallocations_per_commit` — reallocations over committed jobs
///    (over 1 when nothing committed);
///  - `mean_node_busy` / `max_node_busy` — grid mean / per-node max of
///    the mean `util_busy` + `util_background` fraction (time-series
///    only; absent without one).
std::map<std::string, double> computeIndicators(const ParsedJournal &J,
                                                const ParsedTimeSeries &Ts);

/// Outcome of one rule against the computed indicators.
struct SloResult {
  SloRule Rule;
  /// The indicator's value; 0 when unknown.
  double Actual = 0.0;
  /// False when the rule names no computed indicator (fails closed).
  bool Known = false;
  bool Pass = false;
};

std::vector<SloResult> evaluateSlo(const std::vector<SloRule> &Rules,
                                   const std::map<std::string, double> &Ind);

/// Renders the Markdown run report: overview, utilization summary with
/// the top-5 most-contended nodes, the reallocation / invalidation
/// timeline, the per-flow QoS table (flows in ascending id order), and
/// the SLO verdict when \p Slo is non-empty. Deterministic for fixed
/// inputs.
std::string renderRunReport(const ParsedJournal &J,
                            const ParsedTimeSeries &Ts,
                            const std::vector<SloResult> &Slo);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_REPORT_H
