//===-- obs/Metrics.h - Counters, gauges, histograms ------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A metrics registry of named counters, gauges and fixed-bucket
/// histograms with Prometheus-style text exposition. Updates are relaxed
/// atomics, cheap enough to stay in hot paths unconditionally; call
/// sites cache the instrument reference in a function-local static:
///
///   static obs::Counter &Collisions = obs::Registry::global().counter(
///       "cws_scheduler_collisions_total", "collisions during allocation");
///   Collisions.add(Result.Collisions.size());
///
/// Instrument references stay valid for the registry's lifetime;
/// `reset()` zeroes values but never unregisters.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_METRICS_H
#define CWS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cws {
namespace obs {

/// Renders \p X the way Prometheus clients do: integral values without
/// a fractional part, others with the fewest digits that round-trip
/// (so 6.4 renders as "6.4", not "6.4000000000000004").
std::string renderNumber(double X);

/// Escapes \p Raw for use inside a Prometheus label value per the text
/// exposition format: `\` -> `\\`, `"` -> `\"`, newline -> `\n`. The
/// result is safe to splice between the quotes of `{label="..."}`.
std::string escapeLabelValue(const std::string &Raw);

/// Monotone event counter.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-value gauge (signed: depths, deltas, clocks).
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N = 1) { V.fetch_sub(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Last-value gauge for real-valued samples (QoS means, percentages,
/// ratios). Stored as a bit-cast double so set/value stay single
/// relaxed atomic operations; exposed as a Prometheus gauge.
class RealGauge {
public:
  void set(double X) {
    uint64_t Bits;
    std::memcpy(&Bits, &X, sizeof(Bits));
    V.store(Bits, std::memory_order_relaxed);
  }
  double value() const {
    uint64_t Bits = V.load(std::memory_order_relaxed);
    double X;
    std::memcpy(&X, &Bits, sizeof(X));
    return X;
  }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  /// Bits of 0.0 are all-zero, so the default is an exact 0.0.
  std::atomic<uint64_t> V{0};
};

/// Fixed-bucket histogram with Prometheus `le` (less-or-equal)
/// semantics: an observation lands in the first bucket whose upper
/// bound is >= the value; values above every bound land in the
/// implicit +Inf bucket.
class Histogram {
public:
  /// \p UpperBounds must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double> &bounds() const { return Bounds; }
  /// Non-cumulative count of bucket \p I; I == bounds().size() is the
  /// +Inf bucket.
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  /// Cumulative count of observations <= bounds()[I] (Prometheus
  /// exposition form).
  uint64_t cumulativeCount(size_t I) const;

  /// Quantile estimate with `histogram_quantile` semantics: linear
  /// interpolation inside the bucket holding rank `Q * count()`; a
  /// rank in the +Inf bucket returns the highest finite bound; NaN
  /// when empty.
  double quantile(double Q) const;

  /// Merges \p Other into this histogram: bucket counts, observation
  /// count and sum add up, so pooling per-run histograms across a
  /// scenario sweep is exact (both must use identical bounds; a
  /// mismatch aborts). The merged result equals observing both streams
  /// into one histogram, in any merge order.
  void merge(const Histogram &Other);

  void reset();

private:
  std::vector<double> Bounds;
  /// Bounds.size() + 1 slots; the last is +Inf.
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> N{0};
  /// Sum as a bit-cast double updated by CAS (atomic<double>::fetch_add
  /// is not universally available).
  std::atomic<uint64_t> SumBits{0};
};

/// Named instrument registry.
class Registry {
public:
  /// The process-wide registry the built-in instrumentation uses.
  static Registry &global();

  /// Returns the counter registered under \p Name, creating it on
  /// first use. Re-registration under a different kind aborts.
  /// Names may carry a Prometheus label set (`cws_x{flow="S1"}`);
  /// exposition emits HELP/TYPE once per family (the part before '{').
  Counter &counter(const std::string &Name, const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "");
  RealGauge &realGauge(const std::string &Name, const std::string &Help = "");
  /// \p UpperBounds is only consulted on first registration.
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds,
                       const std::string &Help = "");

  /// Prometheus text exposition (version 0.0.4) of every instrument.
  std::string prometheusText() const;

  /// One flat sample per exposed series, for CSV export and tests.
  struct Sample {
    std::string Name;
    /// "counter" | "gauge" | "histogram".
    std::string Type;
    /// Histogram series suffix: `bucket` / `sum` / `count` /
    /// `p50` / `p90` / `p99`, else empty.
    std::string Series;
    /// Bucket upper bound rendered like the `le` label ("+Inf" last).
    std::string Le;
    double Value = 0.0;
  };
  std::vector<Sample> samples() const;

  /// Zeroes every instrument's value; registrations survive.
  void reset();

private:
  enum class Kind { Counter, Gauge, RealGauge, Histogram };
  struct Entry {
    std::string Name;
    std::string Help;
    Kind EntryKind;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<obs::RealGauge> R;
    std::unique_ptr<Histogram> H;
  };

  Entry *find(const std::string &Name);
  const Entry *find(const std::string &Name) const;

  mutable std::mutex Mu;
  /// Exposition preserves registration order; lookups scan (registration
  /// is rare, updates go through cached references).
  std::vector<std::unique_ptr<Entry>> Entries;
};

} // namespace obs
} // namespace cws

#endif // CWS_OBS_METRICS_H
