//===-- obs/Provenance.h - Run provenance stamps ----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run provenance: the (seed, config hash, CLI args, scenario id)
/// quadruple a tool stamps into the headers of every artifact it writes
/// — the `journal.meta` / `timeseries.meta` JSONL lines and a leading
/// `# provenance ...` comment of the time-series CSV. Aggregators
/// (`cws-sweep`) verify the stamp before pooling, so statistics can
/// never silently mix runs of different scenarios, configs or seeds.
///
/// The config hash is FNV-1a over a canonical key=value rendering of
/// the effective run configuration (`voConfigCanonical`), so two
/// processes that build the same configuration through different code
/// paths (a direct `cws-sim` invocation vs. a sweep-spawned one) agree
/// on the hash, while any divergent knob changes it.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_PROVENANCE_H
#define CWS_OBS_PROVENANCE_H

#include <cstdint>
#include <string>

namespace cws {
namespace obs {

/// The provenance stamp of one run's artifacts.
struct RunProvenance {
  /// True once a tool stamped the run; default-constructed artifacts
  /// carry no provenance (older files parse fine and report !valid()).
  bool Stamped = false;
  /// The run seed.
  uint64_t Seed = 0;
  /// Hex FNV-1a hash of the canonical configuration text.
  std::string ConfigHash;
  /// Scenario id the run belongs to ("single" for direct invocations).
  std::string ScenarioId;
  /// Resolved job-flow shard count of the run (0 = not recorded, e.g.
  /// one-shot cws-sched builds). Deliberately *outside* the config
  /// hash: results are shard-invariant by construction, so two runs of
  /// one configuration at different shard counts share a hash while
  /// the stamp still says which partitioning produced each artifact.
  int64_t Shards = 0;
  /// The invoking command line, flags joined with single spaces.
  std::string Cli;

  bool valid() const { return Stamped; }

  /// Scenario-compatibility check used by sweep pooling: same scenario
  /// id and the same config hash. Seeds and CLI text (which carries
  /// per-run file paths) may differ between replicas.
  bool sameScenario(const RunProvenance &Other) const {
    return Stamped && Other.Stamped && ScenarioId == Other.ScenarioId &&
           ConfigHash == Other.ConfigHash;
  }
};

/// 64-bit FNV-1a of \p Text.
uint64_t fnv1a64(const std::string &Text);

/// `fnv1a64` rendered as the canonical `0x%016llx` hash string.
std::string configHashOf(const std::string &CanonicalText);

/// Joins argv into the `Cli` field: arguments separated by single
/// spaces, no quoting (the journal/CSV escapers handle the rest).
std::string cliStringOf(int Argc, char **Argv);

/// Renders the CSV comment form:
/// `# provenance seed=S config=H scenario=ID [shards=N] cli=...` (cli
/// last, it may contain spaces; shards only when recorded). Empty
/// string when \p P is not stamped.
std::string provenanceCsvComment(const RunProvenance &P);

/// Parses a `# provenance ...` comment line back. Returns false when
/// \p Line is not a provenance comment or is malformed.
bool parseProvenanceCsvComment(const std::string &Line, RunProvenance &Out);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_PROVENANCE_H
