//===-- obs/Diff.cpp - Semantic differential run analysis -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Diff.h"
#include "obs/Explain.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

using namespace cws;
using namespace cws::obs;

const char *cws::obs::diffVerdictName(DiffVerdict V) {
  switch (V) {
  case DiffVerdict::Identical:
    return "identical";
  case DiffVerdict::Compatible:
    return "compatible";
  case DiffVerdict::Diverged:
    return "diverged";
  }
  return "?";
}

bool cws::obs::globMatch(const std::string &Pattern, const std::string &Text) {
  // Iterative star-backtracking: '*' matches any run of characters.
  size_t P = 0, T = 0, Star = std::string::npos, Mark = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == Text[T] || Pattern[P] == '?')) {
      ++P;
      ++T;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      Star = P++;
      Mark = T;
    } else if (Star != std::string::npos) {
      P = Star + 1;
      T = ++Mark;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

std::vector<SeriesRule> cws::obs::defaultSeriesRules() {
  // Wall-time-contaminated families can never be compared across runs;
  // the sim's own telemetry keeps them out of ts.csv by construction,
  // but metrics-registry exports carry them.
  return {{"*_us", SeriesClass::Excluded, 0.0},
          {"*_ms", SeriesClass::Excluded, 0.0},
          {"*wall*", SeriesClass::Excluded, 0.0}};
}

namespace {

/// Findings accumulator honoring MaxFindings.
struct Findings {
  std::vector<DiffFinding> Items;
  size_t Total = 0;
  size_t Cap;

  explicit Findings(size_t Cap) : Cap(Cap) {}

  void add(std::string Where, std::string A, std::string B) {
    ++Total;
    if (Items.size() < Cap)
      Items.push_back({std::move(Where), std::move(A), std::move(B)});
  }
};

const char *Absent = "(absent)";

/// Compares one provenance field under the policy.
void metaField(Findings &F, const char *Name, bool Allowed,
               const std::string &A, const std::string &B) {
  if (!Allowed && A != B)
    F.add(std::string("meta.") + Name, A, B);
}

void compareMeta(Findings &F, const RunProvenance &A, const RunProvenance &B,
                 const MetaPolicy &P) {
  if (P.Off)
    return;
  // An unstamped side has nothing to compare field-by-field; stamp
  // presence itself only matters when exactly one side carries one.
  if (!A.Stamped && !B.Stamped)
    return;
  if (A.Stamped != B.Stamped) {
    F.add("meta.provenance", A.Stamped ? "stamped" : Absent,
          B.Stamped ? "stamped" : Absent);
    return;
  }
  metaField(F, "seed", P.AllowSeed, std::to_string(A.Seed),
            std::to_string(B.Seed));
  metaField(F, "config_hash", P.AllowConfigHash, A.ConfigHash, B.ConfigHash);
  metaField(F, "scenario", P.AllowScenario, A.ScenarioId, B.ScenarioId);
  // A side that recorded no shard count (0) is compatible with any.
  if (A.Shards > 0 && B.Shards > 0)
    metaField(F, "shards", P.AllowShards, std::to_string(A.Shards),
              std::to_string(B.Shards));
  metaField(F, "cli", P.AllowCli, A.Cli, B.Cli);
}

//===----------------------------------------------------------------------===//
// Journal mode
//===----------------------------------------------------------------------===//

/// Rendered content of the environment change a trigger resolves to,
/// for structural (id-free) comparison across runs.
std::string triggerContent(const ParsedJournal &J,
                           const ParsedJournalEvent &E) {
  if (E.Trigger == 0)
    return std::string();
  const ParsedJournalEvent *T = J.byId(E.Trigger);
  if (!T)
    return "(dropped)";
  std::string Out = "t=" + std::to_string(T->At) + " " + T->Kind;
  if (!T->Detail.empty())
    Out += " [" + T->Detail + "]";
  for (const auto &A : T->Args)
    Out += " " + A.first + "=" + std::to_string(A.second);
  return Out;
}

/// Semantic equality of two events from different runs. Raw ids and
/// `cause` links are ordinal bookkeeping (the cause is always the
/// job's previous event, which the per-job walk already aligned);
/// triggers compare by the content of the env.change they reference.
bool sameEvent(const ParsedJournal &JA, const ParsedJournalEvent &A,
               const ParsedJournal &JB, const ParsedJournalEvent &B) {
  return A.Kind == B.Kind && A.At == B.At && A.JobId == B.JobId &&
         A.FlowId == B.FlowId && A.Detail == B.Detail && A.Args == B.Args &&
         triggerContent(JA, A) == triggerContent(JB, B);
}

/// The job's cause chain up to and including event index \p Upto, with
/// resolvable triggers expanded. Long prefixes are elided to the last
/// `Keep` entries.
std::string renderChain(const ParsedJournal &J,
                        const std::vector<const ParsedJournalEvent *> &Chain,
                        size_t Upto) {
  constexpr size_t Keep = 8;
  std::string Out;
  size_t Begin = 0;
  if (Upto + 1 > Keep) {
    Begin = Upto + 1 - Keep;
    Out += "  ... " + std::to_string(Begin) + " earlier event(s)\n";
  }
  for (size_t I = Begin; I <= Upto && I < Chain.size(); ++I) {
    Out += "  " + renderJournalEventInline(*Chain[I]) + "\n";
    if (Chain[I]->Trigger != 0) {
      std::string T = triggerContent(J, *Chain[I]);
      if (!T.empty())
        Out += "      trigger: " + T + "\n";
    }
  }
  return Out;
}

using JobChains =
    std::map<int64_t, std::vector<const ParsedJournalEvent *>>;

JobChains chainsOf(const ParsedJournal &J) {
  JobChains Out;
  for (const ParsedJournalEvent &E : J.Events)
    Out[E.JobId].push_back(&E);
  return Out;
}

const char *jobLabel(int64_t JobId) {
  // -1 groups the job-agnostic stream (env.change, notes).
  return JobId < 0 ? "environment" : "job";
}

} // namespace

DiffResult cws::obs::diffJournals(const ParsedJournal &A,
                                  const ParsedJournal &B,
                                  const DiffOptions &Opts) {
  DiffResult R;
  R.Mode = "journal";
  Findings Meta(Opts.MaxFindings);
  compareMeta(Meta, A.Prov, B.Prov, Opts.Meta);
  R.MetaFindings = std::move(Meta.Items);

  Findings F(Opts.MaxFindings);
  JobChains CA = chainsOf(A);
  JobChains CB = chainsOf(B);

  // First-divergence candidate: the diverging event with the smallest
  // (tick, job, index) triple across all per-job walks.
  struct Candidate {
    bool Present = false;
    int64_t Tick = 0;
    int64_t JobId = -1;
    size_t Index = 0;
    const ParsedJournalEvent *EvA = nullptr;
    const ParsedJournalEvent *EvB = nullptr;
  } Best;
  auto Consider = [&Best](int64_t Tick, int64_t JobId, size_t Index,
                          const ParsedJournalEvent *EvA,
                          const ParsedJournalEvent *EvB) {
    if (Best.Present && std::tie(Best.Tick, Best.JobId, Best.Index) <=
                            std::tie(Tick, JobId, Index))
      return;
    Best = {true, Tick, JobId, Index, EvA, EvB};
  };

  std::set<int64_t> Jobs;
  for (const auto &[Job, Chain] : CA)
    Jobs.insert(Job);
  for (const auto &[Job, Chain] : CB)
    Jobs.insert(Job);
  for (int64_t Job : Jobs) {
    auto IA = CA.find(Job);
    auto IB = CB.find(Job);
    static const std::vector<const ParsedJournalEvent *> None;
    const auto &EA = IA == CA.end() ? None : IA->second;
    const auto &EB = IB == CB.end() ? None : IB->second;
    size_t N = std::min(EA.size(), EB.size());
    size_t Div = N;
    for (size_t I = 0; I < N; ++I)
      if (!sameEvent(A, *EA[I], B, *EB[I])) {
        Div = I;
        break;
      }
    if (Div == N && EA.size() == EB.size())
      continue; // This chain agrees end to end.
    const ParsedJournalEvent *EvA = Div < EA.size() ? EA[Div] : nullptr;
    const ParsedJournalEvent *EvB = Div < EB.size() ? EB[Div] : nullptr;
    int64_t Tick = EvA && EvB ? std::min(EvA->At, EvB->At)
                              : (EvA ? EvA->At : EvB->At);
    Consider(Tick, Job, Div, EvA, EvB);
    std::string Where = std::string(jobLabel(Job)) +
                        (Job < 0 ? std::string()
                                 : " " + std::to_string(Job)) +
                        " event " + std::to_string(Div + 1) + "/" +
                        std::to_string(std::max(EA.size(), EB.size()));
    F.add(std::move(Where),
          EvA ? renderJournalEventInline(*EvA) : Absent,
          EvB ? renderJournalEventInline(*EvB) : Absent);
  }

  // Ring-loss accounting: identical surviving chains can still hide
  // different histories when the rings dropped different amounts.
  if (A.Dropped != B.Dropped)
    F.add("meta.dropped", std::to_string(A.Dropped),
          std::to_string(B.Dropped));
  else if (A.Recorded != B.Recorded)
    F.add("meta.recorded", std::to_string(A.Recorded),
          std::to_string(B.Recorded));

  if (Best.Present) {
    R.First.Present = true;
    R.First.JobId = Best.JobId;
    R.First.Tick = Best.Tick;
    R.First.IndexInJob = Best.Index;
    R.First.EventA =
        Best.EvA ? renderJournalEventInline(*Best.EvA) : Absent;
    R.First.EventB =
        Best.EvB ? renderJournalEventInline(*Best.EvB) : Absent;
    auto ChainFor = [&](const ParsedJournal &J, const JobChains &C,
                        const ParsedJournalEvent *Ev) {
      auto I = C.find(Best.JobId);
      if (I == C.end() || I->second.empty())
        return std::string("  (no events)\n");
      size_t Upto = Ev ? Best.Index : I->second.size() - 1;
      if (Upto >= I->second.size())
        Upto = I->second.size() - 1;
      return renderChain(J, I->second, Upto);
    };
    R.First.ChainA = ChainFor(A, CA, Best.EvA);
    R.First.ChainB = ChainFor(B, CB, Best.EvB);
  }

  R.Findings = std::move(F.Items);
  R.TotalFindings = F.Total + R.MetaFindings.size();
  R.Verdict = R.TotalFindings == 0 ? DiffVerdict::Identical
                                   : DiffVerdict::Diverged;
  if (R.identical()) {
    R.Summary = "journals identical: " + std::to_string(A.Events.size()) +
                " events, " + std::to_string(Jobs.size()) +
                " causal chain(s) agree";
  } else if (R.First.Present) {
    R.Summary = std::string(jobLabel(R.First.JobId)) +
                (R.First.JobId < 0 ? std::string()
                                   : " " + std::to_string(R.First.JobId)) +
                " diverged at t=" + std::to_string(R.First.Tick) + ": A " +
                R.First.EventA + " vs B " + R.First.EventB;
  } else {
    R.Summary = "journals diverge in meta only (" +
                std::to_string(R.TotalFindings) + " finding(s))";
  }
  return R;
}

DiffResult cws::obs::diffJournalOutcomes(const ParsedJournal &A,
                                         const ParsedJournal &B,
                                         const DiffOptions &Opts) {
  DiffResult R;
  R.Mode = "journal-outcomes";
  Findings Meta(Opts.MaxFindings);
  compareMeta(Meta, A.Prov, B.Prov, Opts.Meta);
  R.MetaFindings = std::move(Meta.Items);

  // Terminal verdict of every job, plus the tick of the event that
  // decided it: rejected beats committed beats open (a reject is
  // final; a commit without a reject stands).
  struct Verdict {
    std::string Out;
    int64_t Tick = -1;
  };
  auto Verdicts = [](const ParsedJournal &J) {
    std::map<int64_t, Verdict> V;
    for (const ParsedJournalEvent &E : J.Events) {
      if (E.JobId < 0)
        continue;
      if (E.Kind == "arrival")
        V.emplace(E.JobId, Verdict{"open", E.At});
      else if (E.Kind == "reject")
        V[E.JobId] = {"rejected", E.At};
      else if (E.Kind == "commit" && V[E.JobId].Out != "rejected")
        V[E.JobId] = {"committed", E.At};
    }
    return V;
  };
  std::map<int64_t, Verdict> VA = Verdicts(A);
  std::map<int64_t, Verdict> VB = Verdicts(B);

  // Jobs run A's journal vouches for: a successful repair resolution
  // explains why A could commit where the rebuild oracle rejected.
  // The first *stage-1/2* success is also the moment the two runs'
  // grids can part ways — a repair keeps placements of the stale plan
  // that the rebuild run replaces with fresh ones — so decisive
  // verdicts after that tick may legitimately drift in either
  // direction, and strict equivalence is only enforceable before it.
  std::set<int64_t> SavedByRepair;
  int64_t FirstRepairTick = std::numeric_limits<int64_t>::max();
  if (Opts.AllowRepairSaves)
    for (const ParsedJournalEvent &E : A.Events) {
      if (E.JobId < 0 || E.Kind != "repair.stage")
        continue;
      const int64_t *Ok = E.arg("ok");
      if (!Ok || !*Ok)
        continue;
      SavedByRepair.insert(E.JobId);
      const int64_t *Stage = E.arg("stage");
      if (Stage && *Stage < 3)
        FirstRepairTick = std::min(FirstRepairTick, E.At);
    }

  Findings F(Opts.MaxFindings);
  std::set<int64_t> Jobs;
  for (const auto &[Job, V] : VA)
    Jobs.insert(Job);
  for (const auto &[Job, V] : VB)
    Jobs.insert(Job);
  size_t Agreed = 0;
  size_t Saves = 0;
  size_t Drift = 0;
  size_t CommittedA = 0;
  size_t CommittedB = 0;
  auto Decisive = [](const std::string &O) {
    return O == "committed" || O == "rejected";
  };
  for (int64_t Job : Jobs) {
    auto IA = VA.find(Job);
    auto IB = VB.find(Job);
    std::string OA = IA == VA.end() ? std::string(Absent) : IA->second.Out;
    std::string OB = IB == VB.end() ? std::string(Absent) : IB->second.Out;
    CommittedA += OA == "committed";
    CommittedB += OB == "committed";
    if (OA == OB) {
      ++Agreed;
      continue;
    }
    if (OA == "committed" && OB == "rejected" && SavedByRepair.count(Job)) {
      ++Saves;
      continue;
    }
    // Post-repair drift: both verdicts decisive, both decided after
    // the grids could have diverged. Open/absent mismatches and any
    // divergence before the first repair are still defects.
    if (Opts.AllowRepairSaves && Decisive(OA) && Decisive(OB) &&
        IA->second.Tick >= FirstRepairTick &&
        IB->second.Tick >= FirstRepairTick) {
      ++Drift;
      continue;
    }
    F.add("job " + std::to_string(Job) + " outcome", OA, OB);
  }
  // The dominance backstop on accepted drift: repair exists to save
  // jobs, so the drift it causes must never leave the repair run
  // committing fewer jobs than its rebuild oracle.
  if (Drift && CommittedA < CommittedB)
    F.add("committed jobs total", std::to_string(CommittedA),
          std::to_string(CommittedB));

  R.Findings = std::move(F.Items);
  R.TotalFindings = F.Total + R.MetaFindings.size();
  R.Verdict = R.TotalFindings == 0 ? DiffVerdict::Identical
                                   : DiffVerdict::Diverged;
  std::string SaveNote;
  if (Saves)
    SaveNote += ", " + std::to_string(Saves) + " repair save(s) accepted";
  if (Drift)
    SaveNote += ", " + std::to_string(Drift) + " post-repair drift(s) accepted";
  if (R.identical())
    R.Summary = "outcomes equivalent: " + std::to_string(Agreed) +
                " job verdict(s) agree" + SaveNote;
  else
    R.Summary = "outcomes diverge: " + std::to_string(F.Total) +
                " of " + std::to_string(Jobs.size()) +
                " job verdict(s) differ" + SaveNote;
  return R;
}

//===----------------------------------------------------------------------===//
// Series mode
//===----------------------------------------------------------------------===//

namespace {

SeriesClass classify(const std::string &Series,
                     const std::vector<SeriesRule> &Rules, double &Eps) {
  for (const SeriesRule &R : Rules)
    if (globMatch(R.Pattern, Series)) {
      Eps = R.Eps;
      return R.Class;
    }
  Eps = 0.0;
  return SeriesClass::Exact;
}

std::string rowKey(const TimeSeriesRow &R) {
  std::string Out = "seq " + std::to_string(R.Seq) + " t=" +
                    std::to_string(R.At) + " " + R.Series;
  if (R.Node >= 0)
    Out += " node " + std::to_string(R.Node);
  if (!R.Flow.empty())
    Out += " flow " + R.Flow;
  return Out;
}

std::string rowText(const TimeSeriesRow &R) {
  return rowKey(R) + " (" + R.Reason + ") = " + renderNumber(R.Value);
}

} // namespace

DiffResult cws::obs::diffTimeSeries(const ParsedTimeSeries &A,
                                    const ParsedTimeSeries &B,
                                    const DiffOptions &Opts) {
  DiffResult R;
  R.Mode = "series";
  Findings Meta(Opts.MaxFindings);
  compareMeta(Meta, A.Prov, B.Prov, Opts.Meta);
  R.MetaFindings = std::move(Meta.Items);

  std::vector<SeriesRule> Rules;
  if (!Opts.NoDefaultSeriesRules)
    Rules = defaultSeriesRules();
  Rules.insert(Rules.end(), Opts.Series.begin(), Opts.Series.end());

  auto Included = [&Rules](const TimeSeriesRow &Row, double &Eps,
                           SeriesClass &C) {
    C = classify(Row.Series, Rules, Eps);
    return C != SeriesClass::Excluded;
  };

  Findings F(Opts.MaxFindings);
  size_t IA = 0, IB = 0, ExcludedRows = 0;
  while (IA < A.Rows.size() || IB < B.Rows.size()) {
    double EpsA = 0, EpsB = 0;
    SeriesClass ClA = SeriesClass::Exact, ClB = SeriesClass::Exact;
    if (IA < A.Rows.size() && !Included(A.Rows[IA], EpsA, ClA)) {
      ++IA;
      ++ExcludedRows;
      continue;
    }
    if (IB < B.Rows.size() && !Included(B.Rows[IB], EpsB, ClB)) {
      ++IB;
      ++ExcludedRows;
      continue;
    }
    if (IA >= A.Rows.size() || IB >= B.Rows.size()) {
      // One run has surplus rows past the common prefix.
      if (IA < A.Rows.size())
        F.add(rowKey(A.Rows[IA]), rowText(A.Rows[IA]), Absent);
      else
        F.add(rowKey(B.Rows[IB]), Absent, rowText(B.Rows[IB]));
      ++IA;
      ++IB;
      continue;
    }
    const TimeSeriesRow &RA = A.Rows[IA];
    const TimeSeriesRow &RB = B.Rows[IB];
    ++IA;
    ++IB;
    if (RA.Seq != RB.Seq || RA.At != RB.At || RA.Reason != RB.Reason ||
        RA.Series != RB.Series || RA.Node != RB.Node || RA.Flow != RB.Flow) {
      F.add("row alignment", rowText(RA), rowText(RB));
      continue;
    }
    bool Equal = RA.Value == RB.Value;
    if (!Equal && ClA == SeriesClass::Tolerance)
      Equal = std::fabs(RA.Value - RB.Value) <= EpsA;
    if (!Equal)
      F.add(rowKey(RA), renderNumber(RA.Value), renderNumber(RB.Value));
  }

  R.Findings = std::move(F.Items);
  R.TotalFindings = F.Total + R.MetaFindings.size();
  R.Verdict = R.TotalFindings == 0 ? DiffVerdict::Identical
                                   : DiffVerdict::Diverged;
  if (R.identical()) {
    R.Summary = "series identical: " + std::to_string(A.Rows.size()) +
                " rows agree";
    if (ExcludedRows > 0)
      R.Summary += " (" + std::to_string(ExcludedRows) +
                   " wall-time row(s) excluded)";
  } else {
    R.Summary = "series diverge: " + std::to_string(R.TotalFindings) +
                " finding(s)";
    if (!R.Findings.empty())
      R.Summary += ", first at " + R.Findings.front().Where;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Sweep mode
//===----------------------------------------------------------------------===//

namespace {

/// NaN-aware exact equality (n/a round-trips as NaN).
bool statEq(double X, double Y) {
  if (std::isnan(X) || std::isnan(Y))
    return std::isnan(X) && std::isnan(Y);
  return X == Y;
}

bool statsExactlyEqual(const SweepIndicatorStats &X,
                       const SweepIndicatorStats &Y) {
  return X.N == Y.N && statEq(X.Mean, Y.Mean) && statEq(X.Stddev, Y.Stddev) &&
         statEq(X.Ci95, Y.Ci95) && statEq(X.P50, Y.P50) &&
         statEq(X.P90, Y.P90) && statEq(X.P99, Y.P99) &&
         statEq(X.Min, Y.Min) && statEq(X.Max, Y.Max);
}

} // namespace

DiffResult cws::obs::diffSweeps(const SweepStore &A, const SweepStore &B,
                                const DiffOptions &Opts) {
  DiffResult R;
  R.Mode = "sweep";
  Findings F(Opts.MaxFindings);
  bool AllCompatible = true;

  if (A.Seeds != B.Seeds)
    F.add("sweep.seeds", std::to_string(A.Seeds), std::to_string(B.Seeds));
  if (A.Runs != B.Runs)
    F.add("sweep.runs", std::to_string(A.Runs), std::to_string(B.Runs));
  if (F.Total > 0)
    AllCompatible = false;

  std::map<std::string, const SweepScenario *> SB;
  for (const SweepScenario &S : B.Scenarios)
    SB[S.Id] = &S;
  std::set<std::string> SeenB;
  for (const SweepScenario &SA : A.Scenarios) {
    auto I = SB.find(SA.Id);
    if (I == SB.end()) {
      F.add("scenario " + SA.Id, "present", Absent);
      AllCompatible = false;
      continue;
    }
    SeenB.insert(SA.Id);
    const SweepScenario &SBS = *I->second;
    for (const auto &[Name, StA] : SA.Indicators) {
      const SweepIndicatorStats *StB = SBS.indicator(Name);
      std::string Where = "scenario " + SA.Id + " " + Name;
      if (!StB) {
        F.add(Where, "present", Absent);
        AllCompatible = false;
        continue;
      }
      if (statsExactlyEqual(StA, *StB))
        continue;
      // Not field-equal: statistical compatibility. Sample counts must
      // agree (a replica-count change is never "noise"); means pass
      // when their 95% CIs overlap; quantiles pass within the relative
      // shift tolerance.
      bool Compatible = StA.N == StB->N;
      if (Compatible && !statEq(StA.Mean, StB->Mean))
        Compatible = !std::isnan(StA.Mean) && !std::isnan(StB->Mean) &&
                     std::fabs(StA.Mean - StB->Mean) <= StA.Ci95 + StB->Ci95;
      auto QuantileOk = [&](double X, double Y) {
        if (statEq(X, Y))
          return true;
        if (std::isnan(X) || std::isnan(Y))
          return false;
        double Scale = std::max(std::fabs(X), std::fabs(Y));
        return std::fabs(X - Y) <= Opts.QuantileShiftTol * Scale;
      };
      if (Compatible)
        Compatible = QuantileOk(StA.P50, StB->P50) &&
                     QuantileOk(StA.P90, StB->P90) &&
                     QuantileOk(StA.P99, StB->P99);
      if (!Compatible)
        AllCompatible = false;
      auto Render = [](const SweepIndicatorStats &S) {
        auto Num = [](double X) {
          return std::isnan(X) ? std::string("n/a") : renderNumber(X);
        };
        return "n=" + std::to_string(S.N) + " mean=" + Num(S.Mean) +
               "±" + Num(S.Ci95) + " p50=" + Num(S.P50) + " p90=" +
               Num(S.P90) + " p99=" + Num(S.P99);
      };
      F.add(Where + (Compatible ? " (compatible)" : " (regressed)"),
            Render(StA), Render(*StB));
    }
    // Indicators only the B side has.
    for (const auto &[Name, StB] : SBS.Indicators)
      if (!SA.indicator(Name)) {
        F.add("scenario " + SA.Id + " " + Name, Absent, "present");
        AllCompatible = false;
      }
  }
  for (const SweepScenario &S : B.Scenarios)
    if (!SeenB.count(S.Id)) {
      F.add("scenario " + S.Id, Absent, "present");
      AllCompatible = false;
    }

  R.Findings = std::move(F.Items);
  R.TotalFindings = F.Total;
  if (R.TotalFindings == 0)
    R.Verdict = DiffVerdict::Identical;
  else if (AllCompatible)
    R.Verdict = DiffVerdict::Compatible;
  else
    R.Verdict = DiffVerdict::Diverged;
  switch (R.Verdict) {
  case DiffVerdict::Identical:
    R.Summary = "sweeps identical: " + std::to_string(A.Scenarios.size()) +
                " scenario(s) agree on every pooled statistic";
    break;
  case DiffVerdict::Compatible:
    R.Summary = "sweeps statistically compatible: " +
                std::to_string(R.TotalFindings) +
                " indicator(s) shifted within CI overlap / quantile "
                "tolerance";
    break;
  case DiffVerdict::Diverged:
    R.Summary = "sweep regression: " + std::to_string(R.TotalFindings) +
                " finding(s)";
    if (!R.Findings.empty())
      R.Summary += ", first at " + R.Findings.front().Where;
    break;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

static void renderFirstDivergence(std::string &Out, const DiffResult &R,
                                  const std::string &LabelA,
                                  const std::string &LabelB, bool Markdown) {
  if (!R.First.Present)
    return;
  const JournalDivergence &D = R.First;
  std::string Head = std::string(D.JobId < 0 ? "environment stream"
                                             : "job " +
                                                   std::to_string(D.JobId)) +
                     " diverged at t=" + std::to_string(D.Tick) +
                     " (event " + std::to_string(D.IndexInJob + 1) +
                     " of its chain)";
  if (Markdown) {
    Out += "## First divergence\n\n" + Head + ":\n\n";
    Out += "- A: `" + D.EventA + "`\n";
    Out += "- B: `" + D.EventB + "`\n\n";
    Out += "Cause chain in A (" + LabelA + "):\n\n```\n" + D.ChainA +
           "```\n\nCause chain in B (" + LabelB + "):\n\n```\n" + D.ChainB +
           "```\n\n";
  } else {
    Out += "first divergence: " + Head + "\n";
    Out += "  A: " + D.EventA + "\n";
    Out += "  B: " + D.EventB + "\n";
    Out += "cause chain in A (" + LabelA + "):\n" + D.ChainA;
    Out += "cause chain in B (" + LabelB + "):\n" + D.ChainB;
  }
}

std::string cws::obs::renderDiffText(const DiffResult &R,
                                     const std::string &LabelA,
                                     const std::string &LabelB) {
  std::string Out = "cws-diff [" + R.Mode + "] A=" + LabelA +
                    " B=" + LabelB + "\n";
  Out += "verdict: " + std::string(diffVerdictName(R.Verdict)) + " — " +
         R.Summary + "\n";
  for (const DiffFinding &F : R.MetaFindings)
    Out += "  " + F.Where + ": A=" + F.A + " B=" + F.B + "\n";
  renderFirstDivergence(Out, R, LabelA, LabelB, false);
  for (const DiffFinding &F : R.Findings)
    Out += "  " + F.Where + ": A=" + F.A + " B=" + F.B + "\n";
  if (R.TotalFindings >
      R.Findings.size() + R.MetaFindings.size())
    Out += "  ... " +
           std::to_string(R.TotalFindings - R.Findings.size() -
                          R.MetaFindings.size()) +
           " more finding(s) not shown\n";
  return Out;
}

std::string cws::obs::renderDiffReport(const DiffResult &R,
                                       const std::string &LabelA,
                                       const std::string &LabelB) {
  std::string Out = "# Differential run analysis (" + R.Mode + ")\n\n";
  Out += "- run A: `" + LabelA + "`\n";
  Out += "- run B: `" + LabelB + "`\n";
  Out += "- verdict: **" + std::string(diffVerdictName(R.Verdict)) +
         "** — " + R.Summary + "\n\n";
  if (!R.MetaFindings.empty()) {
    Out += "## Meta / provenance differences\n\n";
    Out += "| field | A | B |\n|---|---|---|\n";
    for (const DiffFinding &F : R.MetaFindings)
      Out += "| " + F.Where + " | `" + F.A + "` | `" + F.B + "` |\n";
    Out += "\n";
  }
  renderFirstDivergence(Out, R, LabelA, LabelB, true);
  if (!R.Findings.empty()) {
    Out += "## Findings\n\n";
    Out += "| where | A | B |\n|---|---|---|\n";
    for (const DiffFinding &F : R.Findings)
      Out += "| " + F.Where + " | `" + F.A + "` | `" + F.B + "` |\n";
    size_t Shown = R.Findings.size() + R.MetaFindings.size();
    if (R.TotalFindings > Shown)
      Out += "\n... " + std::to_string(R.TotalFindings - Shown) +
             " more finding(s) not shown.\n";
    Out += "\n";
  }
  return Out;
}

std::string cws::obs::explainJobDiff(const ParsedJournal &A,
                                     const ParsedJournal &B, int64_t JobId) {
  DiffOptions Opts;
  Opts.Meta.Off = true; // Only this job's chain matters here.
  DiffResult R = diffJournals(A, B, Opts);
  std::string Out = "--- run A ---\n" + explainJob(A, JobId);
  Out += "--- run B ---\n" + explainJob(B, JobId);
  // Localize within the requested job even when an earlier job holds
  // the run's global first divergence.
  JobChains CA = chainsOf(A), CB = chainsOf(B);
  auto IA = CA.find(JobId);
  auto IB = CB.find(JobId);
  static const std::vector<const ParsedJournalEvent *> None;
  const auto &EA = IA == CA.end() ? None : IA->second;
  const auto &EB = IB == CB.end() ? None : IB->second;
  size_t N = std::min(EA.size(), EB.size());
  size_t Div = N;
  for (size_t I = 0; I < N; ++I)
    if (!sameEvent(A, *EA[I], B, *EB[I])) {
      Div = I;
      break;
    }
  if (Div == N && EA.size() == EB.size()) {
    Out += "--- job " + std::to_string(JobId) +
           ": causal chains agree (" + std::to_string(EA.size()) +
           " event(s))";
    if (!R.identical())
      Out += "; the runs first diverge elsewhere: " + R.Summary;
    Out += "\n";
    return Out;
  }
  const ParsedJournalEvent *EvA = Div < EA.size() ? EA[Div] : nullptr;
  const ParsedJournalEvent *EvB = Div < EB.size() ? EB[Div] : nullptr;
  int64_t Tick = EvA && EvB ? std::min(EvA->At, EvB->At)
                            : (EvA ? EvA->At : EvB ? EvB->At : 0);
  Out += "--- job " + std::to_string(JobId) + " diverges at t=" +
         std::to_string(Tick) + " (event " + std::to_string(Div + 1) +
         " of its chain)\n";
  Out += "  A: " + (EvA ? renderJournalEventInline(*EvA)
                        : std::string(Absent)) + "\n";
  Out += "  B: " + (EvB ? renderJournalEventInline(*EvB)
                        : std::string(Absent)) + "\n";
  return Out;
}
