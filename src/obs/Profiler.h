//===-- obs/Profiler.h - Hierarchical phase profiler ------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scoped hierarchical phase profiler answering "where did the
/// scheduler's wall-clock and work go": RAII `CWS_PHASE("chain.dp")`
/// guards accumulate per-phase call counts, total/self wall time and
/// duration quantiles (via `obs::Histogram`), plus named *work
/// counters* (placements re-validated, DP labels kept, variants built)
/// attached with `PhaseScope::work` or `Profiler::addWork`.
///
/// Accumulation is per-thread — a guard never touches shared state
/// while open, the same discipline as `JournalBuffer` — and threads
/// merge deterministically at export: counts, work and histogram
/// buckets add, phases sort by name. Counts and work counters are
/// therefore identical at any `--build-threads` / `--shards` value;
/// only the wall-time fields vary run to run.
///
/// Like the tracer, the profiler is disabled by default and the
/// disabled path is one relaxed atomic load plus a branch — no clock
/// read, no allocation (`bench/obs_overhead` and `tests/test_profiler`
/// guard this). `CWS_OBS_ENABLED=0` removes the guard bodies entirely.
///
/// Phase names must be string literals (or otherwise outlive the open
/// scope). Work counters may be attached to a phase that is not open
/// on the calling thread — `Profiler::addWork("env.invalidate", ...)`
/// from a worker lane lands in the same merged accumulator as the
/// caller-side scope, which is what keeps totals shard-invariant when
/// the *scope* runs once on the caller but the *work* fans out.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_PROFILER_H
#define CWS_OBS_PROFILER_H

#include "obs/Provenance.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef CWS_OBS_ENABLED
#define CWS_OBS_ENABLED 1
#endif

namespace cws {
namespace obs {

class Histogram;
class Registry;
class PhaseScope;

/// Merged statistics of one phase, the unit of every export form.
struct PhaseStats {
  std::string Name;
  /// Completed scopes (phases still open at snapshot are not counted).
  uint64_t Count = 0;
  /// Wall time inside the phase, child phases included.
  double TotalUs = 0.0;
  /// Wall time minus same-thread child-phase time, >= 0.
  double SelfUs = 0.0;
  /// Per-scope duration quantiles (NaN when Count == 0).
  double P50Us = 0.0;
  double P99Us = 0.0;
  /// Deterministic work counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Work;

  const uint64_t *work(const std::string &Counter) const;
};

/// A parsed `profile.json` (written by `Profiler::json`).
struct ParsedProfile {
  RunProvenance Prov;
  /// Sorted by phase name, like every export.
  std::vector<PhaseStats> Phases;
  bool empty() const { return Phases.empty(); }
};

/// Parses text written by `Profiler::json`. Returns false and sets
/// \p Error on malformed input or a schema mismatch.
bool parseProfileJson(const std::string &Text, ParsedProfile &Out,
                      std::string &Error);

/// The process-wide phase profiler. Tests may construct their own.
class Profiler {
public:
  Profiler();
  ~Profiler();

  /// The instance every `CWS_PHASE` guard records into.
  static Profiler &global();

  /// Starts accumulating. Unlike the tracer there is no ring to size:
  /// state is per-phase, not per-event. Previously accumulated data is
  /// kept (pause/resume); call reset() for a fresh profile.
  void enable() { On.store(true, std::memory_order_relaxed); }
  void disable() { On.store(false, std::memory_order_relaxed); }
  bool enabled() const { return On.load(std::memory_order_relaxed); }

  /// Drops all accumulated data (thread registrations survive, like
  /// the metrics registry) and disables the profiler.
  void reset();

  /// Provenance stamped into `json()`, mirroring Journal/TimeSeries.
  void setProvenance(const RunProvenance &P);

  /// Attaches \p N units of \p Counter to \p Phase on the calling
  /// thread's accumulator, whether or not the phase is open here.
  /// No-op while disabled.
  void addWork(const char *Phase, const char *Counter, uint64_t N);

  /// Merges every thread's accumulators into the deterministic export
  /// form: phases sorted by name, counts / work / histogram buckets
  /// added across threads.
  std::vector<PhaseStats> snapshot() const;

  /// The `profile.json` document (`cws-profile-v1` schema): provenance
  /// plus one record per phase, sorted by name.
  std::string json() const;

  /// Writes json() to \p Path; false on I/O failure.
  bool writeJson(const std::string &Path) const;

  /// Pre-rendered comma-separated Chrome trace-event fragment — one
  /// complete ("X") summary slice per phase on a dedicated pid, laid
  /// end to end — for splicing into `Tracer::chromeJson(Extra)`.
  /// Empty when nothing was profiled.
  std::string chromeTraceEvents() const;

private:
  friend class PhaseScope;

  /// Accumulator of one phase on one thread.
  struct PhaseAccum {
    uint64_t Count = 0;
    double TotalUs = 0.0;
    /// Same-thread child-phase time inside this phase.
    double ChildUs = 0.0;
    std::unique_ptr<Histogram> DurUs;
    std::map<std::string, uint64_t> Work;
  };

  /// One thread's accumulation state. Owned by the profiler so data
  /// survives thread exit; the mutex only contends with snapshot().
  struct ThreadState {
    mutable std::mutex Mu;
    std::map<std::string, PhaseAccum> Phases;
    /// Innermost open scope on this thread (self-time chain).
    PhaseScope *Open = nullptr;
  };

  ThreadState &threadState();

  std::atomic<bool> On{false};
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<ThreadState>> Threads;
  RunProvenance Prov;
};

/// RAII phase guard; see the file comment for the accounting rules.
class PhaseScope {
public:
#if CWS_OBS_ENABLED
  explicit PhaseScope(const char *Name);
  ~PhaseScope();
  /// Attaches \p N units of \p Counter to this phase.
  void work(const char *Counter, uint64_t N);
#else
  explicit PhaseScope(const char *) {}
  void work(const char *, uint64_t) {}
#endif

  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
#if CWS_OBS_ENABLED
  friend class Profiler;
  const char *Name;
  Profiler::ThreadState *TS = nullptr;
  PhaseScope *Parent = nullptr;
  int64_t StartNs = 0;
  /// Closed same-thread child time, accumulated by the children.
  double ChildUs = 0.0;
#endif
};

#define CWS_PHASE_CONCAT_IMPL(A, B) A##B
#define CWS_PHASE_CONCAT(A, B) CWS_PHASE_CONCAT_IMPL(A, B)
/// Opens a profiler phase for the enclosing scope:
///   CWS_PHASE("meta.commit.apply");
#define CWS_PHASE(NameLiteral)                                                 \
  ::cws::obs::PhaseScope CWS_PHASE_CONCAT(CwsPhaseScope_,                      \
                                          __LINE__)(NameLiteral)

/// Publishes \p P's merged snapshot into \p R as `cws_phase_count` /
/// `cws_phase_total_us` / `cws_phase_self_us` gauges and
/// `cws_phase_work{phase=...,counter=...}` counters, so a `--metrics`
/// snapshot carries the phase breakdown next to everything else.
void publishProfilerStats(const Profiler &P, Registry &R);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_PROFILER_H
