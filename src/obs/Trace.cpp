//===-- obs/Trace.cpp - Low-overhead span tracer --------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <chrono>
#include <cstdio>

using namespace cws;
using namespace cws::obs;

static int64_t steadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small dense thread ids for the trace viewer's per-track layout
/// (std::thread::id hashes are visually useless).
static uint32_t currentTid() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Tid = Next.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

void Tracer::enable(size_t Capacity) {
  CWS_CHECK(Capacity > 0, "tracer needs a non-empty ring");
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.assign(Capacity, TraceEvent{});
  Head = 0;
  Filtered = 0;
  EpochMicros = steadyMicros();
  Enabled.store(true, std::memory_order_relaxed);
}

void Tracer::setCategoryFilter(const std::string &CommaSeparated) {
  std::vector<std::string> Parsed;
  size_t Pos = 0;
  while (Pos <= CommaSeparated.size()) {
    size_t Comma = CommaSeparated.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = CommaSeparated.size();
    std::string Part = CommaSeparated.substr(Pos, Comma - Pos);
    // Trim surrounding spaces so "core, flow" works.
    size_t B = Part.find_first_not_of(" \t");
    size_t E = Part.find_last_not_of(" \t");
    if (B != std::string::npos)
      Parsed.push_back(Part.substr(B, E - B + 1));
    Pos = Comma + 1;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Categories = std::move(Parsed);
}

bool Tracer::categoryEnabled(const char *Category) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Categories.empty())
    return true;
  for (const std::string &C : Categories)
    if (Category && C == Category)
      return true;
  return false;
}

uint64_t Tracer::filtered() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Filtered;
}

void Tracer::disable() { Enabled.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  disable();
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Categories.clear();
  Filtered = 0;
  Head = 0;
}

void Tracer::record(TracePhase Phase, const char *Category, const char *Name,
                    const TraceArg *Args, size_t ArgCount) {
  if (!enabled())
    return;
  int64_t Ts = steadyMicros();
  uint32_t Tid = currentTid();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.empty())
    return; // reset() raced the enabled check.
  if (!Categories.empty()) {
    bool Pass = false;
    for (const std::string &C : Categories)
      if (Category && C == Category) {
        Pass = true;
        break;
      }
    if (!Pass) {
      ++Filtered;
      return;
    }
  }
  TraceEvent &E = Ring[Head % Ring.size()];
  E.Name = Name;
  E.Category = Category;
  E.TsMicros = Ts - EpochMicros;
  E.Seq = Head;
  E.Tid = Tid;
  E.Phase = Phase;
  E.ArgCount = static_cast<uint8_t>(ArgCount > 2 ? 2 : ArgCount);
  for (size_t I = 0; I < E.ArgCount; ++I)
    E.Args[I] = Args[I];
  ++Head;
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head > Ring.size() ? Head - Ring.size() : 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  if (Ring.empty())
    return Out;
  uint64_t Size = Head < Ring.size() ? Head : Ring.size();
  Out.reserve(Size);
  // Oldest surviving event first: when wrapped, that is slot Head mod N.
  uint64_t Start = Head < Ring.size() ? 0 : Head;
  for (uint64_t I = 0; I < Size; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

/// Escapes a string for a JSON literal. Names are plain identifiers in
/// practice, but the exporter must never emit invalid JSON.
static void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string Tracer::chromeJson(const std::string &Extra) const {
  std::vector<TraceEvent> Events = snapshot();
  std::string Out = "{\"traceEvents\":[";
  char Buf[96];
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":";
    appendJsonString(Out, E.Name ? E.Name : "");
    Out += ",\"cat\":";
    appendJsonString(Out, E.Category ? E.Category : "");
    std::snprintf(Buf, sizeof(Buf),
                  ",\"ph\":\"%c\",\"ts\":%lld,\"pid\":1,\"tid\":%u",
                  static_cast<char>(E.Phase),
                  static_cast<long long>(E.TsMicros), E.Tid);
    Out += Buf;
    if (E.Phase == TracePhase::Instant)
      Out += ",\"s\":\"t\"";
    if (E.ArgCount > 0) {
      Out += ",\"args\":{";
      for (uint8_t I = 0; I < E.ArgCount; ++I) {
        if (I)
          Out += ",";
        appendJsonString(Out, E.Args[I].Key ? E.Args[I].Key : "");
        std::snprintf(Buf, sizeof(Buf), ":%lld",
                      static_cast<long long>(E.Args[I].Value));
        Out += Buf;
      }
      Out += "}";
    }
    Out += "}";
  }
  if (!Extra.empty()) {
    if (!First)
      Out += ",";
    Out += Extra;
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

bool Tracer::writeJson(const std::string &Path,
                       const std::string &Extra) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = chromeJson(Extra);
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

void cws::obs::publishTraceStats(Registry &R) {
  const Tracer &T = Tracer::global();
  R.gauge("cws_trace_filtered_total",
          "trace events rejected by the category filter")
      .set(static_cast<int64_t>(T.filtered()));
  R.gauge("cws_trace_dropped_total",
          "trace events lost to ring wraparound")
      .set(static_cast<int64_t>(T.dropped()));
}
