//===-- obs/Provenance.cpp - Run provenance stamps ------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include <cstdio>
#include <cstdlib>

using namespace cws;
using namespace cws::obs;

uint64_t cws::obs::fnv1a64(const std::string &Text) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (unsigned char C : Text) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

std::string cws::obs::configHashOf(const std::string &CanonicalText) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(fnv1a64(CanonicalText)));
  return Buf;
}

std::string cws::obs::cliStringOf(int Argc, char **Argv) {
  std::string Out;
  for (int I = 0; I < Argc; ++I) {
    if (I)
      Out += ' ';
    Out += Argv[I];
  }
  return Out;
}

std::string cws::obs::provenanceCsvComment(const RunProvenance &P) {
  if (!P.Stamped)
    return std::string();
  // `cli` comes last so it may contain spaces; `scenario` ids are
  // token-shaped (the grid parser rejects whitespace in them).
  std::string Out = "# provenance seed=" + std::to_string(P.Seed) +
                    " config=" + P.ConfigHash + " scenario=" + P.ScenarioId;
  if (P.Shards > 0)
    Out += " shards=" + std::to_string(P.Shards);
  Out += " cli=" + P.Cli + "\n";
  return Out;
}

bool cws::obs::parseProvenanceCsvComment(const std::string &Line,
                                         RunProvenance &Out) {
  const std::string Prefix = "# provenance ";
  if (Line.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  std::string Rest = Line.substr(Prefix.size());
  auto takeField = [&Rest](const std::string &Key,
                           std::string &Value) -> bool {
    if (Rest.compare(0, Key.size(), Key) != 0)
      return false;
    Rest = Rest.substr(Key.size());
    size_t End = Rest.find(' ');
    if (End == std::string::npos)
      End = Rest.size();
    Value = Rest.substr(0, End);
    Rest = End == Rest.size() ? std::string() : Rest.substr(End + 1);
    return true;
  };
  std::string SeedText;
  RunProvenance P;
  if (!takeField("seed=", SeedText) || !takeField("config=", P.ConfigHash) ||
      !takeField("scenario=", P.ScenarioId))
    return false;
  char *End = nullptr;
  P.Seed = std::strtoull(SeedText.c_str(), &End, 10);
  if (End == SeedText.c_str() || *End)
    return false;
  // Optional shard count (absent in artifacts stamped before it
  // existed and in one-shot builds that resolve no shards).
  std::string ShardsText;
  if (takeField("shards=", ShardsText)) {
    P.Shards = std::strtoll(ShardsText.c_str(), &End, 10);
    if (End == ShardsText.c_str() || *End)
      return false;
  }
  // Everything after `cli=` (spaces included) is the command line.
  const std::string CliKey = "cli=";
  if (Rest.compare(0, CliKey.size(), CliKey) != 0)
    return false;
  P.Cli = Rest.substr(CliKey.size());
  if (!P.Cli.empty() && P.Cli.back() == '\r')
    P.Cli.pop_back();
  P.Stamped = true;
  Out = P;
  return true;
}
