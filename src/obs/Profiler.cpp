//===-- obs/Profiler.cpp - Hierarchical phase profiler --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "obs/Metrics.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

namespace cws {
namespace obs {

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-scope duration buckets (microseconds): sub-microsecond guards up
/// to full-run phases. Shared by every phase so merged histograms stay
/// merge-compatible.
const std::vector<double> &phaseBounds() {
  static const std::vector<double> Bounds = {
      1,    2,    5,     10,    25,    50,     100,    250,    500,
      1000, 2500, 5000,  10000, 25000, 50000,  100000, 250000, 500000,
      1000000};
  return Bounds;
}

} // namespace

const uint64_t *PhaseStats::work(const std::string &Counter) const {
  for (const auto &W : Work)
    if (W.first == Counter)
      return &W.second;
  return nullptr;
}

Profiler::Profiler() = default;
Profiler::~Profiler() = default;

Profiler &Profiler::global() {
  static Profiler P;
  return P;
}

Profiler::ThreadState &Profiler::threadState() {
  // One cached state per (thread, profiler); re-resolving through the
  // registry map keeps a second instance (tests) correct, just slower.
  thread_local Profiler *CachedOwner = nullptr;
  thread_local ThreadState *CachedTS = nullptr;
  if (CachedOwner == this && CachedTS)
    return *CachedTS;
  std::lock_guard<std::mutex> Lock(Mu);
  // Thread states are never removed, so scanning for a state this
  // thread registered earlier is bounded by the peak thread count.
  thread_local std::vector<std::pair<Profiler *, ThreadState *>> Mine;
  for (const auto &Entry : Mine)
    if (Entry.first == this) {
      CachedOwner = this;
      CachedTS = Entry.second;
      return *CachedTS;
    }
  Threads.emplace_back(new ThreadState());
  ThreadState *TS = Threads.back().get();
  Mine.emplace_back(this, TS);
  CachedOwner = this;
  CachedTS = TS;
  return *TS;
}

void Profiler::reset() {
  disable();
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &TS : Threads) {
    std::lock_guard<std::mutex> TLock(TS->Mu);
    TS->Phases.clear();
  }
  Prov = RunProvenance();
}

void Profiler::setProvenance(const RunProvenance &P) {
  std::lock_guard<std::mutex> Lock(Mu);
  Prov = P;
}

void Profiler::addWork(const char *Phase, const char *Counter, uint64_t N) {
  if (!enabled())
    return;
  ThreadState &TS = threadState();
  std::lock_guard<std::mutex> Lock(TS.Mu);
  TS.Phases[Phase].Work[Counter] += N;
}

std::vector<PhaseStats> Profiler::snapshot() const {
  // Merge per-thread accumulators into one per-phase view. Counts,
  // work and histogram buckets add; the result depends only on what
  // ran, never on which thread ran it.
  struct Merged {
    uint64_t Count = 0;
    double TotalUs = 0.0;
    double ChildUs = 0.0;
    std::unique_ptr<Histogram> DurUs;
    std::map<std::string, uint64_t> Work;
  };
  std::map<std::string, Merged> ByName;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &TS : Threads) {
      std::lock_guard<std::mutex> TLock(TS->Mu);
      for (const auto &Entry : TS->Phases) {
        Merged &M = ByName[Entry.first];
        const PhaseAccum &A = Entry.second;
        M.Count += A.Count;
        M.TotalUs += A.TotalUs;
        M.ChildUs += A.ChildUs;
        if (A.DurUs) {
          if (!M.DurUs)
            M.DurUs.reset(new Histogram(phaseBounds()));
          M.DurUs->merge(*A.DurUs);
        }
        for (const auto &W : A.Work)
          M.Work[W.first] += W.second;
      }
    }
  }

  std::vector<PhaseStats> Out;
  Out.reserve(ByName.size());
  for (const auto &Entry : ByName) {
    const Merged &M = Entry.second;
    PhaseStats S;
    S.Name = Entry.first;
    S.Count = M.Count;
    S.TotalUs = M.TotalUs;
    S.SelfUs = std::max(0.0, M.TotalUs - M.ChildUs);
    S.P50Us = M.Count && M.DurUs ? M.DurUs->quantile(0.5) : 0.0;
    S.P99Us = M.Count && M.DurUs ? M.DurUs->quantile(0.99) : 0.0;
    S.Work.assign(M.Work.begin(), M.Work.end());
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string Profiler::json() const {
  RunProvenance P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    P = Prov;
  }
  std::vector<PhaseStats> Phases = snapshot();

  std::string Out = "{\n  \"schema\": \"cws-profile-v1\"";
  if (P.valid()) {
    Out += ",\n  \"provenance\": {\"seed\": " + std::to_string(P.Seed);
    Out += ", \"config_hash\": \"" + json::escape(P.ConfigHash) + "\"";
    Out += ", \"scenario\": \"" + json::escape(P.ScenarioId) + "\"";
    if (P.Shards > 0)
      Out += ", \"shards\": " + std::to_string(P.Shards);
    Out += ", \"cli\": \"" + json::escape(P.Cli) + "\"}";
  }
  Out += ",\n  \"phases\": [";
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseStats &S = Phases[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"" + json::escape(S.Name) + "\"";
    Out += ", \"count\": " + std::to_string(S.Count);
    Out += ", \"total_us\": " + renderNumber(S.TotalUs);
    Out += ", \"self_us\": " + renderNumber(S.SelfUs);
    Out += ", \"p50_us\": " + renderNumber(S.P50Us);
    Out += ", \"p99_us\": " + renderNumber(S.P99Us);
    Out += ", \"work\": {";
    for (size_t W = 0; W < S.Work.size(); ++W) {
      if (W)
        Out += ", ";
      Out += "\"" + json::escape(S.Work[W].first) +
             "\": " + std::to_string(S.Work[W].second);
    }
    Out += "}}";
  }
  Out += Phases.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

bool Profiler::writeJson(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}

std::string Profiler::chromeTraceEvents() const {
  std::vector<PhaseStats> Phases = snapshot();
  if (Phases.empty())
    return "";
  // Summary slices on a dedicated pid (the tracer's spans are pid 1,
  // the sim-time lane pid 2): one complete event per phase, laid end
  // to end so the lane reads as a breakdown bar.
  std::string Out = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
                    "\"tid\":0,\"ts\":0,"
                    "\"args\":{\"name\":\"phase profile (merged)\"}}";
  double Ts = 0.0;
  for (const PhaseStats &S : Phases) {
    Out += ",{\"name\":\"" + json::escape(S.Name) +
           "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":3,\"tid\":0,\"ts\":" +
           renderNumber(Ts) + ",\"dur\":" + renderNumber(S.TotalUs) +
           ",\"args\":{\"count\":" + std::to_string(S.Count) +
           ",\"self_us\":" + renderNumber(S.SelfUs) + "}}";
    Ts += S.TotalUs;
  }
  return Out;
}

bool parseProfileJson(const std::string &Text, ParsedProfile &Out,
                      std::string &Error) {
  Out = ParsedProfile();
  json::Value Root;
  if (!json::parse(Text, Root, Error))
    return false;
  if (!Root.isObject()) {
    Error = "profile: top level is not an object";
    return false;
  }
  std::string Schema;
  if (!Root.getString("schema", Schema) || Schema != "cws-profile-v1") {
    Error = "profile: missing or unknown schema (want cws-profile-v1)";
    return false;
  }
  if (const json::Value *P = Root.find("provenance")) {
    if (!P->isObject()) {
      Error = "profile: provenance is not an object";
      return false;
    }
    double Seed = 0;
    if (P->getNumber("seed", Seed))
      Out.Prov.Seed = static_cast<uint64_t>(Seed);
    P->getString("config_hash", Out.Prov.ConfigHash);
    P->getString("scenario", Out.Prov.ScenarioId);
    double Shards = 0;
    if (P->getNumber("shards", Shards))
      Out.Prov.Shards = static_cast<int64_t>(Shards);
    P->getString("cli", Out.Prov.Cli);
    Out.Prov.Stamped = true;
  }
  const json::Value *Phases = Root.find("phases");
  if (!Phases || !Phases->isArray()) {
    Error = "profile: missing phases array";
    return false;
  }
  for (const json::Value &P : Phases->array()) {
    PhaseStats S;
    if (!P.isObject() || !P.getString("name", S.Name)) {
      Error = "profile: phase record without a name";
      return false;
    }
    double X = 0;
    if (P.getNumber("count", X))
      S.Count = static_cast<uint64_t>(X);
    P.getNumber("total_us", S.TotalUs);
    P.getNumber("self_us", S.SelfUs);
    P.getNumber("p50_us", S.P50Us);
    P.getNumber("p99_us", S.P99Us);
    if (const json::Value *W = P.find("work")) {
      if (!W->isObject()) {
        Error = "profile: work of phase '" + S.Name + "' is not an object";
        return false;
      }
      for (const auto &Member : W->members()) {
        if (!Member.second.isNumber()) {
          Error = "profile: work counter '" + Member.first +
                  "' is not a number";
          return false;
        }
        S.Work.emplace_back(Member.first,
                            static_cast<uint64_t>(Member.second.Num));
      }
      std::sort(S.Work.begin(), S.Work.end());
    }
    Out.Phases.push_back(std::move(S));
  }
  std::sort(Out.Phases.begin(), Out.Phases.end(),
            [](const PhaseStats &A, const PhaseStats &B) {
              return A.Name < B.Name;
            });
  return true;
}

#if CWS_OBS_ENABLED

PhaseScope::PhaseScope(const char *Name) : Name(Name) {
  Profiler &P = Profiler::global();
  if (!P.enabled())
    return; // TS stays null; the destructor is a no-op.
  TS = &P.threadState();
  Parent = TS->Open;
  TS->Open = this;
  StartNs = nowNs();
}

PhaseScope::~PhaseScope() {
  if (!TS)
    return;
  double DurUs = static_cast<double>(nowNs() - StartNs) / 1000.0;
  TS->Open = Parent;
  // Self-time is a same-thread notion: a parent only absorbs child
  // time its own thread spent (cross-thread fan-out shows up as the
  // child phase's total, not as the parent's child time).
  if (Parent && Parent->TS == TS)
    Parent->ChildUs += DurUs;
  std::lock_guard<std::mutex> Lock(TS->Mu);
  Profiler::PhaseAccum &A = TS->Phases[Name];
  A.Count += 1;
  A.TotalUs += DurUs;
  A.ChildUs += ChildUs;
  if (!A.DurUs)
    A.DurUs.reset(new Histogram(phaseBounds()));
  A.DurUs->observe(DurUs);
}

void PhaseScope::work(const char *Counter, uint64_t N) {
  if (!TS)
    return;
  std::lock_guard<std::mutex> Lock(TS->Mu);
  TS->Phases[Name].Work[Counter] += N;
}

#endif // CWS_OBS_ENABLED

void publishProfilerStats(const Profiler &P, Registry &R) {
  for (const PhaseStats &S : P.snapshot()) {
    std::string Label = "{phase=\"" + escapeLabelValue(S.Name) + "\"}";
    R.gauge("cws_phase_count" + Label,
            "completed profiler scopes of the phase")
        .set(static_cast<int64_t>(S.Count));
    R.realGauge("cws_phase_total_us" + Label,
                "wall microseconds inside the phase (children included)")
        .set(S.TotalUs);
    R.realGauge("cws_phase_self_us" + Label,
                "wall microseconds inside the phase (children excluded)")
        .set(S.SelfUs);
    for (const auto &W : S.Work)
      R.gauge("cws_phase_work{phase=\"" + escapeLabelValue(S.Name) +
                  "\",counter=\"" + escapeLabelValue(W.first) + "\"}",
              "deterministic work units attributed to the phase")
          .set(static_cast<int64_t>(W.second));
  }
}

} // namespace obs
} // namespace cws
