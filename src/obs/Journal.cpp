//===-- obs/Journal.cpp - Per-job decision journal ------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace cws;
using namespace cws::obs;

static const char *const KindNames[JournalKindCount] = {
    "arrival",        "admission",      "variant",        "collision",
    "env.change",     "invalidate",     "shift",          "reallocate",
    "repair.attempt", "repair.stage",   "dispatch",       "commit.attempt",
    "commit",         "reject",         "execution",      "complete",
    "note",
};

const char *cws::obs::journalKindName(JournalKind Kind) {
  auto I = static_cast<size_t>(Kind);
  CWS_CHECK(I < JournalKindCount, "unknown journal kind");
  return KindNames[I];
}

bool cws::obs::journalKindFromName(const std::string &Name,
                                   JournalKind &Out) {
  for (size_t I = 0; I < JournalKindCount; ++I)
    if (Name == KindNames[I]) {
      Out = static_cast<JournalKind>(I);
      return true;
    }
  return false;
}

Journal &Journal::global() {
  static Journal J;
  return J;
}

void Journal::enable(size_t Capacity) {
  CWS_CHECK(Capacity > 0, "journal needs a non-empty ring");
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.assign(Capacity, JournalEvent{});
  Head = 0;
  LastEnvChangeId = 0;
  LastOf.clear();
  FlowOf.clear();
  Prov = RunProvenance{};
  On.store(true, std::memory_order_relaxed);
}

void Journal::disable() { On.store(false, std::memory_order_relaxed); }

void Journal::setProvenance(RunProvenance P) {
  std::lock_guard<std::mutex> Lock(Mu);
  Prov = std::move(P);
}

RunProvenance Journal::provenance() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Prov;
}

void Journal::reset() {
  disable();
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Head = 0;
  LastEnvChangeId = 0;
  LastOf.clear();
  FlowOf.clear();
  Prov = RunProvenance{};
}

namespace {
/// This thread's capture sink: while set (and attached to the journal
/// being appended to), events are deferred into the buffer instead of
/// the ring. One slot suffices — capture scopes nest by saving the
/// previous value.
struct CaptureSink {
  Journal *J = nullptr;
  JournalBuffer *Buf = nullptr;
};
thread_local CaptureSink ActiveCapture;
} // namespace

JournalCaptureScope::JournalCaptureScope(Journal &J, JournalBuffer *Buf)
    : Prev(ActiveCapture.Buf) {
  ActiveCapture.J = &J;
  ActiveCapture.Buf = Buf;
}

JournalCaptureScope::~JournalCaptureScope() { ActiveCapture.Buf = Prev; }

uint64_t Journal::append(JournalKind Kind, int64_t JobId, int64_t At,
                         std::initializer_list<JournalArg> Args,
                         const char *Detail, int FlowId, uint64_t Trigger) {
  if (!enabled())
    return 0;
  JournalBuffer::Pending P;
  P.Kind = Kind;
  P.JobId = JobId;
  P.At = At;
  P.Detail = Detail;
  P.FlowId = FlowId;
  P.Trigger = Trigger;
  for (const JournalArg &A : Args) {
    if (P.ArgCount >= JournalEvent::MaxArgs)
      break;
    P.Args[P.ArgCount++] = A;
  }
  if (ActiveCapture.Buf && ActiveCapture.J == this) {
    ActiveCapture.Buf->Events.push_back(P);
    return 0; // Ids are assigned at replay.
  }
  return appendEvent(P);
}

uint64_t Journal::appendEvent(const JournalBuffer::Pending &P) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.empty())
    return 0; // reset() raced the enabled check.
  JournalEvent &E = Ring[Head % Ring.size()];
  E = JournalEvent{};
  E.Id = Head + 1;
  E.Kind = P.Kind;
  E.JobId = P.JobId;
  E.At = P.At;
  E.Detail = P.Detail;
  E.ArgCount = P.ArgCount;
  for (uint8_t I = 0; I < P.ArgCount; ++I)
    E.Args[I] = P.Args[I];
  int FlowId = P.FlowId;
  if (P.JobId >= 0) {
    auto Last = LastOf.find(P.JobId);
    E.Cause = Last == LastOf.end() ? 0 : Last->second;
    LastOf[P.JobId] = E.Id;
    if (FlowId >= 0)
      FlowOf[P.JobId] = FlowId;
    else if (auto F = FlowOf.find(P.JobId); F != FlowOf.end())
      FlowId = F->second;
  }
  E.FlowId = FlowId;
  // Invalidations and reallocations are consequences of environment
  // dynamics: attribute them to the latest change unless the caller
  // knows a more precise trigger.
  uint64_t Trigger = P.Trigger;
  if (Trigger == 0 && (P.Kind == JournalKind::Invalidate ||
                       P.Kind == JournalKind::Reallocate))
    Trigger = LastEnvChangeId;
  E.Trigger = Trigger;
  if (P.Kind == JournalKind::EnvChange)
    LastEnvChangeId = E.Id;
  ++Head;
  return E.Id;
}

void Journal::appendBuffered(JournalBuffer &Buf) {
  if (enabled())
    for (const JournalBuffer::Pending &P : Buf.Events)
      appendEvent(P);
  Buf.clear();
}

void Journal::appendBufferedByJob(
    const std::vector<JournalBuffer *> &Buffers) {
  if (enabled()) {
    // Stable merge by ascending job id. Each buffer is already in
    // ascending-job order and a job's events live in exactly one
    // buffer, so a stable sort reproduces the order one shard would
    // have emitted.
    std::vector<const JournalBuffer::Pending *> Merged;
    for (const JournalBuffer *B : Buffers)
      for (const JournalBuffer::Pending &P : B->Events)
        Merged.push_back(&P);
    std::stable_sort(Merged.begin(), Merged.end(),
                     [](const JournalBuffer::Pending *A,
                        const JournalBuffer::Pending *B) {
                       return A->JobId < B->JobId;
                     });
    for (const JournalBuffer::Pending *P : Merged)
      appendEvent(*P);
  }
  for (JournalBuffer *B : Buffers)
    B->clear();
}

uint64_t Journal::recorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head;
}

uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head > Ring.size() ? Head - Ring.size() : 0;
}

uint64_t Journal::lastEnvChange() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LastEnvChangeId;
}

std::vector<JournalEvent> Journal::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<JournalEvent> Out;
  if (Ring.empty())
    return Out;
  uint64_t Size = Head < Ring.size() ? Head : Ring.size();
  Out.reserve(Size);
  uint64_t Start = Head < Ring.size() ? 0 : Head;
  for (uint64_t I = 0; I < Size; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

/// Escapes a string for a JSON literal (same contract as the tracer's
/// exporter: never emit invalid JSON, whatever the input).
static void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

static void appendInt(std::string &Out, int64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  Out += Buf;
}

std::string Journal::jsonl() const {
  uint64_t Recorded, Dropped;
  RunProvenance P;
  std::vector<JournalEvent> Events = snapshot();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Recorded = Head;
    Dropped = Head > Ring.size() ? Head - Ring.size() : 0;
    P = Prov;
  }
  std::string Out = "{\"kind\":\"journal.meta\",\"schema\":1,\"recorded\":";
  appendInt(Out, static_cast<int64_t>(Recorded));
  Out += ",\"dropped\":";
  appendInt(Out, static_cast<int64_t>(Dropped));
  if (P.Stamped) {
    Out += ",\"seed\":";
    appendInt(Out, static_cast<int64_t>(P.Seed));
    Out += ",\"config_hash\":";
    appendJsonString(Out, P.ConfigHash.c_str());
    Out += ",\"scenario\":";
    appendJsonString(Out, P.ScenarioId.c_str());
    if (P.Shards > 0) {
      Out += ",\"shards\":";
      appendInt(Out, P.Shards);
    }
    Out += ",\"cli\":";
    appendJsonString(Out, P.Cli.c_str());
  }
  Out += "}\n";
  for (const JournalEvent &E : Events) {
    Out += "{\"id\":";
    appendInt(Out, static_cast<int64_t>(E.Id));
    Out += ",\"kind\":";
    appendJsonString(Out, journalKindName(E.Kind));
    Out += ",\"tick\":";
    appendInt(Out, E.At);
    if (E.JobId >= 0) {
      Out += ",\"job\":";
      appendInt(Out, E.JobId);
    }
    if (E.FlowId >= 0) {
      Out += ",\"flow\":";
      appendInt(Out, E.FlowId);
    }
    if (E.Cause != 0) {
      Out += ",\"cause\":";
      appendInt(Out, static_cast<int64_t>(E.Cause));
    }
    if (E.Trigger != 0) {
      Out += ",\"trigger\":";
      appendInt(Out, static_cast<int64_t>(E.Trigger));
    }
    if (E.Detail) {
      Out += ",\"detail\":";
      appendJsonString(Out, E.Detail);
    }
    if (E.ArgCount > 0) {
      Out += ",\"args\":{";
      for (uint8_t I = 0; I < E.ArgCount; ++I) {
        if (I)
          Out += ",";
        appendJsonString(Out, E.Args[I].Key ? E.Args[I].Key : "");
        Out += ":";
        appendInt(Out, E.Args[I].Value);
      }
      Out += "}";
    }
    Out += "}\n";
  }
  return Out;
}

bool Journal::writeJsonl(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = jsonl();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

void cws::obs::publishJournalStats(Registry &R) {
  const Journal &J = Journal::global();
  R.gauge("cws_journal_recorded_total",
          "journal events appended since enable()")
      .set(static_cast<int64_t>(J.recorded()));
  R.gauge("cws_journal_dropped_total",
          "journal events lost to ring wraparound")
      .set(static_cast<int64_t>(J.dropped()));
}

//===----------------------------------------------------------------------===//
// JSONL parsing
//===----------------------------------------------------------------------===//

const int64_t *ParsedJournalEvent::arg(const std::string &Key) const {
  for (const auto &A : Args)
    if (A.first == Key)
      return &A.second;
  return nullptr;
}

const ParsedJournalEvent *ParsedJournal::byId(uint64_t Id) const {
  size_t Lo = 0, Hi = Events.size();
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Events[Mid].Id < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo < Events.size() && Events[Lo].Id == Id)
    return &Events[Lo];
  return nullptr;
}

namespace {
/// Minimal parser for one flat journal line: an object of string keys
/// mapping to integers, strings, or one level of nested integer object
/// (`args`). Strict enough that `cws-explain --summary` can vouch for
/// the schema.
class LineParser {
public:
  explicit LineParser(const std::string &S) : S(S) {}

  bool fail(const std::string &Why) {
    Error = Why;
    return false;
  }
  const std::string &error() const { return Error; }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool atEnd() {
    skipWs();
    return Pos == S.size();
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("truncated escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("truncated \\u escape");
        char Buf[5] = {S[Pos], S[Pos + 1], S[Pos + 2], S[Pos + 3], 0};
        Pos += 4;
        Out += static_cast<char>(std::strtol(Buf, nullptr, 16));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= S.size())
      return fail("unterminated string");
    ++Pos;
    return true;
  }

  bool parseInt(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    size_t DigitStart = Pos;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
      ++Pos;
    if (Pos == DigitStart)
      return fail("expected integer");
    Out = std::strtoll(S.substr(Start, Pos - Start).c_str(), nullptr, 10);
    return true;
  }

private:
  const std::string &S;
  size_t Pos = 0;
  std::string Error;
};

bool parseLine(const std::string &Line, ParsedJournalEvent &E,
               std::string &MetaKind, uint64_t &Recorded, uint64_t &Dropped,
               RunProvenance &Prov, bool &IsMeta, std::string &Error) {
  LineParser P(Line);
  IsMeta = false;
  if (!P.consume('{')) {
    Error = "expected '{'";
    return false;
  }
  bool First = true;
  int64_t Schema = -1;
  int64_t MetaRecorded = -1, MetaDropped = -1;
  RunProvenance MetaProv;
  bool SawSeed = false, SawProvString = false;
  bool SawId = false, SawKind = false, SawTick = false;
  while (!P.consume('}')) {
    if (!First && !P.consume(',')) {
      Error = "expected ',' or '}'";
      return false;
    }
    First = false;
    std::string Key;
    if (!P.parseString(Key) || !P.consume(':')) {
      Error = P.error().empty() ? "expected ':'" : P.error();
      return false;
    }
    if (Key == "kind") {
      std::string V;
      if (!P.parseString(V)) {
        Error = P.error();
        return false;
      }
      E.Kind = V;
      MetaKind = V;
      SawKind = true;
    } else if (Key == "detail") {
      if (!P.parseString(E.Detail)) {
        Error = P.error();
        return false;
      }
    } else if (Key == "config_hash" || Key == "scenario" || Key == "cli") {
      std::string V;
      if (!P.parseString(V)) {
        Error = P.error();
        return false;
      }
      if (Key == "config_hash")
        MetaProv.ConfigHash = std::move(V);
      else if (Key == "scenario")
        MetaProv.ScenarioId = std::move(V);
      else
        MetaProv.Cli = std::move(V);
      SawProvString = true;
    } else if (Key == "args") {
      if (!P.consume('{')) {
        Error = "expected args object";
        return false;
      }
      bool FirstArg = true;
      while (!P.consume('}')) {
        if (!FirstArg && !P.consume(',')) {
          Error = "expected ',' or '}' in args";
          return false;
        }
        FirstArg = false;
        std::string AKey;
        int64_t AVal;
        if (!P.parseString(AKey) || !P.consume(':') || !P.parseInt(AVal)) {
          Error = P.error().empty() ? "malformed args entry" : P.error();
          return false;
        }
        E.Args.emplace_back(std::move(AKey), AVal);
      }
    } else {
      int64_t V;
      if (!P.parseInt(V)) {
        Error = P.error();
        return false;
      }
      if (Key == "id") {
        E.Id = static_cast<uint64_t>(V);
        SawId = true;
      } else if (Key == "cause") {
        E.Cause = static_cast<uint64_t>(V);
      } else if (Key == "trigger") {
        E.Trigger = static_cast<uint64_t>(V);
      } else if (Key == "job") {
        E.JobId = V;
      } else if (Key == "flow") {
        E.FlowId = V;
      } else if (Key == "tick") {
        E.At = V;
        SawTick = true;
      } else if (Key == "schema") {
        Schema = V;
      } else if (Key == "recorded") {
        MetaRecorded = V;
      } else if (Key == "dropped") {
        MetaDropped = V;
      } else if (Key == "seed") {
        MetaProv.Seed = static_cast<uint64_t>(V);
        SawSeed = true;
      } else if (Key == "shards") {
        MetaProv.Shards = V;
      } else {
        Error = "unknown field '" + Key + "'";
        return false;
      }
    }
  }
  if (!P.atEnd()) {
    Error = "trailing garbage";
    return false;
  }
  if (MetaKind == "journal.meta") {
    IsMeta = true;
    if (Schema != 1) {
      Error = "unsupported journal schema";
      return false;
    }
    if (MetaRecorded < 0 || MetaDropped < 0) {
      Error = "meta line missing recorded/dropped";
      return false;
    }
    Recorded = static_cast<uint64_t>(MetaRecorded);
    Dropped = static_cast<uint64_t>(MetaDropped);
    // A stamped header carries the seed; the string fields may be
    // empty but must accompany it (a partial stamp is malformed).
    if (SawSeed) {
      MetaProv.Stamped = true;
      Prov = std::move(MetaProv);
    } else if (SawProvString) {
      Error = "provenance stamp missing seed";
      return false;
    }
    return true;
  }
  if (!SawId || !SawKind || !SawTick) {
    Error = "event missing id/kind/tick";
    return false;
  }
  return true;
}
} // namespace

bool cws::obs::parseJournalJsonl(const std::string &Text, ParsedJournal &Out,
                                 std::string &Error) {
  Out = ParsedJournal{};
  size_t Pos = 0;
  size_t LineNo = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    ParsedJournalEvent E;
    std::string MetaKind;
    bool IsMeta = false;
    std::string Why;
    if (!parseLine(Line, E, MetaKind, Out.Recorded, Out.Dropped, Out.Prov,
                   IsMeta, Why)) {
      Error = "line " + std::to_string(LineNo) + ": " + Why;
      return false;
    }
    if (!IsMeta)
      Out.Events.push_back(std::move(E));
  }
  return true;
}
