//===-- obs/Explain.h - Journal analysis for cws-explain --------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a parsed decision journal back into answers: schema
/// validation, a per-job causal timeline, "why was this job
/// reallocated / rejected", and per-flow decision counts. Pure
/// functions over `ParsedJournal` so the tests can pin the renderings
/// without running the `cws-explain` binary.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_EXPLAIN_H
#define CWS_OBS_EXPLAIN_H

#include "obs/Journal.h"

#include <string>
#include <vector>

namespace cws {
namespace obs {

/// Checks the journal's structural invariants and returns one message
/// per violation (empty = valid):
///  - event ids strictly increasing, kinds known to this build;
///  - `cause` / `trigger` always reference an *earlier* id;
///  - a reference below the first surviving id is legal only when the
///    ring actually dropped events (`Dropped > 0`);
///  - a resolvable `cause` belongs to the same job and does not run
///    backwards in time; a resolvable `trigger` is an `env.change`;
///  - the meta header's `recorded`/`dropped` counts match the events.
std::vector<std::string> validateJournal(const ParsedJournal &J);

/// Renders one event in the shared inline form
/// (`#id t=<tick> <kind> [detail] key=value ...`) used by every
/// journal-derived rendering (timelines, diffs).
std::string renderJournalEventInline(const ParsedJournalEvent &E);

/// Renders the causal timeline of \p JobId: one line per event in id
/// order (`#id t=<tick> <kind> ...`), with resolvable triggers
/// expanded to the environment change they reference. Returns a "no
/// events" message when the job never appears.
std::string explainJob(const ParsedJournal &J, int64_t JobId);

/// For every `reallocate` event: which environment change triggered
/// it, and which variant/node/slot the preceding invalidation found
/// broken. One block per reallocation, in id order.
std::string explainReallocations(const ParsedJournal &J);

/// For every `reject` event: the job, the reason, and the decision
/// that preceded it.
std::string explainRejections(const ParsedJournal &J);

/// Per-flow decision counts (arrivals, admissions, commits, rejects,
/// reallocations, invalidations, shift attempts) plus journal totals.
std::string journalSummary(const ParsedJournal &J);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_EXPLAIN_H
