//===-- obs/Trace.h - Low-overhead span tracer ------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead span tracer: a thread-safe ring buffer of begin/end/
/// instant events, recorded through RAII `Span` guards, exported as
/// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
///
/// The tracer is disabled by default. While disabled every record call
/// is a single relaxed atomic load plus a predictable branch, so
/// instrumentation may stay in hot paths permanently; the
/// `bench/obs_overhead` binary guards this property. Defining
/// `CWS_OBS_ENABLED=0` at compile time removes the instrumentation
/// bodies entirely.
///
/// Event names and categories must be string literals (or otherwise
/// outlive the tracer): the ring buffer stores the pointers only.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_TRACE_H
#define CWS_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef CWS_OBS_ENABLED
#define CWS_OBS_ENABLED 1
#endif

namespace cws {
namespace obs {

class Registry;

/// Chrome trace-event phases the tracer emits.
enum class TracePhase : char {
  Begin = 'B',
  End = 'E',
  Instant = 'i',
};

/// One numeric argument attached to an event. Keys must be string
/// literals for the same lifetime reason as names.
struct TraceArg {
  const char *Key = nullptr;
  int64_t Value = 0;
};

/// One recorded event (one ring-buffer slot).
struct TraceEvent {
  const char *Name = nullptr;
  const char *Category = nullptr;
  /// Microseconds since the tracer was enabled.
  int64_t TsMicros = 0;
  /// Monotone sequence number; orders events across wraparound.
  uint64_t Seq = 0;
  uint32_t Tid = 0;
  TracePhase Phase = TracePhase::Instant;
  uint8_t ArgCount = 0;
  TraceArg Args[2];
};

/// Thread-safe ring-buffer tracer.
///
/// Most code records through the process-wide `Tracer::global()`
/// instance via `Span` guards and `instant()`; tests may construct
/// their own.
class Tracer {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  /// The process-wide tracer every `Span` records into.
  static Tracer &global();

  /// Starts recording into a fresh ring of \p Capacity slots and
  /// resets the timestamp epoch.
  void enable(size_t Capacity = DefaultCapacity);

  /// Stops recording. Already recorded events stay exportable.
  void disable();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Restricts recording to the categories in \p CommaSeparated (e.g.
  /// "core,flow"); the empty string lifts the restriction. High-volume
  /// categories (one `sim.event` instant per simulator event) can this
  /// way be masked out before they wrap the ring. The filter survives
  /// enable()/disable() (reset() clears it) and may be changed mid-run.
  void setCategoryFilter(const std::string &CommaSeparated);

  /// True when events of \p Category currently pass the filter.
  bool categoryEnabled(const char *Category) const;

  /// Events rejected by the category filter since enable().
  uint64_t filtered() const;

  /// Records one event; no-op while disabled.
  void record(TracePhase Phase, const char *Category, const char *Name,
              const TraceArg *Args = nullptr, size_t ArgCount = 0);

  /// Records an instant event; no-op while disabled.
  void instant(const char *Category, const char *Name) {
    record(TracePhase::Instant, Category, Name);
  }
  void instant(const char *Category, const char *Name, const char *Key,
               int64_t Value) {
    TraceArg A{Key, Value};
    record(TracePhase::Instant, Category, Name, &A, 1);
  }

  /// Events recorded since enable() (including overwritten ones).
  uint64_t recorded() const;
  /// Events lost to ring wraparound.
  uint64_t dropped() const;

  /// Copies the surviving events out in record order.
  std::vector<TraceEvent> snapshot() const;

  /// Renders the surviving events as Chrome trace-event JSON. \p Extra
  /// is a pre-rendered comma-separated fragment of additional trace
  /// events (e.g. `TimeSeries::chromeTraceEvents()`) spliced into the
  /// same `traceEvents` array; empty merges nothing.
  std::string chromeJson(const std::string &Extra = "") const;

  /// Writes chromeJson(\p Extra) to \p Path; returns false on I/O
  /// failure.
  bool writeJson(const std::string &Path,
                 const std::string &Extra = "") const;

  /// Drops all recorded events and disables the tracer.
  void reset();

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::vector<TraceEvent> Ring;
  /// Enabled categories; empty means every category records.
  std::vector<std::string> Categories;
  /// Events rejected by the category filter since enable().
  uint64_t Filtered = 0;
  /// Total events recorded; Head % Ring.size() is the next slot.
  uint64_t Head = 0;
  /// steady_clock epoch (microseconds) set at enable().
  int64_t EpochMicros = 0;
};

/// RAII span guard: records a Begin event on construction and the
/// matching End on destruction. Arguments attached with `arg()` are
/// emitted with the End event, so values computed inside the span
/// (counts, outcomes) can be attached before it closes.
class Span {
public:
#if CWS_OBS_ENABLED
  Span(const char *Category, const char *Name)
      : Category(Category), Name(Name),
        Active(Tracer::global().enabled()) {
    if (Active)
      Tracer::global().record(TracePhase::Begin, Category, Name);
  }
  Span(const char *Category, const char *Name, const char *Key,
       int64_t Value)
      : Span(Category, Name) {
    arg(Key, Value);
  }
  ~Span() {
    if (Active)
      Tracer::global().record(TracePhase::End, Category, Name, Args,
                              ArgCount);
  }
  /// Attaches a numeric argument to the closing event (at most two;
  /// later calls overwrite the second slot).
  void arg(const char *Key, int64_t Value) {
    if (!Active)
      return;
    size_t Slot = ArgCount < 2 ? ArgCount++ : 1;
    Args[Slot] = TraceArg{Key, Value};
  }

private:
  const char *Category;
  const char *Name;
  TraceArg Args[2];
  uint8_t ArgCount = 0;
  bool Active;
#else
  Span(const char *, const char *) {}
  Span(const char *, const char *, const char *, int64_t) {}
  void arg(const char *, int64_t) {}
#endif

public:
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
};

/// Publishes the global tracer's loss counters into \p R as
/// `cws_trace_filtered_total` / `cws_trace_dropped_total` gauges, so
/// exported metrics snapshots show whether (and how much of) the trace
/// is incomplete.
void publishTraceStats(Registry &R);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_TRACE_H
