//===-- obs/Journal.h - Per-job decision journal ----------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-job decision journal ("flight recorder"): an append-only,
/// thread-safe ring of structured events recording the full causal
/// chain of every job through the job-flow level — arrival, admission
/// verdict, per-variant strategy-build outcomes, collisions, background
/// -load invalidations, shift-recovery attempts, reallocations,
/// dispatch decisions, commits, rejections and kills. Exported as JSONL
/// (one event per line) for `cws-explain`.
///
/// The journal is disabled by default. While disabled, `enabled()` is a
/// single relaxed atomic load, so call sites guard emission with
///
///   obs::Journal &Jn = obs::Journal::global();
///   if (Jn.enabled())
///     Jn.append(obs::JournalKind::Commit, J.id(), Now, {{"variant", 2}});
///
/// and the instrumentation may stay in hot paths permanently (the
/// `bench/obs_overhead` binary guards this). With `CWS_OBS_ENABLED=0`
/// `enabled()` is a compile-time `false` and emission code dead-strips.
///
/// Causality: the journal links each event to the previous event of the
/// same job automatically (`Cause`), so per-job chains reconstruct
/// without caller bookkeeping; `Invalidate`/`Reallocate` events also
/// get a `Trigger` reference to the most recent `EnvChange` event (the
/// background arrival that aged the strategy). Events carry the
/// simulation tick only — never wall-clock time — so an enabled-mode
/// journal is byte-identical for a fixed seed at any `--build-threads`
/// lane count (variant events are emitted post-merge, in (level, bias)
/// order, on the calling thread).
///
/// Event names, argument keys and `Detail` strings must be string
/// literals (or otherwise outlive the journal): the ring stores the
/// pointers only.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_JOURNAL_H
#define CWS_OBS_JOURNAL_H

#include "obs/Provenance.h"

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#ifndef CWS_OBS_ENABLED
#define CWS_OBS_ENABLED 1
#endif

namespace cws {
namespace obs {

class Registry;

/// The decision kinds the job-flow level records. The names are the
/// JSONL schema; `docs/OBSERVABILITY.md` documents each field-by-field.
enum class JournalKind : uint8_t {
  /// A job entered a flow (args: deadline, tasks; detail: strategy type).
  Arrival,
  /// Admission verdict at arrival (args: admissible, feasible, variants,
  /// forecast_variant, forecast_start, collisions).
  Admission,
  /// One supporting schedule built by Strategy::build (args: level,
  /// bias, feasible, cost, cf, makespan; detail: bias name).
  Variant,
  /// A critical-work collision and its resolution (args: variant, task,
  /// node, wanted, actual, owner; detail: resolution).
  Collision,
  /// The environment changed (args: node, start, end; detail: source).
  EnvChange,
  /// A strategy lost every fitting variant (args: variant, node, start,
  /// end, busy_start, busy_end, ttl; trigger: the breaking EnvChange).
  Invalidate,
  /// Shift recovery of a stale supporting schedule was attempted
  /// (args: variant, delta, cost).
  ShiftAttempt,
  /// The metascheduler replaced the job's stale strategy — by staged
  /// repair in repair mode, by full rebuild otherwise (trigger: the
  /// most recent EnvChange).
  Reallocate,
  /// The staged repair of a stale strategy began (repair mode only;
  /// args: variants — feasible candidates considered).
  RepairAttempt,
  /// How one staged repair resolved (args: stage 1|2|3, ok, plus
  /// delta for stage 1 and works/pinned for stage 2; detail: "shift" /
  /// "dp" / "rebuild" / "failed").
  RepairOutcome,
  /// The dispatcher routed the job to a domain (args: domain, bids;
  /// detail: policy name).
  Dispatch,
  /// One commit attempt at the metascheduler (args: cost, ok; detail:
  /// "ok" / "quota-denied" / "slot-conflict").
  CommitAttempt,
  /// A supporting schedule was committed (args: variant, start,
  /// makespan, cost, cf, shift; detail: how the variant was reached).
  Commit,
  /// The job was rejected (detail: reason).
  Reject,
  /// Execution under runtime deviations finished (args: completion,
  /// killed; detail: "ok" / "wall-limit-kill").
  Execution,
  /// The job's last reservation ended (args: ttl).
  Complete,
  /// Free-form marker (sim run boundaries, bench probes).
  Note,
};

inline constexpr size_t JournalKindCount = 17;

/// Stable schema name ("arrival", "commit", ...).
const char *journalKindName(JournalKind Kind);

/// Parses a schema name back; returns false when unknown.
bool journalKindFromName(const std::string &Name, JournalKind &Out);

/// One named integer argument. Keys must be string literals.
struct JournalArg {
  const char *Key = nullptr;
  int64_t Value = 0;
};

/// One recorded event (one ring slot).
struct JournalEvent {
  static constexpr size_t MaxArgs = 8;

  /// 1-based monotone id; orders events across ring wraparound.
  uint64_t Id = 0;
  /// Id of the previous event of the same job (0 = chain head).
  uint64_t Cause = 0;
  /// Cross-chain trigger (e.g. the EnvChange that broke a strategy).
  uint64_t Trigger = 0;
  /// Job the event belongs to; -1 for job-agnostic events (EnvChange).
  int64_t JobId = -1;
  /// Flow the job belongs to; -1 when unknown (inherited from the
  /// job's Arrival event when available).
  int32_t FlowId = -1;
  /// Simulation tick the decision was taken at.
  int64_t At = 0;
  JournalKind Kind = JournalKind::Note;
  uint8_t ArgCount = 0;
  const char *Detail = nullptr;
  JournalArg Args[MaxArgs];
};

/// A deferred batch of journal events, captured by one thread during a
/// parallel phase and replayed later in canonical order. The buffer
/// stores the caller-visible fields only; `Id`, `Cause`, `Trigger`
/// resolution and flow inheritance are computed at replay, so a
/// captured-and-replayed stream is byte-identical to the same calls
/// appended directly in replay order.
struct JournalBuffer {
  struct Pending {
    JournalKind Kind = JournalKind::Note;
    int64_t JobId = -1;
    int64_t At = 0;
    uint8_t ArgCount = 0;
    JournalArg Args[JournalEvent::MaxArgs];
    const char *Detail = nullptr;
    int FlowId = -1;
    uint64_t Trigger = 0;
  };
  std::vector<Pending> Events;

  bool empty() const { return Events.empty(); }
  void clear() { Events.clear(); }
};

/// Thread-safe append-only ring journal.
class Journal {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  /// The process-wide journal the built-in instrumentation appends to.
  static Journal &global();

  /// Starts recording into a fresh ring of \p Capacity slots; clears
  /// the causal bookkeeping.
  void enable(size_t Capacity = DefaultCapacity);

  /// Stops recording. Already recorded events stay exportable.
  void disable();

  /// Stamps the run provenance (seed, config hash, CLI, scenario id)
  /// into the `journal.meta` header of every later export, so
  /// aggregators can verify which run a journal belongs to. Cleared by
  /// enable() and reset().
  void setProvenance(RunProvenance P);
  RunProvenance provenance() const;

  bool enabled() const {
#if CWS_OBS_ENABLED
    return On.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Appends one event and returns its id (0 while disabled). `Cause`
  /// is filled from the job's previous event; `FlowId < 0` inherits the
  /// flow recorded by the job's earlier events; `Trigger == 0` on
  /// Invalidate/Reallocate events resolves to the last EnvChange.
  uint64_t append(JournalKind Kind, int64_t JobId, int64_t At,
                  std::initializer_list<JournalArg> Args = {},
                  const char *Detail = nullptr, int FlowId = -1,
                  uint64_t Trigger = 0);

  /// Replays \p Buf through append() in capture order and clears it.
  /// Serial: call from one thread after the parallel phase ended.
  void appendBuffered(JournalBuffer &Buf);

  /// Replays several capture buffers merged by ascending job id (stable
  /// within a job) and clears them. This is the shard-merge primitive:
  /// each shard's buffer is already in ascending-job order and jobs
  /// never span shards, so the merged stream equals the order a single
  /// shard would have produced.
  void appendBufferedByJob(const std::vector<JournalBuffer *> &Buffers);

  /// Events appended since enable() (including overwritten ones).
  uint64_t recorded() const;
  /// Events lost to ring wraparound.
  uint64_t dropped() const;
  /// Id of the most recent EnvChange event (0 = none yet).
  uint64_t lastEnvChange() const;

  /// Copies the surviving events out in append order.
  std::vector<JournalEvent> snapshot() const;

  /// Renders the surviving events as JSONL: one `journal.meta` header
  /// line (schema version, recorded/dropped counts) followed by one
  /// JSON object per event. Pure function of the event stream — no
  /// wall-clock fields — so fixed seeds give byte-identical output.
  std::string jsonl() const;

  /// Writes jsonl() to \p Path; returns false on I/O failure.
  bool writeJsonl(const std::string &Path) const;

  /// Drops everything and disables the journal.
  void reset();

private:
  friend class JournalCaptureScope;

  /// The locked ring-write core shared by append() and the buffered
  /// replays.
  uint64_t appendEvent(const JournalBuffer::Pending &P);

  std::atomic<bool> On{false};
  mutable std::mutex Mu;
  RunProvenance Prov;
  std::vector<JournalEvent> Ring;
  /// Total events appended; Head % Ring.size() is the next slot.
  uint64_t Head = 0;
  uint64_t LastEnvChangeId = 0;
  /// Last event id per job (the automatic `Cause` chain).
  std::unordered_map<int64_t, uint64_t> LastOf;
  /// Flow per job, learned from the first event that carries one.
  std::unordered_map<int64_t, int32_t> FlowOf;
};

/// RAII capture scope: while alive, every append() *this thread* makes
/// to \p J lands in \p Buf instead of the ring (other threads are
/// unaffected — the sink is thread-local). Scopes nest; destruction
/// restores the previous sink. Parallel phases wrap each body in a
/// scope over a per-slot buffer, then the serial phase replays the
/// buffers in canonical order, keeping the exported stream independent
/// of thread interleaving. A no-op while the journal is disabled.
class JournalCaptureScope {
public:
  JournalCaptureScope(Journal &J, JournalBuffer *Buf);
  ~JournalCaptureScope();

  JournalCaptureScope(const JournalCaptureScope &) = delete;
  JournalCaptureScope &operator=(const JournalCaptureScope &) = delete;

private:
  JournalBuffer *Prev;
};

/// Publishes the journal's loss counters into \p R as
/// `cws_journal_recorded_total` / `cws_journal_dropped_total` gauges.
void publishJournalStats(Registry &R);

//===----------------------------------------------------------------------===//
// JSONL parsing (cws-explain, tests)
//===----------------------------------------------------------------------===//

/// One parsed event; strings are owned (the journal's literal-pointer
/// contract does not survive a file round-trip).
struct ParsedJournalEvent {
  uint64_t Id = 0;
  uint64_t Cause = 0;
  uint64_t Trigger = 0;
  int64_t JobId = -1;
  int64_t FlowId = -1;
  int64_t At = 0;
  std::string Kind;
  std::string Detail;
  std::vector<std::pair<std::string, int64_t>> Args;

  /// Pointer to the value of \p Key, or nullptr when absent.
  const int64_t *arg(const std::string &Key) const;
};

/// A parsed journal file: the meta header plus the surviving events.
struct ParsedJournal {
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
  /// Provenance stamp of the meta header; `!Prov.valid()` for files
  /// written before stamping existed (or by unstamped tools).
  RunProvenance Prov;
  std::vector<ParsedJournalEvent> Events;

  /// Event with \p Id (binary search; ids are ascending), or nullptr.
  const ParsedJournalEvent *byId(uint64_t Id) const;
};

/// Parses JSONL text written by Journal::jsonl(). Returns false and
/// sets \p Error (with a 1-based line number) on malformed input.
bool parseJournalJsonl(const std::string &Text, ParsedJournal &Out,
                       std::string &Error);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_JOURNAL_H
