//===-- obs/TimeSeries.cpp - Sim-time telemetry sampler -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"
#include "obs/Metrics.h"
#include "support/Check.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace cws;
using namespace cws::obs;

TimeSeries &TimeSeries::global() {
  static TimeSeries T;
  return T;
}

void TimeSeries::enable(TimeSeriesConfig C) {
  CWS_CHECK(C.SampleEvery > 0, "sampling cadence must be positive");
  CWS_CHECK(C.Capacity > 0, "sampler needs a non-empty frame ring");
  std::lock_guard<std::mutex> Lock(Mu);
  Config = C;
  Probes.clear();
  OccupancyProvider = nullptr;
  FlowLabels.clear();
  FlowProvider = nullptr;
  Ring.assign(Config.Capacity, TimeSeriesFrame{});
  Head = 0;
  SliceRing.assign(Config.SliceCapacity, OccupancySlice{});
  SliceHead = 0;
  NextSampleAt = 0;
  LastFrameAt = 0;
  LastReason = nullptr;
  Prov = RunProvenance{};
  On.store(true, std::memory_order_relaxed);
}

void TimeSeries::disable() { On.store(false, std::memory_order_relaxed); }

void TimeSeries::setProvenance(RunProvenance P) {
  std::lock_guard<std::mutex> Lock(Mu);
  Prov = std::move(P);
}

RunProvenance TimeSeries::provenance() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Prov;
}

void TimeSeries::reset() {
  disable();
  std::lock_guard<std::mutex> Lock(Mu);
  Probes.clear();
  OccupancyProvider = nullptr;
  FlowLabels.clear();
  FlowProvider = nullptr;
  Ring.clear();
  Head = 0;
  SliceRing.clear();
  SliceHead = 0;
  NextSampleAt = 0;
  LastFrameAt = 0;
  LastReason = nullptr;
  Prov = RunProvenance{};
}

void TimeSeries::addProbe(const char *Name, std::function<double()> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  Probes.push_back(Probe{Name, std::move(Fn)});
}

void TimeSeries::addDefaultProbes(Registry &R) {
  // Every probed counter is a count of deterministic *simulation*
  // decisions (never wall-clock time), exported as the delta since this
  // call so series from successive runs in one process agree.
  auto Delta = [this, &R](const char *Short, const char *Metric,
                          const char *Help) {
    Counter &C = R.counter(Metric, Help);
    uint64_t Base = C.value();
    addProbe(Short, [&C, Base] {
      return static_cast<double>(C.value() - Base);
    });
  };
  Delta("jobs_submitted", "cws_jobs_submitted_total",
        "jobs that entered the flow");
  Delta("jobs_admissible", "cws_jobs_admissible_total",
        "jobs whose arrival strategy had a feasible variant");
  Delta("jobs_committed", "cws_jobs_committed_total",
        "jobs with a committed schedule");
  Delta("jobs_rejected", "cws_jobs_rejected_total",
        "jobs rejected at negotiation (stale, unaffordable or raced)");
  Delta("jobs_invalidated", "cws_jobs_invalidated_total",
        "strategies that lost every fitting variant to background load");
  Delta("jobs_shift_recovered", "cws_jobs_shift_recovered_total",
        "stale schedules recovered by shifting them whole");
  Delta("jobs_reallocated", "cws_jobs_reallocated_total",
        "jobs committed only after a full reallocation");
  Delta("jobs_completed", "cws_jobs_completed_total",
        "jobs that ran to completion");
  Delta("meta_commits", "cws_meta_commits_total",
        "supporting schedules committed");
  Delta("meta_commit_conflicts", "cws_meta_commit_conflicts_total",
        "commits refused because a reserved slot was no longer free");
  Delta("meta_reallocations", "cws_meta_reallocations_total",
        "reallocations that delivered an admissible replacement strategy");
  Delta("meta_realloc_attempts", "cws_meta_realloc_attempts_total",
        "reallocation requests received, before the outcome is known");
  Delta("meta_realloc_repaired_shift",
        "cws_meta_realloc_repaired_total{stage=\"shift\"}",
        "reallocations resolved by shifting the one broken reservation");
  Delta("meta_realloc_repaired_dp",
        "cws_meta_realloc_repaired_total{stage=\"dp\"}",
        "reallocations resolved by re-running the DP for the broken works");
  Delta("meta_realloc_rebuilt", "cws_meta_realloc_rebuilt_total",
        "reallocations that fell through to the full strategy rebuild");
  Delta("meta_realloc_failed", "cws_meta_realloc_failed_total",
        "reallocations whose rebuild came back inadmissible");
  Delta("env_changes", "cws_env_changes_total",
        "background placements that changed the environment");
  Delta("env_scan_placements", "cws_env_scan_placements_total",
        "placements scanned re-validating strategies on env changes");
  Delta("env_index_candidates", "cws_env_index_candidates_total",
        "jobs whose indexed slots intersected a changed range");
  Delta("env_index_placements", "cws_env_index_placements_total",
        "placements re-validated by the slot-index intersection pass");
  Delta("sim_events", "cws_sim_events_total",
        "simulation events dispatched");
  Gauge &Depth = R.gauge("cws_sim_queue_depth",
                         "events pending in the simulator queue");
  addProbe("sim_queue_depth",
           [&Depth] { return static_cast<double>(Depth.value()); });
}

void TimeSeries::setOccupancyProvider(
    std::function<std::vector<NodeOccupancy>(Tick, Tick)> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  OccupancyProvider = std::move(Fn);
}

void TimeSeries::setFlowProvider(std::vector<std::string> Names,
                                 std::function<std::vector<FlowSample>()> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  FlowLabels = std::move(Names);
  FlowProvider = std::move(Fn);
}

void TimeSeries::clearProviders() {
  // Drop only the callables (they capture references into the run's
  // grid and managers); names stay so recorded frames still export.
  std::lock_guard<std::mutex> Lock(Mu);
  for (Probe &P : Probes)
    P.Fn = nullptr;
  OccupancyProvider = nullptr;
  FlowProvider = nullptr;
}

void TimeSeries::capture(Tick Now, const char *Reason) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.empty())
    return; // reset() raced the enabled check.
  TimeSeriesFrame &F = Ring[Head % Ring.size()];
  F.Seq = Head;
  F.At = Now;
  F.Reason = Reason;
  F.Metrics.clear();
  for (const Probe &P : Probes)
    F.Metrics.push_back(P.Fn ? P.Fn() : 0.0);
  F.Nodes.clear();
  if (OccupancyProvider)
    F.Nodes = OccupancyProvider(LastFrameAt, Now);
  F.Flows.clear();
  if (FlowProvider)
    F.Flows = FlowProvider();
  ++Head;
  LastFrameAt = Now;
  LastReason = Reason;
}

void TimeSeries::tick(Tick Now) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Ring.empty() || Now < NextSampleAt)
      return;
    NextSampleAt = (Now / Config.SampleEvery + 1) * Config.SampleEvery;
  }
  capture(Now, "sample");
}

void TimeSeries::event(Tick Now, const char *Reason) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Ring.empty())
      return;
    // Same-tick repeats of one event kind (e.g. several background
    // placements landing on one tick) coalesce into the frame already
    // taken.
    if (Head > 0 && LastFrameAt == Now && LastReason &&
        std::strcmp(LastReason, Reason) == 0)
      return;
  }
  capture(Now, Reason);
}

void TimeSeries::addOccupancySlice(unsigned Node, Tick Begin, Tick End,
                                   const char *Kind, uint64_t Owner) {
  if (Begin >= End)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (SliceRing.empty())
    return;
  SliceRing[SliceHead % SliceRing.size()] =
      OccupancySlice{Node, Begin, End, Kind, Owner};
  ++SliceHead;
}

uint64_t TimeSeries::recorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head;
}

uint64_t TimeSeries::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Head > Ring.size() ? Head - Ring.size() : 0;
}

uint64_t TimeSeries::slicesRecorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return SliceHead;
}

uint64_t TimeSeries::slicesDropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return SliceHead > SliceRing.size() ? SliceHead - SliceRing.size() : 0;
}

std::vector<TimeSeriesFrame> TimeSeries::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TimeSeriesFrame> Out;
  if (Ring.empty())
    return Out;
  uint64_t Size = Head < Ring.size() ? Head : Ring.size();
  Out.reserve(Size);
  uint64_t Start = Head < Ring.size() ? 0 : Head;
  for (uint64_t I = 0; I < Size; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

std::vector<OccupancySlice> TimeSeries::slices() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<OccupancySlice> Out;
  if (SliceRing.empty())
    return Out;
  uint64_t Size = SliceHead < SliceRing.size() ? SliceHead : SliceRing.size();
  Out.reserve(Size);
  uint64_t Start = SliceHead < SliceRing.size() ? 0 : SliceHead;
  for (uint64_t I = 0; I < Size; ++I)
    Out.push_back(SliceRing[(Start + I) % SliceRing.size()]);
  return Out;
}

std::vector<std::string> TimeSeries::metricNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (const Probe &P : Probes)
    Out.push_back(P.Name);
  return Out;
}

std::vector<std::string> TimeSeries::flowNames() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return FlowLabels;
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

/// Escapes a string for a JSON literal (names are identifiers in
/// practice, but the exporter must never emit invalid JSON).
static void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string TimeSeries::csv() const {
  std::vector<TimeSeriesFrame> Frames = snapshot();
  std::vector<std::string> Metrics = metricNames();
  std::vector<std::string> Flows = flowNames();
  std::string Out = provenanceCsvComment(provenance());
  Out += "seq,tick,reason,series,node,flow,value\n";
  for (const TimeSeriesFrame &F : Frames) {
    std::string Prefix = std::to_string(F.Seq) + "," +
                         std::to_string(F.At) + "," +
                         (F.Reason ? F.Reason : "") + ",";
    size_t N = F.Metrics.size() < Metrics.size() ? F.Metrics.size()
                                                 : Metrics.size();
    for (size_t I = 0; I < N; ++I)
      Out += Prefix + Metrics[I] + ",,," + renderNumber(F.Metrics[I]) + "\n";
    for (size_t I = 0; I < F.Nodes.size(); ++I) {
      const NodeOccupancy &O = F.Nodes[I];
      std::string Node = std::to_string(I);
      Out += Prefix + "util_busy," + Node + ",," + renderNumber(O.Busy) +
             "\n";
      Out += Prefix + "util_background," + Node + ",," +
             renderNumber(O.Background) + "\n";
      Out += Prefix + "util_reserved," + Node + ",," +
             renderNumber(O.Reserved) + "\n";
    }
    size_t K = F.Flows.size() < Flows.size() ? F.Flows.size() : Flows.size();
    for (size_t I = 0; I < K; ++I) {
      Out += Prefix + "queued,," + Flows[I] + "," +
             std::to_string(F.Flows[I].Queued) + "\n";
      Out += Prefix + "in_flight,," + Flows[I] + "," +
             std::to_string(F.Flows[I].InFlight) + "\n";
    }
  }
  return Out;
}

std::string TimeSeries::jsonl() const {
  std::vector<TimeSeriesFrame> Frames = snapshot();
  std::vector<std::string> Metrics = metricNames();
  std::vector<std::string> Flows = flowNames();
  std::string Out = "{\"kind\":\"timeseries.meta\",\"schema\":1";
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out += ",\"sample_every\":" + std::to_string(Config.SampleEvery);
    if (Prov.Stamped) {
      Out += ",\"seed\":" + std::to_string(Prov.Seed) + ",\"config_hash\":";
      appendJsonString(Out, Prov.ConfigHash);
      Out += ",\"scenario\":";
      appendJsonString(Out, Prov.ScenarioId);
      Out += ",\"cli\":";
      appendJsonString(Out, Prov.Cli);
    }
  }
  Out += ",\"recorded\":" + std::to_string(recorded()) +
         ",\"dropped\":" + std::to_string(dropped()) + ",\"metrics\":[";
  for (size_t I = 0; I < Metrics.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonString(Out, Metrics[I]);
  }
  Out += "],\"flows\":[";
  for (size_t I = 0; I < Flows.size(); ++I) {
    if (I)
      Out += ",";
    appendJsonString(Out, Flows[I]);
  }
  Out += "]}\n";
  for (const TimeSeriesFrame &F : Frames) {
    Out += "{\"seq\":" + std::to_string(F.Seq) +
           ",\"tick\":" + std::to_string(F.At) + ",\"reason\":";
    appendJsonString(Out, F.Reason ? F.Reason : "");
    Out += ",\"metrics\":{";
    size_t N = F.Metrics.size() < Metrics.size() ? F.Metrics.size()
                                                 : Metrics.size();
    for (size_t I = 0; I < N; ++I) {
      if (I)
        Out += ",";
      appendJsonString(Out, Metrics[I]);
      Out += ":" + renderNumber(F.Metrics[I]);
    }
    Out += "},\"nodes\":[";
    for (size_t I = 0; I < F.Nodes.size(); ++I) {
      if (I)
        Out += ",";
      Out += "[" + renderNumber(F.Nodes[I].Busy) + "," +
             renderNumber(F.Nodes[I].Background) + "," +
             renderNumber(F.Nodes[I].Reserved) + "]";
    }
    Out += "],\"flows\":[";
    size_t K = F.Flows.size() < Flows.size() ? F.Flows.size() : Flows.size();
    for (size_t I = 0; I < K; ++I) {
      if (I)
        Out += ",";
      Out += "[" + std::to_string(F.Flows[I].Queued) + "," +
             std::to_string(F.Flows[I].InFlight) + "]";
    }
    Out += "]}\n";
  }
  return Out;
}

bool TimeSeries::writeFile(const std::string &Path) const {
  bool Jsonl = Path.size() >= 6 &&
               Path.compare(Path.size() - 6, 6, ".jsonl") == 0;
  std::string Text = Jsonl ? jsonl() : csv();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

std::string TimeSeries::chromeTraceEvents() const {
  std::vector<TimeSeriesFrame> Frames = snapshot();
  std::vector<OccupancySlice> Slices = slices();
  std::vector<std::string> Metrics = metricNames();
  std::vector<std::string> Flows = flowNames();
  std::string Out;
  auto Emit = [&Out](const std::string &Event) {
    if (!Out.empty())
      Out += ",";
    Out += Event;
  };
  // Everything lives on pid 2 with timestamps in simulation ticks, so
  // the sim-time tracks group separately from the wall-clock spans of
  // pid 1.
  Emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
       "\"args\":{\"name\":\"sim-time (ticks)\"}}");
  Emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
       "\"args\":{\"name\":\"metrics\"}}");
  Emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
       "\"args\":{\"name\":\"flows + grid\"}}");
  size_t NodeCount = 0;
  for (const TimeSeriesFrame &F : Frames)
    NodeCount = std::max(NodeCount, F.Nodes.size());
  for (const OccupancySlice &S : Slices)
    NodeCount = std::max(NodeCount, static_cast<size_t>(S.Node) + 1);
  for (size_t I = 0; I < NodeCount; ++I)
    Emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" +
         std::to_string(100 + I) + ",\"args\":{\"name\":\"node " +
         std::to_string(I) + "\"}}");
  for (const TimeSeriesFrame &F : Frames) {
    std::string Ts = std::to_string(F.At);
    size_t N = F.Metrics.size() < Metrics.size() ? F.Metrics.size()
                                                 : Metrics.size();
    for (size_t I = 0; I < N; ++I) {
      std::string E = "{\"name\":";
      appendJsonString(E, Metrics[I]);
      E += ",\"ph\":\"C\",\"ts\":" + Ts + ",\"pid\":2,\"tid\":0,"
           "\"args\":{\"value\":" + renderNumber(F.Metrics[I]) + "}}";
      Emit(E);
    }
    size_t K = F.Flows.size() < Flows.size() ? F.Flows.size() : Flows.size();
    for (size_t I = 0; I < K; ++I) {
      std::string E = "{\"name\":";
      appendJsonString(E, "flow " + Flows[I] + " jobs");
      E += ",\"ph\":\"C\",\"ts\":" + Ts + ",\"pid\":2,\"tid\":1,"
           "\"args\":{\"queued\":" + std::to_string(F.Flows[I].Queued) +
           ",\"in_flight\":" + std::to_string(F.Flows[I].InFlight) + "}}";
      Emit(E);
    }
    if (!F.Nodes.empty()) {
      double Busy = 0, Background = 0;
      for (const NodeOccupancy &O : F.Nodes) {
        Busy += O.Busy;
        Background += O.Background;
      }
      double Scale = 100.0 / static_cast<double>(F.Nodes.size());
      Emit("{\"name\":\"grid utilization %\",\"ph\":\"C\",\"ts\":" + Ts +
           ",\"pid\":2,\"tid\":1,\"args\":{\"busy\":" +
           renderNumber(Busy * Scale) + ",\"background\":" +
           renderNumber(Background * Scale) + "}}");
    }
  }
  for (const OccupancySlice &S : Slices) {
    std::string E = "{\"name\":";
    appendJsonString(E, S.Kind ? S.Kind : "other");
    E += ",\"cat\":\"occupancy\",\"ph\":\"X\",\"ts\":" +
         std::to_string(S.Begin) +
         ",\"dur\":" + std::to_string(S.End - S.Begin) +
         ",\"pid\":2,\"tid\":" + std::to_string(100 + S.Node) +
         ",\"args\":{\"owner\":" + std::to_string(S.Owner) + "}}";
    Emit(E);
  }
  return Out;
}

void cws::obs::publishTimeSeriesStats(Registry &R) {
  const TimeSeries &T = TimeSeries::global();
  R.gauge("cws_timeseries_frames_total",
          "time-series frames recorded since enable")
      .set(static_cast<int64_t>(T.recorded()));
  R.gauge("cws_timeseries_dropped",
          "time-series frames lost to ring wraparound")
      .set(static_cast<int64_t>(T.dropped()));
  R.gauge("cws_timeseries_slices_total",
          "occupancy slices recorded since enable")
      .set(static_cast<int64_t>(T.slicesRecorded()));
  R.gauge("cws_timeseries_slices_dropped",
          "occupancy slices lost to ring wraparound")
      .set(static_cast<int64_t>(T.slicesDropped()));
}
