//===-- obs/TimeSeries.h - Sim-time telemetry sampler -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sim-time telemetry: a sampler driven by the `Simulator` clock that
/// records *trajectories* instead of end-of-run aggregates. Every
/// `SampleEvery` simulation ticks — and on key scheduling events
/// (environment change, reallocation, commit, dispatch) — it captures
/// one frame into a bounded deterministic ring:
///
///  - the values of a set of registered metric probes (deltas of
///    deterministic registry counters, so two runs in one process
///    produce identical series);
///  - per-node utilization splits (busy-by-jobs / busy-by-background
///    fractions of the elapsed window, plus the reserved fraction of
///    the lookahead window), computed from `resource/Timeline` via an
///    injected provider so this layer stays below `resource`;
///  - per-flow in-flight / queued job counts.
///
/// Frames carry the simulation tick only — never wall-clock time — so
/// for a fixed seed the exported series is byte-identical at any
/// `--build-threads` lane count. The sampler is disabled by default;
/// while disabled `onTick()` is one relaxed atomic load plus a branch
/// (guarded by `bench/obs_overhead`), and with `CWS_OBS_ENABLED=0` it
/// compiles out entirely.
///
/// Exports: tidy CSV / JSON-lines (`--timeseries=FILE`), and a Chrome
/// trace-event fragment (counter tracks + per-node occupancy slices)
/// that `Tracer::chromeJson` merges next to the wall-clock spans.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_OBS_TIMESERIES_H
#define CWS_OBS_TIMESERIES_H

#include "obs/Provenance.h"
#include "sim/Time.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#ifndef CWS_OBS_ENABLED
#define CWS_OBS_ENABLED 1
#endif

namespace cws {
namespace obs {

class Registry;

/// Sampler parameters.
struct TimeSeriesConfig {
  /// Periodic frame cadence: a frame is taken at the first simulation
  /// event whose tick reaches each multiple of this.
  Tick SampleEvery = 25;
  /// Frame ring capacity; the oldest frames are overwritten first and
  /// losses are counted (`cws_timeseries_dropped`).
  size_t Capacity = 1 << 13;
  /// Occupancy-slice ring capacity (per-node reservation intervals
  /// exported into the merged trace).
  size_t SliceCapacity = 1 << 16;
  /// Window [now, now + ReservedLookahead) the per-node `Reserved`
  /// fraction is computed over.
  Tick ReservedLookahead = 200;
};

/// Per-node utilization split of one frame. `Busy` and `Background`
/// are fractions of the *elapsed* window (previous frame tick .. this
/// frame tick) and sum to <= 1; `Reserved` is the busy fraction of the
/// *lookahead* window starting at the frame tick.
struct NodeOccupancy {
  double Busy = 0.0;
  double Background = 0.0;
  double Reserved = 0.0;
};

/// Per-flow job counts of one frame.
struct FlowSample {
  /// Admissible jobs still negotiating (no committed schedule yet).
  int64_t Queued = 0;
  /// Committed jobs whose completion has not fired yet.
  int64_t InFlight = 0;
};

/// One recorded frame (one ring slot).
struct TimeSeriesFrame {
  /// 0-based monotone frame number; survives ring wraparound.
  uint64_t Seq = 0;
  /// Simulation tick the frame was taken at.
  Tick At = 0;
  /// "sample" for periodic frames, else the event that forced the
  /// frame ("env.change", "commit", "reallocate", "dispatch", ...).
  /// Must be a string literal (the ring stores the pointer).
  const char *Reason = "sample";
  /// Probe values, parallel to `TimeSeries::metricNames()`.
  std::vector<double> Metrics;
  /// Per-node utilization, indexed by node id (empty when no
  /// occupancy provider is wired).
  std::vector<NodeOccupancy> Nodes;
  /// Per-flow counts, parallel to `TimeSeries::flowNames()`.
  std::vector<FlowSample> Flows;
};

/// One reservation interval exported as a per-node occupancy slice in
/// the merged trace ("job" vs "background" tracks per node).
struct OccupancySlice {
  unsigned Node = 0;
  Tick Begin = 0;
  Tick End = 0;
  /// "job" | "background" | "other"; must be a string literal.
  const char *Kind = "other";
  uint64_t Owner = 0;
};

/// The sim-time telemetry sampler. Most code records through the
/// process-wide `TimeSeries::global()` instance; tests may construct
/// their own.
///
/// Threading: frames are only ever captured on the simulation thread
/// (the `Simulator` run loop and the event handlers it dispatches);
/// the mutex makes enable/export from other threads safe.
class TimeSeries {
public:
  static TimeSeries &global();

  /// Starts sampling into fresh rings; clears probes and providers.
  void enable(TimeSeriesConfig Config = TimeSeriesConfig());

  /// Stops sampling. Recorded frames stay exportable.
  void disable();

  /// Stamps the run provenance into every later export: a leading
  /// `# provenance ...` comment of the CSV form and extra fields of the
  /// `timeseries.meta` JSONL header. Cleared by enable() and reset().
  void setProvenance(RunProvenance P);
  RunProvenance provenance() const;

  /// The active configuration (as passed to enable()).
  TimeSeriesConfig config() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Config;
  }

  bool enabled() const {
#if CWS_OBS_ENABLED
    return On.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  //===--------------------------------------------------------------------===//
  // Wiring (done by the run harness once the grid and flows exist)
  //===--------------------------------------------------------------------===//

  /// Registers one metric probe; \p Name must be a string literal and
  /// becomes the `series` column of the CSV export. \p Fn runs on the
  /// simulation thread at every frame and must be deterministic (no
  /// wall-clock values).
  void addProbe(const char *Name, std::function<double()> Fn);

  /// Registers the standard probe set over \p R: the deterministic
  /// job-lifecycle, metascheduler, environment-change and simulator
  /// counters, each exported as its *delta* since this call — so two
  /// runs in one process (with the process-global monotone registry)
  /// still produce identical series.
  void addDefaultProbes(Registry &R);

  /// \p Fn computes per-node utilization for the elapsed window
  /// [PrevAt, Now); it runs on the simulation thread at every frame.
  void setOccupancyProvider(
      std::function<std::vector<NodeOccupancy>(Tick PrevAt, Tick Now)> Fn);

  /// \p Fn computes per-flow counts; \p Names labels the flows (the
  /// `flow` column of the CSV export).
  void setFlowProvider(std::vector<std::string> Names,
                       std::function<std::vector<FlowSample>()> Fn);

  /// Drops probes and providers (end of a run, before the grid and
  /// managers they capture go out of scope). Frames survive.
  void clearProviders();

  //===--------------------------------------------------------------------===//
  // Sampling
  //===--------------------------------------------------------------------===//

  /// Simulator hook: called as the clock advances; takes a periodic
  /// frame when \p Now reaches the next sampling boundary. No-op (one
  /// relaxed load + branch) while disabled.
  void onTick(Tick Now) {
#if CWS_OBS_ENABLED
    if (enabled())
      tick(Now);
#else
    (void)Now;
#endif
  }

  /// Event hook: forces a frame at \p Now tagged \p Reason (a string
  /// literal). Same-tick events with the same reason coalesce into one
  /// frame. No-op while disabled.
  void sampleEvent(Tick Now, const char *Reason) {
#if CWS_OBS_ENABLED
    if (enabled())
      event(Now, Reason);
#else
    (void)Now;
    (void)Reason;
#endif
  }

  /// Records one reservation interval for the per-node occupancy
  /// tracks of the merged trace (typically dumped once at run end).
  void addOccupancySlice(unsigned Node, Tick Begin, Tick End,
                         const char *Kind, uint64_t Owner);

  //===--------------------------------------------------------------------===//
  // Export
  //===--------------------------------------------------------------------===//

  /// Frames recorded since enable() (including overwritten ones).
  uint64_t recorded() const;
  /// Frames lost to ring wraparound.
  uint64_t dropped() const;
  /// Occupancy slices recorded / lost.
  uint64_t slicesRecorded() const;
  uint64_t slicesDropped() const;

  /// Copies the surviving frames out in record order.
  std::vector<TimeSeriesFrame> snapshot() const;
  std::vector<OccupancySlice> slices() const;

  /// Probe names in registration order.
  std::vector<std::string> metricNames() const;
  /// Flow names as registered by setFlowProvider.
  std::vector<std::string> flowNames() const;

  /// Tidy long-form CSV, one row per (frame, series):
  /// `seq,tick,reason,series,node,flow,value`. Metric rows leave
  /// `node`/`flow` empty; per-node rows use series `util_busy` /
  /// `util_background` / `util_reserved`; per-flow rows use `queued` /
  /// `in_flight`. Byte-deterministic for a fixed seed.
  std::string csv() const;

  /// JSON-lines export: one `timeseries.meta` header (schema version,
  /// cadence, recorded/dropped counts) then one object per frame.
  std::string jsonl() const;

  /// Writes jsonl() when \p Path ends in ".jsonl", csv() otherwise;
  /// returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

  /// Chrome trace-event objects (comma-separated, no surrounding
  /// brackets) rendering the frames as Perfetto counter tracks and the
  /// occupancy slices as per-node complete events, all on pid 2 with
  /// timestamps in simulation ticks. Feed to `Tracer::chromeJson`.
  std::string chromeTraceEvents() const;

  /// Drops everything and disables the sampler.
  void reset();

private:
  void tick(Tick Now);
  void event(Tick Now, const char *Reason);
  /// Captures one frame; caller holds no lock.
  void capture(Tick Now, const char *Reason);

  struct Probe {
    const char *Name;
    std::function<double()> Fn;
  };

  std::atomic<bool> On{false};
  mutable std::mutex Mu;
  RunProvenance Prov;
  TimeSeriesConfig Config;
  std::vector<Probe> Probes;
  std::function<std::vector<NodeOccupancy>(Tick, Tick)> OccupancyProvider;
  std::vector<std::string> FlowLabels;
  std::function<std::vector<FlowSample>()> FlowProvider;
  std::vector<TimeSeriesFrame> Ring;
  /// Total frames recorded; Head % Ring.size() is the next slot.
  uint64_t Head = 0;
  std::vector<OccupancySlice> SliceRing;
  uint64_t SliceHead = 0;
  /// Next periodic boundary (a multiple of Config.SampleEvery).
  Tick NextSampleAt = 0;
  /// Tick of the most recent frame (the elapsed-window start).
  Tick LastFrameAt = 0;
  /// Reason of the most recent frame at LastFrameAt (coalescing).
  const char *LastReason = nullptr;
};

/// Publishes the global sampler's loss counters into \p R as
/// `cws_timeseries_frames_total` / `cws_timeseries_dropped` (and the
/// slice equivalents) gauges, so metrics snapshots show whether the
/// exported series is complete.
void publishTimeSeriesStats(Registry &R);

} // namespace obs
} // namespace cws

#endif // CWS_OBS_TIMESERIES_H
