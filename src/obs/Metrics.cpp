//===-- obs/Metrics.cpp - Counters, gauges, histograms --------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "support/Check.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

using namespace cws;
using namespace cws::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)) {
  CWS_CHECK(!Bounds.empty(), "histogram needs at least one bucket bound");
  for (size_t I = 1; I < Bounds.size(); ++I)
    CWS_CHECK(Bounds[I - 1] < Bounds[I],
              "histogram bounds must be strictly increasing");
  Buckets = std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  size_t I = 0;
  while (I < Bounds.size() && X > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  uint64_t Old = SumBits.load(std::memory_order_relaxed);
  double New;
  do {
    double OldSum;
    std::memcpy(&OldSum, &Old, sizeof(OldSum));
    New = OldSum + X;
    uint64_t NewBits;
    std::memcpy(&NewBits, &New, sizeof(NewBits));
    if (SumBits.compare_exchange_weak(Old, NewBits,
                                      std::memory_order_relaxed))
      break;
  } while (true);
}

double Histogram::sum() const {
  uint64_t Bits = SumBits.load(std::memory_order_relaxed);
  double S;
  std::memcpy(&S, &Bits, sizeof(S));
  return S;
}

uint64_t Histogram::cumulativeCount(size_t I) const {
  uint64_t Total = 0;
  for (size_t B = 0; B <= I && B <= Bounds.size(); ++B)
    Total += bucketCount(B);
  return Total;
}

double Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return std::nan("");
  double Rank = Q * static_cast<double>(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I < Bounds.size(); ++I) {
    uint64_t InBucket = bucketCount(I);
    if (InBucket == 0)
      continue;
    if (static_cast<double>(Cum + InBucket) >= Rank) {
      // The first bucket's lower edge is taken as 0 when its bound is
      // positive (histogram_quantile's convention); non-positive first
      // bounds yield the bound itself.
      if (I == 0 && Bounds[0] <= 0)
        return Bounds[0];
      double Start = I == 0 ? 0.0 : Bounds[I - 1];
      double End = Bounds[I];
      double Frac = (Rank - static_cast<double>(Cum)) /
                    static_cast<double>(InBucket);
      if (Frac < 0)
        Frac = 0;
      if (Frac > 1)
        Frac = 1;
      return Start + (End - Start) * Frac;
    }
    Cum += InBucket;
  }
  // The rank lands in the +Inf bucket: best estimate is the highest
  // finite bound.
  return Bounds.back();
}

void Histogram::merge(const Histogram &Other) {
  CWS_CHECK(Bounds == Other.Bounds,
            "histogram merge requires identical bucket bounds");
  uint64_t Added = 0;
  for (size_t I = 0; I <= Bounds.size(); ++I) {
    uint64_t Cnt = Other.bucketCount(I);
    if (Cnt == 0)
      continue;
    Buckets[I].fetch_add(Cnt, std::memory_order_relaxed);
    Added += Cnt;
  }
  N.fetch_add(Added, std::memory_order_relaxed);
  double OtherSum = Other.sum();
  uint64_t Old = SumBits.load(std::memory_order_relaxed);
  do {
    double OldSum;
    std::memcpy(&OldSum, &Old, sizeof(OldSum));
    double New = OldSum + OtherSum;
    uint64_t NewBits;
    std::memcpy(&NewBits, &New, sizeof(NewBits));
    if (SumBits.compare_exchange_weak(Old, NewBits,
                                      std::memory_order_relaxed))
      break;
  } while (true);
}

void Histogram::reset() {
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  SumBits.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry &Registry::global() {
  static Registry R;
  return R;
}

Registry::Entry *Registry::find(const std::string &Name) {
  for (auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

const Registry::Entry *Registry::find(const std::string &Name) const {
  for (const auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

Counter &Registry::counter(const std::string &Name, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    CWS_CHECK(E->EntryKind == Kind::Counter,
              "metric re-registered under a different kind");
    return *E->C;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->EntryKind = Kind::Counter;
  E->C = std::make_unique<Counter>();
  Entries.push_back(std::move(E));
  return *Entries.back()->C;
}

Gauge &Registry::gauge(const std::string &Name, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    CWS_CHECK(E->EntryKind == Kind::Gauge,
              "metric re-registered under a different kind");
    return *E->G;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->EntryKind = Kind::Gauge;
  E->G = std::make_unique<Gauge>();
  Entries.push_back(std::move(E));
  return *Entries.back()->G;
}

RealGauge &Registry::realGauge(const std::string &Name,
                               const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    CWS_CHECK(E->EntryKind == Kind::RealGauge,
              "metric re-registered under a different kind");
    return *E->R;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->EntryKind = Kind::RealGauge;
  E->R = std::make_unique<RealGauge>();
  Entries.push_back(std::move(E));
  return *Entries.back()->R;
}

Histogram &Registry::histogram(const std::string &Name,
                               std::vector<double> UpperBounds,
                               const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    CWS_CHECK(E->EntryKind == Kind::Histogram,
              "metric re-registered under a different kind");
    return *E->H;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->EntryKind = Kind::Histogram;
  E->H = std::make_unique<Histogram>(std::move(UpperBounds));
  Entries.push_back(std::move(E));
  return *Entries.back()->H;
}

std::string cws::obs::renderNumber(double X) {
  char Buf[64];
  if (X == static_cast<double>(static_cast<long long>(X))) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(X));
    return Buf;
  }
  for (int Precision = 1; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, X);
    if (std::strtod(Buf, nullptr) == X)
      break;
  }
  return Buf;
}

std::string cws::obs::escapeLabelValue(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Metric family of a (possibly labeled) series name: everything
/// before the label braces.
static std::string familyOf(const std::string &Name) {
  size_t Brace = Name.find('{');
  return Brace == std::string::npos ? Name : Name.substr(0, Brace);
}

std::string Registry::prometheusText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  // Labeled series of one family (cws_flow_x{flow="S1"}, {flow="S2"},
  // ...) share one HELP/TYPE header.
  std::unordered_set<std::string> SeenFamilies;
  for (const auto &E : Entries) {
    std::string Family = familyOf(E->Name);
    bool FirstOfFamily = SeenFamilies.insert(Family).second;
    if (FirstOfFamily && !E->Help.empty())
      Out += "# HELP " + Family + " " + E->Help + "\n";
    switch (E->EntryKind) {
    case Kind::Counter:
      if (FirstOfFamily)
        Out += "# TYPE " + Family + " counter\n";
      Out += E->Name + " " + std::to_string(E->C->value()) + "\n";
      break;
    case Kind::Gauge:
      if (FirstOfFamily)
        Out += "# TYPE " + Family + " gauge\n";
      Out += E->Name + " " + std::to_string(E->G->value()) + "\n";
      break;
    case Kind::RealGauge:
      if (FirstOfFamily)
        Out += "# TYPE " + Family + " gauge\n";
      Out += E->Name + " " + renderNumber(E->R->value()) + "\n";
      break;
    case Kind::Histogram: {
      const Histogram &H = *E->H;
      if (FirstOfFamily)
        Out += "# TYPE " + Family + " histogram\n";
      uint64_t Cumulative = 0;
      for (size_t I = 0; I < H.bounds().size(); ++I) {
        Cumulative += H.bucketCount(I);
        Out += E->Name + "_bucket{le=\"" + renderNumber(H.bounds()[I]) +
               "\"} " + std::to_string(Cumulative) + "\n";
      }
      Cumulative += H.bucketCount(H.bounds().size());
      Out += E->Name + "_bucket{le=\"+Inf\"} " +
             std::to_string(Cumulative) + "\n";
      Out += E->Name + "_sum " + renderNumber(H.sum()) + "\n";
      Out += E->Name + "_count " + std::to_string(H.count()) + "\n";
      // Untyped quantile summaries computed from the buckets, so a
      // plain-text reader gets p50/p90/p99 without PromQL.
      if (H.count() > 0) {
        Out += E->Name + "_p50 " + renderNumber(H.quantile(0.50)) + "\n";
        Out += E->Name + "_p90 " + renderNumber(H.quantile(0.90)) + "\n";
        Out += E->Name + "_p99 " + renderNumber(H.quantile(0.99)) + "\n";
      }
      break;
    }
    }
  }
  return Out;
}

std::vector<Registry::Sample> Registry::samples() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Sample> Out;
  for (const auto &E : Entries) {
    switch (E->EntryKind) {
    case Kind::Counter:
      Out.push_back({E->Name, "counter", "", "",
                     static_cast<double>(E->C->value())});
      break;
    case Kind::Gauge:
      Out.push_back({E->Name, "gauge", "", "",
                     static_cast<double>(E->G->value())});
      break;
    case Kind::RealGauge:
      Out.push_back({E->Name, "gauge", "", "", E->R->value()});
      break;
    case Kind::Histogram: {
      const Histogram &H = *E->H;
      uint64_t Cumulative = 0;
      for (size_t I = 0; I < H.bounds().size(); ++I) {
        Cumulative += H.bucketCount(I);
        Out.push_back({E->Name, "histogram", "bucket",
                       renderNumber(H.bounds()[I]),
                       static_cast<double>(Cumulative)});
      }
      Cumulative += H.bucketCount(H.bounds().size());
      Out.push_back({E->Name, "histogram", "bucket", "+Inf",
                     static_cast<double>(Cumulative)});
      Out.push_back({E->Name, "histogram", "sum", "", H.sum()});
      Out.push_back({E->Name, "histogram", "count", "",
                     static_cast<double>(H.count())});
      if (H.count() > 0) {
        Out.push_back({E->Name, "histogram", "p50", "", H.quantile(0.50)});
        Out.push_back({E->Name, "histogram", "p90", "", H.quantile(0.90)});
        Out.push_back({E->Name, "histogram", "p99", "", H.quantile(0.99)});
      }
      break;
    }
    }
  }
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Entries) {
    switch (E->EntryKind) {
    case Kind::Counter:
      E->C->reset();
      break;
    case Kind::Gauge:
      E->G->reset();
      break;
    case Kind::RealGauge:
      E->R->reset();
      break;
    case Kind::Histogram:
      E->H->reset();
      break;
    }
  }
}
