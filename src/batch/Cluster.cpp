//===-- batch/Cluster.cpp - Local batch cluster simulator -----------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Cluster.h"
#include "batch/Capacity.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

const char *cws::backfillModeName(BackfillMode Mode) {
  switch (Mode) {
  case BackfillMode::None:
    return "none";
  case BackfillMode::Easy:
    return "easy";
  case BackfillMode::Conservative:
    return "conservative";
  }
  CWS_UNREACHABLE("unknown backfill mode");
}

namespace {

struct RunningJob {
  size_t JobIdx;
  Tick EstFinish;
  Tick ActualFinish;
};

/// Shared state of one cluster simulation.
class ClusterSim {
public:
  ClusterSim(const ClusterConfig &Config, const std::vector<BatchJob> &Jobs,
             const std::vector<AdvanceReservation> &Reservations)
      : Config(Config), Jobs(Jobs), Reservations(Reservations),
        Outcomes(Jobs.size()) {
    CWS_CHECK(Config.NodeCount >= 1, "cluster needs nodes");
    for (const auto &J : Jobs) {
      CWS_CHECK(J.Nodes >= 1 && J.Nodes <= Config.NodeCount,
                "job demands more nodes than the cluster has");
      CWS_CHECK(J.ActualTicks >= 1 && J.ActualTicks <= J.EstTicks,
                "actual runtime must be within (0, estimate]");
    }
    for (const auto &R : Reservations)
      CWS_CHECK(R.Start < R.End && R.Nodes >= 1 &&
                    R.Nodes <= Config.NodeCount,
                "malformed advance reservation");
    ArrivalOrder.resize(Jobs.size());
    for (size_t I = 0; I < Jobs.size(); ++I)
      ArrivalOrder[I] = I;
    std::stable_sort(ArrivalOrder.begin(), ArrivalOrder.end(),
                     [&](size_t A, size_t B) {
                       return Jobs[A].Arrival < Jobs[B].Arrival;
                     });
  }

  std::vector<BatchOutcome> run();

private:
  /// Capacity profile of running jobs (estimate-based) and reservations,
  /// as seen at time \p Now.
  CapacityProfile makeProfile(Tick Now) const;

  /// Planned start of every queued job in policy order (conservative
  /// planning); used for start-time forecasts.
  Tick forecastStart(Tick Now, size_t TargetIdx) const;

  void startJob(size_t JobIdx, Tick Now);
  void tryStart(Tick Now);

  const ClusterConfig &Config;
  const std::vector<BatchJob> &Jobs;
  const std::vector<AdvanceReservation> &Reservations;
  std::vector<BatchOutcome> Outcomes;
  std::vector<size_t> ArrivalOrder;
  std::vector<size_t> Queue;
  std::vector<RunningJob> Running;
};

CapacityProfile ClusterSim::makeProfile(Tick Now) const {
  CapacityProfile P(Config.NodeCount);
  for (const auto &R : Running)
    if (R.EstFinish > Now)
      P.reserve(Now, R.EstFinish, Jobs[R.JobIdx].Nodes);
  for (const auto &AR : Reservations)
    if (AR.End > Now)
      P.reserve(std::max(Now, AR.Start), AR.End, AR.Nodes);
  return P;
}

Tick ClusterSim::forecastStart(Tick Now, size_t TargetIdx) const {
  CapacityProfile P = makeProfile(Now);
  std::vector<size_t> Plan = Queue;
  orderQueue(Plan, Jobs, Config.Order);
  for (size_t JobIdx : Plan) {
    const BatchJob &J = Jobs[JobIdx];
    Tick T = P.earliestSlot(Now, J.EstTicks, J.Nodes);
    if (JobIdx == TargetIdx)
      return T;
    P.reserve(T, T + J.EstTicks, J.Nodes);
  }
  CWS_UNREACHABLE("forecast target is not queued");
}

void ClusterSim::startJob(size_t JobIdx, Tick Now) {
  const BatchJob &J = Jobs[JobIdx];
  Running.push_back({JobIdx, Now + J.EstTicks, Now + J.ActualTicks});
  BatchOutcome &O = Outcomes[JobIdx];
  O.Start = Now;
  O.Finish = Now + J.ActualTicks;
  O.Started = true;
  Queue.erase(std::find(Queue.begin(), Queue.end(), JobIdx));
}

void ClusterSim::tryStart(Tick Now) {
  CapacityProfile P = makeProfile(Now);
  std::vector<size_t> Order = Queue;
  orderQueue(Order, Jobs, Config.Order);

  bool HeadBlocked = false;
  for (size_t JobIdx : Order) {
    const BatchJob &J = Jobs[JobIdx];
    switch (Config.Backfill) {
    case BackfillMode::None:
      if (!P.fits(Now, Now + J.EstTicks, J.Nodes))
        return; // Strict order: the head blocks everyone behind it.
      P.reserve(Now, Now + J.EstTicks, J.Nodes);
      startJob(JobIdx, Now);
      break;
    case BackfillMode::Easy:
      if (P.fits(Now, Now + J.EstTicks, J.Nodes)) {
        // Starts now; cannot delay the head because the head's
        // reservation (if any) is already part of the profile.
        P.reserve(Now, Now + J.EstTicks, J.Nodes);
        startJob(JobIdx, Now);
      } else if (!HeadBlocked) {
        // First blocked job in order is the head: give it the earliest
        // reservation so backfilled jobs cannot push it back.
        Tick T = P.earliestSlot(Now, J.EstTicks, J.Nodes);
        P.reserve(T, T + J.EstTicks, J.Nodes);
        HeadBlocked = true;
      }
      break;
    case BackfillMode::Conservative: {
      // Every queued job gets a planned slot; whoever plans at Now runs.
      Tick T = P.earliestSlot(Now, J.EstTicks, J.Nodes);
      P.reserve(T, T + J.EstTicks, J.Nodes);
      if (T == Now)
        startJob(JobIdx, Now);
      break;
    }
    }
  }
}

std::vector<BatchOutcome> ClusterSim::run() {
  size_t NextArrival = 0;
  Tick LastNow = -1;
  while (NextArrival < ArrivalOrder.size() || !Running.empty() ||
         !Queue.empty()) {
    // Next event: an arrival, a completion, or a reservation end (a
    // reservation end can unblock a queued job without any other event).
    Tick Now = TickMax;
    if (NextArrival < ArrivalOrder.size())
      Now = std::min(Now, Jobs[ArrivalOrder[NextArrival]].Arrival);
    for (const auto &R : Running)
      Now = std::min(Now, R.ActualFinish);
    if (!Queue.empty())
      for (const auto &AR : Reservations)
        if (AR.End > LastNow)
          Now = std::min(Now, AR.End);
    CWS_CHECK(Now < TickMax, "no next event although work remains");
    CWS_CHECK(Now > LastNow, "event loop made no progress");
    LastNow = Now;

    // Completions first: they free capacity for same-tick decisions.
    for (size_t I = Running.size(); I-- > 0;)
      if (Running[I].ActualFinish <= Now)
        Running.erase(Running.begin() + static_cast<ptrdiff_t>(I));

    // Arrivals: enqueue and record the start-time forecast.
    while (NextArrival < ArrivalOrder.size() &&
           Jobs[ArrivalOrder[NextArrival]].Arrival <= Now) {
      size_t JobIdx = ArrivalOrder[NextArrival++];
      Queue.push_back(JobIdx);
      BatchOutcome &O = Outcomes[JobIdx];
      O.Id = Jobs[JobIdx].Id;
      O.Arrival = Jobs[JobIdx].Arrival;
      O.ForecastStart = forecastStart(Now, JobIdx);
    }

    tryStart(Now);
  }
  CWS_CHECK(Queue.empty(), "jobs left unscheduled");
  return std::move(Outcomes);
}

} // namespace

std::vector<BatchOutcome>
cws::runCluster(const ClusterConfig &Config, const std::vector<BatchJob> &Jobs,
                const std::vector<AdvanceReservation> &Reservations) {
  return ClusterSim(Config, Jobs, Reservations).run();
}

ClusterMetrics cws::summarizeCluster(const std::vector<BatchJob> &Jobs,
                                     const std::vector<BatchOutcome> &Outcomes,
                                     unsigned NodeCount) {
  CWS_CHECK(Jobs.size() == Outcomes.size(), "mismatched outcome list");
  ClusterMetrics M;
  if (Jobs.empty())
    return M;
  double TotalWork = 0.0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const BatchOutcome &O = Outcomes[I];
    CWS_CHECK(O.Started, "summarizing an unfinished run");
    double Wait = static_cast<double>(O.wait());
    M.MeanWait += Wait;
    M.MaxWait = std::max(M.MaxWait, Wait);
    M.MeanForecastError += static_cast<double>(O.forecastError());
    M.MeanSlowdown += (Wait + static_cast<double>(Jobs[I].ActualTicks)) /
                      static_cast<double>(Jobs[I].ActualTicks);
    M.Makespan = std::max(M.Makespan, O.Finish);
    TotalWork += static_cast<double>(Jobs[I].ActualTicks) *
                 static_cast<double>(Jobs[I].Nodes);
  }
  auto N = static_cast<double>(Jobs.size());
  M.MeanWait /= N;
  M.MeanForecastError /= N;
  M.MeanSlowdown /= N;
  if (M.Makespan > 0)
    M.Utilization = TotalWork / (static_cast<double>(NodeCount) *
                                 static_cast<double>(M.Makespan));
  return M;
}
