//===-- batch/Capacity.h - Cluster capacity profile -------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A step function of busy node count over time. The batch schedulers
/// plan against it: running jobs, advance reservations and (for
/// conservative backfilling) queued jobs' planned slots all subtract
/// capacity; earliestSlot answers "when do N nodes become free for D
/// ticks".
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_CAPACITY_H
#define CWS_BATCH_CAPACITY_H

#include "sim/Time.h"

#include <map>

namespace cws {

/// Busy-node step function over a fixed total capacity.
class CapacityProfile {
public:
  explicit CapacityProfile(unsigned TotalNodes);

  unsigned total() const { return Total; }

  /// Marks \p Need nodes busy over [Begin, End).
  void reserve(Tick Begin, Tick End, unsigned Need);

  /// Busy node count at time \p T.
  unsigned busyAt(Tick T) const;

  /// True when \p Need nodes are free throughout [Begin, End).
  bool fits(Tick Begin, Tick End, unsigned Need) const;

  /// Earliest T >= NotBefore with \p Need nodes free for \p Dur ticks.
  /// \p Need must not exceed the total capacity.
  Tick earliestSlot(Tick NotBefore, Tick Dur, unsigned Need) const;

private:
  unsigned Total;
  /// Delta encoding: busy count changes by Delta[t] at time t.
  std::map<Tick, int> Delta;
};

} // namespace cws

#endif // CWS_BATCH_CAPACITY_H
