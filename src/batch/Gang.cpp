//===-- batch/Gang.cpp - Gang scheduling ----------------------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Gang.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

std::vector<BatchOutcome> cws::runGang(const GangConfig &Config,
                                       const std::vector<BatchJob> &Jobs) {
  CWS_CHECK(Config.NodeCount >= 1, "gang scheduling needs nodes");
  CWS_CHECK(Config.Quantum >= 1, "quantum must be positive");
  for (const auto &J : Jobs)
    CWS_CHECK(J.Nodes >= 1 && J.Nodes <= Config.NodeCount,
              "job demands more nodes than the cluster has");

  std::vector<BatchOutcome> Outcomes(Jobs.size());
  std::vector<size_t> ByArrival(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    ByArrival[I] = I;
    Outcomes[I].Id = Jobs[I].Id;
    Outcomes[I].Arrival = Jobs[I].Arrival;
    Outcomes[I].ForecastStart = Jobs[I].Arrival;
  }
  std::stable_sort(ByArrival.begin(), ByArrival.end(), [&](size_t A, size_t B) {
    return Jobs[A].Arrival < Jobs[B].Arrival;
  });

  struct Active {
    size_t JobIdx;
    Tick Remaining;
  };
  std::vector<Active> Pool; // In arrival order; rotation gives fairness.
  size_t NextArrival = 0;
  size_t RotateFrom = 0;
  Tick Now = Jobs.empty() ? 0 : Jobs[ByArrival[0]].Arrival;

  while (NextArrival < ByArrival.size() || !Pool.empty()) {
    if (Pool.empty() && NextArrival < ByArrival.size())
      Now = std::max(Now, Jobs[ByArrival[NextArrival]].Arrival);
    while (NextArrival < ByArrival.size() &&
           Jobs[ByArrival[NextArrival]].Arrival <= Now) {
      size_t JobIdx = ByArrival[NextArrival++];
      Pool.push_back({JobIdx, Jobs[JobIdx].ActualTicks});
    }

    // One quantum: pack jobs round-robin starting at the rotation point.
    unsigned Free = Config.NodeCount;
    std::vector<size_t> Scheduled;
    for (size_t Step = 0; Step < Pool.size() && Free > 0; ++Step) {
      size_t Slot = (RotateFrom + Step) % Pool.size();
      const BatchJob &J = Jobs[Pool[Slot].JobIdx];
      if (J.Nodes <= Free) {
        Free -= J.Nodes;
        Scheduled.push_back(Slot);
      }
    }
    if (!Pool.empty())
      RotateFrom = (RotateFrom + 1) % Pool.size();

    for (size_t Slot : Scheduled) {
      Active &A = Pool[Slot];
      BatchOutcome &O = Outcomes[A.JobIdx];
      if (!O.Started) {
        O.Started = true;
        O.Start = Now;
      }
      Tick Served = std::min(Config.Quantum, A.Remaining);
      A.Remaining -= Served;
      if (A.Remaining == 0)
        O.Finish = Now + Served;
    }
    // Drop finished jobs (descending slot order keeps indices valid).
    std::sort(Scheduled.rbegin(), Scheduled.rend());
    for (size_t Slot : Scheduled)
      if (Pool[Slot].Remaining == 0)
        Pool.erase(Pool.begin() + static_cast<ptrdiff_t>(Slot));
    if (RotateFrom >= Pool.size())
      RotateFrom = 0;

    Now += Config.Quantum;
  }
  return Outcomes;
}
