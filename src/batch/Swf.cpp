//===-- batch/Swf.cpp - Standard Workload Format traces -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Swf.h"
#include "support/Check.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace cws;

namespace {

/// Splits one line into whitespace-separated numeric fields; returns
/// false when any field fails to parse.
bool parseFields(std::string_view Line, std::vector<double> &Fields) {
  Fields.clear();
  size_t Pos = 0;
  while (Pos < Line.size()) {
    while (Pos < Line.size() &&
           (Line[Pos] == ' ' || Line[Pos] == '\t' || Line[Pos] == '\r'))
      ++Pos;
    if (Pos >= Line.size())
      break;
    size_t Start = Pos;
    while (Pos < Line.size() && Line[Pos] != ' ' && Line[Pos] != '\t' &&
           Line[Pos] != '\r')
      ++Pos;
    std::string Token(Line.substr(Start, Pos - Start));
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End == Token.c_str() || *End != '\0')
      return false;
    Fields.push_back(Value);
  }
  return true;
}

} // namespace

SwfImportResult cws::readSwf(std::string_view Text,
                             const SwfImportConfig &Config) {
  CWS_CHECK(Config.TimeScale >= 1, "time scale must be at least 1");
  SwfImportResult Result;
  size_t LineStart = 0;
  std::vector<double> Fields;
  while (LineStart < Text.size()) {
    size_t LineEnd = Text.find('\n', LineStart);
    if (LineEnd == std::string_view::npos)
      LineEnd = Text.size();
    std::string_view Line = Text.substr(LineStart, LineEnd - LineStart);
    LineStart = LineEnd + 1;

    // Comments and blank lines.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string_view::npos || Line[First] == ';')
      continue;

    if (!parseFields(Line, Fields) || Fields.size() < 5) {
      ++Result.SkippedLines;
      continue;
    }

    auto Field = [&](size_t OneBased) -> double {
      return OneBased <= Fields.size() ? Fields[OneBased - 1] : -1.0;
    };

    double Submit = Field(2);
    double RunTime = Field(4);
    double AllocProcs = Field(5);
    double ReqProcs = Field(8);
    double ReqTime = Field(9);

    double Procs = ReqProcs > 0 ? ReqProcs : AllocProcs;
    double Est = ReqTime > 0 ? ReqTime : RunTime;
    if (Submit < 0 || RunTime <= 0 || Procs <= 0 || Est <= 0) {
      ++Result.SkippedLines;
      continue;
    }

    BatchJob J;
    J.Id = static_cast<unsigned>(Field(1) >= 0 ? Field(1)
                                               : Result.Jobs.size());
    J.Arrival = static_cast<Tick>(Submit) / Config.TimeScale;
    J.Nodes = static_cast<unsigned>(Procs);
    if (Config.NodeCap > 0)
      J.Nodes = std::min(J.Nodes, Config.NodeCap);
    J.EstTicks = std::max<Tick>(1, static_cast<Tick>(Est) / Config.TimeScale);
    J.ActualTicks = std::max<Tick>(
        1, static_cast<Tick>(RunTime) / Config.TimeScale);
    // The substrate assumes runs never exceed the wall limit.
    J.ActualTicks = std::min(J.ActualTicks, J.EstTicks);
    Result.Jobs.push_back(J);
    if (Config.MaxJobs > 0 && Result.Jobs.size() >= Config.MaxJobs)
      break;
  }
  std::stable_sort(Result.Jobs.begin(), Result.Jobs.end(),
                   [](const BatchJob &A, const BatchJob &B) {
                     return A.Arrival < B.Arrival;
                   });
  return Result;
}

std::string cws::writeSwf(const std::vector<BatchJob> &Jobs) {
  std::string Out =
      "; SWF trace written by CWS (fields 1,2,4,5,8,9 meaningful)\n";
  char Buf[160];
  for (const auto &J : Jobs) {
    std::snprintf(Buf, sizeof(Buf),
                  "%u %lld -1 %lld %u -1 -1 %u %lld -1 -1 -1 -1 -1 -1 -1 "
                  "-1 -1\n",
                  J.Id, static_cast<long long>(J.Arrival),
                  static_cast<long long>(J.ActualTicks), J.Nodes, J.Nodes,
                  static_cast<long long>(J.EstTicks));
    Out += Buf;
  }
  return Out;
}
