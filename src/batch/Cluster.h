//===-- batch/Cluster.h - Local batch cluster simulator ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A local batch-job management system over a homogeneous node pool:
/// FCFS/LWF queue orders, EASY and conservative backfilling, and advance
/// reservations. Scheduling plans with user runtime *estimates*; jobs
/// actually run for their (never longer) real runtime, which is what
/// makes start-time forecasts err — the effect Section 5 discusses.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_CLUSTER_H
#define CWS_BATCH_CLUSTER_H

#include "batch/BatchJob.h"
#include "batch/QueuePolicy.h"
#include "sim/Time.h"

#include <vector>

namespace cws {

/// Backfilling disciplines.
enum class BackfillMode {
  /// Strict queue order; the head blocks everyone.
  None,
  /// EASY: the head holds one reservation; later jobs may jump ahead if
  /// they do not delay it.
  Easy,
  /// Conservative: every queued job holds a planned slot; a job may jump
  /// ahead only into holes that delay nobody's plan.
  Conservative,
};

/// Short name ("none" / "easy" / "conservative").
const char *backfillModeName(BackfillMode Mode);

/// An advance reservation: \p Nodes nodes are handed to an external
/// owner during [Start, End), bypassing the queue (the paper's
/// mechanism [20] that application-level schedules rely on).
struct AdvanceReservation {
  Tick Start;
  Tick End;
  unsigned Nodes;
};

/// Cluster scheduler configuration.
struct ClusterConfig {
  unsigned NodeCount = 16;
  QueueOrder Order = QueueOrder::FCFS;
  BackfillMode Backfill = BackfillMode::None;
};

/// Simulates a whole trace through the cluster; returns one outcome per
/// job (same order as \p Jobs). \p Reservations are booked before any
/// job may use the capacity.
std::vector<BatchOutcome>
runCluster(const ClusterConfig &Config, const std::vector<BatchJob> &Jobs,
           const std::vector<AdvanceReservation> &Reservations = {});

/// Aggregate queueing metrics of one run.
struct ClusterMetrics {
  double MeanWait = 0.0;
  double MaxWait = 0.0;
  /// Mean |Start - ForecastStart|.
  double MeanForecastError = 0.0;
  /// Mean (wait + actual) / actual, the bounded slowdown.
  double MeanSlowdown = 0.0;
  double Utilization = 0.0;
  Tick Makespan = 0;
};

/// Computes metrics for outcomes of \p Jobs on \p NodeCount nodes.
ClusterMetrics summarizeCluster(const std::vector<BatchJob> &Jobs,
                                const std::vector<BatchOutcome> &Outcomes,
                                unsigned NodeCount);

} // namespace cws

#endif // CWS_BATCH_CLUSTER_H
