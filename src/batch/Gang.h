//===-- batch/Gang.h - Gang scheduling --------------------------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gang scheduling, one of the Section-5 local queue-management
/// alternatives: all nodes of a parallel job run together within
/// round-robin time quanta, so short jobs get service while long jobs
/// are in flight instead of waiting behind them.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_GANG_H
#define CWS_BATCH_GANG_H

#include "batch/BatchJob.h"
#include "sim/Time.h"

#include <vector>

namespace cws {

/// Gang scheduler parameters.
struct GangConfig {
  unsigned NodeCount = 16;
  /// Length of one scheduling quantum.
  Tick Quantum = 4;
};

/// Runs the trace under quantum-based gang scheduling. Outcomes report
/// the first quantum a job received service as its Start; ForecastStart
/// equals Arrival (gang gives no reservation-style forecast).
std::vector<BatchOutcome> runGang(const GangConfig &Config,
                                  const std::vector<BatchJob> &Jobs);

} // namespace cws

#endif // CWS_BATCH_GANG_H
