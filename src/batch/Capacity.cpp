//===-- batch/Capacity.cpp - Cluster capacity profile ---------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/Capacity.h"
#include "support/Check.h"

using namespace cws;

CapacityProfile::CapacityProfile(unsigned TotalNodes) : Total(TotalNodes) {
  CWS_CHECK(TotalNodes >= 1, "a cluster needs at least one node");
}

void CapacityProfile::reserve(Tick Begin, Tick End, unsigned Need) {
  CWS_CHECK(Begin < End, "reservation must span at least one tick");
  CWS_CHECK(Need >= 1 && Need <= Total, "invalid node demand");
  Delta[Begin] += static_cast<int>(Need);
  Delta[End] -= static_cast<int>(Need);
}

unsigned CapacityProfile::busyAt(Tick T) const {
  int Busy = 0;
  for (const auto &[Time, D] : Delta) {
    if (Time > T)
      break;
    Busy += D;
  }
  CWS_CHECK(Busy >= 0, "negative busy count");
  return static_cast<unsigned>(Busy);
}

bool CapacityProfile::fits(Tick Begin, Tick End, unsigned Need) const {
  CWS_CHECK(Begin < End, "empty window");
  int Busy = 0;
  auto It = Delta.begin();
  for (; It != Delta.end() && It->first <= Begin; ++It)
    Busy += It->second;
  int Free = static_cast<int>(Total) - Busy;
  if (Free < static_cast<int>(Need))
    return false;
  for (; It != Delta.end() && It->first < End; ++It) {
    Busy += It->second;
    if (static_cast<int>(Total) - Busy < static_cast<int>(Need))
      return false;
  }
  return true;
}

Tick CapacityProfile::earliestSlot(Tick NotBefore, Tick Dur,
                                   unsigned Need) const {
  CWS_CHECK(Dur > 0, "slot needs a positive duration");
  CWS_CHECK(Need >= 1 && Need <= Total, "invalid node demand");
  // Candidate starts are NotBefore and every breakpoint after it. The
  // sweep tracks the busy level and, for each candidate where enough
  // nodes are free, checks whether the freedom lasts Dur ticks.
  Tick Candidate = NotBefore;
  int Busy = 0;
  auto It = Delta.begin();
  for (; It != Delta.end() && It->first <= NotBefore; ++It)
    Busy += It->second;
  // Invariant: Busy is the level at Candidate; It points at the first
  // breakpoint strictly after Candidate.
  while (true) {
    if (static_cast<int>(Total) - Busy >= static_cast<int>(Need)) {
      // Free now; see how long it stays free.
      Tick End = Candidate + Dur;
      bool Ok = true;
      int Level = Busy;
      for (auto Probe = It; Probe != Delta.end() && Probe->first < End;
           ++Probe) {
        Level += Probe->second;
        if (static_cast<int>(Total) - Level < static_cast<int>(Need)) {
          Ok = false;
          break;
        }
      }
      if (Ok)
        return Candidate;
    }
    if (It == Delta.end())
      return Candidate; // Beyond the last breakpoint everything is free.
    Candidate = It->first;
    Busy += It->second;
    ++It;
    // Skip further breakpoints at the same time (map keys are unique, so
    // nothing to do), loop re-checks at the new candidate.
  }
}
