//===-- batch/QueuePolicy.h - Queue ordering policies -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Queue ordering of the local batch system: FCFS (the policy the
/// paper's experiments assume) and least-work-first (LWF), one of the
/// Section-5 alternatives.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_QUEUEPOLICY_H
#define CWS_BATCH_QUEUEPOLICY_H

#include "batch/BatchJob.h"

#include <vector>

namespace cws {

/// Queue ordering disciplines.
enum class QueueOrder {
  /// First come, first served.
  FCFS,
  /// Least work first: estimated runtime x nodes, ties by arrival.
  LWF,
  /// Highest priority first (the paper's dynamic priorities: users who
  /// pay more for a resource go first), ties FCFS.
  Priority,
};

/// Short name ("fcfs" / "lwf" / "priority").
const char *queueOrderName(QueueOrder Order);

/// Sorts \p Queue (indices into \p Jobs) according to \p Order.
void orderQueue(std::vector<size_t> &Queue, const std::vector<BatchJob> &Jobs,
                QueueOrder Order);

} // namespace cws

#endif // CWS_BATCH_QUEUEPOLICY_H
