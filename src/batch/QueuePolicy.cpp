//===-- batch/QueuePolicy.cpp - Queue ordering policies -------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/QueuePolicy.h"
#include "support/Check.h"

#include <algorithm>

using namespace cws;

const char *cws::queueOrderName(QueueOrder Order) {
  switch (Order) {
  case QueueOrder::FCFS:
    return "fcfs";
  case QueueOrder::LWF:
    return "lwf";
  case QueueOrder::Priority:
    return "priority";
  }
  CWS_UNREACHABLE("unknown queue order");
}

void cws::orderQueue(std::vector<size_t> &Queue,
                     const std::vector<BatchJob> &Jobs, QueueOrder Order) {
  switch (Order) {
  case QueueOrder::FCFS:
    std::stable_sort(Queue.begin(), Queue.end(), [&](size_t A, size_t B) {
      if (Jobs[A].Arrival != Jobs[B].Arrival)
        return Jobs[A].Arrival < Jobs[B].Arrival;
      return Jobs[A].Id < Jobs[B].Id;
    });
    return;
  case QueueOrder::LWF:
    std::stable_sort(Queue.begin(), Queue.end(), [&](size_t A, size_t B) {
      Tick WorkA = Jobs[A].EstTicks * static_cast<Tick>(Jobs[A].Nodes);
      Tick WorkB = Jobs[B].EstTicks * static_cast<Tick>(Jobs[B].Nodes);
      if (WorkA != WorkB)
        return WorkA < WorkB;
      if (Jobs[A].Arrival != Jobs[B].Arrival)
        return Jobs[A].Arrival < Jobs[B].Arrival;
      return Jobs[A].Id < Jobs[B].Id;
    });
    return;
  case QueueOrder::Priority:
    std::stable_sort(Queue.begin(), Queue.end(), [&](size_t A, size_t B) {
      if (Jobs[A].Priority != Jobs[B].Priority)
        return Jobs[A].Priority > Jobs[B].Priority;
      if (Jobs[A].Arrival != Jobs[B].Arrival)
        return Jobs[A].Arrival < Jobs[B].Arrival;
      return Jobs[A].Id < Jobs[B].Id;
    });
    return;
  }
  CWS_UNREACHABLE("unknown queue order");
}
