//===-- batch/BatchJob.cpp - Local batch jobs and traces ------------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchJob.h"
#include "support/Check.h"
#include "support/Prng.h"

#include <algorithm>
#include <cmath>

using namespace cws;

std::vector<BatchJob> cws::makeBatchTrace(const BatchWorkloadConfig &Config,
                                          uint64_t Seed) {
  CWS_CHECK(Config.NodesLo >= 1 && Config.NodesLo <= Config.NodesHi,
            "invalid node demand range");
  CWS_CHECK(Config.EstLo >= 1 && Config.EstLo <= Config.EstHi,
            "invalid estimate range");
  CWS_CHECK(Config.ActualLo > 0.0 && Config.ActualLo <= Config.ActualHi &&
                Config.ActualHi <= 1.0,
            "actual runtime factor must lie in (0, 1]");
  CWS_CHECK(Config.PriorityLevels >= 1, "need at least one priority level");
  Prng Rng(Seed);
  std::vector<BatchJob> Trace;
  Trace.reserve(Config.JobCount);
  Tick Now = 0;
  for (size_t I = 0; I < Config.JobCount; ++I) {
    Now += Rng.uniformInt(Config.InterarrivalLo, Config.InterarrivalHi);
    Tick Est = Rng.uniformInt(Config.EstLo, Config.EstHi);
    double Factor = Rng.uniformReal(Config.ActualLo, Config.ActualHi);
    Tick Actual = std::max<Tick>(
        1, static_cast<Tick>(std::llround(static_cast<double>(Est) * Factor)));
    BatchJob J{static_cast<unsigned>(I), Now,
               static_cast<unsigned>(
                   Rng.uniformInt(Config.NodesLo, Config.NodesHi)),
               Est, std::min(Actual, Est), 0};
    if (Config.PriorityLevels > 1)
      J.Priority =
          static_cast<int>(Rng.uniformInt(0, Config.PriorityLevels - 1));
    Trace.push_back(J);
  }
  return Trace;
}
