//===-- batch/Swf.h - Standard Workload Format traces -----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for the Standard Workload Format (SWF) used by the
/// Parallel Workloads Archive, so real cluster logs can drive the local
/// batch substrate instead of synthetic traces. Only the fields the
/// substrate needs are interpreted: job number (1), submit time (2),
/// run time (4), allocated processors (5), requested processors (8) and
/// requested time (9); `;` starts a comment line.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_SWF_H
#define CWS_BATCH_SWF_H

#include "batch/BatchJob.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cws {

/// Options for importing an SWF trace.
struct SwfImportConfig {
  /// Jobs requesting more nodes than this are clamped to it (the
  /// cluster the trace will run on); 0 keeps requests as logged.
  unsigned NodeCap = 0;
  /// Divide all times by this factor (SWF logs are in seconds; the
  /// simulator uses abstract ticks).
  Tick TimeScale = 1;
  /// Stop after this many jobs; 0 reads everything.
  size_t MaxJobs = 0;
};

/// Result of an import: the jobs plus how many lines were skipped as
/// malformed or degenerate (zero runtime / zero processors).
struct SwfImportResult {
  std::vector<BatchJob> Jobs;
  size_t SkippedLines = 0;
};

/// Parses SWF text. Never aborts on malformed input — bad lines are
/// counted and skipped.
SwfImportResult readSwf(std::string_view Text,
                        const SwfImportConfig &Config = SwfImportConfig());

/// Renders jobs as SWF lines (the interpreted fields; others are -1).
std::string writeSwf(const std::vector<BatchJob> &Jobs);

} // namespace cws

#endif // CWS_BATCH_SWF_H
