//===-- batch/BatchJob.h - Local batch jobs and traces ----------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jobs of a local batch-job management system. Section 5 of the paper
/// discusses how local queue policies (FCFS, LWF, backfilling, gang
/// scheduling) and advance reservations affect waiting time and
/// start-time forecast errors; this substrate lets the benches measure
/// those claims.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_BATCH_BATCHJOB_H
#define CWS_BATCH_BATCHJOB_H

#include "sim/Time.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cws {

/// One rigid parallel job submitted to a cluster.
struct BatchJob {
  unsigned Id;
  Tick Arrival;
  /// Nodes needed simultaneously for the whole run.
  unsigned Nodes;
  /// The user's runtime estimate (the wall limit; runs never exceed it).
  Tick EstTicks;
  /// The real runtime, at most EstTicks.
  Tick ActualTicks;
  /// Scheduling priority (higher runs first under the Priority order);
  /// in the paper's economy this follows what the user pays.
  int Priority = 0;
};

/// Scheduling outcome of one batch job.
struct BatchOutcome {
  unsigned Id = 0;
  Tick Arrival = 0;
  /// Start predicted at submission from the then-current plan.
  Tick ForecastStart = 0;
  Tick Start = 0;
  Tick Finish = 0;
  bool Started = false;

  Tick wait() const { return Start - Arrival; }
  Tick forecastError() const {
    Tick D = Start - ForecastStart;
    return D < 0 ? -D : D;
  }
};

/// Parameters of a randomized batch trace.
struct BatchWorkloadConfig {
  size_t JobCount = 1000;
  /// Interarrival gap, uniform.
  Tick InterarrivalLo = 0;
  Tick InterarrivalHi = 8;
  /// Node demand, uniform.
  unsigned NodesLo = 1;
  unsigned NodesHi = 8;
  /// Runtime estimate, uniform.
  Tick EstLo = 4;
  Tick EstHi = 40;
  /// Actual runtime = estimate * uniform(ActualLo, ActualHi), >= 1.
  double ActualLo = 0.35;
  double ActualHi = 1.0;
  /// Priorities are uniform in [0, PriorityLevels); 1 disables them.
  int PriorityLevels = 1;
};

/// Generates a deterministic batch trace (sorted by arrival).
std::vector<BatchJob> makeBatchTrace(const BatchWorkloadConfig &Config,
                                     uint64_t Seed);

} // namespace cws

#endif // CWS_BATCH_BATCHJOB_H
