//===-- job/Coarsen.h - Computation granularity control ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Granularity transformation of compound jobs. The paper's strategy
/// types differ in *computational granularity*: S1/S2 schedule the job
/// "with fine-grain computations" as submitted, while S3 uses
/// "coarse-grain computations" — the same work partitioned into fewer,
/// larger tasks, which minimizes data exchanges at the price of
/// parallelism. coarsenJob applies series contraction (merging linear
/// task runs) and bounded sibling merging (tasks with identical
/// dependency sets) to produce the coarse-grain view of a job.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_JOB_COARSEN_H
#define CWS_JOB_COARSEN_H

#include "job/Job.h"

#include <cstddef>
#include <vector>

namespace cws {

/// Coarsening knobs.
struct CoarsenConfig {
  /// Merge linear runs (u -> v where u is v's only predecessor and v is
  /// u's only successor); the internal transfer disappears.
  bool MergeSeries = true;
  /// Rounds of sibling merging: per round, disjoint pairs of tasks with
  /// identical predecessor and successor sets are fused, halving that
  /// slice of parallelism. 0 disables sibling merging.
  unsigned SiblingRounds = 1;
  /// Upper bound on a merged task's reference ticks; merges that would
  /// exceed it are skipped. Oversized macro-tasks need long contiguous
  /// free slots, which loaded timelines rarely have. 0 means unbounded.
  Tick MaxMergedRef = 8;
};

/// Result of coarsening: the coarse job plus, for each coarse task, the
/// original task ids it absorbed.
struct CoarseJob {
  Job Coarse;
  std::vector<std::vector<unsigned>> Members;
};

/// Builds the coarse-grain view of \p J. Deadline and release carry
/// over (the QoS contract does not change with granularity); merged
/// tasks sum reference times and volumes.
CoarseJob coarsenJob(const Job &J, const CoarsenConfig &Config = {});

} // namespace cws

#endif // CWS_JOB_COARSEN_H
