//===-- job/Generator.h - Randomized compound-job workloads -----*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The randomized workload of the paper's simulation studies: layered
/// DAG jobs whose task completion-time estimations, computation volumes
/// and data transfer times are uniform with a 2..3x spread, and whose
/// completion time (deadline) is fixed per job.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_JOB_GENERATOR_H
#define CWS_JOB_GENERATOR_H

#include "job/Job.h"
#include "support/Prng.h"

namespace cws {

/// Workload parameters (defaults follow Section 4's description).
struct WorkloadConfig {
  /// Task count per job.
  unsigned MinTasks = 5;
  unsigned MaxTasks = 12;
  /// Maximum task parallelism degree (layer width).
  unsigned MaxWidth = 4;
  /// Reference execution ticks, uniform; Hi/Lo is the paper's "difference
  /// equal to 2...3" between tasks.
  Tick RefTicksLo = 2;
  Tick RefTicksHi = 6;
  /// Computation volume per reference tick (Fig. 2a uses 10).
  double VolumePerRefTick = 10.0;
  /// Base data transfer ticks per edge, uniform.
  Tick TransferLo = 1;
  Tick TransferHi = 3;
  /// Probability of each optional extra edge between adjacent layers.
  double EdgeDensity = 0.35;
  /// Fixed completion time: Deadline = Release +
  /// DeadlineSlack * criticalPathRefTicks (a slack below ~1 is
  /// unsatisfiable even on an empty, all-fast environment).
  double DeadlineSlack = 1.5;
};

/// Deterministic generator of randomized compound jobs.
class JobGenerator {
public:
  JobGenerator(WorkloadConfig Config, uint64_t Seed);

  /// Produces the next job (ids are sequential) released at \p Release.
  Job next(Tick Release = 0);

  const WorkloadConfig &config() const { return Config; }

private:
  WorkloadConfig Config;
  Prng Rng;
  unsigned NextId = 0;
};

} // namespace cws

#endif // CWS_JOB_GENERATOR_H
