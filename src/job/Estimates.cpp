//===-- job/Estimates.cpp - User execution-time estimations ---------------===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//

#include "job/Estimates.h"
#include "resource/Grid.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace cws;

EstimateGrid::EstimateGrid(const Job &J, std::vector<double> Levels)
    : PerfLevels(std::move(Levels)) {
  CWS_CHECK(!PerfLevels.empty(), "estimate grid needs at least one level");
  CWS_CHECK(std::is_sorted(PerfLevels.begin(), PerfLevels.end(),
                           std::greater<double>()),
            "performance levels must be sorted fastest first");
  CWS_CHECK(PerfLevels.back() > 0.0, "performance levels must be positive");
  Table.resize(J.taskCount());
  for (const auto &T : J.tasks()) {
    Table[T.Id].reserve(PerfLevels.size());
    for (double Perf : PerfLevels) {
      double Exact = static_cast<double>(T.RefTicks) / Perf;
      Table[T.Id].push_back(static_cast<Tick>(std::ceil(Exact - 1e-9)));
    }
  }
}

double EstimateGrid::perfAt(size_t Level) const {
  CWS_CHECK(Level < PerfLevels.size(), "level out of range");
  return PerfLevels[Level];
}

Tick EstimateGrid::ticks(unsigned TaskId, size_t Level) const {
  CWS_CHECK(TaskId < Table.size(), "task id out of range");
  CWS_CHECK(Level < PerfLevels.size(), "level out of range");
  return Table[TaskId][Level];
}

std::vector<size_t> EstimateGrid::coveredLevels(bool BestWorstOnly) const {
  if (!BestWorstOnly || PerfLevels.size() <= 2) {
    std::vector<size_t> All(PerfLevels.size());
    for (size_t I = 0; I < All.size(); ++I)
      All[I] = I;
    return All;
  }
  return {0, PerfLevels.size() - 1};
}

std::vector<double> EstimateGrid::environmentLevels(const Grid &G) {
  std::vector<double> Levels;
  for (const auto &N : G.nodes())
    Levels.push_back(N.relPerf());
  std::sort(Levels.begin(), Levels.end(), std::greater<double>());
  Levels.erase(std::unique(Levels.begin(), Levels.end(),
                           [](double A, double B) {
                             return std::abs(A - B) < 1e-12;
                           }),
               Levels.end());
  return Levels;
}
