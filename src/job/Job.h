//===-- job/Job.h - Compound jobs as information graphs ---------*- C++ -*-===//
//
// Part of CWS, a reproduction of Toporkov, "Application-Level and Job-Flow
// Scheduling" (PaCT 2009). Distributed without any warranty.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application model: a compound (multiprocessor) job is a DAG — the
/// paper's "information graph" — whose vertices are heterogeneous tasks
/// (computation volume + reference execution time) and whose edges are
/// data transfers. Each task runs on a single node; completing the job
/// requires co-allocating the tasks to (possibly different) nodes.
///
//===----------------------------------------------------------------------===//

#ifndef CWS_JOB_JOB_H
#define CWS_JOB_JOB_H

#include "sim/Time.h"

#include <cstddef>
#include <string>
#include <vector>

namespace cws {

/// One task of a compound job.
struct Task {
  unsigned Id;
  std::string Name;
  /// Execution time on a reference (RelPerf = 1) node; the first row of
  /// the paper's estimation table.
  Tick RefTicks;
  /// Relative computation volume V (numerator of the paper's cost
  /// function CF = sum V / T).
  double Volume;
};

/// A data dependency: Dst may start only after Src's output arrives.
struct DataEdge {
  unsigned Src;
  unsigned Dst;
  /// Transfer time between two distinct nodes on the reference network.
  Tick BaseTransfer;
};

/// A compound job: task DAG, data edges, release time and the fixed
/// completion time (deadline) its user expects — the QoS contract.
class Job {
public:
  explicit Job(unsigned Id = 0) : Id(Id) {}

  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// Adds a task; returns its id (dense, starting at 0).
  unsigned addTask(std::string Name, Tick RefTicks, double Volume);

  /// Adds a data edge Src -> Dst. Both tasks must exist; self-edges are
  /// rejected via CWS_CHECK.
  void addEdge(unsigned Src, unsigned Dst, Tick BaseTransfer);

  size_t taskCount() const { return Tasks.size(); }
  size_t edgeCount() const { return Edges.size(); }

  const Task &task(unsigned TaskId) const;
  const DataEdge &edge(size_t EdgeIdx) const;
  const std::vector<Task> &tasks() const { return Tasks; }
  const std::vector<DataEdge> &edges() const { return Edges; }

  /// Edge indices entering / leaving a task.
  const std::vector<size_t> &inEdges(unsigned TaskId) const;
  const std::vector<size_t> &outEdges(unsigned TaskId) const;

  /// Tasks without predecessors / successors.
  std::vector<unsigned> sources() const;
  std::vector<unsigned> sinks() const;

  /// True when the graph is acyclic (a job must be).
  bool isAcyclic() const;

  /// Topological order; empty when the graph has a cycle.
  std::vector<unsigned> topoOrder() const;

  /// Length of the longest source-to-sink chain counting reference
  /// execution times plus base transfer times — the length measure the
  /// critical works method ranks chains by.
  Tick criticalPathRefTicks() const;

  /// Sum of all reference execution times (total work at RelPerf 1).
  Tick totalRefTicks() const;

  Tick release() const { return Release; }
  void setRelease(Tick T) { Release = T; }

  /// The user's fixed completion time, absolute.
  Tick deadline() const { return Deadline; }
  void setDeadline(Tick T) { Deadline = T; }

private:
  unsigned Id;
  std::vector<Task> Tasks;
  std::vector<DataEdge> Edges;
  std::vector<std::vector<size_t>> In;
  std::vector<std::vector<size_t>> Out;
  Tick Release = 0;
  Tick Deadline = TickMax;
};

/// Builds the exact compound job of the paper's Fig. 2a: tasks P1..P6
/// (ids 0..5), eight data transfers D1..D8 of one tick each, reference
/// times {2, 3, 1, 2, 1, 2} and volumes {20, 30, 10, 20, 10, 20}.
Job makeFig2Job();

} // namespace cws

#endif // CWS_JOB_JOB_H
